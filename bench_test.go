// Benchmarks regenerating the paper's tables and figures, one testing.B
// target per artifact. Each bench exercises the exact code path of the
// corresponding experiment at a reduced, per-iteration-affordable scale;
// run `go run ./cmd/imexp all` for the full tables with CSV output.
package goinfmax_test

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	goinfmax "github.com/sigdata/goinfmax"
	"github.com/sigdata/goinfmax/internal/algo/rank"
	"github.com/sigdata/goinfmax/internal/algo/rrset"
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/persist"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/serve"
	"github.com/sigdata/goinfmax/internal/weights"
)

// benchGraph memoizes weighted graphs across benchmark targets.
var benchGraphs = map[string]*graph.Graph{}

func benchGraph(b *testing.B, dataset string, scale int64, scheme goinfmax.Scheme) *graph.Graph {
	b.Helper()
	key := dataset + scheme.Name()
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	g := scheme.Apply(goinfmax.Dataset(dataset, scale, 1)).(*graph.Graph)
	benchGraphs[key] = g
	return g
}

func benchSelect(b *testing.B, algName string, g *graph.Graph, model goinfmax.Model, k int, param float64) {
	b.Helper()
	alg, err := goinfmax.NewAlgorithm(algName)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := core.NewContext(g, model, k, uint64(i)+1)
		ctx.ParamValue = param
		seeds, err := alg.Select(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(seeds) != k {
			b.Fatalf("%d seeds", len(seeds))
		}
	}
}

// BenchmarkFig1a_IMM measures the Figure 1a contrast: IMM's selection cost
// under IC(0.1) vs WC on the orkut stand-in.
func BenchmarkFig1a_IMM(b *testing.B) {
	b.Run("IC", func(b *testing.B) {
		g := benchGraph(b, "orkut", 512, goinfmax.ICConstant{P: 0.1})
		benchSelect(b, "IMM", g, goinfmax.IC, 10, 0.5)
	})
	b.Run("WC", func(b *testing.B) {
		g := benchGraph(b, "orkut", 512, goinfmax.WeightedCascade{})
		benchSelect(b, "IMM", g, goinfmax.IC, 10, 0.5)
	})
}

// BenchmarkFig1bc_IMMvsEaSyIM measures the Figure 1b-c pair on youtube.
func BenchmarkFig1bc_IMMvsEaSyIM(b *testing.B) {
	g := benchGraph(b, "youtube", 256, goinfmax.ICConstant{P: 0.1})
	b.Run("IMM", func(b *testing.B) { benchSelect(b, "IMM", g, goinfmax.IC, 10, 0.5) })
	b.Run("EaSyIM", func(b *testing.B) { benchSelect(b, "EaSyIM", g, goinfmax.IC, 10, 0) })
}

// BenchmarkTable2_ParamSearch measures the §5.1.1 parameter-selection
// procedure (one sweep of IMM's ε spectrum).
func BenchmarkTable2_ParamSearch(b *testing.B) {
	g := benchGraph(b, "hepph", 16, goinfmax.WeightedCascade{})
	alg, err := goinfmax.NewAlgorithm("IMM")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := goinfmax.ParamSearch{
			Ks:     []int{10},
			Config: goinfmax.RunConfig{K: 10, Model: goinfmax.IC, Seed: 1, EvalSims: 200},
		}
		choice := ps.Search(alg, g)
		if choice.Optimal <= 0 {
			b.Fatal("no optimal found")
		}
	}
}

// BenchmarkFig5_IMRankRounds measures one IMRank run per scoring-round
// setting, the Figure 5 sweep.
func BenchmarkFig5_IMRankRounds(b *testing.B) {
	g := benchGraph(b, "hepph", 16, goinfmax.ICConstant{P: 0.1})
	for i := 0; i < b.N; i++ {
		for rounds := 1.0; rounds <= 10; rounds++ {
			ctx := core.NewContext(g, goinfmax.IC, 10, 1)
			ctx.ParamValue = rounds
			if _, err := (rank.IMRank{L: 1}).Select(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig6_Quality measures the quality-grid cell (selection +
// decoupled evaluation) for each technique family representative.
func BenchmarkFig6_Quality(b *testing.B) {
	wc := benchGraph(b, "nethept", 8, goinfmax.WeightedCascade{})
	lt := benchGraph(b, "nethept", 8, goinfmax.LTUniform{})
	cells := []struct {
		alg   string
		g     *graph.Graph
		model goinfmax.Model
		param float64
	}{
		{"CELF", wc, goinfmax.IC, 30},
		{"IMM", wc, goinfmax.IC, 0.3},
		{"PMC", wc, goinfmax.IC, 50},
		{"EaSyIM", wc, goinfmax.IC, 0},
		{"LDAG", lt, goinfmax.LT, 0},
		{"IMRank1", wc, goinfmax.IC, 5},
	}
	for _, c := range cells {
		b.Run(c.alg, func(b *testing.B) {
			alg, err := goinfmax.NewAlgorithm(c.alg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := goinfmax.RunConfig{K: 10, Model: c.model, Seed: uint64(i) + 1,
					ParamValue: c.param, EvalSims: 200}
				res := goinfmax.Run(alg, c.g, cfg)
				if res.Status != goinfmax.StatusOK {
					b.Fatalf("%v", res.Status)
				}
			}
		})
	}
}

// BenchmarkFig7_SelectionTime isolates pure seed-selection time per family
// (the Figure 7 measurement, no evaluation).
func BenchmarkFig7_SelectionTime(b *testing.B) {
	wc := benchGraph(b, "dblp", 64, goinfmax.WeightedCascade{})
	lt := benchGraph(b, "dblp", 64, goinfmax.LTUniform{})
	b.Run("IMM", func(b *testing.B) { benchSelect(b, "IMM", wc, goinfmax.IC, 20, 0.3) })
	b.Run("TIM+", func(b *testing.B) { benchSelect(b, "TIM+", wc, goinfmax.IC, 20, 0.3) })
	b.Run("PMC", func(b *testing.B) { benchSelect(b, "PMC", wc, goinfmax.IC, 20, 50) })
	b.Run("StaticGreedy", func(b *testing.B) { benchSelect(b, "StaticGreedy", wc, goinfmax.IC, 20, 50) })
	b.Run("IRIE", func(b *testing.B) { benchSelect(b, "IRIE", wc, goinfmax.IC, 20, 0) })
	b.Run("EaSyIM", func(b *testing.B) { benchSelect(b, "EaSyIM", wc, goinfmax.IC, 20, 0) })
	b.Run("LDAG", func(b *testing.B) { benchSelect(b, "LDAG", lt, goinfmax.LT, 20, 0) })
	b.Run("SIMPATH", func(b *testing.B) { benchSelect(b, "SIMPATH", lt, goinfmax.LT, 20, 0) })
}

// BenchmarkFig8_Memory reports the accounted data-structure bytes per
// technique as a custom metric (the Figure 8 measurement).
func BenchmarkFig8_Memory(b *testing.B) {
	wc := benchGraph(b, "dblp", 64, goinfmax.WeightedCascade{})
	for _, name := range []string{"IMM", "PMC", "StaticGreedy", "EaSyIM", "IRIE"} {
		b.Run(name, func(b *testing.B) {
			alg, err := goinfmax.NewAlgorithm(name)
			if err != nil {
				b.Fatal(err)
			}
			var bytesUsed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := core.NewContext(wc, goinfmax.IC, 10, uint64(i)+1)
				if _, err := alg.Select(ctx); err != nil {
					b.Fatal(err)
				}
				bytesUsed = ctx.MemUsed()
			}
			b.ReportMetric(float64(bytesUsed), "acct-bytes")
		})
	}
}

// BenchmarkTable3_Large measures the four scalable techniques on a larger
// (still laptop-affordable) stand-in, the Table 3 cell shape.
func BenchmarkTable3_Large(b *testing.B) {
	wc := benchGraph(b, "livejournal", 256, goinfmax.WeightedCascade{})
	for _, name := range []string{"PMC", "IMM", "TIM+", "EaSyIM"} {
		b.Run(name, func(b *testing.B) {
			param := 0.0
			switch name {
			case "IMM", "TIM+":
				param = 0.3
			case "PMC":
				param = 50
			}
			benchSelect(b, name, wc, goinfmax.IC, 20, param)
		})
	}
}

// BenchmarkFig9_CELFvsCELFpp measures the M1 pair at identical simulation
// counts (Figures 9a-b).
func BenchmarkFig9_CELFvsCELFpp(b *testing.B) {
	wc := benchGraph(b, "nethept", 16, goinfmax.WeightedCascade{})
	b.Run("CELF", func(b *testing.B) { benchSelect(b, "CELF", wc, goinfmax.IC, 10, 50) })
	b.Run("CELF++", func(b *testing.B) { benchSelect(b, "CELF++", wc, goinfmax.IC, 10, 50) })
}

// BenchmarkFig9ce_CELFQuality measures CELF at the simulation ladder of
// Figures 9c-e.
func BenchmarkFig9ce_CELFQuality(b *testing.B) {
	wc := benchGraph(b, "nethept", 16, goinfmax.WeightedCascade{})
	for _, r := range []float64{10, 50, 200} {
		b.Run(nameOfSims(r), func(b *testing.B) {
			benchSelect(b, "CELF", wc, goinfmax.IC, 10, r)
		})
	}
}

func nameOfSims(r float64) string {
	switch r {
	case 10:
		return "r=10"
	case 50:
		return "r=50"
	default:
		return "r=200"
	}
}

// BenchmarkFig10_Extrapolation measures the M4 cell: an IMM run plus the
// MC evaluation it under-reports.
func BenchmarkFig10_Extrapolation(b *testing.B) {
	wc := benchGraph(b, "nethept", 16, goinfmax.ICConstant{P: 0.1})
	alg, err := goinfmax.NewAlgorithm("IMM")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := goinfmax.RunConfig{K: 10, Model: goinfmax.IC, Seed: uint64(i) + 1,
			ParamValue: 0.8, EvalSims: 200}
		res := goinfmax.Run(alg, wc, cfg)
		if res.EstimatedSpread < 0 {
			b.Fatal("no extrapolated spread")
		}
	}
}

// BenchmarkTable4_LDAGvsSIMPATH measures the M5 pair under LT-uniform.
func BenchmarkTable4_LDAGvsSIMPATH(b *testing.B) {
	lt := benchGraph(b, "nethept", 8, goinfmax.LTUniform{})
	b.Run("LDAG", func(b *testing.B) { benchSelect(b, "LDAG", lt, goinfmax.LT, 20, 0) })
	b.Run("SIMPATH", func(b *testing.B) { benchSelect(b, "SIMPATH", lt, goinfmax.LT, 20, 0) })
}

// BenchmarkFig10f_IMRankConvergence measures both convergence criteria
// (the M7 contrast).
func BenchmarkFig10f_IMRankConvergence(b *testing.B) {
	wc := benchGraph(b, "hepph", 16, goinfmax.WeightedCascade{})
	for _, mode := range []rank.ConvergenceMode{rank.TopKSetStable, rank.FixedRounds} {
		name := "corrected"
		if mode == rank.TopKSetStable {
			name = "incorrect"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := core.NewContext(wc, goinfmax.IC, 50, uint64(i)+1)
				ctx.ParamValue = 10
				if _, err := (rank.IMRank{L: 1, Mode: mode}).Select(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12_MCSpreadEvaluation measures the uniform spread evaluator
// at the Figure 12 simulation counts.
func BenchmarkFig12_MCSpreadEvaluation(b *testing.B) {
	wc := benchGraph(b, "nethept", 8, goinfmax.WeightedCascade{})
	seeds := []goinfmax.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, sims := range []int{100, 1000} {
		name := "r=100"
		if sims == 1000 {
			name = "r=1000"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est := goinfmax.EstimateSpread(wc, goinfmax.IC, seeds, sims, uint64(i))
				if est.Mean <= 0 {
					b.Fatal("zero spread")
				}
			}
		})
	}
}

// BenchmarkFig11_Skyline measures the classification + decision tree.
func BenchmarkFig11_Skyline(b *testing.B) {
	// Synthesize a plausible results grid once.
	var results []core.Result
	for _, algName := range []string{"IMM", "TIM+", "PMC", "EaSyIM", "CELF"} {
		for k := 1; k <= 50; k += 7 {
			r := core.Result{Algorithm: algName, Dataset: "d", K: k, Status: core.OK,
				SelectionTime: time.Duration(k) * time.Millisecond, PeakMemBytes: int64(k) * 1024}
			r.Spread.Mean = float64(100 + k)
			results = append(results, r)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placement := core.ClassifyResults(results, 0.05, 10, 10)
		if len(placement) == 0 {
			b.Fatal("empty placement")
		}
		if rec, _ := core.Recommend(core.Scenario{Model: weights.LT}); rec == "" {
			b.Fatal("no recommendation")
		}
	}
}

// BenchmarkTable5_Support measures registry support-matrix generation.
func BenchmarkTable5_Support(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sm := core.Default().SupportMatrix()
		if len(sm) < 15 {
			b.Fatalf("matrix has %d techniques", len(sm))
		}
	}
}

// BenchmarkExt_Exclusions measures the techniques behind the paper's §4
// exclusion claims (the `exclusions` extension experiment).
func BenchmarkExt_Exclusions(b *testing.B) {
	wc := benchGraph(b, "nethept", 16, goinfmax.WeightedCascade{})
	b.Run("PMIA", func(b *testing.B) { benchSelect(b, "PMIA", wc, goinfmax.IC, 10, 0) })
	b.Run("DegreeDiscount", func(b *testing.B) { benchSelect(b, "DegreeDiscount", wc, goinfmax.IC, 10, 0) })
	b.Run("IRIE", func(b *testing.B) { benchSelect(b, "IRIE", wc, goinfmax.IC, 10, 0) })
	b.Run("SKIM", func(b *testing.B) { benchSelect(b, "SKIM", wc, goinfmax.IC, 10, 16) })
	b.Run("RIS", func(b *testing.B) { benchSelect(b, "RIS", wc, goinfmax.IC, 10, 0.5) })
}

// BenchmarkDiffusion_SingleCascade measures the core IC simulation kernel,
// the unit of everything the MC family does.
func BenchmarkDiffusion_SingleCascade(b *testing.B) {
	wc := benchGraph(b, "dblp", 64, goinfmax.WeightedCascade{})
	sim := diffusion.NewSimulator(wc, weights.IC)
	seeds := []goinfmax.NodeID{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := sim.EstimateSpread(seeds, 10, uint64(i))
		if est.Mean <= 0 {
			b.Fatal("zero")
		}
	}
}

// benchOracles memoizes serving oracles across benchmark targets: the
// whole point of the serving layer is that the build cost is paid once.
var benchOracles = map[string]serve.Oracle{}

func benchOracle(b *testing.B, backend string) (serve.Oracle, *graph.Graph) {
	b.Helper()
	// The acceptance target: a Barabási–Albert stand-in around 50k nodes
	// (youtube at scale 22 ≈ 51k), WC weights, the serving default.
	g := benchGraph(b, "youtube", 22, goinfmax.WeightedCascade{})
	o, ok := benchOracles[backend]
	if !ok {
		var err error
		o, err = serve.BuildOracle(context.Background(), backend, g, weights.IC, 0, 1, serve.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		benchOracles[backend] = o
	}
	return o, g
}

// BenchmarkOracleSpread measures a warm /v1/spread point query: one
// σ(S) estimate from the precomputed index, |S| = 10.
func BenchmarkOracleSpread(b *testing.B) {
	for _, backend := range serve.Backends() {
		b.Run(backend, func(b *testing.B) {
			o, g := benchOracle(b, backend)
			seeds := make([]goinfmax.NodeID, 10)
			for i := range seeds {
				seeds[i] = goinfmax.NodeID(i * int(g.N()) / 10)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp, err := o.Spread(ctx, seeds)
				if err != nil || sp <= 0 {
					b.Fatalf("spread %v err %v", sp, err)
				}
			}
		})
	}
}

// BenchmarkOracleSeeds measures a warm /v1/seeds query: greedy top-10
// selection over the precomputed index (the <100ms acceptance path).
func BenchmarkOracleSeeds(b *testing.B) {
	for _, backend := range serve.Backends() {
		b.Run(backend, func(b *testing.B) {
			o, _ := benchOracle(b, backend)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seeds, sp, err := o.Seeds(ctx, 10)
				if err != nil || len(seeds) != 10 || sp <= 0 {
					b.Fatalf("seeds %v spread %v err %v", seeds, sp, err)
				}
			}
		})
	}
}

// BenchmarkRRSampleBatch measures bulk RR-set production into the flat
// arena, serial vs 8 sampling workers at a fixed seed (the results are
// byte-identical either way). On a single-core machine the 8-worker run
// can only measure orchestration overhead; the speedup is linear in real
// cores because workers share no state until the final ordered merge.
func BenchmarkRRSampleBatch(b *testing.B) {
	g := benchGraph(b, "dblp", 64, goinfmax.WeightedCascade{})
	const count = 5000
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := diffusion.NewRRSampler(g, weights.IC)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store := graphalgo.NewSetStore()
				added, err := s.SampleBatch(store, count, uint64(i)+1, workers, nil, nil)
				if err != nil || added != count {
					b.Fatalf("added %d err %v", added, err)
				}
			}
			b.ReportMetric(float64(count)*float64(b.N)/b.Elapsed().Seconds(), "sets/s")
		})
	}
}

// BenchmarkGreedyMaxCoverFlat contrasts the flat-arena coverage problem
// (counting-sort inversion over the SetStore) with the slice-of-slices
// layout it replaced, on identical RR sets. The baseline below replicates
// the old append-grown inversion and lazy heap greedy verbatim.
func BenchmarkGreedyMaxCoverFlat(b *testing.B) {
	g := benchGraph(b, "dblp", 64, goinfmax.WeightedCascade{})
	s := diffusion.NewRRSampler(g, weights.IC)
	store := graphalgo.NewSetStore()
	const numSets, k = 20000, 20
	if _, err := s.SampleBatch(store, numSets, 1, 1, nil, nil); err != nil {
		b.Fatal(err)
	}
	sets := make([][]int32, store.Len())
	for i := range sets {
		sets[i] = store.Set(i)
	}
	n := int32(g.N())
	var flatSeeds, sliceSeeds []int32
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cp := graphalgo.NewCoverageProblem(n, store)
			res, err := cp.GreedyMaxCoverPoll(k, nil)
			if err != nil || len(res.Seeds) != k {
				b.Fatalf("seeds %v err %v", res.Seeds, err)
			}
			flatSeeds = res.Seeds
		}
	})
	b.Run("slices", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sliceSeeds = greedySliceBaseline(n, sets, k)
			if len(sliceSeeds) != k {
				b.Fatalf("seeds %v", sliceSeeds)
			}
		}
	})
	for i := range flatSeeds { // both layouts must agree on the answer
		if flatSeeds[i] != sliceSeeds[i] {
			b.Fatalf("flat seeds %v != slice seeds %v", flatSeeds, sliceSeeds)
		}
	}
}

// greedySliceBaseline is the pre-arena implementation kept for the
// benchmark above: append-grown per-node membership slices and the same
// lazy (CELF-style) heap greedy.
func greedySliceBaseline(n int32, sets [][]int32, k int) []int32 {
	nodeSets := make([][]int32, n)
	degree := make([]int64, n)
	for si, set := range sets {
		for _, v := range set {
			ns := nodeSets[v]
			if len(ns) > 0 && ns[len(ns)-1] == int32(si) {
				continue
			}
			nodeSets[v] = append(nodeSets[v], int32(si))
			degree[v]++
		}
	}
	covered := make([]bool, len(sets))
	h := make(baselineHeap, 0, n)
	for v, d := range degree {
		if d > 0 {
			h = append(h, baselineItem{node: int32(v), gain: d, round: 0})
		}
	}
	heap.Init(&h)
	var seeds []int32
	for round := 0; round < k && len(h) > 0; round++ {
		var pick baselineItem
		for {
			top := h[0]
			if int(top.round) == round {
				pick = top
				heap.Pop(&h)
				break
			}
			gain := int64(0)
			for _, si := range nodeSets[top.node] {
				if !covered[si] {
					gain++
				}
			}
			h[0].gain = gain
			h[0].round = int32(round)
			heap.Fix(&h, 0)
		}
		for _, si := range nodeSets[pick.node] {
			covered[si] = true
		}
		seeds = append(seeds, pick.node)
	}
	return seeds
}

type baselineItem struct {
	node  int32
	gain  int64
	round int32
}

type baselineHeap []baselineItem

func (h baselineHeap) Len() int            { return len(h) }
func (h baselineHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h baselineHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *baselineHeap) Push(x interface{}) { *h = append(*h, x.(baselineItem)) }
func (h *baselineHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// BenchmarkSpreadEvalBatch measures the evaluation cost of a full 9-point
// k-sweep (the paper's k ∈ {1, 25, …, 200} grid) whose seed sets form a
// prefix chain, as greedy/CELF/RR selections produce. "batch" evaluates all
// nine sets against common live-edge worlds with one incremental frontier
// extension per world (diffusion.WorldEvaluator); "naive" re-simulates every
// set from scratch with the per-cell estimator it replaces. Same r per
// point, serial in both cases, so ns/op compares total sweep evaluation
// wall-clock directly (BENCH_spread.json records the measured ratio).
func BenchmarkSpreadEvalBatch(b *testing.B) {
	g := benchGraph(b, "nethept", 8, goinfmax.WeightedCascade{})
	const r = 1000
	ks := core.PaperKs()
	order := make([]goinfmax.NodeID, ks[len(ks)-1])
	for i := range order {
		order[i] = goinfmax.NodeID(i)
	}
	sets := make([][]goinfmax.NodeID, len(ks))
	for i, k := range ks {
		sets[i] = order[:k]
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := diffusion.NewWorldEvaluator(g, weights.IC, r, uint64(i)+1)
			res, err := ev.EvalBatch(sets, diffusion.BatchOptions{Workers: 1})
			if err != nil || len(res) != len(sets) || res[0].Estimate.Mean <= 0 {
				b.Fatalf("res %v err %v", res, err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			for _, s := range sets {
				est, err := diffusion.EstimateSpreadParallelCtx(ctx, g, weights.IC, s, r, uint64(i)+1, 1)
				if err != nil || est.Mean <= 0 {
					b.Fatalf("est %v err %v", est, err)
				}
			}
		}
	})
}

// Work-stealing executor benchmarks
//
// The skew fixture below is the regime the sched executor exists for: a
// directed chain at IC p=1 makes RR-set cost a steep function of the
// root, so a batch is a few giant samples among many tiny ones and
// static contiguous chunks park every worker behind whichever one drew
// the giants. Worker counts follow GOMAXPROCS so scripts/bench.sh's
// `-cpu 1,4,8` sweep drives the fleet size; on a single-core container
// the multi-cpu rows can only measure orchestration overhead (the
// modeled multicore rows live in BENCH_multicore.json).

// benchSkewGraph memoizes the steal-forcing fixture: a chain at arc
// probability 1 over the first n/8 nodes, everything else isolated.
func benchSkewGraph(b *testing.B) *graph.Graph {
	b.Helper()
	if g, ok := benchGraphs["skew"]; ok {
		return g
	}
	const n, chain = 32768, 4096
	bld := graph.NewBuilder(n, true)
	for v := int32(1); v < chain; v++ {
		if err := bld.AddEdge(graph.NodeID(v-1), graph.NodeID(v), 1); err != nil {
			b.Fatal(err)
		}
	}
	g := goinfmax.ICConstant{P: 1}.Apply(bld.BuildSimple()).(*graph.Graph)
	benchGraphs["skew"] = g
	return g
}

// splitmixAt mirrors the batch sampler's per-index seed derivation (the
// i-th splitmix64 output of base) so the static baseline below draws
// the identical sample population.
func splitmixAt(base uint64, i int64) uint64 {
	z := base + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// staticChunkBaseline replicates the fan-out the stealing executor
// replaced: one contiguous ceil(count/workers) chunk per worker,
// private shards, worker-order merge — no rebalancing once a worker
// exhausts its chunk.
func staticChunkBaseline(g *graph.Graph, count int64, baseSeed uint64, workers int) *graphalgo.SetStore {
	if workers < 1 {
		workers = 1
	}
	chunk := (count + int64(workers) - 1) / int64(workers)
	shards := make([]*graphalgo.SetStore, workers)
	panics := make(chan interface{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := int64(w)*chunk, int64(w)*chunk+chunk
		if hi > count {
			hi = count
		}
		if lo >= hi {
			break
		}
		shard := graphalgo.NewSetStore()
		shards[w] = shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			s := diffusion.NewRRSampler(g, weights.IC)
			buf := make([]goinfmax.NodeID, 0, 256)
			for i := lo; i < hi; i++ {
				r := rng.New(splitmixAt(baseSeed, i))
				root := goinfmax.NodeID(r.Int31n(g.N()))
				buf = s.Sample(root, r, buf[:0])
				shard.Append(buf)
			}
		}()
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
	out := graphalgo.NewSetStore()
	for _, sh := range shards {
		if sh != nil {
			out.AppendStore(sh)
		}
	}
	return out
}

// BenchmarkRRSampleSkew contrasts the stealing executor with the static
// contiguous-chunk fan-out it replaced, on the skew fixture, at
// GOMAXPROCS workers. Both variants draw the identical sample
// population (same per-index splitmix64 streams, asserted below), so
// ns/op compares scheduling alone.
func BenchmarkRRSampleSkew(b *testing.B) {
	g := benchSkewGraph(b)
	const count = 2048
	workers := runtime.GOMAXPROCS(0)
	{
		s := diffusion.NewRRSampler(g, weights.IC)
		want := graphalgo.NewSetStore()
		if _, err := s.SampleBatch(want, count, 1, workers, nil, nil); err != nil {
			b.Fatal(err)
		}
		if !staticChunkBaseline(g, count, 1, workers).Equal(want) {
			b.Fatal("static baseline draws a different sample population")
		}
	}
	b.Run("steal", func(b *testing.B) {
		s := diffusion.NewRRSampler(g, weights.IC)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store := graphalgo.NewSetStore()
			added, err := s.SampleBatch(store, count, uint64(i)+1, workers, nil, nil)
			if err != nil || added != count {
				b.Fatalf("added %d err %v", added, err)
			}
		}
	})
	b.Run("static", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if store := staticChunkBaseline(g, count, uint64(i)+1, workers); store.Len() != count {
				b.Fatalf("sampled %d sets", store.Len())
			}
		}
	})
}

// BenchmarkSpreadEvalSkew measures batched common-world evaluation with
// the stealing fan-out at GOMAXPROCS workers on a near-percolation
// random graph, where per-world cascade costs vary by orders of
// magnitude — the world-index analogue of the RR-set skew above.
func BenchmarkSpreadEvalSkew(b *testing.B) {
	key := "evalskew"
	g, ok := benchGraphs[key]
	if !ok {
		src := rng.New(7)
		const n = 4096
		bld := graph.NewBuilder(n, true)
		for i := 0; i < 6*n; i++ {
			u, v := graph.NodeID(src.Int31n(n)), graph.NodeID(src.Int31n(n))
			if u != v {
				_ = bld.AddEdge(u, v, 1)
			}
		}
		g = goinfmax.ICConstant{P: 0.12}.Apply(bld.BuildSimple()).(*graph.Graph)
		benchGraphs[key] = g
	}
	sets := make([][]goinfmax.NodeID, 6)
	for i := range sets {
		for v := 0; v <= i*3; v++ {
			sets[i] = append(sets[i], goinfmax.NodeID(v*17))
		}
	}
	const r = 512
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := diffusion.NewWorldEvaluator(g, weights.IC, r, uint64(i)+1)
		res, err := ev.EvalBatch(sets, diffusion.BatchOptions{Workers: workers})
		if err != nil || len(res) != len(sets) {
			b.Fatalf("res %v err %v", res, err)
		}
	}
}

// BenchmarkDiffusion_RRSet measures RR-set sampling, the unit of the
// TIM+/IMM family, under both weight regimes of Figure 1a.
func BenchmarkDiffusion_RRSet(b *testing.B) {
	b.Run("WC", func(b *testing.B) {
		g := benchGraph(b, "dblp", 64, goinfmax.WeightedCascade{})
		s := diffusion.NewRRSampler(g, weights.IC)
		r := core.NewContext(g, weights.IC, 1, 1).RNG
		var buf []goinfmax.NodeID
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = s.SampleUniformRoot(r, buf[:0])
		}
	})
	b.Run("IC01", func(b *testing.B) {
		g := benchGraph(b, "dblp", 64, goinfmax.ICConstant{P: 0.1})
		s := diffusion.NewRRSampler(g, weights.IC)
		r := core.NewContext(g, weights.IC, 1, 1).RNG
		var buf []goinfmax.NodeID
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = s.SampleUniformRoot(r, buf[:0])
		}
	})
}

// benchPersistSnapshot memoizes the built RR-set index wrapped for
// persistence, at the serving acceptance scale (youtube ≈ 51k nodes, WC
// weights, default θ).
var benchPersistSnap *persist.Snapshot

func benchPersistSnapshot(b *testing.B) *persist.Snapshot {
	b.Helper()
	if benchPersistSnap != nil {
		return benchPersistSnap
	}
	g := benchGraph(b, "youtube", 22, goinfmax.WeightedCascade{})
	theta := 4 * int64(g.N()) // the serving default: θ = 4n at this scale
	ix, err := rrset.BuildIndex(core.NewContext(g, weights.IC, 1, 1), theta)
	if err != nil {
		b.Fatal(err)
	}
	benchPersistSnap = &persist.Snapshot{
		Header: persist.Header{
			Backend:     "rrset",
			Fingerprint: persist.GraphFingerprint(g, weights.IC.String()),
			BuildSeed:   1,
			IndexSize:   theta,
			Nodes:       g.N(),
		},
		RRIndex: ix,
	}
	return benchPersistSnap
}

// BenchmarkPersistSave measures writing the oracle snapshot with the full
// atomic protocol (encode + CRC + fsync + rename + dir fsync).
func BenchmarkPersistSave(b *testing.B) {
	s := benchPersistSnapshot(b)
	path := b.TempDir() + "/oracle.snap"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := persist.Save(path, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistColdStart measures booting a replica from the snapshot:
// read, verify the envelope, decode the arena and rebuild the inversion —
// the path that replaces the sampling build on a warm restart.
func BenchmarkPersistColdStart(b *testing.B) {
	s := benchPersistSnapshot(b)
	path := b.TempDir() + "/oracle.snap"
	if err := persist.Save(path, s); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := persist.Load(path, s.Header)
		if err != nil {
			b.Fatal(err)
		}
		if got.RRIndex.NumSets() != s.RRIndex.NumSets() {
			b.Fatal("short load")
		}
	}
}

// BenchmarkPersistRebuild is the cold-start baseline: the same oracle
// built from scratch by sampling. The ColdStart/Rebuild ratio is the
// whole value proposition of -oraclefile.
func BenchmarkPersistRebuild(b *testing.B) {
	s := benchPersistSnapshot(b) // ensure the same graph + θ
	g := benchGraph(b, "youtube", 22, goinfmax.WeightedCascade{})
	theta := int64(s.RRIndex.NumSets())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := rrset.BuildIndex(core.NewContext(g, weights.IC, 1, 1), theta)
		if err != nil {
			b.Fatal(err)
		}
		if ix.NumSets() != int(theta) {
			b.Fatal("short build")
		}
	}
}
