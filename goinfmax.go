// Package goinfmax is a benchmarking platform for influence maximization on
// social networks, reproducing "Debunking the Myths of Influence
// Maximization: An In-Depth Benchmarking Study" (Arora, Galhotra, Ranu —
// SIGMOD 2017).
//
// The platform implements eleven IM techniques plus baselines behind one
// Algorithm interface, the IC/WC/LT diffusion models with their standard
// edge-weight schemes, a decoupled Monte-Carlo spread evaluator, synthetic
// dataset generators standing in for the paper's SNAP graphs, and an
// instrumented runner that measures quality, running time and memory under
// identical experimental conditions.
//
// Quick start:
//
//	g := goinfmax.Dataset("nethept", 0, 1)        // synthetic stand-in
//	wg := goinfmax.WeightedCascade{}.Apply(g)     // WC edge weights
//	alg, _ := goinfmax.NewAlgorithm("IMM")
//	res := goinfmax.Run(alg, wg, goinfmax.DefaultRunConfig(goinfmax.IC, 50))
//	fmt.Println(res.Seeds, res.Spread)
package goinfmax

import (
	"context"

	_ "github.com/sigdata/goinfmax/internal/algo/register" // populate core.Default
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/datasets"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Re-exported core types; see the internal packages for full documentation.
type (
	// Graph is the in-memory CSR social network (paper Def. 1).
	Graph = graph.Graph
	// G is the narrow read interface every consumer uses; both the CSR
	// Graph and the compact binary backend implement it.
	G = graph.G
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Model is the diffusion semantics (IC or LT).
	Model = weights.Model
	// Scheme assigns edge weights (paper §2.1).
	Scheme = weights.Scheme
	// Algorithm is the generalized IM module (paper Alg. 3).
	Algorithm = core.Algorithm
	// RunConfig configures one benchmark cell.
	RunConfig = core.RunConfig
	// Result is an instrumented benchmark outcome.
	Result = core.Result
	// Estimate is a Monte-Carlo spread estimate.
	Estimate = diffusion.Estimate
	// ParamSearch is the external-parameter selection procedure (§5.1.1).
	ParamSearch = core.ParamSearch
	// Scenario feeds the Fig. 11b decision tree.
	Scenario = core.Scenario
	// Journal is the append-only JSONL checkpoint of completed cells used
	// by interrupted-and-resumed benchmark campaigns.
	Journal = core.Journal
	// PanicError is a recovered algorithm panic (Status Panicked) with the
	// captured stack.
	PanicError = core.PanicError
)

// Weight schemes (paper §2.1).
type (
	// ICConstant is IC with constant probability p.
	ICConstant = weights.ICConstant
	// WeightedCascade is WC: p(u,v) = 1/|In(v)|.
	WeightedCascade = weights.WeightedCascade
	// Trivalency picks arc weights from a fixed set.
	Trivalency = weights.Trivalency
	// LTUniform is LT with w(u,v) = 1/|In(v)|.
	LTUniform = weights.LTUniform
	// LTRandom is LT with normalized random weights.
	LTRandom = weights.LTRandom
	// LTParallel is LT on multigraphs via parallel-edge consolidation.
	LTParallel = weights.LTParallel
)

// Diffusion model constants.
const (
	// IC is Independent Cascade (paper Def. 4).
	IC = weights.IC
	// LT is Linear Threshold (paper Def. 5).
	LT = weights.LT
)

// Status is the outcome classification of a benchmark cell (paper Table 3).
type Status = core.Status

// Benchmark cell statuses.
const (
	// StatusOK means the run completed within budget.
	StatusOK = core.OK
	// StatusDNF means the time budget was exhausted ("did not finish").
	StatusDNF = core.DNF
	// StatusCrashed means the memory cap was exceeded.
	StatusCrashed = core.Crashed
	// StatusUnsupported means the model is not supported (paper Table 5).
	StatusUnsupported = core.Unsupported
	// StatusFailed means the algorithm returned an unexpected error.
	StatusFailed = core.Failed
	// StatusPanicked means the algorithm panicked; the panic was recovered
	// by the resilience layer and the campaign continued.
	StatusPanicked = core.Panicked
	// StatusCancelled means the run was interrupted from outside (context
	// cancellation / SIGINT) and is eligible for re-execution on resume.
	StatusCancelled = core.Cancelled
)

// NewAlgorithm instantiates a registered technique by canonical name:
// the paper's eleven ("CELF", "CELF++", "TIM+", "IMM", "StaticGreedy",
// "PMC", "LDAG", "SIMPATH", "IRIE", "EaSyIM", "IMRank1", "IMRank2"), the
// techniques it excluded with an argued claim ("GREEDY", "RIS",
// "DegreeDiscount", "PMIA", "SKIM"), the cited extensions ("UBLF",
// "SSA") and the proxies ("HighDegree", "PageRank", "Random").
func NewAlgorithm(name string) (Algorithm, error) {
	return core.Default().New(name)
}

// Algorithms lists the registered technique names.
func Algorithms() []string { return core.Default().Names() }

// Dataset generates the synthetic stand-in for one of the paper's Table 1
// datasets (nethept, hepph, dblp, youtube, livejournal, orkut, twitter,
// friendster, dblp-large). scale 0 uses the dataset's default laptop scale;
// larger values shrink further.
func Dataset(name string, scale int64, seed uint64) *Graph {
	return datasets.MustGenerate(name, scale, seed)
}

// Datasets lists the available dataset names.
func Datasets() []string { return datasets.Names() }

// Run executes one instrumented benchmark cell (seed selection + decoupled
// MC spread evaluation).
func Run(alg Algorithm, g G, cfg RunConfig) Result { return core.Run(alg, g, cfg) }

// RunCtx is Run under an external context: cancellation interrupts the
// cell cleanly (Status Cancelled), panics are isolated (Status Panicked)
// and the hard watchdog bounds non-cooperative algorithms (DNF with
// Result.HardKilled set).
func RunCtx(ctx context.Context, alg Algorithm, g G, cfg RunConfig) Result {
	return core.RunCtx(ctx, alg, g, cfg)
}

// RunSweepCtx runs alg over the k values under ctx, stopping early (with
// partial results) once ctx is cancelled. Spread evaluation is batched over
// the whole sweep against common live-edge worlds: prefix-chained greedy
// selections cost roughly one full evaluation pass instead of one per k,
// and each cell's Spread is bit-identical to running that cell alone.
func RunSweepCtx(ctx context.Context, alg Algorithm, g G, cfg RunConfig, ks []int) []Result {
	return core.RunSweepCtx(ctx, alg, g, cfg, ks)
}

// EvaluateSweepCtx fills in the decoupled spread evaluation (Spread,
// EvalTime) of every completed-but-unevaluated OK cell in results, in one
// common-world batch sharing live-edge worlds across all cells. On
// cancellation the cells still awaiting evaluation are downgraded to
// Cancelled (re-run on resume) and core.ErrCancelled is returned.
func EvaluateSweepCtx(ctx context.Context, g G, cfg RunConfig, results []Result) error {
	return core.EvaluateSweepCtx(ctx, g, cfg, results)
}

// OpenJournal opens (or extends) an append-only JSONL checkpoint journal.
func OpenJournal(path string) (*Journal, error) { return core.OpenJournal(path) }

// LoadJournal reads a checkpoint journal; a missing file is an empty
// journal and a truncated trailing line (crash mid-write) is dropped.
func LoadJournal(path string) ([]Result, error) { return core.LoadJournal(path) }

// JournalIndex maps Result.CellKey → Result for resume lookups, excluding
// incomplete (Cancelled) cells.
func JournalIndex(results []Result) map[string]Result { return core.JournalIndex(results) }

// DefaultRunConfig returns the paper-standard cell configuration.
func DefaultRunConfig(m Model, k int) RunConfig { return core.DefaultRunConfig(m, k) }

// EstimateSpread evaluates σ(seeds) with r Monte-Carlo simulations in
// parallel (paper Alg. 1 + §5.1 evaluation protocol).
func EstimateSpread(g G, m Model, seeds []NodeID, r int, seed uint64) Estimate {
	return diffusion.EstimateSpreadParallel(g, m, seeds, r, seed, 0)
}

// Recommend walks the paper's Fig. 11b decision tree.
func Recommend(s Scenario) (string, []string) { return core.Recommend(s) }
