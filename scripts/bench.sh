#!/usr/bin/env sh
# Benchmark runner and perf-regression ratchet (the wand workflow):
# run the hot-path benchmark set across a -cpu sweep, record the rows,
# and compare ns/op against the committed baseline — failing the gate
# when any benchmark regresses more than BENCH_MAX_REGRESSION_PCT.
#
# Usage: sh scripts/bench.sh [mode]
#
#   (default)  run the sweep into benchmarks/latest.txt, then compare
#              against benchmarks/baseline.txt
#   run        run the sweep only (writes benchmarks/latest.txt)
#   compare    compare an existing benchmarks/latest.txt
#   update     run the sweep and promote it to benchmarks/baseline.txt
#              (the baseline-promotion step: commit the result)
#   smoke      one iteration of the discovery-wide bench set — bit-rot
#              check only, no timing (used by check.sh and CI)
#   selftest   synthesize an artificially slowed latest.txt and assert
#              the compare gate FAILS it — proves the ratchet trips
#
# Environment:
#   BENCH_CPUS                -cpu sweep        (default 1,4,8)
#   BENCH_TIME                -benchtime        (default 0.5s)
#   BENCH_MAX_REGRESSION_PCT  failure threshold (default 30)
#
# Benchmark names include the -cpu suffix (…-4, …-8), so baseline and
# latest rows pair per worker count. Rows present on only one side are
# warnings, not failures: adding a benchmark must not break the gate,
# and retiring one is caught at the next `update`.
set -eu
cd "$(dirname "$0")/.."

# The ratchet set: executor hot paths (stealing sampler, batched
# evaluator, arena greedy scan) plus their committed-in-tree baselines.
PATTERN='BenchmarkRRSampleSkew|BenchmarkRRSampleBatch|BenchmarkSpreadEvalSkew|BenchmarkGreedyMaxCoverFlat'
# The smoke set: every bench harness the repo ships, one iteration.
SMOKE_PATTERN='BenchmarkRR|BenchmarkSpreadEval|BenchmarkGreedyMaxCover|BenchmarkPersist|BenchmarkGraphBackend'

CPUS="${BENCH_CPUS:-1,4,8}"
TIME="${BENCH_TIME:-0.5s}"
MAX_PCT="${BENCH_MAX_REGRESSION_PCT:-30}"
BASELINE=benchmarks/baseline.txt
LATEST=benchmarks/latest.txt

run_sweep() {
	mkdir -p benchmarks
	echo "==> bench sweep: -cpu $CPUS -benchtime $TIME"
	go test -run=NONE -bench="$PATTERN" -cpu "$CPUS" -benchtime "$TIME" . | tee "$LATEST"
}

# compare <baseline> <latest>: pair rows by full benchmark name
# (including the -cpu suffix) and fail on ns/op regressions past the
# threshold.
compare() {
	if [ ! -f "$1" ]; then
		echo "bench.sh: no baseline at $1 — run 'sh scripts/bench.sh update' and commit it" >&2
		exit 1
	fi
	echo "==> bench compare: $2 vs $1 (limit +$MAX_PCT%)"
	awk -v max="$MAX_PCT" '
		FNR == NR {
			if ($1 ~ /^Benchmark/) base[$1] = $3
			next
		}
		$1 ~ /^Benchmark/ {
			seen[$1] = 1
			if (!($1 in base)) {
				printf "WARN  %-55s no baseline row (new benchmark?)\n", $1
				next
			}
			pct = base[$1] > 0 ? ($3 - base[$1]) * 100.0 / base[$1] : 0
			status = pct > max ? "FAIL" : "ok"
			printf "%-5s %-55s %14.0f -> %14.0f ns/op  %+7.1f%%\n", status, $1, base[$1], $3, pct
			if (pct > max) bad = 1
		}
		END {
			for (n in base) if (!(n in seen))
				printf "WARN  %-55s in baseline but missing from this run\n", n
			if (bad) {
				printf "bench.sh: regression beyond +%s%% — investigate, or re-promote with scripts/bench.sh update\n", max
				exit 1
			}
		}
	' "$1" "$2"
}

case "${1:-check}" in
smoke)
	echo "==> bench smoke (one iteration, discovery-wide)"
	go test -benchtime=1x -run=NONE -bench="$SMOKE_PATTERN" ./...
	;;
run)
	run_sweep
	;;
compare)
	compare "$BASELINE" "$LATEST"
	;;
update)
	run_sweep
	cp "$LATEST" "$BASELINE"
	echo "==> promoted $LATEST to $BASELINE — commit it"
	;;
selftest)
	# Prove the gate trips: inflate every baseline row 10x and present
	# it as the latest run; compare MUST fail.
	if [ ! -f "$BASELINE" ]; then
		echo "bench.sh selftest: no baseline at $BASELINE" >&2
		exit 1
	fi
	tmp=$(mktemp)
	trap 'rm -f "$tmp"' EXIT
	awk '{ if ($1 ~ /^Benchmark/) $3 = $3 * 10; print }' "$BASELINE" >"$tmp"
	if compare "$BASELINE" "$tmp" >/dev/null 2>&1; then
		echo "bench.sh selftest: FAILED — a 10x slowdown passed the compare gate" >&2
		exit 1
	fi
	echo "==> bench selftest ok: 10x slowdown correctly fails the compare gate"
	;;
check)
	run_sweep
	compare "$BASELINE" "$LATEST"
	;;
*)
	echo "bench.sh: unknown mode '$1' (want run, compare, update, smoke, selftest, or no argument)" >&2
	exit 2
	;;
esac
