#!/usr/bin/env sh
# Full verification gate: static analysis plus the complete test suite
# under the race detector (the resilience layer's supervised goroutines
# make -race load-bearing, not optional).
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> all checks passed"
