#!/usr/bin/env sh
# Full verification gate: formatting, static analysis (go vet plus the
# project's own imlint invariants), then the complete test suite under
# the race detector (the resilience layer's supervised goroutines make
# -race load-bearing, not optional).
set -eu
cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files are not gofmt-formatted:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> imlint ./..."
go run ./cmd/imlint ./...

echo "==> imlint -suppressions ./..."
go run ./cmd/imlint -suppressions ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> serving smoke test"
sh scripts/smoke_serve.sh

# RAM-capped graph substrate leg: stream an R-MAT graph to the binary
# format, run the same IMM cell on CSR (uncapped) and on the compact
# backend with bounded-arena sampling under GOMEMLIMIT, require
# byte-identical seeds and spreads.
echo "==> graph memory smoke test (GOMEMLIMIT)"
sh scripts/smoke_graphmem.sh

# One iteration of every bench harness (sampling, evaluation, greedy
# cover, persistence, graph backends): catches bit-rot in the bench
# harnesses without paying real bench time, plus a deterministic proof
# that the perf-regression ratchet trips on a slowed benchmark. The
# full timed sweep and baseline compare is `sh scripts/bench.sh`.
sh scripts/bench.sh smoke
sh scripts/bench.sh selftest

echo "==> all checks passed"
