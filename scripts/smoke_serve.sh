#!/usr/bin/env sh
# Curl-level smoke test for imserve: build the binary, boot it on a free
# port against a small synthetic graph, exercise every endpoint with curl,
# then deliver SIGINT and require a clean (exit 0) drain. This is the
# black-box complement to the httptest suites — it proves the shipped
# binary, not just the handler tree.
set -eu
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)/imserve
LOG=$(mktemp)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$BIN" "$LOG"' EXIT

echo "==> build cmd/imserve"
go build -o "$BIN" ./cmd/imserve

echo "==> start imserve on a free port"
"$BIN" -addr 127.0.0.1:0 -dataset nethept -scale 64 -indexsize 5000 >"$LOG" 2>&1 &
pid=$!

# Wait for the listen line; the oracle build on this scale takes well
# under a second, so 30s is a generous ceiling.
addr=""
i=0
while [ $i -lt 300 ]; do
	addr=$(sed -n 's/^imserve: listening on //p' "$LOG")
	if [ -n "$addr" ]; then
		break
	fi
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "imserve exited before listening:" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "imserve never printed its listen address" >&2
	cat "$LOG" >&2
	exit 1
fi
base="http://$addr"
echo "    listening at $base"

fail() {
	echo "smoke: $1" >&2
	cat "$LOG" >&2
	exit 1
}

echo "==> GET /healthz"
out=$(curl -sf "$base/healthz") || fail "healthz failed"
[ "$out" = "ok" ] || fail "healthz body: $out"

echo "==> GET /v1/graph/stats"
out=$(curl -sf "$base/v1/graph/stats") || fail "graph stats failed"
case "$out" in
*'"dataset":"nethept"'*) ;;
*) fail "stats body: $out" ;;
esac

echo "==> POST /v1/seeds"
out=$(curl -sf -X POST "$base/v1/seeds" -d '{"k":5}') || fail "seeds failed"
case "$out" in
*'"k":5'*'"spread":'*) ;;
*) fail "seeds body: $out" ;;
esac

echo "==> POST /v1/spread"
out=$(curl -sf -X POST "$base/v1/spread" -d '{"seeds":[3,1,2]}') || fail "spread failed"
case "$out" in
*'"seeds":[1,2,3]'*) ;;
*) fail "spread did not canonicalize seeds: $out" ;;
esac

echo "==> POST /v1/spread (bad request must 400)"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/spread" -d '{"seeds":[]}')
[ "$code" = "400" ] || fail "empty seed set returned $code, want 400"

echo "==> GET /metrics"
out=$(curl -sf "$base/metrics") || fail "metrics failed"
case "$out" in
*'== requests =='*'== server =='*) ;;
*) fail "metrics tables missing: $out" ;;
esac

echo "==> SIGINT, expect clean drain and exit 0"
kill -INT "$pid"
if ! wait "$pid"; then
	fail "imserve exited non-zero after SIGINT"
fi
grep -q 'drained cleanly' "$LOG" || fail "drain message missing from log"

echo "==> smoke passed"
