#!/usr/bin/env sh
# Curl-level smoke test for imserve: build the binary, boot it on a free
# port against a small synthetic graph, exercise every endpoint with curl,
# then deliver SIGINT and require a clean (exit 0) drain. A second leg
# exercises the persistence lifecycle: boot with -oraclefile (build +
# save), kill, re-boot from the snapshot and require an immediate ready
# with byte-identical /v1/seeds bodies. A third leg runs imload's
# deterministic in-process saturation search (~2s) and asserts the
# knee-report fields plus workload-digest reproducibility across worker
# counts. This is the black-box complement to the httptest suites — it
# proves the shipped binaries, not just the handler tree.
set -eu
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)/imserve
LOG=$(mktemp)
SNAPDIR=$(mktemp -d)
SNAP="$SNAPDIR/oracle.snap"
pid=""
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$BIN" "$LOG" "$SNAPDIR"' EXIT

echo "==> build cmd/imserve"
go build -o "$BIN" ./cmd/imserve

fail() {
	echo "smoke: $1" >&2
	cat "$LOG" >&2
	exit 1
}

# wait_listen blocks until the server whose pid/log are in $pid/$LOG
# prints its listen line, and sets $base. The oracle build on this scale
# takes well under a second, so 30s is a generous ceiling.
wait_listen() {
	addr=""
	i=0
	while [ $i -lt 300 ]; do
		addr=$(sed -n 's/^imserve: listening on //p' "$LOG")
		if [ -n "$addr" ]; then
			break
		fi
		if ! kill -0 "$pid" 2>/dev/null; then
			echo "imserve exited before listening:" >&2
			cat "$LOG" >&2
			exit 1
		fi
		sleep 0.1
		i=$((i + 1))
	done
	[ -n "$addr" ] || fail "imserve never printed its listen address"
	base="http://$addr"
	echo "    listening at $base"
}

# stop_clean SIGINTs $pid and requires a zero exit plus the drain line.
stop_clean() {
	kill -INT "$pid"
	if ! wait "$pid"; then
		fail "imserve exited non-zero after SIGINT"
	fi
	pid=""
	grep -q 'drained cleanly' "$LOG" || fail "drain message missing from log"
}

echo "==> start imserve on a free port"
"$BIN" -addr 127.0.0.1:0 -dataset nethept -scale 64 -indexsize 5000 >"$LOG" 2>&1 &
pid=$!
wait_listen

echo "==> GET /healthz"
out=$(curl -sf "$base/healthz") || fail "healthz failed"
[ "$out" = "ok" ] || fail "healthz body: $out"

echo "==> GET /readyz"
out=$(curl -sf "$base/readyz") || fail "readyz failed"
[ "$out" = "ready" ] || fail "readyz body: $out"

echo "==> GET /v1/graph/stats"
out=$(curl -sf "$base/v1/graph/stats") || fail "graph stats failed"
case "$out" in
*'"dataset":"nethept"'*) ;;
*) fail "stats body: $out" ;;
esac

echo "==> POST /v1/seeds"
out=$(curl -sf -X POST "$base/v1/seeds" -d '{"k":5}') || fail "seeds failed"
case "$out" in
*'"k":5'*'"spread":'*) ;;
*) fail "seeds body: $out" ;;
esac

echo "==> POST /v1/spread"
out=$(curl -sf -X POST "$base/v1/spread" -d '{"seeds":[3,1,2]}') || fail "spread failed"
case "$out" in
*'"seeds":[1,2,3]'*) ;;
*) fail "spread did not canonicalize seeds: $out" ;;
esac

echo "==> POST /v1/spread (bad request must 400)"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/spread" -d '{"seeds":[]}')
[ "$code" = "400" ] || fail "empty seed set returned $code, want 400"

echo "==> GET /metrics"
out=$(curl -sf "$base/metrics") || fail "metrics failed"
case "$out" in
*'== requests =='*'== server =='*) ;;
*) fail "metrics tables missing: $out" ;;
esac

echo "==> SIGINT, expect clean drain and exit 0"
stop_clean

echo "==> persistence: boot with -oraclefile (build + save)"
: >"$LOG"
"$BIN" -addr 127.0.0.1:0 -dataset nethept -scale 64 -indexsize 5000 -oraclefile "$SNAP" >"$LOG" 2>&1 &
pid=$!
wait_listen
out=$(curl -sf "$base/readyz") || fail "readyz failed on persist boot"
[ "$out" = "ready" ] || fail "persist boot readyz: $out"
body1=$(curl -sf -X POST "$base/v1/seeds" -d '{"k":5}') || fail "seeds failed on persist boot"
stop_clean
grep -q 'oracle snapshot saved to' "$LOG" || fail "snapshot-saved message missing from log"
[ -s "$SNAP" ] || fail "snapshot file missing or empty after save"

echo "==> persistence: re-boot from the snapshot"
: >"$LOG"
"$BIN" -addr 127.0.0.1:0 -dataset nethept -scale 64 -indexsize 5000 -oraclefile "$SNAP" >"$LOG" 2>&1 &
pid=$!
wait_listen
grep -q 'oracle loaded from snapshot' "$LOG" || fail "snapshot-load message missing from second boot log"
out=$(curl -sf "$base/readyz") || fail "readyz failed on snapshot boot"
[ "$out" = "ready" ] || fail "snapshot boot readyz: $out"
body2=$(curl -sf -X POST "$base/v1/seeds" -d '{"k":5}') || fail "seeds failed on snapshot boot"
[ "$body1" = "$body2" ] || fail "snapshot boot body differs: $body1 vs $body2"
stop_clean

echo "==> load: deterministic in-process saturation leg (imload)"
LOADBIN="${BIN%/*}/imload"
go build -o "$LOADBIN" ./cmd/imload
LOADOUT="$SNAPDIR/load.json"
: >"$LOG"
"$LOADBIN" -dataset nethept -scale 64 -mode search -slo 250 -maxfailfrac 0.05 \
	-qpsmin 50 -qpsmax 200 -brackets 1 -phase 150ms -warmup 30ms \
	-legs ready,degraded -seed 7 -out "$LOADOUT" >"$LOG" 2>&1 || fail "imload run failed"
for field in '"knee"' '"p99_ms"' '"workload_digest"' '"bracketed"'; do
	grep -q -- "$field" "$LOADOUT" || fail "load report missing $field"
done
grep -q '"mode": "ready"' "$LOADOUT" || fail "load report missing ready leg"
grep -q '"mode": "degraded"' "$LOADOUT" || fail "load report missing degraded leg"

echo "==> load: same seed, different worker count, same stream digest"
LOADOUT2="$SNAPDIR/load2.json"
: >"$LOG"
"$LOADBIN" -dataset nethept -scale 64 -mode fixed -discipline closed -duration 100ms \
	-legs ready -seed 7 -workers 1 -out "$LOADOUT2" >"$LOG" 2>&1 || fail "imload second run failed"
d1=$(sed -n 's/.*"workload_digest": "\([0-9a-f]*\)".*/\1/p' "$LOADOUT")
d2=$(sed -n 's/.*"workload_digest": "\([0-9a-f]*\)".*/\1/p' "$LOADOUT2")
[ -n "$d1" ] || fail "could not extract workload digest from $LOADOUT"
[ "$d1" = "$d2" ] || fail "workload digest changed with worker count: $d1 vs $d2"

echo "==> smoke passed"
