#!/usr/bin/env sh
# RAM-capped graph substrate smoke test: stream a synthetic R-MAT graph to
# the binary format with imgen (never materializing the edge list), then run
# the same IMM cell through imbench twice — once decoded to CSR with no
# memory ceiling, once on the compact mmap backend with bounded-arena
# streaming sampling under a hard GOMEMLIMIT — and require byte-identical
# seed sets. This is the end-to-end proof of the substrate's invariant: the
# memory-bounded path changes the footprint, never the result.
set -eu
cd "$(dirname "$0")/.."

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

echo "==> build cmd/imgen + cmd/imbench"
go build -o "$DIR/imgen" ./cmd/imgen
go build -o "$DIR/imbench" ./cmd/imbench

echo "==> stream a 1M-edge R-MAT graph to the binary format (sort window 8 MiB)"
"$DIR/imgen" -rmat -n 100000 -m 1000000 -seed 5 -sort-budget-mb 8 -o "$DIR/r.gimb"

run_cell() { # backend arenabytes memlimit outfile
	GOMEMLIMIT="$3" "$DIR/imbench" -algo IMM -gfile "$DIR/r.gimb" -backend "$1" \
		-arenabytes "$2" -spilldir "$DIR" -model WC -k 20 -param 0.5 \
		-evalsims 0 -workers 4 -seed 11 >"$4" 2>&1 || {
		echo "smoke: imbench $1 failed" >&2
		cat "$4" >&2
		exit 1
	}
}

echo "==> reference: csr backend, materialized sampling, no memory cap"
run_cell csr 0 "1000GiB" "$DIR/csr.out"

echo "==> capped: compact backend, 8 MiB arena, GOMEMLIMIT=192MiB"
run_cell compact $((8 << 20)) "192MiB" "$DIR/compact.out"

seeds_ref=$(grep '^seeds:' "$DIR/csr.out")
seeds_cap=$(grep '^seeds:' "$DIR/compact.out")
[ -n "$seeds_ref" ] || { echo "smoke: no seeds in csr output" >&2; cat "$DIR/csr.out" >&2; exit 1; }
if [ "$seeds_ref" != "$seeds_cap" ]; then
	echo "smoke: seed sets diverge between backends:" >&2
	echo "  csr:     $seeds_ref" >&2
	echo "  compact: $seeds_cap" >&2
	exit 1
fi

spread_ref=$(sed -n 's/^algorithm-reported.*: //p' "$DIR/csr.out")
spread_cap=$(sed -n 's/^algorithm-reported.*: //p' "$DIR/compact.out")
if [ "$spread_ref" != "$spread_cap" ]; then
	echo "smoke: extrapolated spreads diverge: $spread_ref vs $spread_cap" >&2
	exit 1
fi

echo "    $seeds_ref"
echo "==> graphmem smoke passed (identical seeds and spreads under GOMEMLIMIT)"
