package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Adversarial grid algorithms, registered once in the default registry so
// gridResults can instantiate them by name. advSpinStop is the tests' own
// kill switch releasing abandoned spinner goroutines; the harness itself
// never touches it.
var (
	advRegister sync.Once
	advSpinStop atomic.Bool
)

type advAlgo struct {
	name     string
	selectFn func(*core.Context) ([]graph.NodeID, error)
}

func (a advAlgo) Name() string                   { return a.name }
func (a advAlgo) Supports(weights.Model) bool    { return true }
func (a advAlgo) Param(weights.Model) core.Param { return core.Param{} }
func (a advAlgo) Select(ctx *core.Context) ([]graph.NodeID, error) {
	return a.selectFn(ctx)
}

func registerAdversaries() {
	advRegister.Do(func() {
		core.Default().Register("__adv_panic", func() core.Algorithm {
			return advAlgo{name: "__adv_panic", selectFn: func(*core.Context) ([]graph.NodeID, error) {
				panic("adversarial grid panic")
			}}
		})
		core.Default().Register("__adv_spin", func() core.Algorithm {
			return advAlgo{name: "__adv_spin", selectFn: func(*core.Context) ([]graph.NodeID, error) {
				for !advSpinStop.Load() { // never polls ctx.Check
				}
				return nil, errors.New("spinner released")
			}}
		})
	})
}

// overrideGrid shrinks the package-level grid to the given datasets and
// algorithms for one test, restoring the paper grid afterwards.
func overrideGrid(t *testing.T, datasets, algos []string) {
	t.Helper()
	prevDS, prevAlgos := gridDatasets, gridAlgos
	gridDatasets, gridAlgos = datasets, algos
	t.Cleanup(func() { gridDatasets, gridAlgos = prevDS, prevAlgos })
}

// tinyGridConfig is a seconds-scale grid configuration. Seeds must be
// unique per test: gridResults caches by (seed, evalSims, scale, ksLen,
// journal, resume) and the package grid differs between tests.
func tinyGridConfig(seed uint64) Config {
	return Config{
		Seed:       seed,
		EvalSims:   20,
		Ks:         []int{1},
		ExtraScale: 256,
		CellBudget: 50 * time.Millisecond,
		MemBudget:  512 << 20,
		MCSims:     10,
	}
}

// TestGridSurvivesAdversaries is the acceptance scenario: a grid sweep
// containing a panicking algorithm and a non-cooperative (never-polling)
// algorithm completes every remaining cell, reporting Panicked and DNF
// respectively.
func TestGridSurvivesAdversaries(t *testing.T) {
	registerAdversaries()
	defer advSpinStop.Store(true)
	overrideGrid(t, []string{"nethept"}, []string{"__adv_panic", "__adv_spin", "Random"})

	results, err := gridResults(tinyGridConfig(90001))
	if err != nil {
		t.Fatal(err)
	}
	// 3 model configurations × 3 algorithms × 1 k.
	if len(results) != 9 {
		t.Fatalf("%d results, want 9 (grid aborted early?)", len(results))
	}
	byAlgo := map[string][]core.Result{}
	for _, r := range results {
		byAlgo[r.Algorithm] = append(byAlgo[r.Algorithm], r)
	}
	for _, r := range byAlgo["__adv_panic"] {
		if r.Status != core.Panicked {
			t.Fatalf("panicker cell %s: %v want Panicked", r.Dataset, r.Status)
		}
	}
	for _, r := range byAlgo["__adv_spin"] {
		if r.Status != core.DNF || !r.HardKilled {
			t.Fatalf("spinner cell %s: %v hardKilled=%v want hard-killed DNF", r.Dataset, r.Status, r.HardKilled)
		}
	}
	for _, r := range byAlgo["Random"] {
		if r.Status != core.OK {
			t.Fatalf("Random cell %s: %v (err %v) want OK", r.Dataset, r.Status, r.Err)
		}
	}
}

// TestGridJournalResume is the checkpoint/resume acceptance scenario: a
// grid cancelled mid-sweep resumes from its journal, skips every completed
// cell, and no cell runs twice. With batched evaluation the checkpoint unit
// is one algorithm's k-sweep: cancelling during a sweep's post-evaluation
// OnCell callbacks still journals the whole sweep (its evaluation already
// completed), and the NEXT sweep is where the grid stops.
func TestGridJournalResume(t *testing.T) {
	overrideGrid(t, []string{"nethept"}, []string{"HighDegree", "Random"})
	dir := t.TempDir()
	j1 := filepath.Join(dir, "run1.jsonl")
	j2 := filepath.Join(dir, "run2.jsonl")
	const seed = 90002
	// 3 model configurations × 2 algorithms × 2 ks.
	const totalCells = 12
	// Cancelling at the 3rd completed cell lands mid-way through the second
	// algorithm's 2-cell sweep; that sweep is already evaluated, so the
	// first run completes (and journals) 4 cells.
	const firstCells = 4

	// First run: cancel after the third completed cell.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	firstRun := map[string]bool{}
	cfg1 := tinyGridConfig(seed)
	cfg1.Ks = []int{1, 2}
	cfg1.JournalPath = j1
	cfg1.OnCell = func(r core.Result) {
		firstRun[r.CellKey()] = true
		if len(firstRun) == 3 {
			cancel()
		}
	}
	cfg1.Ctx = ctx
	if _, err := gridResults(cfg1); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("interrupted grid returned %v, want ErrCancelled", err)
	}
	if len(firstRun) != firstCells {
		t.Fatalf("first run executed %d cells, want %d", len(firstRun), firstCells)
	}
	journaled, err := core.LoadJournal(j1)
	if err != nil {
		t.Fatal(err)
	}
	if len(journaled) != firstCells {
		t.Fatalf("journal holds %d cells, want %d", len(journaled), firstCells)
	}

	// Second run: resume from the journal; completed cells must not run
	// again.
	secondRun := map[string]bool{}
	cfg2 := tinyGridConfig(seed)
	cfg2.Ks = []int{1, 2}
	cfg2.ResumeFrom = j1
	cfg2.JournalPath = j2
	cfg2.OnCell = func(r core.Result) {
		if firstRun[r.CellKey()] {
			t.Errorf("cell %s ran twice", r.CellKey())
		}
		secondRun[r.CellKey()] = true
	}
	results, err := gridResults(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != totalCells {
		t.Fatalf("resumed grid produced %d cells, want %d", len(results), totalCells)
	}
	if len(secondRun) != totalCells-firstCells {
		t.Fatalf("second run executed %d cells, want %d", len(secondRun), totalCells-firstCells)
	}
	// The union covers every cell exactly once.
	seen := map[string]int{}
	for _, r := range results {
		seen[r.CellKey()]++
	}
	if len(seen) != totalCells {
		t.Fatalf("%d distinct cells, want %d", len(seen), totalCells)
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s appears %d times", key, n)
		}
	}
	for key := range firstRun {
		if _, ok := seen[key]; !ok {
			t.Fatalf("journaled cell %s missing from resumed results", key)
		}
	}
	// The second journal records only the freshly-run cells.
	fresh, err := core.LoadJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != totalCells-firstCells {
		t.Fatalf("second journal holds %d cells, want %d", len(fresh), totalCells-firstCells)
	}
}
