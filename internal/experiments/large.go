package experiments

import (
	"fmt"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/metrics"
)

// Large reproduces Table 3: the four techniques that survived the small
// grid (PMC, IMM, TIM+, EaSyIM) on the four large datasets at the maximum
// k, under all three models, with DNF/Crashed outcomes from the budget
// enforcement standing in for the paper's 40 h / 256 GB limits.
//
// Paper layout per model: IC compares PMC vs EaSyIM (TIM+/IMM crash); WC
// compares PMC, IMM and EaSyIM; LT compares PMC... (LT column pairs TIM+
// with EaSyIM). We simply run all four and report every cell.
func Large(cfg Config) error {
	t := metrics.NewTable("Table 3 — large datasets at k=max",
		"Dataset", "Model", "Algorithm", "Status", "Spread%", "Time", "Memory")
	ctx := cfg.context()
	k := cfg.Ks[len(cfg.Ks)-1]
	algos := []string{"PMC", "IMM", "TIM+", "EaSyIM"}
	for _, ds := range []string{"livejournal", "orkut", "twitter", "friendster"} {
		for _, mc := range paperModels() {
			g, err := prepared(cfg, ds, mc)
			if err != nil {
				return err
			}
			for _, name := range algos {
				alg := newAlg(name)
				if !alg.Supports(mc.Model) {
					t.AddRow(ds, mc.Label, name, core.Unsupported.String(), "-", "-", "-")
					continue
				}
				if ctx.Err() != nil {
					return fmt.Errorf("experiments: large interrupted: %w", core.ErrCancelled)
				}
				res := core.RunCtx(ctx, alg, g, cfg.cell(mc, k))
				if res.Status == core.Cancelled {
					return fmt.Errorf("experiments: large interrupted: %w", core.ErrCancelled)
				}
				cfg.logf("large %s/%s %s: %s", ds, mc.Label, name, res.Status)
				switch res.Status {
				case core.OK:
					t.AddRow(ds, mc.Label, name, res.Status.String(),
						res.SpreadPercent(g.N()),
						metrics.HumanDuration(res.SelectionTime),
						metrics.HumanBytes(res.PeakMemBytes))
				default:
					t.AddRow(ds, mc.Label, name, res.Status.String(), "-",
						metrics.HumanDuration(res.SelectionTime),
						metrics.HumanBytes(res.PeakMemBytes))
				}
			}
		}
	}
	return cfg.emit(t, "table3_large.csv")
}
