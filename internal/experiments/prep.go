package experiments

import (
	"fmt"
	"sync"

	_ "github.com/sigdata/goinfmax/internal/algo/register" // populate core.Default
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/datasets"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Paper configuration names (§5.1): IC means IC-constant(0.1), WC means
// IC-weighted-cascade, LT means LT-uniform.
type modelConfig struct {
	Label  string
	Model  weights.Model
	Scheme weights.Scheme
}

func paperModels() []modelConfig {
	return []modelConfig{
		{"IC", weights.IC, weights.ICConstant{P: 0.1}},
		{"WC", weights.IC, weights.WeightedCascade{}},
		{"LT", weights.LT, weights.LTUniform{}},
	}
}

func modelByLabel(label string) (modelConfig, error) {
	for _, mc := range paperModels() {
		if mc.Label == label {
			return mc, nil
		}
	}
	return modelConfig{}, fmt.Errorf("experiments: unknown model %q", label)
}

// graphCache memoizes weighted stand-ins per (dataset, scale, scheme, seed):
// grid experiments reuse the same graph dozens of times.
var graphCache sync.Map

// prepared returns the named dataset at cfg scale with mc's weights applied.
func prepared(cfg Config, dataset string, mc modelConfig) (graph.G, error) {
	scale := int64(1)
	if cfg.ExtraScale > 1 {
		scale = cfg.ExtraScale
	}
	spec, err := datasets.Lookup(dataset)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d/%s/%d", dataset, scale, mc.Scheme.Name(), cfg.Seed)
	if g, ok := graphCache.Load(key); ok {
		return g.(graph.G), nil
	}
	base, err := datasets.Generate(dataset, spec.DefaultScale*scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	g := mc.Scheme.Apply(base)
	graphCache.Store(key, g)
	return g, nil
}

// preparedParallel returns a multigraph dataset consolidated under the
// LT-"parallel edges" weight model (paper §2.1.2 / Table 4).
func preparedParallel(cfg Config, dataset string) (graph.G, error) {
	scale := int64(1)
	if cfg.ExtraScale > 1 {
		scale = cfg.ExtraScale
	}
	spec, err := datasets.Lookup(dataset)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d/LT-parallel/%d", dataset, scale, cfg.Seed)
	if g, ok := graphCache.Load(key); ok {
		return g.(graph.G), nil
	}
	base, err := datasets.Generate(dataset, spec.DefaultScale*scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	g := weights.LTParallel{}.Apply(base).(*graph.Graph).WithName(base.Name())
	graphCache.Store(key, g)
	return g, nil
}

// cellConfig builds the standard RunConfig for one benchmark cell.
func (cfg Config) cell(mc modelConfig, k int) core.RunConfig {
	rc := core.RunConfig{
		K:          k,
		Model:      mc.Model,
		Seed:       cfg.Seed,
		TimeBudget: cfg.CellBudget,
	}
	rc.MemBudgetBytes = cfg.MemBudget
	rc.EvalSims = cfg.EvalSims
	rc.Workers = cfg.Workers
	return rc
}

// mcFamily reports whether the algorithm needs the affordable MC-simulation
// parameter override in grid experiments.
func mcFamily(name string) bool {
	switch name {
	case "GREEDY", "CELF", "CELF++":
		return true
	}
	return false
}

// newAlg instantiates from the default registry, failing loudly on typos.
func newAlg(name string) core.Algorithm {
	alg, err := core.Default().New(name)
	if err != nil {
		panic(err)
	}
	return alg
}
