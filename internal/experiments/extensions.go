package experiments

import (
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/metrics"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Extension experiments — beyond the paper's tables, validating claims the
// paper makes in prose.

// Exclusions validates the four §4 exclusion rationales the paper asserts
// without presenting numbers:
//
//  1. "IRIE outperforms [degree discount and PMIA] significantly in terms
//     of running time while achieving comparable spread values."
//  2. "We do not consider GREEDY as it is significantly outperformed by
//     CELF and CELF++."
//  3. "We do not consider RIS as it is outperformed by TIM+ and IMM."
//  4. "We do not include SKIM as TIM+ has been shown to possess better
//     quality while being similar in running times."
func Exclusions(cfg Config) error {
	t := metrics.NewTable("Extension — the paper's §4 exclusion claims, measured",
		"Claim", "Algorithm", "Dataset", "k", "Status", "Spread", "Time", "Lookups")
	k := cfg.Ks[len(cfg.Ks)-1]

	type cell struct {
		claim string
		algo  string
		param float64
	}
	groups := [][]cell{
		// Claim 1: score-estimation trio under IC.
		{{"1: IRIE vs DD/PMIA", "IRIE", 0}, {"1: IRIE vs DD/PMIA", "DegreeDiscount", 0}, {"1: IRIE vs DD/PMIA", "PMIA", 0}},
		// Claim 2: simulation trio (shared low r to stay affordable).
		{{"2: CELF(++) vs GREEDY", "GREEDY", cfg.MCSims}, {"2: CELF(++) vs GREEDY", "CELF", cfg.MCSims}, {"2: CELF(++) vs GREEDY", "CELF++", cfg.MCSims}},
		// Claim 3: RR-set trio at one ε.
		{{"3: TIM+/IMM vs RIS", "RIS", 0.3}, {"3: TIM+/IMM vs RIS", "TIM+", 0.3}, {"3: TIM+/IMM vs RIS", "IMM", 0.3}},
		// Claim 4: TIM+ vs SKIM.
		{{"4: TIM+ vs SKIM", "TIM+", 0.3}, {"4: TIM+ vs SKIM", "SKIM", 0}},
	}
	wc, err := modelByLabel("WC")
	if err != nil {
		return err
	}
	for _, ds := range []string{"nethept", "hepph"} {
		g, err := prepared(cfg, ds, wc)
		if err != nil {
			return err
		}
		for _, group := range groups {
			for _, c := range group {
				alg := newAlg(c.algo)
				rc := cfg.cell(wc, k)
				rc.ParamValue = c.param
				res := core.Run(alg, g, rc)
				t.AddRow(c.claim, c.algo, ds, k, res.Status.String(),
					res.Spread.Mean, metrics.HumanDuration(res.SelectionTime), res.Lookups)
			}
		}
	}
	return cfg.emit(t, "ext_exclusions.csv")
}

// Robustness probes the fourth desirable property of §5 — robustness to
// the diffusion model — by running the skyline techniques under the two
// weight schemes the main grid omits: the trivalency IC model and the
// LT-random model (paper §2.1). A robust technique keeps its relative
// standing; quality collapses or blow-ups indicate weight-regime
// sensitivity (the generalization of M6).
func Robustness(cfg Config) error {
	t := metrics.NewTable("Extension — robustness across the remaining weight schemes",
		"Scheme", "Algorithm", "k", "Status", "Spread", "Time", "Memory")
	k := cfg.Ks[len(cfg.Ks)-1]
	schemes := []modelConfig{
		{"IC-TV", weights.IC, weights.DefaultTrivalency(cfg.Seed)},
		{"LT-random", weights.LT, weights.LTRandom{Seed: cfg.Seed}},
	}
	algos := []struct {
		name  string
		param float64
	}{
		{"IMM", 0}, {"TIM+", 0}, {"PMC", 0}, {"EaSyIM", 0}, {"IRIE", 0}, {"LDAG", 0}, {"IMRank1", 0},
	}
	for _, mc := range schemes {
		g, err := prepared(cfg, "hepph", mc)
		if err != nil {
			return err
		}
		for _, a := range algos {
			alg := newAlg(a.name)
			if !alg.Supports(mc.Model) {
				t.AddRow(mc.Label, a.name, k, core.Unsupported.String(), "-", "-", "-")
				continue
			}
			rc := cfg.cell(mc, k)
			rc.ParamValue = a.param
			res := core.Run(alg, g, rc)
			t.AddRow(mc.Label, a.name, k, res.Status.String(), res.Spread.Mean,
				metrics.HumanDuration(res.SelectionTime), metrics.HumanBytes(res.PeakMemBytes))
		}
	}
	return cfg.emit(t, "ext_robustness.csv")
}

// SSAEvolution is the evolution the paper's conclusion promises: the
// benchmark could not include Stop-and-Stare (SSA, SIGMOD 2016 [23])
// because it was "published too recently"; this experiment adds it to the
// RR-set family comparison. SSA's claim — orders-of-magnitude fewer
// samples than IMM/TIM+ at the same quality — is measured head-to-head
// across ε values, with lookups counting sampled RR sets.
func SSAEvolution(cfg Config) error {
	t := metrics.NewTable("Extension — SSA (Stop-and-Stare) vs TIM+/IMM",
		"Dataset", "Model", "eps", "Algorithm", "Status", "Spread", "Time", "#RR sets")
	k := cfg.Ks[len(cfg.Ks)-1]
	for _, label := range []string{"WC", "LT"} {
		mc, err := modelByLabel(label)
		if err != nil {
			return err
		}
		for _, ds := range []string{"nethept", "dblp"} {
			g, err := prepared(cfg, ds, mc)
			if err != nil {
				return err
			}
			for _, eps := range []float64{0.1, 0.3, 0.5} {
				for _, name := range []string{"TIM+", "IMM", "SSA"} {
					rc := cfg.cell(mc, k)
					rc.ParamValue = eps
					res := core.Run(newAlg(name), g, rc)
					t.AddRow(ds, label, eps, name, res.Status.String(), res.Spread.Mean,
						metrics.HumanDuration(res.SelectionTime), res.Lookups)
				}
			}
		}
	}
	return cfg.emit(t, "ext_ssa.csv")
}

// Ablations quantifies the design choices the techniques rest on:
//
//   - lazy evaluation (CELF) vs exhaustive re-evaluation (GREEDY), in
//     lookups at identical r;
//   - SCC condensation + pruned heap (PMC) vs raw snapshot BFS
//     (StaticGreedy), in wall-clock at identical R;
//   - the RR-set count's dependence on ε (the sampling-cost knob);
//   - EaSyIM's iteration depth ℓ vs quality.
func Ablations(cfg Config) error {
	t := metrics.NewTable("Extension — ablations of the core design choices",
		"Ablation", "Variant", "Value", "Spread", "Time", "Lookups")
	wc, err := modelByLabel("WC")
	if err != nil {
		return err
	}
	g, err := prepared(cfg, "nethept", wc)
	if err != nil {
		return err
	}
	k := cfg.Ks[len(cfg.Ks)-1]

	run := func(name string, param float64) core.Result {
		rc := cfg.cell(wc, k)
		rc.ParamValue = param
		return core.Run(newAlg(name), g, rc)
	}

	// Lazy vs exhaustive.
	for _, name := range []string{"GREEDY", "CELF"} {
		res := run(name, cfg.MCSims)
		t.AddRow("lazy evaluation", name, cfg.MCSims, res.Spread.Mean,
			metrics.HumanDuration(res.SelectionTime), res.Lookups)
	}
	// Condensation pruning.
	for _, name := range []string{"StaticGreedy", "PMC"} {
		res := run(name, 100)
		t.AddRow("SCC condensation", name, 100, res.Spread.Mean,
			metrics.HumanDuration(res.SelectionTime), res.Lookups)
	}
	// ε vs samples.
	for _, eps := range []float64{0.1, 0.3, 0.6, 1.0} {
		res := run("IMM", eps)
		t.AddRow("epsilon vs samples", "IMM", eps, res.Spread.Mean,
			metrics.HumanDuration(res.SelectionTime), res.Lookups)
	}
	// EaSyIM depth.
	for _, ell := range []float64{1, 2, 5, 25, 100} {
		res := run("EaSyIM", ell)
		t.AddRow("EaSyIM depth", "EaSyIM", ell, res.Spread.Mean,
			metrics.HumanDuration(res.SelectionTime), res.Lookups)
	}
	return cfg.emit(t, "ext_ablations.csv")
}
