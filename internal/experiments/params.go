package experiments

import (
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/metrics"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Params reproduces Table 2 (and the Figure 4/14/15/16 sweeps behind it):
// for every technique with an external parameter, sweep its spectrum on the
// hepph stand-in under each supported model and report the optimal value —
// the cheapest value whose spread stays within one standard deviation of
// the best (paper §5.1.1).
func Params(cfg Config) error {
	t := metrics.NewTable("Table 2 — optimal external-parameter values (hepph)",
		"Algorithm", "Parameter", "Model", "Optimal", "BestSpread", "BestSD")
	sweep := metrics.NewTable("Figure 4/14 — parameter sweep detail (largest k)",
		"Algorithm", "Model", "Value", "Status", "Spread", "Time")

	// The paper's Table 2 rows; GREEDY excluded there but kept implicitly
	// via CELF. The spectra come from each algorithm's Param metadata but
	// are truncated in quick mode to keep the sweep affordable.
	algos := []string{"CELF", "CELF++", "EaSyIM", "IMRank1", "IMRank2", "PMC", "StaticGreedy", "TIM+", "IMM"}
	for _, name := range algos {
		alg := newAlg(name)
		for _, mc := range paperModels() {
			if !alg.Supports(mc.Model) {
				continue
			}
			// WC and IC share weights.Model IC; IMRank/PMC/SG support both
			// IC configurations but not LT, handled by Supports above.
			p := alg.Param(mc.Model)
			if !p.HasParam() {
				continue
			}
			g, err := prepared(cfg, "hepph", mc)
			if err != nil {
				return err
			}
			spectrum := p.Spectrum
			if len(spectrum) > 5 {
				// Probe a spread of the spectrum: best, quartiles, cheapest.
				spectrum = []float64{
					p.Spectrum[0],
					p.Spectrum[len(p.Spectrum)/4],
					p.Spectrum[len(p.Spectrum)/2],
					p.Spectrum[3*len(p.Spectrum)/4],
					p.Spectrum[len(p.Spectrum)-1],
				}
			}
			if mcFamily(name) {
				// The MC family's heavy end is unaffordable at laptop scale;
				// probe the cheap half of the spectrum.
				spectrum = []float64{500, 100, 50, 10}
			}
			probe := alg
			search := core.ParamSearch{
				Ks:     []int{cfg.Ks[len(cfg.Ks)-1]},
				Config: cfg.cell(mc, cfg.Ks[len(cfg.Ks)-1]),
			}
			// Run the sweep manually over the reduced spectrum so the detail
			// table matches what the choice was computed from.
			reduced := paramSearchOver(search, probe, g, spectrum)
			cfg.logf("params %s/%s: optimal %s = %g", name, mc.Label, p.Name, reduced.Optimal)
			t.AddRow(name, p.Name, mc.Label, reduced.Optimal, reduced.BestSpread, reduced.BestSD)
			for _, pr := range reduced.Probes {
				sweep.AddRow(name, mc.Label, pr.Value, pr.Result.Status.String(),
					pr.Result.Spread.Mean, metrics.HumanDuration(pr.Result.SelectionTime))
			}
		}
	}
	if err := cfg.emit(t, "table2.csv"); err != nil {
		return err
	}
	return cfg.emit(sweep, "fig4_sweep.csv")
}

// paramSearchOver runs core.ParamSearch with an overridden (reduced)
// parameter spectrum.
func paramSearchOver(ps core.ParamSearch, alg core.Algorithm, g graph.G, spectrum []float64) core.ParamChoice {
	return ps.Search(spectrumOverride{Algorithm: alg, spectrum: spectrum}, g)
}

// spectrumOverride substitutes an algorithm's parameter spectrum, leaving
// everything else untouched.
type spectrumOverride struct {
	core.Algorithm
	spectrum []float64
}

// Param implements core.Algorithm with the reduced spectrum.
func (s spectrumOverride) Param(m weights.Model) core.Param {
	p := s.Algorithm.Param(m)
	p.Spectrum = s.spectrum
	return p
}
