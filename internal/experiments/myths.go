package experiments

import (
	"fmt"

	"github.com/sigdata/goinfmax/internal/algo/rank"
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/metrics"
)

// Fig5 reproduces Figure 5: IMRank's spread as a function of the number of
// scoring rounds on hepph under IC, for l=1 and l=2 — exposing the
// non-monotone behaviour that makes the optimal round count hard to pick.
func Fig5(cfg Config) error {
	t := metrics.NewTable("Figure 5 — IMRank spread vs scoring rounds (hepph, IC)",
		"l", "k", "rounds", "Spread")
	ic, err := modelByLabel("IC")
	if err != nil {
		return err
	}
	g, err := prepared(cfg, "hepph", ic)
	if err != nil {
		return err
	}
	for _, l := range []int{1, 2} {
		alg := rank.IMRank{L: l}
		for _, k := range cfg.Ks {
			for rounds := 1; rounds <= 10; rounds++ {
				rc := cfg.cell(ic, k)
				rc.ParamValue = float64(rounds)
				res := core.Run(alg, g, rc)
				t.AddRow(l, k, rounds, res.Spread.Mean)
			}
		}
	}
	return cfg.emit(t, "fig5_imrank_rounds.csv")
}

// Myth1 reproduces Figures 9a-b and 13 (myth M1, "CELF++ is 35% faster
// than CELF"): 12 independent runs of both techniques at k=50 on nethept
// under WC and LT, reporting running time and average node-lookups per
// iteration. The expected shape: near-identical times, slightly fewer
// lookups for CELF++.
func Myth1(cfg Config) error {
	t := metrics.NewTable("Figures 9a-b / 13 — CELF vs CELF++, 12 independent runs (nethept)",
		"Model", "Run", "CELF time", "CELF lookups/iter", "CELF++ time", "CELF++ lookups/iter")
	k := 50
	if cfg.Ks[len(cfg.Ks)-1] < 50 {
		k = cfg.Ks[len(cfg.Ks)-1]
	}
	const runs = 12
	for _, label := range []string{"WC", "LT"} {
		mc, err := modelByLabel(label)
		if err != nil {
			return err
		}
		g, err := prepared(cfg, "nethept", mc)
		if err != nil {
			return err
		}
		celf, celfpp := newAlg("CELF"), newAlg("CELF++")
		var celfTime, ppTime, celfLk, ppLk metrics.Summary
		for run := 0; run < runs; run++ {
			rc := cfg.cell(mc, k)
			rc.Seed = cfg.Seed + uint64(run)
			rc.ParamValue = cfg.MCSims
			rc.EvalSims = 0
			a := core.Run(celf, g, rc)
			b := core.Run(celfpp, g, rc)
			la := float64(a.Lookups) / float64(k)
			lb := float64(b.Lookups) / float64(k)
			celfTime.Observe(a.SelectionTime.Seconds())
			ppTime.Observe(b.SelectionTime.Seconds())
			celfLk.Observe(la)
			ppLk.Observe(lb)
			t.AddRow(label, run+1,
				metrics.HumanDuration(a.SelectionTime), la,
				metrics.HumanDuration(b.SelectionTime), lb)
		}
		t.AddRow(label, "mean±sd",
			fmt.Sprintf("%.2fs±%.2f", celfTime.Mean(), celfTime.SD()), celfLk.Mean(),
			fmt.Sprintf("%.2fs±%.2f", ppTime.Mean(), ppTime.SD()), ppLk.Mean())
	}
	return cfg.emit(t, "fig9ab_myth1.csv")
}

// Myth2 reproduces Figures 9c-e (myth M2, "CELF is the gold standard for
// quality"): CELF's spread at 1K/10K/20K simulations against IMM across k
// on nethept under IC, WC and LT. At large k, low-simulation CELF falls
// behind IMM; only very high r closes the gap.
func Myth2(cfg Config) error {
	t := metrics.NewTable("Figures 9c-e — CELF quality vs #MC simulations (nethept)",
		"Model", "k", "IMM", "CELF r=low", "CELF r=mid", "CELF r=high")
	// Laptop-scaled simulation ladder standing in for the paper's 1K/10K/20K.
	low, mid, high := cfg.MCSims/10, cfg.MCSims, cfg.MCSims*4
	if low < 1 {
		low = 1
	}
	for _, label := range []string{"IC", "WC", "LT"} {
		mc, err := modelByLabel(label)
		if err != nil {
			return err
		}
		g, err := prepared(cfg, "nethept", mc)
		if err != nil {
			return err
		}
		imm, celf := newAlg("IMM"), newAlg("CELF")
		for _, k := range cfg.Ks {
			rc := cfg.cell(mc, k)
			immRes := core.Run(imm, g, rc)
			row := []interface{}{label, k, immRes.Spread.Mean}
			for _, r := range []float64{low, mid, high} {
				rcc := cfg.cell(mc, k)
				rcc.ParamValue = r
				res := core.Run(celf, g, rcc)
				row = append(row, res.Spread.Mean)
			}
			t.AddRow(row...)
		}
	}
	return cfg.emit(t, "fig9ce_myth2.csv")
}

// Myth3 reproduces M3 ("IMM is always faster than TIM+"): under LT at
// their respective optimal ε (TIM+ 0.35, IMM 0.1 — paper Table 2), TIM+
// needs fewer samples and can run faster, contradicting the same-ε folklore.
func Myth3(cfg Config) error {
	t := metrics.NewTable("M3 — TIM+ vs IMM at their optimal epsilons (LT)",
		"Dataset", "k", "TIM+ eps", "TIM+ time", "TIM+ spread", "IMM eps", "IMM time", "IMM spread", "same-eps IMM time")
	lt, err := modelByLabel("LT")
	if err != nil {
		return err
	}
	tim, imm := newAlg("TIM+"), newAlg("IMM")
	for _, ds := range []string{"nethept", "dblp"} {
		g, err := prepared(cfg, ds, lt)
		if err != nil {
			return err
		}
		for _, k := range cfg.Ks {
			rcT := cfg.cell(lt, k)
			rcT.ParamValue = 0.35
			rT := core.Run(tim, g, rcT)
			rcI := cfg.cell(lt, k)
			rcI.ParamValue = 0.1
			rI := core.Run(imm, g, rcI)
			// The folklore comparison: IMM at TIM+'s ε.
			rcSame := cfg.cell(lt, k)
			rcSame.ParamValue = 0.35
			rSame := core.Run(imm, g, rcSame)
			t.AddRow(ds, k,
				0.35, metrics.HumanDuration(rT.SelectionTime), rT.Spread.Mean,
				0.1, metrics.HumanDuration(rI.SelectionTime), rI.Spread.Mean,
				metrics.HumanDuration(rSame.SelectionTime))
		}
	}
	return cfg.emit(t, "myth3_tim_vs_imm.csv")
}

// Myth4 reproduces Figures 10c-e (myth M4): TIM+ and IMM report an
// EXTRAPOLATED spread n·F(S) that exceeds the true MC spread, with the gap
// growing as ε loosens.
func Myth4(cfg Config) error {
	t := metrics.NewTable("Figures 10c-e — extrapolated vs MC spread against epsilon",
		"Dataset", "Model", "Algorithm", "eps", "Extrapolated", "MC spread")
	cells := []struct{ ds, model string }{
		{"nethept", "IC"}, {"dblp", "WC"}, {"hepph", "LT"},
	}
	k := cfg.Ks[len(cfg.Ks)-1]
	epsGrid := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	for _, cell := range cells {
		mc, err := modelByLabel(cell.model)
		if err != nil {
			return err
		}
		g, err := prepared(cfg, cell.ds, mc)
		if err != nil {
			return err
		}
		for _, name := range []string{"TIM+", "IMM"} {
			alg := newAlg(name)
			for _, eps := range epsGrid {
				rc := cfg.cell(mc, k)
				rc.ParamValue = eps
				res := core.Run(alg, g, rc)
				if res.Status != core.OK {
					t.AddRow(cell.ds, cell.model, name, eps, res.Status.String(), res.Status.String())
					continue
				}
				t.AddRow(cell.ds, cell.model, name, eps, res.EstimatedSpread, res.Spread.Mean)
			}
		}
	}
	return cfg.emit(t, "fig10ce_myth4.csv")
}

// Myth5 reproduces Figures 10a-b and Table 4 (myth M5, "SIMPATH is faster
// than LDAG"): LDAG vs SIMPATH running time under LT-uniform on nethept and
// dblp, and under LT-parallel-edges on the multigraph stand-ins.
func Myth5(cfg Config) error {
	t := metrics.NewTable("Table 4 / Figures 10a-b — LDAG vs SIMPATH running time",
		"Dataset", "Weights", "k", "LDAG status", "LDAG time", "SIMPATH status", "SIMPATH time")
	ldag, simpath := newAlg("LDAG"), newAlg("SIMPATH")
	lt, err := modelByLabel("LT")
	if err != nil {
		return err
	}

	runPair := func(ds, weightsLabel string, g graph.G) error {
		for _, k := range cfg.Ks {
			rcL := cfg.cell(lt, k)
			rcL.EvalSims = 0
			rl := core.Run(ldag, g, rcL)
			rcS := cfg.cell(lt, k)
			rcS.EvalSims = 0
			rs := core.Run(simpath, g, rcS)
			t.AddRow(ds, weightsLabel, k,
				rl.Status.String(), metrics.HumanDuration(rl.SelectionTime),
				rs.Status.String(), metrics.HumanDuration(rs.SelectionTime))
		}
		return nil
	}

	for _, ds := range []string{"nethept", "dblp"} {
		g, err := prepared(cfg, ds, lt)
		if err != nil {
			return err
		}
		if err := runPair(ds, "LT-uniform", g); err != nil {
			return err
		}
	}
	// Parallel-edges variants: nethept-P (synthetic multigraph weights) and
	// dblp-large-P, the SIMPATH paper's own dataset.
	ltp, err := preparedParallel(cfg, "dblp-large")
	if err != nil {
		return err
	}
	if err := runPair("dblp-large", "LT-parallel", ltp); err != nil {
		return err
	}
	return cfg.emit(t, "table4_myth5.csv")
}

// Myth7 reproduces Figure 10f (myth M7): IMRank under its original
// (defective) convergence criterion vs the corrected 10-round criterion on
// hepph under WC — the broken criterion's spread collapses as k grows.
func Myth7(cfg Config) error {
	t := metrics.NewTable("Figure 10f — IMRank convergence criterion (hepph, WC)",
		"k", "Incorrect (top-k set stable)", "Corrected (10 rounds)")
	wc, err := modelByLabel("WC")
	if err != nil {
		return err
	}
	g, err := prepared(cfg, "hepph", wc)
	if err != nil {
		return err
	}
	broken := rank.IMRank{L: 1, Mode: rank.TopKSetStable}
	fixed := rank.IMRank{L: 1, Mode: rank.FixedRounds}
	for _, k := range cfg.Ks {
		rcB := cfg.cell(wc, k)
		rcB.ParamValue = 10
		rb := core.Run(broken, g, rcB)
		rcF := cfg.cell(wc, k)
		rcF.ParamValue = 10
		rf := core.Run(fixed, g, rcF)
		t.AddRow(k, rb.Spread.Mean, rf.Spread.Mean)
	}
	return cfg.emit(t, "fig10f_myth7.csv")
}

// MCConvergence reproduces Figure 12: the mean and standard deviation of
// the evaluated spread of a fixed IMM seed set as the number of MC
// simulations grows — motivating the 10K-simulation evaluation protocol.
func MCConvergence(cfg Config) error {
	t := metrics.NewTable("Figure 12 — spread estimate vs #MC simulations (IMM seeds, k=max)",
		"Dataset", "Model", "#Sims", "Mean", "SD", "StdErr")
	k := cfg.Ks[len(cfg.Ks)-1]
	simGrid := []int{cfg.EvalSims / 8, cfg.EvalSims / 4, cfg.EvalSims / 2, cfg.EvalSims, cfg.EvalSims * 2}
	for _, label := range []string{"IC", "WC", "LT"} {
		mc, err := modelByLabel(label)
		if err != nil {
			return err
		}
		for _, ds := range []string{"nethept", "hepph"} {
			g, err := prepared(cfg, ds, mc)
			if err != nil {
				return err
			}
			rc := cfg.cell(mc, k)
			rc.EvalSims = 0
			res := core.Run(newAlg("IMM"), g, rc)
			if res.Status != core.OK {
				continue
			}
			for _, r := range simGrid {
				if r < 1 {
					r = 1
				}
				est := diffusion.EstimateSpreadParallel(g, mc.Model, res.Seeds, r, cfg.Seed^0xf12, 0)
				t.AddRow(ds, label, r, est.Mean, est.SD, est.StdErr)
			}
		}
	}
	return cfg.emit(t, "fig12_mc_convergence.csv")
}
