// Package experiments regenerates every table and figure of the paper's
// evaluation (§5, §6 and the appendix) on the synthetic stand-in datasets.
//
// Each experiment is a named function producing one or more metrics.Tables
// with exactly the rows/series the paper reports. Absolute numbers differ
// (different hardware, Go instead of C++, synthetic graphs at reduced
// scale); the SHAPE of each result — who wins, by what factor, where the
// crossovers fall — is the reproduction target, and EXPERIMENTS.md records
// the paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/metrics"
)

// Config controls experiment scale and output.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces every table.
	Seed uint64
	// EvalSims is the MC simulation count for decoupled spread evaluation
	// (the paper uses 10,000; quick mode uses fewer).
	EvalSims int
	// Ks is the seed-count grid (paper: 1..200).
	Ks []int
	// ExtraScale multiplies every dataset's default scale divisor, shrinking
	// graphs further for quick runs (1 = the registry defaults).
	ExtraScale int64
	// CellBudget bounds each benchmark cell's seed selection; exceeding it
	// marks the cell DNF, standing in for the paper's 40 h cutoff.
	CellBudget time.Duration
	// MemBudget bounds each cell's accounted bytes; exceeding it marks the
	// cell Crashed, standing in for the paper's 256 GB ceiling.
	MemBudget int64
	// Workers parallelizes the RR-set sampling phases inside each cell
	// (core.RunConfig.Workers). Seed sets are byte-identical for any
	// value; 0 or 1 keeps cells single-threaded as the paper measured.
	Workers int
	// OutDir receives one CSV per table ("" disables CSV output).
	OutDir string
	// ArchivePath, when set, receives the raw grid results as JSON (see
	// core.WriteArchive) for cross-run comparison.
	ArchivePath string
	// Ctx cancels a long campaign cleanly (SIGINT plumbing); nil means
	// context.Background(). Grid experiments stop between cells, flush the
	// journal and return core.ErrCancelled-wrapped errors.
	Ctx context.Context
	// JournalPath, when set, appends every completed grid cell to this
	// JSONL checkpoint journal (see core.Journal) so an interrupted sweep
	// loses at most the cell in flight.
	JournalPath string
	// ResumeFrom, when set, loads this journal before the grid runs and
	// skips every cell already recorded there, splicing the journaled
	// results into the output. Point it at the same file as JournalPath to
	// make a campaign restartable in place.
	ResumeFrom string
	// OnCell, when set, observes each freshly-executed grid cell (journal
	// hits are not reported). Used by progress displays and tests.
	OnCell func(core.Result)
	// W receives rendered text tables (nil discards).
	W io.Writer
	// MCSims is the simulation-count parameter used for the MC-estimation
	// family (CELF/CELF++/GREEDY) inside grid experiments, where the paper
	// values are unaffordable at laptop scale.
	MCSims float64
}

// Quick returns a configuration sized for CI and tests: minute-scale total
// runtime, heavily scaled-down datasets.
func Quick() Config {
	return Config{
		Seed:       42,
		EvalSims:   300,
		Ks:         []int{1, 5, 10, 20},
		ExtraScale: 64,
		CellBudget: 20 * time.Second,
		MemBudget:  512 << 20,
		MCSims:     50,
	}
}

// Standard returns the laptop-scale configuration used to produce
// EXPERIMENTS.md: the paper's k range up to 200 seeds, datasets at 1/8 of
// their registry default scales (nethept ≈ 1.9K nodes … youtube ≈ 8.8K),
// 1000-simulation evaluation and 45-second cell budgets standing in for
// the paper's 40-hour cutoff. Sized for a single-core machine; raise the
// budgets and lower ExtraScale on bigger hardware.
func Standard() Config {
	return Config{
		Seed:       42,
		EvalSims:   1000,
		Ks:         []int{1, 50, 200},
		ExtraScale: 8,
		CellBudget: 45 * time.Second,
		MemBudget:  4 << 30,
		MCSims:     50,
	}
}

// context returns cfg.Ctx, defaulting to context.Background().
func (cfg Config) context() context.Context {
	if cfg.Ctx != nil {
		return cfg.Ctx
	}
	return context.Background()
}

// logf writes a progress line to cfg.W (no-op when W is nil). Long
// experiments call it per cell so single-core runs stay observable.
func (cfg Config) logf(format string, args ...interface{}) {
	if cfg.W != nil {
		fmt.Fprintf(cfg.W, "    "+format+"\n", args...)
	}
}

// emit renders t to cfg.W and saves CSV under cfg.OutDir.
func (cfg Config) emit(t *metrics.Table, csvName string) error {
	if cfg.W != nil {
		if err := t.Render(cfg.W); err != nil {
			return err
		}
		fmt.Fprintln(cfg.W)
	}
	if cfg.OutDir != "" {
		if err := t.SaveCSV(filepath.Join(cfg.OutDir, csvName)); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is a registered, runnable reproduction of one paper artifact.
type Experiment struct {
	Name     string // CLI name, e.g. "fig1"
	Artifact string // paper artifact, e.g. "Figure 1a-c"
	Desc     string
	Run      func(Config) error
}

// All returns every registered experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1a-c", "IMM IC-vs-WC blow-up; IMM vs EaSyIM time & memory", Fig1},
		{"params", "Table 2 / Figures 4,14-16", "optimal external-parameter search", Params},
		{"fig5", "Figure 5", "IMRank spread vs scoring rounds (non-monotone)", Fig5},
		{"quality", "Figure 6", "spread vs k across datasets and models", Quality},
		{"runtime", "Figure 7", "running time vs k", Runtime},
		{"memory", "Figure 8", "memory footprint vs k", Memory},
		{"large", "Table 3", "scalable techniques on the large datasets", Large},
		{"myth1", "Figures 9a-b, 13 / M1", "CELF vs CELF++ runtime and node lookups", Myth1},
		{"myth2", "Figures 9c-e / M2", "CELF quality vs #MC simulations against IMM", Myth2},
		{"myth3", "M3", "TIM+ vs IMM at their optimal epsilons under LT", Myth3},
		{"myth4", "Figures 10c-e / M4", "extrapolated vs MC spread as epsilon grows", Myth4},
		{"myth5", "Figures 10a-b, Table 4 / M5", "LDAG vs SIMPATH under LT-uniform and LT-parallel", Myth5},
		{"myth7", "Figure 10f / M7", "IMRank broken vs corrected convergence criterion", Myth7},
		{"mcconv", "Figure 12", "spread stability vs number of MC simulations", MCConvergence},
		{"skyline", "Figure 11", "skyline classification and decision tree", Skyline},
		{"support", "Table 5", "model-support matrix", Support},
		{"exclusions", "§4 prose claims (extension)", "validate the paper's four exclusion rationales", Exclusions},
		{"robustness", "§5 robustness (extension)", "skyline techniques under IC-trivalency and LT-random", Robustness},
		{"ablations", "design choices (extension)", "lazy eval, SCC pruning, eps-vs-samples, EaSyIM depth", Ablations},
		{"ssa", "§7 promised evolution (extension)", "Stop-and-Stare vs TIM+/IMM", SSAEvolution},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
