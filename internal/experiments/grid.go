package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/metrics"
)

// The Figure 6/7/8 grid: every applicable technique × the four "small"
// datasets × the three paper model configurations × the k grid. Quality,
// Runtime and Memory render different projections of the same runs, so the
// grid is computed once per Config fingerprint and cached.

// gridDatasets mirrors the four datasets of Figures 6–8.
var gridDatasets = []string{"nethept", "hepph", "dblp", "youtube"}

// gridAlgos mirrors the paper's eleven techniques (both IMRank variants).
var gridAlgos = []string{
	"CELF", "CELF++", "TIM+", "IMM", "StaticGreedy", "PMC",
	"LDAG", "SIMPATH", "IRIE", "EaSyIM", "IMRank1", "IMRank2",
}

// mcSimulationDatasets bounds the MC family to the datasets where the paper
// could still run it (CELF/CELF++ do not scale beyond HepPh — §5.2).
var mcSimulationDatasets = map[string]bool{"nethept": true, "hepph": true}

type gridKey struct {
	seed     uint64
	evalSims int
	scale    int64
	ksLen    int
	journal  string
	resume   string
}

var gridCache sync.Map

// gridResults runs (or returns the cached) full benchmark grid.
//
// Resilience: each cell runs under cfg.Ctx through core.RunCtx — a
// panicking technique is recorded Panicked, a non-cooperative one is
// hard-killed to DNF — and the sweep continues with the next cell. When
// cfg.JournalPath is set every completed cell is checkpointed; when
// cfg.ResumeFrom is set, cells already journaled are spliced in without
// re-running. On cancellation the partial results are returned alongside
// an error wrapping core.ErrCancelled.
func gridResults(cfg Config) (results []core.Result, err error) {
	key := gridKey{cfg.Seed, cfg.EvalSims, cfg.ExtraScale, len(cfg.Ks), cfg.JournalPath, cfg.ResumeFrom}
	if rs, ok := gridCache.Load(key); ok {
		return rs.([]core.Result), nil
	}

	ctx := cfg.context()
	var resume map[string]core.Result
	if cfg.ResumeFrom != "" {
		prior, err := core.LoadJournal(cfg.ResumeFrom)
		if err != nil {
			return nil, err
		}
		resume = core.JournalIndex(prior)
		cfg.logf("grid resume: %d completed cells loaded from %s", len(resume), cfg.ResumeFrom)
	}
	var journal *core.Journal
	if cfg.JournalPath != "" {
		journal, err = core.OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		// Write path: a failed close can mean an unflushed checkpoint
		// record, so it must surface rather than vanish.
		defer func() {
			if cerr := journal.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}

	for _, mc := range paperModels() {
		for _, ds := range gridDatasets {
			g, err := prepared(cfg, ds, mc)
			if err != nil {
				return nil, err
			}
			gridSizes.Store(ds, g.N())
			for _, name := range gridAlgos {
				alg := newAlg(name)
				if !alg.Supports(mc.Model) {
					continue
				}
				if mcFamily(name) && !mcSimulationDatasets[ds] {
					continue // paper: CELF/CELF++ DNF beyond HepPh
				}
				// Selection pass: fresh cells run WITHOUT evaluation; the
				// whole k-sweep is then spread-evaluated in one common-world
				// batch (prefix-chained selections cost ~one full pass) and
				// only evaluated cells are journaled. The checkpoint unit is
				// therefore one algorithm's k-sweep, not one cell.
				var pending []int // indices into results of fresh cells
				for _, k := range cfg.Ks {
					if ctx.Err() != nil {
						return results, fmt.Errorf("experiments: grid interrupted: %w", core.ErrCancelled)
					}
					rc := cfg.cell(mc, k)
					if mcFamily(name) {
						rc.ParamValue = cfg.MCSims
					}
					selRC := rc
					selRC.EvalSims = 0 // evaluation is batched below
					res, fresh := gridCell(ctx, cfg, alg, g, selRC, ds, mc.Label, resume)
					if res.Status == core.Cancelled {
						// Interrupted mid-cell: the cell is NOT journaled
						// and will be re-run on resume.
						return results, fmt.Errorf("experiments: grid interrupted: %w", core.ErrCancelled)
					}
					results = append(results, res)
					if fresh {
						pending = append(pending, len(results)-1)
					}
					if res.Status == core.DNF || res.Status == core.Crashed || res.Status == core.Panicked {
						break // larger k will not fare better
					}
				}
				if err := gridEvaluate(ctx, cfg, g, mc, results, pending, journal); err != nil {
					return results, err
				}
			}
		}
	}
	gridCache.Store(key, results)
	if cfg.ArchivePath != "" {
		if err := core.SaveArchive(cfg.ArchivePath, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// gridEvaluate spread-evaluates the fresh cells of one algorithm's k-sweep
// against common live-edge worlds (core.EvaluateSweepCtx), then journals
// them and fires OnCell. Cells spliced from a resume journal already carry
// their Spread and are not re-evaluated or re-journaled. On cancellation the
// fresh cells are downgraded to Cancelled, left out of the journal, and the
// grid reports the interruption — resume re-runs exactly those cells.
func gridEvaluate(ctx context.Context, cfg Config, g graph.G, mc modelConfig, results []core.Result, pending []int, journal *core.Journal) error {
	if len(pending) == 0 {
		return nil
	}
	batch := make([]core.Result, len(pending))
	for j, i := range pending {
		batch[j] = results[i]
	}
	evalErr := core.EvaluateSweepCtx(ctx, g, cfg.cell(mc, 0), batch)
	for j, i := range pending {
		results[i] = batch[j]
	}
	if evalErr != nil {
		return fmt.Errorf("experiments: grid interrupted: %w", core.ErrCancelled)
	}
	for _, i := range pending {
		if journal != nil {
			if err := journal.Append(results[i]); err != nil {
				return err
			}
		}
		if cfg.OnCell != nil {
			cfg.OnCell(results[i])
		}
	}
	return nil
}

// gridCell resolves one cell: from the resume journal when available,
// otherwise by running it. fresh reports whether the cell was executed.
func gridCell(ctx context.Context, cfg Config, alg core.Algorithm, g graph.G, rc core.RunConfig, ds, label string, resume map[string]core.Result) (res core.Result, fresh bool) {
	probe := core.Result{Algorithm: alg.Name(), Dataset: ds + "/" + label, Model: rc.Model, K: rc.K, Param: rc.ParamValue}
	if prior, ok := resume[probe.CellKey()]; ok {
		cfg.logf("grid %s/%s %s k=%d: %s (journal)", ds, label, alg.Name(), rc.K, prior.Status)
		return prior, false
	}
	res = core.RunCtx(ctx, alg, g, rc)
	res.Dataset = ds // stable label even for shared graphs
	cfg.logf("grid %s/%s %s k=%d: %s (%v)",
		ds, label, alg.Name(), rc.K, res.Status, res.SelectionTime.Round(time.Millisecond))
	return withModelLabel(res, label), true
}

// withModelLabel re-labels Result.Model-derived output with the paper's
// three-way IC/WC/LT labels via the Param field abuse-free route: we keep a
// parallel label in the Dataset string "ds" and model label rendered in
// tables by the caller. To stay type-safe we encode it in the Algorithm's
// run copy instead.
func withModelLabel(r core.Result, label string) core.Result {
	r.Dataset = r.Dataset + "/" + label
	return r
}

func splitLabel(dataset string) (ds, label string) {
	for i := len(dataset) - 1; i >= 0; i-- {
		if dataset[i] == '/' {
			return dataset[:i], dataset[i+1:]
		}
	}
	return dataset, ""
}

// Quality reproduces Figure 6: spread vs k.
func Quality(cfg Config) error {
	results, err := gridResults(cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 6 — spread vs #seeds",
		"Dataset", "Model", "Algorithm", "k", "Status", "Spread", "Spread%")
	for _, r := range results {
		ds, label := splitLabel(r.Dataset)
		pct := 0.0
		if n, ok := gridSizes.Load(ds); ok {
			pct = r.SpreadPercent(n.(int32))
		}
		t.AddRow(ds, label, r.Algorithm, r.K, r.Status.String(),
			r.Spread.Mean, fmt.Sprintf("%.2f%%", pct))
	}
	return cfg.emit(t, "fig6_quality.csv")
}

// gridSizes records dataset sizes for the Spread% column of Figure 6.
var gridSizes sync.Map

// Runtime reproduces Figure 7: seed-selection time vs k.
func Runtime(cfg Config) error {
	results, err := gridResults(cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 7 — running time vs #seeds",
		"Dataset", "Model", "Algorithm", "k", "Status", "Time(s)", "Lookups")
	for _, r := range results {
		ds, label := splitLabel(r.Dataset)
		t.AddRow(ds, label, r.Algorithm, r.K, r.Status.String(),
			r.SelectionTime.Seconds(), r.Lookups)
	}
	return cfg.emit(t, "fig7_runtime.csv")
}

// Memory reproduces Figure 8: peak memory vs k.
func Memory(cfg Config) error {
	results, err := gridResults(cfg)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Figure 8 — memory footprint vs #seeds",
		"Dataset", "Model", "Algorithm", "k", "Status", "Memory(MB)")
	for _, r := range results {
		ds, label := splitLabel(r.Dataset)
		t.AddRow(ds, label, r.Algorithm, r.K, r.Status.String(),
			float64(r.PeakMemBytes)/(1<<20))
	}
	return cfg.emit(t, "fig8_memory.csv")
}
