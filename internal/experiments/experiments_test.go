package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
)

// tinyConfig is small enough that any single experiment finishes in
// seconds.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	cfg := Quick()
	cfg.ExtraScale = 256
	cfg.EvalSims = 80
	cfg.Ks = []int{1, 4}
	cfg.CellBudget = 30 * time.Second
	cfg.OutDir = t.TempDir()
	var sb strings.Builder
	cfg.W = &sb
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("experiment output:\n%s", sb.String())
		}
	})
	return cfg
}

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("%d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Name == "" || e.Artifact == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate %q", e.Name)
		}
		seen[e.Name] = true
		if _, err := Lookup(e.Name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestModelByLabel(t *testing.T) {
	for _, label := range []string{"IC", "WC", "LT"} {
		mc, err := modelByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Label != label {
			t.Fatalf("label %q", mc.Label)
		}
	}
	if _, err := modelByLabel("XX"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPreparedCachesAndNames(t *testing.T) {
	cfg := tinyConfig(t)
	ic, _ := modelByLabel("IC")
	g1, err := prepared(cfg, "nethept", ic)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := prepared(cfg, "nethept", ic)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("prepared did not cache")
	}
	if g1.Name() != "nethept" {
		t.Fatalf("name %q", g1.Name())
	}
	if _, err := prepared(cfg, "bogus", ic); err == nil {
		t.Fatal("expected dataset error")
	}
}

func TestPreparedParallelConsolidates(t *testing.T) {
	cfg := tinyConfig(t)
	g, err := preparedParallel(cfg, "dblp-large")
	if err != nil {
		t.Fatal(err)
	}
	// LT-parallel output must be a simple graph with in-weight sums ≤ 1.
	for v := int32(0); v < g.N(); v++ {
		if s := graph.TotalInWeightOf(g, v); s > 1+1e-9 {
			t.Fatalf("node %d in-weight %v", v, s)
		}
	}
}

func TestSplitLabel(t *testing.T) {
	ds, label := splitLabel("youtube/WC")
	if ds != "youtube" || label != "WC" {
		t.Fatalf("%q %q", ds, label)
	}
	ds, label = splitLabel("plain")
	if ds != "plain" || label != "" {
		t.Fatalf("%q %q", ds, label)
	}
}

// TestEveryExperimentRunsTiny executes each experiment at the tiny scale
// and checks its CSV artifacts appear.
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is not -short")
	}
	wantCSV := map[string]string{
		"fig1":       "fig1a.csv",
		"params":     "table2.csv",
		"fig5":       "fig5_imrank_rounds.csv",
		"quality":    "fig6_quality.csv",
		"runtime":    "fig7_runtime.csv",
		"memory":     "fig8_memory.csv",
		"large":      "table3_large.csv",
		"myth1":      "fig9ab_myth1.csv",
		"myth2":      "fig9ce_myth2.csv",
		"myth3":      "myth3_tim_vs_imm.csv",
		"myth4":      "fig10ce_myth4.csv",
		"myth5":      "table4_myth5.csv",
		"myth7":      "fig10f_myth7.csv",
		"mcconv":     "fig12_mc_convergence.csv",
		"skyline":    "fig11a_skyline.csv",
		"support":    "table5_support.csv",
		"exclusions": "ext_exclusions.csv",
		"robustness": "ext_robustness.csv",
		"ablations":  "ext_ablations.csv",
		"ssa":        "ext_ssa.csv",
	}
	cfg := tinyConfig(t)
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			csv, ok := wantCSV[e.Name]
			if !ok {
				t.Fatalf("no expected CSV for %s", e.Name)
			}
			data, err := os.ReadFile(filepath.Join(cfg.OutDir, csv))
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Count(string(data), "\n")
			if lines < 2 {
				t.Fatalf("%s: CSV %s has only %d lines", e.Name, csv, lines)
			}
		})
	}
}

// TestGridArchive: when ArchivePath is set, the grid writes a readable
// JSON archive of its raw results.
func TestGridArchive(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	cfg := tinyConfig(t)
	cfg.Ks = []int{1}
	cfg.ArchivePath = filepath.Join(cfg.OutDir, "grid.json")
	if err := Quality(cfg); err != nil {
		t.Fatal(err)
	}
	results, err := core.LoadArchive(cfg.ArchivePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("empty archive")
	}
	for _, r := range results {
		if r.Algorithm == "" || r.Dataset == "" {
			t.Fatalf("incomplete record %+v", r)
		}
	}
}

// TestMyth4ShapeHolds: on the tiny config the extrapolation direction must
// already be visible — averaged over the ε grid, extrapolated ≥ MC.
func TestMyth4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	cfg := tinyConfig(t)
	if err := Myth4(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(cfg.OutDir, "fig10ce_myth4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var extSum, mcSum float64
	var n int
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 6 {
			continue
		}
		ext, err1 := strconv.ParseFloat(f[4], 64)
		mc, err2 := strconv.ParseFloat(f[5], 64)
		if err1 != nil || err2 != nil {
			continue // DNF rows
		}
		extSum += ext
		mcSum += mc
		n++
	}
	if n == 0 {
		t.Fatal("no numeric rows")
	}
	if extSum < mcSum*0.95 {
		t.Fatalf("extrapolated mean %v below MC mean %v", extSum/float64(n), mcSum/float64(n))
	}
}
