package experiments

import (
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/metrics"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Skyline reproduces Figure 11: (a) the three-pillar placement of every
// technique — both the paper's own placement and the one derived from this
// run's grid results — and (b) the decision-tree recommendations for the
// four practitioner scenarios.
func Skyline(cfg Config) error {
	paper := core.PaperSkyline()
	t := metrics.NewTable("Figure 11a — skyline placement (Q=quality, E=efficiency, M=memory)",
		"Technique", "Paper", "Measured")

	results, err := gridResults(cfg)
	if err != nil {
		return err
	}
	// Collapse the IMRank variants the way the paper's figure does.
	measured := core.ClassifyResults(results, 0.05, 10, 10)
	// Stable order for the table.
	for _, n := range []string{"TIM+", "IMM", "PMC", "StaticGreedy", "CELF", "CELF++",
		"EaSyIM", "IRIE", "IMRank", "LDAG", "SIMPATH"} {
		p := paper[n]
		m, ok := measured[n]
		if !ok {
			// IMRank is split into two variants in our runs.
			if n == "IMRank" {
				m = measured["IMRank1"]
			}
		}
		t.AddRow(n, p.String(), m.String())
	}
	if err := cfg.emit(t, "fig11a_skyline.csv"); err != nil {
		return err
	}

	td := metrics.NewTable("Figure 11b — decision tree recommendations",
		"Scenario", "Recommendation")
	scenarios := []struct {
		desc string
		s    core.Scenario
	}{
		{"memory constrained", core.Scenario{MemoryConstrained: true}},
		{"LT, memory fine", core.Scenario{Model: weights.LT}},
		{"IC with WC weights, memory fine", core.Scenario{Model: weights.IC, WCWeights: true}},
		{"generic IC, memory fine", core.Scenario{Model: weights.IC}},
	}
	for _, sc := range scenarios {
		rec, _ := core.Recommend(sc.s)
		td.AddRow(sc.desc, rec)
	}
	return cfg.emit(td, "fig11b_decision_tree.csv")
}

// Support reproduces Table 5: which techniques support which diffusion
// models, straight from the registry.
func Support(cfg Config) error {
	t := metrics.NewTable("Table 5 — supported diffusion models", "Algorithm", "IC", "LT")
	sm := core.Default().SupportMatrix()
	for _, name := range core.Default().Names() {
		models := sm[name]
		ic, lt := "", ""
		for _, m := range models {
			if m == "IC" {
				ic = "yes"
			}
			if m == "LT" {
				lt = "yes"
			}
		}
		t.AddRow(name, ic, lt)
	}
	return cfg.emit(t, "table5_support.csv")
}
