package experiments

import (
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/metrics"
)

// Fig1 reproduces the paper's motivating Figure 1:
//
//	(a) IMM (ε = 0.5) running time under IC(0.1) vs WC on Orkut — IC blows
//	    up (the paper's copy crashes past 50 seeds at > 256 GB);
//	(b,c) IMM (ε = 0.5) vs EaSyIM running time and memory under IC(0.1) on
//	    YouTube — IMM is faster, EaSyIM is lighter.
func Fig1(cfg Config) error {
	// (a) IMM on orkut-sim, IC vs WC.
	ta := metrics.NewTable("Figure 1a — IMM (eps=0.5) on orkut: IC vs WC",
		"k", "IC status", "IC time", "IC mem", "WC status", "WC time", "WC mem")
	ic, err := modelByLabel("IC")
	if err != nil {
		return err
	}
	wc, err := modelByLabel("WC")
	if err != nil {
		return err
	}
	orkutIC, err := prepared(cfg, "orkut", ic)
	if err != nil {
		return err
	}
	orkutWC, err := prepared(cfg, "orkut", wc)
	if err != nil {
		return err
	}
	imm := newAlg("IMM")
	for _, k := range cfg.Ks {
		ricfg := cfg.cell(ic, k)
		ricfg.ParamValue = 0.5
		ricfg.EvalSims = 0 // Fig. 1 reports selection cost only
		ri := core.Run(imm, orkutIC, ricfg)
		rwcfg := cfg.cell(wc, k)
		rwcfg.ParamValue = 0.5
		rwcfg.EvalSims = 0
		rw := core.Run(imm, orkutWC, rwcfg)
		ta.AddRow(k,
			ri.Status.String(), metrics.HumanDuration(ri.SelectionTime), metrics.HumanBytes(ri.PeakMemBytes),
			rw.Status.String(), metrics.HumanDuration(rw.SelectionTime), metrics.HumanBytes(rw.PeakMemBytes))
	}
	if err := cfg.emit(ta, "fig1a.csv"); err != nil {
		return err
	}

	// (b,c) IMM vs EaSyIM on youtube-sim under IC.
	tb := metrics.NewTable("Figure 1b-c — IMM vs EaSyIM on youtube under IC(0.1)",
		"k", "IMM status", "IMM time", "IMM mem", "EaSyIM status", "EaSyIM time", "EaSyIM mem")
	yt, err := prepared(cfg, "youtube", ic)
	if err != nil {
		return err
	}
	easy := newAlg("EaSyIM")
	for _, k := range cfg.Ks {
		ricfg := cfg.cell(ic, k)
		ricfg.ParamValue = 0.5
		ricfg.EvalSims = 0
		ri := core.Run(imm, yt, ricfg)
		recfg := cfg.cell(ic, k)
		recfg.EvalSims = 0
		re := core.Run(easy, yt, recfg)
		tb.AddRow(k,
			ri.Status.String(), metrics.HumanDuration(ri.SelectionTime), metrics.HumanBytes(ri.PeakMemBytes),
			re.Status.String(), metrics.HumanDuration(re.SelectionTime), metrics.HumanBytes(re.PeakMemBytes))
	}
	return cfg.emit(tb, "fig1bc.csv")
}
