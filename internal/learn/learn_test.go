package learn

import (
	"testing"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func icGraph(seed uint64, n int32, m int, p float64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return weights.ICConstant{P: p}.Apply(b.BuildSimple()).(*graph.Graph)
}

func TestGenerateLogShape(t *testing.T) {
	g := icGraph(1, 30, 150, 0.3)
	logs := GenerateLog(g, 50, 7)
	if len(logs) != 50 {
		t.Fatalf("%d cascades", len(logs))
	}
	for i, c := range logs {
		if len(c) == 0 {
			t.Fatalf("cascade %d empty", i)
		}
		if c[0].Step != 0 {
			t.Fatalf("cascade %d seed step %d", i, c[0].Step)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("cascade %d: %v", i, err)
		}
	}
}

func TestCascadeValidate(t *testing.T) {
	bad := Cascade{{Node: 1, Step: 2}, {Node: 2, Step: 1}}
	if bad.Validate() == nil {
		t.Fatal("out-of-order cascade accepted")
	}
	dup := Cascade{{Node: 1, Step: 0}, {Node: 1, Step: 1}}
	if dup.Validate() == nil {
		t.Fatal("duplicate activation accepted")
	}
}

// TestEstimateRecoversConstant: with abundant cascades on an IC(p) graph,
// the learned weights on well-exercised arcs must approach p.
func TestEstimateRecoversConstant(t *testing.T) {
	const p = 0.3
	g := icGraph(3, 40, 300, p)
	logs := GenerateLog(g, 4000, 11)
	learned, st := Estimate(g, logs, p)
	if st.Trials == 0 || st.ArcsObserved == 0 {
		t.Fatalf("no trials recorded: %+v", st)
	}
	mae, err := MeanAbsError(g, learned)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.08 {
		t.Fatalf("mean abs error %v too high with 4000 cascades", mae)
	}
	if err := weights.Validate(learned, weights.IC); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateRecoversHeterogeneous: arcs with different true weights must
// be distinguished by the estimator.
func TestEstimateRecoversHeterogeneous(t *testing.T) {
	// Star with one strong (0.8) and one weak (0.1) arc, many cascades
	// seeded at the hub by construction (singleton seeds are uniform, so
	// use a 2-node fan where hub selection is frequent).
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	g0 := b.Build()
	g := g0.Reweighted(func(u, v graph.NodeID) float64 {
		if v == 1 {
			return 0.8
		}
		return 0.1
	})
	logs := GenerateLog(g, 9000, 13)
	learned, _ := Estimate(g, logs, 0.5)
	w1, _ := learned.Weight(0, 1)
	w2, _ := learned.Weight(0, 2)
	if w1 < 0.7 || w1 > 0.9 {
		t.Fatalf("strong arc learned as %v", w1)
	}
	if w2 < 0.03 || w2 > 0.2 {
		t.Fatalf("weak arc learned as %v", w2)
	}
}

func TestEstimateUnobservedFallsBackToPrior(t *testing.T) {
	g := icGraph(5, 20, 80, 0.2)
	learned, st := Estimate(g, nil, 0.05)
	if st.Trials != 0 {
		t.Fatalf("trials %d from empty log", st.Trials)
	}
	for _, e := range learned.(*graph.Graph).Edges() {
		if e.Weight != 0.05 {
			t.Fatalf("arc (%d,%d) weight %v want prior", e.From, e.To, e.Weight)
		}
	}
}

func TestMeanAbsErrorShapeMismatch(t *testing.T) {
	a := icGraph(7, 10, 30, 0.1)
	b := icGraph(7, 11, 30, 0.1)
	if _, err := MeanAbsError(a, b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestModel(t *testing.T) {
	if Model() != weights.IC {
		t.Fatal("learned weights target IC")
	}
}
