// Package learn estimates IC edge weights from observed cascade logs.
//
// The paper (§2.1) uses model-assigned weights but notes that "ideally,
// the edge weights should be learned from some training data and such
// efforts exist [12, 13, 19]" — it skips learning only because public
// datasets ship no action logs. This package supplies that missing
// substrate: a cascade-log format, a generator that records logs from
// simulated diffusions (standing in for the proprietary traces, per the
// substitution rule), and the classic frequentist estimator of Goyal,
// Bonchi and Lakshmanan (WSDM 2010): p̂(u,v) = A(u→v) / T(u→v), the
// fraction of u's activation opportunities on v that succeeded.
package learn

import (
	"fmt"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Event is one activation in a cascade: node v became active at Step.
// Seeds have Step 0.
type Event struct {
	Node graph.NodeID
	Step int32
}

// Cascade is one diffusion trace, events ordered by non-decreasing step.
type Cascade []Event

// Validate checks ordering and duplicate activations.
func (c Cascade) Validate() error {
	seen := make(map[graph.NodeID]struct{}, len(c))
	last := int32(0)
	for i, e := range c {
		if e.Step < last {
			return fmt.Errorf("learn: cascade event %d out of order (step %d after %d)", i, e.Step, last)
		}
		last = e.Step
		if _, dup := seen[e.Node]; dup {
			return fmt.Errorf("learn: node %d activated twice", e.Node)
		}
		seen[e.Node] = struct{}{}
	}
	return nil
}

// GenerateLog simulates numCascades IC diffusions on g (whose weights are
// the ground truth) from random singleton seeds and records each as a
// step-annotated cascade — the synthetic stand-in for a real action log.
func GenerateLog(g graph.G, numCascades int, seed uint64) []Cascade {
	r := rng.New(seed)
	n := g.N()
	logs := make([]Cascade, 0, numCascades)
	active := make([]int32, n) // activation step + 1; 0 = inactive
	for c := 0; c < numCascades; c++ {
		for i := range active {
			active[i] = 0
		}
		src := graph.NodeID(r.Int31n(n))
		cas := Cascade{{Node: src, Step: 0}}
		active[src] = 1
		frontier := []graph.NodeID{src}
		step := int32(0)
		for len(frontier) > 0 {
			step++
			var next []graph.NodeID
			for _, u := range frontier {
				to, w := g.OutNeighbors(u)
				for i, v := range to {
					if active[v] != 0 {
						continue
					}
					if r.Float64() < w[i] {
						active[v] = step + 1
						cas = append(cas, Event{Node: v, Step: step})
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		logs = append(logs, cas)
	}
	return logs
}

// Estimate learns per-arc IC probabilities from cascades on the known
// graph structure: for every arc (u,v), a TRIAL is counted whenever u was
// activated at step t and v was not yet active at t (u got exactly one
// chance to fire on v under IC). When v activates at t+1, the SUCCESS
// credit is split equally among all parents that fired at step t — the
// credit-distribution idea of Goyal, Bonchi and Lakshmanan (WSDM 2010),
// which removes the upward bias of crediting every simultaneous parent
// fully. Arcs never exercised keep the prior. Returns a reweighted graph.
func Estimate(g graph.G, logs []Cascade, prior float64) (graph.G, *Stats) {
	type counter struct {
		trials    int32
		successes float64
	}
	counts := make(map[[2]graph.NodeID]*counter)
	st := &Stats{}

	stepOf := make(map[graph.NodeID]int32)
	for _, cas := range logs {
		for k := range stepOf {
			delete(stepOf, k)
		}
		for _, e := range cas {
			stepOf[e.Node] = e.Step
		}
		// firingParents[v] = number of in-neighbors of v active at exactly
		// step(v)−1, i.e. the candidates sharing the credit for v.
		firingParents := make(map[graph.NodeID]float64, len(cas))
		for _, e := range cas {
			if e.Step == 0 {
				continue
			}
			from, _ := g.InNeighbors(e.Node)
			cnt := 0.0
			for _, u := range from {
				if su, ok := stepOf[u]; ok && su == e.Step-1 {
					cnt++
				}
			}
			firingParents[e.Node] = cnt
		}
		for _, e := range cas {
			u := e.Node
			to, _ := g.OutNeighbors(u)
			for _, v := range to {
				sv, wasActive := stepOf[v]
				if wasActive && sv <= e.Step {
					continue // v already active when u fired: no trial
				}
				// u fired on v at step e.Step. Under IC this is u's only
				// attempt; if the cascade quiesced before e.Step+1 the
				// attempt still happened (and failed).
				key := [2]graph.NodeID{u, v}
				c := counts[key]
				if c == nil {
					c = &counter{}
					counts[key] = c
				}
				c.trials++
				st.Trials++
				if wasActive && sv == e.Step+1 {
					if fp := firingParents[v]; fp > 0 {
						c.successes += 1 / fp
					}
					st.Successes++
				}
			}
		}
	}

	learned := graph.Reweight(g, func(u, v graph.NodeID) float64 {
		if c, ok := counts[[2]graph.NodeID{u, v}]; ok && c.trials > 0 {
			w := c.successes / float64(c.trials)
			if w > 1 {
				w = 1
			}
			return w
		}
		st.Unobserved++
		return prior
	})
	st.ArcsObserved = len(counts)
	return learned, st
}

// Stats summarizes an estimation pass.
type Stats struct {
	Trials       int64
	Successes    int64
	ArcsObserved int
	// Unobserved counts arc-weight queries that fell back to the prior
	// (each arc appears twice — once per CSR direction).
	Unobserved int64
}

// MeanAbsError compares learned arc weights against the ground truth,
// restricted to arcs with at least one trial recorded in stats' counts is
// not retained, so the comparison covers all arcs; unexercised arcs
// contribute |prior − truth|.
func MeanAbsError(truth, learned graph.G) (float64, error) {
	if truth.N() != learned.N() || truth.M() != learned.M() {
		return 0, fmt.Errorf("learn: graph shape mismatch")
	}
	var sum float64
	var cnt int64
	for u := graph.NodeID(0); u < truth.N(); u++ {
		toT, wT := truth.OutNeighbors(u)
		_, wL := learned.OutNeighbors(u)
		for i := range toT {
			d := wT[i] - wL[i]
			if d < 0 {
				d = -d
			}
			sum += d
			cnt++
		}
	}
	if cnt == 0 {
		return 0, nil
	}
	return sum / float64(cnt), nil
}

// Model returns the diffusion model the learned weights target (IC).
func Model() weights.Model { return weights.IC }
