package graphalgo

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/graph"
)

// BFSReach counts the nodes reachable from src (inclusive) over fwd,
// skipping nodes for which blocked returns true (blocked may be nil). It is
// the reachability kernel of StaticGreedy's influence estimation. mark/epoch
// implement reusable visited state; queue is scratch, returned for reuse.
func BFSReach(fwd Forward, src int32, blocked func(int32) bool, mark []uint32, epoch uint32, queue []int32) (int32, []int32) {
	if blocked != nil && blocked(src) {
		return 0, queue
	}
	queue = queue[:0]
	queue = append(queue, src)
	mark[src] = epoch
	count := int32(1)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		fwd.VisitOut(u, func(v int32) {
			if mark[v] == epoch {
				return
			}
			if blocked != nil && blocked(v) {
				return
			}
			mark[v] = epoch
			queue = append(queue, v)
			count++
		})
	}
	return count, queue
}

// GraphView adapts graph.G to the Forward interface.
type GraphView struct{ G graph.G }

// N implements Forward.
func (gv GraphView) N() int32 { return gv.G.N() }

// VisitOut implements Forward.
func (gv GraphView) VisitOut(u int32, fn func(v int32)) {
	to, _ := gv.G.OutNeighbors(u)
	for _, v := range to {
		fn(v)
	}
}

// MaxProbDijkstra computes maximum-probability influence paths INTO a target
// node v: for each node u it finds the largest product of arc weights along
// any u→…→v path. This is Dijkstra on −log(w) over the reverse graph and is
// the kernel of LDAG's local-DAG construction (paper §4.4): the local DAG of
// v keeps exactly the nodes whose best path probability to v is ≥ θ.
//
// The searcher reuses scratch arrays across Run calls; it is not safe for
// concurrent use.
type MaxProbDijkstra struct {
	g       graph.G
	prob    []float64
	seen    []uint32 // epoch when node was first pushed
	settled []uint32 // epoch when node was settled
	next    []graph.NodeID
	epoch   uint32
	pq      probHeap
}

// NewMaxProbDijkstra creates a reusable search over g.
func NewMaxProbDijkstra(g graph.G) *MaxProbDijkstra {
	n := g.N()
	return &MaxProbDijkstra{
		g:       g,
		prob:    make([]float64, n),
		seen:    make([]uint32, n),
		settled: make([]uint32, n),
	}
}

// Run finds all nodes whose maximum-probability path to target has
// probability ≥ theta and invokes fn once per node in non-increasing
// probability order (target first, with probability 1).
func (d *MaxProbDijkstra) Run(target graph.NodeID, theta float64, fn func(u graph.NodeID, p float64)) {
	d.RunWithNextHop(target, theta, func(u graph.NodeID, p float64, _ graph.NodeID) {
		fn(u, p)
	})
}

// RunWithNextHop is Run but additionally reports each node's next hop on
// its maximum-probability path towards the target (the target reports
// itself). The next hops form the maximum-influence in-arborescence MIIA
// of PMIA (Chen et al., KDD 2010).
func (d *MaxProbDijkstra) RunWithNextHop(target graph.NodeID, theta float64, fn func(u graph.NodeID, p float64, next graph.NodeID)) {
	d.epoch++
	if d.epoch == 0 {
		for i := range d.seen {
			d.seen[i] = 0
			d.settled[i] = 0
		}
		d.epoch = 1
	}
	if d.next == nil {
		d.next = make([]graph.NodeID, d.g.N())
	}
	d.pq = d.pq[:0]
	d.seen[target] = d.epoch
	d.prob[target] = 1
	d.next[target] = target
	heap.Push(&d.pq, probItem{node: target, p: 1})
	for len(d.pq) > 0 {
		it := heap.Pop(&d.pq).(probItem)
		if d.settled[it.node] == d.epoch {
			continue // stale duplicate
		}
		d.settled[it.node] = d.epoch
		fn(it.node, it.p, d.next[it.node])
		from, w := d.g.InNeighbors(it.node)
		for i, u := range from {
			np := it.p * w[i]
			if np < theta {
				continue
			}
			if d.settled[u] == d.epoch {
				continue
			}
			if d.seen[u] == d.epoch && d.prob[u] >= np {
				continue
			}
			d.seen[u] = d.epoch
			d.prob[u] = np
			d.next[u] = it.node
			heap.Push(&d.pq, probItem{node: u, p: np})
		}
	}
}

type probItem struct {
	node graph.NodeID
	p    float64
}

type probHeap []probItem

func (h probHeap) Len() int            { return len(h) }
func (h probHeap) Less(i, j int) bool  { return h[i].p > h[j].p } // max-heap on probability
func (h probHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *probHeap) Push(x interface{}) { *h = append(*h, x.(probItem)) }
func (h *probHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
