// Package graphalgo provides the classical graph kernels the IM algorithms
// build on: strongly connected components and condensation (PMC's pruned
// Monte-Carlo estimation, paper §4.3), shortest-path search on −log weights
// (LDAG's local DAG construction, paper §4.4) and greedy maximum coverage
// (the seed-selection step of the RR-set methods, paper §4.2).
package graphalgo

// Forward is the minimal adjacency view the kernels need: any structure that
// can enumerate out-neighbors. Both *graph.Graph and *diffusion.Snapshot
// satisfy it via small adapters.
type Forward interface {
	N() int32
	// VisitOut calls fn for every out-neighbor of u.
	VisitOut(u int32, fn func(v int32))
}

// SCC computes strongly connected components with Tarjan's algorithm,
// implemented iteratively so million-node snapshots do not overflow the
// goroutine stack. It returns comp (node -> component id) and the number of
// components. Component IDs are in reverse topological order of the
// condensation (standard Tarjan property): every arc in the condensation
// goes from a higher comp id to a lower one.
func SCC(g Forward) (comp []int32, ncomp int32) {
	n := g.N()
	comp = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int32
	var next int32

	type frame struct {
		v     int32
		neigh []int32 // materialized out-neighbors of v
		i     int     // next neighbor index to process
	}
	var callStack []frame
	neighbors := func(v int32) []int32 {
		var ns []int32
		g.VisitOut(v, func(w int32) { ns = append(ns, w) })
		return ns
	}

	for root := int32(0); root < n; root++ {
		if index[root] != -1 {
			continue
		}
		callStack = callStack[:0]
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		callStack = append(callStack, frame{v: root, neigh: neighbors(root)})
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			advanced := false
			for f.i < len(f.neigh) {
				w := f.neigh[f.i]
				f.i++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w, neigh: neighbors(w)})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v finished.
			v := f.v
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := &callStack[len(callStack)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// Condensation is the DAG of strongly connected components.
type Condensation struct {
	NComp int32
	Comp  []int32 // node -> component
	Size  []int32 // component -> member count
	// Out-adjacency of the DAG, deduplicated.
	Off []int64
	To  []int32
}

// Condense builds the condensation DAG of g given a component labelling.
func Condense(g Forward, comp []int32, ncomp int32) *Condensation {
	n := g.N()
	c := &Condensation{NComp: ncomp, Comp: comp}
	c.Size = make([]int32, ncomp)
	for v := int32(0); v < n; v++ {
		c.Size[comp[v]]++
	}
	type arc struct{ a, b int32 }
	seen := make(map[arc]struct{})
	deg := make([]int64, ncomp)
	var arcs []arc
	for v := int32(0); v < n; v++ {
		cv := comp[v]
		g.VisitOut(v, func(w int32) {
			cw := comp[w]
			if cv == cw {
				return
			}
			a := arc{cv, cw}
			if _, ok := seen[a]; ok {
				return
			}
			seen[a] = struct{}{}
			arcs = append(arcs, a)
			deg[cv]++
		})
	}
	c.Off = make([]int64, ncomp+1)
	for i := int32(0); i < ncomp; i++ {
		c.Off[i+1] = c.Off[i] + deg[i]
	}
	c.To = make([]int32, len(arcs))
	cur := make([]int64, ncomp)
	copy(cur, c.Off[:ncomp])
	for _, a := range arcs {
		c.To[cur[a.a]] = a.b
		cur[a.a]++
	}
	return c
}

// OutNeighbors returns component c's out-neighbors in the DAG.
func (c *Condensation) OutNeighbors(comp int32) []int32 {
	return c.To[c.Off[comp]:c.Off[comp+1]]
}

// TopoOrder returns the components in topological order (sources first).
// Tarjan assigns component ids in reverse topological order, so this is
// simply ncomp-1 .. 0.
func (c *Condensation) TopoOrder() []int32 {
	order := make([]int32, c.NComp)
	for i := int32(0); i < c.NComp; i++ {
		order[i] = c.NComp - 1 - i
	}
	return order
}
