package graphalgo

import "fmt"

// SetStore is flat CSR-style storage for a sequence of int32-element sets:
// one contiguous data arena plus an offsets array, so storing θ RR sets
// costs exactly two allocations instead of θ slice headers. The layout is
// the estimation substrate of the RR-set family (paper §4.2): the memory
// blow-up the paper's M6 dissects is dominated by these sets, and keeping
// them in one arena both shrinks the footprint (no per-set header or
// malloc slack) and makes the greedy max-cover scan cache-friendly.
//
// A SetStore is append-only between Resets and is not safe for concurrent
// mutation; concurrent readers are fine once writing stops.
type SetStore struct {
	data []int32
	off  []int64 // len = Len()+1; set i occupies data[off[i]:off[i+1]]
}

// NewSetStore returns an empty store.
func NewSetStore() *SetStore {
	return &SetStore{off: make([]int64, 1, 16)}
}

// StoreOf builds a store holding the given sets, in order. Convenience for
// tests and callers converting from slice-of-slices form.
func StoreOf(sets ...[]int32) *SetStore {
	s := NewSetStore()
	for _, set := range sets {
		s.Append(set)
	}
	return s
}

// Len returns the number of stored sets.
func (s *SetStore) Len() int { return len(s.off) - 1 }

// NumElems returns the total element count across all sets.
func (s *SetStore) NumElems() int64 { return int64(len(s.data)) }

// Set returns the elements of set i as a view into the arena. The view is
// valid until the next Append (which may move the arena) or Reset.
func (s *SetStore) Set(i int) []int32 {
	return s.data[s.off[i]:s.off[i+1]]
}

// Append copies one set into the arena.
func (s *SetStore) Append(set []int32) {
	s.data = append(s.data, set...)
	s.off = append(s.off, int64(len(s.data)))
}

// AppendStore bulk-copies every set of t onto the end of s, preserving
// order. Used to merge per-worker sampling shards deterministically.
func (s *SetStore) AppendStore(t *SetStore) {
	base := int64(len(s.data))
	s.data = append(s.data, t.data...)
	for _, o := range t.off[1:] {
		s.off = append(s.off, base+o)
	}
}

// AppendRange bulk-copies sets [from, to) of t onto the end of s, preserving
// order. The work-stealing sampler merges its per-worker shards with one
// AppendRange per segment record, walked in global index order.
func (s *SetStore) AppendRange(t *SetStore, from, to int) {
	lo, hi := t.off[from], t.off[to]
	base := int64(len(s.data)) - lo
	s.data = append(s.data, t.data[lo:hi]...)
	for _, o := range t.off[from+1 : to+1] {
		s.off = append(s.off, base+o)
	}
}

// Grow ensures capacity for sets more sets and elems more elements without
// further reallocation, so a bulk merge costs one arena move at most.
func (s *SetStore) Grow(sets int, elems int64) {
	if need := int64(len(s.data)) + elems; need > int64(cap(s.data)) {
		nd := make([]int32, len(s.data), need)
		copy(nd, s.data)
		s.data = nd
	}
	if need := len(s.off) + sets; need > cap(s.off) {
		no := make([]int64, len(s.off), need)
		copy(no, s.off)
		s.off = no
	}
}

// Bytes returns the arena's true resident footprint: capacity, not length,
// of both backing arrays. This is what Context.Account must be charged for
// the paper's M6 memory-blow-up reproduction to stay faithful.
func (s *SetStore) Bytes() int64 {
	return int64(cap(s.data))*4 + int64(cap(s.off))*8
}

// Reset discards all sets AND releases the arena (it does not retain
// capacity): TIM+ discards its KPT-phase collection between phases and the
// freed bytes must actually return to the allocator for the accounting
// credit to be truthful.
func (s *SetStore) Reset() {
	s.data = nil
	s.off = make([]int64, 1, 16)
}

// Raw exposes the arena's two backing arrays (data, offsets) for
// serialization. The views alias the store's memory: callers must not
// mutate them, and they are invalidated by the next Append or Reset.
func (s *SetStore) Raw() (data []int32, off []int64) {
	return s.data, s.off
}

// SetStoreFromRaw adopts previously serialized backing arrays (the Raw
// layout) without copying. It validates the CSR invariants — off starts
// at 0, is non-decreasing and ends exactly at len(data) — so a corrupted
// snapshot can never materialize a store whose Set(i) calls would panic
// or alias out of bounds.
func SetStoreFromRaw(data []int32, off []int64) (*SetStore, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("setstore: offsets empty (need at least the leading 0)")
	}
	if off[0] != 0 {
		return nil, fmt.Errorf("setstore: offsets must start at 0, got %d", off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return nil, fmt.Errorf("setstore: offsets decrease at %d (%d -> %d)", i, off[i-1], off[i])
		}
	}
	if last := off[len(off)-1]; last != int64(len(data)) {
		return nil, fmt.Errorf("setstore: final offset %d does not match arena length %d", last, len(data))
	}
	return &SetStore{data: data, off: off}, nil
}

// Equal reports whether s and t store identical set sequences — same
// order, same elements, same element order. Determinism tests use it to
// assert byte-identical sampling across worker counts.
func (s *SetStore) Equal(t *SetStore) bool {
	if s.Len() != t.Len() || len(s.data) != len(t.data) {
		return false
	}
	for i := range s.off {
		if s.off[i] != t.off[i] {
			return false
		}
	}
	for i := range s.data {
		if s.data[i] != t.data[i] {
			return false
		}
	}
	return true
}
