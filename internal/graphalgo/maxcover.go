package graphalgo

import "container/heap"

// Greedy maximum coverage
//
// The RR-set methods select seeds by greedy max-cover over the sampled sets
// (paper §4.2): iteratively pick the node contained in the most not-yet-
// covered RR sets. Lazy (CELF-style) evaluation keeps this near-linear.

// CoverageProblem is a universe of sets over node elements, consumed from a
// flat SetStore and inverted into a flat per-node membership index (CSR:
// invData[invOff[v]:invOff[v+1]] lists the sets containing node v) at
// construction. The flat inversion costs O(1) allocations instead of one
// growing slice per node, and the hot lazy-greedy re-evaluation scan walks
// contiguous memory instead of chasing per-node slice headers.
type CoverageProblem struct {
	numSets int
	invOff  []int64 // node -> start of its membership run in invData
	invData []int32 // concatenated set indices, grouped by node
	covered []bool  // set -> already covered
	degree  []int64 // node -> number of uncovered sets containing it (lazy)
}

// NewCoverageProblem inverts the store's sets (each a list of node ids over
// a universe of n nodes) into the per-node index used by greedy max-cover,
// with two counting-sort passes over the arena. Duplicate node entries
// within one set are ignored: a membership counted twice would inflate the
// lazy heap's initial gains and break the greedy invariant (cached gains
// must upper-bound true gains).
func NewCoverageProblem(n int32, sets *SetStore) *CoverageProblem {
	numSets := sets.Len()
	cp := &CoverageProblem{
		numSets: numSets,
		invOff:  make([]int64, n+1),
		covered: make([]bool, numSets),
		degree:  make([]int64, n),
	}
	// mark[v] records the last set that counted v, so a duplicate entry of
	// v within one set is skipped; the +numSets offset distinguishes the
	// counting pass from the fill pass without re-clearing the array.
	mark := make([]int64, n)
	for i := range mark {
		mark[i] = -1
	}
	for si := 0; si < numSets; si++ {
		for _, v := range sets.Set(si) {
			if mark[v] == int64(si) {
				continue
			}
			mark[v] = int64(si)
			cp.degree[v]++
		}
	}
	for v := int32(0); v < n; v++ {
		cp.invOff[v+1] = cp.invOff[v] + cp.degree[v]
	}
	cp.invData = make([]int32, cp.invOff[n])
	cur := make([]int64, n)
	copy(cur, cp.invOff[:n])
	for si := 0; si < numSets; si++ {
		for _, v := range sets.Set(si) {
			if mark[v] == int64(si)+int64(numSets) {
				continue
			}
			mark[v] = int64(si) + int64(numSets)
			cp.invData[cur[v]] = int32(si)
			cur[v]++
		}
	}
	return cp
}

// memberships returns the indices of the sets containing node v.
func (cp *CoverageProblem) memberships(v int32) []int32 {
	return cp.invData[cp.invOff[v]:cp.invOff[v+1]]
}

// MaxCoverResult reports the greedy max-cover outcome.
type MaxCoverResult struct {
	Seeds      []int32
	NumCovered int64   // sets covered by Seeds
	Fraction   float64 // NumCovered / numSets
	// PerSeedCovered[i] = marginal sets covered by Seeds[i].
	PerSeedCovered []int64
}

// GreedyMaxCover picks k nodes maximizing coverage with lazy evaluation.
// Guarantees the (1−1/e) approximation of monotone submodular maximization.
func (cp *CoverageProblem) GreedyMaxCover(k int) MaxCoverResult {
	res, _ := cp.GreedyMaxCoverPoll(k, nil)
	return res
}

// Clone returns a coverage problem sharing the (immutable) set inversion
// with cp but carrying fresh covered marks, so several greedy covers can
// run concurrently over one index. The greedy never mutates the inversion
// or degree, only covered; cloning is therefore O(#sets).
func (cp *CoverageProblem) Clone() *CoverageProblem {
	return &CoverageProblem{
		numSets: cp.numSets,
		invOff:  cp.invOff,
		invData: cp.invData,
		covered: make([]bool, cp.numSets),
		degree:  cp.degree,
	}
}

// GreedyMaxCoverPoll is GreedyMaxCover with a cooperative cancellation
// hook: poll (when non-nil) is invoked once per selection round plus every
// pollStride lazy re-evaluations, and a non-nil return aborts the greedy
// with that error. Online serving uses it to honor per-request deadlines.
// res.Seeds is freshly allocated on every call and shares no memory with
// the problem's internal state.
func (cp *CoverageProblem) GreedyMaxCoverPoll(k int, poll func() error) (MaxCoverResult, error) {
	res := MaxCoverResult{}
	h := make(coverHeap, 0, len(cp.degree))
	for v, d := range cp.degree {
		if d > 0 {
			h = append(h, coverItem{node: int32(v), gain: d, round: 0})
		}
	}
	heap.Init(&h)
	covered := int64(0)
	reevals := 0
	for round := 0; round < k && len(h) > 0; round++ {
		if poll != nil {
			if err := poll(); err != nil {
				return res, err
			}
		}
		var pick coverItem
		for {
			top := h[0]
			if int(top.round) == round {
				pick = top
				heap.Pop(&h)
				break
			}
			// Recompute the stale gain lazily.
			reevals++
			if poll != nil && reevals%pollStride == 0 {
				if err := poll(); err != nil {
					return res, err
				}
			}
			gain := int64(0)
			for _, si := range cp.memberships(top.node) {
				if !cp.covered[si] {
					gain++
				}
			}
			h[0].gain = gain
			h[0].round = int32(round)
			heap.Fix(&h, 0)
		}
		if pick.gain <= 0 {
			// Everything coverable is covered; fill remaining seeds with the
			// best leftover nodes so callers still receive k seeds.
			res.Seeds = append(res.Seeds, pick.node)
			res.PerSeedCovered = append(res.PerSeedCovered, 0)
			continue
		}
		for _, si := range cp.memberships(pick.node) {
			if !cp.covered[si] {
				cp.covered[si] = true
				covered++
			}
		}
		res.Seeds = append(res.Seeds, pick.node)
		res.PerSeedCovered = append(res.PerSeedCovered, pick.gain)
	}
	// Pad with unused nodes when fewer than k nodes appear in any set, so
	// callers always receive k distinct seeds.
	if len(res.Seeds) < k {
		chosen := make(map[int32]struct{}, len(res.Seeds))
		for _, s := range res.Seeds {
			chosen[s] = struct{}{}
		}
		for v := int32(0); len(res.Seeds) < k && int(v) < len(cp.degree); v++ {
			if _, dup := chosen[v]; dup {
				continue
			}
			res.Seeds = append(res.Seeds, v)
			res.PerSeedCovered = append(res.PerSeedCovered, 0)
		}
	}
	res.NumCovered = covered
	if cp.numSets > 0 {
		res.Fraction = float64(covered) / float64(cp.numSets)
	}
	return res, nil
}

// pollStride bounds how many lazy re-evaluations may run between two poll
// calls; each re-evaluation touches one node's full set list, so this keeps
// the deadline-check latency in the tens of microseconds on real indexes.
const pollStride = 256

// CoverageOf returns the number of sets covered by the given seed set,
// without mutating the problem.
func (cp *CoverageProblem) CoverageOf(seeds []int32) int64 {
	seen := make(map[int32]struct{})
	for _, v := range seeds {
		if v < 0 || int64(v) >= int64(len(cp.degree)) {
			continue
		}
		for _, si := range cp.memberships(v) {
			seen[si] = struct{}{}
		}
	}
	return int64(len(seen))
}

// NumSets returns the universe size.
func (cp *CoverageProblem) NumSets() int { return cp.numSets }

// MemoryBytes returns the problem's resident footprint (capacity-based,
// like SetStore.Bytes): the inversion arrays plus the cover marks. Streaming
// collections charge it through Context.Account while a greedy runs.
func (cp *CoverageProblem) MemoryBytes() int64 {
	return int64(cap(cp.invOff))*8 + int64(cap(cp.invData))*4 +
		int64(cap(cp.covered)) + int64(cap(cp.degree))*8
}

type coverItem struct {
	node  int32
	gain  int64
	round int32 // round at which gain was last computed
}

type coverHeap []coverItem

func (h coverHeap) Len() int            { return len(h) }
func (h coverHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h coverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coverHeap) Push(x interface{}) { *h = append(*h, x.(coverItem)) }
func (h *coverHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
