package graphalgo

import "container/heap"

// Greedy maximum coverage
//
// The RR-set methods select seeds by greedy max-cover over the sampled sets
// (paper §4.2): iteratively pick the node contained in the most not-yet-
// covered RR sets. Lazy (CELF-style) evaluation keeps this near-linear.

// CoverageProblem is a universe of sets over node elements: sets[i] lists
// the nodes of RR set i, and membership is inverted into per-node lists at
// construction.
type CoverageProblem struct {
	numSets  int
	nodeSets [][]int32 // node -> indices of sets containing it
	covered  []bool    // set -> already covered
	degree   []int64   // node -> number of uncovered sets containing it (lazy)
}

// NewCoverageProblem inverts sets (each a list of node ids over a universe
// of n nodes) into the per-node index used by greedy max-cover. Duplicate
// node entries within one set are ignored: a membership counted twice
// would inflate the lazy heap's initial gains and break the greedy
// invariant (cached gains must upper-bound true gains).
func NewCoverageProblem(n int32, sets [][]int32) *CoverageProblem {
	cp := &CoverageProblem{
		numSets:  len(sets),
		nodeSets: make([][]int32, n),
		covered:  make([]bool, len(sets)),
		degree:   make([]int64, n),
	}
	for si, set := range sets {
		for _, v := range set {
			ns := cp.nodeSets[v]
			if len(ns) > 0 && ns[len(ns)-1] == int32(si) {
				continue // duplicate within this set (sets arrive grouped)
			}
			cp.nodeSets[v] = append(cp.nodeSets[v], int32(si))
			cp.degree[v]++
		}
	}
	return cp
}

// MaxCoverResult reports the greedy max-cover outcome.
type MaxCoverResult struct {
	Seeds      []int32
	NumCovered int64   // sets covered by Seeds
	Fraction   float64 // NumCovered / numSets
	// PerSeedCovered[i] = marginal sets covered by Seeds[i].
	PerSeedCovered []int64
}

// GreedyMaxCover picks k nodes maximizing coverage with lazy evaluation.
// Guarantees the (1−1/e) approximation of monotone submodular maximization.
func (cp *CoverageProblem) GreedyMaxCover(k int) MaxCoverResult {
	res, _ := cp.GreedyMaxCoverPoll(k, nil)
	return res
}

// Clone returns a coverage problem sharing the (immutable) set inversion
// with cp but carrying fresh covered marks, so several greedy covers can
// run concurrently over one index. The greedy never mutates nodeSets or
// degree, only covered; cloning is therefore O(#sets).
func (cp *CoverageProblem) Clone() *CoverageProblem {
	return &CoverageProblem{
		numSets:  cp.numSets,
		nodeSets: cp.nodeSets,
		covered:  make([]bool, cp.numSets),
		degree:   cp.degree,
	}
}

// GreedyMaxCoverPoll is GreedyMaxCover with a cooperative cancellation
// hook: poll (when non-nil) is invoked once per selection round plus every
// pollStride lazy re-evaluations, and a non-nil return aborts the greedy
// with that error. Online serving uses it to honor per-request deadlines.
func (cp *CoverageProblem) GreedyMaxCoverPoll(k int, poll func() error) (MaxCoverResult, error) {
	res := MaxCoverResult{}
	h := make(coverHeap, 0, len(cp.nodeSets))
	for v, d := range cp.degree {
		if d > 0 {
			h = append(h, coverItem{node: int32(v), gain: d, round: 0})
		}
	}
	heap.Init(&h)
	covered := int64(0)
	reevals := 0
	for round := 0; round < k && len(h) > 0; round++ {
		if poll != nil {
			if err := poll(); err != nil {
				return res, err
			}
		}
		var pick coverItem
		for {
			top := h[0]
			if int(top.round) == round {
				pick = top
				heap.Pop(&h)
				break
			}
			// Recompute the stale gain lazily.
			reevals++
			if poll != nil && reevals%pollStride == 0 {
				if err := poll(); err != nil {
					return res, err
				}
			}
			gain := int64(0)
			for _, si := range cp.nodeSets[top.node] {
				if !cp.covered[si] {
					gain++
				}
			}
			h[0].gain = gain
			h[0].round = int32(round)
			heap.Fix(&h, 0)
		}
		if pick.gain <= 0 {
			// Everything coverable is covered; fill remaining seeds with the
			// best leftover nodes so callers still receive k seeds.
			res.Seeds = append(res.Seeds, pick.node)
			res.PerSeedCovered = append(res.PerSeedCovered, 0)
			continue
		}
		for _, si := range cp.nodeSets[pick.node] {
			if !cp.covered[si] {
				cp.covered[si] = true
				covered++
			}
		}
		res.Seeds = append(res.Seeds, pick.node)
		res.PerSeedCovered = append(res.PerSeedCovered, pick.gain)
	}
	// Pad with unused nodes when fewer than k nodes appear in any set, so
	// callers always receive k distinct seeds.
	if len(res.Seeds) < k {
		chosen := make(map[int32]struct{}, len(res.Seeds))
		for _, s := range res.Seeds {
			chosen[s] = struct{}{}
		}
		for v := int32(0); len(res.Seeds) < k && int(v) < len(cp.nodeSets); v++ {
			if _, dup := chosen[v]; dup {
				continue
			}
			res.Seeds = append(res.Seeds, v)
			res.PerSeedCovered = append(res.PerSeedCovered, 0)
		}
	}
	res.NumCovered = covered
	if cp.numSets > 0 {
		res.Fraction = float64(covered) / float64(cp.numSets)
	}
	return res, nil
}

// pollStride bounds how many lazy re-evaluations may run between two poll
// calls; each re-evaluation touches one node's full set list, so this keeps
// the deadline-check latency in the tens of microseconds on real indexes.
const pollStride = 256

// CoverageOf returns the number of sets covered by the given seed set,
// without mutating the problem.
func (cp *CoverageProblem) CoverageOf(seeds []int32) int64 {
	seen := make(map[int32]struct{})
	for _, v := range seeds {
		if v < 0 || int(v) >= len(cp.nodeSets) {
			continue
		}
		for _, si := range cp.nodeSets[v] {
			seen[si] = struct{}{}
		}
	}
	return int64(len(seen))
}

// NumSets returns the universe size.
func (cp *CoverageProblem) NumSets() int { return cp.numSets }

type coverItem struct {
	node  int32
	gain  int64
	round int32 // round at which gain was last computed
}

type coverHeap []coverItem

func (h coverHeap) Len() int            { return len(h) }
func (h coverHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h coverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coverHeap) Push(x interface{}) { *h = append(*h, x.(coverItem)) }
func (h *coverHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
