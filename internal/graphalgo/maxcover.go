package graphalgo

import "container/heap"

// Greedy maximum coverage
//
// The RR-set methods select seeds by greedy max-cover over the sampled sets
// (paper §4.2): iteratively pick the node contained in the most not-yet-
// covered RR sets. Two implementations share one selection rule (highest
// gain, lowest node id on ties — a total order, so the argmax is unique):
//
//   - Materialized path (the store is attached): a coverage-degradation
//     scan. Gains live in one compact uint32 array; picking node u walks
//     u's newly covered sets through the flat SetStore arena in offset
//     order and decrements the members' gains in place. Selection is a
//     branch-light linear argmax over the gain array. Sequential scans
//     over two flat arrays replace the heap's pointer-chasing re-evaluation
//     of per-node membership lists — the cache-conscious layout.
//
//   - Streaming path (no store: the sets live in a CoverageBuilder spill
//     file): the classic lazy (CELF) heap over cached gains, which only
//     needs the inversion. Cached gains upper-bound true gains, so when a
//     freshly recomputed entry reaches the top it is the true argmax under
//     the same total order — the two paths pick identical seeds, which the
//     streaming-equivalence tests rely on.
//
// Both guarantee the (1−1/e) approximation of monotone submodular
// maximization.

// CoverageProblem is a universe of sets over node elements, consumed from a
// flat SetStore and inverted into a flat per-node membership index (CSR:
// invData[invOff[v]:invOff[v+1]] lists the sets containing node v) at
// construction. The flat inversion costs O(1) allocations instead of one
// growing slice per node.
type CoverageProblem struct {
	numSets int
	invOff  []int64 // node -> start of its membership run in invData
	invData []int32 // concatenated set indices, grouped by node
	covered Bitset  // set -> already covered
	degree  []int64 // node -> number of sets containing it
	// sets is the forward arena the problem was inverted from, retained
	// (immutably — the caller must not mutate it while the problem lives)
	// to drive the degradation-scan greedy. nil in streaming mode, where
	// the lazy heap runs off the inversion alone.
	sets *SetStore
}

// NewCoverageProblem inverts the store's sets (each a list of node ids over
// a universe of n nodes) into the per-node index used by greedy max-cover,
// with two counting-sort passes over the arena. Duplicate node entries
// within one set are ignored: a membership counted twice would inflate the
// initial gains and break the greedy invariant (cached gains must
// upper-bound true gains). The problem retains store as its forward arena;
// the caller must not append to it while the problem is in use.
func NewCoverageProblem(n int32, sets *SetStore) *CoverageProblem {
	numSets := sets.Len()
	cp := &CoverageProblem{
		numSets: numSets,
		invOff:  make([]int64, n+1),
		covered: NewBitset(numSets),
		degree:  make([]int64, n),
		sets:    sets,
	}
	// mark[v] records the last set that counted v, so a duplicate entry of
	// v within one set is skipped; the +numSets offset distinguishes the
	// counting pass from the fill pass without re-clearing the array.
	mark := make([]int64, n)
	for i := range mark {
		mark[i] = -1
	}
	for si := 0; si < numSets; si++ {
		for _, v := range sets.Set(si) {
			if mark[v] == int64(si) {
				continue
			}
			mark[v] = int64(si)
			cp.degree[v]++
		}
	}
	for v := int32(0); v < n; v++ {
		cp.invOff[v+1] = cp.invOff[v] + cp.degree[v]
	}
	cp.invData = make([]int32, cp.invOff[n])
	cur := make([]int64, n)
	copy(cur, cp.invOff[:n])
	for si := 0; si < numSets; si++ {
		for _, v := range sets.Set(si) {
			if mark[v] == int64(si)+int64(numSets) {
				continue
			}
			mark[v] = int64(si) + int64(numSets)
			cp.invData[cur[v]] = int32(si)
			cur[v]++
		}
	}
	return cp
}

// memberships returns the indices of the sets containing node v.
func (cp *CoverageProblem) memberships(v int32) []int32 {
	return cp.invData[cp.invOff[v]:cp.invOff[v+1]]
}

// MaxCoverResult reports the greedy max-cover outcome.
type MaxCoverResult struct {
	Seeds      []int32
	NumCovered int64   // sets covered by Seeds
	Fraction   float64 // NumCovered / numSets
	// PerSeedCovered[i] = marginal sets covered by Seeds[i].
	PerSeedCovered []int64
}

// GreedyMaxCover picks k nodes maximizing coverage with lazy evaluation.
func (cp *CoverageProblem) GreedyMaxCover(k int) MaxCoverResult {
	res, _ := cp.GreedyMaxCoverPoll(k, nil)
	return res
}

// Clone returns a coverage problem sharing the (immutable) set inversion
// and forward arena with cp but carrying fresh covered marks, so several
// greedy covers can run concurrently over one index. The greedy never
// mutates the inversion, arena or degree, only covered; cloning is
// therefore O(#sets / 64).
func (cp *CoverageProblem) Clone() *CoverageProblem {
	return &CoverageProblem{
		numSets: cp.numSets,
		invOff:  cp.invOff,
		invData: cp.invData,
		covered: NewBitset(cp.numSets),
		degree:  cp.degree,
		sets:    cp.sets,
	}
}

// GreedyMaxCoverPoll is GreedyMaxCover with a cooperative cancellation
// hook: poll (when non-nil) is invoked once per selection round plus every
// pollStride covered-set degradations (materialized path) or lazy
// re-evaluations (streaming path), and a non-nil return aborts the greedy
// with that error. Online serving uses it to honor per-request deadlines.
// res.Seeds is freshly allocated on every call and shares no memory with
// the problem's internal state.
func (cp *CoverageProblem) GreedyMaxCoverPoll(k int, poll func() error) (MaxCoverResult, error) {
	if cp.sets != nil {
		return cp.greedyScan(k, poll)
	}
	return cp.greedyLazy(k, poll)
}

// greedyScan is the materialized-path greedy: flat uint32 gains degraded in
// arena offset order. See the package comment for the layout argument; the
// selection rule (max gain, min node id) matches greedyLazy exactly.
func (cp *CoverageProblem) greedyScan(k int, poll func() error) (MaxCoverResult, error) {
	res := MaxCoverResult{}
	n := len(cp.degree)
	gain := make([]uint32, n) // degree ≤ numSets < 2^31: always fits
	live := 0                 // unpicked nodes with degree > 0
	for v, d := range cp.degree {
		gain[v] = uint32(d)
		if d > 0 {
			live++
		}
	}
	picked := NewBitset(n)
	// mark[v] = set currently degrading v: duplicate elements within one
	// stored set decrement v's gain once, mirroring the inversion's dedup.
	// Each set is degraded at most once (covered flips once), so markers
	// never need clearing.
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	covered := int64(0)
	degrades := 0
	for round := 0; round < k && live > 0; round++ {
		if poll != nil {
			if err := poll(); err != nil {
				return res, err
			}
		}
		// Branch-light linear argmax: strict > keeps the lowest node id on
		// gain ties, the shared selection rule.
		best, bestGain := -1, uint32(0)
		for v := 0; v < n; v++ {
			if gain[v] > bestGain && !picked.Test(v) && cp.degree[v] > 0 {
				best, bestGain = v, gain[v]
			}
		}
		if best < 0 {
			// All remaining gains are zero: fill with the lowest-id live
			// node, as the lazy path's stale-heap drain does.
			for v := 0; v < n; v++ {
				if !picked.Test(v) && cp.degree[v] > 0 {
					best = v
					break
				}
			}
		}
		picked.Set(best)
		live--
		res.Seeds = append(res.Seeds, int32(best))
		res.PerSeedCovered = append(res.PerSeedCovered, int64(bestGain))
		if bestGain == 0 {
			continue
		}
		for _, si := range cp.memberships(int32(best)) {
			if cp.covered.Test(int(si)) {
				continue
			}
			cp.covered.Set(int(si))
			covered++
			degrades++
			if poll != nil && degrades%pollStride == 0 {
				if err := poll(); err != nil {
					return res, err
				}
			}
			for _, v := range cp.sets.Set(int(si)) {
				if mark[v] == si {
					continue
				}
				mark[v] = si
				gain[v]--
			}
		}
	}
	return cp.finishCover(res, covered, k)
}

// greedyLazy is the streaming-path greedy: a lazy (CELF) heap over cached
// gains, needing only the inversion. The comparator's node tie-break makes
// a fresh heap top the unique argmax under the shared selection rule, so
// seeds match greedyScan element for element.
func (cp *CoverageProblem) greedyLazy(k int, poll func() error) (MaxCoverResult, error) {
	res := MaxCoverResult{}
	h := make(coverHeap, 0, len(cp.degree))
	for v, d := range cp.degree {
		if d > 0 {
			h = append(h, coverItem{node: int32(v), gain: d, round: 0})
		}
	}
	heap.Init(&h)
	covered := int64(0)
	reevals := 0
	for round := 0; round < k && len(h) > 0; round++ {
		if poll != nil {
			if err := poll(); err != nil {
				return res, err
			}
		}
		var pick coverItem
		for {
			top := h[0]
			if int(top.round) == round {
				pick = top
				heap.Pop(&h)
				break
			}
			// Recompute the stale gain lazily.
			reevals++
			if poll != nil && reevals%pollStride == 0 {
				if err := poll(); err != nil {
					return res, err
				}
			}
			gain := int64(0)
			for _, si := range cp.memberships(top.node) {
				if !cp.covered.Test(int(si)) {
					gain++
				}
			}
			h[0].gain = gain
			h[0].round = int32(round)
			heap.Fix(&h, 0)
		}
		if pick.gain <= 0 {
			// Everything coverable is covered; fill remaining seeds with the
			// best leftover nodes so callers still receive k seeds.
			res.Seeds = append(res.Seeds, pick.node)
			res.PerSeedCovered = append(res.PerSeedCovered, 0)
			continue
		}
		for _, si := range cp.memberships(pick.node) {
			if !cp.covered.Test(int(si)) {
				cp.covered.Set(int(si))
				covered++
			}
		}
		res.Seeds = append(res.Seeds, pick.node)
		res.PerSeedCovered = append(res.PerSeedCovered, pick.gain)
	}
	return cp.finishCover(res, covered, k)
}

// finishCover pads the seed list to k with unused nodes (ascending, so both
// greedy paths pad identically when fewer than k nodes appear in any set)
// and fills the summary fields.
func (cp *CoverageProblem) finishCover(res MaxCoverResult, covered int64, k int) (MaxCoverResult, error) {
	if len(res.Seeds) < k {
		chosen := make(map[int32]struct{}, len(res.Seeds))
		for _, s := range res.Seeds {
			chosen[s] = struct{}{}
		}
		for v := int32(0); len(res.Seeds) < k && int(v) < len(cp.degree); v++ {
			if _, dup := chosen[v]; dup {
				continue
			}
			res.Seeds = append(res.Seeds, v)
			res.PerSeedCovered = append(res.PerSeedCovered, 0)
		}
	}
	res.NumCovered = covered
	if cp.numSets > 0 {
		res.Fraction = float64(covered) / float64(cp.numSets)
	}
	return res, nil
}

// pollStride bounds how many degradations or lazy re-evaluations may run
// between two poll calls; each touches one set's element list, so this
// keeps the deadline-check latency in the tens of microseconds on real
// indexes.
const pollStride = 256

// CoverageOf returns the number of sets covered by the given seed set,
// without mutating the problem.
func (cp *CoverageProblem) CoverageOf(seeds []int32) int64 {
	seen := make(map[int32]struct{})
	for _, v := range seeds {
		if v < 0 || int64(v) >= int64(len(cp.degree)) {
			continue
		}
		for _, si := range cp.memberships(v) {
			seen[si] = struct{}{}
		}
	}
	return int64(len(seen))
}

// NumSets returns the universe size.
func (cp *CoverageProblem) NumSets() int { return cp.numSets }

// MemoryBytes returns the problem's resident footprint (capacity-based,
// like SetStore.Bytes): the inversion arrays plus the cover marks. The
// forward arena is not counted — its owner (the collection or index that
// built the problem) already accounts it. Streaming collections charge
// this through Context.Account while a greedy runs.
func (cp *CoverageProblem) MemoryBytes() int64 {
	return int64(cap(cp.invOff))*8 + int64(cap(cp.invData))*4 +
		cp.covered.Bytes() + int64(cap(cp.degree))*8
}

type coverItem struct {
	node  int32
	gain  int64
	round int32 // round at which gain was last computed
}

type coverHeap []coverItem

func (h coverHeap) Len() int { return len(h) }
func (h coverHeap) Less(i, j int) bool {
	// Total order: gain descending, node id ascending on ties. The unique
	// argmax is what keeps the lazy and scan paths seed-identical.
	return h[i].gain > h[j].gain || (h[i].gain == h[j].gain && h[i].node < h[j].node)
}
func (h coverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coverHeap) Push(x interface{}) { *h = append(*h, x.(coverItem)) }
func (h *coverHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
