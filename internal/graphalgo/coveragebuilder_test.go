package graphalgo

import (
	"math/rand"
	"testing"
)

// randomSets builds a reproducible batch of sets with duplicates included
// (the builder must dedup exactly like NewCoverageProblem).
func randomSets(r *rand.Rand, n int32, count, maxLen int) *SetStore {
	s := NewSetStore()
	buf := make([]int32, 0, maxLen)
	for i := 0; i < count; i++ {
		buf = buf[:0]
		l := 1 + r.Intn(maxLen)
		for j := 0; j < l; j++ {
			buf = append(buf, int32(r.Intn(int(n))))
		}
		s.Append(buf)
	}
	return s
}

// assertProblemsEqual checks the full observable surface of two coverage
// problems: greedy selections and per-seed coverage must coincide.
func assertProblemsEqual(t *testing.T, n int32, want, got *CoverageProblem) {
	t.Helper()
	if want.NumSets() != got.NumSets() {
		t.Fatalf("numSets %d vs %d", want.NumSets(), got.NumSets())
	}
	for v := int32(0); v < n; v++ {
		wm, gm := want.memberships(v), got.memberships(v)
		if len(wm) != len(gm) {
			t.Fatalf("membership length mismatch at node %d: %d vs %d", v, len(wm), len(gm))
		}
		for i := range wm {
			if wm[i] != gm[i] {
				t.Fatalf("membership %d of node %d: %d vs %d", i, v, wm[i], gm[i])
			}
		}
	}
	a := want.Clone().GreedyMaxCover(5)
	b := got.Clone().GreedyMaxCover(5)
	if len(a.Seeds) != len(b.Seeds) || a.NumCovered != b.NumCovered {
		t.Fatalf("greedy mismatch: %v/%d vs %v/%d", a.Seeds, a.NumCovered, b.Seeds, b.NumCovered)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d: %d vs %d", i, a.Seeds[i], b.Seeds[i])
		}
	}
}

func TestCoverageBuilderMatchesInMemory(t *testing.T) {
	const n = int32(50)
	r := rand.New(rand.NewSource(9))
	b := NewCoverageBuilder(n, t.TempDir())
	defer func() {
		if err := b.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	all := NewSetStore()

	// Interleave Adds and Builds: IMM builds a cover every round while the
	// collection keeps growing, so mid-stream Builds must be correct too.
	for round := 0; round < 4; round++ {
		batch := randomSets(r, n, 30, 12)
		if err := b.Add(batch); err != nil {
			t.Fatalf("Add: %v", err)
		}
		for i := 0; i < batch.Len(); i++ {
			all.Append(batch.Set(i))
		}
		cp, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		assertProblemsEqual(t, n, NewCoverageProblem(n, all), cp)
	}

	// Reset and refill: TIM+ discards its KPT-phase sets.
	if err := b.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	all.Reset()
	batch := randomSets(r, n, 40, 8)
	if err := b.Add(batch); err != nil {
		t.Fatalf("Add after Reset: %v", err)
	}
	for i := 0; i < batch.Len(); i++ {
		all.Append(batch.Set(i))
	}
	cp, err := b.Build()
	if err != nil {
		t.Fatalf("Build after Reset: %v", err)
	}
	assertProblemsEqual(t, n, NewCoverageProblem(n, all), cp)
}

func TestCoverageBuilderRejectsOutOfRange(t *testing.T) {
	b := NewCoverageBuilder(4, t.TempDir())
	defer b.Close()
	if err := b.Add(StoreOf([]int32{0, 7})); err == nil {
		t.Fatal("out-of-range element accepted")
	}
}

func TestCoverageBuilderEmptyBuild(t *testing.T) {
	b := NewCoverageBuilder(8, t.TempDir())
	defer b.Close()
	cp, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cp.NumSets() != 0 {
		t.Fatalf("numSets %d", cp.NumSets())
	}
	res := cp.GreedyMaxCover(2)
	if len(res.Seeds) != 2 || res.NumCovered != 0 {
		t.Fatalf("greedy on empty: %v %d", res.Seeds, res.NumCovered)
	}
}
