package graphalgo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Incremental coverage construction
//
// NewCoverageProblem needs every RR set resident to run its two counting-
// sort passes — exactly the materialization the streaming sampler exists to
// avoid. CoverageBuilder splits the construction to match the stream: each
// delivered batch runs the counting pass immediately (per-node distinct-set
// degrees, deduplicated with the same mark discipline) and is then appended
// to an on-disk spill file; Build replays the spill once to fill the
// inversion. The resulting CoverageProblem is field-for-field identical to
// NewCoverageProblem over the concatenated batches, so greedy max-cover —
// and therefore seeds and extrapolated spreads — cannot tell the two
// construction paths apart.
//
// Resident memory is O(n) (degree + mark arrays) while sets accumulate; the
// sets themselves live in the spill file until a Build call pays for the
// inversion. A builder is single-goroutine, like the SetStore it consumes.

// CoverageBuilder accumulates streamed RR-set batches into the state needed
// to build CoverageProblems on demand.
type CoverageBuilder struct {
	n       int32
	numSets int
	degree  []int64 // node -> distinct sets containing it, so far
	mark    []int64 // dedup marker; monotonically allocated epochs
	nextMk  int64   // next unallocated marker epoch

	spillDir   string
	spill      *os.File
	bw         *bufio.Writer
	spillBytes int64
	buf        []byte
}

// NewCoverageBuilder returns an empty builder over an n-node universe.
// Batches spill to a temp file under spillDir ("" = the system temp dir);
// the file is created lazily on first Add, so construction cannot fail.
func NewCoverageBuilder(n int32, spillDir string) *CoverageBuilder {
	mark := make([]int64, n)
	for i := range mark {
		mark[i] = -1
	}
	return &CoverageBuilder{
		n:        n,
		degree:   make([]int64, n),
		mark:     mark,
		spillDir: spillDir,
	}
}

// NumSets returns the number of sets added so far.
func (b *CoverageBuilder) NumSets() int { return b.numSets }

// SpillBytes returns the bytes written to the spill file — disk, not RAM;
// callers report it separately from accounted memory.
func (b *CoverageBuilder) SpillBytes() int64 { return b.spillBytes }

// MemoryBytes returns the builder's resident footprint: the two per-node
// arrays plus the write buffer. This is what belongs in Context.Account.
func (b *CoverageBuilder) MemoryBytes() int64 {
	return int64(cap(b.degree))*8 + int64(cap(b.mark))*8 + int64(cap(b.buf))
}

// markEpoch allocates count fresh marker values. Every counting and fill
// pass marks nodes with base+setIndex from its own allocation, so no two
// passes can ever collide without clearing the O(n) mark array between them.
func (b *CoverageBuilder) markEpoch(count int) int64 {
	base := b.nextMk
	b.nextMk += int64(count)
	return base
}

// Add folds one batch of sets into the builder: counting pass now, elements
// to the spill file for Build's fill pass. Views into the batch are not
// retained; the caller may reset it as soon as Add returns.
func (b *CoverageBuilder) Add(batch *SetStore) error {
	if batch.Len() == 0 {
		return nil
	}
	if b.spill == nil {
		f, err := os.CreateTemp(b.spillDir, "rrspill-*.bin")
		if err != nil {
			return fmt.Errorf("graphalgo: coverage spill: %w", err)
		}
		b.spill = f
		b.bw = bufio.NewWriterSize(f, 1<<20)
	}
	base := b.markEpoch(batch.Len())
	for j := 0; j < batch.Len(); j++ {
		set := batch.Set(j)
		marker := base + int64(j)
		for _, v := range set {
			if v < 0 || v >= b.n {
				return fmt.Errorf("graphalgo: set element %d out of range [0, %d)", v, b.n)
			}
			if b.mark[v] == marker {
				continue
			}
			b.mark[v] = marker
			b.degree[v]++
		}
		if err := b.writeSet(set); err != nil {
			return err
		}
	}
	b.numSets += batch.Len()
	return nil
}

// writeSet appends one length-prefixed set record to the spill file.
func (b *CoverageBuilder) writeSet(set []int32) error {
	need := 4 + 4*len(set)
	if cap(b.buf) < need {
		b.buf = make([]byte, 0, need+1024)
	}
	buf := b.buf[:need]
	binary.LittleEndian.PutUint32(buf, uint32(len(set)))
	for i, v := range set {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(v))
	}
	if _, err := b.bw.Write(buf); err != nil {
		return fmt.Errorf("graphalgo: coverage spill: %w", err)
	}
	b.spillBytes += int64(need)
	return nil
}

// Build replays the spill file and returns a CoverageProblem over every set
// added so far — identical to NewCoverageProblem over the same sets in the
// same order. The builder remains usable: more batches may be added and
// Build called again (IMM grows its collection across rounds). The returned
// problem shares no mutable state with the builder.
func (b *CoverageBuilder) Build() (*CoverageProblem, error) {
	// No forward arena is attached (the sets live only in the spill file),
	// so greedy max-cover takes the lazy-heap path; its selection rule
	// matches the materialized scan, keeping seeds identical across modes.
	cp := &CoverageProblem{
		numSets: b.numSets,
		invOff:  make([]int64, b.n+1),
		covered: NewBitset(b.numSets),
		degree:  make([]int64, b.n),
	}
	copy(cp.degree, b.degree)
	for v := int32(0); v < b.n; v++ {
		cp.invOff[v+1] = cp.invOff[v] + cp.degree[v]
	}
	cp.invData = make([]int32, cp.invOff[b.n])
	if b.numSets == 0 {
		return cp, nil
	}
	if err := b.bw.Flush(); err != nil {
		return nil, fmt.Errorf("graphalgo: coverage spill: %w", err)
	}
	cur := make([]int64, b.n)
	copy(cur, cp.invOff[:b.n])
	base := b.markEpoch(b.numSets)
	r := bufio.NewReaderSize(io.NewSectionReader(b.spill, 0, b.spillBytes), 1<<20)
	var hdr [4]byte
	elems := make([]byte, 0, 4096)
	for si := 0; si < b.numSets; si++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("graphalgo: coverage spill replay: %w", err)
		}
		sz := int(binary.LittleEndian.Uint32(hdr[:]))
		if cap(elems) < 4*sz {
			elems = make([]byte, 0, 4*sz+4096)
		}
		elems = elems[:4*sz]
		if _, err := io.ReadFull(r, elems); err != nil {
			return nil, fmt.Errorf("graphalgo: coverage spill replay: %w", err)
		}
		marker := base + int64(si)
		for i := 0; i < sz; i++ {
			v := int32(binary.LittleEndian.Uint32(elems[4*i:]))
			if b.mark[v] == marker {
				continue
			}
			b.mark[v] = marker
			cp.invData[cur[v]] = int32(si)
			cur[v]++
		}
	}
	return cp, nil
}

// Reset discards all accumulated sets: degrees zero, spill truncated. The
// mark array keeps its epochs (markers are globally unique, so stale values
// can never collide with future passes).
func (b *CoverageBuilder) Reset() error {
	b.numSets = 0
	b.spillBytes = 0
	for i := range b.degree {
		b.degree[i] = 0
	}
	if b.spill != nil {
		b.bw.Reset(b.spill)
		if err := b.spill.Truncate(0); err != nil {
			return fmt.Errorf("graphalgo: coverage spill: %w", err)
		}
		if _, err := b.spill.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("graphalgo: coverage spill: %w", err)
		}
	}
	return nil
}

// Close releases the spill file. The builder must not be used afterwards.
func (b *CoverageBuilder) Close() error {
	if b.spill == nil {
		return nil
	}
	name := b.spill.Name()
	err := b.spill.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	b.spill, b.bw = nil, nil
	return err
}
