package graphalgo

// Bitset is a word-packed membership set over a dense integer universe —
// the frontier/visited representation shared by the cascade kernels and the
// cover scans. One bit per element means 32× fewer scratch bytes than the
// uint32 epoch-mark scheme it replaces, so a cascade's membership tests
// touch 32× fewer cache lines; the trade is that a bitset must be cleared
// explicitly. The kernels clear incrementally by replaying the list of set
// bits they already track (the frontier queue, the covered-set walk), which
// costs O(bits set), not O(universe).
type Bitset struct {
	words []uint64
}

// NewBitset returns a zeroed bitset over the universe [0, n).
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)>>6)}
}

// Test reports whether bit i is set.
func (b Bitset) Test(i int) bool {
	return b.words[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b Bitset) Set(i int) {
	b.words[uint(i)>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (b Bitset) Clear(i int) {
	b.words[uint(i)>>6] &^= 1 << (uint(i) & 63)
}

// TestAndSet sets bit i and reports whether it was already set — the fused
// visited-check of the cascade inner loops.
func (b Bitset) TestAndSet(i int) bool {
	w := uint(i) >> 6
	m := uint64(1) << (uint(i) & 63)
	old := b.words[w]
	b.words[w] = old | m
	return old&m != 0
}

// Len returns the universe size rounded up to the word stride.
func (b Bitset) Len() int { return len(b.words) << 6 }

// Bytes returns the resident footprint (capacity-based, like SetStore.Bytes).
func (b Bitset) Bytes() int64 { return int64(cap(b.words)) * 8 }

// Reset zeroes every word — the O(universe) fallback for callers without an
// incremental clear list.
func (b Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
