package graphalgo

import "testing"

func TestSetStoreAppendIterate(t *testing.T) {
	s := NewSetStore()
	if s.Len() != 0 || s.NumElems() != 0 {
		t.Fatalf("empty store Len=%d NumElems=%d", s.Len(), s.NumElems())
	}
	sets := [][]int32{{1, 2, 3}, {}, {7}, {4, 4}}
	for _, set := range sets {
		s.Append(set)
	}
	if s.Len() != 4 || s.NumElems() != 6 {
		t.Fatalf("Len=%d NumElems=%d want 4/6", s.Len(), s.NumElems())
	}
	for i, want := range sets {
		got := s.Set(i)
		if len(got) != len(want) {
			t.Fatalf("set %d: %v want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("set %d: %v want %v", i, got, want)
			}
		}
	}
}

func TestSetStoreAppendStoreOrder(t *testing.T) {
	// Merging shards in order must equal appending the sets in order.
	want := StoreOf([]int32{1}, []int32{2, 3}, []int32{}, []int32{4})
	a := StoreOf([]int32{1}, []int32{2, 3})
	b := StoreOf([]int32{}, []int32{4})
	m := NewSetStore()
	m.Grow(a.Len()+b.Len(), a.NumElems()+b.NumElems())
	m.AppendStore(a)
	m.AppendStore(b)
	if !m.Equal(want) {
		t.Fatalf("merged store differs from sequential store")
	}
	if m.Equal(a) {
		t.Fatalf("Equal must distinguish different stores")
	}
}

func TestSetStoreAppendRange(t *testing.T) {
	// Reassembling interleaved segment records in global order must equal
	// the sequential store — the work-stealing merge invariant.
	src := StoreOf([]int32{1}, []int32{2, 3}, []int32{}, []int32{4, 5, 6}, []int32{7})
	m := NewSetStore()
	for _, seg := range [][2]int{{0, 2}, {2, 2}, {2, 4}, {4, 5}} {
		m.AppendRange(src, seg[0], seg[1])
	}
	if !m.Equal(src) {
		t.Fatalf("AppendRange reassembly differs from source store")
	}
}

func TestSetStoreResetReleases(t *testing.T) {
	s := StoreOf([]int32{1, 2, 3}, []int32{4})
	if s.Bytes() == 0 {
		t.Fatal("non-empty store reports zero bytes")
	}
	s.Reset()
	if s.Len() != 0 || s.NumElems() != 0 {
		t.Fatalf("after Reset: Len=%d NumElems=%d", s.Len(), s.NumElems())
	}
	// Reset must release the arena, not retain capacity: the bytes figure
	// feeds Context.Account and must reflect actually-freed memory.
	if got := s.Bytes(); got != 16*8 {
		t.Fatalf("after Reset Bytes()=%d want fresh-offsets footprint only", got)
	}
}

func TestSetStoreBytesIsCapacityBased(t *testing.T) {
	s := NewSetStore()
	s.Append([]int32{1, 2, 3, 4, 5, 6, 7, 8})
	if min := s.NumElems()*4 + int64(s.Len()+1)*8; s.Bytes() < min {
		t.Fatalf("Bytes()=%d below minimum resident size %d", s.Bytes(), min)
	}
}

func TestGreedyMaxCoverFlatMatchesSliceBaseline(t *testing.T) {
	// The flat-store problem must behave exactly like the historical
	// [][]int32 layout; duplicate entries anywhere within one set are
	// still deduplicated (non-adjacent duplicates included).
	sets := [][]int32{{0}, {2}, {4, 2, 5}, {0, 1, 0, 4}, {3, 3, 2, 3}}
	cp := NewCoverageProblem(6, StoreOf(sets...))
	if cp.degree[0] != 2 || cp.degree[3] != 1 || cp.degree[2] != 3 {
		t.Fatalf("degrees %v", cp.degree)
	}
	for v := int32(0); v < 6; v++ {
		ms := cp.memberships(v)
		seen := map[int32]bool{}
		for _, si := range ms {
			if seen[si] {
				t.Fatalf("node %d membership %v lists set %d twice", v, ms, si)
			}
			seen[si] = true
		}
	}
	res := cp.GreedyMaxCover(2)
	if res.NumCovered != 5 {
		t.Fatalf("covered %d want 5 (seeds %v)", res.NumCovered, res.Seeds)
	}
}

func TestSetStoreRawRoundTrip(t *testing.T) {
	s := NewSetStore()
	sets := [][]int32{{1, 2, 3}, {}, {7}, {4, 4}}
	for _, set := range sets {
		s.Append(set)
	}
	data, off := s.Raw()
	got, err := SetStoreFromRaw(data, off)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.NumElems() != s.NumElems() {
		t.Fatalf("rehydrated Len=%d NumElems=%d, want %d/%d",
			got.Len(), got.NumElems(), s.Len(), s.NumElems())
	}
	for i := range sets {
		a, b := s.Set(i), got.Set(i)
		if len(a) != len(b) {
			t.Fatalf("set %d: %v want %v", i, b, a)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("set %d: %v want %v", i, b, a)
			}
		}
	}
}

func TestSetStoreFromRawRejectsMalformedOffsets(t *testing.T) {
	cases := []struct {
		name string
		data []int32
		off  []int64
	}{
		{"empty offsets", []int32{}, []int64{}},
		{"nonzero first", []int32{1}, []int64{1, 1}},
		{"decreasing", []int32{1, 2}, []int64{0, 2, 1}},
		{"last short of data", []int32{1, 2}, []int64{0, 1}},
		{"last past data", []int32{1}, []int64{0, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := SetStoreFromRaw(tc.data, tc.off); err == nil {
				t.Fatalf("SetStoreFromRaw(%v, %v) accepted malformed input", tc.data, tc.off)
			}
		})
	}
}
