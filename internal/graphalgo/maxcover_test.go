package graphalgo

import (
	"errors"
	"testing"

	"github.com/sigdata/goinfmax/internal/rng"
)

// randomStore draws numSets random sets (including empty ones and duplicate
// members, the awkward cases) over an n-node universe.
func randomStore(r *rng.Source, n int32, numSets, maxLen int) *SetStore {
	store := NewSetStore()
	buf := make([]int32, 0, maxLen)
	for i := 0; i < numSets; i++ {
		sz := int(r.Int31n(int32(maxLen + 1)))
		buf = buf[:0]
		for j := 0; j < sz; j++ {
			buf = append(buf, r.Int31n(n))
		}
		store.Append(buf)
	}
	return store
}

// TestGreedyScanMatchesLazy is the dual-path equivalence property: the
// materialized degradation scan and the streaming lazy heap must pick
// identical seeds with identical marginal gains on random instances —
// otherwise `-arenabytes` runs would return different seeds than
// materialized runs over the same samples.
func TestGreedyScanMatchesLazy(t *testing.T) {
	r := rng.New(0xC0FFEE)
	for trial := 0; trial < 50; trial++ {
		n := int32(3 + r.Int31n(40))
		numSets := int(r.Int31n(120))
		store := randomStore(r, n, numSets, 8)
		k := 1 + int(r.Int31n(n))

		scan := NewCoverageProblem(n, store)
		if scan.sets == nil {
			t.Fatal("NewCoverageProblem did not attach the forward arena")
		}
		lazy := scan.Clone()
		lazy.sets = nil // force the streaming path on identical state

		a, err := scan.GreedyMaxCoverPoll(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lazy.GreedyMaxCoverPoll(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Seeds) != len(b.Seeds) || len(a.Seeds) != k {
			t.Fatalf("trial %d: seed counts scan=%d lazy=%d want %d", trial, len(a.Seeds), len(b.Seeds), k)
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] || a.PerSeedCovered[i] != b.PerSeedCovered[i] {
				t.Fatalf("trial %d (n=%d sets=%d k=%d): diverge at %d: scan (%d,%d) lazy (%d,%d)\nscan %v\nlazy %v",
					trial, n, numSets, k, i,
					a.Seeds[i], a.PerSeedCovered[i], b.Seeds[i], b.PerSeedCovered[i], a.Seeds, b.Seeds)
			}
		}
		if a.NumCovered != b.NumCovered || a.Fraction != b.Fraction {
			t.Fatalf("trial %d: coverage diverges: scan %d/%v lazy %d/%v",
				trial, a.NumCovered, a.Fraction, b.NumCovered, b.Fraction)
		}
	}
}

// TestGreedyScanPollAborts checks the scan path honors the cancellation
// hook both at round granularity and inside the degradation loop.
func TestGreedyScanPollAborts(t *testing.T) {
	r := rng.New(7)
	store := randomStore(r, 200, 4000, 12)
	cp := NewCoverageProblem(200, store)
	wantErr := errors.New("deadline")
	calls := 0
	_, err := cp.GreedyMaxCoverPoll(50, func() error {
		calls++
		if calls >= 3 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want poll error", err)
	}
}

// TestGreedyTieBreakIsLowestNode pins the shared selection rule directly:
// equal gains resolve to the lowest node id on both paths.
func TestGreedyTieBreakIsLowestNode(t *testing.T) {
	// Nodes 5 and 2 each cover two disjoint sets; node 2 must win round one.
	store := StoreOf([]int32{5}, []int32{5}, []int32{2}, []int32{2})
	for _, streaming := range []bool{false, true} {
		cp := NewCoverageProblem(8, store)
		if streaming {
			cp.sets = nil
		}
		res := cp.GreedyMaxCover(2)
		if res.Seeds[0] != 2 || res.Seeds[1] != 5 {
			t.Fatalf("streaming=%v: seeds %v, want [2 5]", streaming, res.Seeds)
		}
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		if b.TestAndSet(i) {
			t.Fatalf("TestAndSet(%d) reported already set", i)
		}
		if !b.Test(i) || !b.TestAndSet(i) {
			t.Fatalf("bit %d did not stick", i)
		}
	}
	b.Clear(64)
	if b.Test(64) || !b.Test(63) || !b.Test(65) {
		t.Fatal("Clear(64) touched neighbors or missed")
	}
	b.Reset()
	for i := 0; i < 130; i++ {
		if b.Test(i) {
			t.Fatalf("Reset left bit %d set", i)
		}
	}
	if b.Len() < 130 || b.Bytes() != 24 {
		t.Fatalf("Len=%d Bytes=%d, want ≥130 and 24", b.Len(), b.Bytes())
	}
}
