package graphalgo

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
)

// adj is a tiny adjacency-list Forward implementation for tests.
type adj [][]int32

func (a adj) N() int32 { return int32(len(a)) }
func (a adj) VisitOut(u int32, fn func(v int32)) {
	for _, v := range a[u] {
		fn(v)
	}
}

func TestSCCSimpleCycle(t *testing.T) {
	g := adj{{1}, {2}, {0}, {0}} // 0↔1↔2 cycle, 3→0
	comp, n := SCC(g)
	if n != 2 {
		t.Fatalf("ncomp=%d want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle split: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Fatalf("3 merged into cycle: %v", comp)
	}
}

func TestSCCDag(t *testing.T) {
	g := adj{{1, 2}, {3}, {3}, {}}
	comp, n := SCC(g)
	if n != 4 {
		t.Fatalf("DAG must have singleton comps, got %d", n)
	}
	// Tarjan property: arcs go from higher comp id to lower.
	for u := int32(0); u < g.N(); u++ {
		g.VisitOut(u, func(v int32) {
			if comp[u] <= comp[v] {
				t.Fatalf("arc %d→%d violates reverse-topo comp ids (%d ≤ %d)",
					u, v, comp[u], comp[v])
			}
		})
	}
}

func TestSCCSelfContained(t *testing.T) {
	// Two separate cycles joined by one arc.
	g := adj{{1}, {0}, {3, 0}, {2}}
	comp, n := SCC(g)
	if n != 2 {
		t.Fatalf("ncomp=%d want 2 (%v)", n, comp)
	}
}

// bruteReach computes reachability sets by DFS for the property test.
func bruteReach(g adj, src int32) map[int32]bool {
	seen := map[int32]bool{src: true}
	stack := []int32{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// TestSCCAgainstBruteForce: u,v share a component iff mutually reachable.
func TestSCCAgainstBruteForce(t *testing.T) {
	check := func(seed uint64, rawN uint8, rawM uint8) bool {
		n := int32(rawN%12) + 2
		m := int(rawM % 40)
		r := rng.New(seed)
		g := make(adj, n)
		for i := 0; i < m; i++ {
			u, v := r.Int31n(n), r.Int31n(n)
			if u != v {
				g[u] = append(g[u], v)
			}
		}
		comp, _ := SCC(g)
		for u := int32(0); u < n; u++ {
			ru := bruteReach(g, u)
			for v := int32(0); v < n; v++ {
				rv := bruteReach(g, v)
				mutual := ru[v] && rv[u]
				if mutual != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCondense(t *testing.T) {
	g := adj{{1}, {0, 2}, {3}, {2}} // comps {0,1} and {2,3}, arc between
	comp, n := SCC(g)
	c := Condense(g, comp, n)
	if c.NComp != 2 {
		t.Fatalf("ncomp %d", c.NComp)
	}
	if c.Size[comp[0]] != 2 || c.Size[comp[2]] != 2 {
		t.Fatalf("sizes %v", c.Size)
	}
	// Exactly one (deduplicated) DAG arc comp(0)→comp(2).
	if len(c.To) != 1 || c.To[0] != comp[2] || c.OutNeighbors(comp[0])[0] != comp[2] {
		t.Fatalf("DAG arcs: %v / off %v", c.To, c.Off)
	}
	order := c.TopoOrder()
	if len(order) != 2 || order[0] != comp[0] {
		t.Fatalf("topo order %v (comp(0)=%d must come first)", order, comp[0])
	}
}

func TestBFSReach(t *testing.T) {
	g := adj{{1, 2}, {3}, {3}, {}, {}} // node 4 isolated
	mark := make([]uint32, g.N())
	cnt, _ := BFSReach(g, 0, nil, mark, 1, nil)
	if cnt != 4 {
		t.Fatalf("reach=%d want 4", cnt)
	}
	cnt, _ = BFSReach(g, 4, nil, mark, 2, nil)
	if cnt != 1 {
		t.Fatalf("isolated reach=%d want 1", cnt)
	}
	// Blocking node 1 cuts one path but 3 is still reachable via 2.
	cnt, _ = BFSReach(g, 0, func(v int32) bool { return v == 1 }, mark, 3, nil)
	if cnt != 3 {
		t.Fatalf("blocked reach=%d want 3", cnt)
	}
	// Blocked source yields 0.
	cnt, _ = BFSReach(g, 0, func(v int32) bool { return v == 0 }, mark, 4, nil)
	if cnt != 0 {
		t.Fatalf("blocked-source reach=%d want 0", cnt)
	}
}

func TestMaxProbDijkstra(t *testing.T) {
	// Arcs INTO target 3: 0→3 (0.5), 0→1 (0.9), 1→3 (0.4), 2→0 (0.5).
	b := graph.NewBuilder(4, true)
	_ = b.AddEdge(0, 3, 0.5)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 3, 0.4)
	_ = b.AddEdge(2, 0, 0.5)
	g := b.Build()
	d := NewMaxProbDijkstra(g)
	got := map[graph.NodeID]float64{}
	var order []graph.NodeID
	d.Run(3, 0.2, func(u graph.NodeID, p float64) {
		got[u] = p
		order = append(order, u)
	})
	want := map[graph.NodeID]float64{3: 1, 0: 0.5, 1: 0.4, 2: 0.25}
	if len(got) != len(want) {
		t.Fatalf("visited %v want %v", got, want)
	}
	for u, p := range want {
		if math.Abs(got[u]-p) > 1e-12 {
			t.Fatalf("node %d prob %v want %v", u, got[u], p)
		}
	}
	// Non-increasing probability order.
	for i := 1; i < len(order); i++ {
		if got[order[i]] > got[order[i-1]]+1e-12 {
			t.Fatalf("order not non-increasing: %v", order)
		}
	}
	// Threshold excludes low-probability nodes.
	got2 := map[graph.NodeID]float64{}
	d.Run(3, 0.45, func(u graph.NodeID, p float64) { got2[u] = p })
	if len(got2) != 2 { // 3 and 0 only
		t.Fatalf("theta=0.45 visited %v", got2)
	}
}

func TestMaxProbDijkstraNextHop(t *testing.T) {
	// Arcs into target 3: 0→3 (0.5), 0→1 (0.9), 1→3 (0.4), 2→0 (0.5).
	// Best paths: 0 goes directly to 3; 1 goes directly to 3; 2 goes via 0.
	b := graph.NewBuilder(4, true)
	_ = b.AddEdge(0, 3, 0.5)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 3, 0.4)
	_ = b.AddEdge(2, 0, 0.5)
	g := b.Build()
	d := NewMaxProbDijkstra(g)
	next := map[graph.NodeID]graph.NodeID{}
	d.RunWithNextHop(3, 0.1, func(u graph.NodeID, p float64, nh graph.NodeID) {
		next[u] = nh
	})
	want := map[graph.NodeID]graph.NodeID{3: 3, 0: 3, 1: 3, 2: 0}
	for u, nh := range want {
		if next[u] != nh {
			t.Fatalf("next[%d] = %d want %d (all: %v)", u, next[u], nh, next)
		}
	}
}

func TestMaxProbDijkstraReusable(t *testing.T) {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()
	d := NewMaxProbDijkstra(g)
	for i := 0; i < 5; i++ {
		cnt := 0
		d.Run(2, 0.2, func(graph.NodeID, float64) { cnt++ })
		if cnt != 3 {
			t.Fatalf("iteration %d visited %d want 3", i, cnt)
		}
	}
}

func TestGreedyMaxCoverExact(t *testing.T) {
	// Universe of 4 sets; node 0 covers {0,1}, node 1 covers {2}, node 2
	// covers {1,2,3}. Greedy: pick 2 (3 sets), then 0 (covers set 0).
	sets := [][]int32{{0}, {0, 2}, {1, 2}, {2}}
	cp := NewCoverageProblem(3, StoreOf(sets...))
	res := cp.GreedyMaxCover(2)
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	if res.Seeds[0] != 2 {
		t.Fatalf("first pick %d want 2 (covers 3 sets)", res.Seeds[0])
	}
	if res.NumCovered != 4 || res.Fraction != 1 {
		t.Fatalf("covered %d frac %v", res.NumCovered, res.Fraction)
	}
	if res.PerSeedCovered[0] != 3 || res.PerSeedCovered[1] != 1 {
		t.Fatalf("per-seed %v", res.PerSeedCovered)
	}
}

func TestCoverageOf(t *testing.T) {
	sets := [][]int32{{0, 1}, {1}, {2}}
	cp := NewCoverageProblem(3, StoreOf(sets...))
	if c := cp.CoverageOf([]int32{1}); c != 2 {
		t.Fatalf("coverage %d want 2", c)
	}
	if c := cp.CoverageOf([]int32{0, 2}); c != 2 {
		t.Fatalf("coverage %d want 2", c)
	}
	if cp.NumSets() != 3 {
		t.Fatal("NumSets")
	}
}

// bruteBestCover finds the optimal k-cover by exhaustive search.
func bruteBestCover(n int32, sets [][]int32, k int) int64 {
	var nodes []int32
	for v := int32(0); v < n; v++ {
		nodes = append(nodes, v)
	}
	best := int64(0)
	var rec func(start int, chosen []int32)
	rec = func(start int, chosen []int32) {
		if len(chosen) == k {
			cp := NewCoverageProblem(n, StoreOf(sets...))
			if c := cp.CoverageOf(chosen); c > best {
				best = c
			}
			return
		}
		for i := start; i < len(nodes); i++ {
			rec(i+1, append(chosen, nodes[i]))
		}
	}
	rec(0, nil)
	return best
}

// TestGreedyMaxCoverApproxProperty: greedy ≥ (1−1/e)·OPT.
func TestGreedyMaxCoverApproxProperty(t *testing.T) {
	check := func(seed uint64, rawSets uint8) bool {
		r := rng.New(seed)
		n := int32(6)
		numSets := int(rawSets%12) + 1
		sets := make([][]int32, numSets)
		for i := range sets {
			sz := r.Intn(4) + 1
			for j := 0; j < sz; j++ {
				sets[i] = append(sets[i], r.Int31n(n))
			}
		}
		k := 2
		cp := NewCoverageProblem(n, StoreOf(sets...))
		res := cp.GreedyMaxCover(k)
		opt := bruteBestCover(n, sets, k)
		return float64(res.NumCovered) >= (1-1/math.E)*float64(opt)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyMaxCoverDuplicateMembers is the regression for a bug where a
// node listed twice in one set received an inflated initial gain and was
// greedily selected without lazy re-evaluation, breaking the (1−1/e)
// guarantee (found by the property test above).
func TestGreedyMaxCoverDuplicateMembers(t *testing.T) {
	sets := [][]int32{{0}, {2}, {4, 2, 5}, {0, 1, 0, 4}, {3, 3, 2, 3}}
	cp := NewCoverageProblem(6, StoreOf(sets...))
	if cp.degree[0] != 2 {
		t.Fatalf("degree[0]=%d want 2 (set 3 counted once)", cp.degree[0])
	}
	if cp.degree[3] != 1 {
		t.Fatalf("degree[3]=%d want 1", cp.degree[3])
	}
	res := cp.GreedyMaxCover(2)
	// Optimal: {2, 0} covers all 5 sets; greedy must reach ≥ (1−1/e)·5,
	// and with correct degrees it actually attains 5.
	if res.NumCovered != 5 {
		t.Fatalf("covered %d want 5 (seeds %v)", res.NumCovered, res.Seeds)
	}
}

func TestGreedyMaxCoverFillsK(t *testing.T) {
	// Only one node appears in sets; k=3 must still return 3 seeds.
	sets := [][]int32{{0}, {0}}
	cp := NewCoverageProblem(5, StoreOf(sets...))
	res := cp.GreedyMaxCover(3)
	if len(res.Seeds) != 3 {
		t.Fatalf("got %d seeds want 3 (padding)", len(res.Seeds))
	}
	seen := map[int32]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate padded seed in %v", res.Seeds)
		}
		seen[s] = true
	}
}

func TestGraphView(t *testing.T) {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	g := b.Build()
	gv := GraphView{G: g}
	if gv.N() != 3 {
		t.Fatal("N")
	}
	var got []int32
	gv.VisitOut(0, func(v int32) { got = append(got, v) })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("VisitOut %v", got)
	}
}
