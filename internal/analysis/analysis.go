// Package analysis provides seed-set and ranking comparison metrics used
// when benchmark results are interpreted: overlap between the seed sets
// different techniques (or models) produce, rank agreement, and summary
// shapes of spread-versus-k curves. The paper reasons about these
// quantities qualitatively ("WC is not IC", M6; IMRank's unstable
// rankings, M7); this package makes them measurable.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"github.com/sigdata/goinfmax/internal/graph"
)

// Jaccard returns |A ∩ B| / |A ∪ B| for two seed sets (0 when both empty).
func Jaccard(a, b []graph.NodeID) float64 {
	set := make(map[graph.NodeID]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	inter := 0
	seenB := make(map[graph.NodeID]struct{}, len(b))
	for _, x := range b {
		if _, dup := seenB[x]; dup {
			continue
		}
		seenB[x] = struct{}{}
		if _, ok := set[x]; ok {
			inter++
		}
	}
	union := len(set) + len(seenB) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Overlap returns |A ∩ B| / min(|A|, |B|), the containment coefficient.
func Overlap(a, b []graph.NodeID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[graph.NodeID]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	inter := 0
	for _, x := range dedup(b) {
		if _, ok := set[x]; ok {
			inter++
		}
	}
	m := len(set)
	if db := len(dedup(b)); db < m {
		m = db
	}
	return float64(inter) / float64(m)
}

func dedup(xs []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(xs))
	out := xs[:0:0]
	for _, x := range xs {
		if _, dup := seen[x]; !dup {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	return out
}

// KendallTau computes the Kendall rank correlation τ between two rankings
// given as ordered slices over the same element universe. Elements missing
// from either ranking are ignored. Returns 0 when fewer than two common
// elements exist.
func KendallTau(a, b []graph.NodeID) float64 {
	posB := make(map[graph.NodeID]int, len(b))
	for i, x := range b {
		posB[x] = i
	}
	var common []int // positions in b of a's elements, in a's order
	for _, x := range a {
		if p, ok := posB[x]; ok {
			common = append(common, p)
		}
	}
	n := len(common)
	if n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if common[i] < common[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	return float64(concordant-discordant) / float64(n*(n-1)/2)
}

// Curve is a spread-versus-k series.
type Curve struct {
	Ks      []int
	Spreads []float64
}

// NewCurve validates and wraps the series (Ks strictly increasing).
func NewCurve(ks []int, spreads []float64) (Curve, error) {
	if len(ks) != len(spreads) {
		return Curve{}, fmt.Errorf("analysis: %d ks vs %d spreads", len(ks), len(spreads))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			return Curve{}, fmt.Errorf("analysis: ks not strictly increasing at %d", i)
		}
	}
	return Curve{Ks: ks, Spreads: spreads}, nil
}

// AUC returns the trapezoidal area under the spread curve, the scalar the
// benchmark uses to compare quality across a whole k range rather than at
// a single point.
func (c Curve) AUC() float64 {
	area := 0.0
	for i := 1; i < len(c.Ks); i++ {
		dx := float64(c.Ks[i] - c.Ks[i-1])
		area += dx * (c.Spreads[i] + c.Spreads[i-1]) / 2
	}
	return area
}

// Monotone reports whether the curve never decreases by more than tol
// (relative). Fig. 10f's broken-IMRank curve fails this.
func (c Curve) Monotone(tol float64) bool {
	for i := 1; i < len(c.Spreads); i++ {
		if c.Spreads[i] < c.Spreads[i-1]*(1-tol) {
			return false
		}
	}
	return true
}

// DiminishingReturns reports whether per-seed marginal spread is
// non-increasing within tol — the empirical signature of submodularity.
func (c Curve) DiminishingReturns(tol float64) bool {
	prev := math.Inf(1)
	for i := 1; i < len(c.Spreads); i++ {
		marginal := (c.Spreads[i] - c.Spreads[i-1]) / float64(c.Ks[i]-c.Ks[i-1])
		if marginal > prev*(1+tol) {
			return false
		}
		prev = marginal
	}
	return true
}

// CrossoverK returns the smallest k at which curve a falls behind curve b
// (a's spread < b's), or -1 if it never does. Both curves must share Ks.
func CrossoverK(a, b Curve) (int, error) {
	if len(a.Ks) != len(b.Ks) {
		return -1, fmt.Errorf("analysis: curves have different k grids")
	}
	for i := range a.Ks {
		if a.Ks[i] != b.Ks[i] {
			return -1, fmt.Errorf("analysis: k grids differ at %d", i)
		}
		if a.Spreads[i] < b.Spreads[i] {
			return a.Ks[i], nil
		}
	}
	return -1, nil
}

// TopKStability measures, for a sequence of rankings (e.g. IMRank scoring
// rounds), the mean Jaccard overlap of consecutive top-k prefixes — 1.0
// means the refinement has converged, low values mean churn (paper M7).
func TopKStability(rankings [][]graph.NodeID, k int) float64 {
	if len(rankings) < 2 {
		return 1
	}
	total := 0.0
	for i := 1; i < len(rankings); i++ {
		a, b := prefix(rankings[i-1], k), prefix(rankings[i], k)
		total += Jaccard(a, b)
	}
	return total / float64(len(rankings)-1)
}

func prefix(xs []graph.NodeID, k int) []graph.NodeID {
	if k > len(xs) {
		k = len(xs)
	}
	return xs[:k]
}

// RankOf returns each element's position in the ranking, for tests and
// debugging dumps.
func RankOf(ranking []graph.NodeID) map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(ranking))
	for i, x := range ranking {
		out[x] = i
	}
	return out
}

// SortedByID returns a sorted copy; useful for stable set printing.
func SortedByID(xs []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(xs))
	copy(out, xs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
