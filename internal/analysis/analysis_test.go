package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sigdata/goinfmax/internal/graph"
)

func ids(xs ...int) []graph.NodeID {
	out := make([]graph.NodeID, len(xs))
	for i, x := range xs {
		out[i] = graph.NodeID(x)
	}
	return out
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []graph.NodeID
		want float64
	}{
		{ids(1, 2, 3), ids(2, 3, 4), 0.5},
		{ids(1), ids(1), 1},
		{ids(1), ids(2), 0},
		{nil, nil, 0},
		{ids(1, 1, 2), ids(2, 2), 1.0 / 2}, // duplicates ignored
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Jaccard(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	check := func(rawA, rawB []uint8) bool {
		a := make([]graph.NodeID, len(rawA))
		for i, x := range rawA {
			a[i] = graph.NodeID(x % 16)
		}
		b := make([]graph.NodeID, len(rawB))
		for i, x := range rawB {
			b[i] = graph.NodeID(x % 16)
		}
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		if math.Abs(j1-j2) > 1e-12 {
			return false // symmetry
		}
		return j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap(ids(1, 2), ids(1, 2, 3, 4)); got != 1 {
		t.Fatalf("containment %v want 1", got)
	}
	if got := Overlap(ids(1, 2), ids(3)); got != 0 {
		t.Fatalf("%v", got)
	}
	if got := Overlap(nil, ids(1)); got != 0 {
		t.Fatalf("%v", got)
	}
}

func TestKendallTau(t *testing.T) {
	if got := KendallTau(ids(1, 2, 3), ids(1, 2, 3)); got != 1 {
		t.Fatalf("identical rankings τ=%v", got)
	}
	if got := KendallTau(ids(1, 2, 3), ids(3, 2, 1)); got != -1 {
		t.Fatalf("reversed rankings τ=%v", got)
	}
	if got := KendallTau(ids(1), ids(1)); got != 0 {
		t.Fatalf("single element τ=%v want 0", got)
	}
	// Partial overlap: only common elements counted.
	got := KendallTau(ids(1, 9, 2), ids(1, 2, 8))
	if got != 1 {
		t.Fatalf("common-subset τ=%v want 1", got)
	}
}

func TestCurveValidation(t *testing.T) {
	if _, err := NewCurve([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewCurve([]int{2, 1}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing ks accepted")
	}
	if _, err := NewCurve([]int{1, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestCurveAUC(t *testing.T) {
	c, err := NewCurve([]int{0, 2, 4}, []float64{0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoids: (0+2)/2·2 + (2+2)/2·2 = 2 + 4 = 6.
	if got := c.AUC(); got != 6 {
		t.Fatalf("AUC %v want 6", got)
	}
}

func TestCurveMonotone(t *testing.T) {
	up, _ := NewCurve([]int{1, 2, 3}, []float64{1, 2, 3})
	if !up.Monotone(0) {
		t.Fatal("increasing curve flagged non-monotone")
	}
	down, _ := NewCurve([]int{1, 2, 3}, []float64{3, 2, 1})
	if down.Monotone(0.01) {
		t.Fatal("decreasing curve flagged monotone")
	}
	wiggle, _ := NewCurve([]int{1, 2}, []float64{100, 99.5})
	if !wiggle.Monotone(0.01) {
		t.Fatal("within-tolerance dip rejected")
	}
}

func TestDiminishingReturns(t *testing.T) {
	sub, _ := NewCurve([]int{0, 1, 2, 3}, []float64{0, 10, 15, 17})
	if !sub.DiminishingReturns(0) {
		t.Fatal("concave curve rejected")
	}
	super, _ := NewCurve([]int{0, 1, 2}, []float64{0, 1, 10})
	if super.DiminishingReturns(0) {
		t.Fatal("convex curve accepted")
	}
}

func TestCrossoverK(t *testing.T) {
	a, _ := NewCurve([]int{1, 2, 3}, []float64{5, 5, 3})
	b, _ := NewCurve([]int{1, 2, 3}, []float64{4, 5, 4})
	k, err := CrossoverK(a, b)
	if err != nil || k != 3 {
		t.Fatalf("crossover %v err %v", k, err)
	}
	c, _ := NewCurve([]int{1, 2, 3}, []float64{1, 1, 1})
	k, err = CrossoverK(a, c)
	if err != nil || k != -1 {
		t.Fatalf("no-crossover %v err %v", k, err)
	}
	short, _ := NewCurve([]int{1}, []float64{1})
	if _, err := CrossoverK(a, short); err == nil {
		t.Fatal("mismatched grids accepted")
	}
}

func TestTopKStability(t *testing.T) {
	r1 := ids(1, 2, 3, 4)
	r2 := ids(1, 2, 4, 3)
	r3 := ids(9, 8, 7, 6)
	if got := TopKStability([][]graph.NodeID{r1, r2}, 2); got != 1 {
		t.Fatalf("stable prefix got %v", got)
	}
	if got := TopKStability([][]graph.NodeID{r1, r3}, 2); got != 0 {
		t.Fatalf("churned prefix got %v", got)
	}
	if got := TopKStability([][]graph.NodeID{r1}, 2); got != 1 {
		t.Fatalf("single ranking got %v", got)
	}
}

func TestRankOfAndSorted(t *testing.T) {
	r := RankOf(ids(5, 3, 9))
	if r[5] != 0 || r[3] != 1 || r[9] != 2 {
		t.Fatalf("ranks %v", r)
	}
	s := SortedByID(ids(5, 3, 9))
	if s[0] != 3 || s[1] != 5 || s[2] != 9 {
		t.Fatalf("sorted %v", s)
	}
}
