package diffusion

import (
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Live-edge sampling
//
// Both RR-set methods (TIM+/IMM, paper §4.2) and snapshot methods
// (StaticGreedy/PMC, paper §4.3) rely on Kempe et al.'s live-edge
// characterization of diffusion:
//
//   - IC: each arc (u,v) is independently "live" with probability W(u,v).
//     The distribution of the active set from S equals the distribution of
//     the set reachable from S via live arcs ("coin-flip technique").
//   - LT: each node v selects at most ONE incoming arc, picking (u,v) with
//     probability W(u,v) (and no arc with probability 1 − ΣW). Reachability
//     over selected arcs matches the LT activation distribution.
//
// RRSampler draws reverse-reachable sets under either semantics; Snapshot
// materializes whole live-edge instantiations for the snapshot methods.

// RRSampler generates reverse-reachable (RR) sets. An RR set for root v is
// the set of nodes that can reach v in a random live-edge instantiation;
// nodes appearing in many RR sets are influential (paper §4.2). The sampler
// reuses scratch space; it is not safe for concurrent use.
type RRSampler struct {
	g     graph.G
	model weights.Model
	mark  graphalgo.Bitset
	queue []graph.NodeID

	// StealChunk overrides the work-stealing claim granularity of
	// SampleBatch/SampleStream in samples (0 = automatic, sized from the
	// batch; see sched.Options.Chunk). Results are byte-identical for any
	// value — the chunking only moves work between workers.
	StealChunk int64

	// ArcsTraversed counts in-arcs examined across all Sample calls; it is
	// the dominant cost of RR-set construction and the quantity that blows
	// up under IC(0.1) vs WC (paper §5.3.1).
	ArcsTraversed int64
}

// NewRRSampler creates an RR-set sampler over g under the given model.
func NewRRSampler(g graph.G, model weights.Model) *RRSampler {
	g = graph.View(g) // private decode buffers: one sampler per goroutine
	return &RRSampler{
		g:     g,
		model: model,
		mark:  graphalgo.NewBitset(int(g.N())),
		queue: make([]graph.NodeID, 0, 256),
	}
}

// Sample draws one RR set rooted at root, appending its members (root
// included) to out and returning the extended slice.
func (s *RRSampler) Sample(root graph.NodeID, r *rng.Source, out []graph.NodeID) []graph.NodeID {
	// Membership marks are a word-packed bitset — the hot reverse-BFS test
	// touches 32× fewer cache lines than the uint32 epoch stamps it
	// replaced — cleared incrementally by replaying the previous sample's
	// members (tracked in queue), which costs O(|R|), not O(n).
	for _, v := range s.queue {
		s.mark.Clear(int(v))
	}
	s.queue = append(s.queue[:0], root)
	s.mark.Set(int(root))
	out = append(out, root)
	switch s.model {
	case weights.IC:
		// Reverse BFS flipping a coin per in-arc.
		for head := 0; head < len(s.queue); head++ {
			v := s.queue[head]
			from, w := s.g.InNeighbors(v)
			s.ArcsTraversed += int64(len(from))
			for i, u := range from {
				if s.mark.Test(int(u)) {
					continue
				}
				if r.Float64() < w[i] {
					s.mark.Set(int(u))
					s.queue = append(s.queue, u)
					out = append(out, u)
				}
			}
		}
	case weights.LT:
		// Each visited node picks at most one incoming live arc; the RR set
		// is a reverse path until no pick or a revisit. The path nodes join
		// queue so the next Sample's incremental clear can find them.
		v := root
		for {
			u, ok := s.pickOneIn(v, r)
			if !ok || s.mark.Test(int(u)) {
				break
			}
			s.mark.Set(int(u))
			s.queue = append(s.queue, u)
			out = append(out, u)
			v = u
		}
	}
	return out
}

// SampleUniformRoot draws an RR set rooted at a uniformly random node.
func (s *RRSampler) SampleUniformRoot(r *rng.Source, out []graph.NodeID) []graph.NodeID {
	root := graph.NodeID(r.Int31n(s.g.N()))
	return s.Sample(root, r, out)
}

// pickOneIn selects an in-neighbor of v with probability equal to the arc
// weight (none with the residual probability). Linear scan: LT in-weights
// sum to ≤ 1 so a single uniform draw suffices.
func (s *RRSampler) pickOneIn(v graph.NodeID, r *rng.Source) (graph.NodeID, bool) {
	from, w := s.g.InNeighbors(v)
	s.ArcsTraversed += int64(len(from))
	if len(from) == 0 {
		return 0, false
	}
	x := r.Float64()
	acc := 0.0
	for i, u := range from {
		acc += w[i]
		if x < acc {
			return u, true
		}
	}
	return 0, false
}

// Snapshot is one live-edge instantiation Gi of the graph: a subgraph in
// forward CSR form, produced by the coin-flip technique (paper §4.3).
type Snapshot struct {
	Off []int64
	To  []graph.NodeID
}

// OutNeighbors returns the live out-arcs of u in the snapshot.
func (sn *Snapshot) OutNeighbors(u graph.NodeID) []graph.NodeID {
	return sn.To[sn.Off[u]:sn.Off[u+1]]
}

// MemoryBytes approximates the resident size of the snapshot.
func (sn *Snapshot) MemoryBytes() int64 {
	return int64(len(sn.Off))*8 + int64(len(sn.To))*4
}

// SampleSnapshot materializes one live-edge instantiation under the model.
// IC keeps each arc independently with its weight; LT keeps exactly the one
// in-arc each node selects (if any), expressed in forward orientation.
func SampleSnapshot(g graph.G, model weights.Model, r *rng.Source) *Snapshot {
	g = graph.View(g) // private decode buffers: snapshots sample in parallel
	n := g.N()
	switch model {
	case weights.IC:
		off := make([]int64, n+1)
		var to []graph.NodeID
		for u := graph.NodeID(0); u < n; u++ {
			off[u] = int64(len(to))
			tos, ws := g.OutNeighbors(u)
			for i, v := range tos {
				if r.Float64() < ws[i] {
					to = append(to, v)
				}
			}
		}
		off[n] = int64(len(to))
		return &Snapshot{Off: off, To: to}
	case weights.LT:
		// Select per-node in-arc, then bucket by source to build forward CSR.
		chosen := make([]graph.NodeID, n) // chosen[v] = selected in-neighbor or -1
		outDeg := make([]int64, n)
		for v := graph.NodeID(0); v < n; v++ {
			chosen[v] = -1
			from, w := g.InNeighbors(v)
			x := r.Float64()
			acc := 0.0
			for i, u := range from {
				acc += w[i]
				if x < acc {
					chosen[v] = u
					outDeg[u]++
					break
				}
			}
		}
		off := make([]int64, n+1)
		for u := graph.NodeID(0); u < n; u++ {
			off[u+1] = off[u] + outDeg[u]
		}
		to := make([]graph.NodeID, off[n])
		cur := make([]int64, n)
		copy(cur, off[:n])
		for v := graph.NodeID(0); v < n; v++ {
			if u := chosen[v]; u >= 0 {
				to[cur[u]] = v
				cur[u]++
			}
		}
		return &Snapshot{Off: off, To: to}
	default:
		panic("diffusion: unknown model")
	}
}
