package diffusion

import (
	"math"
	"testing"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// TestRRSetUnbiasedIC verifies the fundamental RR-set identity: for a
// uniform root, E[n · 1{S ∩ RR ≠ ∅}] = σ(S). We compare the RR estimate
// against MC simulation on a random WC graph.
func TestRRSetUnbiasedIC(t *testing.T) {
	g := randomWCGraph(41, 40, 200)
	seeds := []graph.NodeID{1, 7}
	const samples = 60000
	s := NewRRSampler(g, weights.IC)
	r := rng.New(5)
	inSet := make(map[graph.NodeID]bool)
	for _, v := range seeds {
		inSet[v] = true
	}
	hits := 0
	var buf []graph.NodeID
	for i := 0; i < samples; i++ {
		buf = s.SampleUniformRoot(r, buf[:0])
		for _, v := range buf {
			if inSet[v] {
				hits++
				break
			}
		}
	}
	rrEstimate := float64(g.N()) * float64(hits) / samples
	mc := NewSimulator(g, weights.IC).EstimateSpread(seeds, 40000, 9)
	tol := 4*mc.StdErr + 4*float64(g.N())*math.Sqrt(0.25/samples) + 0.02
	if math.Abs(rrEstimate-mc.Mean) > tol {
		t.Fatalf("RR estimate %v vs MC %v (tol %v)", rrEstimate, mc.Mean, tol)
	}
}

// TestRRSetUnbiasedLT is the same identity under LT (uniform weights).
func TestRRSetUnbiasedLT(t *testing.T) {
	g := randomLTGraph(43, 30, 120)
	seeds := []graph.NodeID{2, 9, 11}
	const samples = 60000
	s := NewRRSampler(g, weights.LT)
	r := rng.New(6)
	inSet := map[graph.NodeID]bool{}
	for _, v := range seeds {
		inSet[v] = true
	}
	hits := 0
	var buf []graph.NodeID
	for i := 0; i < samples; i++ {
		buf = s.SampleUniformRoot(r, buf[:0])
		for _, v := range buf {
			if inSet[v] {
				hits++
				break
			}
		}
	}
	rrEstimate := float64(g.N()) * float64(hits) / samples
	mc := NewSimulator(g, weights.LT).EstimateSpread(seeds, 40000, 10)
	tol := 4*mc.StdErr + 4*float64(g.N())*math.Sqrt(0.25/samples) + 0.02
	if math.Abs(rrEstimate-mc.Mean) > tol {
		t.Fatalf("RR estimate %v vs MC %v (tol %v)", rrEstimate, mc.Mean, tol)
	}
}

// TestRRSetSizesTrackEdgeWeight: IC(0.4) RR sets must be larger on average
// than WC RR sets on a dense graph — the mechanism behind the paper's
// Fig. 1a / M6 blow-up.
func TestRRSetSizesTrackEdgeWeight(t *testing.T) {
	base := randomWCGraph(51, 60, 600)
	hi := weights.ICConstant{P: 0.4}.Apply(base).(*graph.Graph)
	r := rng.New(8)
	avg := func(g *graph.Graph) float64 {
		s := NewRRSampler(g, weights.IC)
		total := 0
		var buf []graph.NodeID
		for i := 0; i < 3000; i++ {
			buf = s.SampleUniformRoot(r, buf[:0])
			total += len(buf)
		}
		return float64(total) / 3000
	}
	wcAvg, hiAvg := avg(base), avg(hi)
	if hiAvg <= wcAvg {
		t.Fatalf("IC(0.4) RR avg %v not larger than WC avg %v", hiAvg, wcAvg)
	}
}

// TestLTRRSetIsPath: under LT each node picks ≤1 in-arc, so an RR set is a
// simple reverse walk — no duplicates.
func TestLTRRSetIsPath(t *testing.T) {
	g := randomLTGraph(53, 25, 120)
	s := NewRRSampler(g, weights.LT)
	r := rng.New(4)
	var buf []graph.NodeID
	for i := 0; i < 2000; i++ {
		buf = s.SampleUniformRoot(r, buf[:0])
		seen := map[graph.NodeID]bool{}
		for _, v := range buf {
			if seen[v] {
				t.Fatalf("duplicate %d in LT RR set %v", v, buf)
			}
			seen[v] = true
		}
	}
}

// TestSnapshotICKeepRate: the number of live arcs across snapshots must
// match the expected keep probability.
func TestSnapshotICKeepRate(t *testing.T) {
	base := randomWCGraph(61, 40, 300)
	g := weights.ICConstant{P: 0.3}.Apply(base).(*graph.Graph)
	r := rng.New(12)
	var live, total int64
	for i := 0; i < 300; i++ {
		sn := SampleSnapshot(g, weights.IC, r)
		live += int64(len(sn.To))
		total += g.M()
	}
	rate := float64(live) / float64(total)
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("live-arc rate %v want 0.3", rate)
	}
}

// TestSnapshotLTOneInArc: LT snapshots keep at most one in-arc per node.
func TestSnapshotLTOneInArc(t *testing.T) {
	g := randomLTGraph(67, 30, 200)
	r := rng.New(13)
	for i := 0; i < 100; i++ {
		sn := SampleSnapshot(g, weights.LT, r)
		indeg := make([]int, g.N())
		for u := graph.NodeID(0); u < g.N(); u++ {
			for _, v := range sn.OutNeighbors(u) {
				indeg[v]++
			}
		}
		for v, d := range indeg {
			if d > 1 {
				t.Fatalf("snapshot %d: node %d has %d live in-arcs", i, v, d)
			}
		}
	}
}

// TestSnapshotReachMatchesSimulationIC: reachability in snapshots is
// distributionally the same as forward IC simulation (live-edge principle).
func TestSnapshotReachMatchesSimulationIC(t *testing.T) {
	g := randomWCGraph(71, 30, 150)
	src := graph.NodeID(3)
	r := rng.New(14)
	const rounds = 30000
	totalReach := 0
	mark := make([]int, g.N())
	epoch := 0
	for i := 0; i < rounds; i++ {
		sn := SampleSnapshot(g, weights.IC, r)
		epoch++
		queue := []graph.NodeID{src}
		mark[src] = epoch
		cnt := 1
		for head := 0; head < len(queue); head++ {
			for _, v := range sn.OutNeighbors(queue[head]) {
				if mark[v] != epoch {
					mark[v] = epoch
					queue = append(queue, v)
					cnt++
				}
			}
		}
		totalReach += cnt
	}
	snapMean := float64(totalReach) / rounds
	mc := NewSimulator(g, weights.IC).EstimateSpread([]graph.NodeID{src}, rounds, 15)
	if math.Abs(snapMean-mc.Mean) > 8*mc.StdErr+0.02 {
		t.Fatalf("snapshot reach %v vs simulation %v", snapMean, mc.Mean)
	}
}

func TestSnapshotMemoryBytes(t *testing.T) {
	g := randomWCGraph(73, 20, 80)
	sn := SampleSnapshot(g, weights.IC, rng.New(1))
	if sn.MemoryBytes() < int64(len(sn.Off))*8 {
		t.Fatal("memory accounting too small")
	}
}

// randomLTGraph builds a random directed graph with LT-uniform weights.
func randomLTGraph(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u == v {
			continue
		}
		_ = b.AddEdge(u, v, 1)
	}
	g := b.BuildSimple()
	return weights.LTUniform{}.Apply(g).(*graph.Graph)
}
