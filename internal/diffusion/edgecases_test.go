package diffusion

import (
	"testing"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func TestEmptySeedSet(t *testing.T) {
	g := randomWCGraph(81, 20, 80)
	for _, m := range []weights.Model{weights.IC, weights.LT} {
		sim := NewSimulator(g, m)
		if sp := sim.Run(nil, rng.New(1)); sp != 0 {
			t.Fatalf("%v: empty seeds spread %d want 0", m, sp)
		}
		est := sim.EstimateSpread(nil, 100, 1)
		if est.Mean != 0 || est.SD != 0 {
			t.Fatalf("%v: empty estimate %v", m, est)
		}
	}
}

func TestAllNodesSeeded(t *testing.T) {
	g := randomWCGraph(83, 15, 60)
	seeds := make([]graph.NodeID, g.N())
	for i := range seeds {
		seeds[i] = graph.NodeID(i)
	}
	sim := NewSimulator(g, weights.IC)
	if sp := sim.Run(seeds, rng.New(1)); sp != g.N() {
		t.Fatalf("all-seeded spread %d want %d", sp, g.N())
	}
}

func TestIsolatedNodeSeed(t *testing.T) {
	b := graph.NewBuilder(4, true)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	sim := NewSimulator(g, weights.IC)
	if sp := sim.Run([]graph.NodeID{3}, rng.New(1)); sp != 1 {
		t.Fatalf("isolated seed spread %d want 1", sp)
	}
}

// TestEpochWrapSafety: after very many runs the epoch counter must still
// produce correct results (the wrap path resets marks).
func TestEpochReuseManyRuns(t *testing.T) {
	g := randomWCGraph(87, 10, 40)
	sim := NewSimulator(g, weights.LT)
	r := rng.New(9)
	for i := 0; i < 5000; i++ {
		sp := sim.Run([]graph.NodeID{0}, r)
		if sp < 1 || sp > g.N() {
			t.Fatalf("run %d: spread %d out of range", i, sp)
		}
	}
}

func TestRRSamplerArcCounter(t *testing.T) {
	g := randomWCGraph(91, 30, 200)
	s := NewRRSampler(g, weights.IC)
	r := rng.New(2)
	var buf []graph.NodeID
	for i := 0; i < 50; i++ {
		buf = s.SampleUniformRoot(r, buf[:0])
	}
	if s.ArcsTraversed <= 0 {
		t.Fatal("arc traversal counter not incremented")
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3, true).Build()
	sn := SampleSnapshot(g, weights.IC, rng.New(1))
	if len(sn.To) != 0 {
		t.Fatalf("empty graph snapshot has %d arcs", len(sn.To))
	}
	sn = SampleSnapshot(g, weights.LT, rng.New(1))
	if len(sn.To) != 0 {
		t.Fatalf("empty LT snapshot has %d arcs", len(sn.To))
	}
}

// TestLTWeightsAboveOneClamped: with a single in-arc of weight 1 the LT
// activation is certain; a pathological weight > 1 must still activate
// (threshold ≤ 1 always) without panicking.
func TestLTCertainActivation(t *testing.T) {
	b := graph.NewBuilder(2, true)
	_ = b.AddEdge(0, 1, 1.0)
	g := b.Build()
	sim := NewSimulator(g, weights.LT)
	for i := 0; i < 100; i++ {
		if sp := sim.Run([]graph.NodeID{0}, rng.New(uint64(i))); sp != 2 {
			t.Fatalf("w=1 LT arc failed to activate (spread %d)", sp)
		}
	}
}

func TestMarginalGainOfSeedIsZero(t *testing.T) {
	g := randomWCGraph(93, 20, 100)
	gain := MarginalGain(g, weights.IC, []graph.NodeID{5}, 5, 200, 1)
	if gain != 0 {
		t.Fatalf("adding an existing seed changed spread by %v", gain)
	}
}
