package diffusion

import (
	"errors"
	"testing"

	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/weights"
)

// TestSampleStreamMatchesBatch asserts the streaming sampler's delivered
// concatenation is byte-identical to one SampleBatch call — across worker
// counts and arena bounds small enough to force many rotations.
func TestSampleStreamMatchesBatch(t *testing.T) {
	g := batchGraph(5, 400, 2000)
	s := NewRRSampler(g, weights.IC)
	const count, baseSeed = 500, uint64(99)

	want := graphalgo.NewSetStore()
	if _, err := s.SampleBatch(want, count, baseSeed, 1, nil, nil); err != nil {
		t.Fatalf("SampleBatch: %v", err)
	}

	for _, tc := range []struct {
		name    string
		arena   int64
		workers int
	}{
		{"tiny-arena-serial", 1 << 10, 1},
		{"tiny-arena-parallel", 1 << 10, 8},
		{"large-arena-parallel", 1 << 30, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := graphalgo.NewSetStore()
			rotations := 0
			delivered, err := NewRRSampler(g, weights.IC).SampleStream(count, baseSeed,
				StreamConfig{ArenaBytes: tc.arena, Workers: tc.workers},
				func(batch *graphalgo.SetStore) error {
					rotations++
					got.AppendStore(batch)
					return nil
				}, nil, nil)
			if err != nil {
				t.Fatalf("SampleStream: %v", err)
			}
			if delivered != count {
				t.Fatalf("delivered %d, want %d", delivered, count)
			}
			if !want.Equal(got) {
				t.Fatal("streamed sets differ from batch sets")
			}
			if tc.arena == 1<<10 && rotations < 2 {
				t.Fatalf("tiny arena produced %d rotations; rotation path untested", rotations)
			}
		})
	}
}

// TestSampleStreamAccounting asserts the net account charge is the final
// arena footprint on success and zero after a sink abort.
func TestSampleStreamAccounting(t *testing.T) {
	g := batchGraph(6, 200, 1000)
	s := NewRRSampler(g, weights.IC)
	net := int64(0)
	account := func(d int64) { net += d }

	if _, err := s.SampleStream(300, 7, StreamConfig{ArenaBytes: 1 << 10}, func(b *graphalgo.SetStore) error {
		return nil
	}, nil, account); err != nil {
		t.Fatalf("SampleStream: %v", err)
	}
	// After the final rotation the arena is reset; its small footprint is
	// all that may remain charged.
	if net < 0 || net > 4096 {
		t.Fatalf("net charge %d after success; want small non-negative residue", net)
	}

	net = 0
	boom := errors.New("boom")
	if _, err := s.SampleStream(300, 7, StreamConfig{ArenaBytes: 1 << 10}, func(b *graphalgo.SetStore) error {
		return boom
	}, nil, account); !errors.Is(err, boom) {
		t.Fatalf("err %v, want boom", err)
	}
	if net != 0 {
		t.Fatalf("net charge %d after abort; want 0", net)
	}
}
