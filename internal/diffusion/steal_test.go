package diffusion

import (
	"testing"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Steal-forcing skew fixtures
//
// A chain 0→1→…→L−1 under IC(p=1) embedded in a larger universe makes the
// RR-set cost a steep function of the root: a root on the chain drags in
// every predecessor (up to L nodes), a root off it is a singleton. Uniform
// random roots then produce exactly the skewed size distribution the
// parallel-IM literature warns about — a few giant samples among many tiny
// ones — which is the regime where static contiguous chunking starves and
// the executor must steal.

// skewGraph builds an n-node graph whose first chainLen nodes form a
// directed chain with arc probability 1.
func skewGraph(n, chainLen int32) graph.G {
	b := graph.NewBuilder(n, true)
	for v := int32(1); v < chainLen; v++ {
		_ = b.AddEdge(graph.NodeID(v-1), graph.NodeID(v), 1)
	}
	return weights.ICConstant{P: 1}.Apply(b.BuildSimple())
}

// TestSampleBatchStealDeterminismSkew is the stealing determinism gate:
// byte-identical stores and identical traversal counts for workers
// ∈ {1, 2, 7, 16} on the skew fixture, at both maximal steal churn
// (chunk 1) and the automatic chunk size.
func TestSampleBatchStealDeterminismSkew(t *testing.T) {
	g := skewGraph(4096, 512)
	const count, baseSeed = 800, 42
	for _, chunk := range []int64{0, 1} {
		var want *graphalgo.SetStore
		var wantArcs int64
		for _, workers := range []int{1, 2, 7, 16} {
			s := NewRRSampler(g, weights.IC)
			s.StealChunk = chunk
			store := graphalgo.NewSetStore()
			added, err := s.SampleBatch(store, count, baseSeed, workers, nil, nil)
			if err != nil || added != count {
				t.Fatalf("chunk=%d workers=%d: added=%d err=%v", chunk, workers, added, err)
			}
			if want == nil {
				want, wantArcs = store, s.ArcsTraversed
				continue
			}
			if !store.Equal(want) {
				t.Fatalf("chunk=%d workers=%d: store differs from serial run", chunk, workers)
			}
			if s.ArcsTraversed != wantArcs {
				t.Fatalf("chunk=%d workers=%d: ArcsTraversed=%d want %d", chunk, workers, s.ArcsTraversed, wantArcs)
			}
		}
	}
}

// TestSampleStreamStealDeterminismSkew extends the gate to streaming mode:
// the concatenation of delivered batches must be byte-identical across
// worker counts even when rounds are small enough that chunk sizing from
// the round count is what keeps every worker busy.
func TestSampleStreamStealDeterminismSkew(t *testing.T) {
	g := skewGraph(4096, 512)
	const count, baseSeed = 600, 77
	var want *graphalgo.SetStore
	for _, workers := range []int{1, 2, 7, 16} {
		s := NewRRSampler(g, weights.IC)
		s.StealChunk = 1
		got := graphalgo.NewSetStore()
		delivered, err := s.SampleStream(count, baseSeed, StreamConfig{ArenaBytes: 8 << 10, Workers: workers},
			func(batch *graphalgo.SetStore) error {
				got.AppendStore(batch)
				return nil
			}, nil, nil)
		if err != nil || delivered != count {
			t.Fatalf("workers=%d: delivered=%d err=%v", workers, delivered, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: streamed store differs from serial run", workers)
		}
	}
}

// TestEvalBatchStealDeterminismSkew pins bit-identical spread estimates
// under stealing for workers ∈ {1, 2, 7, 16}: world costs vary wildly on a
// near-percolation graph, so with chunk 1 the world ranges migrate freely
// between workers — and the estimates must not move at all.
func TestEvalBatchStealDeterminismSkew(t *testing.T) {
	r := rng.New(5)
	b := graph.NewBuilder(400, true)
	for i := 0; i < 2400; i++ {
		u, v := graph.NodeID(r.Int31n(400)), graph.NodeID(r.Int31n(400))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	g := weights.ICConstant{P: 0.12}.Apply(b.BuildSimple())
	// A k-sweep prefix chain plus unrelated singletons.
	sets := [][]graph.NodeID{
		{7}, {7, 31}, {7, 31, 100}, {7, 31, 100, 255}, {9}, {300, 12},
	}
	ev := NewWorldEvaluator(g, weights.IC, 96, 0xDECAF)
	var want []BatchResult
	for _, workers := range []int{1, 2, 7, 16} {
		res, err := ev.EvalBatch(sets, BatchOptions{Workers: workers, Chunk: 1, KeepPerWorld: true})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		for i := range res {
			if res[i].Estimate.Mean != want[i].Estimate.Mean || res[i].Estimate.StdErr != want[i].Estimate.StdErr {
				t.Fatalf("workers=%d set %d: estimate %v/%v, want %v/%v", workers, i,
					res[i].Estimate.Mean, res[i].Estimate.StdErr, want[i].Estimate.Mean, want[i].Estimate.StdErr)
			}
			for w := range res[i].PerWorld {
				if res[i].PerWorld[w] != want[i].PerWorld[w] {
					t.Fatalf("workers=%d set %d world %d: spread %d want %d", workers, i, w,
						res[i].PerWorld[w], want[i].PerWorld[w])
				}
			}
		}
	}
}

// Makespan model
//
// This container pins GOMAXPROCS=1, so multicore wall-clock speedups are
// not physically measurable here (the PR-4 precedent). The model below is
// the deterministic, machine-independent stand-in: measure the true
// per-sample costs (arcs traversed) of a skewed batch, then compute the
// makespan of (a) the static contiguous chunking the executor replaced and
// (b) chunk-granular dynamic scheduling — greedy next-chunk-to-earliest-
// free-worker, the idealization the stealing deque approximates — under
// equal-speed workers. BENCH_multicore.json commits these numbers.

func staticMakespan(costs []int64, workers int) int64 {
	n := len(costs)
	chunk := (n + workers - 1) / workers // the replaced algorithm's ceil split
	var max int64
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var sum int64
		for _, c := range costs[lo:hi] {
			sum += c
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

func stealMakespan(costs []int64, workers int, chunk int) int64 {
	free := make([]int64, workers)
	for lo := 0; lo < len(costs); lo += chunk {
		hi := lo + chunk
		if hi > len(costs) {
			hi = len(costs)
		}
		var sum int64
		for _, c := range costs[lo:hi] {
			sum += c
		}
		w := 0
		for i := 1; i < workers; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		free[w] += sum
	}
	var max int64
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}

// TestStealMakespanModel asserts the modeled 8-worker speedup of the
// stealing executor on the skew fixture is at least 3× — the acceptance
// bar — and logs the static-chunk baseline alongside.
func TestStealMakespanModel(t *testing.T) {
	g := skewGraph(4096, 512)
	const count, baseSeed, workers = 64, 555, 8
	s := NewRRSampler(g, weights.IC)
	costs := make([]int64, count)
	buf := make([]graph.NodeID, 0, 512)
	var total int64
	for i := int64(0); i < count; i++ {
		r := rng.New(sampleSeed(baseSeed, i))
		root := graph.NodeID(r.Int31n(g.N()))
		before := s.ArcsTraversed
		buf = s.Sample(root, r, buf[:0])
		costs[i] = s.ArcsTraversed - before + 1 // +1: even a singleton costs a visit
		total += costs[i]
	}
	static := staticMakespan(costs, workers)
	steal := stealMakespan(costs, workers, 1) // autoChunk(64, 8) = 1
	staticX := float64(total) / float64(static)
	stealX := float64(total) / float64(steal)
	t.Logf("total=%d static makespan=%d (%.2fx) steal makespan=%d (%.2fx)", total, static, staticX, steal, stealX)
	if steal > static {
		t.Fatalf("stealing model (%d) worse than static chunks (%d)", steal, static)
	}
	if stealX < 3.0 {
		t.Fatalf("modeled steal speedup %.2fx at %d workers, want ≥ 3x", stealX, workers)
	}
}
