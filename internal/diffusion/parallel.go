package diffusion

import (
	"context"
	"runtime"
	"sync"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// EstimateSpreadParallel computes σ(S) with r Monte-Carlo simulations spread
// over workers goroutines (0 means GOMAXPROCS). The result is bit-identical
// to the sequential EstimateSpread with the same seed: run i always consumes
// the i-th derived random stream, independent of scheduling.
//
// The paper decouples seed selection from spread computation and charges the
// 10K-simulation evaluation to neither algorithm (paper §5.1); this parallel
// estimator keeps that evaluation fast without perturbing the benchmarks.
func EstimateSpreadParallel(g graph.G, model weights.Model, seeds []graph.NodeID, r int, seed uint64, workers int) Estimate {
	est, _ := EstimateSpreadParallelCtx(context.Background(), g, model, seeds, r, seed, workers)
	return est
}

// EstimateSpreadParallelCtx is EstimateSpreadParallel under an external
// context: workers poll ctx between simulations and abort promptly once it
// is cancelled, returning a zero Estimate and ctx's error. An uncancelled
// run returns exactly what EstimateSpreadParallel would.
func EstimateSpreadParallelCtx(ctx context.Context, g graph.G, model weights.Model, seeds []graph.NodeID, r int, seed uint64, workers int) (Estimate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r <= 0 {
		r = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r {
		workers = r
	}
	done := ctx.Done()
	if workers == 1 && done == nil {
		return NewSimulator(g, model).EstimateSpread(seeds, r, seed), nil
	}

	// Pre-derive the per-run streams so that parallel and sequential runs
	// consume identical randomness.
	base := rng.New(seed)
	runSeeds := make([]uint64, r)
	for i := range runSeeds {
		runSeeds[i] = base.Uint64()
	}

	if workers == 1 {
		sim := NewSimulator(g, model)
		var sum, sumSq float64
		for i := 0; i < r; i++ {
			select {
			case <-done:
				return Estimate{}, ctx.Err()
			default:
			}
			sp := float64(sim.Run(seeds, rng.New(runSeeds[i])))
			sum += sp
			sumSq += sp * sp
		}
		return finishEstimate(sum, sumSq, r), nil
	}

	// Each worker owns one element of parts; pad to a full cache line so
	// adjacent workers' final writes (and any store buffering around them)
	// never contend on the same 64-byte line (false sharing).
	type partial struct {
		sum, sumSq float64
		_          [48]byte
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (r + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > r {
			hi = r
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		// This pool runs harness-owned simulation code only (never an
		// algorithm's); recovering here would hand back silently corrupt
		// partial sums, so a panic crashing loudly is the correct outcome.
		//imlint:ignore gosupervise worker runs trusted harness code; recover would mask corrupt partial sums
		go func(w, lo, hi int) {
			defer wg.Done()
			sim := NewSimulator(g, model)
			var sum, sumSq float64
			for i := lo; i < hi; i++ {
				select {
				case <-done:
					return // partial sums discarded below via ctx.Err()
				default:
				}
				sp := float64(sim.Run(seeds, rng.New(runSeeds[i])))
				sum += sp
				sumSq += sp * sp
			}
			parts[w] = partial{sum: sum, sumSq: sumSq}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	var sum, sumSq float64
	for _, p := range parts {
		sum += p.sum
		sumSq += p.sumSq
	}
	return finishEstimate(sum, sumSq, r), nil
}

// MarginalGain estimates σ(S ∪ {v}) − σ(S) over r shared live-edge worlds:
// both seed sets observe byte-identical worlds (common random numbers),
// which massively reduces estimator variance, and S → S∪{v} is a two-link
// prefix chain, so the second set costs one incremental frontier extension
// per world instead of a second full pass. Used by tests that verify
// monotonicity and submodularity statistically.
func MarginalGain(g graph.G, model weights.Model, s []graph.NodeID, v graph.NodeID, r int, seed uint64) float64 {
	gain, err := MarginalGainCtx(context.Background(), g, model, s, v, r, seed)
	if err != nil { // unreachable: the background context never cancels
		panic(err)
	}
	return gain
}

// MarginalGainCtx is MarginalGain under an external context: the evaluator
// polls ctx between worlds and aborts promptly once it is cancelled,
// returning ctx's error. An uncancelled call returns exactly what
// MarginalGain would.
func MarginalGainCtx(ctx context.Context, g graph.G, model weights.Model, s []graph.NodeID, v graph.NodeID, r int, seed uint64) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sv := make([]graph.NodeID, len(s)+1)
	copy(sv, s)
	sv[len(s)] = v
	ev := NewWorldEvaluator(g, model, r, seed)
	res, err := ev.EvalBatch([][]graph.NodeID{s, sv}, BatchOptions{
		Workers:      1,
		Poll:         func() error { return ctx.Err() },
		KeepPerWorld: true,
	})
	if err != nil {
		return 0, err
	}
	mean, _, err := PairedDiff(res[0], res[1])
	return mean, err
}
