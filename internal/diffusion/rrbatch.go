package diffusion

import (
	"sort"
	"sync/atomic"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/sched"
)

// Deterministic parallel RR-set sampling
//
// The serve oracle build and every TIM+/IMM/SSA run are sampling-bound:
// drawing θ independent RR sets dominates end-to-end time (paper §5.3.1).
// The samples are embarrassingly parallel, but naive parallelism breaks the
// platform's reproducibility contract (one seed → one result, any machine).
//
// SampleBatch keeps both: sample i of a batch always consumes the random
// stream rng.New(sampleSeed(baseSeed, i)) — the i-th splitmix64 output of
// baseSeed, computable in O(1) — regardless of which worker draws it. The
// batch fans out through the sched work-stealing executor: RR-set sizes are
// heavily skewed (a giant-component root costs orders of magnitude more
// than a leaf root), so static contiguous chunks leave every worker idle
// behind whichever one drew the giants. Workers append stolen-or-owned
// index ranges into private SetStore shards, recording one segment per
// range; the segments are sorted by global index after the join and
// bulk-copied, so the resulting store is byte-identical for any worker
// count, stolen or not. This is the same determinism contract the serving
// layer already guarantees per replica.

// sampleSeed returns the i-th output of a splitmix64 stream seeded with
// base: splitmix64 advances its state by the golden-ratio increment per
// draw, so output i is a pure function of base and i with no stepping.
func sampleSeed(base uint64, i int64) uint64 {
	z := base + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SampleBatch draws count RR sets with uniformly random roots and appends
// them to store, fanning the work out over workers goroutines (values < 1
// mean GOMAXPROCS; a single worker samples inline with no goroutines). The
// store contents are byte-identical for any worker count given the same
// baseSeed.
//
// poll and account stand in for a core.Context (which this package cannot
// import): poll, when non-nil, is consulted between samples — serially, or
// from the supervising goroutine while workers run — and its error aborts
// the batch; account, when non-nil, is charged interim arena deltas during
// sampling and reconciled on return so that, on success, the total charged
// equals the growth of store.Bytes(). Both callbacks are only ever invoked
// from the calling goroutine, so single-threaded budget state is safe.
//
// The receiver's scratch state is used by the serial path only; its
// ArcsTraversed counter aggregates the whole batch either way. Returns the
// number of sets actually appended (== count unless poll aborted).
func (s *RRSampler) SampleBatch(store *graphalgo.SetStore, count int64, baseSeed uint64, workers int, poll func() error, account func(delta int64)) (int64, error) {
	return s.sampleBatchAt(store, 0, count, baseSeed, workers, poll, account)
}

// sampleBatchAt is SampleBatch generalized to a global index window: it
// draws samples first..first+count-1 of the baseSeed stream. Because sample
// i's RNG stream depends only on (baseSeed, i), a sequence of window calls
// covering [0, θ) yields exactly the sets one SampleBatch(θ) call would —
// the streaming sampler's determinism reduces to the batch sampler's.
func (s *RRSampler) sampleBatchAt(store *graphalgo.SetStore, first, count int64, baseSeed uint64, workers int, poll func() error, account func(delta int64)) (int64, error) {
	if count <= 0 {
		return 0, nil
	}
	workers = sched.Workers(count, workers)
	entryBytes := store.Bytes()
	charged := int64(0)
	charge := func(target int64) {
		if account != nil && target != charged {
			account(target - charged)
			charged = target
		}
	}

	if workers == 1 {
		added, err := s.sampleRange(store, first, first+count, baseSeed, poll, nil, func() {
			charge(store.Bytes() - entryBytes)
		})
		charge(store.Bytes() - entryBytes)
		return added, err
	}

	// Parallel path: work stealing over global sample indexes, private
	// shards, index-ordered segment merge. A segment records which global
	// range [lo, lo+n) a worker processed and where in its shard the
	// corresponding sets start; stealing can hand a worker discontiguous
	// ranges in any order, and the sort below erases that history.
	type segment struct {
		lo, n  int64
		worker int32
		setOff int
	}
	// Per-worker state is padded to the cache-line stride: shard appends
	// mutate the slice headers at a very high rate, and false sharing
	// between neighbouring workers' headers is exactly the contention the
	// stealing executor is meant to remove.
	type wstate struct {
		sampler *RRSampler
		shard   *graphalgo.SetStore
		segs    []segment
		_       [64 - 40]byte
	}
	states := make([]wstate, workers)
	var (
		produced atomic.Int64 // elements sampled so far, across workers
		stop     atomic.Bool  // cooperative abort flag set by the supervisor
	)
	body := func(w int, lo, hi int64) {
		st := &states[w]
		if st.sampler == nil {
			// Lazily created on the worker's own goroutine (sched's
			// affinity guarantee): a retired worker never pays for scratch.
			st.sampler = NewRRSampler(s.g, s.model)
			st.shard = graphalgo.NewSetStore()
		}
		st.segs = append(st.segs, segment{lo: lo, n: hi - lo, worker: int32(w), setOff: st.shard.Len()})
		_, _ = st.sampler.sampleRange(st.shard, first+lo, first+hi, baseSeed, nil, &stop, func() {
			produced.Add(int64(len(st.shard.Set(st.shard.Len() - 1))))
		})
	}
	// The supervisor polls from the calling goroutine: charge interim
	// memory and consult the budget while workers run, so a budgeted build
	// crashes (or DNFs) mid-sampling exactly like the serial path does.
	var pollFn func() error
	if poll != nil || account != nil {
		pollFn = func() error {
			charge(produced.Load() * 4) // interim estimate: 4 bytes per sampled element
			if poll != nil {
				if err := poll(); err != nil {
					stop.Store(true)
					return err
				}
			}
			return nil
		}
	}
	runErr := func() (err error) {
		// A panic in the sampling kernel is re-raised by sched.Run on this
		// goroutine; zero the interim charges first so the accounted figure
		// tracks resident memory when the resilience layer records the
		// Panicked cell.
		defer func() {
			if p := recover(); p != nil {
				charge(0)
				panic(p)
			}
		}()
		return sched.Run(count, sched.Options{Workers: workers, Chunk: s.StealChunk, Poll: pollFn}, body)
	}()
	for i := range states {
		if states[i].sampler != nil {
			s.ArcsTraversed += states[i].sampler.ArcsTraversed
		}
	}
	if runErr != nil {
		// Shards are discarded; reconcile the interim charges away so the
		// accounted figure tracks resident memory (the peak was already
		// captured by the runner's memory sampler for the memory plots).
		charge(0)
		return 0, runErr
	}

	var all []segment
	var sets int
	var elems int64
	for w := range states {
		all = append(all, states[w].segs...)
		if states[w].shard != nil {
			sets += states[w].shard.Len()
			elems += states[w].shard.NumElems()
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lo < all[j].lo })
	store.Grow(sets, elems)
	for _, seg := range all {
		store.AppendRange(states[seg.worker].shard, seg.setOff, seg.setOff+int(seg.n))
	}
	charge(store.Bytes() - entryBytes)
	return int64(sets), nil
}

// sampleRange draws samples [lo, hi) of the batch into store. poll (serial
// path) is consulted per sample; stop (parallel path) is a cheap abort flag
// checked per sample; onAppend, when non-nil, runs after every append.
func (s *RRSampler) sampleRange(store *graphalgo.SetStore, lo, hi int64, baseSeed uint64, poll func() error, stop *atomic.Bool, onAppend func()) (int64, error) {
	buf := make([]graph.NodeID, 0, 256)
	n := s.g.N()
	added := int64(0)
	for i := lo; i < hi; i++ {
		if poll != nil {
			if err := poll(); err != nil {
				return added, err
			}
		}
		if stop != nil && stop.Load() {
			return added, nil
		}
		r := rng.New(sampleSeed(baseSeed, i))
		root := graph.NodeID(r.Int31n(n))
		buf = s.Sample(root, r, buf[:0])
		store.Append(buf)
		added++
		if onAppend != nil {
			onAppend()
		}
	}
	return added, nil
}
