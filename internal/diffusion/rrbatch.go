package diffusion

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/rng"
)

// Deterministic parallel RR-set sampling
//
// The serve oracle build and every TIM+/IMM/SSA run are sampling-bound:
// drawing θ independent RR sets dominates end-to-end time (paper §5.3.1).
// The samples are embarrassingly parallel, but naive parallelism breaks the
// platform's reproducibility contract (one seed → one result, any machine).
//
// SampleBatch keeps both: sample i of a batch always consumes the random
// stream rng.New(sampleSeed(baseSeed, i)) — the i-th splitmix64 output of
// baseSeed, computable in O(1) — regardless of which worker draws it.
// Workers take contiguous index ranges, write into private SetStore shards,
// and the shards merge in worker-index order, so the resulting store is
// byte-identical for any worker count. This is the same determinism
// contract the serving layer already guarantees per replica.

// sampleSeed returns the i-th output of a splitmix64 stream seeded with
// base: splitmix64 advances its state by the golden-ratio increment per
// draw, so output i is a pure function of base and i with no stepping.
func sampleSeed(base uint64, i int64) uint64 {
	z := base + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SampleBatch draws count RR sets with uniformly random roots and appends
// them to store, fanning the work out over workers goroutines (values < 1
// mean GOMAXPROCS; a single worker samples inline with no goroutines). The
// store contents are byte-identical for any worker count given the same
// baseSeed.
//
// poll and account stand in for a core.Context (which this package cannot
// import): poll, when non-nil, is consulted between samples — serially, or
// from the supervising goroutine while workers run — and its error aborts
// the batch; account, when non-nil, is charged interim arena deltas during
// sampling and reconciled on return so that, on success, the total charged
// equals the growth of store.Bytes(). Both callbacks are only ever invoked
// from the calling goroutine, so single-threaded budget state is safe.
//
// The receiver's scratch state is used by the serial path only; its
// ArcsTraversed counter aggregates the whole batch either way. Returns the
// number of sets actually appended (== count unless poll aborted).
func (s *RRSampler) SampleBatch(store *graphalgo.SetStore, count int64, baseSeed uint64, workers int, poll func() error, account func(delta int64)) (int64, error) {
	return s.sampleBatchAt(store, 0, count, baseSeed, workers, poll, account)
}

// sampleBatchAt is SampleBatch generalized to a global index window: it
// draws samples first..first+count-1 of the baseSeed stream. Because sample
// i's RNG stream depends only on (baseSeed, i), a sequence of window calls
// covering [0, θ) yields exactly the sets one SampleBatch(θ) call would —
// the streaming sampler's determinism reduces to the batch sampler's.
func (s *RRSampler) sampleBatchAt(store *graphalgo.SetStore, first, count int64, baseSeed uint64, workers int, poll func() error, account func(delta int64)) (int64, error) {
	if count <= 0 {
		return 0, nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > count {
		workers = int(count)
	}
	entryBytes := store.Bytes()
	charged := int64(0)
	charge := func(target int64) {
		if account != nil && target != charged {
			account(target - charged)
			charged = target
		}
	}

	if workers == 1 {
		added, err := s.sampleRange(store, first, first+count, baseSeed, poll, nil, func() {
			charge(store.Bytes() - entryBytes)
		})
		charge(store.Bytes() - entryBytes)
		return added, err
	}

	// Parallel path: contiguous chunks, private shards, ordered merge.
	var (
		produced atomic.Int64 // elements sampled so far, across workers
		stop     atomic.Bool  // cooperative abort flag set by the supervisor
		panicked atomic.Pointer[any]
		wg       sync.WaitGroup
	)
	chunk := (count + int64(workers) - 1) / int64(workers)
	shards := make([]*graphalgo.SetStore, 0, workers)
	samplers := make([]*RRSampler, 0, workers)
	for w := 0; w < workers; w++ {
		lo := first + int64(w)*chunk
		hi := lo + chunk
		if hi > first+count {
			hi = first + count
		}
		if lo >= hi {
			break
		}
		shard := graphalgo.NewSetStore()
		worker := NewRRSampler(s.g, s.model)
		shards = append(shards, shard)
		samplers = append(samplers, worker)
		wg.Add(1)
		go func(worker *RRSampler, shard *graphalgo.SetStore, lo, hi int64) {
			defer wg.Done()
			// A panic in the sampling kernel must surface on the calling
			// goroutine, where the resilience layer's supervisor can turn
			// it into a Panicked cell instead of crashing the process.
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, &p)
					stop.Store(true)
				}
			}()
			_, _ = worker.sampleRange(shard, lo, hi, baseSeed, nil, &stop, func() {
				produced.Add(int64(len(shard.Set(shard.Len() - 1))))
			})
		}(worker, shard, lo, hi)
	}

	// Supervise from the calling goroutine: charge interim memory and poll
	// the budget while the workers run, so a budgeted build crashes (or
	// DNFs) mid-sampling exactly like the serial path does.
	done := make(chan struct{})
	//imlint:ignore gosupervise closing a channel after Wait cannot panic; recover would hide nothing
	go func() {
		wg.Wait()
		close(done)
	}()
	var pollErr error
	ticker := time.NewTicker(200 * time.Microsecond)
	defer ticker.Stop()
supervise:
	for {
		select {
		case <-done:
			break supervise
		case <-ticker.C:
			charge(produced.Load() * 4) // interim estimate: 4 bytes per sampled element
			if poll != nil && pollErr == nil {
				if pollErr = poll(); pollErr != nil {
					stop.Store(true)
				}
			}
		}
	}
	if p := panicked.Load(); p != nil {
		charge(0)
		panic(*p)
	}
	for _, worker := range samplers {
		s.ArcsTraversed += worker.ArcsTraversed
	}
	if pollErr != nil {
		// Shards are discarded; reconcile the interim charges away so the
		// accounted figure tracks resident memory (the peak was already
		// captured by the runner's memory sampler for the memory plots).
		charge(0)
		return 0, pollErr
	}

	var sets int
	var elems int64
	for _, shard := range shards {
		sets += shard.Len()
		elems += shard.NumElems()
	}
	store.Grow(sets, elems)
	for _, shard := range shards {
		store.AppendStore(shard)
	}
	charge(store.Bytes() - entryBytes)
	return int64(sets), nil
}

// sampleRange draws samples [lo, hi) of the batch into store. poll (serial
// path) is consulted per sample; stop (parallel path) is a cheap abort flag
// checked per sample; onAppend, when non-nil, runs after every append.
func (s *RRSampler) sampleRange(store *graphalgo.SetStore, lo, hi int64, baseSeed uint64, poll func() error, stop *atomic.Bool, onAppend func()) (int64, error) {
	buf := make([]graph.NodeID, 0, 256)
	n := s.g.N()
	added := int64(0)
	for i := lo; i < hi; i++ {
		if poll != nil {
			if err := poll(); err != nil {
				return added, err
			}
		}
		if stop != nil && stop.Load() {
			return added, nil
		}
		r := rng.New(sampleSeed(baseSeed, i))
		root := graph.NodeID(r.Int31n(n))
		buf = s.Sample(root, r, buf[:0])
		store.Append(buf)
		added++
		if onAppend != nil {
			onAppend()
		}
	}
	return added, nil
}
