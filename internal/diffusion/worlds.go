package diffusion

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/sched"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Batched common-world spread evaluation
//
// The decoupled Spread evaluator (paper Alg. 1, §5.1) is the platform's
// dominant fixed cost: every benchmark cell pays EvalSims (paper: 10,000)
// full forward simulations, so a 9-point k-sweep re-simulates ~90k cascades
// over heavily overlapping seed sets. Kempe et al.'s live-edge
// characterization — already exploited by the RR-set and snapshot substrates
// — says a sampled world is just a deterministic subgraph, so MANY seed sets
// can be evaluated against the SAME worlds, and a chain S_1 ⊂ S_2 ⊂ … (as
// produced by greedy/CELF/RR selections across a k-sweep) costs one
// incremental frontier extension per world instead of one full pass per set.
//
// A WorldEvaluator fixes R worlds for (graph, model, seed). World w is never
// materialized: its coins are O(1) arc-indexed functions — the arcIndex-th
// splitmix64 output of the world's seed, exactly the indexed-stream scheme
// of the parallel RR sampler (rrbatch.go). Because a coin depends only on
// (worldSeed, arcIndex), every seed set observes byte-identical worlds
// regardless of traversal order, which gives three properties at once:
//
//   - incremental chain evaluation is EXACT (equal to evaluating each set
//     from scratch on the same worlds — generalizing Simulator.RunTwoPhase
//     from two phases to N);
//   - evaluation parallelizes over worlds with a deterministic world-order
//     merge, so the Estimate is bit-identical for any worker count at a
//     fixed seed (the PR-4 SampleBatch contract);
//   - two algorithms evaluated on the same cell share worlds — common
//     random numbers — so their per-world spreads support paired-difference
//     comparison with far smaller variance than independent estimates.
//
// The world semantics mirror liveedge.go: under IC, arc a is live iff
// coin(worldSeed, a) < weight(a); under LT, node v selects at most one
// incoming arc with a single uniform draw keyed on M+v (domain-separated
// from the arc indices). Reachability from the seed set over live/selected
// arcs is distributed exactly as the forward cascade.

// worldSeed returns the seed of world w: the w-th indexed splitmix64 output
// of the evaluator seed.
func worldSeed(base uint64, w int) uint64 { return sampleSeed(base, int64(w)) }

// worldCoin returns a uniform [0,1) draw that is a pure function of
// (worldSeed, index): the index-th splitmix64 output of worldSeed, mapped to
// [0,1) exactly like rng.Source.Float64.
func worldCoin(worldSeed uint64, index int64) float64 {
	return float64(sampleSeed(worldSeed, index)>>11) / (1 << 53)
}

// WorldEvaluator evaluates spread against R fixed live-edge worlds. It is
// immutable and safe for concurrent use; each EvalBatch call allocates its
// own scratch (one simulator per worker).
type WorldEvaluator struct {
	g      graph.G
	model  weights.Model
	worlds int
	seed   uint64
}

// NewWorldEvaluator fixes worlds live-edge worlds over g under the given
// model, all derived from seed. Two evaluators with identical (g, model,
// worlds, seed) observe identical worlds, so spreads computed by separate
// calls — even separate processes — are directly comparable world by world.
func NewWorldEvaluator(g graph.G, model weights.Model, worlds int, seed uint64) *WorldEvaluator {
	if worlds <= 0 {
		worlds = 1
	}
	return &WorldEvaluator{g: g, model: model, worlds: worlds, seed: seed}
}

// Worlds returns the number of fixed worlds R.
func (e *WorldEvaluator) Worlds() int { return e.worlds }

// Seed returns the evaluator seed the worlds derive from.
func (e *WorldEvaluator) Seed() uint64 { return e.seed }

// BatchOptions tunes one EvalBatch call. The zero value is valid: all
// available cores, no polling, no accounting, estimates only.
type BatchOptions struct {
	// Workers parallelizes over worlds (< 1 means GOMAXPROCS). The results
	// are bit-identical for any value: the sched executor steals world
	// index ranges, workers write into disjoint world-keyed slots of one
	// spread matrix, and the reduction walks worlds sequentially
	// afterwards — which worker simulated a world never matters.
	Workers int
	// Chunk overrides the work-stealing claim granularity in worlds (0 =
	// automatic; see sched.Options.Chunk). Results are bit-identical for
	// any value.
	Chunk int64
	// Poll, when non-nil, is consulted between worlds (serially, or from
	// the supervising goroutine while workers run); its error aborts the
	// batch. Only ever invoked from the calling goroutine.
	Poll func() error
	// Account, when non-nil, is charged the batch's scratch memory (spread
	// matrix + per-worker simulator state) up front and reconciled on
	// return to the retained bytes (the per-world matrix when KeepPerWorld,
	// zero otherwise), so memory-budgeted runs crash faithfully mid-batch.
	// Only ever invoked from the calling goroutine.
	Account func(delta int64)
	// KeepPerWorld retains each set's per-world spreads in BatchResult for
	// common-random-numbers comparisons (see PairedDiff).
	KeepPerWorld bool
}

// BatchResult is the evaluation of one seed set of a batch.
type BatchResult struct {
	// Estimate aggregates the set's spread over the R shared worlds.
	Estimate Estimate
	// PerWorld is the spread observed in each world, in world order; nil
	// unless BatchOptions.KeepPerWorld was set. Two sets evaluated against
	// the same evaluator seed can be compared world by world (PairedDiff).
	PerWorld []int32
	// EvalTime is the simulation time attributed to this set: the summed
	// cost of its incremental frontier extensions across all worlds and
	// workers. Chain reuse makes the attributed times of a sweep sum to
	// roughly one full pass instead of one pass per cell.
	EvalTime time.Duration
	// Chain and ChainPos locate the set in the detected prefix-chain
	// partition: sets in the same chain were evaluated incrementally.
	Chain, ChainPos int
}

// EvalBatch evaluates every seed set against the shared worlds, detecting
// prefix chains (set A precedes set B when A equals B's selection-order
// prefix) and evaluating each chain with one incremental frontier extension
// per world. Results are returned in input order and are bit-identical for
// any worker count.
func (e *WorldEvaluator) EvalBatch(sets [][]graph.NodeID, opt BatchOptions) ([]BatchResult, error) {
	m := len(sets)
	if m == 0 {
		return nil, nil
	}
	r := e.worlds
	workers := sched.Workers(int64(r), opt.Workers)

	chains := detectChains(sets)
	results := make([]BatchResult, m)
	for c, chain := range chains {
		for pos, idx := range chain {
			results[idx].Chain, results[idx].ChainPos = c, pos
		}
	}

	// One flat spread matrix, rows in world order: workers fill disjoint
	// column ranges and the reduction below walks worlds sequentially, so
	// float summation order — hence the Estimate — never depends on the
	// worker count.
	spreads := make([]int32, m*r)
	nanos := make([]int64, m)

	charged := int64(0)
	charge := func(target int64) {
		if opt.Account != nil && target != charged {
			opt.Account(target - charged)
			charged = target
		}
	}
	matrixBytes := int64(m) * int64(r) * 4
	charge(matrixBytes + int64(workers)*worldScratchBytes(e.g.N(), e.model))

	var err error
	if workers == 1 {
		err = e.evalWorlds(newWorldSim(e.g, e.model), sets, chains, 0, r, spreads, nanos, opt.Poll, nil, nil)
	} else {
		err = e.evalParallel(sets, chains, spreads, nanos, workers, opt.Chunk, opt.Poll)
	}
	if err != nil {
		// The batch is discarded; reconcile the scratch charges away so the
		// accounted figure tracks resident memory again.
		charge(0)
		return nil, err
	}

	for i := range results {
		row := spreads[i*r : (i+1)*r : (i+1)*r]
		var sum, sumSq float64
		for _, sp := range row {
			f := float64(sp)
			sum += f
			sumSq += f * f
		}
		results[i].Estimate = finishEstimate(sum, sumSq, r)
		results[i].EvalTime = time.Duration(nanos[i])
		if opt.KeepPerWorld {
			results[i].PerWorld = row
		}
	}
	if opt.KeepPerWorld {
		charge(matrixBytes)
	} else {
		charge(0)
	}
	return results, nil
}

// Evaluate is the single-set convenience form of EvalBatch.
func (e *WorldEvaluator) Evaluate(seeds []graph.NodeID, workers int) Estimate {
	res, err := e.EvalBatch([][]graph.NodeID{seeds}, BatchOptions{Workers: workers})
	if err != nil { // unreachable: no Poll means no abort path
		panic(err)
	}
	return res[0].Estimate
}

// PairedDiff returns the common-random-numbers estimate of σ(B) − σ(A): the
// mean and standard error of the per-world spread difference b−a. Both
// results must carry per-world spreads (KeepPerWorld) from evaluators with
// identical worlds; PairedDiff reports an error otherwise. Because the two
// sets observed the same worlds, the difference variance excludes the shared
// world-to-world variation, which is what makes cross-algorithm comparisons
// on one cell resolvable at far fewer worlds.
func PairedDiff(a, b BatchResult) (mean, stderr float64, err error) {
	if a.PerWorld == nil || b.PerWorld == nil {
		return 0, 0, fmt.Errorf("diffusion: PairedDiff needs per-world spreads (set BatchOptions.KeepPerWorld)")
	}
	if len(a.PerWorld) != len(b.PerWorld) {
		return 0, 0, fmt.Errorf("diffusion: PairedDiff world counts differ (%d vs %d)", len(a.PerWorld), len(b.PerWorld))
	}
	var sum, sumSq float64
	for w := range a.PerWorld {
		d := float64(b.PerWorld[w] - a.PerWorld[w])
		sum += d
		sumSq += d * d
	}
	est := finishEstimate(sum, sumSq, len(a.PerWorld))
	return est.Mean, est.StdErr, nil
}

// detectChains partitions the batch into prefix chains: processing sets in
// non-decreasing length order, each set joins the chain whose tail is its
// longest selection-order prefix, or starts a new chain. A k-sweep's greedy
// selections collapse into one chain; unrelated sets become singleton chains
// and still share the worlds.
func detectChains(sets [][]graph.NodeID) [][]int {
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(sets[order[a]]) < len(sets[order[b]]) })
	var chains [][]int
	for _, idx := range order {
		best, bestLen := -1, -1
		for c, chain := range chains {
			tail := sets[chain[len(chain)-1]]
			if len(tail) > bestLen && isListPrefix(tail, sets[idx]) {
				best, bestLen = c, len(tail)
			}
		}
		if best >= 0 {
			chains[best] = append(chains[best], idx)
		} else {
			chains = append(chains, []int{idx})
		}
	}
	return chains
}

// isListPrefix reports whether a equals b's leading len(a) elements. Order
// matters: chains follow selection order, matching how greedy-style sweeps
// extend their seed lists.
func isListPrefix(a, b []graph.NodeID) bool {
	if len(a) > len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// evalWorlds evaluates worlds [lo, hi) serially on sim, writing each set's
// spread into column w of the matrix and accumulating per-set simulation
// nanoseconds. poll (serial path) aborts the batch; stop (parallel path) is
// the supervisor's cheap abort flag and progress its per-world completion
// signal (non-blocking: a full buffer means the supervisor is already awake).
func (e *WorldEvaluator) evalWorlds(sim *worldSim, sets [][]graph.NodeID, chains [][]int, lo, hi int, spreads []int32, nanos []int64, poll func() error, stop *atomic.Bool, progress chan<- struct{}) error {
	r := e.worlds
	for w := lo; w < hi; w++ {
		if poll != nil {
			if err := poll(); err != nil {
				return err
			}
		}
		if stop != nil && stop.Load() {
			return nil
		}
		if progress != nil {
			select {
			case progress <- struct{}{}:
			default:
			}
		}
		sim.setWorld(worldSeed(e.seed, w))
		for _, chain := range chains {
			sim.begin()
			prefix := 0
			for _, idx := range chain {
				set := sets[idx]
				t0 := time.Now()
				sp := sim.extend(set[prefix:])
				nanos[idx] += int64(time.Since(t0))
				spreads[idx*r+w] = sp
				prefix = len(set)
			}
		}
	}
	return nil
}

// evalParallel fans the world range out through the sched work-stealing
// executor: cascade cost varies wildly across worlds (a world whose coins
// percolate the giant component costs orders of magnitude more than one
// that quenches every frontier), so static contiguous chunks leave workers
// idle behind the unlucky one. Workers write disjoint world-keyed matrix
// slots and private nano counters (summed afterwards — integer addition,
// order-independent); sched supervises from the calling goroutine: it runs
// Poll there, re-raises worker panics after the join, and the shared stop
// flag aborts mid-chunk at world granularity. Poll cadence is driven by
// per-world progress signals rather than wall-clock alone: a pure ticker
// delivers almost no ticks on a loaded or race-instrumented runtime, which
// would let a failing Poll slip past a short batch entirely.
func (e *WorldEvaluator) evalParallel(sets [][]graph.NodeID, chains [][]int, spreads []int32, nanos []int64, workers int, chunk int64, poll func() error) error {
	var stop atomic.Bool
	// Per-worker scratch, padded to the cache-line stride and created
	// lazily on the worker's own goroutine (sched's affinity guarantee).
	type wscratch struct {
		sim   *worldSim
		local []int64
		_     [64 - 32]byte
	}
	scratch := make([]wscratch, workers)
	progress := make(chan struct{}, 1)
	body := func(w int, lo, hi int64) {
		sc := &scratch[w]
		if sc.sim == nil {
			sc.sim = newWorldSim(e.g, e.model)
			sc.local = make([]int64, len(sets))
		}
		_ = e.evalWorlds(sc.sim, sets, chains, int(lo), int(hi), spreads, sc.local, nil, &stop, progress)
	}
	var pollFn func() error
	if poll != nil {
		pollFn = func() error {
			if err := poll(); err != nil {
				stop.Store(true)
				return err
			}
			return nil
		}
	}
	if err := sched.Run(int64(e.worlds), sched.Options{Workers: workers, Chunk: chunk, Poll: pollFn, Progress: progress}, body); err != nil {
		return err
	}
	for i := range nanos {
		for w := range scratch {
			if scratch[w].local != nil {
				nanos[i] += scratch[w].local[i]
			}
		}
	}
	return nil
}

// worldScratchBytes upper-bounds one worldSim's resident scratch: the mark
// bitset plus the (at most n-long) frontier queue, and for LT the per-world
// arc-choice cache. Charged per worker by EvalBatch.
func worldScratchBytes(n int32, model weights.Model) int64 {
	b := int64(n)/8 + int64(n)*4 // mark bitset (n/8) + queue capacity bound (4n)
	if model == weights.LT {
		b += int64(n) * 8 // ltStamp (4n) + ltChosen (4n)
	}
	return b
}

// worldSim simulates cascades inside fixed coin-indexed worlds. It reuses
// per-sim scratch and is not safe for concurrent use; EvalBatch creates one
// per worker.
type worldSim struct {
	g     graph.G
	model weights.Model
	m     int64 // arc count: LT node draws are keyed on m+v

	worldSeed uint64

	// Active-set membership is a word-packed bitset (the frontier test is
	// the hottest load of the cascade loop; one bit per node touches 32×
	// fewer cache lines than the uint32 epoch stamps it replaced). queue
	// holds every active node of the current chain — it is both the
	// processed/unprocessed frontier split (the head index in extend*) and
	// the cumulative active list, so its length IS the cumulative spread —
	// and doubles as the incremental clear list: begin unmarks the previous
	// chain's members in O(spread) instead of O(n).
	mark  graphalgo.Bitset
	queue []graph.NodeID

	// LT arc choices, stamped per world: chosen[v] is v's selected
	// in-neighbor in the current world (-1 = none), computed lazily on
	// first probe and valid for every chain evaluated in the world. These
	// stay epoch-stamped (not a bitset): the probes are sparse and random-
	// order, so there is no member list to replay for an incremental clear,
	// and an O(n) clear per world would swamp small-cascade worlds.
	ltStamp    []uint32
	ltChosen   []graph.NodeID
	worldEpoch uint32
}

func newWorldSim(g graph.G, model weights.Model) *worldSim {
	g = graph.View(g) // private decode buffers: one worldSim per worker
	n := g.N()
	s := &worldSim{
		g:     g,
		model: model,
		m:     g.M(),
		mark:  graphalgo.NewBitset(int(n)),
		queue: make([]graph.NodeID, 0, 1024),
	}
	if model == weights.LT {
		s.ltStamp = make([]uint32, n)
		s.ltChosen = make([]graph.NodeID, n)
	}
	return s
}

// setWorld switches to the world drawn from seed, invalidating the LT
// choice cache.
func (s *worldSim) setWorld(seed uint64) {
	s.worldSeed = seed
	if s.ltStamp != nil {
		s.worldEpoch++
		if s.worldEpoch == 0 { // wrapped: reset stamps once every 2^32 worlds
			for i := range s.ltStamp {
				s.ltStamp[i] = 0
			}
			s.worldEpoch = 1
		}
	}
}

// begin starts a fresh chain in the current world: empty active set. The
// previous chain's marks are cleared by replaying its queue — O(spread),
// not O(n).
func (s *worldSim) begin() {
	for _, v := range s.queue {
		s.mark.Clear(int(v))
	}
	s.queue = s.queue[:0]
}

// extend activates the given seeds on top of the chain's current active set
// and runs the frontier to quiescence, returning the CUMULATIVE spread
// Γ(all seeds so far). Exact by the live-edge view: reachability in a fixed
// subgraph is monotone under seed union, so extending from the new seeds
// alone equals re-running the full set from scratch.
func (s *worldSim) extend(seeds []graph.NodeID) int32 {
	head := len(s.queue)
	for _, v := range seeds {
		if s.mark.Test(int(v)) {
			continue // duplicate or already activated by an earlier phase
		}
		s.mark.Set(int(v))
		s.queue = append(s.queue, v)
	}
	switch s.model {
	case weights.IC:
		s.extendIC(head)
	case weights.LT:
		s.extendLT(head)
	default:
		panic(fmt.Sprintf("diffusion: unknown model %v", s.model))
	}
	return int32(len(s.queue))
}

// extendIC processes the frontier from queue index head: arc a=(u,v) is
// live iff its indexed coin clears the arc weight.
func (s *worldSim) extendIC(head int) {
	g := s.g
	for ; head < len(s.queue); head++ {
		u := s.queue[head]
		to, w := g.OutNeighbors(u)
		base := g.OutArcBase(u)
		for i, v := range to {
			if s.mark.Test(int(v)) {
				continue
			}
			if worldCoin(s.worldSeed, base+int64(i)) < w[i] {
				s.mark.Set(int(v))
				s.queue = append(s.queue, v)
			}
		}
	}
}

// extendLT processes the frontier from queue index head: v activates when
// its in-arc choice for this world points at an active node.
func (s *worldSim) extendLT(head int) {
	g := s.g
	for ; head < len(s.queue); head++ {
		u := s.queue[head]
		to, _ := g.OutNeighbors(u)
		for _, v := range to {
			if s.mark.Test(int(v)) {
				continue
			}
			if s.chosenIn(v) == u {
				s.mark.Set(int(v))
				s.queue = append(s.queue, v)
			}
		}
	}
}

// chosenIn returns v's selected in-neighbor in the current world (-1 when v
// selects no arc), computing it lazily from one node-indexed draw: the
// in-arc whose cumulative weight first exceeds the draw, exactly the
// RRSampler.pickOneIn scan. With parallel arcs the choice lands on a
// specific arc, but activation only needs the arc's source.
func (s *worldSim) chosenIn(v graph.NodeID) graph.NodeID {
	if s.ltStamp[v] != s.worldEpoch {
		s.ltStamp[v] = s.worldEpoch
		s.ltChosen[v] = -1
		from, w := s.g.InNeighbors(v)
		x := worldCoin(s.worldSeed, s.m+int64(v))
		acc := 0.0
		for i, u := range from {
			acc += w[i]
			if x < acc {
				s.ltChosen[v] = u
				break
			}
		}
	}
	return s.ltChosen[v]
}
