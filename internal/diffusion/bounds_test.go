package diffusion

import (
	"testing"
	"testing/quick"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// reachableCount BFSes the full (every-arc) graph from seeds.
func reachableCount(g *graph.Graph, seeds []graph.NodeID) int32 {
	seen := make(map[graph.NodeID]bool)
	var stack []graph.NodeID
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		to, _ := g.OutNeighbors(u)
		for _, v := range to {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return int32(len(seen))
}

// TestSpreadBounds: for any run, |S| ≤ Γ(S) ≤ |reachable(S)| — activation
// can never exceed graph reachability nor fall below the seed count.
func TestSpreadBounds(t *testing.T) {
	check := func(seed uint64, rawN, rawM, rawS uint8, useLT bool) bool {
		n := int32(rawN%25) + 3
		m := int(rawM % 80)
		r := rng.New(seed)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
			if u != v {
				_ = b.AddEdge(u, v, 1)
			}
		}
		raw := b.BuildSimple()
		var g *graph.Graph
		var model weights.Model
		if useLT {
			g = weights.LTUniform{}.Apply(raw).(*graph.Graph)
			model = weights.LT
		} else {
			g = weights.WeightedCascade{}.Apply(raw).(*graph.Graph)
			model = weights.IC
		}
		numSeeds := int(rawS%3) + 1
		seedSet := make([]graph.NodeID, 0, numSeeds)
		seen := map[graph.NodeID]bool{}
		for len(seedSet) < numSeeds {
			v := graph.NodeID(r.Int31n(n))
			if !seen[v] {
				seen[v] = true
				seedSet = append(seedSet, v)
			}
		}
		sim := NewSimulator(g, model)
		upper := reachableCount(g, seedSet)
		for i := 0; i < 20; i++ {
			sp := sim.Run(seedSet, rng.New(seed+uint64(i)))
			if sp < int32(numSeeds) || sp > upper {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReverseTwiceIdentity: Reverse∘Reverse preserves every arc and weight.
func TestReverseTwiceIdentity(t *testing.T) {
	g := randomWCGraph(97, 25, 120)
	rr := g.Reverse().Reverse()
	if rr.N() != g.N() || rr.M() != g.M() {
		t.Fatal("double reverse changed size")
	}
	for _, e := range g.Edges() {
		w, ok := rr.Weight(e.From, e.To)
		if !ok || w != e.Weight {
			t.Fatalf("arc (%d,%d) lost or reweighted: %v %v", e.From, e.To, w, ok)
		}
	}
}

// TestRRSamplerMatchesReverseSimulation: an RR set rooted at v under IC is
// distributed as the set of nodes whose forward cascade would reach v; we
// verify via the unbiasedness identity restricted to singletons:
// P(u ∈ RR(v)) = P(v ∈ cascade(u)).
func TestRRSamplerSingletonIdentity(t *testing.T) {
	g := randomWCGraph(99, 15, 60)
	const trials = 30000
	u, v := graph.NodeID(2), graph.NodeID(11)
	// P(u ∈ RR(v)).
	s := NewRRSampler(g, weights.IC)
	r := rng.New(7)
	hit := 0
	var buf []graph.NodeID
	for i := 0; i < trials; i++ {
		buf = s.Sample(v, r, buf[:0])
		for _, x := range buf {
			if x == u {
				hit++
				break
			}
		}
	}
	pRR := float64(hit) / trials
	// P(v active | seed u).
	sim := NewSimulator(g, weights.IC)
	r2 := rng.New(8)
	act := 0
	for i := 0; i < trials; i++ {
		var got []graph.NodeID
		_, got = sim.RunCollect([]graph.NodeID{u}, r2, got[:0])
		for _, x := range got {
			if x == v {
				act++
				break
			}
		}
	}
	pFwd := float64(act) / trials
	if d := pRR - pFwd; d > 0.02 || d < -0.02 {
		t.Fatalf("P(u∈RR(v))=%v vs P(v∈cascade(u))=%v", pRR, pFwd)
	}
}
