package diffusion

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// prefixChainSets returns the k-sweep shape: prefixes of one selection
// order, deliberately out of length order to exercise chain detection.
func prefixChainSets(t *testing.T, g *graph.Graph, lens []int, seed uint64) [][]graph.NodeID {
	t.Helper()
	r := rng.New(seed)
	perm := r.Perm(int(g.N()))
	maxLen := 0
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
	}
	full := make([]graph.NodeID, maxLen)
	for i := range full {
		full[i] = graph.NodeID(perm[i])
	}
	sets := make([][]graph.NodeID, len(lens))
	for i, l := range lens {
		sets[i] = full[:l:l]
	}
	return sets
}

// TestEvalBatchChainEqualsPerSet is the core exactness property: evaluating
// a prefix chain incrementally must equal evaluating every set standalone on
// the same worlds, world by world, for both models.
func TestEvalBatchChainEqualsPerSet(t *testing.T) {
	g := randomWCGraph(3, 200, 900)
	for _, model := range []weights.Model{weights.IC, weights.LT} {
		ev := NewWorldEvaluator(g, model, 64, 11)
		sets := prefixChainSets(t, g, []int{5, 1, 9, 3, 7}, 5)
		// An unrelated set that shares no prefix: must land in its own chain
		// and still observe the same worlds.
		other := []graph.NodeID{g.N() - 1, g.N() - 2}
		sets = append(sets, other)
		batch, err := ev.EvalBatch(sets, BatchOptions{Workers: 1, KeepPerWorld: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, set := range sets {
			solo, err := ev.EvalBatch([][]graph.NodeID{set}, BatchOptions{Workers: 1, KeepPerWorld: true})
			if err != nil {
				t.Fatal(err)
			}
			for w := range solo[0].PerWorld {
				if batch[i].PerWorld[w] != solo[0].PerWorld[w] {
					t.Fatalf("model %v set %d world %d: batch %d standalone %d",
						model, i, w, batch[i].PerWorld[w], solo[0].PerWorld[w])
				}
			}
			if batch[i].Estimate != solo[0].Estimate {
				t.Fatalf("model %v set %d: estimates differ", model, i)
			}
		}
	}
}

// TestEvalBatchChainDetection pins the prefix-chain partition: the sweep
// prefixes share one chain in length order; the unrelated set is alone.
func TestEvalBatchChainDetection(t *testing.T) {
	g := randomWCGraph(3, 100, 400)
	sets := prefixChainSets(t, g, []int{5, 1, 9, 3, 7}, 5)
	sets = append(sets, []graph.NodeID{g.N() - 1, g.N() - 2})
	ev := NewWorldEvaluator(g, weights.IC, 4, 1)
	batch, err := ev.EvalBatch(sets, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	chainOf := batch[0].Chain
	wantPos := map[int]int{0: 2, 1: 0, 2: 4, 3: 1, 4: 3} // by length rank
	for i := 0; i < 5; i++ {
		if batch[i].Chain != chainOf {
			t.Fatalf("set %d in chain %d, want %d", i, batch[i].Chain, chainOf)
		}
		if batch[i].ChainPos != wantPos[i] {
			t.Fatalf("set %d at pos %d, want %d", i, batch[i].ChainPos, wantPos[i])
		}
	}
	if batch[5].Chain == chainOf || batch[5].ChainPos != 0 {
		t.Fatalf("unrelated set landed at chain %d pos %d", batch[5].Chain, batch[5].ChainPos)
	}
}

// TestEvalBatchMatchesEstimateSpread: the world evaluator and the forward
// MC estimator sample the same distribution, so at r=10k their estimates
// must overlap within ±3 combined standard errors (both models).
func TestEvalBatchMatchesEstimateSpread(t *testing.T) {
	g := randomWCGraph(7, 300, 1500)
	seeds := []graph.NodeID{0, 17, 42, 99, 123}
	const r = 10000
	for _, model := range []weights.Model{weights.IC, weights.LT} {
		world := NewWorldEvaluator(g, model, r, 21).Evaluate(seeds, 1)
		mc := NewSimulator(g, model).EstimateSpread(seeds, r, 22)
		tol := 3 * math.Sqrt(world.StdErr*world.StdErr+mc.StdErr*mc.StdErr)
		if diff := math.Abs(world.Mean - mc.Mean); diff > tol {
			t.Fatalf("model %v: world %v vs MC %v differ by %v > %v",
				model, world, mc, diff, tol)
		}
	}
}

// TestEvalBatchClosedFormLine pins the world semantics against the closed
// form on the 2-arc path: σ({0}) = 1 + p + p² under both models.
func TestEvalBatchClosedFormLine(t *testing.T) {
	for _, model := range []weights.Model{weights.IC, weights.LT} {
		for _, p := range []float64{0.2, 0.5, 0.9} {
			g := line(t, p)
			est := NewWorldEvaluator(g, model, 40000, 9).Evaluate([]graph.NodeID{0}, 1)
			want := 1 + p + p*p
			if math.Abs(est.Mean-want) > 4*est.StdErr+0.01 {
				t.Fatalf("model %v p=%v: σ=%v want %v (±%v)", model, p, est.Mean, want, est.StdErr)
			}
		}
	}
}

// TestEvalBatchDeterministicAcrossWorkers: the per-world spreads and the
// aggregated Estimate must be bit-identical for any worker count at a fixed
// seed — the determinism contract that makes parallel evaluation safe to
// enable everywhere.
func TestEvalBatchDeterministicAcrossWorkers(t *testing.T) {
	g := randomWCGraph(13, 250, 1100)
	sets := prefixChainSets(t, g, []int{1, 4, 8, 12}, 17)
	for _, model := range []weights.Model{weights.IC, weights.LT} {
		ev := NewWorldEvaluator(g, model, 500, 29)
		var ref []BatchResult
		for _, workers := range []int{1, 2, 8} {
			batch, err := ev.EvalBatch(sets, BatchOptions{Workers: workers, KeepPerWorld: true})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = batch
				continue
			}
			for i := range batch {
				if batch[i].Estimate != ref[i].Estimate {
					t.Fatalf("model %v workers=%d set %d: estimate %v != %v",
						model, workers, i, batch[i].Estimate, ref[i].Estimate)
				}
				for w := range batch[i].PerWorld {
					if batch[i].PerWorld[w] != ref[i].PerWorld[w] {
						t.Fatalf("model %v workers=%d set %d world %d differs",
							model, workers, i, w)
					}
				}
			}
		}
	}
}

// TestEvalBatchSharedWorldsAcrossCalls: separate EvalBatch calls on equal
// evaluator parameters observe identical worlds, so per-world spreads from
// different calls are directly comparable (cross-algorithm CRN).
func TestEvalBatchSharedWorldsAcrossCalls(t *testing.T) {
	g := randomWCGraph(19, 150, 700)
	a := []graph.NodeID{1, 2, 3}
	b := []graph.NodeID{4, 5, 6}
	together, err := NewWorldEvaluator(g, weights.IC, 200, 31).
		EvalBatch([][]graph.NodeID{a, b}, BatchOptions{Workers: 1, KeepPerWorld: true})
	if err != nil {
		t.Fatal(err)
	}
	sepA, err := NewWorldEvaluator(g, weights.IC, 200, 31).
		EvalBatch([][]graph.NodeID{a}, BatchOptions{Workers: 1, KeepPerWorld: true})
	if err != nil {
		t.Fatal(err)
	}
	for w := range sepA[0].PerWorld {
		if sepA[0].PerWorld[w] != together[0].PerWorld[w] {
			t.Fatalf("world %d: separate call saw %d, batched %d",
				w, sepA[0].PerWorld[w], together[0].PerWorld[w])
		}
	}
	mean, stderr, err := PairedDiff(together[0], together[1])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mean) || math.IsNaN(stderr) {
		t.Fatalf("paired diff %v ± %v", mean, stderr)
	}
}

func TestPairedDiffRequiresPerWorld(t *testing.T) {
	if _, _, err := PairedDiff(BatchResult{}, BatchResult{}); err == nil {
		t.Fatal("PairedDiff accepted results without per-world spreads")
	}
	a := BatchResult{PerWorld: make([]int32, 3)}
	b := BatchResult{PerWorld: make([]int32, 4)}
	if _, _, err := PairedDiff(a, b); err == nil {
		t.Fatal("PairedDiff accepted mismatched world counts")
	}
}

// TestEvalBatchAccounting: scratch is charged during the batch and
// reconciled on return — to zero when nothing is retained, to the matrix
// size when per-world spreads are kept.
func TestEvalBatchAccounting(t *testing.T) {
	g := randomWCGraph(23, 100, 400)
	sets := [][]graph.NodeID{{0}, {0, 1}}
	const r = 50
	for _, keep := range []bool{false, true} {
		ev := NewWorldEvaluator(g, weights.IC, r, 37)
		var net, peak int64
		_, err := ev.EvalBatch(sets, BatchOptions{
			Workers:      1,
			KeepPerWorld: keep,
			Account: func(delta int64) {
				net += delta
				if net > peak {
					peak = net
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if keep {
			want = int64(len(sets)) * r * 4
		}
		if net != want {
			t.Fatalf("keep=%v: net accounted %d want %d", keep, net, want)
		}
		if peak < int64(len(sets))*r*4 {
			t.Fatalf("keep=%v: peak %d never covered the spread matrix", keep, peak)
		}
	}
}

// TestEvalBatchPollAborts: a failing poll aborts the batch (serial and
// parallel paths) and reconciles interim memory charges away. The poll
// fails on its first call: the parallel supervisor's poll cadence depends
// on how often the scheduler runs the calling goroutine, so requiring N
// polls before the workers drain 5000 worlds is a race against the
// scheduler (and reliably lost under -race, where worker instrumentation
// starves the supervisor); one call is guaranteed by the progress-signal
// handshake for any batch that outlives the supervisor's first wakeup.
func TestEvalBatchPollAborts(t *testing.T) {
	g := randomWCGraph(23, 100, 400)
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		ev := NewWorldEvaluator(g, weights.IC, 5000, 41)
		var net int64
		_, err := ev.EvalBatch([][]graph.NodeID{{0, 1, 2}}, BatchOptions{
			Workers: workers,
			Account: func(delta int64) { net += delta },
			Poll:    func() error { return boom },
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err %v, want boom", workers, err)
		}
		if net != 0 {
			t.Fatalf("workers=%d: %d bytes left accounted after abort", workers, net)
		}
	}
}

// TestEvalBatchWorkerPanicSurfaces: a panic inside a worker's simulation
// kernel must re-raise on the calling goroutine (the resilience layer's
// supervisor turns it into a Panicked cell there).
func TestEvalBatchWorkerPanicSurfaces(t *testing.T) {
	g := randomWCGraph(29, 50, 200)
	ev := NewWorldEvaluator(g, weights.IC, 64, 43)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range seed did not surface as a panic")
		}
	}()
	// Node g.N() is out of range: mark[v] faults inside the workers.
	_, _ = ev.EvalBatch([][]graph.NodeID{{g.N()}}, BatchOptions{Workers: 4})
}

func TestEvalBatchEmpty(t *testing.T) {
	g := randomWCGraph(31, 20, 60)
	ev := NewWorldEvaluator(g, weights.IC, 10, 47)
	if res, err := ev.EvalBatch(nil, BatchOptions{}); err != nil || res != nil {
		t.Fatalf("empty batch: %v %v", res, err)
	}
	res, err := ev.EvalBatch([][]graph.NodeID{{}}, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Estimate.Mean != 0 {
		t.Fatalf("empty seed set spread %v, want 0", res[0].Estimate.Mean)
	}
}

func TestMarginalGainCtxCancelled(t *testing.T) {
	g := randomWCGraph(37, 100, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MarginalGainCtx(ctx, g, weights.IC, []graph.NodeID{0}, 1, 1000, 3); err == nil {
		t.Fatal("cancelled context did not abort MarginalGainCtx")
	}
	gain, err := MarginalGainCtx(context.Background(), g, weights.IC, nil, 0, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 1 {
		t.Fatalf("gain of first seed %v, want ≥ 1 (the seed itself)", gain)
	}
}
