package diffusion_test

import (
	"fmt"

	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// ExampleSimulator_Run simulates one certain cascade down a 3-node chain.
func ExampleSimulator_Run() {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 1.0)
	_ = b.AddEdge(1, 2, 1.0)
	g := b.Build()

	sim := diffusion.NewSimulator(g, weights.IC)
	spread := sim.Run([]graph.NodeID{0}, rng.New(1))
	fmt.Println(spread)
	// Output: 3
}

// ExampleSimulator_EstimateSpread estimates σ(S) on a probabilistic chain:
// σ({0}) = 1 + p + p² = 1.75 for p = 0.5.
func ExampleSimulator_EstimateSpread() {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()

	sim := diffusion.NewSimulator(g, weights.IC)
	est := sim.EstimateSpread([]graph.NodeID{0}, 200000, 42)
	fmt.Printf("%.1f\n", est.Mean) // 1 + 0.5 + 0.25 = 1.75, ±MC noise
	// Output: 1.7
}

// ExampleRRSampler draws reverse-reachable sets: with certain arcs, the RR
// set of the chain's tail contains every ancestor.
func ExampleRRSampler() {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 1.0)
	_ = b.AddEdge(1, 2, 1.0)
	g := b.Build()

	s := diffusion.NewRRSampler(g, weights.IC)
	set := s.Sample(2, rng.New(7), nil)
	fmt.Println(len(set))
	// Output: 3
}
