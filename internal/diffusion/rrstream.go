package diffusion

import "github.com/sigdata/goinfmax/internal/graphalgo"

// Streaming RR-set sampling
//
// SampleBatch materializes all θ sets in one arena — fine at laptop scale,
// fatal at billion-edge scale where θ·E[|R|] elements dwarf RAM. SampleStream
// keeps the sampling kernel and its determinism contract but bounds resident
// set storage: sets accumulate in a single reusable arena and, whenever the
// arena's footprint reaches the configured bound (or the stream ends), the
// full arena is handed to a consumer callback and reset. Consumers fold each
// batch into whatever running structure they need (coverage inversion, width
// statistics, a spill file) and must not retain views into the arena after
// returning.
//
// Determinism: sample i of the stream consumes rng.New(sampleSeed(baseSeed,
// i)) exactly as in SampleBatch, and batches are delivered in global index
// order, so the concatenation of delivered batches is byte-identical to the
// store one SampleBatch(θ) call would produce — for any worker count, any
// arena bound and either graph backend.

// StreamConfig bounds one SampleStream invocation.
type StreamConfig struct {
	// ArenaBytes rotates the arena to the sink once its resident footprint
	// (capacity, as in SetStore.Bytes) reaches this bound. Values <= 0 use
	// DefaultArenaBytes. The bound is a rotation threshold, not a hard cap:
	// the arena can overshoot by at most one sampling round.
	ArenaBytes int64
	// Workers is the sampling parallelism per round (values < 1 = serial),
	// with the same byte-identical-results contract as SampleBatch.
	Workers int
}

// DefaultArenaBytes is the arena rotation threshold when StreamConfig leaves
// it unset: large enough to amortize sink calls, small enough that a dozen
// concurrent streams fit in a few hundred MB.
const DefaultArenaBytes = 64 << 20

// streamMaxRound caps one round's sample count so adaptive sizing cannot
// commit to an enormous round off a skewed first estimate.
const streamMaxRound = 1 << 20

// SampleStream draws count RR sets with uniformly random roots, delivering
// them to sink in bounded-arena batches (see the package comment above for
// the rotation protocol). poll and account have SampleBatch's contract;
// account is reconciled so that, once the call returns, the net charge equals
// the arena's final footprint (success) or zero (error) — the sink owns the
// accounting of anything it retains. Returns the number of sets delivered.
func (s *RRSampler) SampleStream(count int64, baseSeed uint64, cfg StreamConfig, sink func(batch *graphalgo.SetStore) error, poll func() error, account func(delta int64)) (int64, error) {
	if count <= 0 {
		return 0, nil
	}
	bound := cfg.ArenaBytes
	if bound <= 0 {
		bound = DefaultArenaBytes
	}
	arena := graphalgo.NewSetStore()
	net := int64(0) // bytes currently charged to account
	acct := func(delta int64) {
		if account != nil && delta != 0 {
			account(delta)
			net += delta
		}
	}
	fail := func(err error) (int64, error) {
		acct(-net) // the arena is discarded; return the charge
		return 0, err
	}

	done := int64(0)
	// The first round is a deliberately small probe: it establishes the
	// observed bytes-per-set before the adaptive sizing below commits to
	// full-bound rounds, so a tiny arena bound rotates from the start. The
	// executor under sampleBatchAt sizes its claim chunks from each round's
	// actual count (sched.Options.Chunk), so even this 256-sample probe
	// splits across every worker instead of starving the trailing ones
	// behind constant-sized chunks.
	round := int64(256)
	for done < count {
		if round > count-done {
			round = count - done
		}
		before := arena.Bytes()
		beforeSets := int64(arena.Len())
		added, err := s.sampleBatchAt(arena, done, round, baseSeed, cfg.Workers, poll, acct)
		done += added
		if err != nil {
			return fail(err)
		}
		// Adapt the round size to the observed density: target one rotation
		// per round without overshooting the bound by more than a round.
		if grown, sets := arena.Bytes()-before, int64(arena.Len())-beforeSets; grown > 0 && sets > 0 {
			perSet := (grown + sets - 1) / sets
			round = bound / perSet
			if round < int64(cfg.Workers) {
				round = int64(cfg.Workers)
			}
			if round < 1 {
				round = 1
			}
			if round > streamMaxRound {
				round = streamMaxRound
			}
		}
		if arena.Bytes() >= bound || done == count {
			if err := sink(arena); err != nil {
				return fail(err)
			}
			freed := arena.Bytes()
			arena.Reset()
			acct(arena.Bytes() - freed)
		}
	}
	acct(arena.Bytes() - net) // reconcile: net charge == final footprint
	return done, nil
}
