// Package diffusion implements the stochastic information-diffusion
// processes of paper §2 — forward simulation of the Independent Cascade and
// Linear Threshold models (paper Alg. 1) — and the Monte-Carlo estimator of
// expected spread σ(S) = E[Γ(S)] used to evaluate every algorithm from a
// uniform standpoint (paper §5.1, "Computing expected spread").
package diffusion

import (
	"fmt"
	"math"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Simulator runs single diffusion cascades over a fixed graph and model.
// Internal scratch arrays are reused across runs, so a Simulator performs no
// per-run allocation after warm-up. A Simulator is NOT safe for concurrent
// use; create one per goroutine.
type Simulator struct {
	g     graph.G
	model weights.Model

	// Epoch-stamped visited marks: node v is active in the current run iff
	// mark[v] == epoch. This avoids clearing O(n) state between runs.
	mark  []uint32
	epoch uint32
	queue []graph.NodeID

	// LT state, epoch-stamped like mark.
	ltStamp  []uint32
	ltWeight []float64 // incoming active weight accumulated this run
	ltThresh []float64 // threshold θv drawn lazily on first exposure
}

// NewSimulator creates a Simulator for g under the given diffusion
// semantics. The graph's weights must already follow a scheme compatible
// with the model (see package weights).
func NewSimulator(g graph.G, model weights.Model) *Simulator {
	g = graph.View(g) // private decode buffers: one Simulator per goroutine
	n := g.N()
	s := &Simulator{
		g:     g,
		model: model,
		mark:  make([]uint32, n),
		queue: make([]graph.NodeID, 0, 1024),
	}
	if model == weights.LT {
		s.ltStamp = make([]uint32, n)
		s.ltWeight = make([]float64, n)
		s.ltThresh = make([]float64, n)
	}
	return s
}

// Graph returns the simulator's graph.
func (s *Simulator) Graph() graph.G { return s.g }

// Model returns the simulator's diffusion semantics.
func (s *Simulator) Model() weights.Model { return s.model }

// Run simulates one cascade from seeds and returns the spread Γ(S): the
// number of nodes active when the process quiesces, seeds included
// (paper Def. 6). r supplies all randomness for the run.
func (s *Simulator) Run(seeds []graph.NodeID, r *rng.Source) int32 {
	return s.run(seeds, r, nil)
}

// RunCollect is Run but also appends every activated node (seeds included)
// to out, returning the extended slice. Used by tests and by algorithms that
// need the activated set itself (e.g. CELF's UpdateDataStructures).
func (s *Simulator) RunCollect(seeds []graph.NodeID, r *rng.Source, out []graph.NodeID) (int32, []graph.NodeID) {
	n := s.run(seeds, r, &out)
	return n, out
}

func (s *Simulator) run(seeds []graph.NodeID, r *rng.Source, collect *[]graph.NodeID) int32 {
	s.epoch++
	if s.epoch == 0 { // wrapped: reset marks once every 2^32 runs
		for i := range s.mark {
			s.mark[i] = 0
		}
		if s.ltStamp != nil {
			for i := range s.ltStamp {
				s.ltStamp[i] = 0
			}
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	active := int32(0)
	for _, v := range seeds {
		if s.mark[v] == s.epoch {
			continue // duplicate seed
		}
		s.mark[v] = s.epoch
		s.queue = append(s.queue, v)
		active++
		if collect != nil {
			*collect = append(*collect, v)
		}
	}
	switch s.model {
	case weights.IC:
		active += s.runIC(r, collect)
	case weights.LT:
		active += s.runLT(r, collect)
	default:
		panic(fmt.Sprintf("diffusion: unknown model %v", s.model))
	}
	return active
}

// runIC processes the frontier queue under IC: each newly activated u gets
// one independent attempt per out-arc (paper Def. 4). BFS order realizes
// the discrete time steps; since activation attempts are independent, the
// step boundaries do not affect the final active set.
func (s *Simulator) runIC(r *rng.Source, collect *[]graph.NodeID) int32 {
	g, activated := s.g, int32(0)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		to, w := g.OutNeighbors(u)
		for i, v := range to {
			if s.mark[v] == s.epoch {
				continue
			}
			if r.Float64() < w[i] {
				s.mark[v] = s.epoch
				s.queue = append(s.queue, v)
				activated++
				if collect != nil {
					*collect = append(*collect, v)
				}
			}
		}
	}
	return activated
}

// runLT processes the frontier queue under LT: v's threshold θv ~ U[0,1] is
// drawn lazily the first time an active in-neighbor pushes weight to it; v
// activates when accumulated incoming active weight reaches θv (paper
// Def. 5 / Eq. 1). Lazy threshold drawing is distributionally identical to
// drawing all thresholds upfront because θv is never observed before v's
// first exposure.
func (s *Simulator) runLT(r *rng.Source, collect *[]graph.NodeID) int32 {
	g, activated := s.g, int32(0)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		to, w := g.OutNeighbors(u)
		for i, v := range to {
			if s.mark[v] == s.epoch {
				continue
			}
			if s.ltStamp[v] != s.epoch {
				s.ltStamp[v] = s.epoch
				s.ltWeight[v] = 0
				s.ltThresh[v] = r.Float64()
			}
			s.ltWeight[v] += w[i]
			if s.ltWeight[v] >= s.ltThresh[v] {
				s.mark[v] = s.epoch
				s.queue = append(s.queue, v)
				activated++
				if collect != nil {
					*collect = append(*collect, v)
				}
			}
		}
	}
	return activated
}

// RunTwoPhase simulates one cascade from seeds1 and then — on the SAME
// live-edge realization — extends it with seeds2, returning both Γ(seeds1)
// and Γ(seeds1 ∪ seeds2). Under the live-edge view this is exact: edges
// untouched in phase 1 get fresh coins in phase 2, and LT thresholds and
// accumulated weights persist across the phases.
//
// CELF++ uses this to compute mg1 and mg2 from one set of simulations
// (Goyal et al. §3: "mg2 can be computed efficiently within the same MC
// runs"), which is why its wall-clock cost stays close to CELF's even
// though it maintains two marginals (paper M1).
func (s *Simulator) RunTwoPhase(seeds1, seeds2 []graph.NodeID, r *rng.Source) (sp1, sp12 int32) {
	sp1 = s.run(seeds1, r, nil)
	// Continue the same epoch: enqueue phase-2 seeds not yet active and
	// diffuse them over the persisted marks/thresholds.
	added := int32(0)
	start := len(s.queue)
	for _, v := range seeds2 {
		if s.mark[v] == s.epoch {
			continue
		}
		s.mark[v] = s.epoch
		s.queue = append(s.queue, v)
		added++
	}
	// Re-run the frontier processing from the first phase-2 seed onwards.
	switch s.model {
	case weights.IC:
		added += s.runICFrom(start, r)
	case weights.LT:
		added += s.runLTFrom(start, r)
	}
	return sp1, sp1 + added
}

// runICFrom processes the queue starting at index head0 (phase-2 restart).
func (s *Simulator) runICFrom(head0 int, r *rng.Source) int32 {
	g, activated := s.g, int32(0)
	for head := head0; head < len(s.queue); head++ {
		u := s.queue[head]
		to, w := g.OutNeighbors(u)
		for i, v := range to {
			if s.mark[v] == s.epoch {
				continue
			}
			if r.Float64() < w[i] {
				s.mark[v] = s.epoch
				s.queue = append(s.queue, v)
				activated++
			}
		}
	}
	return activated
}

// runLTFrom processes the queue starting at index head0 (phase-2 restart).
func (s *Simulator) runLTFrom(head0 int, r *rng.Source) int32 {
	g, activated := s.g, int32(0)
	for head := head0; head < len(s.queue); head++ {
		u := s.queue[head]
		to, w := g.OutNeighbors(u)
		for i, v := range to {
			if s.mark[v] == s.epoch {
				continue
			}
			if s.ltStamp[v] != s.epoch {
				s.ltStamp[v] = s.epoch
				s.ltWeight[v] = 0
				s.ltThresh[v] = r.Float64()
			}
			s.ltWeight[v] += w[i]
			if s.ltWeight[v] >= s.ltThresh[v] {
				s.mark[v] = s.epoch
				s.queue = append(s.queue, v)
				activated++
			}
		}
	}
	return activated
}

// Estimate holds the result of a Monte-Carlo spread estimation.
type Estimate struct {
	Mean   float64 // sample mean of Γ(S) over Runs simulations
	SD     float64 // sample standard deviation
	Runs   int
	StdErr float64 // SD / sqrt(Runs)
}

// String formats the estimate as "mean ± stderr (r runs)".
func (e Estimate) String() string {
	return fmt.Sprintf("%.1f ± %.1f (%d runs)", e.Mean, e.StdErr, e.Runs)
}

// EstimateSpread computes σ(S) by r Monte-Carlo simulations (paper Alg. 3
// line 9, ComputeSpread; the paper uses r = 10,000). Randomness derives
// deterministically from seed: run i always consumes the stream rng(seed,i),
// so results are identical regardless of scheduling.
func (s *Simulator) EstimateSpread(seeds []graph.NodeID, r int, seed uint64) Estimate {
	if r <= 0 {
		r = 1
	}
	var sum, sumSq float64
	base := rng.New(seed)
	for i := 0; i < r; i++ {
		runRng := base.Split()
		sp := float64(s.Run(seeds, runRng))
		sum += sp
		sumSq += sp * sp
	}
	return finishEstimate(sum, sumSq, r)
}

func finishEstimate(sum, sumSq float64, r int) Estimate {
	mean := sum / float64(r)
	varr := 0.0
	if r > 1 {
		varr = (sumSq - sum*sum/float64(r)) / float64(r-1)
		if varr < 0 {
			varr = 0
		}
	}
	sd := math.Sqrt(varr)
	return Estimate{Mean: mean, SD: sd, Runs: r, StdErr: sd / math.Sqrt(float64(r))}
}
