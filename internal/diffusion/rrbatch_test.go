package diffusion

import (
	"errors"
	"testing"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func batchGraph(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return weights.WeightedCascade{}.Apply(b.BuildSimple()).(*graph.Graph)
}

// TestSampleBatchDeterministicAcrossWorkers is the core determinism
// contract: for a fixed base seed, the store is byte-identical for any
// worker count — per-sample RNG streams, per-worker shards merged in
// worker-index order.
func TestSampleBatchDeterministicAcrossWorkers(t *testing.T) {
	for _, model := range []weights.Model{weights.IC, weights.LT} {
		g := batchGraph(3, 200, 1600)
		if model == weights.LT {
			g = weights.LTUniform{}.Apply(batchGraph(3, 200, 1600)).(*graph.Graph)
		}
		const count, baseSeed = 700, 99
		serial := graphalgo.NewSetStore()
		s := NewRRSampler(g, model)
		if _, err := s.SampleBatch(serial, count, baseSeed, 1, nil, nil); err != nil {
			t.Fatal(err)
		}
		if serial.Len() != count {
			t.Fatalf("serial store holds %d sets want %d", serial.Len(), count)
		}
		serialArcs := s.ArcsTraversed
		for _, workers := range []int{2, 8} {
			par := graphalgo.NewSetStore()
			ps := NewRRSampler(g, model)
			if _, err := ps.SampleBatch(par, count, baseSeed, workers, nil, nil); err != nil {
				t.Fatal(err)
			}
			if !par.Equal(serial) {
				t.Fatalf("model %v workers=%d: store differs from serial", model, workers)
			}
			if ps.ArcsTraversed != serialArcs {
				t.Fatalf("model %v workers=%d: arcs traversed %d want %d",
					model, workers, ps.ArcsTraversed, serialArcs)
			}
		}
	}
}

// TestSampleBatchSeedSensitivity is the negative control: a different base
// seed must actually change the store.
func TestSampleBatchSeedSensitivity(t *testing.T) {
	g := batchGraph(5, 100, 700)
	a, b := graphalgo.NewSetStore(), graphalgo.NewSetStore()
	if _, err := NewRRSampler(g, weights.IC).SampleBatch(a, 200, 1, 4, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRRSampler(g, weights.IC).SampleBatch(b, 200, 2, 4, nil, nil); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("different base seeds produced identical stores")
	}
}

// TestSampleBatchPollAborts: a failing poll must stop the batch — serially
// and in parallel — and return the poll's error.
func TestSampleBatchPollAborts(t *testing.T) {
	g := batchGraph(7, 100, 700)
	sentinel := errors.New("over budget")
	for _, workers := range []int{1, 4} {
		calls := 0
		poll := func() error {
			calls++
			if calls > 3 {
				return sentinel
			}
			return nil
		}
		store := graphalgo.NewSetStore()
		_, err := NewRRSampler(g, weights.IC).SampleBatch(store, 1_000_000, 1, workers, poll, nil)
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err %v want sentinel", workers, err)
		}
	}
}

// TestSampleBatchAccountingReconciles: on success the cumulative charge
// equals the arena growth exactly, for any worker count.
func TestSampleBatchAccountingReconciles(t *testing.T) {
	g := batchGraph(9, 150, 1000)
	for _, workers := range []int{1, 4} {
		store := graphalgo.NewSetStore()
		before := store.Bytes()
		var charged int64
		if _, err := NewRRSampler(g, weights.IC).SampleBatch(store, 500, 42, workers,
			nil, func(d int64) { charged += d }); err != nil {
			t.Fatal(err)
		}
		if want := store.Bytes() - before; charged != want {
			t.Fatalf("workers=%d: charged %d want exact arena growth %d", workers, charged, want)
		}
	}
}

// TestSampleBatchWorkerPanicSurfaces: a panic inside a worker goroutine
// must re-raise on the calling goroutine (where the resilience layer can
// classify it as a Panicked cell), not crash the process from an
// unsupervised goroutine.
func TestSampleBatchWorkerPanicSurfaces(t *testing.T) {
	// A zero-node graph makes the uniform root draw (Int31n(0)) panic
	// inside every worker's sampling loop.
	g := graph.NewBuilder(0, true).Build()
	s := NewRRSampler(g, weights.IC)
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not surface on the calling goroutine")
		}
	}()
	_, _ = s.SampleBatch(graphalgo.NewSetStore(), 100, 1, 4, nil, nil)
}
