package diffusion

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// line returns the directed path 0→1→2 with both arc weights p.
func line(t *testing.T, p float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(3, true)
	if err := b.AddEdge(0, 1, p); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, p); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestICCertainPropagation(t *testing.T) {
	g := line(t, 1.0)
	sim := NewSimulator(g, weights.IC)
	if sp := sim.Run([]graph.NodeID{0}, rng.New(1)); sp != 3 {
		t.Fatalf("spread %d want 3 with p=1", sp)
	}
}

func TestICZeroPropagation(t *testing.T) {
	g := line(t, 0.0)
	sim := NewSimulator(g, weights.IC)
	if sp := sim.Run([]graph.NodeID{0}, rng.New(1)); sp != 1 {
		t.Fatalf("spread %d want 1 with p=0", sp)
	}
}

func TestDuplicateSeedsCountOnce(t *testing.T) {
	g := line(t, 0)
	sim := NewSimulator(g, weights.IC)
	if sp := sim.Run([]graph.NodeID{0, 0, 0}, rng.New(1)); sp != 1 {
		t.Fatalf("spread %d want 1 for duplicated seed", sp)
	}
}

// TestICExpectedSpreadLine checks the closed form on the 2-arc path:
// σ({0}) = 1 + p + p².
func TestICExpectedSpreadLine(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		g := line(t, p)
		sim := NewSimulator(g, weights.IC)
		est := sim.EstimateSpread([]graph.NodeID{0}, 40000, 7)
		want := 1 + p + p*p
		if math.Abs(est.Mean-want) > 4*est.StdErr+0.01 {
			t.Fatalf("p=%v: σ=%v want %v (±%v)", p, est.Mean, want, est.StdErr)
		}
	}
}

// TestLTExpectedSpreadLine checks LT on the same path. With single in-arcs
// of weight w, P(activation) = P(θ ≤ w) = w, so σ({0}) = 1 + w + w².
func TestLTExpectedSpreadLine(t *testing.T) {
	for _, w := range []float64{0.2, 0.7, 1.0} {
		g := line(t, w)
		sim := NewSimulator(g, weights.LT)
		est := sim.EstimateSpread([]graph.NodeID{0}, 40000, 11)
		want := 1 + w + w*w
		if math.Abs(est.Mean-want) > 4*est.StdErr+0.01 {
			t.Fatalf("w=%v: σ=%v want %v (±%v)", w, est.Mean, want, est.StdErr)
		}
	}
}

// TestLTThresholdSemantics: node 2 has two in-arcs of weight 0.5 each; with
// both 0 and 1 active, total incoming weight 1.0 ≥ θ always ⇒ always active.
func TestLTThresholdSemantics(t *testing.T) {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 2, 0.5)
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()
	sim := NewSimulator(g, weights.LT)
	for i := 0; i < 200; i++ {
		if sp := sim.Run([]graph.NodeID{0, 1}, rng.New(uint64(i))); sp != 3 {
			t.Fatalf("run %d: spread %d want 3 (Σw = 1 ≥ θ)", i, sp)
		}
	}
	// A single seed activates node 2 with probability 0.5.
	est := sim.EstimateSpread([]graph.NodeID{0}, 20000, 3)
	if math.Abs(est.Mean-1.5) > 4*est.StdErr+0.01 {
		t.Fatalf("σ({0}) = %v want 1.5", est.Mean)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	g := line(t, 0.5)
	sim := NewSimulator(g, weights.IC)
	a := sim.EstimateSpread([]graph.NodeID{0}, 500, 42)
	b := NewSimulator(g, weights.IC).EstimateSpread([]graph.NodeID{0}, 500, 42)
	if a.Mean != b.Mean || a.SD != b.SD {
		t.Fatalf("estimates differ: %v vs %v", a, b)
	}
}

func TestRunCollect(t *testing.T) {
	g := line(t, 1)
	sim := NewSimulator(g, weights.IC)
	n, got := sim.RunCollect([]graph.NodeID{0}, rng.New(1), nil)
	if n != 3 || len(got) != 3 {
		t.Fatalf("collect %d nodes %v", n, got)
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("collected %v", got)
	}
}

// TestMonotonicityProperty: on any fixed live-edge realization, the set
// reachable from S is contained in the set reachable from S ∪ {v}, so
// Γ(S) ≤ Γ(S∪{v}) holds EXACTLY per snapshot (not just in expectation).
func TestMonotonicityProperty(t *testing.T) {
	g := randomWCGraph(17, 30, 120)
	reach := func(sn *Snapshot, seeds []graph.NodeID) int {
		seen := map[graph.NodeID]bool{}
		var stack []graph.NodeID
		for _, s := range seeds {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range sn.OutNeighbors(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return len(seen)
	}
	check := func(rawS, rawV uint8, seed uint64) bool {
		s := graph.NodeID(rawS % 30)
		v := graph.NodeID(rawV % 30)
		if s == v {
			return true
		}
		sn := SampleSnapshot(g, weights.IC, rng.New(seed))
		return reach(sn, []graph.NodeID{s, v}) >= reach(sn, []graph.NodeID{s})
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMarginalGainNonNegativeInExpectation: the paired estimator's mean
// gain stays above the noise floor.
func TestMarginalGainNonNegativeInExpectation(t *testing.T) {
	g := randomWCGraph(17, 30, 120)
	for _, v := range []graph.NodeID{3, 11, 25} {
		gain := MarginalGain(g, weights.IC, []graph.NodeID{0}, v, 4000, 9)
		if gain < -0.1 {
			t.Fatalf("v=%d: marginal gain %v clearly negative", v, gain)
		}
	}
}

// TestSubmodularityStatistical: marginal gain of v shrinks as the base set
// grows, in expectation: E[σ(∅+v)−σ(∅)] ≥ E[σ(S+v)−σ(S)].
func TestSubmodularityStatistical(t *testing.T) {
	g := randomWCGraph(23, 40, 200)
	base := []graph.NodeID{1, 2, 3, 4, 5}
	for _, v := range []graph.NodeID{10, 20, 30} {
		small := MarginalGain(g, weights.IC, nil, v, 20000, 5)
		large := MarginalGain(g, weights.IC, base, v, 20000, 5)
		if large > small+0.05 {
			t.Fatalf("v=%d: gain grew with base set: %v -> %v", v, small, large)
		}
	}
}

// TestParallelMatchesSequential: the parallel estimator must be bit-equal
// to the sequential one for any worker count.
func TestParallelMatchesSequential(t *testing.T) {
	g := randomWCGraph(31, 50, 300)
	seeds := []graph.NodeID{3, 14, 27}
	seq := NewSimulator(g, weights.IC).EstimateSpread(seeds, 400, 99)
	for _, workers := range []int{1, 2, 4, 7} {
		par := EstimateSpreadParallel(g, weights.IC, seeds, 400, 99, workers)
		if par.Mean != seq.Mean || par.SD != seq.SD {
			t.Fatalf("workers=%d: %v vs sequential %v", workers, par, seq)
		}
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Mean: 10, SD: 2, Runs: 4, StdErr: 1}
	if e.String() == "" {
		t.Fatal("empty string")
	}
}

func TestEstimateZeroRunsClamped(t *testing.T) {
	g := line(t, 0.5)
	sim := NewSimulator(g, weights.IC)
	est := sim.EstimateSpread([]graph.NodeID{0}, 0, 1)
	if est.Runs != 1 {
		t.Fatalf("runs %d want clamped to 1", est.Runs)
	}
}

// TestRunTwoPhase: the two-phase run must (a) never shrink the active set,
// (b) reproduce Γ(seeds1) exactly in phase 1, and (c) be unbiased for
// σ(seeds1 ∪ seeds2) in phase 2, under both IC and LT.
func TestRunTwoPhase(t *testing.T) {
	for _, m := range []weights.Model{weights.IC, weights.LT} {
		var g *graph.Graph
		if m == weights.IC {
			g = randomWCGraph(29, 40, 200)
		} else {
			b := graph.NewBuilder(40, true)
			r := rng.New(29)
			for i := 0; i < 200; i++ {
				u, v := graph.NodeID(r.Int31n(40)), graph.NodeID(r.Int31n(40))
				if u != v {
					_ = b.AddEdge(u, v, 1)
				}
			}
			g = weights.LTUniform{}.Apply(b.BuildSimple()).(*graph.Graph)
		}
		sim := NewSimulator(g, m)
		s1 := []graph.NodeID{1, 2}
		s2 := []graph.NodeID{3}
		const runs = 30000
		base := rng.New(77)
		var sum1, sum12 float64
		for i := 0; i < runs; i++ {
			a, b := sim.RunTwoPhase(s1, s2, base.Split())
			if b < a {
				t.Fatalf("%v: phase 2 shrank the active set: %d < %d", m, b, a)
			}
			sum1 += float64(a)
			sum12 += float64(b)
		}
		mc1 := NewSimulator(g, m).EstimateSpread(s1, runs, 5)
		mc12 := NewSimulator(g, m).EstimateSpread([]graph.NodeID{1, 2, 3}, runs, 6)
		if d := sum1/runs - mc1.Mean; d > 5*mc1.StdErr+0.05 || d < -5*mc1.StdErr-0.05 {
			t.Fatalf("%v: phase-1 mean %v vs σ %v", m, sum1/runs, mc1.Mean)
		}
		if d := sum12/runs - mc12.Mean; d > 5*mc12.StdErr+0.05 || d < -5*mc12.StdErr-0.05 {
			t.Fatalf("%v: phase-2 mean %v vs σ(union) %v", m, sum12/runs, mc12.Mean)
		}
	}
}

// TestRunTwoPhaseSeedOverlap: a phase-2 seed already active adds nothing.
func TestRunTwoPhaseSeedOverlap(t *testing.T) {
	g := line(t, 0)
	sim := NewSimulator(g, weights.IC)
	a, b := sim.RunTwoPhase([]graph.NodeID{0}, []graph.NodeID{0}, rng.New(1))
	if a != 1 || b != 1 {
		t.Fatalf("overlap: got %d,%d want 1,1", a, b)
	}
}

// randomWCGraph builds a random directed graph with WC weights.
func randomWCGraph(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u == v {
			continue
		}
		_ = b.AddEdge(u, v, 1)
	}
	g := b.BuildSimple()
	return weights.WeightedCascade{}.Apply(g).(*graph.Graph)
}
