package graph

import (
	"path/filepath"
	"testing"
)

// FuzzCompactMatchesCSR drives randomized graph shapes through the binary
// round trip and asserts the compact backend is observationally identical to
// the CSR it was encoded from, over the full read-interface surface. This is
// the property the whole backend split rests on: any divergence — ordering,
// degrees, weights, arc bases — would silently change sampled RR sets.
func FuzzCompactMatchesCSR(f *testing.F) {
	f.Add(int64(1), uint8(8), uint16(20), true, false)
	f.Add(int64(2), uint8(1), uint16(0), false, true)
	f.Add(int64(3), uint8(200), uint16(2000), true, true)
	f.Add(int64(4), uint8(5), uint16(500), false, false)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, edges uint16, directed, weighted bool) {
		if n == 0 {
			n = 1
		}
		csr, _ := randomTestGraph(t, seed, int32(n), int(edges)%4096, directed, weighted)
		path := filepath.Join(t.TempDir(), "f.gimb")
		if err := WriteBinary(csr, path, BinaryWriterOptions{Weighted: weighted}); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		c, err := OpenBinary(path, OpenBinaryOptions{})
		if err != nil {
			t.Fatalf("OpenBinary: %v", err)
		}
		defer c.Close()
		assertSame(t, csr, c)
		// Weight must agree pair-by-pair too (assertSame covers the
		// neighbor-run weights; this exercises the lookup accessor,
		// including its not-found path).
		for u := NodeID(0); u < csr.N(); u++ {
			for v := NodeID(0); v < csr.N(); v++ {
				ww, wok := csr.Weight(u, v)
				gw, gok := c.Weight(u, v)
				if ww != gw || wok != gok {
					t.Fatalf("Weight(%d,%d) = (%g,%v) vs (%g,%v)", u, v, gw, gok, ww, wok)
				}
			}
		}
	})
}
