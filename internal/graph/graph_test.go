package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/sigdata/goinfmax/internal/rng"
)

// buildTriangle returns the directed 3-cycle 0→1→2→0 with weights .1/.2/.3.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3, true)
	for _, e := range []Edge{{0, 1, 0.1}, {1, 2, 0.2}, {2, 0, 0.3}} {
		if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderDirected(t *testing.T) {
	g := buildTriangle(t)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d want 3,3", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	to, w := g.OutNeighbors(0)
	if len(to) != 1 || to[0] != 1 || w[0] != 0.1 {
		t.Fatalf("out(0) = %v %v", to, w)
	}
	from, w := g.InNeighbors(0)
	if len(from) != 1 || from[0] != 2 || w[0] != 0.3 {
		t.Fatalf("in(0) = %v %v", from, w)
	}
}

func TestBuilderUndirectedSymmetrizes(t *testing.T) {
	b := NewBuilder(2, false)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("m=%d want 2 (both arcs)", g.M())
	}
	if w, ok := g.Weight(0, 1); !ok || w != 0.5 {
		t.Fatalf("weight(0,1) = %v %v", w, ok)
	}
	if w, ok := g.Weight(1, 0); !ok || w != 0.5 {
		t.Fatalf("weight(1,0) = %v %v", w, ok)
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	b := NewBuilder(2, true)
	if err := b.AddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("m=%d want 1 (self-loop dropped)", g.M())
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	b := NewBuilder(2, true)
	if err := b.AddEdge(0, 2, 1); err == nil {
		t.Fatal("expected range error")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("expected range error for negative id")
	}
}

func TestParallelEdgesPreservedAndConsolidated(t *testing.T) {
	b := NewBuilder(2, true)
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	multi := b.Build()
	if multi.M() != 3 {
		t.Fatalf("multigraph m=%d want 3", multi.M())
	}
	if c := multi.ArcCount(0, 1); c != 3 {
		t.Fatalf("ArcCount=%d want 3", c)
	}

	b2 := NewBuilder(2, true)
	for i := 0; i < 3; i++ {
		if err := b2.AddEdge(0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	simple := b2.BuildSimple()
	if simple.M() != 1 {
		t.Fatalf("consolidated m=%d want 1", simple.M())
	}
	if w, _ := simple.Weight(0, 1); w != 3 {
		t.Fatalf("consolidated weight=%v want 3 (summed)", w)
	}
}

func TestReverse(t *testing.T) {
	g := buildTriangle(t)
	r := g.Reverse()
	if w, ok := r.Weight(1, 0); !ok || w != 0.1 {
		t.Fatalf("reversed weight(1,0) = %v %v, want 0.1", w, ok)
	}
	if r.M() != g.M() || r.N() != g.N() {
		t.Fatal("reverse changed size")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReweighted(t *testing.T) {
	g := buildTriangle(t)
	ng := g.Reweighted(func(u, v NodeID) float64 { return 0.9 })
	for _, e := range ng.Edges() {
		if e.Weight != 0.9 {
			t.Fatalf("arc (%d,%d) weight %v", e.From, e.To, e.Weight)
		}
	}
	// Original untouched.
	if w, _ := g.Weight(0, 1); w != 0.1 {
		t.Fatalf("original mutated: %v", w)
	}
	// In-CSR weights must agree with out-CSR weights.
	for v := NodeID(0); v < ng.N(); v++ {
		_, ws := ng.InNeighbors(v)
		for _, w := range ws {
			if w != 0.9 {
				t.Fatalf("in-CSR weight %v", w)
			}
		}
	}
}

func TestWithName(t *testing.T) {
	g := buildTriangle(t)
	ng := g.WithName("tri")
	if ng.Name() != "tri" {
		t.Fatalf("name %q", ng.Name())
	}
	if g.Name() != "" {
		t.Fatalf("original name mutated: %q", g.Name())
	}
	if ng.M() != g.M() {
		t.Fatal("WithName changed structure")
	}
}

func TestDegrees(t *testing.T) {
	b := NewBuilder(4, true)
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if d := g.OutDegree(0); d != 3 {
		t.Fatalf("outdeg(0)=%d", d)
	}
	if d := g.InDegree(3); d != 3 {
		t.Fatalf("indeg(3)=%d", d)
	}
	if tw := g.TotalInWeight(3); tw != 3 {
		t.Fatalf("TotalInWeight(3)=%v", tw)
	}
	if ad := g.AvgDegree(); ad != 5.0/4 {
		t.Fatalf("avg degree %v", ad)
	}
}

// TestOutArcBase pins the global out-arc indexing contract the world
// evaluator's O(1) coin streams rely on: arc i of OutNeighbors(u) has
// global index OutArcBase(u)+i, and indices are dense in [0, M).
func TestOutArcBase(t *testing.T) {
	b := NewBuilder(4, true)
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {3, 0}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	var next int64
	for u := NodeID(0); u < g.N(); u++ {
		if base := g.OutArcBase(u); base != next {
			t.Fatalf("OutArcBase(%d)=%d, want %d", u, base, next)
		}
		next += int64(g.OutDegree(u))
	}
	if next != g.M() {
		t.Fatalf("arc indices cover %d, want M=%d", next, g.M())
	}
}

// TestCSRInvariantsProperty builds random graphs and checks structural
// invariants plus out/in consistency.
func TestCSRInvariantsProperty(t *testing.T) {
	check := func(seed uint64, rawN uint8, rawM uint8) bool {
		n := int32(rawN%30) + 2
		m := int(rawM % 100)
		r := rng.New(seed)
		b := NewBuilder(n, true)
		type arc struct{ u, v NodeID }
		var arcs []arc
		for i := 0; i < m; i++ {
			u := NodeID(r.Int31n(n))
			v := NodeID(r.Int31n(n))
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v, r.Float64()); err != nil {
				return false
			}
			arcs = append(arcs, arc{u, v})
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		if g.M() != int64(len(arcs)) {
			return false
		}
		// Every added arc must appear in both CSRs.
		for _, a := range arcs {
			if _, ok := g.Weight(a.u, a.v); !ok {
				return false
			}
			found := false
			from, _ := g.InNeighbors(a.v)
			for _, u := range from {
				if u == a.u {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Arc count conservation: Σ outdeg = Σ indeg = m.
		var sumOut, sumIn int64
		for v := NodeID(0); v < n; v++ {
			sumOut += int64(g.OutDegree(v))
			sumIn += int64(g.InDegree(v))
		}
		return sumOut == g.M() && sumIn == g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgesRoundTrip checks Edges() returns exactly the built arcs.
func TestEdgesRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("got %d edges", len(es))
	}
	sort.Slice(es, func(i, j int) bool { return es[i].From < es[j].From })
	want := []Edge{{0, 1, 0.1}, {1, 2, 0.2}, {2, 0, 0.3}}
	for i, e := range es {
		if e != want[i] {
			t.Fatalf("edge %d = %+v want %+v", i, e, want[i])
		}
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	g := buildTriangle(t)
	if g.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive for nonempty graph")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(5, true).Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Fatalf("m=%d", g.M())
	}
	to, _ := g.OutNeighbors(3)
	if len(to) != 0 {
		t.Fatal("nonempty adjacency in empty graph")
	}
}
