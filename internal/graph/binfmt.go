package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Binary graph format ("GIMB", version 1)
//
// The on-disk layout mirrors the internal/persist envelope idiom — magic,
// explicit version, CRC-32C over the payload — and holds exactly the
// sections the Compact backend serves from, so opening a file is a single
// mmap (or one sequential heap read) with zero translation:
//
//	offset 0  magic "GIMB" (4 bytes)
//	          u32  version (= 1)
//	          ┌─ CRC-32C-covered payload ─────────────────────────────┐
//	          │ u32  flags (bit0 directed, bit1 explicit weights)     │
//	          │ u8   offWidth (4 or 8), u8[3] zero padding            │
//	          │ i64  n, i64 m                                         │
//	          │ u16  nameLen, name bytes                              │
//	          │ i64  outBlobLen, i64 inBlobLen                        │
//	          │ outOff  (n+1)·offWidth   arc-base index               │
//	          │ outIdx  (n+1)·offWidth   byte offsets into outBlob    │
//	          │ outBlob                  zigzag-varint delta runs     │
//	          │ outW    m·8              (only with explicit weights) │
//	          │ inOff, inIdx, inBlob, inW    same, transposed         │
//	          └───────────────────────────────────────────────────────┘
//	          u32  CRC-32C (Castagnoli) of the payload
//
// All integers are little-endian. Each node's adjacency run is its arcs in
// stored order, encoded as zigzag varints of successive differences (first
// arc delta is against 0). offWidth is the configurable node-ID/offset
// width: 4-byte indexes suffice while m and both blob lengths fit in
// uint32; files beyond that use 8.

const (
	binaryMagic   = "GIMB"
	binaryVersion = 1

	flagDirected = 1 << 0
	flagWeighted = 1 << 1
)

// Sentinel errors for the open-time verification ladder.
var (
	ErrBinaryMagic     = errors.New("graph: not a binary graph file (bad magic)")
	ErrBinaryVersion   = errors.New("graph: unsupported binary graph version")
	ErrBinaryChecksum  = errors.New("graph: binary graph checksum mismatch")
	ErrBinaryTruncated = errors.New("graph: binary graph file truncated")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// zigzag encodes a signed delta as an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// BinaryWriterOptions configure a streaming binary graph write.
type BinaryWriterOptions struct {
	// Name is the dataset name stored in the header.
	Name string
	// Directed records edge-list directedness. Undirected writers
	// symmetrize in AddEdge, exactly like Builder.
	Directed bool
	// Weighted stores explicit per-arc float64 weights; otherwise every
	// arc weight is the implicit 1.0 (reweighting schemes recompute
	// weights anyway, so synthetics normally skip the 16m-byte sections).
	Weighted bool
	// OffsetWidth forces the index width (4 or 8); 0 selects automatically.
	OffsetWidth int
	// SortBudgetBytes bounds the in-memory arc window of the finalize
	// counting sort; the writer makes ceil(12m/budget) sequential passes
	// over its spill file per adjacency direction. 0 means 256 MiB.
	SortBudgetBytes int64
	// TempDir holds the spill files; "" means the output file's directory.
	TempDir string
}

// BinaryWriter streams an arbitrarily large edge stream to a binary graph
// file in bounded memory: O(n) offset arrays plus the sort budget, never
// O(m). Arcs are spilled to a temp file as they arrive; Close runs a
// sharded external counting sort (stable, so per-node stored order is the
// arrival order — Builder parity) and assembles the final file atomically
// (tmp + rename) with its CRC.
type BinaryWriter struct {
	path string
	n    int64
	m    int64
	opts BinaryWriterOptions

	spillPath string
	spill     *os.File
	spillW    *bufio.Writer
	rec       [16]byte

	outCount []int64 // arcs per source node
	inCount  []int64 // arcs per target node

	closed bool
}

// NewBinaryWriter creates a streaming writer for a graph with n nodes.
func NewBinaryWriter(path string, n int32, opts BinaryWriterOptions) (*BinaryWriter, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: binary writer: negative node count %d", n)
	}
	if opts.SortBudgetBytes <= 0 {
		opts.SortBudgetBytes = 256 << 20
	}
	if opts.OffsetWidth != 0 && opts.OffsetWidth != 4 && opts.OffsetWidth != 8 {
		return nil, fmt.Errorf("graph: binary writer: offset width %d (want 0, 4 or 8)", opts.OffsetWidth)
	}
	dir := opts.TempDir
	if dir == "" {
		dir = filepath.Dir(path)
	}
	spill, err := os.CreateTemp(dir, "gimb-spill-*")
	if err != nil {
		return nil, fmt.Errorf("graph: binary writer: %w", err)
	}
	return &BinaryWriter{
		path:      path,
		n:         int64(n),
		opts:      opts,
		spillPath: spill.Name(),
		spill:     spill,
		spillW:    bufio.NewWriterSize(spill, 1<<20),
		outCount:  make([]int64, int64(n)+1),
		inCount:   make([]int64, int64(n)+1),
	}, nil
}

// AddArc records one directed arc exactly as it will be stored. Used when
// the source stream is already symmetrized (e.g. re-encoding a built graph).
func (w *BinaryWriter) AddArc(u, v NodeID, weight float64) error {
	if int64(u) < 0 || int64(u) >= w.n || int64(v) < 0 || int64(v) >= w.n {
		return fmt.Errorf("graph: binary writer: arc (%d,%d) out of range [0,%d)", u, v, w.n)
	}
	binary.LittleEndian.PutUint32(w.rec[0:], uint32(u))
	binary.LittleEndian.PutUint32(w.rec[4:], uint32(v))
	binary.LittleEndian.PutUint64(w.rec[8:], math.Float64bits(weight))
	if _, err := w.spillW.Write(w.rec[:]); err != nil {
		return fmt.Errorf("graph: binary writer: spill: %w", err)
	}
	w.outCount[u]++
	w.inCount[v]++
	w.m++
	return nil
}

// AddEdge records edge (u,v) with edge-list semantics matching Builder:
// self-loops are dropped, and undirected writers add both arcs (u,v) then
// (v,u) — the same interleaving Builder's symmetrization produces, so the
// stored order (and with it every sampled RR set) is identical.
func (w *BinaryWriter) AddEdge(u, v NodeID, weight float64) error {
	if u == v {
		return nil
	}
	if err := w.AddArc(u, v, weight); err != nil {
		return err
	}
	if !w.opts.Directed {
		return w.AddArc(v, u, weight)
	}
	return nil
}

// NumArcs returns the number of arcs recorded so far (after any
// symmetrization).
func (w *BinaryWriter) NumArcs() int64 { return w.m }

// Abort discards all state and temp files. Safe after a failed Close.
func (w *BinaryWriter) Abort() {
	if w.spill != nil {
		_ = w.spill.Close()
		w.spill = nil
	}
	if w.spillPath != "" {
		_ = os.Remove(w.spillPath)
		w.spillPath = ""
	}
	w.closed = true
}

// Close finalizes the file. The spilled arc stream is counting-sorted into
// per-direction adjacency (stable within each node) in bounded passes,
// blobs are encoded to temp files, and the final image is assembled with
// header + CRC and atomically renamed into place.
func (w *BinaryWriter) Close() (err error) {
	if w.closed {
		return errors.New("graph: binary writer: already closed")
	}
	w.closed = true
	defer w.Abort()

	if err := w.spillW.Flush(); err != nil {
		return fmt.Errorf("graph: binary writer: flush spill: %w", err)
	}

	// Prefix sums: counts become arc-base offsets.
	outOff := prefixSum(w.outCount)
	inOff := prefixSum(w.inCount)
	w.outCount, w.inCount = nil, nil

	dir := w.opts.TempDir
	if dir == "" {
		dir = filepath.Dir(w.path)
	}
	outIdx, outBlobPath, outWPath, err := w.encodeDirection(dir, outOff, false)
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(outBlobPath); _ = os.Remove(outWPath) }()
	inIdx, inBlobPath, inWPath, err := w.encodeDirection(dir, inOff, true)
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(inBlobPath); _ = os.Remove(inWPath) }()

	return w.assemble(outOff, outIdx, outBlobPath, outWPath, inOff, inIdx, inBlobPath, inWPath)
}

func prefixSum(counts []int64) []int64 {
	off := counts // reuse: shift into offsets in place
	var sum int64
	for i, c := range off {
		off[i] = sum
		sum += c
	}
	return off
}

// encodeDirection counting-sorts the spilled arcs by source (in=false) or
// target (in=true) and encodes each node's run as zigzag-varint deltas into
// a blob temp file, returning the per-node byte index. Memory per pass is
// bounded by SortBudgetBytes: nodes are processed in contiguous ranges
// whose total arc window fits the budget, with one sequential scan of the
// spill file per range.
func (w *BinaryWriter) encodeDirection(dir string, off []int64, in bool) (idx []int64, blobPath, wPath string, err error) {
	blobF, err := os.CreateTemp(dir, "gimb-blob-*")
	if err != nil {
		return nil, "", "", fmt.Errorf("graph: binary writer: %w", err)
	}
	blobPath = blobF.Name()
	blobW := bufio.NewWriterSize(blobF, 1<<20)

	weightF, err := os.CreateTemp(dir, "gimb-w-*")
	if err != nil {
		_ = blobF.Close()
		return nil, "", "", fmt.Errorf("graph: binary writer: %w", err)
	}
	wPath = weightF.Name()
	weightW := bufio.NewWriterSize(weightF, 1<<20)

	idx = make([]int64, w.n+1)
	var blobPos int64
	var varintBuf [binary.MaxVarintLen64]byte

	// Bytes of in-memory window per arc in the sort: 4 (id) + 8 (weight).
	const arcBytes = 12
	budgetArcs := w.opts.SortBudgetBytes / arcBytes
	if budgetArcs < 1 {
		budgetArcs = 1
	}

	for lo := int64(0); lo < w.n; {
		// Grow [lo, hi) while the arc window fits the budget (always at
		// least one node: a single node's adjacency must fit in memory).
		hi := lo + 1
		for hi < w.n && off[hi+1]-off[lo] <= budgetArcs {
			hi++
		}
		base := off[lo]
		windowArcs := off[hi] - base
		ids := make([]NodeID, windowArcs)
		ws := make([]float64, windowArcs)
		cur := make([]int64, hi-lo)
		for u := lo; u < hi; u++ {
			cur[u-lo] = off[u] - base
		}

		if err := w.scanSpill(func(u, v NodeID, weight float64) {
			key := int64(u)
			other := v
			if in {
				key = int64(v)
				other = u
			}
			if key < lo || key >= hi {
				return
			}
			p := cur[key-lo]
			ids[p] = other
			ws[p] = weight
			cur[key-lo] = p + 1
		}); err != nil {
			_ = blobF.Close()
			_ = weightF.Close()
			return nil, blobPath, wPath, err
		}

		// Encode each node's run in stored (arrival) order.
		for u := lo; u < hi; u++ {
			idx[u] = blobPos
			prev := int64(0)
			for p := off[u] - base; p < off[u+1]-base; p++ {
				nb := binary.PutUvarint(varintBuf[:], zigzag(int64(ids[p])-prev))
				prev = int64(ids[p])
				if _, err := blobW.Write(varintBuf[:nb]); err != nil {
					_ = blobF.Close()
					_ = weightF.Close()
					return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: blob: %w", err)
				}
				blobPos += int64(nb)
			}
			if w.opts.Weighted {
				for p := off[u] - base; p < off[u+1]-base; p++ {
					binary.LittleEndian.PutUint64(varintBuf[:8], math.Float64bits(ws[p]))
					if _, err := weightW.Write(varintBuf[:8]); err != nil {
						_ = blobF.Close()
						_ = weightF.Close()
						return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: weights: %w", err)
					}
				}
			}
		}
		lo = hi
	}
	idx[w.n] = blobPos

	if err := blobW.Flush(); err == nil {
		err = blobF.Close()
	} else {
		_ = blobF.Close()
	}
	if err != nil {
		_ = weightF.Close()
		return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: blob: %w", err)
	}
	if err := weightW.Flush(); err == nil {
		err = weightF.Close()
	} else {
		_ = weightF.Close()
	}
	if err != nil {
		return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: weights: %w", err)
	}
	return idx, blobPath, wPath, nil
}

// scanSpill replays every spilled arc in arrival order.
func (w *BinaryWriter) scanSpill(fn func(u, v NodeID, weight float64)) error {
	if _, err := w.spill.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("graph: binary writer: seek spill: %w", err)
	}
	r := bufio.NewReaderSize(w.spill, 1<<20)
	var rec [16]byte
	for i := int64(0); i < w.m; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return fmt.Errorf("graph: binary writer: read spill: %w", err)
		}
		fn(
			NodeID(binary.LittleEndian.Uint32(rec[0:])),
			NodeID(binary.LittleEndian.Uint32(rec[4:])),
			math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		)
	}
	return nil
}

// crcWriter tees everything written through a CRC-32C.
type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	_, _ = cw.crc.Write(p) // hash.Hash never errors
	return cw.w.Write(p)
}

func (cw *crcWriter) writeOffsets(off []int64, width int) error {
	var buf [8]byte
	for _, o := range off {
		if width == 4 {
			binary.LittleEndian.PutUint32(buf[:4], uint32(o))
			if _, err := cw.Write(buf[:4]); err != nil {
				return err
			}
		} else {
			binary.LittleEndian.PutUint64(buf[:8], uint64(o))
			if _, err := cw.Write(buf[:8]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (cw *crcWriter) copyFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_, err = io.Copy(cw, bufio.NewReaderSize(f, 1<<20))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// assemble writes the final image: header + sections + CRC, atomically.
func (w *BinaryWriter) assemble(outOff, outIdx []int64, outBlobPath, outWPath string,
	inOff, inIdx []int64, inBlobPath, inWPath string) (err error) {

	outBlobLen := outIdx[w.n]
	inBlobLen := inIdx[w.n]
	width := w.opts.OffsetWidth
	if width == 0 {
		width = 4
		if w.m > math.MaxUint32 || outBlobLen > math.MaxUint32 || inBlobLen > math.MaxUint32 {
			width = 8
		}
	}
	if width == 4 && (w.m > math.MaxUint32 || outBlobLen > math.MaxUint32 || inBlobLen > math.MaxUint32) {
		return fmt.Errorf("graph: binary writer: graph too large for 4-byte offsets (m=%d)", w.m)
	}

	tmp := w.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("graph: binary writer: %w", err)
	}
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err = bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], binaryVersion)
	if _, err = bw.Write(b8[:4]); err != nil {
		return err
	}

	cw := &crcWriter{w: bw, crc: crc32.New(castagnoli)}
	flags := uint32(0)
	if w.opts.Directed {
		flags |= flagDirected
	}
	if w.opts.Weighted {
		flags |= flagWeighted
	}
	binary.LittleEndian.PutUint32(b8[:4], flags)
	b8[4] = byte(width)
	b8[5], b8[6], b8[7] = 0, 0, 0
	if _, err = cw.Write(b8[:8]); err != nil {
		return err
	}
	for _, v := range []int64{w.n, w.m} {
		binary.LittleEndian.PutUint64(b8[:], uint64(v))
		if _, err = cw.Write(b8[:]); err != nil {
			return err
		}
	}
	name := w.opts.Name
	if len(name) > math.MaxUint16 {
		name = name[:math.MaxUint16]
	}
	binary.LittleEndian.PutUint16(b8[:2], uint16(len(name)))
	if _, err = cw.Write(b8[:2]); err != nil {
		return err
	}
	if _, err = cw.Write([]byte(name)); err != nil {
		return err
	}
	for _, v := range []int64{outBlobLen, inBlobLen} {
		binary.LittleEndian.PutUint64(b8[:], uint64(v))
		if _, err = cw.Write(b8[:]); err != nil {
			return err
		}
	}

	if err = cw.writeOffsets(outOff, width); err != nil {
		return err
	}
	if err = cw.writeOffsets(outIdx, width); err != nil {
		return err
	}
	if err = cw.copyFile(outBlobPath); err != nil {
		return err
	}
	if w.opts.Weighted {
		if err = cw.copyFile(outWPath); err != nil {
			return err
		}
	}
	if err = cw.writeOffsets(inOff, width); err != nil {
		return err
	}
	if err = cw.writeOffsets(inIdx, width); err != nil {
		return err
	}
	if err = cw.copyFile(inBlobPath); err != nil {
		return err
	}
	if w.opts.Weighted {
		if err = cw.copyFile(inWPath); err != nil {
			return err
		}
	}

	binary.LittleEndian.PutUint32(b8[:4], cw.crc.Sum32())
	if _, err = bw.Write(b8[:4]); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, w.path)
}

// WriteBinary encodes an already-built graph to the binary format. Both
// adjacency directions are encoded exactly as the source backend enumerates
// them — not re-derived from an arc replay — so a load via either backend
// reproduces the original enumeration order bit-for-bit, in-adjacency
// included (the order RR sampling consumes RNG draws in).
func WriteBinary(g G, path string, opts BinaryWriterOptions) (err error) {
	if opts.Name == "" {
		opts.Name = g.Name()
	}
	opts.Directed = g.Directed()
	if opts.SortBudgetBytes <= 0 {
		opts.SortBudgetBytes = 256 << 20
	}
	dir := opts.TempDir
	if dir == "" {
		dir = filepath.Dir(path)
	}
	w := &BinaryWriter{path: path, n: int64(g.N()), m: g.M(), opts: opts, closed: true}

	n := int64(g.N())
	outOff := make([]int64, n+1)
	inOff := make([]int64, n+1)
	for u := int64(0); u < n; u++ {
		outOff[u] = g.OutArcBase(NodeID(u))
		inOff[u+1] = inOff[u] + int64(g.InDegree(NodeID(u)))
	}
	outOff[n] = g.M()

	gv := View(g)
	outIdx, outBlobPath, outWPath, err := encodeRuns(w, dir, func(u NodeID) ([]NodeID, []float64) {
		return gv.OutNeighbors(u)
	})
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(outBlobPath); _ = os.Remove(outWPath) }()
	inIdx, inBlobPath, inWPath, err := encodeRuns(w, dir, func(v NodeID) ([]NodeID, []float64) {
		return gv.InNeighbors(v)
	})
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(inBlobPath); _ = os.Remove(inWPath) }()

	return w.assemble(outOff, outIdx, outBlobPath, outWPath, inOff, inIdx, inBlobPath, inWPath)
}

// encodeRuns encodes one adjacency direction node by node from runs
// supplied by the backend itself.
func encodeRuns(w *BinaryWriter, dir string, run func(NodeID) ([]NodeID, []float64)) (idx []int64, blobPath, wPath string, err error) {
	blobF, err := os.CreateTemp(dir, "gimb-blob-*")
	if err != nil {
		return nil, "", "", fmt.Errorf("graph: binary writer: %w", err)
	}
	blobPath = blobF.Name()
	blobW := bufio.NewWriterSize(blobF, 1<<20)
	weightF, err := os.CreateTemp(dir, "gimb-w-*")
	if err != nil {
		_ = blobF.Close()
		return nil, blobPath, "", fmt.Errorf("graph: binary writer: %w", err)
	}
	wPath = weightF.Name()
	weightW := bufio.NewWriterSize(weightF, 1<<20)

	idx = make([]int64, w.n+1)
	var blobPos int64
	var buf [binary.MaxVarintLen64]byte
	for u := int64(0); u < w.n; u++ {
		idx[u] = blobPos
		ids, ws := run(NodeID(u))
		prev := int64(0)
		for _, v := range ids {
			nb := binary.PutUvarint(buf[:], zigzag(int64(v)-prev))
			prev = int64(v)
			if _, err := blobW.Write(buf[:nb]); err != nil {
				_ = blobF.Close()
				_ = weightF.Close()
				return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: blob: %w", err)
			}
			blobPos += int64(nb)
		}
		if w.opts.Weighted {
			for _, wt := range ws {
				binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(wt))
				if _, err := weightW.Write(buf[:8]); err != nil {
					_ = blobF.Close()
					_ = weightF.Close()
					return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: weights: %w", err)
				}
			}
		}
	}
	idx[w.n] = blobPos

	if err := closeFlushed(blobW, blobF); err != nil {
		_ = weightF.Close()
		return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: blob: %w", err)
	}
	if err := closeFlushed(weightW, weightF); err != nil {
		return nil, blobPath, wPath, fmt.Errorf("graph: binary writer: weights: %w", err)
	}
	return idx, blobPath, wPath, nil
}

func closeFlushed(bw *bufio.Writer, f *os.File) error {
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// OpenBinaryOptions configure how a binary graph file is opened.
type OpenBinaryOptions struct {
	// Mmap maps the file instead of reading it onto the heap. Falls back
	// to a heap read on platforms without mmap.
	Mmap bool
}

// OpenBinary opens a binary graph file as a Compact backend. With Mmap the
// heap holds only the header metadata — the adjacency stays in the page
// cache — and MemoryBytes reports the (near-zero) resident footprint
// honestly. The checksum is always verified (one sequential pass).
func OpenBinary(path string, opts OpenBinaryOptions) (*Compact, error) {
	if opts.Mmap && mmapSupported {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("graph: open %s: %w", path, err)
		}
		st, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("graph: stat %s: %w", path, err)
		}
		mp, err := mapFile(f, st.Size())
		cerr := f.Close() // mapping outlives the descriptor
		if err != nil {
			return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
		}
		if cerr != nil {
			_ = mp.close()
			return nil, fmt.Errorf("graph: close %s: %w", path, cerr)
		}
		c, err := parseBinary(mp.data, path)
		if err != nil {
			_ = mp.close()
			return nil, err
		}
		c.mapped = mp
		c.resident = 0
		return c, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graph: read %s: %w", path, err)
	}
	c, err := parseBinary(data, path)
	if err != nil {
		return nil, err
	}
	c.resident = int64(len(data))
	return c, nil
}

// parseBinary verifies the envelope and slices the sections out of data.
func parseBinary(data []byte, path string) (*Compact, error) {
	if len(data) < 8 || string(data[:4]) != binaryMagic {
		return nil, fmt.Errorf("%w: %s", ErrBinaryMagic, path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != binaryVersion {
		return nil, fmt.Errorf("%w: %s has version %d, want %d", ErrBinaryVersion, path, v, binaryVersion)
	}
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: %s", ErrBinaryTruncated, path)
	}
	payload := data[8 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: %s: got %08x want %08x", ErrBinaryChecksum, path, got, want)
	}

	p := payload
	pos := 0
	need := func(k int) error {
		if pos+k > len(p) {
			return fmt.Errorf("%w: %s (section at byte %d)", ErrBinaryTruncated, path, pos)
		}
		return nil
	}
	if err := need(8 + 16); err != nil {
		return nil, err
	}
	flags := binary.LittleEndian.Uint32(p[pos:])
	width := int(p[pos+4])
	pos += 8
	n := int64(binary.LittleEndian.Uint64(p[pos:]))
	m := int64(binary.LittleEndian.Uint64(p[pos+8:]))
	pos += 16
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("graph: %s: bad offset width %d", path, width)
	}
	if n < 0 || n > math.MaxInt32 || m < 0 {
		return nil, fmt.Errorf("graph: %s: bad counts n=%d m=%d", path, n, m)
	}
	if err := need(2); err != nil {
		return nil, err
	}
	nameLen := int(binary.LittleEndian.Uint16(p[pos:]))
	pos += 2
	if err := need(nameLen + 16); err != nil {
		return nil, err
	}
	name := string(p[pos : pos+nameLen])
	pos += nameLen
	outBlobLen := int64(binary.LittleEndian.Uint64(p[pos:]))
	inBlobLen := int64(binary.LittleEndian.Uint64(p[pos+8:]))
	pos += 16
	if outBlobLen < 0 || inBlobLen < 0 {
		return nil, fmt.Errorf("graph: %s: negative blob length", path)
	}

	take := func(k int64) ([]byte, error) {
		if k < 0 || int64(pos)+k > int64(len(p)) {
			return nil, fmt.Errorf("%w: %s (section at byte %d)", ErrBinaryTruncated, path, pos)
		}
		s := p[pos : pos+int(k)]
		pos += int(k)
		return s, nil
	}

	c := &Compact{
		name:     name,
		directed: flags&flagDirected != 0,
		n:        int32(n),
		m:        m,
		offWidth: width,
	}
	idxBytes := (n + 1) * int64(width)
	var err error
	if c.outOff, err = take(idxBytes); err != nil {
		return nil, err
	}
	if c.outIdx, err = take(idxBytes); err != nil {
		return nil, err
	}
	if c.outBlob, err = take(outBlobLen); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		if c.outWRaw, err = take(m * 8); err != nil {
			return nil, err
		}
	}
	if c.inOff, err = take(idxBytes); err != nil {
		return nil, err
	}
	if c.inIdx, err = take(idxBytes); err != nil {
		return nil, err
	}
	if c.inBlob, err = take(inBlobLen); err != nil {
		return nil, err
	}
	if flags&flagWeighted != 0 {
		if c.inWRaw, err = take(m * 8); err != nil {
			return nil, err
		}
	}
	if pos != len(p) {
		return nil, fmt.Errorf("graph: %s: %d trailing payload bytes", path, len(p)-pos)
	}
	if c.off(c.outOff, n) != m || c.off(c.inOff, n) != m {
		return nil, fmt.Errorf("graph: %s: offset tail does not equal m=%d", path, m)
	}
	return c, nil
}

// LoadBinaryCSR reads a binary graph file and expands it into the in-memory
// CSR backend. Expansion goes through the Compact accessors, so the two
// backends' views of a file cannot diverge.
func LoadBinaryCSR(path string) (*Graph, error) {
	c, err := OpenBinary(path, OpenBinaryOptions{})
	if err != nil {
		return nil, err
	}
	return c.ToCSR(), nil
}

// ToCSR expands a Compact into the in-memory CSR backend.
func (c *Compact) ToCSR() *Graph {
	g := &Graph{
		n: c.n, m: c.m,
		name: c.name, directed: c.directed,
		outOff: make([]int64, int64(c.n)+1),
		outTo:  make([]NodeID, c.m),
		outW:   make([]float64, c.m),
		inOff:  make([]int64, int64(c.n)+1),
		inFrom: make([]NodeID, c.m),
		inW:    make([]float64, c.m),
	}
	v := View(c)
	for u := NodeID(0); u < c.n; u++ {
		g.outOff[u] = c.OutArcBase(u)
		g.inOff[u] = c.off(c.inOff, int64(u))
		to, ws := v.OutNeighbors(u)
		copy(g.outTo[g.outOff[u]:], to)
		copy(g.outW[g.outOff[u]:], ws)
		fr, fws := v.InNeighbors(u)
		copy(g.inFrom[g.inOff[u]:], fr)
		copy(g.inW[g.inOff[u]:], fws)
	}
	g.outOff[c.n] = c.m
	g.inOff[c.n] = c.m
	return g
}
