//go:build !unix

package graph

import (
	"errors"
	"os"
)

const mmapSupported = false

type mapping struct {
	data []byte
}

func mapFile(f *os.File, size int64) (*mapping, error) {
	return nil, errors.New("graph: mmap unsupported on this platform")
}

func (m *mapping) close() error { return nil }
