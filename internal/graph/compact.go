package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compact is the billion-edge graph backend: adjacency is kept as
// zigzag-varint delta-encoded byte blobs (one contiguous run per node, in
// stored arc order) addressed by fixed-width offset indexes, optionally
// memory-mapped straight from the binary graph file so the heap never holds
// the arc arrays at all.
//
// Deltas are taken in *stored order*, not sorted order: preserving the arc
// stream order is what makes a Compact observationally identical to the CSR
// built from the same stream — the samplers consume RNG draws per arc in
// enumeration order, so reordering arcs would silently change every seed
// set. Sorted adjacency would compress better; determinism wins.
//
// Accessors decode on demand. The base value allocates fresh result slices
// on every call and is therefore safe for arbitrary concurrent use; View()
// returns a handle with private reusable decode buffers for hot loops
// (valid until the next call of the same accessor on that view).
type Compact struct {
	name     string
	directed bool
	n        int32
	m        int64
	offWidth int // bytes per offset index entry: 4 or 8

	// Section views (into the mmap or a heap copy of the file).
	outOff  []byte // (n+1)*offWidth arc bases
	outIdx  []byte // (n+1)*offWidth byte offsets into outBlob
	outBlob []byte
	outWRaw []byte // m*8 little-endian float64 bits, nil when weights are implicit 1.0
	inOff   []byte
	inIdx   []byte
	inBlob  []byte
	inWRaw  []byte

	// wfn, when set, overrides stored weights: weights are computed lazily
	// at decode time (the Reweighted path — no O(m) weight copy is ever
	// materialized).
	wfn func(u, v NodeID) float64

	mapped   *mapping // non-nil when the sections view an mmap
	resident int64    // heap bytes held by the section slices (0 when mapped)

	sc *compactScratch // nil on the shared base value
}

type compactScratch struct {
	outTo []NodeID
	outW  []float64
	inFr  []NodeID
	inW   []float64
}

// N returns the number of nodes.
func (c *Compact) N() int32 { return c.n }

// M returns the number of directed arcs.
func (c *Compact) M() int64 { return c.m }

// Name returns the dataset name stored in the binary file.
func (c *Compact) Name() string { return c.name }

// Directed reports whether the source edge list was directed.
func (c *Compact) Directed() bool { return c.directed }

func (c *Compact) off(idx []byte, i int64) int64 {
	if c.offWidth == 4 {
		return int64(binary.LittleEndian.Uint32(idx[i*4:]))
	}
	return int64(binary.LittleEndian.Uint64(idx[i*8:]))
}

// OutDegree returns the out-degree of u.
func (c *Compact) OutDegree(u NodeID) int32 {
	return int32(c.off(c.outOff, int64(u)+1) - c.off(c.outOff, int64(u)))
}

// InDegree returns the in-degree of v.
func (c *Compact) InDegree(v NodeID) int32 {
	return int32(c.off(c.inOff, int64(v)+1) - c.off(c.inOff, int64(v)))
}

// OutArcBase returns the global index of u's first outgoing arc.
func (c *Compact) OutArcBase(u NodeID) int64 { return c.off(c.outOff, int64(u)) }

// decodeIDs decodes the zigzag-varint delta run for node u from blob into
// ids (which must have the node's degree capacity).
func decodeIDs(blob []byte, ids []NodeID) {
	prev := int64(0)
	p := 0
	for i := range ids {
		d, n := binary.Uvarint(blob[p:])
		p += n
		// Zigzag decode.
		prev += int64(d>>1) ^ -int64(d&1)
		ids[i] = NodeID(prev)
	}
}

func (c *Compact) outSlices(deg int32) ([]NodeID, []float64) {
	if c.sc != nil {
		if cap(c.sc.outTo) < int(deg) {
			c.sc.outTo = make([]NodeID, deg, deg+deg/2+8)
			c.sc.outW = make([]float64, deg, deg+deg/2+8)
		}
		return c.sc.outTo[:deg], c.sc.outW[:deg]
	}
	return make([]NodeID, deg), make([]float64, deg)
}

func (c *Compact) inSlices(deg int32) ([]NodeID, []float64) {
	if c.sc != nil {
		if cap(c.sc.inFr) < int(deg) {
			c.sc.inFr = make([]NodeID, deg, deg+deg/2+8)
			c.sc.inW = make([]float64, deg, deg+deg/2+8)
		}
		return c.sc.inFr[:deg], c.sc.inW[:deg]
	}
	return make([]NodeID, deg), make([]float64, deg)
}

// OutNeighbors returns the targets and weights of u's outgoing arcs in
// stored order. The slices are decode buffers: valid until the next
// OutNeighbors call on this value (base values always return fresh slices).
func (c *Compact) OutNeighbors(u NodeID) ([]NodeID, []float64) {
	base := c.off(c.outOff, int64(u))
	deg := int32(c.off(c.outOff, int64(u)+1) - base)
	ids, ws := c.outSlices(deg)
	if deg == 0 {
		return ids, ws
	}
	decodeIDs(c.outBlob[c.off(c.outIdx, int64(u)):c.off(c.outIdx, int64(u)+1)], ids)
	c.fillWeights(ws, ids, base, u, false, c.outWRaw)
	return ids, ws
}

// InNeighbors returns the sources and weights of v's incoming arcs in
// stored order, with the same buffer-validity contract as OutNeighbors.
func (c *Compact) InNeighbors(v NodeID) ([]NodeID, []float64) {
	base := c.off(c.inOff, int64(v))
	deg := int32(c.off(c.inOff, int64(v)+1) - base)
	ids, ws := c.inSlices(deg)
	if deg == 0 {
		return ids, ws
	}
	decodeIDs(c.inBlob[c.off(c.inIdx, int64(v)):c.off(c.inIdx, int64(v)+1)], ids)
	c.fillWeights(ws, ids, base, v, true, c.inWRaw)
	return ids, ws
}

// fillWeights produces the weight column for one adjacency run: lazily via
// wfn when a reweighting is installed, from the stored float64 section when
// present, or the implicit 1.0 otherwise.
func (c *Compact) fillWeights(ws []float64, ids []NodeID, arcBase int64, node NodeID, in bool, raw []byte) {
	switch {
	case c.wfn != nil:
		if in {
			for i, src := range ids {
				ws[i] = c.wfn(src, node)
			}
		} else {
			for i, dst := range ids {
				ws[i] = c.wfn(node, dst)
			}
		}
	case raw != nil:
		for i := range ws {
			ws[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[(arcBase+int64(i))*8:]))
		}
	default:
		for i := range ws {
			ws[i] = 1.0
		}
	}
}

// Weight returns the weight of arc (u,v) and whether the arc exists; the
// first of any parallel arcs wins, matching the CSR backend.
func (c *Compact) Weight(u, v NodeID) (float64, bool) {
	to, w := c.OutNeighbors(u)
	for i, t := range to {
		if t == v {
			return w[i], true
		}
	}
	return 0, false
}

// MemoryBytes reports the heap-resident footprint only: section slices that
// were read into memory plus this value's decode buffers. Memory-mapped
// segments are deliberately excluded — their pages are kernel page cache,
// evictable under pressure, and counting the virtual size would make the
// core memory accountant crash budgeted runs that in fact fit.
func (c *Compact) MemoryBytes() int64 {
	b := c.resident
	if c.sc != nil {
		b += int64(cap(c.sc.outTo))*4 + int64(cap(c.sc.outW))*8 +
			int64(cap(c.sc.inFr))*4 + int64(cap(c.sc.inW))*8
	}
	return b
}

// View returns a handle sharing the graph sections but owning private
// decode buffers; each goroutine of a parallel consumer takes one.
func (c *Compact) View() G {
	nc := *c
	nc.sc = &compactScratch{}
	return &nc
}

// Reweighted returns a Compact sharing this graph's structure whose arc
// weights are fn(u, v), computed lazily at decode time.
func (c *Compact) Reweighted(fn func(u, v NodeID) float64) G {
	nc := *c
	nc.wfn = fn
	if nc.sc != nil {
		nc.sc = &compactScratch{}
	}
	return &nc
}

// WithName returns a shallow copy carrying name.
// Mapped reports whether the adjacency sections view an mmap'd file rather
// than heap memory.
func (c *Compact) Mapped() bool { return c.mapped != nil }

func (c *Compact) WithName(name string) *Compact {
	nc := *c
	nc.name = name
	return &nc
}

// Reverse returns the transpose: in- and out-sections swapped, sharing all
// storage (weights on the reversed arc (v,u) equal the original (u,v), as
// on the CSR backend).
func (c *Compact) Reverse() *Compact {
	nc := *c
	nc.outOff, nc.inOff = c.inOff, c.outOff
	nc.outIdx, nc.inIdx = c.inIdx, c.outIdx
	nc.outBlob, nc.inBlob = c.inBlob, c.outBlob
	nc.outWRaw, nc.inWRaw = c.inWRaw, c.outWRaw
	nc.name = c.name + "-rev"
	nc.directed = true
	if c.wfn != nil {
		orig := c.wfn
		nc.wfn = func(u, v NodeID) float64 { return orig(v, u) }
	}
	if nc.sc != nil {
		nc.sc = &compactScratch{}
	}
	return &nc
}

// Close releases the memory mapping, if any. Accessors must not be used
// afterwards. Heap-loaded Compacts need no Close.
func (c *Compact) Close() error {
	if c.mapped == nil {
		return nil
	}
	m := c.mapped
	c.mapped = nil
	return m.close()
}

// Validate checks structural invariants of the decoded sections; it is
// O(m) and intended for tests and post-load verification of untrusted
// files.
func (c *Compact) Validate() error {
	if c.off(c.outOff, int64(c.n)) != c.m || c.off(c.inOff, int64(c.n)) != c.m {
		return fmt.Errorf("compact: offset tail does not equal m=%d", c.m)
	}
	var inArcs int64
	for u := NodeID(0); u < c.n; u++ {
		if c.off(c.outOff, int64(u)) > c.off(c.outOff, int64(u)+1) ||
			c.off(c.inOff, int64(u)) > c.off(c.inOff, int64(u)+1) {
			return fmt.Errorf("compact: non-monotone offsets at node %d", u)
		}
		to, _ := c.OutNeighbors(u)
		for _, v := range to {
			if v < 0 || v >= c.n {
				return fmt.Errorf("compact: node %d has out-neighbor %d out of range", u, v)
			}
		}
		fr, _ := c.InNeighbors(u)
		inArcs += int64(len(fr))
		for _, v := range fr {
			if v < 0 || v >= c.n {
				return fmt.Errorf("compact: node %d has in-neighbor %d out of range", u, v)
			}
		}
	}
	if inArcs != c.m {
		return fmt.Errorf("compact: in-arc total %d != m %d", inArcs, c.m)
	}
	return nil
}
