package graph

import (
	"strings"
	"testing"

	"github.com/sigdata/goinfmax/internal/rng"
)

// path returns the directed path 0→1→…→n−1.
func pathGraph(t *testing.T, n int32) *Graph {
	t.Helper()
	b := NewBuilder(n, true)
	for i := int32(0); i < n-1; i++ {
		if err := b.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestEffectiveDiameterPath(t *testing.T) {
	g := pathGraph(t, 11)
	// Exact hop plot from all sources: pairs at distance d. With q = 1.0 we
	// must recover the full diameter (10).
	d := g.EffectiveDiameter(rng.New(1), int(g.N()), 1.0)
	if d != 10 {
		t.Fatalf("full diameter = %v want 10", d)
	}
	d90 := g.EffectiveDiameter(rng.New(1), int(g.N()), 0.9)
	if d90 <= 0 || d90 > 10 {
		t.Fatalf("90%% diameter = %v out of (0,10]", d90)
	}
	if d90 >= d {
		t.Fatalf("90%% diameter %v should be below full diameter %v", d90, d)
	}
}

func TestEffectiveDiameterSingleton(t *testing.T) {
	g := NewBuilder(1, true).Build()
	if d := g.EffectiveDiameter(rng.New(1), 1, 0.9); d != 0 {
		t.Fatalf("singleton diameter %v", d)
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder(4, false)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	b.SetName("line4")
	g := b.Build()
	st := g.ComputeStats(rng.New(1), 4)
	if st.Name != "line4" {
		t.Fatalf("name %q", st.Name)
	}
	if st.N != 4 || st.M != 6 {
		t.Fatalf("n=%d m=%d", st.N, st.M)
	}
	if st.Directed {
		t.Fatal("undirected graph reported directed")
	}
	// Undirected avg degree counts each edge once: 3 edges / 4 nodes.
	if st.AvgDegree != 0.75 {
		t.Fatalf("avg degree %v want 0.75", st.AvgDegree)
	}
	if st.MaxOutDegree != 2 || st.MaxInDegree != 2 {
		t.Fatalf("max degrees %d/%d", st.MaxOutDegree, st.MaxInDegree)
	}
	if !strings.Contains(st.String(), "line4") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(4, true)
	// Node 0 has out-degree 3; others 0.
	for v := NodeID(1); v < 4; v++ {
		if err := b.AddEdge(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	degs, counts := g.DegreeHistogram()
	if len(degs) != 2 || degs[0] != 0 || degs[1] != 3 {
		t.Fatalf("degs %v", degs)
	}
	if counts[0] != 3 || counts[1] != 1 {
		t.Fatalf("counts %v", counts)
	}
}
