// Package graph implements the directed, edge-weighted social-network
// representation used by every influence-maximization algorithm in the
// platform (paper §2, Definition 1).
//
// The in-memory layout is a compressed sparse row (CSR) structure with both
// out-adjacency and in-adjacency, so forward diffusion (IC/LT simulation) and
// reverse traversals (RR-set construction) are both cache-friendly. Node IDs
// are dense int32 indices in [0, N).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node; IDs are dense in [0, N).
type NodeID = int32

// Edge is a single directed, weighted edge used during graph construction.
type Edge struct {
	From, To NodeID
	Weight   float64
}

// Graph is an immutable directed edge-weighted graph in CSR form.
//
// The zero value is an empty graph; construct real graphs with a Builder or
// the loaders in this package. Weights are stored per directed arc; the
// weight of arc (u,v) is the influence probability of u on v under IC, or
// the incoming-weight contribution under LT (paper §2.1).
type Graph struct {
	n int32
	m int64

	// Out-adjacency CSR.
	outOff []int64
	outTo  []NodeID
	outW   []float64

	// In-adjacency CSR (arcs grouped by head).
	inOff  []int64
	inFrom []NodeID
	inW    []float64

	name     string
	directed bool // true when built from a directed edge list
}

// N returns the number of nodes.
func (g *Graph) N() int32 { return g.n }

// M returns the number of directed arcs.
func (g *Graph) M() int64 { return g.m }

// Name returns the dataset name attached at build time ("" if none).
func (g *Graph) Name() string { return g.name }

// Directed reports whether the source edge list was directed. Undirected
// inputs are symmetrized at build time (paper §5: "the undirected graphs are
// made directed by considering, for each edge, the arcs in both directions"),
// so M counts both arcs.
func (g *Graph) Directed() bool { return g.directed }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int32 {
	return int32(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int32 {
	return int32(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns the targets and weights of u's outgoing arcs. The
// returned slices alias internal storage and must not be modified.
func (g *Graph) OutNeighbors(u NodeID) ([]NodeID, []float64) {
	lo, hi := g.outOff[u], g.outOff[u+1]
	return g.outTo[lo:hi], g.outW[lo:hi]
}

// InNeighbors returns the sources and weights of v's incoming arcs. The
// returned slices alias internal storage and must not be modified.
func (g *Graph) InNeighbors(v NodeID) ([]NodeID, []float64) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inFrom[lo:hi], g.inW[lo:hi]
}

// OutArcBase returns the global index of u's first outgoing arc in the
// out-CSR: arc i of OutNeighbors(u) has global index OutArcBase(u)+i, and
// indices are dense in [0, M). Live-edge world evaluation keys its O(1)
// per-arc coin functions on this index, so a world's coins are a pure
// function of (worldSeed, arc) independent of traversal order.
func (g *Graph) OutArcBase(u NodeID) int64 { return g.outOff[u] }

// Weight returns the weight of arc (u,v) and whether the arc exists. When
// parallel arcs exist the first match is returned.
func (g *Graph) Weight(u, v NodeID) (float64, bool) {
	to, w := g.OutNeighbors(u)
	for i, t := range to {
		if t == v {
			return w[i], true
		}
	}
	return 0, false
}

// TotalInWeight returns the sum of weights of v's incoming arcs.
func (g *Graph) TotalInWeight(v NodeID) float64 {
	_, w := g.InNeighbors(v)
	s := 0.0
	for _, x := range w {
		s += x
	}
	return s
}

// AvgDegree returns the average out-degree m/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// MemoryBytes returns the resident size of the CSR arrays — capacity, not
// length, since allocator slack is real resident memory — used by the
// memory-footprint instrumentation (paper Fig. 8). Each backend reports its
// own actual footprint: Compact counts heap sections but not mmap'd ones
// (those are kernel page cache, reclaimable under pressure).
func (g *Graph) MemoryBytes() int64 {
	const idSz, wSz, offSz = 4, 8, 8
	arcs := int64(cap(g.outTo) + cap(g.inFrom))
	ws := int64(cap(g.outW) + cap(g.inW))
	offs := int64(cap(g.outOff) + cap(g.inOff))
	return arcs*idSz + ws*wSz + offs*offSz
}

// Validate checks structural invariants; it is used by tests and after
// loading untrusted edge lists.
func (g *Graph) Validate() error {
	if int64(len(g.outTo)) != g.m || int64(len(g.inFrom)) != g.m {
		return fmt.Errorf("graph: arc array length mismatch: out=%d in=%d m=%d",
			len(g.outTo), len(g.inFrom), g.m)
	}
	if len(g.outOff) != int(g.n)+1 || len(g.inOff) != int(g.n)+1 {
		return errors.New("graph: offset array length mismatch")
	}
	if g.outOff[g.n] != g.m || g.inOff[g.n] != g.m {
		return errors.New("graph: offset tail does not equal m")
	}
	for u := int32(0); u < g.n; u++ {
		if g.outOff[u] > g.outOff[u+1] || g.inOff[u] > g.inOff[u+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", u)
		}
	}
	for i, v := range g.outTo {
		if v < 0 || v >= g.n {
			return fmt.Errorf("graph: out arc %d has invalid target %d", i, v)
		}
	}
	for i, u := range g.inFrom {
		if u < 0 || u >= g.n {
			return fmt.Errorf("graph: in arc %d has invalid source %d", i, u)
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n        int32
	edges    []Edge
	name     string
	directed bool
}

// NewBuilder creates a Builder for a graph with n nodes. If directed is
// false, AddEdge adds arcs in both directions at Build time.
func NewBuilder(n int32, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// SetName attaches a dataset name to the built graph.
func (b *Builder) SetName(name string) { b.name = name }

// AddEdge records edge (u,v) with weight w. For undirected builders the
// reverse arc is materialized during Build. Self-loops are dropped: a node
// trivially influences itself (it is a seed), so a self-arc is meaningless
// under both IC and LT.
func (b *Builder) AddEdge(u, v NodeID, w float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return nil
	}
	b.edges = append(b.edges, Edge{From: u, To: v, Weight: w})
	return nil
}

// NumEdges returns the number of edges recorded so far (before any
// symmetrization).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the graph. Parallel edges are preserved (needed for the
// LT-"parallel edges" weight model on multigraphs, paper §2.1.2); callers
// wanting a simple graph should use BuildSimple.
func (b *Builder) Build() *Graph {
	return b.build(false)
}

// BuildSimple finalizes the graph, consolidating parallel arcs (u,v) by
// summing their weights.
func (b *Builder) BuildSimple() *Graph {
	return b.build(true)
}

func (b *Builder) build(consolidate bool) *Graph {
	arcs := b.edges
	if !b.directed {
		sym := make([]Edge, 0, 2*len(arcs))
		for _, e := range arcs {
			sym = append(sym, e, Edge{From: e.To, To: e.From, Weight: e.Weight})
		}
		arcs = sym
	}
	if consolidate {
		arcs = consolidateArcs(arcs)
	}
	g := &Graph{n: b.n, name: b.name, directed: b.directed}
	g.m = int64(len(arcs))

	// Counting sort by source for the out-CSR.
	g.outOff = make([]int64, b.n+1)
	for _, e := range arcs {
		g.outOff[e.From+1]++
	}
	for i := int32(0); i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	g.outTo = make([]NodeID, g.m)
	g.outW = make([]float64, g.m)
	cur := make([]int64, b.n)
	copy(cur, g.outOff[:b.n])
	for _, e := range arcs {
		p := cur[e.From]
		g.outTo[p] = e.To
		g.outW[p] = e.Weight
		cur[e.From]++
	}

	// Counting sort by target for the in-CSR.
	g.inOff = make([]int64, b.n+1)
	for _, e := range arcs {
		g.inOff[e.To+1]++
	}
	for i := int32(0); i < b.n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	g.inFrom = make([]NodeID, g.m)
	g.inW = make([]float64, g.m)
	copy(cur, g.inOff[:b.n])
	for _, e := range arcs {
		p := cur[e.To]
		g.inFrom[p] = e.From
		g.inW[p] = e.Weight
		cur[e.To]++
	}
	return g
}

func consolidateArcs(arcs []Edge) []Edge {
	if len(arcs) == 0 {
		return arcs
	}
	sorted := make([]Edge, len(arcs))
	copy(sorted, arcs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].From != sorted[j].From {
			return sorted[i].From < sorted[j].From
		}
		return sorted[i].To < sorted[j].To
	})
	out := sorted[:0]
	for _, e := range sorted {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.From == e.From && last.To == e.To {
				last.Weight += e.Weight
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// WithName returns a shallow copy of g (sharing all arrays) carrying name.
func (g *Graph) WithName(name string) *Graph {
	ng := *g
	ng.name = name
	return &ng
}

// Reverse returns a new Graph with every arc direction flipped. RR-set
// construction (paper §4.2) traverses the transpose graph; since we already
// store in-adjacency, Reverse is a cheap view-style copy sharing no state.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		n: g.n, m: g.m,
		outOff: g.inOff, outTo: g.inFrom, outW: g.inW,
		inOff: g.outOff, inFrom: g.outTo, inW: g.outW,
		name: g.name + "-rev", directed: true,
	}
}

// Reweighted returns a copy of g whose arc weights are produced by
// fn(u, v, parallelCount). The structure arrays are shared where possible;
// only the weight arrays are fresh.
func (g *Graph) Reweighted(fn func(u, v NodeID) float64) *Graph {
	ng := &Graph{
		n: g.n, m: g.m,
		outOff: g.outOff, outTo: g.outTo,
		inOff: g.inOff, inFrom: g.inFrom,
		name: g.name, directed: g.directed,
	}
	ng.outW = make([]float64, len(g.outW))
	ng.inW = make([]float64, len(g.inW))
	for u := int32(0); u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for i := lo; i < hi; i++ {
			ng.outW[i] = fn(u, g.outTo[i])
		}
	}
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		for i := lo; i < hi; i++ {
			ng.inW[i] = fn(g.inFrom[i], v)
		}
	}
	return ng
}

// ArcCount returns the number of parallel arcs from u to v.
func (g *Graph) ArcCount(u, v NodeID) int {
	to, _ := g.OutNeighbors(u)
	c := 0
	for _, t := range to {
		if t == v {
			c++
		}
	}
	return c
}

// Edges returns a fresh slice of all arcs; intended for tests and small
// graphs only.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := int32(0); u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for i := lo; i < hi; i++ {
			es = append(es, Edge{From: u, To: g.outTo[i], Weight: g.outW[i]})
		}
	}
	return es
}
