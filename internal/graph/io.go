package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Edge-list text format
//
// The loaders accept the SNAP-style whitespace-separated edge list used by
// the paper's datasets:
//
//	# comment lines start with '#'
//	<from> <to> [weight]
//
// An optional header line "n m" (two integers, no weight column ambiguity:
// it must be the first non-comment line and directed below) can pre-size the
// graph; otherwise node count is max ID + 1.

// LoadEdgeList reads an edge list from r and builds a graph. If directed is
// false each edge contributes arcs both ways. Missing weights default to 1.
func LoadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	type rawEdge struct {
		u, v NodeID
		w    float64
	}
	var edges []rawEdge
	maxID := int64(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", lineNo, fields[2], err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, rawEdge{NodeID(u), NodeID(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	b := NewBuilder(int32(maxID+1), directed)
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// LoadEdgeListFile opens path and calls LoadEdgeList.
func LoadEdgeListFile(path string, directed bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }() // read-only handle: close error is immaterial
	g, err := LoadEdgeList(f, directed)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes g's arcs as "<from> <to> <weight>" lines. Undirected
// graphs are written with both arcs (lossless round trip through a directed
// load).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# goinfmax edge list: n=%d m=%d name=%s\n", g.n, g.m, g.name); err != nil {
		return err
	}
	for u := int32(0); u < g.n; u++ {
		to, ws := g.OutNeighbors(u)
		for i, v := range to {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveEdgeListFile writes the edge list to path, creating or truncating it.
func (g *Graph) SaveEdgeListFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return g.WriteEdgeList(f)
}
