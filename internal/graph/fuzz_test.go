package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList exercises the untrusted-input parser: any byte input
// must either yield a structurally valid graph or a clean error — never a
// panic and never a Validate-failing graph.
func FuzzLoadEdgeList(f *testing.F) {
	seeds := []string{
		"0 1\n1 2\n",
		"# comment\n0 1 0.5\n",
		"% other\n\n3 4 1e-3\n",
		"0 0\n",           // self-loop (dropped)
		"9 9 nope\n",      // bad weight
		"a b\n",           // bad ids
		"-1 2\n",          // negative id
		"0 1 0.5 extra\n", // extra fields ignored? (3+ fields: weight parsed)
		"2147483646 0\n",  // near int32 max
		"0\t1\t0.25\n",    // tabs
	}
	for _, s := range seeds {
		f.Add([]byte(s), true)
		f.Add([]byte(s), false)
	}
	f.Fuzz(func(t *testing.T, data []byte, directed bool) {
		if len(data) > 1<<16 {
			return
		}
		// Huge node ids would allocate n-sized arrays; cap them by skipping
		// inputs with long digit runs (the parser itself is what we fuzz).
		for _, tok := range strings.Fields(string(data)) {
			if len(tok) > 6 && tok[0] >= '0' && tok[0] <= '9' {
				return
			}
		}
		g, err := LoadEdgeList(bytes.NewReader(data), directed)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph fails validation: %v (input %q)", err, data)
		}
		// Round trip must stay valid and size-stable.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadEdgeList(&buf, true)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed arc count %d -> %d", g.M(), g2.M())
		}
	})
}
