package graph

import (
	"fmt"
	"sort"

	"github.com/sigdata/goinfmax/internal/rng"
)

// Stats summarizes a dataset the way the paper's Table 1 does: node count,
// arc count, directedness, average degree and the 90th-percentile effective
// diameter.
type Stats struct {
	Name              string
	N                 int32
	M                 int64
	Directed          bool
	AvgDegree         float64
	EffectiveDiameter float64 // 90th-percentile, hop-plot interpolated
	MaxOutDegree      int32
	MaxInDegree       int32
}

// String renders the stats as a single Table-1-style row.
func (s Stats) String() string {
	kind := "Undirected"
	if s.Directed {
		kind = "Directed"
	}
	return fmt.Sprintf("%-16s n=%-9d m=%-10d %-10s avgDeg=%.2f 90%%diam=%.1f",
		s.Name, s.N, s.M, kind, s.AvgDegree, s.EffectiveDiameter)
}

// ComputeStats gathers summary statistics. Effective diameter is estimated
// by BFS from up to sampleSources random sources (the exact hop plot on
// large graphs is quadratic; sampling follows standard practice). Pass
// sampleSources <= 0 for the default of 64.
func (g *Graph) ComputeStats(r *rng.Source, sampleSources int) Stats {
	st := Stats{
		Name:      g.name,
		N:         g.n,
		M:         g.m,
		Directed:  g.directed,
		AvgDegree: g.AvgDegree(),
	}
	if g.directed {
		// Paper reports avg degree of the directed graph as m/n directly;
		// for symmetrized undirected graphs each edge counts once.
	} else {
		st.AvgDegree = float64(g.m) / 2 / float64(g.n)
	}
	for u := int32(0); u < g.n; u++ {
		if d := g.OutDegree(u); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
		if d := g.InDegree(u); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
	}
	st.EffectiveDiameter = g.EffectiveDiameter(r, sampleSources, 0.9)
	return st
}

// EffectiveDiameter estimates the q-percentile effective diameter: the
// (interpolated) number of hops within which fraction q of all reachable
// node pairs lie. Sources are sampled uniformly.
func (g *Graph) EffectiveDiameter(r *rng.Source, sampleSources int, q float64) float64 {
	if g.n == 0 {
		return 0
	}
	if sampleSources <= 0 {
		sampleSources = 64
	}
	if int32(sampleSources) > g.n {
		sampleSources = int(g.n)
	}
	if r == nil {
		r = rng.New(1)
	}
	// Per-source cumulative reach vectors: cums[s][d] = nodes within ≤ d
	// hops of source s. Summed afterwards with plateau extension, since
	// sources have different BFS depths.
	var cums [][]int64
	dist := make([]int32, g.n)
	queue := make([]NodeID, 0, g.n)
	perm := r.Perm(int(g.n))
	maxLen := 0
	for s := 0; s < sampleSources; s++ {
		src := NodeID(perm[s])
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = queue[:0]
		queue = append(queue, src)
		maxD := int32(0)
		reach := []int64{1} // reach[d] = nodes at distance exactly d
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			to, _ := g.OutNeighbors(u)
			for _, v := range to {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] > maxD {
						maxD = dist[v]
						reach = append(reach, 0)
					}
					reach[dist[v]]++
					queue = append(queue, v)
				}
			}
		}
		cum := int64(0)
		for d := range reach {
			cum += reach[d]
			reach[d] = cum
		}
		cums = append(cums, reach)
		if len(reach) > maxLen {
			maxLen = len(reach)
		}
	}
	if maxLen == 0 {
		return 0
	}
	hopCount := make([]int64, maxLen)
	for _, c := range cums {
		for d := 0; d < maxLen; d++ {
			if d < len(c) {
				hopCount[d] += c[d]
			} else {
				hopCount[d] += c[len(c)-1] // plateau: all reached already
			}
		}
	}
	total := hopCount[len(hopCount)-1]
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	for d := 0; d < len(hopCount); d++ {
		if float64(hopCount[d]) >= target {
			if d == 0 {
				return 0
			}
			prev := float64(hopCount[d-1])
			// Linear interpolation within the hop, as in the SNAP convention.
			frac := (target - prev) / (float64(hopCount[d]) - prev)
			return float64(d-1) + frac
		}
	}
	return float64(len(hopCount) - 1)
}

// DegreeHistogram returns sorted (degree, count) pairs of out-degrees,
// useful for verifying that synthetic datasets are heavy-tailed.
func (g *Graph) DegreeHistogram() ([]int32, []int64) {
	hist := make(map[int32]int64)
	for u := int32(0); u < g.n; u++ {
		hist[g.OutDegree(u)]++
	}
	degs := make([]int32, 0, len(hist))
	for d := range hist {
		degs = append(degs, d)
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	counts := make([]int64, len(degs))
	for i, d := range degs {
		counts[i] = hist[d]
	}
	return degs, counts
}
