package graph_test

// Backend microbenchmarks: traversal and RR-sampling throughput of the CSR
// and compact backends side by side, with each backend's honest resident
// footprint reported as bytes/edge. External test package so the sampling
// bench can use diffusion/weights without an import cycle.

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/weights"
)

// benchBackends builds one random directed graph and returns it under every
// backend: decoded CSR, heap-resident compact, and mmap'd compact (nil where
// the platform lacks mmap).
func benchBackends(b *testing.B, n int32, edges int) map[string]graph.G {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	bl := graph.NewBuilder(n, true)
	bl.SetName("bench")
	for i := 0; i < edges; i++ {
		if err := bl.AddEdge(graph.NodeID(r.Intn(int(n))), graph.NodeID(r.Intn(int(n))), 1); err != nil {
			b.Fatal(err)
		}
	}
	csr := bl.BuildSimple()
	path := filepath.Join(b.TempDir(), "bench.gimb")
	if err := graph.WriteBinary(csr, path, graph.BinaryWriterOptions{}); err != nil {
		b.Fatal(err)
	}
	backends := map[string]graph.G{"csr": csr}
	heap, err := graph.OpenBinary(path, graph.OpenBinaryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = heap.Close() })
	backends["compact-heap"] = heap
	if mm, err := graph.OpenBinary(path, graph.OpenBinaryOptions{Mmap: true}); err == nil && mm.Mapped() {
		b.Cleanup(func() { _ = mm.Close() })
		backends["compact-mmap"] = mm
	}
	return backends
}

// BenchmarkGraphBackendScan measures a full forward-adjacency sweep — the
// hot access pattern of every diffusion kernel — per backend, reporting each
// backend's resident bytes/edge alongside the traversal rate.
func BenchmarkGraphBackendScan(b *testing.B) {
	for _, name := range []string{"csr", "compact-heap", "compact-mmap"} {
		b.Run(name, func(b *testing.B) {
			backends := benchBackends(b, 20000, 200000)
			g, ok := backends[name]
			if !ok {
				b.Skip("backend unavailable on this platform")
			}
			g = graph.View(g)
			m := float64(g.M())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := int64(0)
				for u := graph.NodeID(0); u < g.N(); u++ {
					to, _ := g.OutNeighbors(u)
					for _, v := range to {
						sum += int64(v)
					}
				}
				if sum == 0 {
					b.Fatal("empty traversal")
				}
			}
			b.ReportMetric(m*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
			b.ReportMetric(float64(g.MemoryBytes())/m, "bytes/edge")
		})
	}
}

// BenchmarkGraphBackendSample measures RR-set sampling throughput — the
// workload the compact backend must sustain at billion-edge scale — per
// backend under WC weights. The sampled stores are identical across
// backends by the determinism contract; this measures only the decode cost.
func BenchmarkGraphBackendSample(b *testing.B) {
	const sets = 2000
	for _, name := range []string{"csr", "compact-heap", "compact-mmap"} {
		b.Run(name, func(b *testing.B) {
			backends := benchBackends(b, 20000, 200000)
			base, ok := backends[name]
			if !ok {
				b.Skip("backend unavailable on this platform")
			}
			g := weights.WeightedCascade{}.Apply(base)
			s := diffusion.NewRRSampler(g, weights.IC)
			store := graphalgo.NewSetStore()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Reset()
				if _, err := s.SampleBatch(store, sets, uint64(i)+1, 1, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sets)*float64(b.N)/b.Elapsed().Seconds(), "sets/sec")
		})
	}
}
