package graph

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomGraph builds a CSR graph from a reproducible pseudo-random edge
// stream, returning both the graph and the raw stream for writer tests.
func randomTestGraph(t *testing.T, seed int64, n int32, edges int, directed, weighted bool) (*Graph, []Edge) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, directed)
	b.SetName("t")
	var es []Edge
	for i := 0; i < edges; i++ {
		u, v := NodeID(r.Intn(int(n))), NodeID(r.Intn(int(n)))
		w := 1.0
		if weighted {
			w = r.Float64()
		}
		if err := b.AddEdge(u, v, w); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		es = append(es, Edge{From: u, To: v, Weight: w})
	}
	return b.Build(), es
}

// assertSame checks observational identity of two backends over the full
// interface surface.
func assertSame(t *testing.T, want, got G) {
	t.Helper()
	if want.N() != got.N() || want.M() != got.M() || want.Directed() != got.Directed() {
		t.Fatalf("shape mismatch: (%d,%d,%v) vs (%d,%d,%v)",
			want.N(), want.M(), want.Directed(), got.N(), got.M(), got.Directed())
	}
	for u := NodeID(0); u < want.N(); u++ {
		if want.OutDegree(u) != got.OutDegree(u) || want.InDegree(u) != got.InDegree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
		if want.OutArcBase(u) != got.OutArcBase(u) {
			t.Fatalf("OutArcBase mismatch at %d: %d vs %d", u, want.OutArcBase(u), got.OutArcBase(u))
		}
		wto, ww := want.OutNeighbors(u)
		gto, gw := got.OutNeighbors(u)
		if len(wto) != len(gto) {
			t.Fatalf("out adjacency length mismatch at %d", u)
		}
		for i := range wto {
			if wto[i] != gto[i] || ww[i] != gw[i] {
				t.Fatalf("out arc %d of node %d: (%d,%g) vs (%d,%g)", i, u, wto[i], ww[i], gto[i], gw[i])
			}
		}
		wfr, wiw := want.InNeighbors(u)
		gfr, giw := got.InNeighbors(u)
		if len(wfr) != len(gfr) {
			t.Fatalf("in adjacency length mismatch at %d", u)
		}
		for i := range wfr {
			if wfr[i] != gfr[i] || wiw[i] != giw[i] {
				t.Fatalf("in arc %d of node %d: (%d,%g) vs (%d,%g)", i, u, wfr[i], wiw[i], gfr[i], giw[i])
			}
		}
	}
}

func TestBinaryRoundTripBothBackends(t *testing.T) {
	for _, tc := range []struct {
		name               string
		directed, weighted bool
		mmap               bool
	}{
		{"directed-weighted-heap", true, true, false},
		{"undirected-weighted-heap", false, true, false},
		{"directed-implicit-mmap", true, false, true},
		{"undirected-implicit-mmap", false, false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := randomTestGraph(t, 7, 60, 300, tc.directed, tc.weighted)
			path := filepath.Join(t.TempDir(), "g.gimb")
			if err := WriteBinary(g, path, BinaryWriterOptions{Weighted: tc.weighted, SortBudgetBytes: 1 << 10}); err != nil {
				t.Fatalf("WriteBinary: %v", err)
			}
			c, err := OpenBinary(path, OpenBinaryOptions{Mmap: tc.mmap})
			if err != nil {
				t.Fatalf("OpenBinary: %v", err)
			}
			defer func() {
				if err := c.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
			if err := c.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if c.Name() != "t" {
				t.Fatalf("name %q", c.Name())
			}
			assertSame(t, g, c)
			assertSame(t, g, View(c)) // scratch-buffer path
			assertSame(t, g.Reverse(), c.Reverse())

			csr, err := LoadBinaryCSR(path)
			if err != nil {
				t.Fatalf("LoadBinaryCSR: %v", err)
			}
			assertSame(t, g, csr)
			if err := csr.Validate(); err != nil {
				t.Fatalf("CSR Validate: %v", err)
			}
		})
	}
}

// TestBinaryWriterStreamMatchesBuilder drives the streaming writer with the
// same edge stream a Builder saw and asserts the stored order is identical.
func TestBinaryWriterStreamMatchesBuilder(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g, es := randomTestGraph(t, 11, 40, 500, directed, true)
		path := filepath.Join(t.TempDir(), "g.gimb")
		w, err := NewBinaryWriter(path, g.N(), BinaryWriterOptions{
			Name: "t", Directed: directed, Weighted: true, SortBudgetBytes: 1 << 9,
		})
		if err != nil {
			t.Fatalf("NewBinaryWriter: %v", err)
		}
		for _, e := range es {
			if err := w.AddEdge(e.From, e.To, e.Weight); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		c, err := OpenBinary(path, OpenBinaryOptions{})
		if err != nil {
			t.Fatalf("OpenBinary: %v", err)
		}
		assertSame(t, g, c)
	}
}

func TestBinaryCorruptionLadder(t *testing.T) {
	g, _ := randomTestGraph(t, 3, 20, 60, true, true)
	path := filepath.Join(t.TempDir(), "g.gimb")
	if err := WriteBinary(g, path, BinaryWriterOptions{Weighted: true}); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	mut := func(name string, mutate func([]byte) []byte, want error) {
		d := append([]byte(nil), data...)
		d = mutate(d)
		bad := filepath.Join(t.TempDir(), "bad.gimb")
		if err := os.WriteFile(bad, d, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := OpenBinary(bad, OpenBinaryOptions{}); !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}
	mut("magic", func(d []byte) []byte { d[0] ^= 0xFF; return d }, ErrBinaryMagic)
	mut("version", func(d []byte) []byte { d[4] = 99; return d }, ErrBinaryVersion)
	mut("flip-payload", func(d []byte) []byte { d[40] ^= 0x01; return d }, ErrBinaryChecksum)
	mut("truncate", func(d []byte) []byte { return d[:10] }, ErrBinaryTruncated)
}
