package graph

// G is the narrow read interface behind which every influence-maximization
// consumer sees a graph. It is exactly the surface the diffusion engines,
// RR-set samplers, evaluators and servers already used on the concrete CSR
// type, so any backend that implements it — the in-memory *Graph or the
// compact on-disk *Compact — is a drop-in substrate.
//
// Contract notes:
//
//   - OutNeighbors/InNeighbors return the arcs in *stored order*. Stored
//     order is part of the determinism contract: the samplers consume RNG
//     draws per arc in this order, so two backends loaded from the same
//     arc stream enumerate identically and therefore produce byte-identical
//     seed sets and spread estimates at a fixed seed.
//   - The returned slices are views into backend storage or decode buffers;
//     they must not be modified and are only guaranteed valid until the
//     next call of the same accessor on the same value (the CSR backend
//     happens to keep them valid forever; the compact backend's Views
//     reuse decode buffers).
//   - MemoryBytes reports the backend's actual resident footprint, not the
//     virtual size: memory-mapped segments are the kernel's to cache and
//     evict, so they are excluded from the budget the core accountant
//     enforces.
type G interface {
	N() int32
	M() int64
	Name() string
	Directed() bool
	OutDegree(u NodeID) int32
	InDegree(v NodeID) int32
	OutNeighbors(u NodeID) ([]NodeID, []float64)
	InNeighbors(v NodeID) ([]NodeID, []float64)
	OutArcBase(u NodeID) int64
	Weight(u, v NodeID) (float64, bool)
	MemoryBytes() int64
}

// Both backends implement G.
var (
	_ G = (*Graph)(nil)
	_ G = (*Compact)(nil)
)

// Viewer is implemented by backends whose accessors decode into reusable
// scratch buffers. View returns a value sharing the underlying graph but
// owning private buffers, so each goroutine of a parallel consumer takes
// its own view once and then reads without synchronization or allocation.
type Viewer interface {
	View() G
}

// View returns a goroutine-private read handle on g. For backends that
// decode on access (compact), the returned value owns private scratch
// buffers; for plain in-memory backends it is g itself. Parallel consumers
// call this once per worker goroutine.
func View(g G) G {
	if v, ok := g.(Viewer); ok {
		return v.View()
	}
	return g
}

// Reweighter is implemented by backends that can derive a same-structure
// graph whose arc weights come from fn. The CSR backend materializes the
// weights eagerly; the compact backend stores fn and computes weights
// lazily at decode time, so reweighting never costs O(m) memory.
type Reweighter interface {
	Reweighted(fn func(u, v NodeID) float64) G
}

// Reweight returns a graph with g's structure and weights fn(u, v). The
// weight schemes in internal/weights apply the same fn through this helper
// on every backend, so a scheme's weights are bit-identical whether they
// were materialized (CSR) or are computed lazily at decode (compact).
func Reweight(g G, fn func(u, v NodeID) float64) G {
	switch b := g.(type) {
	case *Graph:
		return b.Reweighted(fn)
	case Reweighter:
		return b.Reweighted(fn)
	}
	// Fallback for exotic wrappers: materialize through a builder.
	eb := NewBuilder(g.N(), true)
	eb.SetName(g.Name())
	ForEachArc(g, func(u, v NodeID, _ float64) {
		_ = eb.AddEdge(u, v, fn(u, v))
	})
	return eb.Build()
}

// ForEachArc calls fn for every directed arc (u, v, w) in out-CSR order.
func ForEachArc(g G, fn func(u, v NodeID, w float64)) {
	for u := NodeID(0); u < g.N(); u++ {
		to, ws := g.OutNeighbors(u)
		for i, v := range to {
			fn(u, v, ws[i])
		}
	}
}

// TotalInWeightOf returns the sum of weights of v's incoming arcs on any
// backend (the CSR type also has a method of the same meaning).
func TotalInWeightOf(g G, v NodeID) float64 {
	_, w := g.InNeighbors(v)
	s := 0.0
	for _, x := range w {
		s += x
	}
	return s
}

// AvgDegreeOf returns the average out-degree m/n on any backend.
func AvgDegreeOf(g G) float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.N())
}
