package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadEdgeListBasic(t *testing.T) {
	in := `# comment
% other comment style
0 1 0.5
1 2
2 0 0.25
`
	g, err := LoadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if w, ok := g.Weight(0, 1); !ok || w != 0.5 {
		t.Fatalf("weight(0,1)=%v,%v", w, ok)
	}
	if w, ok := g.Weight(1, 2); !ok || w != 1 {
		t.Fatalf("default weight = %v,%v want 1", w, ok)
	}
}

func TestLoadEdgeListUndirected(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("0 1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d want 2", g.M())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",        // too few fields
		"a 1\n",      // bad source
		"0 b\n",      // bad target
		"0 1 zzz\n",  // bad weight
		"-1 4\n",     // negative id
		"0 -2 0.5\n", // negative target
	}
	for _, in := range cases {
		if _, err := LoadEdgeList(strings.NewReader(in), true); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(4, true)
	for _, e := range []Edge{{0, 1, 0.5}, {1, 2, 0.125}, {3, 0, 1}} {
		if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip size: n=%d m=%d", g2.N(), g2.M())
	}
	for _, e := range g.Edges() {
		w, ok := g2.Weight(e.From, e.To)
		if !ok || w != e.Weight {
			t.Fatalf("arc (%d,%d): got %v,%v want %v", e.From, e.To, w, ok, e.Weight)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	b := NewBuilder(3, true)
	if err := b.AddEdge(0, 2, 0.75); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if err := g.SaveEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeListFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g2.Weight(0, 2); !ok || w != 0.75 {
		t.Fatalf("weight = %v,%v", w, ok)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadEdgeListFile("/nonexistent/nope.txt", true); err == nil {
		t.Fatal("expected error for missing file")
	}
}
