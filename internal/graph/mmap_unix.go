//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map graph files;
// when false, OpenBinary silently falls back to a heap load.
const mmapSupported = true

// mapping is a read-only memory mapping of a whole file.
type mapping struct {
	data []byte
}

func mapFile(f *os.File, size int64) (*mapping, error) {
	if size == 0 {
		return &mapping{}, nil
	}
	if int64(int(size)) != size {
		return nil, syscall.EFBIG
	}
	d, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mapping{data: d}, nil
}

func (m *mapping) close() error {
	if m.data == nil {
		return nil
	}
	d := m.data
	m.data = nil
	return syscall.Munmap(d)
}
