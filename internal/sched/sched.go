// Package sched is the deterministic work-stealing executor shared by the
// parallel sampling, evaluation and cover substrates.
//
// Work is the global index range [0, count). Every unit MUST be a pure
// function of its global index — the platform's indexed-stream discipline
// (splitmix64 streams keyed on the sample or world index, rrbatch.go) —
// and results must land in slots keyed by that index (a matrix column, a
// segment record merged in index order). Under that contract, stealing
// changes only WHO computes an index, never WHAT it produces, so the output
// is byte-identical to the serial run at any worker count.
//
// Each worker owns a Deque: the contiguous remaining slice [lo, hi) of its
// initial partition. The owner claims fixed-size chunks from the FRONT; an
// idle worker scans victims in a deterministic order (w+1, w+2, … mod W) and
// steals a block from the BACK of the first non-empty range — at least a
// chunk, up to half the victim's remainder, so a straggler sheds work in
// O(log) steal events instead of chunk-by-chunk. Ranges only ever shrink:
// when a full victim scan finds nothing, no unclaimed work exists and the
// worker exits — there is no spinning on empty deques.
//
// Static contiguous chunking — the scheme this package replaces — starves
// under the skewed RR-set size distributions the benchmarks produce: one
// worker draws the giant-component samples while the rest idle (PAPERS.md,
// arXiv 2411.09473). Stealing bounds the idle tail by the cost of a single
// chunk.
//
// Supervision mirrors the SampleBatch/EvalBatch contract the resilience
// layer depends on: workers recover panics and park them; the CALLING
// goroutine runs Poll (so single-threaded budget state stays safe), flips a
// cooperative stop flag on abort, and re-raises the first worker panic after
// the join.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Deque is one worker's remaining index range [lo, hi). The owner takes
// chunks from the front with Claim; thieves take blocks from the back with
// Steal. Both are mutex-guarded — claims are chunk-granular (hundreds of
// samples), so the lock is cold next to the work it hands out.
//
// The struct is padded to the 64-byte cache-line stride so adjacent deques
// in the executor's slice never share a line (the same false-sharing
// treatment the EstimateSpreadParallelCtx partials got).
type Deque struct {
	mu sync.Mutex
	lo int64
	hi int64
	_  [64 - 24]byte
}

// Claim takes up to chunk indexes from the front of the range. ok reports
// whether any work remained.
func (d *Deque) Claim(chunk int64) (lo, hi int64, ok bool) {
	d.mu.Lock()
	if d.lo >= d.hi {
		d.mu.Unlock()
		return 0, 0, false
	}
	lo = d.lo
	hi = lo + chunk
	if hi > d.hi {
		hi = d.hi
	}
	d.lo = hi
	d.mu.Unlock()
	return lo, hi, true
}

// Steal takes a block from the back of the range: at least chunk indexes,
// at most half the remainder (rounded up), capped by what is left. ok
// reports whether any work remained to steal.
func (d *Deque) Steal(chunk int64) (lo, hi int64, ok bool) {
	d.mu.Lock()
	avail := d.hi - d.lo
	if avail <= 0 {
		d.mu.Unlock()
		return 0, 0, false
	}
	take := (avail + 1) / 2
	if take < chunk {
		take = chunk
	}
	if take > avail {
		take = avail
	}
	hi = d.hi
	lo = hi - take
	d.hi = lo
	d.mu.Unlock()
	return lo, hi, true
}

// remaining returns the unclaimed span (test and termination-scan helper).
func (d *Deque) remaining() int64 {
	d.mu.Lock()
	r := d.hi - d.lo
	d.mu.Unlock()
	return r
}

// Options tunes one Run call. The zero value is valid: GOMAXPROCS workers,
// automatic chunk size, no polling.
type Options struct {
	// Workers is the parallelism (< 1 means GOMAXPROCS); it is clamped to
	// count. Exactly one worker runs the body inline on the calling
	// goroutine with no deques and no goroutines.
	Workers int
	// Chunk is the claim granularity in indexes (<= 0 means automatic:
	// sized from count so even a small run — e.g. SampleStream's 256-sample
	// probe round — splits into enough chunks that no worker starves).
	Chunk int64
	// Poll, when non-nil, is consulted from the calling goroutine while
	// workers run (and between chunks on the serial path); its error stops
	// the executor — workers finish their current chunk and exit — and is
	// returned from Run. Only ever invoked on the calling goroutine.
	Poll func() error
	// Progress, when non-nil, is an extra poll-cadence signal channel: the
	// supervisor polls on every receive, and bodies may send to it (non-
	// blocking, buffered) at finer granularity than a chunk. Run also
	// signals it once per completed chunk. A pure wall-clock ticker delivers
	// almost no ticks on a loaded or race-instrumented runtime, which would
	// let a failing Poll slip past a short run entirely.
	Progress chan struct{}
}

// Workers resolves an Options.Workers value against a count: < 1 becomes
// GOMAXPROCS, then the result is clamped to count so no worker starts empty.
// Callers that size per-worker scratch (shards, samplers) use this to agree
// with Run on the worker count.
func Workers(count int64, workers int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > count {
		workers = int(count)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// autoChunk sizes the claim granularity from the actual count (never a
// constant: that is exactly the static-chunk starvation edge case — with
// count < workers·chunk, trailing workers would own empty ranges). Target
// ~16 chunks per worker for steal headroom, capped so a chunk stays a
// meaningful unit of work.
func autoChunk(count int64, workers int) int64 {
	chunk := count / (int64(workers) * 16)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 8192 {
		chunk = 8192
	}
	return chunk
}

// Run executes body over the index range [0, count), fanning out over
// opt.Workers goroutines with work stealing. body(worker, lo, hi) processes
// global indexes [lo, hi) and is only ever invoked from worker's goroutine
// (worker 0 = the calling goroutine when Workers resolves to 1), so bodies
// may keep lazily-created per-worker scratch in a slice indexed by worker.
// On success the invoked ranges are disjoint and cover [0, count) exactly;
// after a Poll abort, a suffix of the work may be skipped.
//
// A body panic is re-raised on the calling goroutine after all workers have
// joined, preserving the resilience layer's Panicked-cell contract.
func Run(count int64, opt Options, body func(worker int, lo, hi int64)) error {
	if count <= 0 {
		return nil
	}
	workers := Workers(count, opt.Workers)
	chunk := opt.Chunk
	if chunk <= 0 {
		chunk = autoChunk(count, workers)
	}

	if workers == 1 {
		for lo := int64(0); lo < count; lo += chunk {
			if opt.Poll != nil {
				if err := opt.Poll(); err != nil {
					return err
				}
			}
			hi := lo + chunk
			if hi > count {
				hi = count
			}
			body(0, lo, hi)
		}
		return nil
	}

	e := &executor{
		deques:   make([]Deque, workers),
		chunk:    chunk,
		body:     body,
		progress: opt.Progress,
	}
	if e.progress == nil {
		e.progress = make(chan struct{}, 1)
	}
	// Balanced initial partition: worker w owns [count·w/W, count·(w+1)/W),
	// so ranges differ in size by at most one index.
	for w := 0; w < workers; w++ {
		e.deques[w].lo = count * int64(w) / int64(workers)
		e.deques[w].hi = count * int64(w+1) / int64(workers)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panic in the body must surface on the calling goroutine,
			// where the resilience layer's supervisor can turn it into a
			// Panicked cell instead of crashing the process — stealing
			// workers included: the panic parks here and Run re-raises it
			// after the join.
			defer func() {
				if p := recover(); p != nil {
					e.panicked.CompareAndSwap(nil, &p)
					e.stop.Store(true)
				}
			}()
			e.work(w)
		}(w)
	}

	done := make(chan struct{})
	//imlint:ignore gosupervise closing a channel after Wait cannot panic; recover would hide nothing
	go func() {
		wg.Wait()
		close(done)
	}()
	var pollErr error
	ticker := time.NewTicker(200 * time.Microsecond)
	defer ticker.Stop()
	runPoll := func() {
		if opt.Poll != nil && pollErr == nil {
			if pollErr = opt.Poll(); pollErr != nil {
				e.stop.Store(true)
			}
		}
	}
supervise:
	for {
		select {
		case <-done:
			break supervise
		case <-e.progress:
			runPoll()
		case <-ticker.C:
			runPoll()
		}
	}
	if p := e.panicked.Load(); p != nil {
		panic(*p)
	}
	return pollErr
}

// executor is the per-Run state shared by the workers and the supervisor.
type executor struct {
	deques   []Deque
	chunk    int64
	body     func(worker int, lo, hi int64)
	stop     atomic.Bool
	panicked atomic.Pointer[any]
	progress chan struct{}
}

// work is worker w's loop: drain the own deque from the front; when it runs
// dry, steal a block from the back of the first non-empty victim in the
// deterministic scan order w+1..w+W−1 (mod W) and install it as the new own
// range — so a large stolen block is itself claimable chunk-by-chunk and
// re-stealable by others. Work only ever moves between deques (the total
// never grows), so one full scan that finds nothing proves no unclaimed
// work remains and the worker exits; there is no spinning on empty deques.
func (e *executor) work(w int) {
	own := &e.deques[w]
	for {
		if e.stop.Load() {
			return
		}
		lo, hi, ok := own.Claim(e.chunk)
		if !ok {
			if !e.stealInto(w, own) {
				return
			}
			continue
		}
		e.body(w, lo, hi)
		select {
		case e.progress <- struct{}{}:
		default:
		}
	}
}

// stealInto scans victims once in deterministic order, takes a block from
// the first non-empty deque and installs it as w's own range. Only the
// owner refills its deque, and only when empty, so thieves can never lose
// a concurrent shrink-only update.
func (e *executor) stealInto(w int, own *Deque) bool {
	n := len(e.deques)
	for i := 1; i < n; i++ {
		v := (w + i) % n
		if lo, hi, ok := e.deques[v].Steal(e.chunk); ok {
			own.mu.Lock()
			own.lo, own.hi = lo, hi
			own.mu.Unlock()
			return true
		}
	}
	return false
}
