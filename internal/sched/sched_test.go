package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// TestDequePadding pins the false-sharing treatment: adjacent deques in the
// executor's slice must occupy distinct 64-byte cache lines.
func TestDequePadding(t *testing.T) {
	if got := unsafe.Sizeof(Deque{}); got != 64 {
		t.Fatalf("Deque size = %d, want 64 (cache-line stride)", got)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3, 16); got != 3 {
		t.Fatalf("Workers(3,16) = %d, want 3 (clamped to count)", got)
	}
	if got := Workers(100, 7); got != 7 {
		t.Fatalf("Workers(100,7) = %d, want 7", got)
	}
	if got := Workers(100, 0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(100,0) = %d, want GOMAXPROCS", got)
	}
}

// TestAutoChunkSizedFromCount is the SampleStream probe-round regression
// guard: the claim granularity must derive from the actual count, never a
// constant, so workers·chunk ≤ count whenever count ≥ workers and every
// worker's initial range is non-empty.
func TestAutoChunkSizedFromCount(t *testing.T) {
	for _, count := range []int64{1, 7, 64, 256, 1000, 1 << 20} {
		for _, req := range []int{1, 2, 7, 8, 16} {
			w := Workers(count, req)
			chunk := autoChunk(count, w)
			if chunk < 1 {
				t.Fatalf("autoChunk(%d,%d) = %d < 1", count, w, chunk)
			}
			if int64(w)*chunk > count && count >= int64(w) {
				t.Fatalf("autoChunk(%d,%d) = %d: workers·chunk = %d exceeds count (static starvation)",
					count, w, chunk, int64(w)*chunk)
			}
		}
	}
}

// TestRunCoversRangeExactlyOnce checks the partition invariant at awkward
// counts and worker counts: every index processed exactly once.
func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, count := range []int64{1, 2, 63, 256, 10007} {
		for _, workers := range []int{1, 2, 7, 16} {
			hits := make([]int32, count)
			err := Run(count, Options{Workers: workers}, func(w int, lo, hi int64) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			if err != nil {
				t.Fatalf("count=%d workers=%d: %v", count, workers, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("count=%d workers=%d: index %d processed %d times", count, workers, i, h)
				}
			}
		}
	}
}

// TestRunDeterministicOutput checks the byte-identical contract: a body that
// writes a pure function of the global index into index-keyed slots yields
// identical output at every worker count, stealing or not.
func TestRunDeterministicOutput(t *testing.T) {
	const count = 4096
	f := func(i int64) uint64 {
		z := uint64(i) * 0x9e3779b97f4a7c15
		z ^= z >> 29
		return z * 0xbf58476d1ce4e5b9
	}
	var want []uint64
	for _, workers := range []int{1, 2, 7, 16} {
		out := make([]uint64, count)
		if err := Run(count, Options{Workers: workers}, func(w int, lo, hi int64) {
			for i := lo; i < hi; i++ {
				out[i] = f(i)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = out
			continue
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], want[i])
			}
		}
	}
}

// TestRunStealsUnderSkew forces the steal path: worker 0's initial range is
// made expensive, so the other workers drain their ranges and must steal
// from worker 0's back. Some index statically owned by worker 0 must end up
// processed by a different worker.
func TestRunStealsUnderSkew(t *testing.T) {
	const count, workers = 64, 8
	firstRange := int64(count / workers) // worker 0's initial [0, 8)
	owner := make([]int32, count)
	err := Run(count, Options{Workers: workers, Chunk: 1}, func(w int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			owner[i] = int32(w)
			if i < firstRange {
				time.Sleep(2 * time.Millisecond) // the giant samples
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stolen := false
	for i := int64(0); i < firstRange; i++ {
		if owner[i] != 0 {
			stolen = true
		}
	}
	if !stolen {
		t.Fatalf("no index of worker 0's skewed range was stolen (owners: %v)", owner[:firstRange])
	}
}

// TestRunWorkerAffinity checks the per-worker serialization guarantee that
// lets bodies keep lazily-created scratch in a slice indexed by worker: two
// body invocations for the same worker id never overlap.
func TestRunWorkerAffinity(t *testing.T) {
	const count, workers = 2048, 7
	var active [workers]atomic.Int32
	err := Run(count, Options{Workers: workers}, func(w int, lo, hi int64) {
		if active[w].Add(1) != 1 {
			t.Errorf("worker %d body re-entered concurrently", w)
		}
		runtime.Gosched()
		active[w].Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicSurfacesOnCaller(t *testing.T) {
	const count = 1024
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		if s, ok := p.(string); !ok || s != "kernel exploded" {
			t.Fatalf("unexpected panic value: %v", p)
		}
	}()
	_ = Run(count, Options{Workers: 8}, func(w int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			if i == count/2 {
				panic("kernel exploded")
			}
		}
	})
}

func TestRunPollAborts(t *testing.T) {
	wantErr := errors.New("budget exceeded")
	var polls atomic.Int64
	var processed atomic.Int64
	const count = 1 << 20
	err := Run(count, Options{
		Workers: 8,
		Poll: func() error {
			if polls.Add(1) >= 3 {
				return wantErr
			}
			return nil
		},
	}, func(w int, lo, hi int64) {
		processed.Add(hi - lo)
		time.Sleep(50 * time.Microsecond)
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run returned %v, want poll error", err)
	}
	if processed.Load() >= count {
		t.Fatal("poll abort did not skip any work")
	}

	// Serial path honors Poll too.
	polls.Store(0)
	err = Run(count, Options{Workers: 1, Poll: func() error {
		if polls.Add(1) >= 2 {
			return wantErr
		}
		return nil
	}}, func(w int, lo, hi int64) {})
	if !errors.Is(err, wantErr) {
		t.Fatalf("serial Run returned %v, want poll error", err)
	}
}

// TestDequeConcurrentClaimSteal hammers one deque from an owner and several
// thieves under the race detector and checks the handed-out ranges are
// disjoint and exactly cover the initial span.
func TestDequeConcurrentClaimSteal(t *testing.T) {
	const span = int64(1 << 16)
	d := &Deque{lo: 0, hi: span}
	var mu sync.Mutex
	got := make([]int32, span)
	record := func(lo, hi int64) {
		mu.Lock()
		for i := lo; i < hi; i++ {
			got[i]++
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			lo, hi, ok := d.Claim(64)
			if !ok {
				return
			}
			record(lo, hi)
		}
	}()
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := d.Steal(64)
				if !ok {
					return
				}
				record(lo, hi)
			}
		}()
	}
	wg.Wait()
	for i, h := range got {
		if h != 1 {
			t.Fatalf("index %d handed out %d times", i, h)
		}
	}
	if d.remaining() != 0 {
		t.Fatalf("deque not drained: %d remaining", d.remaining())
	}
}

// TestRunProgressDrivesPoll checks the Progress channel is an extra poll
// cadence source: with a body that signals per item, Poll runs at least once
// even though the run is far shorter than any plausible tick alignment.
func TestRunProgressDrivesPoll(t *testing.T) {
	progress := make(chan struct{}, 1)
	var polls atomic.Int64
	err := Run(512, Options{
		Workers:  4,
		Progress: progress,
		Poll:     func() error { polls.Add(1); return nil },
	}, func(w int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			select {
			case progress <- struct{}{}:
			default:
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if polls.Load() == 0 {
		t.Fatal("Poll never ran despite progress signals")
	}
}
