package datasets

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	// Each of ~n nodes adds m edges; symmetrized arcs ≈ 2·m·n.
	avg := float64(g.M()) / float64(g.N())
	if avg < 4 || avg > 8 {
		t.Fatalf("avg directed degree %v, want ≈6", avg)
	}
	// Heavy tail: max degree far above the average.
	st := g.ComputeStats(rng.New(1), 16)
	if float64(st.MaxOutDegree) < 5*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %v)", st.MaxOutDegree, avg)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(300, 2, 42)
	b := BarabasiAlbert(300, 2, 42)
	if a.M() != b.M() {
		t.Fatalf("sizes differ: %d vs %d", a.M(), b.M())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := BarabasiAlbert(300, 2, 43)
	if c.M() == a.M() {
		// Same edge count is possible; compare content.
		same := true
		ec := c.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestErdosRenyiExactEdges(t *testing.T) {
	g := ErdosRenyi(100, 400, 7)
	if g.M() != 800 { // symmetrized
		t.Fatalf("m=%d want 800", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Requesting more than possible clamps.
	small := ErdosRenyi(4, 100, 7)
	if small.M() != 12 { // C(4,2)=6 edges ×2 arcs
		t.Fatalf("clamped m=%d want 12", small.M())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 3, 0.1, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(g.M()) / float64(g.N())
	if avg < 5 || avg > 7 {
		t.Fatalf("avg degree %v want ≈6", avg)
	}
}

func TestDirectedScaleFree(t *testing.T) {
	g := DirectedScaleFree(1500, 10, 0.2, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("must be directed")
	}
	avg := g.AvgDegree()
	if avg < 5 || avg > 20 {
		t.Fatalf("avg out-degree %v want ≈10", avg)
	}
	// In-degree skew from preferential attachment.
	st := g.ComputeStats(rng.New(2), 16)
	if float64(st.MaxInDegree) < 4*avg {
		t.Fatalf("max in-degree %d not skewed (avg %v)", st.MaxInDegree, avg)
	}
}

func TestDensePowerLaw(t *testing.T) {
	g := DensePowerLaw(800, 20, 13)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(g.M()) / float64(g.N())
	if avg < 10 || avg > 25 {
		t.Fatalf("avg directed degree %v want ≈20", avg)
	}
}

func TestCallMultigraphHasParallelEdges(t *testing.T) {
	g := CallMultigraph(100, 2000, 17)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2000 {
		t.Fatalf("m=%d want 2000 calls", g.M())
	}
	// Must contain at least one parallel arc pair.
	found := false
	for u := graph.NodeID(0); u < g.N() && !found; u++ {
		to, _ := g.OutNeighbors(u)
		seen := map[graph.NodeID]bool{}
		for _, v := range to {
			if seen[v] {
				found = true
				break
			}
			seen[v] = true
		}
	}
	if !found {
		t.Fatal("no parallel arcs in call multigraph")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	// Arcs: right 3*3=9, down 2*4=8.
	if g.M() != 17 {
		t.Fatalf("m=%d want 17", g.M())
	}
	if d := g.OutDegree(0); d != 2 {
		t.Fatalf("corner out-degree %d", d)
	}
	if d := g.OutDegree(11); d != 0 {
		t.Fatalf("sink out-degree %d", d)
	}
}

func TestRegistryNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("have %d datasets: %v", len(names), names)
	}
	for _, name := range names {
		if _, err := Lookup(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerateDefaults(t *testing.T) {
	g, err := Generate("nethept", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "nethept" {
		t.Fatalf("name %q", g.Name())
	}
	if g.N() != 15000 {
		t.Fatalf("nethept default n=%d want 15000 (scale 1)", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateScaling(t *testing.T) {
	g, err := Generate("dblp", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := int32(317_000 / 32)
	if g.N() != want {
		t.Fatalf("n=%d want %d", g.N(), want)
	}
	tiny, err := Generate("nethept", 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.N() != 64 {
		t.Fatalf("minimum size clamp: n=%d want 64", tiny.N())
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("unknown", 1, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic")
		}
	}()
	MustGenerate("unknown", 1, 1)
}

// TestDatasetDensityMatchesPaper: at default scale, each stand-in's average
// degree must be within 2.5× of the paper's Table 1 value (the property
// driving algorithmic behavior).
func TestDatasetDensityMatchesPaper(t *testing.T) {
	for _, name := range []string{"nethept", "hepph", "dblp", "youtube"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		g := MustGenerate(name, 0, 3)
		avg := float64(g.M()) / float64(g.N())
		if !g.Directed() {
			avg /= 2 // paper counts undirected edges once
		}
		ratio := avg / spec.AvgDegree
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: avg degree %v vs paper %v (ratio %v)", name, avg, spec.AvgDegree, ratio)
		}
	}
}

// TestPowerLawDegreeMean: the degree sampler must roughly hit its mean.
func TestPowerLawDegreeMean(t *testing.T) {
	r := rng.New(19)
	const mean = 12.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(powerLawDegree(r, mean))
	}
	got := sum / n
	if math.Abs(got-mean) > mean*0.25 {
		t.Fatalf("mean degree %v want ≈%v", got, mean)
	}
}

// TestGeneratorsNoSelfLoopsProperty: generated graphs never contain
// self-loops (builders drop them, but generators shouldn't emit them).
func TestGeneratorsNoSelfLoopsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		g := BarabasiAlbert(60, 2, seed)
		for _, e := range g.Edges() {
			if e.From == e.To {
				return false
			}
		}
		h := DirectedScaleFree(60, 4, 0.3, seed)
		for _, e := range h.Edges() {
			if e.From == e.To {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
