// Package datasets provides seeded synthetic social-network generators and a
// registry of stand-ins for the paper's eight benchmark datasets (Table 1).
//
// The paper evaluates on real graphs from arXiv and SNAP (NetHEPT, HepPh,
// DBLP, YouTube, LiveJournal, Orkut, Twitter, Friendster). This module is
// offline, so we substitute seeded generators that match each dataset's
// directedness, density and heavy-tailed degree distribution — the
// properties that drive every phenomenon the paper reports (RR-set size
// under IC vs WC, CELF's non-scalability, memory ordering). Scale factors
// shrink the giants to laptop size; DESIGN.md records the substitution.
package datasets

import (
	"fmt"
	"math"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
)

// BarabasiAlbert generates an undirected preferential-attachment graph with
// n nodes, each new node attaching m edges to existing nodes with
// probability proportional to degree. Produces the power-law degree
// distribution typical of collaboration and social networks.
func BarabasiAlbert(n int32, m int, seed uint64) *graph.Graph {
	if n < 2 {
		n = 2
	}
	if m < 1 {
		m = 1
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	// endpoints holds one entry per edge endpoint; sampling uniformly from
	// it realizes degree-proportional attachment.
	endpoints := make([]graph.NodeID, 0, 2*int(n)*m)
	// Seed clique of m+1 nodes.
	m0 := int32(m + 1)
	if m0 > n {
		m0 = n
	}
	for i := int32(0); i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			mustAdd(b, i, j)
			endpoints = append(endpoints, i, j)
		}
	}
	targets := make([]graph.NodeID, 0, m)
	for v := m0; v < n; v++ {
		targets = targets[:0]
		guard := 0
		for len(targets) < m && guard < 50*m {
			guard++
			var t graph.NodeID
			if len(endpoints) == 0 {
				t = graph.NodeID(r.Int31n(v))
			} else {
				t = endpoints[r.Intn(len(endpoints))]
			}
			if t == v || containsNode(targets, t) {
				continue
			}
			targets = append(targets, t)
		}
		for _, t := range targets {
			mustAdd(b, v, t)
			endpoints = append(endpoints, v, t)
		}
	}
	return b.Build()
}

// ErdosRenyi generates a G(n, m) uniform random undirected graph with
// exactly m distinct edges (self-loops excluded).
func ErdosRenyi(n int32, m int64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	type pair struct{ u, v graph.NodeID }
	seen := make(map[pair]struct{}, m)
	for int64(len(seen)) < m {
		u := graph.NodeID(r.Int31n(n))
		v := graph.NodeID(r.Int31n(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		mustAdd(b, u, v)
	}
	return b.Build()
}

// WattsStrogatz generates a small-world ring lattice with n nodes, k
// neighbors per side (even total degree 2k) and rewiring probability beta.
func WattsStrogatz(n int32, k int, beta float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	for u := int32(0); u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + int32(j)) % n
			if r.Float64() < beta {
				// Rewire to a uniform random target.
				for tries := 0; tries < 16; tries++ {
					w := graph.NodeID(r.Int31n(n))
					if w != u {
						v = w
						break
					}
				}
			}
			if u != v {
				mustAdd(b, u, v)
			}
		}
	}
	return b.Build()
}

// DirectedScaleFree generates a directed graph with heavy-tailed in- and
// out-degree. Each node u emits outDeg(u) arcs, where outDeg is drawn from
// a discrete power law with the given mean; targets are chosen
// preferentially by in-degree (probability 1−q) or uniformly (probability
// q), yielding the in-degree skew of follower networks such as Twitter and
// LiveJournal.
func DirectedScaleFree(n int32, meanOutDeg float64, q float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	// endpoints: one entry per received arc, for preferential target choice.
	endpoints := make([]graph.NodeID, 0, int(float64(n)*meanOutDeg))
	type pair struct{ u, v graph.NodeID }
	seenLocal := make(map[pair]struct{})
	for u := int32(0); u < n; u++ {
		d := powerLawDegree(r, meanOutDeg)
		if int32(d) >= n {
			d = int(n) - 1
		}
		for k := range seenLocal {
			delete(seenLocal, k)
		}
		for j := 0; j < d; j++ {
			var v graph.NodeID
			if len(endpoints) == 0 || r.Float64() < q {
				v = graph.NodeID(r.Int31n(n))
			} else {
				v = endpoints[r.Intn(len(endpoints))]
			}
			if v == u {
				continue
			}
			p := pair{u, v}
			if _, dup := seenLocal[p]; dup {
				continue
			}
			seenLocal[p] = struct{}{}
			mustAdd(b, u, v)
			endpoints = append(endpoints, v)
		}
	}
	return b.Build()
}

// powerLawDegree draws a heavy-tailed degree with the given mean: a Pareto
// tail (α ≈ 2.3, typical of social networks) discretized and clamped.
func powerLawDegree(r *rng.Source, mean float64) int {
	const alpha = 2.3
	// Pareto with x_min chosen so E[X] = mean: E = x_min * α/(α−1).
	xmin := mean * (alpha - 1) / alpha
	if xmin < 0.5 {
		xmin = 0.5
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	x := xmin / math.Pow(u, 1/alpha)
	d := int(x + 0.5)
	if d < 0 {
		d = 0
	}
	// Clamp the extreme tail so a single hub cannot dominate tiny graphs.
	if cap := int(mean * 400); d > cap {
		d = cap
	}
	return d
}

// DensePowerLaw generates an undirected heavy-tailed graph with roughly
// n*meanDeg/2 edges via a Chung-Lu style model: node weights follow a power
// law and edge (u,v) appears with probability proportional to w_u*w_v.
// Used for dense community graphs like Orkut and Friendster.
func DensePowerLaw(n int32, meanDeg float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	// Draw expected-degree weights.
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = float64(powerLawDegree(r, meanDeg))
		if w[i] < 1 {
			w[i] = 1
		}
		total += w[i]
	}
	b := graph.NewBuilder(n, false)
	type pair struct{ u, v graph.NodeID }
	seen := make(map[pair]struct{})
	// Weighted endpoint sampling via an alias-free cumulative trick: sample
	// both endpoints from the weight distribution, target n*meanDeg/2 edges.
	cum := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i]
		cum[i] = acc
	}
	sample := func() graph.NodeID {
		x := r.Float64() * total
		lo, hi := 0, int(n)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.NodeID(lo)
	}
	want := int64(float64(n) * meanDeg / 2)
	attempts := int64(0)
	for int64(len(seen)) < want && attempts < want*20 {
		attempts++
		u, v := sample(), sample()
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		mustAdd(b, u, v)
	}
	return b.Build()
}

// CallMultigraph generates a directed multigraph resembling a phone-call
// network: parallel arcs model repeated calls (paper §2.1.2, LT-"parallel
// edges"). Each of the m call events picks a caller preferentially by past
// activity and a callee from the caller's contact set.
func CallMultigraph(n int32, calls int64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	contacts := make([][]graph.NodeID, n)
	activity := make([]graph.NodeID, 0, calls)
	for i := int64(0); i < calls; i++ {
		var u graph.NodeID
		if len(activity) == 0 || r.Float64() < 0.3 {
			u = graph.NodeID(r.Int31n(n))
		} else {
			u = activity[r.Intn(len(activity))]
		}
		var v graph.NodeID
		if len(contacts[u]) == 0 || r.Float64() < 0.4 {
			v = graph.NodeID(r.Int31n(n))
			if v == u {
				v = (v + 1) % n
			}
			contacts[u] = append(contacts[u], v)
		} else {
			v = contacts[u][r.Intn(len(contacts[u]))]
		}
		mustAdd(b, u, v)
		activity = append(activity, u)
	}
	return b.Build()
}

// Grid generates a directed 2D grid (rows × cols) with arcs right and down;
// deterministic and acyclic, used by tests that need exact expected spreads.
func Grid(rows, cols int32) *graph.Graph {
	n := rows * cols
	b := graph.NewBuilder(n, true)
	id := func(r, c int32) graph.NodeID { return r*cols + c }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			if c+1 < cols {
				mustAdd(b, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(b, id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

func containsNode(xs []graph.NodeID, x graph.NodeID) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func mustAdd(b *graph.Builder, u, v graph.NodeID) {
	if err := b.AddEdge(u, v, 1); err != nil {
		// Generators only emit in-range ids; an error is a bug.
		panic(fmt.Sprintf("datasets: %v", err))
	}
}
