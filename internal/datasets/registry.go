package datasets

import (
	"fmt"
	"sort"

	"github.com/sigdata/goinfmax/internal/graph"
)

// Spec describes one of the paper's Table 1 datasets and how its synthetic
// stand-in is generated. PaperN/PaperM record the real dataset's size for
// documentation; Scale shrinks the stand-in (1 = full paper size).
type Spec struct {
	Name      string
	PaperN    int64
	PaperM    int64
	Directed  bool
	AvgDegree float64
	// DefaultScale divides PaperN for the default laptop-scale stand-in.
	DefaultScale int64
	// Generate builds the stand-in at the given node count.
	Generate func(n int32, seed uint64) *graph.Graph
}

// specs mirrors paper Table 1. Generators are matched to each network's
// character: preferential attachment for collaboration graphs, directed
// scale-free for follower graphs, dense power-law for community graphs.
var specs = []Spec{
	{
		Name: "nethept", PaperN: 15_000, PaperM: 31_000, Directed: false, AvgDegree: 2.06,
		DefaultScale: 1,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(BarabasiAlbert(n, 2, seed), "nethept")
		},
	},
	{
		Name: "hepph", PaperN: 12_000, PaperM: 118_000, Directed: false, AvgDegree: 9.83,
		DefaultScale: 1,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(BarabasiAlbert(n, 10, seed), "hepph")
		},
	},
	{
		Name: "dblp", PaperN: 317_000, PaperM: 1_050_000, Directed: false, AvgDegree: 3.31,
		DefaultScale: 8,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(BarabasiAlbert(n, 3, seed), "dblp")
		},
	},
	{
		Name: "youtube", PaperN: 1_130_000, PaperM: 2_990_000, Directed: false, AvgDegree: 2.65,
		DefaultScale: 16,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(BarabasiAlbert(n, 3, seed), "youtube")
		},
	},
	{
		Name: "livejournal", PaperN: 4_850_000, PaperM: 69_000_000, Directed: true, AvgDegree: 14.23,
		DefaultScale: 64,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(DirectedScaleFree(n, 14.2, 0.2, seed), "livejournal")
		},
	},
	{
		Name: "orkut", PaperN: 3_070_000, PaperM: 117_100_000, Directed: false, AvgDegree: 38.14,
		DefaultScale: 128,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(DensePowerLaw(n, 38.1, seed), "orkut")
		},
	},
	{
		Name: "twitter", PaperN: 41_600_000, PaperM: 1_500_000_000, Directed: true, AvgDegree: 36.06,
		DefaultScale: 1024,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(DirectedScaleFree(n, 36.1, 0.15, seed), "twitter")
		},
	},
	{
		Name: "friendster", PaperN: 65_600_000, PaperM: 1_800_000_000, Directed: false, AvgDegree: 27.69,
		DefaultScale: 1024,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(DensePowerLaw(n, 27.7, seed), "friendster")
		},
	},
	{
		// The SIMPATH paper's larger DBLP variant, used as a multigraph under
		// LT-"parallel edges" (paper Table 4, "DBLP (large)-P").
		Name: "dblp-large", PaperN: 914_000, PaperM: 6_650_000, Directed: true, AvgDegree: 7.2,
		DefaultScale: 16,
		Generate: func(n int32, seed uint64) *graph.Graph {
			return named(CallMultigraph(n, int64(n)*7, seed), "dblp-large")
		},
	},
}

func named(g *graph.Graph, name string) *graph.Graph {
	return g.WithName(name)
}

// Names returns all registered dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the spec for name.
func Lookup(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
}

// Generate builds the stand-in for name at scale (0 = spec default; larger
// scale = smaller graph) with the given seed.
func Generate(name string, scale int64, seed uint64) (*graph.Graph, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = s.DefaultScale
	}
	n := s.PaperN / scale
	if n < 64 {
		n = 64
	}
	if n > int64(1)<<31-1 {
		return nil, fmt.Errorf("datasets: %s at scale %d exceeds int32 nodes", name, scale)
	}
	return s.Generate(int32(n), seed), nil
}

// MustGenerate is Generate for tests and examples; it panics on error.
func MustGenerate(name string, scale int64, seed uint64) *graph.Graph {
	g, err := Generate(name, scale, seed)
	if err != nil {
		panic(err)
	}
	return g
}
