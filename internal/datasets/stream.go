package datasets

import (
	"fmt"

	"github.com/sigdata/goinfmax/internal/graph"
)

// Streaming synthetic generation
//
// The registry generators materialize a Builder — fine for laptop-scale
// stand-ins, impossible for the ≥100M-edge graphs the compact backend
// exists for. StreamRMAT generates arcs one at a time with O(1) state per
// arc: arc i's endpoints are a pure function of (seed, i), so the stream
// can be produced in bounded memory, regenerated deterministically, and
// even emitted in parallel ranges if a caller ever needs to.

// rmatMix is a splitmix64 step: the i-th output of a seed's stream, used to
// give every arc an independent deterministic RNG state.
func rmatMix(seed uint64, i int64) uint64 {
	z := seed + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StreamRMAT emits m directed arcs of an R-MAT graph over n nodes to the
// emit callback, using the classic (0.57, 0.19, 0.19, 0.05) quadrant
// probabilities (Graph500's power-law parameterization). Endpoints are
// drawn in the enclosing power-of-two ID space and rejected until they land
// in [0, n); self-loops are emitted (the binary writer and Builder both
// drop them, keeping the two ingestion paths identical). Arc i depends only
// on (seed, i), never on earlier arcs.
func StreamRMAT(n int32, m int64, seed uint64, emit func(u, v graph.NodeID) error) error {
	if n < 2 {
		return fmt.Errorf("datasets: rmat needs n >= 2, got %d", n)
	}
	if m < 0 {
		return fmt.Errorf("datasets: rmat needs m >= 0, got %d", m)
	}
	levels := 0
	for int64(1)<<levels < int64(n) {
		levels++
	}
	const (
		pa = 0.57
		pb = 0.19
		pc = 0.19
	)
	for i := int64(0); i < m; i++ {
		state := rmatMix(seed, i)
		next := func() float64 {
			// xorshift64* step; top 53 bits to a uniform [0,1).
			state ^= state >> 12
			state ^= state << 25
			state ^= state >> 27
			return float64((state*0x2545f4914f6cdd1d)>>11) / (1 << 53)
		}
		var u, v int64
		for {
			u, v = 0, 0
			for l := 0; l < levels; l++ {
				r := next()
				switch {
				case r < pa: // top-left: neither bit set
				case r < pa+pb: // top-right
					v |= 1 << l
				case r < pa+pb+pc: // bottom-left
					u |= 1 << l
				default: // bottom-right
					u |= 1 << l
					v |= 1 << l
				}
			}
			if u < int64(n) && v < int64(n) {
				break
			}
		}
		if err := emit(graph.NodeID(u), graph.NodeID(v)); err != nil {
			return err
		}
	}
	return nil
}
