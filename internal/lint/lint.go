// Package lint implements imlint, the project-specific static-analysis
// gate for the benchmarking platform.
//
// The paper's myth-analysis numbers are only trustworthy if every run is
// reproducible from its seed and every grid cell is survivable. The
// resilience layer (internal/core/resilience.go) and the deterministic
// rng plumbing (internal/rng) provide those properties, but nothing in
// the language stops the next algorithm port from quietly reintroducing
// wall-clock seeding, map-order-dependent output, unsupervised
// goroutines, or poll-free hot loops. imlint turns those review rules
// into compile-time-checked invariants.
//
// The framework is deliberately stdlib-only (go/ast, go/parser,
// go/types): the gate must run in any environment that can build the
// repo, with no module downloads.
//
// Eight analyzers ship with the gate. Five are intra-procedural:
//
//   - detrand: no math/rand and no time.Now()-derived integer seeds in
//     internal/ or cmd/ non-test code; randomness flows through
//     internal/rng so a 64-bit seed reproduces a whole campaign.
//   - maporder: no `for range` over a map in an output path (journal,
//     CSV, table, encoder emission); Go randomizes map iteration order
//     per process, which corrupts checkpoint/resume keying and makes
//     result files diff unstably.
//   - ctxpoll: Select/Estimate hot paths that carry a Context and loop
//     must poll the budget (Check/CheckNow/CancelErr/Err/Done) so the
//     hard watchdog stays a last resort.
//   - gosupervise: a `go func` literal must recover from panics (or be
//     explicitly exempted); an unsupervised goroutine panic kills the
//     whole benchmark process, bypassing the Panicked status.
//   - ioerr: journal/file I/O error returns must not be silently
//     discarded, including deferred Close on write paths.
//
// Three more are inter-procedural, driven by module-wide per-function
// summaries propagated to a fixed point (see program.go):
//
//   - detflow: values derived from nondeterministic sources (wall
//     clock, map iteration order, select arrival order) must not reach
//     RNG seeds, journal/CSV/HTTP emission, or SetStore merges — even
//     through call chains.
//   - arenaalias: a SetStore arena view (Set/Raw sub-slice) must not be
//     used after Append/AppendStore/Grow/Reset may have realloc'd the
//     backing array, even when the mutation hides inside a callee.
//   - lockhold: no file I/O, blocking channel operation, or HTTP work
//     while holding a sync.Mutex/RWMutex in internal/serve and
//     internal/persist.
//
// Findings can be locally waived with a justified suppression comment:
//
//	//imlint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a directive without one (or naming an unknown
// analyzer) is itself reported, so suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message explaining the violated invariant.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// NeedsProgram marks summary-driven analyzers: when any selected
	// analyzer sets it, Check builds the module-wide Program (call
	// graph + fixed-point summaries) once and shares it across passes.
	NeedsProgram bool
	// Run inspects the package in pass and reports findings on it.
	Run func(pass *Pass)
}

// Analyzers lists every registered analyzer in output order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, CtxPoll, GoSupervise, IOErr, DetFlow, ArenaAlias, LockHold}
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed non-test files of the package under analysis.
	Files []*ast.File
	// Pkg and Info hold the (possibly partial) type-check result. The
	// loader tolerates unresolved imports, so analyzers must degrade
	// conservatively when a lookup returns nil.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the import path; ModRel is the path relative to the
	// module root ("" for the root package), used for scoping rules.
	PkgPath string
	ModRel  string
	// Prog is the module-wide inter-procedural view, present only when
	// the analyzer declares NeedsProgram. It covers exactly the packages
	// of this Check run: a run scoped to one directory degrades to
	// conservative intra-procedural behavior for out-of-set callees.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when type information is
// unavailable (unresolved imports, fixtures with deliberate errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Check runs the given analyzers over the loaded packages and returns
// the surviving findings sorted by position. Suppression directives are
// applied here, and malformed directives are reported under the
// pseudo-analyzer name "directive".
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := CheckAudit(pkgs, analyzers)
	return diags
}

// CheckAudit is Check plus the suppression audit trail: it additionally
// returns every well-formed //imlint:ignore directive encountered, with
// Used set on those that waived at least one finding. Auditing is only
// meaningful when every analyzer runs — a directive for an unselected
// analyzer always looks unused.
func CheckAudit(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []*Directive) {
	// Directives are validated against the full registry, not just the
	// analyzers selected for this run: `-only detrand` must not start
	// reporting every legitimate ioerr suppression as unknown.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// The inter-procedural Program is built once per run, only when a
	// selected analyzer needs it: the intra-procedural gate stays as
	// cheap as it was before the substrate existed.
	var prog *Program
	for _, a := range analyzers {
		if a.NeedsProgram {
			prog = BuildProgram(pkgs)
			break
		}
	}

	var diags []Diagnostic
	var directives []*Directive
	for _, pkg := range pkgs {
		sup := collectDirectives(pkg, known)
		diags = append(diags, sup.problems...)
		directives = append(directives, sup.directives...)

		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				ModRel:   pkg.ModRel,
				diags:    &pkgDiags,
			}
			if a.NeedsProgram {
				pass.Prog = prog
			}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(directives, func(i, j int) bool {
		a, b := directives[i], directives[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, directives
}

// ---- shared AST helpers used by several analyzers ----

// pkgFuncCall reports whether call invokes pkgName.fn for one of the
// given function names, e.g. fmt.Fprintf. It prefers type information
// (so aliased imports resolve correctly) and falls back to the literal
// identifier when types are unavailable.
func (p *Pass) pkgFuncCall(call *ast.CallExpr, pkgPath string, names ...string) bool {
	return pkgFuncCallInfo(p.Info, call, pkgPath, names...)
}

// pkgFuncCallInfo is pkgFuncCall as a free function, usable by the
// summary engine outside any Pass.
func pkgFuncCallInfo(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	matched := false
	for _, n := range names {
		if sel.Sel.Name == n {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if info != nil {
		if obj, ok := info.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && pn.Imported().Path() == pkgPath
		}
	}
	// No resolution: match on the conventional package identifier.
	base := pkgPath
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	return id.Name == base
}

// methodCallName returns the selector name when call is a method-style
// call expression (x.Name(...)), or "".
func methodCallName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// callReturnsError reports whether the call's last result is the
// built-in error type. unknown is true when no type info is available.
func (p *Pass) callReturnsError(call *ast.CallExpr) (returnsErr, unknown bool) {
	t := p.TypeOf(call)
	if t == nil || t == types.Typ[types.Invalid] {
		return false, true
	}
	switch tt := t.(type) {
	case *types.Tuple:
		if tt.Len() == 0 {
			return false, false
		}
		return isErrorType(tt.At(tt.Len() - 1).Type()), false
	default:
		return isErrorType(t), false
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// receiverPkgPath returns the defining package path of the method
// invoked by call, or "" when it cannot be determined.
func (p *Pass) receiverPkgPath(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.Info == nil {
		return ""
	}
	obj, ok := p.Info.Uses[sel.Sel]
	if !ok || obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
