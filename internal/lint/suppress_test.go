package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressionEdgeCases pins the directive-coverage semantics on
// the suppressedge fixture: a directive covers its own line and the
// line directly below, no further.
func TestSuppressionEdgeCases(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{filepath.Join("testdata", "src", "suppressedge")})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture should type-check cleanly: %v", e)
		}
	}

	diags, directives := CheckAudit(pkgs, Analyzers())

	// Multiple directives affecting one line (DoubleWaiver) and the
	// directive above a multi-line statement (MultiLine) suppress their
	// findings; only WrongLine's emission survives.
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (WrongLine):\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "detflow" || !strings.Contains(d.Message, "wall clock") {
		t.Errorf("surviving finding = %s, want a detflow wall-clock emission", d)
	}

	if len(directives) != 4 {
		t.Fatalf("got %d directives, want 4:\n%v", len(directives), directives)
	}
	var stale []*Directive
	for _, dir := range directives {
		if !dir.Used {
			stale = append(stale, dir)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("got %d stale directives, want exactly 1 (WrongLine's):\n%v", len(stale), stale)
	}
	// The stale one is the wrong-line waiver: same analyzer as the
	// surviving finding, anchored two lines above it.
	if stale[0].Analyzer != "detflow" {
		t.Errorf("stale directive analyzer = %q, want detflow", stale[0].Analyzer)
	}
	if got, want := stale[0].Pos.Line, d.Pos.Line-2; got != want {
		t.Errorf("stale directive at line %d, want %d (two above the surviving finding)", got, want)
	}

	// Used directives must include both analyzers of the double-waiver
	// line: one from the directive above, one from the trailing one.
	used := make(map[string]int)
	for _, dir := range directives {
		if dir.Used {
			used[dir.Analyzer]++
		}
	}
	if used["detrand"] != 1 || used["detflow"] != 2 {
		t.Errorf("used directive histogram = %v, want detrand:1 detflow:2", used)
	}
}
