// Package fixture exercises suppression-directive edge cases: multiple
// directives affecting one line, a directive above a multi-line
// statement, and a directive whose target reports on a different line
// (stale). It is loaded by suppress_test.go, not by the corpus test.
package fixture

import (
	"fmt"
	"os"
	"time"

	"github.com/sigdata/goinfmax/internal/rng"
)

// DoubleWaiver: one line carries findings from two analyzers, waived
// by two different directives — one above the line, one trailing it.
func DoubleWaiver() *rng.Source {
	//imlint:ignore detrand demo seed, not a benchmark artifact
	return rng.New(uint64(time.Now().UnixNano())) //imlint:ignore detflow demo seed, not a benchmark artifact
}

// MultiLine: the finding anchors to the first line of a statement that
// spans several, and the directive above that first line covers it.
func MultiLine(f *os.File) {
	//imlint:ignore detflow banner stamp on a multi-line call is waived at its first line
	_, _ = fmt.Fprintf(
		f,
		"started %v\n",
		time.Now(),
	)
}

// WrongLine: the directive names a valid analyzer but sits two lines
// above the finding, so it waives nothing — the finding must survive
// and the directive must audit as stale.
func WrongLine(f *os.File) {
	//imlint:ignore detflow waiver is two lines above the finding and must not apply
	x := 1
	_, _ = fmt.Fprintf(f, "%v %d\n", time.Now(), x)
}
