package fixture

// These cases fail only with summary propagation: the view constructor
// and the mutation are each two calls deep, so no single function body
// shows both the Set and the Append.

// head returns a view of st's arena (view constructor, depth 1).
func head(st *SetStore) []int32 {
	return st.Set(0)
}

// first wraps head: still a view of st, two calls deep.
func first(st *SetStore) []int32 {
	return head(st)
}

// fill mutates st inside a helper (mutator, depth 1).
func fill(st *SetStore, vals []int32) {
	st.Append(vals)
}

// grow wraps fill: the realloc risk is two calls deep.
func grow(st *SetStore, n int) {
	fill(st, make([]int32, n))
}

// Chain holds a chain-constructed view across a chain-hidden mutation.
func Chain(st *SetStore) int32 {
	v := first(st)
	grow(st, 8)
	return v[0] // want arenaalias "used after call to grow"
}
