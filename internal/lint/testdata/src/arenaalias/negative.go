package fixture

// Retake is the endorsed pattern: views are cheap, so re-take after
// every mutation instead of holding one across it.
func Retake(st *SetStore) int32 {
	v := st.Set(0)
	st.Append([]int32{9})
	v = st.Set(0)
	return v[0]
}

// CopyOut materializes the data before mutating: the copy does not
// alias the arena.
func CopyOut(st *SetStore) []int32 {
	v := st.Set(0)
	out := make([]int32, len(v))
	copy(out, v)
	st.Reset()
	return out
}

// MutateThenView orders the operations correctly.
func MutateThenView(st *SetStore) int32 {
	st.Append([]int32{5})
	v := st.Set(0)
	return v[0]
}

// IndependentStores: mutating one store does not invalidate views of
// another.
func IndependentStores(a, b *SetStore) int32 {
	v := a.Set(0)
	b.Append([]int32{7})
	return v[0]
}
