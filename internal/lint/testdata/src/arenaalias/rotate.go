package fixture

// Sampler is a miniature stand-in for the streaming sampler: the analyzer
// recognizes the rotating-sink protocol by call name (SampleStream), so the
// fixture does not need the real diffusion package. The borrowed batch is
// reset as soon as the sink returns.
type Sampler struct {
	arena SetStore
}

// SampleStream delivers bounded batches to sink, resetting the arena after
// every invocation — exactly the real protocol.
func (s *Sampler) SampleStream(count int, sink func(batch *SetStore) error) error {
	for i := 0; i < count; i++ {
		s.arena.Append([]int32{int32(i)})
		if err := sink(&s.arena); err != nil {
			return err
		}
		s.arena.Reset()
	}
	return nil
}

// holder gives the fixture an escape target with indirection.
type holder struct {
	view []int32
}

// RetainAcrossRotation captures a batch view in an outer variable: by the
// time the stream returns, the arena behind it has been reset many times.
func RetainAcrossRotation(s *Sampler) int32 {
	var stale []int32
	_ = s.SampleStream(10, func(batch *SetStore) error {
		stale = batch.Set(0) // want arenaalias "escapes the sink"
		return nil
	})
	return stale[0]
}

// RetainRawAcrossRotation escapes the whole arena, sliced, into a field —
// fields outlive the invocation as far as the analysis can tell.
func RetainRawAcrossRotation(s *Sampler, h *holder) {
	_ = s.SampleStream(4, func(batch *SetStore) error {
		data, _ := batch.Raw()
		h.view = data[1:] // want arenaalias "escapes the sink"
		return nil
	})
}

// DrainByCopy is the endorsed pattern: fold the batch into owned storage
// before returning — AppendStore copies, so nothing aliases the arena.
func DrainByCopy(s *Sampler, out *SetStore) {
	_ = s.SampleStream(10, func(batch *SetStore) error {
		out.AppendStore(batch)
		return nil
	})
}

// LocalBorrow takes views inside the sink and lets them die there: a fresh
// binding scoped to the invocation is exactly what the protocol permits.
func LocalBorrow(s *Sampler) {
	total := int32(0)
	_ = s.SampleStream(10, func(batch *SetStore) error {
		v := batch.Set(0)
		total += v[0]
		return nil
	})
	_ = total
}

// SuppressedRetention documents a deliberate waiver: this caller passes a
// sink to a single-batch stream, so the arena is never rotated behind it.
func SuppressedRetention(s *Sampler) []int32 {
	var last []int32
	_ = s.SampleStream(1, func(batch *SetStore) error {
		//imlint:ignore arenaalias single-batch stream, the arena outlives the call
		last = batch.Set(0)
		return nil
	})
	return last
}
