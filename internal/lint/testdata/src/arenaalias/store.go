// Package fixture exercises the arenaalias analyzer: sub-slice views
// of a SetStore arena must not be used after a mutation that may
// realloc or retire the backing array.
package fixture

// SetStore is a miniature stand-in for graphalgo.SetStore — the
// analyzer matches by type name, so the fixture does not need to
// import the real package. The aliasing contract is identical: Set and
// Raw return views of the flat arena; Append, AppendStore, Grow and
// Reset may move or retire it.
type SetStore struct {
	data []int32
	off  []int64
}

// Set returns a zero-copy view of set i.
func (s *SetStore) Set(i int) []int32 {
	return s.data[s.off[i]:s.off[i+1]]
}

// Raw returns the backing arena itself.
func (s *SetStore) Raw() ([]int32, []int64) {
	return s.data, s.off
}

// Append adds one set, possibly reallocating the arena.
func (s *SetStore) Append(vals []int32) {
	if len(s.off) == 0 {
		s.off = append(s.off, 0)
	}
	s.data = append(s.data, vals...)
	s.off = append(s.off, int64(len(s.data)))
}

// AppendStore bulk-appends another store's sets.
func (s *SetStore) AppendStore(o *SetStore) {
	for i := 0; i+1 < len(o.off); i++ {
		s.Append(o.Set(i))
	}
}

// Grow reserves capacity, possibly reallocating.
func (s *SetStore) Grow(n int) {
	if cap(s.data)-len(s.data) < n {
		nd := make([]int32, len(s.data), len(s.data)+n)
		copy(nd, s.data)
		s.data = nd
	}
}

// Reset retires the arena for reuse.
func (s *SetStore) Reset() {
	s.data = s.data[:0]
	s.off = s.off[:0]
}
