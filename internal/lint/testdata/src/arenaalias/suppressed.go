package fixture

// SuppressedStale documents a deliberate waiver: here the caller
// guarantees capacity was pre-reserved, so Append cannot realloc.
func SuppressedStale(st *SetStore) int32 {
	v := st.Set(0)
	st.Append([]int32{1})
	//imlint:ignore arenaalias capacity pre-reserved by caller, Append cannot realloc here
	return v[0]
}
