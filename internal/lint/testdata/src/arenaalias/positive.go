package fixture

// UseAfterAppend reads a view after Append may have moved the arena:
// the slice still indexes the old backing array.
func UseAfterAppend(st *SetStore) int32 {
	v := st.Set(0)
	st.Append([]int32{1, 2, 3})
	return v[0] // want arenaalias "used after Append"
}

// RawAfterReset retains the arena itself across Reset.
func RawAfterReset(st *SetStore) []int32 {
	data, _ := st.Raw()
	st.Reset()
	return data // want arenaalias "used after Reset"
}

// EscapeAfterGrow hands a stale view to another function — uses count,
// not just direct reads.
func EscapeAfterGrow(st *SetStore) {
	v := st.Set(1)
	st.Grow(64)
	consume(v) // want arenaalias "used after Grow"
}

func consume(v []int32) int {
	return len(v)
}
