package fixture

import (
	"fmt"
	"io"
	"sort"
)

// EmitSorted is the endorsed pattern: collect keys, sort, then emit
// from the slice.
func EmitSorted(w io.Writer, stats map[string]float64) {
	keys := make([]string, 0, len(stats))
	for k := range stats { // accumulation only: no emission in the body
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s,%g\n", k, stats[k])
	}
}

// Total ranges a map without emitting: pure accumulation is fine.
func Total(stats map[string]float64) float64 {
	var sum float64
	for _, v := range stats {
		sum += v
	}
	return sum
}
