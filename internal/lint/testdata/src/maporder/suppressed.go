package fixture

import (
	"fmt"
	"io"
)

// EmitUnordered demonstrates a justified waiver for output whose
// consumer is explicitly order-insensitive.
func EmitUnordered(w io.Writer, stats map[string]float64) {
	//imlint:ignore maporder fixture: consumer treats rows as an unordered set
	for name, v := range stats {
		fmt.Fprintf(w, "%s,%g\n", name, v)
	}
}
