// Package fixture exercises the maporder analyzer: emitting output
// while ranging a map bakes the randomized iteration order into the
// result stream.
package fixture

import (
	"fmt"
	"io"
)

// EmitDirect prints rows straight out of map iteration: the CSV/table
// row order changes every run.
func EmitDirect(w io.Writer, stats map[string]float64) {
	for name, v := range stats { // want maporder "range over map stats"
		fmt.Fprintf(w, "%s,%g\n", name, v)
	}
}

// sink mimics a journal/table-style accumulator.
type sink struct{ rows []string }

// Append records one row.
func (s *sink) Append(row string) { s.rows = append(s.rows, row) }

// EmitViaMethod appends rows in map order: the journal record stream
// is nondeterministic even though nothing is printed here.
func EmitViaMethod(s *sink, cells map[int]string) {
	for k, c := range cells { // want maporder "range over map cells"
		s.Append(fmt.Sprintf("%d=%s", k, c))
	}
}
