// Package fixture exercises the ioerr analyzer: file-flavored I/O
// errors must not be silently discarded.
package fixture

import (
	"encoding/json"
	"fmt"
	"os"
)

// WriteReport drops errors at every stage of a write path.
func WriteReport(path string, v interface{}) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // want ioerr "deferred Close"

	enc := json.NewEncoder(f)
	enc.Encode(v)                      // want ioerr "error from enc.Encode"
	fmt.Fprintf(f, "trailer: %v\n", v) // want ioerr "error from fmt.Fprintf"
}

// Cleanup ignores the removal outcome.
func Cleanup(path string) {
	os.Remove(path) // want ioerr "error from os.Remove"
}
