// Package fixture exercises the ioerr analyzer: file-flavored I/O
// errors must not be silently discarded.
package fixture

import (
	"encoding/json"
	"fmt"
	"os"
)

// WriteReport drops errors at every stage of a write path.
func WriteReport(path string, v interface{}) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // want ioerr "deferred Close"

	enc := json.NewEncoder(f)
	enc.Encode(v)                      // want ioerr "error from enc.Encode"
	fmt.Fprintf(f, "trailer: %v\n", v) // want ioerr "error from fmt.Fprintf"
}

// Cleanup ignores the removal outcome.
func Cleanup(path string) {
	os.Remove(path) // want ioerr "error from os.Remove"
}

// CommitSnapshot drops the errors that make an atomic-rename protocol
// atomic: a silently failed MkdirAll, Sync or Rename means the snapshot
// never durably committed while the caller believes it did.
func CommitSnapshot(dir, tmp, final string, f *os.File) {
	os.MkdirAll(dir, 0o755) // want ioerr "error from os.MkdirAll"
	f.Sync()                // want ioerr "error from f.Sync"
	os.Rename(tmp, final)   // want ioerr "error from os.Rename"
}

// LazySync defers the fsync with its error dropped — worse than dropping
// a Close, since Sync is the only durability barrier.
func LazySync(f *os.File) {
	defer f.Sync() // want ioerr "deferred Sync"
}
