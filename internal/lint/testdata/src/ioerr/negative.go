package fixture

import (
	"fmt"
	"os"
	"strings"
)

// WriteChecked handles every error, using the named-return close idiom
// on the write path.
func WriteChecked(path string, rows []string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	for _, r := range rows {
		if _, err := fmt.Fprintln(f, r); err != nil {
			return err
		}
	}
	return nil
}

// ReadDiscard closes a read-only handle with an explicit discard: the
// `_ =` makes the decision visible and greppable.
func ReadDiscard(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// BuildString writes into an in-memory builder: defined never to fail,
// so the discarded error results are fine.
func BuildString(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// Diagnose writes to stderr: terminal output is best-effort.
func Diagnose(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}

// CommitSnapshotChecked performs the same atomic-rename protocol with
// every durability error surfaced.
func CommitSnapshotChecked(dir, tmp, final string, f *os.File) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// BestEffortRename discards explicitly: visible and greppable.
func BestEffortRename(tmp, final string) {
	_ = os.Rename(tmp, final)
}
