package fixture

import "os"

// BestEffortCleanup demonstrates a justified waiver: the file is a
// temporary scratch artifact and the OS will reclaim it anyway.
func BestEffortCleanup(path string) {
	//imlint:ignore ioerr fixture: scratch file, best-effort removal
	os.Remove(path)
}

// BestEffortPromote demonstrates a waived rename: the destination is a
// cache entry a later pass regenerates.
func BestEffortPromote(tmp, final string) {
	//imlint:ignore ioerr fixture: cache promotion, regenerated on miss
	os.Rename(tmp, final)
}
