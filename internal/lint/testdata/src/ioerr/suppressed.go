package fixture

import "os"

// BestEffortCleanup demonstrates a justified waiver: the file is a
// temporary scratch artifact and the OS will reclaim it anyway.
func BestEffortCleanup(path string) {
	//imlint:ignore ioerr fixture: scratch file, best-effort removal
	os.Remove(path)
}
