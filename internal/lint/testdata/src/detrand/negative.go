package fixture

import (
	"time"

	"github.com/sigdata/goinfmax/internal/rng"
)

// SeededDraw threads an explicit seed through internal/rng — the
// endorsed pattern.
func SeededDraw(seed uint64) float64 {
	return rng.New(seed).Float64()
}

// Stopwatch uses the wall clock for timing, not seeding: allowed.
func Stopwatch() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// NotNowUnix calls Unix() on a value that is not time.Now(): allowed.
func NotNowUnix(t time.Time) int64 {
	return t.Unix()
}
