// Package fixture exercises the detrand analyzer: wall-clock seeding
// and math/rand both defeat single-seed reproducibility.
package fixture

import (
	"math/rand" // want detrand "import of math/rand"
	"time"
)

// WallClockSeed derives a seed from the wall clock — the classic
// nondeterminism bug detrand exists to catch.
func WallClockSeed() uint64 {
	return uint64(time.Now().UnixNano()) // want detrand "time.Now().UnixNano()"
}

// WallClockMillis is the same bug through a different accessor.
func WallClockMillis() int64 {
	return time.Now().UnixMilli() // want detrand "time.Now().UnixMilli()"
}

// GlobalRNG consumes the global math/rand stream.
func GlobalRNG() int {
	return rand.Int()
}
