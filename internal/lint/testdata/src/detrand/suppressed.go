package fixture

import "time"

// SuppressedWallClock shows a justified waiver: the directive on the
// line above (or the same line) downgrades the finding.
func SuppressedWallClock() uint64 {
	//imlint:ignore detrand fixture demonstrating a justified suppression
	return uint64(time.Now().UnixNano())
}

// SuppressedSameLine uses a trailing directive instead.
func SuppressedSameLine() int64 {
	return time.Now().Unix() //imlint:ignore detrand trailing-comment form of the waiver
}
