// Package fixture exercises directive validation: a suppression that
// cannot be honored must fail the gate instead of silently disabling a
// check.
package fixture

//imlint:ignore detrand
var MissingReason = 1

//imlint:ignore nosuchanalyzer because it seemed like a good idea
var UnknownAnalyzer = 2

//imlint:ignore
var MissingEverything = 3
