// Package fixture exercises the detflow analyzer: nondeterministic
// values (wall clock, map iteration order, select arrival order) must
// not reach RNG seeds or output emission.
package fixture

import (
	"fmt"
	"os"
	"time"

	"github.com/sigdata/goinfmax/internal/rng"
)

// ClockToFile: a wall-clock value flows straight into file emission.
func ClockToFile(f *os.File) {
	stamp := time.Now()
	_, _ = fmt.Fprintf(f, "run at %v\n", stamp) // want detflow "wall clock"
}

// ClockToSeed: an elapsed duration becomes an RNG seed, silently
// forking the campaign's random universe.
func ClockToSeed(epoch time.Time) *rng.Source {
	d := time.Since(epoch)
	return rng.New(uint64(d)) // want detflow "internal/rng seed surface"
}

// KeysUnsorted: a slice accumulated inside a map range captures
// iteration order; emitting it unsorted makes output diff unstably.
// (maporder stays silent here — nothing is emitted in the range body.)
func KeysUnsorted(m map[string]int, f *os.File) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	_, _ = fmt.Fprintln(f, keys) // want detflow "map iteration order"
}

// MergeRace: a value bound in a two-way select depends on scheduler
// arrival order; emitting it breaks replica determinism.
func MergeRace(a, b chan int, f *os.File) {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	_, _ = fmt.Fprintln(f, v) // want detflow "select arrival order"
}
