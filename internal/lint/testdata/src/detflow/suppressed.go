package fixture

import (
	"fmt"
	"os"
	"time"
)

// SuppressedBanner deliberately stamps a run banner with the wall
// clock; the waiver documents the decision where it is made.
func SuppressedBanner(f *os.File) {
	t := time.Now()
	//imlint:ignore detflow run banner is a human-facing log line, not a reproducible artifact
	_, _ = fmt.Fprintf(f, "started %v\n", t)
}
