package fixture

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// SortedKeys is the endorsed cleanse: sorting restores a deterministic
// order, so the map-order taint does not survive to the emission.
func SortedKeys(m map[string]int, f *os.File) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	_, _ = fmt.Fprintln(f, keys)
}

// ConsoleElapsed prints a duration to stdout: console diagnostics are
// best-effort human output, not a determinism artifact.
func ConsoleElapsed(start time.Time) {
	fmt.Printf("elapsed %v\n", time.Since(start))
}

// RecordedElapsed stores a measured duration into a result record
// field. Measured wall time is data being reported, not a determinism
// channel: field writes deliberately drop taint.
type runRecord struct {
	Label   string
	Elapsed time.Duration
}

func RecordedElapsed(start time.Time, rec *runRecord) {
	rec.Elapsed = time.Since(start)
}

// SingleRecv: a one-case select has no arrival race.
func SingleRecv(a chan int, f *os.File) {
	var v int
	select {
	case v = <-a:
	}
	_, _ = fmt.Fprintln(f, v)
}
