package fixture

import (
	"fmt"
	"os"
)

// Deque is a miniature stand-in for the work-stealing deque
// (internal/sched): recognition is by type name, so the fixture does
// not import the real package. Which range Claim or Steal hands out
// next depends on scheduler arrival order — the claim sequence is
// nondeterministic even though the union of all ranges is not.
type Deque struct{ lo, hi int64 }

func (d *Deque) Claim(chunk int64) (lo, hi int64, ok bool) {
	if d.lo >= d.hi {
		return 0, 0, false
	}
	lo = d.lo
	hi = lo + chunk
	if hi > d.hi {
		hi = d.hi
	}
	d.lo = hi
	return lo, hi, true
}

func (d *Deque) Steal(chunk int64) (lo, hi int64, ok bool) {
	return d.Claim(chunk)
}

// SetStore is a miniature stand-in for the graphalgo arena (recognized
// by type name): its merge methods are determinism sinks.
type SetStore struct{ data []int32 }

func (s *SetStore) Append(set []int32) { s.data = append(s.data, set...) }

// ClaimLogEmitted: emitting the claim sequence leaks which worker got
// which range in which order — pure scheduling noise.
func ClaimLogEmitted(d *Deque, f *os.File) {
	for {
		lo, hi, ok := d.Claim(64)
		if !ok {
			break
		}
		_, _ = fmt.Fprintf(f, "claimed [%d,%d)\n", lo, hi) // want detflow "work-stealing claim order"
	}
}

// StolenRangeMerged: appending sets to a shared store in steal order
// breaks the byte-identical-at-any-worker-count contract; the merge
// must be keyed by global index instead.
func StolenRangeMerged(d *Deque, st *SetStore) {
	lo, hi, ok := d.Steal(64)
	if ok {
		st.Append([]int32{int32(lo), int32(hi)}) // want detflow "work-stealing claim order"
	}
}

// IndexKeyedResults is the endorsed pattern: each claimed index fills
// its own pre-assigned slot, so results depend only on the index, never
// on who claimed it or when. Element writes drop the taint by design.
func IndexKeyedResults(d *Deque, results []int64) {
	for {
		lo, hi, ok := d.Claim(64)
		if !ok {
			break
		}
		for i := lo; i < hi; i++ {
			results[i] = i * i
		}
	}
}
