package fixture

import (
	"fmt"
	"os"
	"time"
)

// These cases fail only with summary propagation: intra-procedurally,
// every function below looks innocent.

var processEpoch = time.Unix(0, 0)

// nowMs derives a value from the wall clock (source, depth 1).
func nowMs() int64 {
	return int64(time.Since(processEpoch) / time.Millisecond)
}

// header formats it (pure transfer, depth 2).
func header(ms int64) string {
	return fmt.Sprintf("t=%d", ms)
}

// WriteHeader emits at depth 3: the taint survives two intermediate
// calls before reaching the sink.
func WriteHeader(f *os.File) {
	h := header(nowMs())
	_, _ = fmt.Fprintln(f, h) // want detflow "wall clock"
}

// emit is a sink hidden inside a helper: its second parameter reaches
// file emission.
func emit(f *os.File, v int64) {
	_, _ = fmt.Fprintf(f, "%d\n", v)
}

// RecordStamp reaches the hidden sink with a tainted argument: the
// SinkParams summary carries the sink back to this call site.
func RecordStamp(f *os.File) {
	emit(f, nowMs()) // want detflow "via call to emit"
}
