package fixture

type bounded struct{}

// Select demonstrates a justified waiver: the loop bound is a small
// compile-time constant, so the budget cannot meaningfully overrun.
//
//imlint:ignore ctxpoll fixture: loop is bounded by a small constant
func (bounded) Select(ctx *Context, xs [4]int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
