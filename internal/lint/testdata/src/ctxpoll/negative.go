package fixture

type polling struct{}

// Select polls the amortized check each iteration: compliant.
func (polling) Select(ctx *Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Check(); err != nil {
			return 0, err
		}
		total += i
	}
	return total, nil
}

// EstimateOnce polls unconditionally around a coarse unit of work.
func EstimateOnce(ctx *Context, xs []int) (int, error) {
	if err := ctx.CheckNow(); err != nil {
		return 0, err
	}
	total := 0
	for _, x := range xs {
		total += x
	}
	return total, nil
}

// MarginalGainPaired polls between worlds (here via a deferred closure
// handed to the evaluation engine, as diffusion.MarginalGainCtx does).
func MarginalGainPaired(ctx *Context, worlds []int) (int, error) {
	poll := func() error { return ctx.Check() }
	gain := 0
	for _, w := range worlds {
		if err := poll(); err != nil {
			return 0, err
		}
		gain += w
	}
	return gain, nil
}

type trivial struct{}

// Select has nothing to poll for: no iteration, no finding.
func (trivial) Select(ctx *Context) int { return 1 }

// EstimateNoContext takes no Context, so the budget contract does not
// apply (whoever calls it owns the polling).
func EstimateNoContext(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
