// Package fixture exercises the ctxpoll analyzer: hot paths that carry
// a Context and loop must poll the budget.
package fixture

// Context mimics the cooperative-budget API of internal/core.Context.
type Context struct{ polls int }

// Check is the amortized budget poll.
func (c *Context) Check() error { c.polls++; return nil }

// CheckNow is the unconditional budget poll.
func (c *Context) CheckNow() error { c.polls++; return nil }

// Select loops without ever polling: only the hard watchdog can stop
// it, which abandons the cell and leaks the goroutine.
func Select(ctx *Context, n int) int { // want ctxpoll "Select loops but never polls"
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// EstimateSpread has the same gap in an estimation path.
func EstimateSpread(ctx *Context, xs []int) int { // want ctxpoll "EstimateSpread loops but never polls"
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// MarginalGainBrute simulates per-world like an Estimate* and has the
// same exposure: looping without a poll leaves only the hard watchdog.
func MarginalGainBrute(ctx *Context, worlds []int) int { // want ctxpoll "MarginalGainBrute loops but never polls"
	gain := 0
	for _, w := range worlds {
		gain += w
	}
	return gain
}
