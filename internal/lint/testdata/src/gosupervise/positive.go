// Package fixture exercises the gosupervise analyzer: goroutine
// literals must defer a recover, or one panic kills the whole process.
package fixture

// SpawnBare launches an unsupervised goroutine: a panic inside it
// bypasses the resilience layer entirely.
func SpawnBare(work func()) {
	go func() { // want gosupervise "without a deferred recover"
		work()
	}()
}

// SpawnDeferNoRecover defers cleanup but never recovers: still fatal.
func SpawnDeferNoRecover(work, cleanup func()) {
	go func() { // want gosupervise "without a deferred recover"
		defer cleanup()
		work()
	}()
}
