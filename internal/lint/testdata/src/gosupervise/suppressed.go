package fixture

// SpawnExempt demonstrates a justified waiver, mirroring the diffusion
// worker pool: the body runs trusted harness code only.
func SpawnExempt(work func()) {
	//imlint:ignore gosupervise fixture: body runs trusted harness code; recover would mask corruption
	go func() {
		work()
	}()
}
