package fixture

// SpawnSupervised recovers panics and reports them as values — the
// pattern guardedSelect uses.
func SpawnSupervised(work func(), panics chan<- interface{}) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				panics <- r
			}
		}()
		work()
	}()
}

// SpawnNamed launches a named function: supervision is that function's
// concern at its definition site, not the launch site's.
func SpawnNamed() {
	go namedWorker()
}

func namedWorker() {}
