package fixture

import "sync"

// Work-stealing worker pools: each worker goroutine loops over claimed
// index ranges. The executor pattern (internal/sched) records the first
// panic, stops the fleet, and re-raises on the caller after the join —
// but the recover must still be installed on each worker goroutine, or
// a panicking body kills the process before the supervisor can classify
// it.

// SpawnStealingSupervised is the executor's shape: every worker defers
// a recover that parks the panic value for the caller to re-raise.
func SpawnStealingSupervised(workers int, claim func() (int64, int64, bool), body func(lo, hi int64)) interface{} {
	var mu sync.Mutex
	var panicked interface{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for {
				lo, hi, ok := claim()
				if !ok {
					return
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	return panicked
}

// SpawnStealingBare launches the same loop unsupervised: one panicking
// body call kills every worker's in-flight results with the process.
func SpawnStealingBare(workers int, claim func() (int64, int64, bool), body func(lo, hi int64)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { // want gosupervise "without a deferred recover"
			defer wg.Done()
			for {
				lo, hi, ok := claim()
				if !ok {
					break
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}
