package fixture

import (
	"fmt"
)

// WriteSnapshot is the endorsed pattern: snapshot under the lock,
// unlock, then do the slow work outside the critical section.
func (j *journal) WriteSnapshot(line string) error {
	j.mu.Lock()
	n := j.n
	j.n++
	j.mu.Unlock()
	_, err := fmt.Fprintf(j.f, "%d %s\n", n, line)
	return err
}

// TryPublish uses a non-blocking send: the default case bounds the
// wait, so holding the lock across it is fine.
func (s *fanout) TryPublish(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- v:
		return true
	default:
		return false
	}
}

// ReadCounter holds the lock only around in-memory state.
func (j *journal) ReadCounter() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// UnlockedWrite never takes the lock at all.
func (j *journal) UnlockedWrite(line string) {
	_, _ = fmt.Fprintln(j.f, line)
}
