// Package fixture exercises the lockhold analyzer: no file I/O,
// blocking channel operation, or HTTP work inside a critical section.
package fixture

import (
	"fmt"
	"os"
	"sync"
)

type journal struct {
	mu sync.Mutex
	f  *os.File
	n  int
}

// WriteLocked performs file I/O while holding the mutex: one slow disk
// write serializes every caller behind it.
func (j *journal) WriteLocked(line string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.n++
	_, _ = fmt.Fprintln(j.f, line) // want lockhold "file I/O"
}

type fanout struct {
	mu  sync.Mutex
	out chan int
	buf []int
}

// PublishLocked sends on a channel under the lock: if the receiver is
// slow, every other publisher blocks on the mutex.
func (s *fanout) PublishLocked(v int) {
	s.mu.Lock()
	s.buf = append(s.buf, v)
	s.out <- v // want lockhold "blocking channel operation"
	s.mu.Unlock()
}

// SyncLocked syncs the file under an RWMutex write lock.
type snapshotter struct {
	mu sync.RWMutex
	f  *os.File
}

func (s *snapshotter) SyncLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.f.Sync() // want lockhold "file I/O"
}
