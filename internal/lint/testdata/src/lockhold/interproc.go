package fixture

import (
	"fmt"
	"os"
)

// This case fails only with effect-summary propagation: the disk write
// is two calls below the critical section.

// persistTo hits the disk (effect source, depth 1).
func persistTo(f *os.File, n int) {
	_, _ = fmt.Fprintf(f, "%d\n", n)
}

// flush wraps persistTo (depth 2): nothing in this body looks like I/O.
func flush(j *journal) {
	persistTo(j.f, j.n)
}

// CheckpointLocked calls the wrapper while holding the mutex: the I/O
// effect surfaces here only through the callee summaries.
func (j *journal) CheckpointLocked() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.n++
	flush(j) // want lockhold "call to flush"
}
