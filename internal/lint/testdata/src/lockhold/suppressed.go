package fixture

import "fmt"

// CheckpointSuppressed documents a deliberate waiver: this write must
// be atomic with the counter update for crash consistency.
func (j *journal) CheckpointSuppressed() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.n = 0
	//imlint:ignore lockhold checkpoint write must be atomic with the counter reset
	_, _ = fmt.Fprintln(j.f, "checkpoint")
}
