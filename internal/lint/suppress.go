package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives
//
// A finding is waived by a comment of the form
//
//	//imlint:ignore <analyzer> <reason>
//
// on the same line as the finding (trailing comment) or on the line
// directly above it. The reason is not optional: a suppression is an
// exception to a project invariant and must say why the exception is
// sound, so that a later reader can tell whether it still applies.
// Directives with a missing reason or an unknown analyzer name are
// reported as findings themselves (analyzer name "directive") — a typo
// must fail the gate rather than silently disable a check.

const directivePrefix = "imlint:ignore"

// suppressions records, per file, which (line, analyzer) pairs are
// waived, plus any malformed directives found while parsing.
type suppressions struct {
	// waived maps filename -> line -> analyzer names ignored on that
	// line and the line below it.
	waived   map[string]map[int]map[string]bool
	problems []Diagnostic
}

// collectDirectives scans every comment in pkg for ignore directives.
func collectDirectives(pkg *Package, known map[string]bool) *suppressions {
	s := &suppressions{waived: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.addComment(pkg.Fset, c, known)
			}
		}
	}
	return s
}

func (s *suppressions) addComment(fset *token.FileSet, c *ast.Comment, known map[string]bool) {
	text, ok := directiveText(c.Text)
	if !ok {
		return
	}
	pos := fset.Position(c.Slash)
	fields := strings.Fields(text)
	if len(fields) == 0 {
		s.problems = append(s.problems, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: "imlint:ignore directive missing analyzer name and reason",
		})
		return
	}
	name := fields[0]
	if !known[name] {
		s.problems = append(s.problems, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: "imlint:ignore names unknown analyzer " + strconv.Quote(name),
		})
		return
	}
	if len(fields) < 2 {
		s.problems = append(s.problems, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: "imlint:ignore " + name + " has no reason; justify the exception",
		})
		return
	}
	byLine := s.waived[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s.waived[pos.Filename] = byLine
	}
	for _, line := range []int{pos.Line, pos.Line + 1} {
		if byLine[line] == nil {
			byLine[line] = make(map[string]bool)
		}
		byLine[line][name] = true
	}
}

// directiveText extracts the payload after "imlint:ignore", reporting
// ok=false when the comment is not a directive at all.
func directiveText(comment string) (string, bool) {
	body := strings.TrimPrefix(comment, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, directivePrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(body, directivePrefix)), true
}

// suppressed reports whether d is waived by a directive on its line or
// the line above.
func (s *suppressions) suppressed(d Diagnostic) bool {
	byLine := s.waived[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[d.Pos.Line][d.Analyzer]
}
