package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives
//
// A finding is waived by a comment of the form
//
//	//imlint:ignore <analyzer> <reason>
//
// on the same line as the finding (trailing comment) or on the line
// directly above it. The reason is not optional: a suppression is an
// exception to a project invariant and must say why the exception is
// sound, so that a later reader can tell whether it still applies.
// Directives with a missing reason or an unknown analyzer name are
// reported as findings themselves (analyzer name "directive") — a typo
// must fail the gate rather than silently disable a check.
//
// Every well-formed directive is also recorded as a Directive value
// and marked Used when it actually waives a finding; `imlint
// -suppressions` audits the full set and fails on directives that no
// longer suppress anything, so waivers cannot rot in place after the
// code they excused is gone.

const directivePrefix = "imlint:ignore"

// Directive is one well-formed //imlint:ignore comment.
type Directive struct {
	// Pos is the position of the directive comment itself.
	Pos token.Position
	// Analyzer is the analyzer the directive waives.
	Analyzer string
	// Reason is the mandatory justification text.
	Reason string
	// Used records whether the directive suppressed at least one
	// finding in this run. A run over the full module with every
	// analyzer selected leaves Used=false only on stale directives.
	Used bool
}

// suppressions records, per file, which directives cover which lines,
// plus any malformed directives found while parsing.
type suppressions struct {
	// waived maps filename -> line -> directives whose waiver covers
	// that line (a directive covers its own line and the line below).
	waived     map[string]map[int][]*Directive
	directives []*Directive
	problems   []Diagnostic
}

// collectDirectives scans every comment in pkg for ignore directives.
func collectDirectives(pkg *Package, known map[string]bool) *suppressions {
	s := &suppressions{waived: make(map[string]map[int][]*Directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.addComment(pkg.Fset, c, known)
			}
		}
	}
	return s
}

func (s *suppressions) addComment(fset *token.FileSet, c *ast.Comment, known map[string]bool) {
	text, ok := directiveText(c.Text)
	if !ok {
		return
	}
	pos := fset.Position(c.Slash)
	fields := strings.Fields(text)
	if len(fields) == 0 {
		s.problems = append(s.problems, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: "imlint:ignore directive missing analyzer name and reason",
		})
		return
	}
	name := fields[0]
	if !known[name] {
		s.problems = append(s.problems, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: "imlint:ignore names unknown analyzer " + strconv.Quote(name),
		})
		return
	}
	if len(fields) < 2 {
		s.problems = append(s.problems, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: "imlint:ignore " + name + " has no reason; justify the exception",
		})
		return
	}
	dir := &Directive{Pos: pos, Analyzer: name, Reason: strings.Join(fields[1:], " ")}
	s.directives = append(s.directives, dir)
	byLine := s.waived[pos.Filename]
	if byLine == nil {
		byLine = make(map[int][]*Directive)
		s.waived[pos.Filename] = byLine
	}
	for _, line := range []int{pos.Line, pos.Line + 1} {
		byLine[line] = append(byLine[line], dir)
	}
}

// directiveText extracts the payload after "imlint:ignore", reporting
// ok=false when the comment is not a directive at all.
func directiveText(comment string) (string, bool) {
	body := strings.TrimPrefix(comment, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, directivePrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(body, directivePrefix)), true
}

// suppressed reports whether d is waived by a directive on its line or
// the line above, marking every covering directive as used.
func (s *suppressions) suppressed(d Diagnostic) bool {
	byLine := s.waived[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	hit := false
	for _, dir := range byLine[d.Pos.Line] {
		if dir.Analyzer == d.Analyzer {
			dir.Used = true
			hit = true
		}
	}
	return hit
}
