package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// corpusDirs are the golden fixture packages: each analyzer has at
// least one true-positive (`// want <analyzer> "substr"`), one
// negative, and one suppressed case.
var corpusDirs = []string{"detrand", "maporder", "ctxpoll", "gosupervise", "ioerr", "detflow", "arenaalias", "lockhold"}

// wantRe matches expectation comments in fixture files.
var wantRe = regexp.MustCompile(`// want (\w+) "([^"]+)"`)

type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
}

// loadCorpus loads the named fixture directories with one shared
// loader (amortizing the stdlib type-check) and returns all findings.
func loadCorpus(t *testing.T, dirs ...string) []Diagnostic {
	t.Helper()
	paths := make([]string, len(dirs))
	for i, d := range dirs {
		paths[i] = filepath.Join("testdata", "src", d)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(dirs))
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s should type-check cleanly: %v", p.Path, e)
		}
	}
	return Check(pkgs, Analyzers())
}

// readExpectations parses the want comments of every fixture file in dir.
func readExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	var exps []expectation
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				exps = append(exps, expectation{file: path, line: line, analyzer: m[1], substr: m[2]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	return exps
}

// TestCorpus checks every analyzer against its golden fixtures: each
// want comment must be matched by exactly the expected finding, and no
// unexpected findings may appear (which also proves the negative and
// suppressed fixtures stay silent).
func TestCorpus(t *testing.T) {
	diags := loadCorpus(t, corpusDirs...)

	var exps []expectation
	for _, d := range corpusDirs {
		exps = append(exps, readExpectations(t, filepath.Join("testdata", "src", d))...)
	}
	if len(exps) == 0 {
		t.Fatal("no want expectations found in corpus")
	}

	matched := make([]bool, len(diags))
	for _, exp := range exps {
		found := false
		for i, d := range diags {
			if matched[i] || d.Analyzer != exp.analyzer {
				continue
			}
			if filepath.Base(d.Pos.Filename) != filepath.Base(exp.file) ||
				!strings.Contains(d.Pos.Filename, filepath.Dir(exp.file)) {
				continue
			}
			if d.Pos.Line != exp.line || !strings.Contains(d.Message, exp.substr) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing finding: %s:%d: %s: ...%s...", exp.file, exp.line, exp.analyzer, exp.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestDirectiveValidation checks that unusable suppressions are
// themselves findings: no reason, unknown analyzer, no payload at all.
func TestDirectiveValidation(t *testing.T) {
	diags := loadCorpus(t, "directive")
	wantSubstrs := []string{
		"has no reason",
		"unknown analyzer \"nosuchanalyzer\"",
		"missing analyzer name",
	}
	if len(diags) != len(wantSubstrs) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(wantSubstrs), diags)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos.Line < diags[j].Pos.Line })
	for i, sub := range wantSubstrs {
		if diags[i].Analyzer != "directive" {
			t.Errorf("finding %d: analyzer = %q, want directive", i, diags[i].Analyzer)
		}
		if !strings.Contains(diags[i].Message, sub) {
			t.Errorf("finding %d: message %q does not contain %q", i, diags[i].Message, sub)
		}
	}
}

// TestExpandPatternsSkipsTestdata ensures the repo-wide pattern never
// descends into fixture corpora (which contain deliberate violations),
// while explicit directories are always honored.
func TestExpandPatternsSkipsTestdata(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no dirs matched ./...")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into %s", d)
		}
	}

	explicit := filepath.Join("testdata", "src", "detrand")
	dirs, err = ExpandPatterns([]string{explicit})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != explicit {
		t.Errorf("explicit dir expansion = %v, want [%s]", dirs, explicit)
	}
}

// TestRepoIsClean runs the full gate over the module in-process: the
// shipping tree must satisfy its own invariants.
func TestRepoIsClean(t *testing.T) {
	dirs, err := ExpandPatterns([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, e)
		}
	}
	for _, d := range Check(pkgs, Analyzers()) {
		t.Errorf("repo finding: %s", d)
	}
}
