package lint

import (
	"go/ast"
	"go/types"
)

// IOErr guards the durability story. The journal's whole value is that
// a crash costs at most the cell in flight — which holds only if every
// write, sync, flush and close on the journal/archive/CSV path actually
// surfaces its error. A dropped Close error on a write path can mean a
// truncated archive that LoadJournal later rejects as corruption.
//
// The rule: an expression statement (or a deferred call) that discards
// an error from file-flavored I/O is a finding. Discarding explicitly
// with `_ = f.Close()` is allowed — it is visible in review and greppable
// — as is the named-return close idiom. Errors from in-memory buffers
// (strings.Builder, bytes.Buffer) are exempt: they are defined never to
// fail.
var IOErr = &Analyzer{
	Name: "ioerr",
	Doc: "journal/file I/O error returns must not be silently discarded, including deferred " +
		"Close/Flush/Sync; discard explicitly with `_ =` only when the handle is read-only",
	Run: runIOErr,
}

// ioErrMethodNames flag on any receiver type (they are the platform's
// own emission surface: Journal.Append, Table.Write..., Encoder.Encode)
// provided the call is known to return an error.
var ioErrMethodNames = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Encode": true, "Append": true,
	"Write": true, "WriteString": true, "WriteAll": true, "WriteRecord": true,
}

// ioErrDeferNames is the conservative subset flagged even without type
// information, and the set checked inside defer statements.
var ioErrDeferNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

// ioErrPkgs are stdlib packages whose error-returning calls are always
// I/O-flavored.
var ioErrPkgs = map[string]bool{
	"os": true, "io": true, "bufio": true,
	"encoding/json": true, "encoding/csv": true, "compress/gzip": true,
}

// inMemoryPkgs hold writer types that cannot fail; their error results
// exist only to satisfy io interfaces.
var inMemoryPkgs = map[string]bool{"strings": true, "bytes": true}

func runIOErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.DeferStmt:
				checkDeferred(pass, nn)
			case *ast.ExprStmt:
				if call, ok := nn.X.(*ast.CallExpr); ok {
					checkDiscarded(pass, call)
				}
			}
			return true
		})
	}
}

// checkDeferred flags `defer x.Close()` (and Flush/Sync) when the error
// is silently dropped. Deferring a wrapper literal that handles or
// explicitly discards the error is the endorsed fix and never matches.
func checkDeferred(pass *Pass, d *ast.DeferStmt) {
	name := methodCallName(d.Call)
	if !ioErrDeferNames[name] {
		return
	}
	returnsErr, unknown := pass.callReturnsError(d.Call)
	if !returnsErr && !unknown {
		return
	}
	if inMemoryPkgs[pass.receiverPkgPath(d.Call)] {
		return
	}
	pass.Reportf(d.Pos(),
		"error from deferred %s is silently dropped; on a write path capture it into the named return error, or discard explicitly with `defer func() { _ = x.%s() }()` for read-only handles",
		name, name)
}

// checkDiscarded flags expression statements that throw away an I/O
// error result.
func checkDiscarded(pass *Pass, call *ast.CallExpr) {
	name := methodCallName(call)
	returnsErr, unknown := pass.callReturnsError(call)
	if unknown {
		// Partial type info: only the unambiguous names are flagged —
		// Close/Flush/Sync on any receiver, plus the os durability calls
		// whose dropped errors break atomic-rename protocols (a rename or
		// mkdir that silently failed means the snapshot never committed).
		if ioErrDeferNames[name] || pass.pkgFuncCall(call, "os", "Rename", "MkdirAll") {
			pass.Reportf(call.Pos(), "error from %s is silently discarded; check it or discard explicitly with `_ =`", name)
		}
		return
	}
	if !returnsErr {
		return
	}
	calleePkg := pass.receiverPkgPath(call)
	if inMemoryPkgs[calleePkg] {
		return
	}
	switch {
	case ioErrPkgs[calleePkg]:
		// os.Remove, os.MkdirAll, file.Close, bufio Flush, Encoder.Encode...
	case ioErrMethodNames[name]:
		// I/O-shaped methods on project types (Journal.Append, ...).
	case fprintToFile(pass, call):
		// fmt.Fprintf to a real file (not an in-memory writer).
	default:
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s is silently discarded; a failed write here can truncate a journal/archive undetected — check it or discard explicitly with `_ =`",
		types.ExprString(call.Fun))
}

// fprintToFile reports whether call is fmt.Fprint* targeting *os.File
// or *bufio.Writer — destinations where a write error is real. Writes
// to os.Stdout/os.Stderr are exempt: terminal output is best-effort.
func fprintToFile(pass *Pass, call *ast.CallExpr) bool {
	if !pass.pkgFuncCall(call, "fmt", "Fprint", "Fprintf", "Fprintln") {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	dst := call.Args[0]
	if sel, ok := dst.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
			(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
			return false
		}
	}
	t := pass.TypeOf(dst)
	if t == nil {
		return false
	}
	s := t.String()
	return s == "*os.File" || s == "*bufio.Writer"
}
