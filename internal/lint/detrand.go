package lint

import (
	"go/ast"
	"strings"
)

// DetRand enforces the platform's single-seed reproducibility contract
// (paper Alg. 1: spread estimates are Monte-Carlo means whose spread
// across repetitions is part of the reported numbers — they are only
// comparable across runs and machines if every random draw derives from
// the experiment seed).
//
// Two things break that contract: importing math/rand (its global
// generator is shared, lockable, and — since Go 1.20 — seeded randomly
// at startup), and deriving seeds from the wall clock. All randomness
// must flow through internal/rng per-worker Sources split from the
// campaign seed.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand and time.Now()-derived seeds in internal/ and cmd/; " +
		"all randomness must flow through internal/rng so one 64-bit seed reproduces a campaign",
	Run: runDetRand,
}

// detrandScoped reports whether the package is inside the enforcement
// perimeter: the platform's own code (internal/, cmd/) as opposed to
// examples, which may legitimately show nondeterministic usage.
func detrandScoped(modRel string) bool {
	return modRel == "internal" || modRel == "cmd" ||
		strings.HasPrefix(modRel, "internal/") || strings.HasPrefix(modRel, "cmd/")
}

func runDetRand(pass *Pass) {
	if !detrandScoped(pass.ModRel) {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: the global generator defeats seed reproducibility; use internal/rng (per-worker Source, Split for goroutines)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := timeNowDerived(pass, call); ok {
				pass.Reportf(call.Pos(),
					"time.Now().%s() derives a value from the wall clock; a seed built from it makes the run unreproducible — thread the campaign seed through internal/rng instead", name)
			}
			return true
		})
	}
}

// timeNowDerived matches time.Now().Unix()/UnixNano()/UnixMilli()/
// UnixMicro() — the classic wall-clock seed idiom.
func timeNowDerived(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Unix", "UnixNano", "UnixMilli", "UnixMicro":
	default:
		return "", false
	}
	inner, ok := sel.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if !pass.pkgFuncCall(inner, "time", "Now") {
		return "", false
	}
	return sel.Sel.Name, true
}
