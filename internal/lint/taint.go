package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism-taint engine
//
// A value is "tainted" when its content or ordering depends on
// something outside the campaign seed: the wall clock (time.Now /
// time.Since), map iteration order (a slice accumulated by appending
// inside a `for range m`), select arrival order (a value bound in a
// select with two or more communication cases), or work-stealing claim
// order (an index range handed out by a Deque's Claim/Steal — which
// range arrives next is scheduler-chosen). Taint propagates through
// assignments, expressions, and — via the Program summaries — function
// calls, and must never reach a determinism sink: the internal/rng
// seed surface, journal/CSV/HTTP emission, or a SetStore merge
// (Append/AppendStore/AppendRange), whose content must be
// byte-identical at any worker count.
//
// The per-function analysis is deliberately flow-insensitive over
// *local variables and parameters only*: assigning a tainted value to
// a struct field, slice element, or package variable drops the taint.
// That keeps the check precise where the platform's determinism bugs
// actually happen (a helper returning a wall-clock seed, a key slice
// emitted before sorting) without drowning the gate in heap-aliasing
// false positives — measured durations stored into result records are
// data being reported, not a determinism channel.
//
// Sorting is the endorsed cleanser for map-order taint: a slice that
// is passed to sort.* / slices.Sort* anywhere in the function never
// carries map-order taint (wall-clock and select taint survive
// sorting — sorting a timestamp does not make it reproducible).

// Taint bits: params occupy bits [0, maxTaintParams); the top bits
// carry the three intrinsic source kinds so diagnostics can say what
// the nondeterminism is.
const (
	maxTaintParams = 59

	taintTime   uint64 = 1 << 59 // wall clock: time.Now / time.Since
	taintMap    uint64 = 1 << 60 // map iteration order
	taintSelect uint64 = 1 << 61 // select arrival order
	taintSteal  uint64 = 1 << 62 // deque claim/steal arrival order

	taintSrcMask = taintTime | taintMap | taintSelect | taintSteal
)

// taintKinds renders the intrinsic-source bits of m for diagnostics.
func taintKinds(m uint64) string {
	var kinds []string
	if m&taintTime != 0 {
		kinds = append(kinds, "the wall clock (time.Now)")
	}
	if m&taintMap != 0 {
		kinds = append(kinds, "map iteration order")
	}
	if m&taintSelect != 0 {
		kinds = append(kinds, "select arrival order")
	}
	if m&taintSteal != 0 {
		kinds = append(kinds, "work-stealing claim order (Deque.Claim/Steal)")
	}
	return strings.Join(kinds, ", ")
}

// TaintSummary is the inter-procedural taint contract of one function.
type TaintSummary struct {
	// Results[r] is the taint mask of result r: intrinsic-source bits
	// the function introduces itself, plus one bit per parameter whose
	// taint transfers into that result.
	Results []uint64
	// SinkParams marks parameters that reach a determinism sink inside
	// the function (directly or through further calls).
	SinkParams uint64
	// SinkDesc describes the first such sink, for call-site messages.
	SinkDesc string
}

func (s *TaintSummary) equal(t *TaintSummary) bool {
	if s == nil || t == nil {
		return s == t
	}
	if s.SinkParams != t.SinkParams || s.SinkDesc != t.SinkDesc || len(s.Results) != len(t.Results) {
		return false
	}
	for i := range s.Results {
		if s.Results[i] != t.Results[i] {
			return false
		}
	}
	return true
}

// sinkHit is one call site where taint reaches a sink.
type sinkHit struct {
	pos  token.Pos
	mask uint64
	desc string
}

// taintScan is one per-function analysis run.
type taintScan struct {
	prog    *Program
	fi      *FuncInfo
	params  []types.Object
	bits    map[types.Object]uint64
	mask    map[types.Object]uint64
	sorted  map[types.Object]bool
	mapRngs [][2]token.Pos // body spans of map-range statements
	changed bool
}

// summarizeTaint recomputes fi's taint summary against the current
// callee summaries and reports whether it changed.
func summarizeTaint(p *Program, fi *FuncInfo) bool {
	s := newTaintScan(p, fi)
	s.propagate()
	sum := s.summary()
	if sum.equal(fi.Taint) {
		return false
	}
	fi.Taint = sum
	return true
}

// taintFindings runs the converged analysis once more and returns the
// sink hits whose taint mask carries an intrinsic source — the actual
// violations, reported by detflow.
func taintFindings(p *Program, fi *FuncInfo) []sinkHit {
	s := newTaintScan(p, fi)
	s.propagate()
	var out []sinkHit
	for _, h := range s.sinkHits() {
		if h.mask&taintSrcMask != 0 {
			out = append(out, h)
		}
	}
	return out
}

func newTaintScan(p *Program, fi *FuncInfo) *taintScan {
	s := &taintScan{
		prog:   p,
		fi:     fi,
		params: paramObjs(fi.Pkg, fi.Decl),
		bits:   make(map[types.Object]uint64),
		mask:   make(map[types.Object]uint64),
		sorted: make(map[types.Object]bool),
	}
	for i, obj := range s.params {
		if obj == nil || i >= maxTaintParams {
			continue
		}
		s.bits[obj] = 1 << uint(i)
		s.mask[obj] = 1 << uint(i)
	}
	s.prescan()
	return s
}

// prescan records which objects are sorted somewhere in the function
// (map-order cleansing) and the spans of map-range bodies (map-order
// source detection).
func (s *taintScan) prescan() {
	info := s.fi.Pkg.Info
	ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			pkg := calleePkgPath(info, nn)
			name := ""
			if obj := calleeObj(info, nn); obj != nil {
				name = obj.Name()
			}
			if pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort")) {
				for _, a := range nn.Args {
					if id, ok := ast.Unparen(a).(*ast.Ident); ok {
						if obj := s.objOf(id); obj != nil {
							s.sorted[obj] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(nn.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					s.mapRngs = append(s.mapRngs, [2]token.Pos{nn.Body.Pos(), nn.Body.End()})
				}
			}
		}
		return true
	})
}

func (s *taintScan) inMapRange(pos token.Pos) bool {
	for _, r := range s.mapRngs {
		if r[0] <= pos && pos <= r[1] {
			return true
		}
	}
	return false
}

func (s *taintScan) objOf(id *ast.Ident) types.Object {
	info := s.fi.Pkg.Info
	var obj types.Object
	if o := info.Defs[id]; o != nil {
		obj = o
	} else if o := info.Uses[id]; o != nil {
		obj = o
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

func (s *taintScan) add(obj types.Object, m uint64) {
	if obj == nil || m == 0 {
		return
	}
	if s.mask[obj]|m != s.mask[obj] {
		s.mask[obj] |= m
		s.changed = true
	}
}

// propagate iterates the flow-insensitive transfer to a (bounded)
// fixed point within the function.
func (s *taintScan) propagate() {
	for iter := 0; iter < 32; iter++ {
		s.changed = false
		ast.Inspect(s.fi.Decl.Body, s.visit)
		if !s.changed {
			return
		}
	}
}

func (s *taintScan) visit(n ast.Node) bool {
	switch nn := n.(type) {
	case *ast.AssignStmt:
		s.assign(nn.Lhs, nn.Rhs)
	case *ast.ValueSpec:
		lhs := make([]ast.Expr, len(nn.Names))
		for i, id := range nn.Names {
			lhs[i] = id
		}
		s.assign(lhs, nn.Values)
	case *ast.RangeStmt:
		s.rangeAssign(nn)
	case *ast.SelectStmt:
		s.selectAssign(nn)
	case *ast.CallExpr:
		// copy(dst, src) moves taint between objects like an assignment.
		if b, ok := calleeObj(s.fi.Pkg.Info, nn).(*types.Builtin); ok && b.Name() == "copy" && len(nn.Args) == 2 {
			if id, ok := ast.Unparen(nn.Args[0]).(*ast.Ident); ok {
				s.add(s.objOf(id), s.exprMask(nn.Args[1]))
			}
		}
	}
	return true
}

func (s *taintScan) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		masks := s.tupleMasks(rhs[0], len(lhs))
		for i, l := range lhs {
			s.taintLHS(l, masks[i], rhs[0])
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		s.taintLHS(l, s.exprMask(rhs[i]), rhs[i])
	}
}

// taintLHS applies one (possibly compound) assignment. Only identifier
// targets are tracked: writes through fields, indices, or dereferences
// drop taint by design (see the package comment on precision).
func (s *taintScan) taintLHS(l ast.Expr, m uint64, rhs ast.Expr) {
	// A slice accumulated by appending inside a map-range body captures
	// iteration order: that is the map-order source.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if b, isB := calleeObj(s.fi.Pkg.Info, call).(*types.Builtin); isB && b.Name() == "append" && s.inMapRange(call.Pos()) {
			m |= taintMap
		}
	}
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := s.objOf(id)
	if obj == nil {
		return
	}
	if m&taintMap != 0 && s.sorted[obj] {
		m &^= taintMap // sorted before use: order restored deterministically
	}
	s.add(obj, m)
}

// rangeAssign propagates taint from the ranged value into the
// iteration variables. Ranging a map does NOT taint the key/value
// variables themselves — each binding is a deterministic map entry;
// only captured *order* (append accumulation, handled in taintLHS) is
// nondeterministic. Direct emission inside a map range is maporder's
// jurisdiction.
func (s *taintScan) rangeAssign(rng *ast.RangeStmt) {
	info := s.fi.Pkg.Info
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		return
	}
	m := s.exprMask(rng.X)
	if m == 0 {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		if rng.Value != nil {
			s.taintLHS(rng.Value, m, rng.X)
		}
	case *types.Chan:
		if rng.Key != nil {
			s.taintLHS(rng.Key, m, rng.X)
		}
	}
}

// selectAssign marks values bound in a multi-way select: with two or
// more communication cases the winner is scheduler-chosen, so which
// channel produced the bound value is nondeterministic.
func (s *taintScan) selectAssign(sel *ast.SelectStmt) {
	comm := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm < 2 {
		return
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				s.taintLHS(l, taintSelect, nil)
			}
		}
	}
}

// exprMask computes the taint mask of an expression.
func (s *taintScan) exprMask(e ast.Expr) uint64 {
	switch ee := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := s.objOf(ee); obj != nil {
			return s.mask[obj]
		}
		return 0
	case *ast.CallExpr:
		var m uint64
		for _, r := range s.callMasks(ee) {
			m |= r
		}
		return m
	case *ast.ParenExpr:
		return s.exprMask(ee.X)
	case *ast.SelectorExpr:
		return s.exprMask(ee.X)
	case *ast.StarExpr:
		return s.exprMask(ee.X)
	case *ast.UnaryExpr:
		return s.exprMask(ee.X)
	case *ast.BinaryExpr:
		return s.exprMask(ee.X) | s.exprMask(ee.Y)
	case *ast.IndexExpr:
		return s.exprMask(ee.X) | s.exprMask(ee.Index)
	case *ast.SliceExpr:
		return s.exprMask(ee.X)
	case *ast.TypeAssertExpr:
		return s.exprMask(ee.X)
	case *ast.KeyValueExpr:
		return s.exprMask(ee.Value)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range ee.Elts {
			m |= s.exprMask(el)
		}
		return m
	}
	return 0
}

// callMasks computes per-result taint masks for a call expression.
func (s *taintScan) callMasks(call *ast.CallExpr) []uint64 {
	info := s.fi.Pkg.Info
	n := 1
	if t := info.TypeOf(call); t != nil {
		if tup, ok := t.(*types.Tuple); ok {
			n = tup.Len()
		}
	}
	if n < 1 {
		n = 1
	}
	res := make([]uint64, n)

	unionArgs := func() uint64 {
		var m uint64
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			m |= s.exprMask(sel.X) // method/bound receiver, or field chain
		}
		for _, a := range call.Args {
			m |= s.exprMask(a)
		}
		return m
	}
	fill := func(m uint64) []uint64 {
		for i := range res {
			res[i] = m
		}
		return res
	}

	switch obj := calleeObj(info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "len", "cap", "make", "new", "close", "delete", "clear", "recover", "print", "println", "panic":
			return res // structurally deterministic (or no result)
		default: // append, min, max, complex, real, imag, abs, copy...
			return fill(unionArgs())
		}
	case *types.TypeName:
		// Conversion T(x): taint passes through.
		return fill(unionArgs())
	}

	// Intrinsic wall-clock sources.
	if s.pkgCall(call, "time", "Now", "Since") {
		return fill(taintTime)
	}
	// Intrinsic steal-order source: which index range a work-stealing
	// Deque hands out next depends on scheduler arrival order. Results
	// computed FROM those indexes are fine (the executor's index-purity
	// contract) — writing them through results[i] drops the taint, by the
	// same field/element rule as everywhere else. What must never happen
	// is the claim *sequence* itself reaching an emission or merge sink,
	// and unlike map order, sorting does not cleanse it: the endorsed fix
	// is keying by global index, not reordering the claim log.
	if isDequeRangeCall(info, call) {
		return fill(taintSteal)
	}
	switch calleePkgPath(info, call) {
	case "sort":
		return res // sort.* results (e.g. sort.SearchInts) are order-deterministic
	case "slices":
		if obj := calleeObj(info, call); obj != nil && strings.HasPrefix(obj.Name(), "Sort") {
			return res
		}
		return fill(unionArgs())
	case "maps":
		if obj := calleeObj(info, call); obj != nil && (obj.Name() == "Keys" || obj.Name() == "Values") {
			return fill(taintMap | unionArgs())
		}
		return fill(unionArgs())
	}

	if fi := s.prog.callee(info, call); fi != nil && fi.Taint != nil {
		for r := range res {
			if r >= len(fi.Taint.Results) {
				break
			}
			sum := fi.Taint.Results[r]
			res[r] |= sum & taintSrcMask
			for j := 0; j < maxTaintParams; j++ {
				if sum&(1<<uint(j)) != 0 {
					res[r] |= s.argMask(fi, call, j)
				}
			}
		}
		return res
	}

	// Unknown callee: conservatively propagate argument taint to every
	// result; unknown code is never a source or a sink by itself.
	return fill(unionArgs())
}

// argMask returns the caller-side taint mask of the argument bound to
// callee parameter index j (in paramObjs index space: receiver first).
func (s *taintScan) argMask(fi *FuncInfo, call *ast.CallExpr, j int) uint64 {
	if hasRecv(fi.Decl) {
		if j == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return s.exprMask(sel.X)
			}
			return 0
		}
		j--
	}
	nParams := len(paramObjs(fi.Pkg, fi.Decl))
	if hasRecv(fi.Decl) {
		nParams--
	}
	if isVariadic(fi.Decl) && j >= nParams-1 {
		var m uint64
		for i := nParams - 1; i < len(call.Args); i++ {
			m |= s.exprMask(call.Args[i])
		}
		return m
	}
	if j < len(call.Args) {
		return s.exprMask(call.Args[j])
	}
	return 0
}

// tupleMasks computes per-binding masks for a 1-to-n assignment.
func (s *taintScan) tupleMasks(rhs ast.Expr, n int) []uint64 {
	masks := make([]uint64, n)
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		cm := s.callMasks(e)
		for i := range masks {
			if i < len(cm) {
				masks[i] = cm[i]
			}
		}
	case *ast.TypeAssertExpr, *ast.IndexExpr, *ast.UnaryExpr:
		m := s.exprMask(rhs)
		if n > 0 {
			masks[0] = m // the ok/bool binding stays clean
		}
	}
	return masks
}

// isDequeRangeCall reports whether call claims or steals an index range
// from a work-stealing deque. Recognition is by type name, like the
// SetStore rules: any method named Claim or Steal on a named type called
// "Deque" participates, so fixture corpora can declare a miniature
// stand-in without importing internal/sched.
func isDequeRangeCall(info *types.Info, call *ast.CallExpr) bool {
	name := methodCallName(call)
	if name != "Claim" && name != "Steal" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || info == nil {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Deque"
}

// pkgCall reports whether call invokes pkgPath.<one of names>, using
// type information with a syntactic fallback (mirrors Pass.pkgFuncCall
// for use outside a Pass).
func (s *taintScan) pkgCall(call *ast.CallExpr, pkgPath string, names ...string) bool {
	return pkgFuncCallInfo(s.fi.Pkg.Info, call, pkgPath, names...)
}

// ---- sinks ----

// emitSinkNames are method selectors that count as output emission for
// the taint analysis; the set mirrors maporder's emission vocabulary.
var emitSinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRecord": true, "WriteAll": true, "Encode": true, "AddRow": true,
}

// sinkHits scans the (converged) function for determinism sinks and
// returns one hit per call whose sink-relevant arguments carry taint.
func (s *taintScan) sinkHits() []sinkHit {
	info := s.fi.Pkg.Info
	var hits []sinkHit
	ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if h, ok := s.sinkOf(info, call); ok {
			hits = append(hits, h)
		}
		return true
	})
	return hits
}

// sinkOf classifies one call as a determinism sink and computes the
// taint mask of the values it would leak.
func (s *taintScan) sinkOf(info *types.Info, call *ast.CallExpr) (sinkHit, bool) {
	union := func(args []ast.Expr) uint64 {
		var m uint64
		for _, a := range args {
			m |= s.exprMask(a)
		}
		return m
	}

	// 1. RNG seed surface: any call into internal/rng. Seeding or
	// re-seeding from a nondeterministic value silently forks the
	// campaign's random universe.
	if pkg := calleePkgPath(info, call); strings.HasSuffix(pkg, "/internal/rng") {
		if m := union(call.Args); m != 0 {
			return sinkHit{pos: call.Pos(), mask: m, desc: "the internal/rng seed surface"}, true
		}
		return sinkHit{}, false
	}

	// 2. Emission: fmt.Fprint* to anything but the console streams
	// (journals, CSVs, HTTP bodies, archives), http.Error, and
	// writer/encoder-style methods.
	if s.pkgCall(call, "fmt", "Fprint", "Fprintf", "Fprintln") && len(call.Args) > 0 && !isStdStream(call.Args[0]) {
		if m := union(call.Args[1:]); m != 0 {
			return sinkHit{pos: call.Pos(), mask: m, desc: "output emission (" + types.ExprString(call.Fun) + ")"}, true
		}
		return sinkHit{}, false
	}
	if s.pkgCall(call, "net/http", "Error") && len(call.Args) > 1 {
		if m := s.exprMask(call.Args[1]); m != 0 {
			return sinkHit{pos: call.Pos(), mask: m, desc: "HTTP error emission"}, true
		}
		return sinkHit{}, false
	}
	name := methodCallName(call)
	if isSetStoreCall(info, call) && (name == "Append" || name == "AppendStore" || name == "AppendRange") {
		if m := union(call.Args); m != 0 {
			return sinkHit{pos: call.Pos(), mask: m, desc: "a SetStore merge (byte-identical-at-any-worker-count contract)"}, true
		}
		return sinkHit{}, false
	}
	if emitSinkNames[name] {
		if m := union(call.Args); m != 0 {
			return sinkHit{pos: call.Pos(), mask: m, desc: "output emission (" + types.ExprString(call.Fun) + ")"}, true
		}
		return sinkHit{}, false
	}

	// 3. Chained sink: the callee's summary says some parameter reaches
	// a sink inside it.
	if fi := s.prog.callee(info, call); fi != nil && fi.Taint != nil && fi.Taint.SinkParams != 0 {
		var m uint64
		for j := 0; j < maxTaintParams; j++ {
			if fi.Taint.SinkParams&(1<<uint(j)) != 0 {
				m |= s.argMask(fi, call, j)
			}
		}
		if m != 0 {
			return sinkHit{pos: call.Pos(), mask: m, desc: "via call to " + fi.name() + ", which reaches " + fi.Taint.SinkDesc}, true
		}
	}
	return sinkHit{}, false
}

// isStdStream reports whether e is os.Stdout or os.Stderr: console
// output is diagnostic, not a determinism artifact.
func isStdStream(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// summary assembles the function's TaintSummary from the converged
// masks: result taint from return statements, sink-reaching params
// from the sink scan.
func (s *taintScan) summary() *TaintSummary {
	sum := &TaintSummary{Results: make([]uint64, numResults(s.fi.Decl))}

	// Named results participate like locals; bare returns use them.
	var namedResults []types.Object
	if res := s.fi.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, n := range f.Names {
				namedResults = append(namedResults, s.fi.Pkg.Info.Defs[n])
			}
		}
	}

	ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch {
		case len(ret.Results) == 0:
			for i, obj := range namedResults {
				if i < len(sum.Results) && obj != nil {
					sum.Results[i] |= s.mask[obj]
				}
			}
		case len(ret.Results) == 1 && len(sum.Results) > 1:
			for i, m := range s.tupleMasks(ret.Results[0], len(sum.Results)) {
				sum.Results[i] |= m
			}
		default:
			for i, e := range ret.Results {
				if i < len(sum.Results) {
					sum.Results[i] |= s.exprMask(e)
				}
			}
		}
		return false
	})

	paramBits := uint64(0)
	for i := range s.params {
		if i < maxTaintParams {
			paramBits |= 1 << uint(i)
		}
	}
	for _, h := range s.sinkHits() {
		if pb := h.mask & paramBits; pb != 0 {
			sum.SinkParams |= pb
			if sum.SinkDesc == "" {
				sum.SinkDesc = h.desc
			}
		}
	}
	return sum
}

// DetFlow is the inter-procedural determinism-taint analyzer.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "nondeterministic values (wall clock, map iteration order, select arrival order, work-stealing " +
		"claim order) must not reach RNG seeds, journal/CSV/HTTP emission, or SetStore merges — even " +
		"through call chains",
	NeedsProgram: true,
	Run:          runDetFlow,
}

func runDetFlow(pass *Pass) {
	if pass.Prog == nil || !detrandScoped(pass.ModRel) {
		return
	}
	for _, fi := range pass.Prog.funcsIn(pass.PkgPath) {
		for _, h := range taintFindings(pass.Prog, fi) {
			pass.Reportf(h.pos, "value derived from %s reaches %s; a run is only reproducible if everything emitted or seeded derives from the campaign seed — sort map-collected keys, key stolen work by global index rather than claim order, and thread seeds through internal/rng",
				taintKinds(h.mask), h.desc)
		}
	}
}
