package lint

import (
	"go/ast"
	"go/types"
)

// Inter-procedural substrate
//
// The original five analyzers are intra-procedural: each looks at one
// function body and stays silent the moment a value crosses a call
// boundary. That was enough while the invariants were about *syntax*
// (a `go` statement, a map range). The determinism invariants of the
// parallel substrate (PR 4's SampleBatch, PR 5's WorldEvaluator) are
// about *values*: a wall-clock-derived number is just as poisonous to
// reproducibility after it has passed through two helpers, and an
// arena sub-slice is just as dangling when the Append happened inside
// a callee. This file adds the module-wide view those checks need:
//
//   - Program: an index of every function declared in the analyzed
//     packages, resolvable from call sites via go/types.
//   - FuncInfo: one function plus its computed summaries — taint
//     transfer (which params/results carry nondeterminism), arena
//     aliasing (which results view a SetStore arena, which params get
//     mutated), and effects (file I/O, channel ops, HTTP work).
//   - solve: a chaotic-iteration fixed point. Summaries start empty
//     and only grow (bitmask unions and boolean ORs), so iteration is
//     monotone and terminates; each round re-summarizes every function
//     against the current summaries of its callees, which is exactly
//     what lets a fact propagate through call chains of any depth.
//
// Summaries exist only for functions in the packages handed to Check
// in one run: `imlint ./...` sees the whole module, while a run scoped
// to one directory degrades to conservative intra-procedural behavior
// for out-of-set callees (unknown callees propagate taint from
// arguments to results but are never sources, sinks, mutators, or
// effectful). The framework stays stdlib-only.

// Program is the module-wide view shared by the summary-driven
// analyzers. It is built once per Check run and is read-only afterwards.
type Program struct {
	funcs map[*types.Func]*FuncInfo
	// ordered lists functions in load order (package order, then file,
	// then declaration), so fixed-point iteration and any diagnostics
	// derived from it are deterministic.
	ordered []*FuncInfo
}

// FuncInfo is one declared function with a body, plus its summaries.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Taint   *TaintSummary
	Arena   *ArenaSummary
	Effects EffectSummary
}

// name returns the diagnostic-friendly name of the function.
func (fi *FuncInfo) name() string { return fi.Obj.Name() }

// BuildProgram indexes every function declaration in pkgs and solves
// the summary fixed point.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{funcs: make(map[*types.Func]*FuncInfo)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue // type-check hole: degrade to intra-procedural
				}
				fi := &FuncInfo{Obj: obj, Decl: fn, Pkg: pkg}
				p.funcs[obj] = fi
				p.ordered = append(p.ordered, fi)
			}
		}
	}
	p.solve()
	return p
}

// callee resolves the statically-known target of call within the
// analyzed set, or nil (unknown callee, interface method, func value,
// builtin, out-of-set package).
func (p *Program) callee(info *types.Info, call *ast.CallExpr) *FuncInfo {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return p.funcs[fn]
}

// calleeObj returns the object the call's function expression resolves
// to: a *types.Func for direct calls, *types.Builtin for builtins,
// *types.Var for func-value calls, nil when unresolvable.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleePkgPath returns the import path of the package declaring the
// call target ("" when unknown or universe-scoped).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// paramObjs returns the function's parameter objects in signature
// order, with the method receiver (when present) first. This is the
// index space every per-param summary bitmask uses; nil entries mark
// unnamed (and therefore unobservable) parameters.
func paramObjs(pkg *Package, fn *ast.FuncDecl) []types.Object {
	var objs []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				objs = append(objs, nil)
				continue
			}
			for _, n := range f.Names {
				objs = append(objs, pkg.Info.Defs[n])
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return objs
}

// hasRecv reports whether the function is a method (bit 0 of its param
// index space is the receiver).
func hasRecv(fn *ast.FuncDecl) bool { return fn.Recv != nil }

// isVariadic reports whether the function's last parameter is variadic.
func isVariadic(fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	_, ok := params.List[len(params.List)-1].Type.(*ast.Ellipsis)
	return ok
}

// numResults returns the declared result count of fn (counting each
// name in a grouped result once).
func numResults(fn *ast.FuncDecl) int {
	res := fn.Type.Results
	if res == nil {
		return 0
	}
	n := 0
	for _, f := range res.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// solve runs chaotic iteration to a fixed point. All three summary
// domains are monotone (masks and flags only ever gain bits), so the
// loop terminates; the iteration cap is a belt-and-suspenders bound
// against a future non-monotone summarizer bug, not a tuning knob.
func (p *Program) solve() {
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fi := range p.ordered {
			if summarizeTaint(p, fi) {
				changed = true
			}
			if summarizeArena(p, fi) {
				changed = true
			}
			if summarizeEffects(p, fi) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// funcsIn yields the indexed functions declared in the package with
// the given import path, in declaration order.
func (p *Program) funcsIn(pkgPath string) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range p.ordered {
		if fi.Pkg.Path == pkgPath {
			out = append(out, fi)
		}
	}
	return out
}
