package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Lock-discipline analysis
//
// imserve's latency contract (PR 3/PR 6: bounded admission, per-request
// deadlines, degraded-mode serving) dies quietly the day a mutex is
// held across a blocking operation: one slow disk write or full channel
// inside a critical section serializes every request behind it. The
// endorsed pattern throughout internal/serve is snapshot-under-lock,
// unlock, then do the slow work — lockhold enforces it, including when
// the blocking operation hides behind a call chain.
//
// Effects are summarized per function (file I/O, channel operations,
// HTTP work) and propagated through the call graph by the fixed-point
// engine; the analyzer then replays each in-scope function in source
// order, tracking which sync.Mutex/RWMutex receivers are held, and
// reports any effectful statement or call inside a critical section.
//
// Deliberate soundness trade-offs, chosen to match the repo's idiom:
//
//   - `defer mu.Unlock()` does not release at its textual position —
//     the lock is held to function end, so everything after is checked.
//     An explicit mid-function Unlock releases from that point on.
//   - Function literals and `go` statements are skipped when
//     summarizing effects and when replaying: their bodies do not run
//     at their textual position (a goroutine blocks itself, not the
//     lock holder).
//   - A `select` with a default case is non-blocking and exempt; so is
//     a send/receive in one (the default bounds the wait).

// Effect bits.
const (
	effIO   uint64 = 1 << iota // file I/O: os files, io.Copy, bufio flush
	effChan                    // blocking channel send/receive/select
	effHTTP                    // net/http work (handlers, response writes)
)

// EffectSummary records which blocking-effect classes a function can
// reach, with one description per class for call-site diagnostics.
type EffectSummary struct {
	Mask uint64
	// IODesc/ChanDesc/HTTPDesc describe the first detected cause of the
	// corresponding bit ("os.WriteFile", "channel send", ...).
	IODesc, ChanDesc, HTTPDesc string
}

func (s EffectSummary) equal(t EffectSummary) bool { return s == t }

// desc returns the description for one effect bit.
func (s EffectSummary) desc(bit uint64) string {
	switch bit {
	case effIO:
		return s.IODesc
	case effChan:
		return s.ChanDesc
	case effHTTP:
		return s.HTTPDesc
	}
	return ""
}

func (s *EffectSummary) add(bit uint64, desc string) {
	s.Mask |= bit
	switch bit {
	case effIO:
		if s.IODesc == "" {
			s.IODesc = desc
		}
	case effChan:
		if s.ChanDesc == "" {
			s.ChanDesc = desc
		}
	case effHTTP:
		if s.HTTPDesc == "" {
			s.HTTPDesc = desc
		}
	}
}

// effectLabel names an effect class for diagnostics.
func effectLabel(bit uint64) string {
	switch bit {
	case effIO:
		return "file I/O"
	case effChan:
		return "blocking channel operation"
	case effHTTP:
		return "HTTP work"
	}
	return "blocking operation"
}

// osIONames are package-level os functions that hit the filesystem.
var osIONames = map[string]bool{
	"Open": true, "Create": true, "OpenFile": true, "ReadFile": true,
	"WriteFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "CreateTemp": true,
	"Stat": true, "Lstat": true, "ReadDir": true, "Truncate": true,
	"Chmod": true, "Link": true, "Symlink": true,
}

// fileMethodNames are blocking methods on *os.File / buffered writers.
var fileMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "Read": true,
	"ReadAt": true, "Sync": true, "Close": true, "Flush": true,
	"Truncate": true, "Seek": true,
}

// summarizeEffects recomputes fi's effect summary against current
// callee summaries and reports whether it changed.
func summarizeEffects(p *Program, fi *FuncInfo) bool {
	sum := scanEffects(p, fi, fi.Decl.Body)
	if sum.equal(fi.Effects) {
		return false
	}
	fi.Effects = sum
	return true
}

// scanEffects collects the effect summary of one body, skipping nested
// function literals and go statements (their bodies do not run here).
func scanEffects(p *Program, fi *FuncInfo, body *ast.BlockStmt) EffectSummary {
	var sum EffectSummary
	info := fi.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return nn.Body == body
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			sum.add(effChan, "channel send")
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				sum.add(effChan, "channel receive")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(nn.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					sum.add(effChan, "range over channel")
				}
			}
		case *ast.SelectStmt:
			if selectBlocks(nn) {
				sum.add(effChan, "select without default")
			}
			// Comm clauses of a non-blocking select are exempt: skip the
			// send/receive expressions themselves but still scan bodies.
			if !selectBlocks(nn) {
				for _, c := range nn.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							ast.Inspect(st, func(m ast.Node) bool { return scanEffectNode(p, fi, m, &sum) })
						}
					}
				}
				return false
			}
		case *ast.CallExpr:
			classifyCallEffects(p, fi, nn, &sum)
		}
		return true
	})
	return sum
}

// scanEffectNode is the single-node version of the scanEffects visit,
// used when re-entering exempted subtrees.
func scanEffectNode(p *Program, fi *FuncInfo, n ast.Node, sum *EffectSummary) bool {
	switch nn := n.(type) {
	case *ast.FuncLit, *ast.GoStmt:
		return false
	case *ast.SendStmt:
		sum.add(effChan, "channel send")
	case *ast.UnaryExpr:
		if nn.Op == token.ARROW {
			sum.add(effChan, "channel receive")
		}
	case *ast.CallExpr:
		classifyCallEffects(p, fi, nn, sum)
	}
	return true
}

// classifyCallEffects folds the effects of one call into sum: intrinsic
// I/O and HTTP calls, plus the summarized effects of known callees.
func classifyCallEffects(p *Program, fi *FuncInfo, call *ast.CallExpr, sum *EffectSummary) {
	info := fi.Pkg.Info
	pkg := calleePkgPath(info, call)
	name := ""
	if obj := calleeObj(info, call); obj != nil {
		name = obj.Name()
	}

	switch pkg {
	case "os":
		if osIONames[name] {
			sum.add(effIO, "os."+name)
			return
		}
	case "io":
		if name == "Copy" || name == "CopyN" || name == "ReadAll" || name == "WriteString" {
			sum.add(effIO, "io."+name)
			return
		}
	case "net/http":
		sum.add(effHTTP, "net/http."+name)
		return
	}

	// fmt.Fprint* to a non-console destination writes to a real sink.
	if pkgFuncCallInfo(info, call, "fmt", "Fprint", "Fprintf", "Fprintln") &&
		len(call.Args) > 0 && !isStdStream(call.Args[0]) {
		sum.add(effIO, "fmt."+name)
		return
	}

	// Blocking methods on files / buffered writers, and ResponseWriter
	// interface methods (HTTP body writes).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil {
			tn := typeNameOf(t)
			switch {
			case (tn.pkg == "os" || tn.pkg == "bufio") && fileMethodNames[sel.Sel.Name]:
				sum.add(effIO, "(*"+tn.pkg+"."+tn.name+")."+sel.Sel.Name)
				return
			case tn.pkg == "net/http":
				sum.add(effHTTP, tn.name+"."+sel.Sel.Name)
				return
			}
		}
	}

	// Transitive: a summarized callee's effects happen here.
	if callee := p.callee(info, call); callee != nil && callee.Effects.Mask != 0 {
		for _, bit := range []uint64{effIO, effChan, effHTTP} {
			if callee.Effects.Mask&bit != 0 {
				sum.add(bit, "call to "+callee.name()+" ("+callee.Effects.desc(bit)+")")
			}
		}
	}
}

// typeNameOf resolves the named type (behind pointers) of t.
func typeNameOf(t types.Type) (tn struct{ pkg, name string }) {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return tn
	}
	tn.name = named.Obj().Name()
	if named.Obj().Pkg() != nil {
		tn.pkg = named.Obj().Pkg().Path()
	}
	return tn
}

// selectBlocks reports whether sel can block (no default case).
func selectBlocks(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// ---- the analyzer ----

// LockHold is the inter-procedural critical-section discipline analyzer.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "no file I/O, blocking channel operation, or HTTP work while holding a sync.Mutex/RWMutex " +
		"in internal/serve and internal/persist — snapshot under the lock, unlock, then do the slow work",
	NeedsProgram: true,
	Run:          runLockHold,
}

// lockholdScoped limits enforcement to the serving and persistence
// layers (where a held lock serializes live traffic) and the fixture
// corpus.
func lockholdScoped(modRel string) bool {
	return modRel == "internal/serve" || modRel == "internal/persist" ||
		strings.HasPrefix(modRel, "internal/serve/") ||
		strings.HasPrefix(modRel, "internal/persist/") ||
		path.Base(modRel) == "lockhold"
}

func runLockHold(pass *Pass) {
	if pass.Prog == nil || !lockholdScoped(pass.ModRel) {
		return
	}
	for _, fi := range pass.Prog.funcsIn(pass.PkgPath) {
		replayLocks(pass, fi)
	}
}

// lockEvent is one position-ordered lock transition or effect.
type lockEvent struct {
	pos      token.Pos
	kind     int    // levLock, levUnlock, levEffect
	key      string // mutex receiver expression
	deferred bool
	bit      uint64
	desc     string
}

const (
	levLock = iota
	levUnlock
	levEffect
)

// replayLocks replays fi's body in source order and reports effects
// that occur while any sync mutex is held.
func replayLocks(pass *Pass, fi *FuncInfo) {
	info := fi.Pkg.Info
	var events []lockEvent

	var scan func(n ast.Node, inDefer bool) bool
	scan = func(n ast.Node, inDefer bool) bool {
		switch nn := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			// Does not run at this position; effects there don't execute
			// under this frame's lock. (A FuncLit that locks is replayed
			// when it is itself the declared function of a method value —
			// out of scope by design.)
			return false
		case *ast.DeferStmt:
			// Record deferred Lock/Unlock specially; skip everything else
			// inside (deferred work runs at exit, interleaved LIFO).
			if call := nn.Call; call != nil {
				if key, name, ok := syncMutexCall(info, call); ok {
					events = append(events, lockEvent{
						pos: nn.Pos(), kind: lockKind(name), key: key, deferred: true,
					})
				}
			}
			return false
		case *ast.SendStmt:
			events = append(events, lockEvent{pos: nn.Pos(), kind: levEffect, bit: effChan, desc: "channel send"})
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				events = append(events, lockEvent{pos: nn.Pos(), kind: levEffect, bit: effChan, desc: "channel receive"})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(nn.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					events = append(events, lockEvent{pos: nn.Pos(), kind: levEffect, bit: effChan, desc: "range over channel"})
				}
			}
		case *ast.SelectStmt:
			if selectBlocks(nn) {
				events = append(events, lockEvent{pos: nn.Pos(), kind: levEffect, bit: effChan, desc: "select without default"})
			}
			// Clause bodies still replay; the comm expressions of a
			// non-blocking select are exempt either way (bounded wait).
			for _, c := range nn.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, func(m ast.Node) bool { return scan(m, inDefer) })
					}
				}
			}
			return false
		case *ast.CallExpr:
			if key, name, ok := syncMutexCall(info, nn); ok {
				events = append(events, lockEvent{pos: nn.Pos(), kind: lockKind(name), key: key})
				return true
			}
			var sum EffectSummary
			classifyCallEffects(pass.Prog, fi, nn, &sum)
			for _, bit := range []uint64{effIO, effChan, effHTTP} {
				if sum.Mask&bit != 0 {
					events = append(events, lockEvent{pos: nn.Pos(), kind: levEffect, bit: bit, desc: sum.desc(bit)})
				}
			}
		}
		return true
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool { return scan(n, false) })

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// held maps mutex key -> lock position; deferred-unlock keys stay
	// held to function end.
	held := make(map[string]token.Pos)
	reported := make(map[token.Pos]bool)
	for _, ev := range events {
		switch ev.kind {
		case levLock:
			if !ev.deferred { // `defer mu.Lock()` is nonsense; ignore
				held[ev.key] = ev.pos
			}
		case levUnlock:
			if !ev.deferred {
				delete(held, ev.key)
			}
			// deferred unlock: lock intentionally held to function end
		case levEffect:
			if len(held) == 0 || reported[ev.pos] {
				continue
			}
			// Name one held mutex deterministically (lexically smallest).
			keys := make([]string, 0, len(held))
			for k := range held {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			reported[ev.pos] = true
			pass.Reportf(ev.pos,
				"%s (%s) while holding %s (locked at line %d); snapshot under the lock, unlock, then do the slow work",
				effectLabel(ev.bit), ev.desc, keys[0], pass.Fset.Position(held[keys[0]]).Line)
		}
	}
}

// lockKind maps a sync method name to a lock event kind.
func lockKind(name string) int {
	if name == "Lock" || name == "RLock" {
		return levLock
	}
	return levUnlock
}

// syncMutexCall matches mu.Lock/RLock/Unlock/RUnlock where the method
// is declared in package sync, returning the receiver key.
func syncMutexCall(info *types.Info, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return storeKey(sel.X), sel.Sel.Name, true
}
