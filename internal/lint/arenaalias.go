package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Arena-aliasing analysis
//
// graphalgo.SetStore hands out zero-copy views of its flat arena:
// Set(i) returns a sub-slice of the backing array, Raw() returns the
// arena itself. Append, AppendStore, AppendRange, and Grow may realloc that
// array, and Reset retires it logically; a view captured before any of
// those calls silently points at stale (or recycled) memory afterwards
// — no panic, no race-detector report, just wrong coverage counts.
// This is the sharpest foot-gun of the PR 4 substrate, and it is
// invisible to intra-procedural review the moment the mutation happens
// inside a helper.
//
// arenaalias tracks, per function and in source-position order, which
// locals are live views of which store, which calls (directly or
// through summarized callees) mutate that store, and reports any use
// of a view after its store was mutated. Two summary facts flow
// through the call graph:
//
//   - Mutates: the set of parameters whose store the function mutates.
//   - ResultViews[r]: the set of parameters whose arena result r
//     aliases (a function returning st.Set(i) is itself a view
//     constructor).
//
// Recognition is by type *name*: any named type called "SetStore"
// participates, so fixture corpora can declare a miniature stand-in
// without importing graphalgo.

// Mutating and view-returning SetStore methods.
var (
	setStoreMutators = map[string]bool{"Append": true, "AppendStore": true, "AppendRange": true, "Grow": true, "Reset": true}
	setStoreViewers  = map[string]bool{"Set": true, "Raw": true}
)

// rotatingSinks names call targets whose func(*SetStore) argument is a
// rotating-arena sink (the streaming sampler's protocol): the batch store is
// borrowed for exactly one invocation and is reset by the caller the moment
// the sink returns, so a view that escapes the sink's scope is stale by
// construction. Recognition is by call name, matching the type-name-based
// recognition above.
var rotatingSinks = map[string]bool{"SampleStream": true}

// ArenaSummary is the inter-procedural aliasing contract of a function.
type ArenaSummary struct {
	// ResultViews[r] marks the parameters whose arena result r views.
	ResultViews []uint64
	// Mutates marks the parameters whose store the function mutates.
	Mutates uint64
}

func (s *ArenaSummary) equal(t *ArenaSummary) bool {
	if s == nil || t == nil {
		return s == t
	}
	if s.Mutates != t.Mutates || len(s.ResultViews) != len(t.ResultViews) {
		return false
	}
	for i := range s.ResultViews {
		if s.ResultViews[i] != t.ResultViews[i] {
			return false
		}
	}
	return true
}

// isSetStoreType reports whether t (possibly behind pointers) is a
// named type called SetStore.
func isSetStoreType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "SetStore"
}

// isSetStoreCall reports whether call is a method call on a SetStore
// receiver.
func isSetStoreCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || info == nil {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && isSetStoreType(t)
}

// storeKey names a store for intra-function identity: the printed
// receiver expression ("st", "s.store"). Address-of and dereference
// wrappers are stripped so &st and st alias the same arena.
func storeKey(e ast.Expr) string {
	for {
		switch ee := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if ee.Op == token.AND {
				e = ee.X
				continue
			}
		case *ast.StarExpr:
			e = ee.X
			continue
		}
		break
	}
	return types.ExprString(ast.Unparen(e))
}

// arenaEvent is one position-ordered occurrence inside a function.
type arenaEvent struct {
	pos  token.Pos
	kind int // evView, evMutate, evUse, evReturn
	// evView: obj becomes a view of store key (paramBit <0 if the store
	// is not a parameter). evMutate: store key mutated (desc names the
	// mutator). evUse: obj read. evReturn: result index in bit, expr in
	// obj-less fields.
	obj      types.Object
	key      string
	paramBit int
	desc     string
	retIndex int
	retExpr  ast.Expr
}

const (
	evView = iota
	evMutate
	evUse
	evReturn
)

// arenaScan analyzes one function body (or function literal body).
type arenaScan struct {
	prog   *Program
	fi     *FuncInfo
	params []types.Object
	events []arenaEvent
}

// summarizeArena recomputes fi's arena summary and reports change.
func summarizeArena(p *Program, fi *FuncInfo) bool {
	s := &arenaScan{prog: p, fi: fi, params: paramObjs(fi.Pkg, fi.Decl)}
	s.collect(fi.Decl.Body)
	sum := s.replay(nil)
	if sum.equal(fi.Arena) {
		return false
	}
	fi.Arena = sum
	return true
}

// arenaFinding is one use-after-mutation occurrence.
type arenaFinding struct {
	pos     token.Pos
	what    string // what was used
	mutDesc string // what invalidated it
	mutPos  token.Pos
}

// arenaFindings re-runs the converged scan collecting violations, for
// the top-level body and each function literal as separate scopes.
func arenaFindings(p *Program, fi *FuncInfo) []arenaFinding {
	var out []arenaFinding
	for _, body := range arenaScopes(fi.Decl.Body) {
		s := &arenaScan{prog: p, fi: fi, params: paramObjs(fi.Pkg, fi.Decl)}
		s.collect(body)
		s.replay(&out)
	}
	return out
}

// arenaScopes returns body plus every function-literal body inside it;
// each is replayed independently because a literal's statements do not
// execute at their textual position.
func arenaScopes(body *ast.BlockStmt) []*ast.BlockStmt {
	scopes := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	return scopes
}

// paramBitFor maps a store-receiver expression to its parameter bit,
// or -1 when the store is not (an identifier naming) a parameter.
func (s *arenaScan) paramBitFor(e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	info := s.fi.Pkg.Info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	for i, p := range s.params {
		if p != nil && p == obj {
			return i
		}
	}
	return -1
}

// collect walks body (skipping nested function literals, which are
// separate scopes) and records view creations, store mutations, view
// uses, and returns.
func (s *arenaScan) collect(body *ast.BlockStmt) {
	info := s.fi.Pkg.Info
	viewObjs := make(map[types.Object]bool)

	// Pass 1: find every object that is ever assigned a view, so pass 2
	// knows which ident uses to record.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if !s.isViewExpr(rhs) {
				continue
			}
			// One RHS can bind multiple LHS (d, o := st.Raw()): every
			// binding aliases the arena.
			lo, hi := i, i+1
			if len(as.Rhs) == 1 {
				lo, hi = 0, len(as.Lhs)
			}
			for _, l := range as.Lhs[lo:hi] {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						viewObjs[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						viewObjs[obj] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: record events.
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			if nn.Body != body {
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				key, bit, ok := s.viewSource(rhs)
				if !ok {
					continue
				}
				lo, hi := i, i+1
				if len(nn.Rhs) == 1 {
					lo, hi = 0, len(nn.Lhs)
				}
				for _, l := range nn.Lhs[lo:hi] {
					id, isID := ast.Unparen(l).(*ast.Ident)
					if !isID || id.Name == "_" {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						s.events = append(s.events, arenaEvent{
							pos: l.Pos(), kind: evView, obj: obj, key: key, paramBit: bit,
						})
					}
				}
			}
		case *ast.CallExpr:
			if mut, key, bit, desc := s.mutationOf(nn); mut {
				s.events = append(s.events, arenaEvent{
					pos: nn.Pos(), kind: evMutate, key: key, paramBit: bit, desc: desc,
				})
			}
		case *ast.Ident:
			if obj := info.Uses[nn]; obj != nil && viewObjs[obj] {
				s.events = append(s.events, arenaEvent{pos: nn.Pos(), kind: evUse, obj: obj})
			}
		case *ast.ReturnStmt:
			for i, e := range nn.Results {
				s.events = append(s.events, arenaEvent{
					pos: nn.Pos(), kind: evReturn, retIndex: i, retExpr: e,
				})
			}
		}
		return true
	})

	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].pos < s.events[j].pos })
}

// isViewExpr reports whether e evaluates to an arena view.
func (s *arenaScan) isViewExpr(e ast.Expr) bool {
	_, _, ok := s.viewSource(e)
	return ok
}

// viewSource resolves e to the store it views: st.Set(i)/st.Raw()
// directly, a slice of an existing view (v[1:] still aliases), or a
// call whose summarized callee returns a view of one of its arguments.
func (s *arenaScan) viewSource(e ast.Expr) (key string, paramBit int, ok bool) {
	info := s.fi.Pkg.Info
	switch ee := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if isSetStoreCall(info, ee) && setStoreViewers[methodCallName(ee)] {
			sel := ast.Unparen(ee.Fun).(*ast.SelectorExpr)
			return storeKey(sel.X), s.paramBitFor(sel.X), true
		}
		if fi := s.prog.callee(info, ee); fi != nil && fi.Arena != nil {
			for _, rv := range fi.Arena.ResultViews {
				if rv == 0 {
					continue
				}
				for j := 0; j < 64; j++ {
					if rv&(1<<uint(j)) == 0 {
						continue
					}
					if arg := argExprAt(fi, ee, j); arg != nil {
						return storeKey(arg), s.paramBitFor(arg), true
					}
				}
			}
		}
	case *ast.SliceExpr:
		return s.viewSource(ee.X)
	case *ast.IndexExpr:
		return s.viewSource(ee.X)
	}
	return "", -1, false
}

// mutationOf classifies call as a store mutation: a direct mutator
// method, or a call whose summarized callee mutates one of its
// SetStore arguments.
func (s *arenaScan) mutationOf(call *ast.CallExpr) (mut bool, key string, paramBit int, desc string) {
	info := s.fi.Pkg.Info
	if isSetStoreCall(info, call) {
		name := methodCallName(call)
		if setStoreMutators[name] {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			return true, storeKey(sel.X), s.paramBitFor(sel.X), name + " (may realloc or retire the arena)"
		}
		return false, "", -1, ""
	}
	if fi := s.prog.callee(info, call); fi != nil && fi.Arena != nil && fi.Arena.Mutates != 0 {
		for j := 0; j < 64; j++ {
			if fi.Arena.Mutates&(1<<uint(j)) == 0 {
				continue
			}
			if arg := argExprAt(fi, call, j); arg != nil {
				return true, storeKey(arg), s.paramBitFor(arg),
					"call to " + fi.name() + ", which mutates it"
			}
		}
	}
	return false, "", -1, ""
}

// argExprAt returns the caller-side expression bound to callee
// parameter j (paramObjs index space: receiver first), or nil.
func argExprAt(fi *FuncInfo, call *ast.CallExpr, j int) ast.Expr {
	if hasRecv(fi.Decl) {
		if j == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		j--
	}
	if j < len(call.Args) {
		return call.Args[j]
	}
	return nil
}

// replay walks the position-ordered events, reporting uses of views
// whose store has been mutated since the view was taken (when findings
// is non-nil), and returns the function's summary.
func (s *arenaScan) replay(findings *[]arenaFinding) *ArenaSummary {
	sum := &ArenaSummary{ResultViews: make([]uint64, numResults(s.fi.Decl))}

	type viewState struct {
		key      string
		paramBit int
		mutDesc  string // non-empty once invalidated
		mutPos   token.Pos
	}
	views := make(map[types.Object]*viewState)

	for _, ev := range s.events {
		switch ev.kind {
		case evView:
			views[ev.obj] = &viewState{key: ev.key, paramBit: ev.paramBit}
		case evMutate:
			if ev.paramBit >= 0 && ev.paramBit < 64 {
				sum.Mutates |= 1 << uint(ev.paramBit)
			}
			for _, vs := range views {
				if vs.key == ev.key && vs.mutDesc == "" {
					vs.mutDesc = ev.desc
					vs.mutPos = ev.pos
				}
			}
		case evUse:
			if vs, ok := views[ev.obj]; ok && vs.mutDesc != "" && findings != nil {
				*findings = append(*findings, arenaFinding{
					pos: ev.pos, what: ev.obj.Name(), mutDesc: vs.mutDesc, mutPos: vs.mutPos,
				})
			}
		case evReturn:
			if ev.retIndex >= len(sum.ResultViews) {
				continue
			}
			// A returned view of a parameter store makes this function a
			// view constructor for that parameter.
			if key, bit, ok := s.viewSource(ev.retExpr); ok && bit >= 0 && bit < 64 {
				_ = key
				sum.ResultViews[ev.retIndex] |= 1 << uint(bit)
			}
			if id, ok := ast.Unparen(ev.retExpr).(*ast.Ident); ok {
				if obj := s.fi.Pkg.Info.Uses[id]; obj != nil {
					if vs, ok := views[obj]; ok && vs.paramBit >= 0 && vs.paramBit < 64 {
						sum.ResultViews[ev.retIndex] |= 1 << uint(vs.paramBit)
					}
				}
			}
		}
	}
	return sum
}

// ArenaAlias is the inter-procedural arena view-lifetime analyzer.
var ArenaAlias = &Analyzer{
	Name: "arenaalias",
	Doc: "a SetStore arena view (Set/Raw sub-slice) must not be used after Append/AppendStore/AppendRange/Grow/Reset, " +
		"which may realloc or retire the backing array — even when the mutation happens inside a callee",
	NeedsProgram: true,
	Run:          runArenaAlias,
}

func runArenaAlias(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, fi := range pass.Prog.funcsIn(pass.PkgPath) {
		for _, f := range arenaFindings(pass.Prog, fi) {
			mutLine := pass.Fset.Position(f.mutPos).Line
			pass.Reportf(f.pos,
				"arena view %q used after %s at line %d; Set/Raw sub-slices are only valid until the next "+
					"Append/AppendStore/AppendRange/Grow/Reset — re-take the view after mutating, or copy the data out first",
				f.what, f.mutDesc, mutLine)
		}
		reportSinkEscapes(pass, fi)
	}
}

// reportSinkEscapes flags views of a rotating-sink batch that outlive the
// sink invocation: inside a func literal passed directly to a rotatingSinks
// call, any view of the literal's SetStore parameter assigned to storage
// declared outside the literal (a captured variable, or any field/element)
// escapes — and the caller resets the batch arena as soon as the sink
// returns.
func reportSinkEscapes(pass *Pass, fi *FuncInfo) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !rotatingSinks[callName(call)] {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			batches := batchParams(info, lit)
			if len(batches) == 0 {
				continue
			}
			for _, f := range sinkEscapes(info, lit, batches) {
				pass.Reportf(f.pos,
					"view of rotating arena batch %q escapes the sink passed to %s; the batch is reset when the "+
						"sink returns — copy the data out (e.g. AppendStore or an explicit append) instead",
					f.what, callName(call))
			}
		}
		return true
	})
}

// callName resolves the bare name of a call target: the method name for a
// selector call, the identifier for a plain call.
func callName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// batchParams returns the objects of lit's parameters whose type is a
// SetStore — the borrowed batches of a rotating sink.
func batchParams(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isSetStoreType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// sinkEscapes scans a sink literal's body for assignments that bind a view
// of a batch parameter to storage outliving the invocation: an identifier
// declared outside the literal, or any field/index expression (whose
// container's lifetime the analysis cannot bound).
func sinkEscapes(info *types.Info, lit *ast.FuncLit, batches map[types.Object]bool) []arenaFinding {
	// viewLocals are sink-scoped bindings that hold a batch view (data, _ :=
	// batch.Raw(); v := batch.Set(0)); re-exporting one escapes just the same.
	viewLocals := map[types.Object]bool{}
	var isBatchView func(e ast.Expr) bool
	isBatchView = func(e ast.Expr) bool {
		for {
			switch ee := ast.Unparen(e).(type) {
			case *ast.SliceExpr:
				e = ee.X
				continue
			case *ast.IndexExpr:
				// v[0] of a []int32 is a scalar copy; only element types
				// that still alias memory (slices, pointers) propagate.
				switch info.TypeOf(ee).Underlying().(type) {
				case *types.Slice, *types.Pointer:
					e = ee.X
					continue
				}
				return false
			case *ast.Ident:
				obj := info.Uses[ee]
				return obj != nil && viewLocals[obj]
			case *ast.CallExpr:
				if !setStoreViewers[callName(ee)] {
					return false
				}
				sel, ok := ast.Unparen(ee.Fun).(*ast.SelectorExpr)
				if !ok {
					return false
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				return ok && batches[info.Uses[id]]
			}
			return false
		}
	}
	// Fixed point: a local bound to a view of a view is itself a view.
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if !isBatchView(rhs) {
					continue
				}
				lo, hi := i, i+1
				if len(as.Rhs) == 1 {
					lo, hi = 0, len(as.Lhs)
				}
				for _, l := range as.Lhs[lo:hi] {
					id, ok := ast.Unparen(l).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if obj := info.Defs[id]; obj != nil && !viewLocals[obj] {
						viewLocals[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	var out []arenaFinding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isBatchView(rhs) {
				continue
			}
			lo, hi := i, i+1
			if len(as.Rhs) == 1 {
				lo, hi = 0, len(as.Lhs)
			}
			for _, l := range as.Lhs[lo:hi] {
				switch lhs := ast.Unparen(l).(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						continue
					}
					obj := info.Defs[lhs]
					if obj == nil {
						obj = info.Uses[lhs]
					}
					// A fresh := binding inside the literal is a local borrow;
					// writing to an object declared before the literal escapes.
					if obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
						out = append(out, arenaFinding{pos: l.Pos(), what: obj.Name()})
					}
				default:
					// Fields, map entries and slice elements outlive the
					// invocation as far as this analysis can tell.
					out = append(out, arenaFinding{pos: l.Pos(), what: types.ExprString(l)})
				}
			}
		}
		return true
	})
	return out
}
