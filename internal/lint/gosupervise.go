package lint

import "go/ast"

// GoSupervise extends the resilience layer's panic isolation to a
// static check. guardedSelect (internal/core/resilience.go) recovers
// panics on the algorithm goroutine and classifies them as the
// Panicked status — but recover only catches panics on its own
// goroutine. Any additional `go func` launched by an algorithm, an
// estimator, or a CLI escapes that net: one panic there kills the
// entire benchmark process and every journaled-but-unflushed cell with
// it.
//
// The rule: a `go` statement whose function is a literal must install a
// `defer func() { ... recover() ... }()` in that literal's body. The
// supervised pools that intentionally run bare (e.g. the diffusion
// worker pool, whose work is harness-owned and panic-free by
// construction) carry a justified //imlint:ignore.
var GoSupervise = &Analyzer{
	Name: "gosupervise",
	Doc: "a go func literal must defer a recover(); an unsupervised goroutine panic kills " +
		"the whole benchmark process, bypassing the Panicked status",
	Run: runGoSupervise,
}

func runGoSupervise(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named function: supervised at its definition
			}
			if !hasDeferredRecover(lit) {
				pass.Reportf(g.Pos(),
					"goroutine launched without a deferred recover(); a panic here kills the whole process instead of classifying the cell as Panicked — add defer/recover or route the work through the supervised runner")
			}
			return true
		})
	}
}

// hasDeferredRecover reports whether lit's body defers a function that
// calls recover(). Nested go statements start their own goroutines and
// are inspected separately, so their literals are skipped.
func hasDeferredRecover(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if dl, ok := nn.Call.Fun.(*ast.FuncLit); ok && callsRecover(dl) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

func callsRecover(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}
