package lint

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// CLI driver shared by cmd/imlint and its tests.
//
// Exit-code contract (stable; scripts/check.sh and CI depend on it):
//
//	0 — clean: every analyzed package satisfies every invariant
//	1 — findings were reported
//	2 — usage or load error (bad flags, no packages, unparseable source)

// Run executes imlint with the given arguments, writing findings to
// stdout and errors/usage to stderr, and returns the process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: imlint [-list] [-only a,b] packages...\n\n"+
			"imlint enforces the platform's determinism and resilience invariants.\n"+
			"Packages are directories or ./... patterns. Findings exit 1, usage errors exit 2.\n"+
			"Suppress a finding with `//imlint:ignore <analyzer> <reason>` on or above its line.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				fmt.Fprintf(stderr, "imlint: unknown analyzer %q (have: %s)\n", name, strings.Join(known, ", "))
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	dirs, err := ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "imlint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "imlint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	loader, err := NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(stderr, "imlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		fmt.Fprintf(stderr, "imlint: %v\n", err)
		return 2
	}

	diags := Check(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "imlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize renders the diagnostic with a cwd-relative path when that
// is shorter, matching compiler output conventions.
func relativize(d Diagnostic) string {
	if rel, err := filepath.Rel(".", d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
