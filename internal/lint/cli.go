package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// CLI driver shared by cmd/imlint and its tests.
//
// Exit-code contract (stable; scripts/check.sh and CI depend on it):
//
//	0 — clean: every analyzed package satisfies every invariant
//	1 — findings were reported (or, with -suppressions, stale waivers)
//	2 — usage or load error (bad flags, no packages, unparseable source)

// jsonDiagnostic is the machine-readable finding shape emitted by
// -json: one object per line, fields always in this order (encoding/
// json marshals struct fields in declaration order).
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonDirective is the -suppressions audit shape under -json.
type jsonDirective struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Stale    bool   `json:"stale"`
}

// Run executes imlint with the given arguments, writing findings to
// stdout and errors/usage to stderr, and returns the process exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit machine-readable output, one JSON object per line")
	audit := fs.Bool("suppressions", false,
		"audit //imlint:ignore directives instead of reporting findings; stale directives exit 1")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: imlint [-list] [-only a,b] [-json] [-suppressions] packages...\n\n"+
			"imlint enforces the platform's determinism and resilience invariants.\n"+
			"Packages are directories or ./... patterns. Findings exit 1, usage errors exit 2.\n"+
			"Suppress a finding with `//imlint:ignore <analyzer> <reason>` on or above its line.\n"+
			"-suppressions lists every directive and fails on ones that no longer waive\n"+
			"anything; it always runs the full analyzer set so usage is judged accurately.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" && !*audit {
		byName := make(map[string]*Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				fmt.Fprintf(stderr, "imlint: unknown analyzer %q (have: %s)\n", name, strings.Join(known, ", "))
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	dirs, err := ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "imlint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "imlint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	loader, err := NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(stderr, "imlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		fmt.Fprintf(stderr, "imlint: %v\n", err)
		return 2
	}

	if *audit {
		// The audit must run every analyzer: a directive for an analyzer
		// that didn't run would always look stale.
		_, directives := CheckAudit(pkgs, Analyzers())
		return reportAudit(directives, *jsonOut, stdout, stderr)
	}

	diags := Check(pkgs, analyzers)
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if *jsonOut {
			pos := relPos(d.Pos.Filename)
			_ = enc.Encode(jsonDiagnostic{
				File: pos, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		} else {
			fmt.Fprintln(stdout, relativize(d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "imlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// reportAudit renders the -suppressions listing and returns the exit
// code: 1 when any directive is stale, 0 otherwise.
func reportAudit(directives []*Directive, jsonOut bool, stdout, stderr io.Writer) int {
	stale := 0
	enc := json.NewEncoder(stdout)
	for _, dir := range directives {
		file := relPos(dir.Pos.Filename)
		if !dir.Used {
			stale++
		}
		if jsonOut {
			_ = enc.Encode(jsonDirective{
				File: file, Line: dir.Pos.Line,
				Analyzer: dir.Analyzer, Reason: dir.Reason, Stale: !dir.Used,
			})
			continue
		}
		mark := ""
		if !dir.Used {
			mark = " [stale]"
		}
		fmt.Fprintf(stdout, "%s:%d: %s: %s%s\n", file, dir.Pos.Line, dir.Analyzer, dir.Reason, mark)
	}
	if stale > 0 {
		fmt.Fprintf(stderr, "imlint: %d stale suppression(s); delete directives that no longer waive a finding\n", stale)
		return 1
	}
	return 0
}

// relativize renders the diagnostic with a cwd-relative path when that
// is shorter, matching compiler output conventions.
func relativize(d Diagnostic) string {
	d.Pos.Filename = relPos(d.Pos.Filename)
	return d.String()
}

// relPos returns the cwd-relative form of path when it stays inside
// the working tree.
func relPos(path string) string {
	if rel, err := filepath.Rel(".", path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
