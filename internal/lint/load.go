package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package loading
//
// imlint type-checks with the standard library only. Standard-library
// imports are resolved by the go/importer "source" importer (which reads
// GOROOT/src); imports inside this module are resolved by parsing the
// corresponding directory under the module root. Anything else —
// unresolvable imports, deliberate fixture errors — degrades to a
// partial type-check: the loader records the errors and the analyzers
// fall back to conservative syntactic reasoning instead of aborting,
// so one broken file cannot take down the whole gate.

// Package is one loaded, (partially) type-checked package.
type Package struct {
	// Path is the import path, ModRel the path relative to the module
	// root ("" for the module root package itself).
	Path   string
	ModRel string
	Dir    string
	Fset   *token.FileSet
	// Files are the parsed non-test .go files. Test files are out of
	// scope by design: the invariants protect benchmark runs, and tests
	// routinely (and legitimately) use fixed shortcuts.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds type-check problems tolerated during loading.
	TypeErrors []error
}

// Loader loads and type-checks packages from a single module.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std  types.ImporterFrom
	deps map[string]*depEntry
}

type depEntry struct {
	pkg      *types.Package
	err      error
	loading  bool
	finished bool
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		deps:       make(map[string]*depEntry),
	}
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	l.std = src
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load parses and type-checks the packages in the given directories.
func (l *Loader) Load(dirs []string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir loads one directory as a fully-inspected package. A directory
// with no non-test Go files yields (nil, nil).
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", abs, l.ModuleDir)
	}
	modRel := filepath.ToSlash(rel)
	if modRel == "." {
		modRel = ""
	}
	path := l.ModulePath
	if modRel != "" {
		path = l.ModulePath + "/" + modRel
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg := &Package{Path: path, ModRel: modRel, Dir: abs, Fset: l.Fset, Files: files, Info: info}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Errors are tolerated: Check still populates info for everything it
	// could resolve, which is what the analyzers consume.
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir, enforcing a single
// package per directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		src, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildTagSatisfied(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}

// buildTagSatisfied reports whether a file's //go:build constraint (if
// any) selects it for the host platform. imlint type-checks exactly one
// platform — the one it runs on — matching what `go build` would compile,
// so mutually exclusive per-OS implementation files don't collide.
func buildTagSatisfied(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			// Malformed constraint: include the file and let the
			// compiler's diagnostics own the problem.
			return true
		}
		return expr.Eval(buildTagActive)
	}
	return true
}

// unixGOOS mirrors the GOOS values matched by the "unix" build tag.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

func buildTagActive(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	// Assume a current toolchain for version gates; unknown custom tags
	// are off, matching a default `go build`.
	return strings.HasPrefix(tag, "go1.")
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from source under the module root, everything else is handed
// to the GOROOT source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModulePkg(path)
	}
	return l.std.ImportFrom(path, dir, mode)
}

// importModulePkg type-checks a module-internal dependency, memoized.
// Dependency bodies are skipped (IgnoreFuncBodies) — importers only
// need the exported surface.
func (l *Loader) importModulePkg(path string) (*types.Package, error) {
	if e, ok := l.deps[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &depEntry{loading: true}
	l.deps[path] = e

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	files, err := l.parseDir(dir)
	if err == nil && len(files) == 0 {
		err = fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err != nil {
		e.loading, e.finished, e.err = false, true, err
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // tolerated; surface what resolves
	}
	pkg, _ := conf.Check(path, l.Fset, files, nil)
	e.loading, e.finished, e.pkg = false, true, pkg
	return pkg, nil
}

// ExpandPatterns resolves package patterns into package directories.
// Supported forms: a directory path ("./internal/core", "."), or a
// recursive pattern ending in "/..." which walks the tree skipping
// testdata, vendor, hidden and underscore-prefixed directories (the
// same exclusions the go tool applies). Explicitly named directories
// are never filtered, so fixture corpora can still be linted directly.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		root, recursive := strings.CutSuffix(p, "/...")
		if p == "..." {
			root, recursive = ".", true
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			st, err := os.Stat(root)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			if !st.IsDir() {
				return nil, fmt.Errorf("lint: %s is not a directory", root)
			}
			add(filepath.Clean(root))
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				n := e.Name()
				if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
					add(filepath.Clean(path))
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}
	return dirs, nil
}
