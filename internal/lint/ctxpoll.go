package lint

import (
	"go/ast"
	"strings"
)

// CtxPoll keeps the hard watchdog a last resort. The resilience layer
// (internal/core/resilience.go) enforces time budgets two ways: the
// cooperative path — algorithms poll Context.Check/CheckNow and return
// ErrBudget promptly — and the hard watchdog, which abandons the
// goroutine (leaking it, per the DNF contract) when the algorithm never
// polls. Abandonment costs a leaked goroutine and forfeits the cell's
// instrumentation, so every seed-selection or spread-estimation hot
// path that loops must reach a budget or cancellation poll.
//
// The rule: a function named Select or Estimate* that takes a context
// parameter (a named type called Context — core.Context or
// context.Context — possibly behind a pointer) and contains a loop must
// call one of Check, CheckNow, CancelErr, Err, or Done somewhere in its
// body. Helpers the hot path delegates to are not traced; put the poll
// where the iteration is.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "Select/Estimate hot paths that take a Context and loop must poll the budget " +
		"(Check/CheckNow/CancelErr/Err/Done) so the hard watchdog stays a last resort",
	Run: runCtxPoll,
}

// pollMethodNames are the calls that count as a budget/cancellation
// poll: the core.Context cooperative API and the context.Context one.
var pollMethodNames = map[string]bool{
	"Check": true, "CheckNow": true, "CancelErr": true, "Err": true, "Done": true,
}

func runCtxPoll(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !hotPathName(fn.Name.Name) {
				continue
			}
			if !hasContextParam(fn.Type) {
				continue
			}
			if !containsLoop(fn.Body) {
				continue
			}
			if containsPoll(fn.Body) {
				continue
			}
			pass.Reportf(fn.Name.Pos(),
				"%s loops but never polls its context (Check/CheckNow/CancelErr/Err/Done); a budget overrun here is only caught by the hard watchdog, which abandons the cell and leaks the goroutine", fn.Name.Name)
		}
	}
}

// hotPathName matches the seed-selection and spread-estimation entry
// points the benchmarking workflow calls into. MarginalGain* is the
// paired-evaluation path (diffusion.MarginalGainCtx): it simulates r
// worlds per call, the same budget exposure as an Estimate*.
func hotPathName(name string) bool {
	return name == "Select" ||
		strings.HasPrefix(name, "Estimate") || strings.HasPrefix(name, "estimate") ||
		strings.HasPrefix(name, "MarginalGain")
}

// hasContextParam reports whether the function signature includes a
// parameter whose (possibly pointer-wrapped) named type is "Context".
func hasContextParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		switch tt := t.(type) {
		case *ast.Ident:
			if tt.Name == "Context" {
				return true
			}
		case *ast.SelectorExpr:
			if tt.Sel.Name == "Context" {
				return true
			}
		}
	}
	return false
}

func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		case *ast.FuncLit:
			// Loops inside nested function literals (e.g. worker bodies)
			// are that literal's concern, not this function's.
			return false
		}
		return !found
	})
	return found
}

func containsPoll(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if pollMethodNames[methodCallName(call)] {
			found = true
		}
		return !found
	})
	return found
}
