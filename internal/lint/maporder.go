package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder guards the determinism of everything the platform writes
// out. Go randomizes map iteration order on every range, so a map
// ranged directly into a journal record, CSV row stream, table, or
// encoder produces files that differ run to run — which breaks
// checkpoint/resume keying (the journal index assumes stable cell
// streams) and makes result diffs useless. The fix is mechanical:
// collect the keys, sort them, range over the sorted slice.
//
// The analyzer flags a `for range` over a map only when the loop body
// itself emits — calls fmt print functions or a writer/encoder-style
// method. Ranging a map to accumulate, count, or build a slice that is
// sorted afterwards is the endorsed pattern and is not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid ranging over a map while emitting output (journal, CSV, table, encoder); " +
		"map order is randomized per run — sort the keys first",
	Run: runMapOrder,
}

// emitMethodNames are method selectors that count as emission when
// called inside a map-range body.
var emitMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRecord": true, "WriteAll": true, "Encode": true,
	"AddRow": true, "Append": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true // no type info: stay conservative
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if call := firstEmitCall(pass, rng.Body); call != nil {
				pass.Reportf(rng.Pos(),
					"range over map %s emits output (%s) inside the loop; map iteration order is randomized per run — sort the keys into a slice first",
					types.ExprString(rng.X), callLabel(call))
			}
			return true
		})
	}
}

// firstEmitCall finds an emission call in the loop body: a fmt print
// function or a writer/encoder-style method call.
func firstEmitCall(pass *Pass, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pass.pkgFuncCall(call, "fmt", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln") {
			found = call
			return false
		}
		// Writer/encoder-style methods count on any receiver, including
		// in-memory builders: bytes appended in map order still render
		// in map order when the buffer is flushed.
		if emitMethodNames[methodCallName(call)] {
			found = call
			return false
		}
		return true
	})
	return found
}

// callLabel renders the called expression for the diagnostic.
func callLabel(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
