package serve

import (
	"context"
	"sort"

	"github.com/sigdata/goinfmax/internal/graph"
)

// degreeOracle is the degraded-mode fallback: when no real oracle is
// available (snapshot unusable, build failed or still running past its
// deadline) the server answers from the out-degree heuristic — the
// cheapest seed-quality baseline the paper benchmarks (HighDegree). It
// builds in O(n log n) with no sampling, so a degraded replica is up in
// milliseconds regardless of graph size.
//
// The estimates are deliberately crude: Spread is the classic
// degree-discount-free upper-bound proxy Σ(1 + outdeg(v)) clamped to n,
// not a diffusion estimate. Every response served from this oracle is
// stamped degraded:true so no client can mistake it for a real estimate.
type degreeOracle struct {
	n      int32
	outdeg []int32
	// order lists all nodes by descending out-degree, ties broken by
	// ascending node id — a pure function of the graph, so two degraded
	// replicas over the same graph still agree on every answer.
	order []graph.NodeID
}

// NewDegreeOracle builds the degraded-mode fallback oracle over g.
func NewDegreeOracle(g graph.G) Oracle {
	n := g.N()
	o := &degreeOracle{n: n, outdeg: make([]int32, n), order: make([]graph.NodeID, n)}
	for v := graph.NodeID(0); v < n; v++ {
		o.outdeg[v] = g.OutDegree(v)
		o.order[v] = v
	}
	sort.SliceStable(o.order, func(i, j int) bool {
		a, b := o.order[i], o.order[j]
		if o.outdeg[a] != o.outdeg[b] {
			return o.outdeg[a] > o.outdeg[b]
		}
		return a < b
	})
	return o
}

func (o *degreeOracle) Backend() string { return "degree" }

func (o *degreeOracle) Spread(ctx context.Context, seeds []graph.NodeID) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	total := int64(0)
	for _, v := range seeds {
		total += 1 + int64(o.outdeg[v])
	}
	if total > int64(o.n) {
		total = int64(o.n)
	}
	return float64(total), nil
}

func (o *degreeOracle) Seeds(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if k > len(o.order) {
		k = len(o.order)
	}
	seeds := make([]graph.NodeID, k)
	copy(seeds, o.order[:k])
	spread, err := o.Spread(ctx, seeds)
	if err != nil {
		return nil, 0, err
	}
	return seeds, spread, nil
}

func (o *degreeOracle) IndexUnits() int { return int(o.n) }

func (o *degreeOracle) IndexBytes() int64 {
	return int64(len(o.outdeg))*4 + int64(len(o.order))*4
}
