package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sigdata/goinfmax/internal/persist"
	"github.com/sigdata/goinfmax/internal/persist/failpoint"
	"github.com/sigdata/goinfmax/internal/weights"
)

// logCapture collects BootSpec.Logf lines; the background build goroutine
// writes concurrently with test assertions, so it locks.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCapture) logf(format string, args ...interface{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logCapture) contains(substr string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		if strings.Contains(line, substr) {
			return true
		}
	}
	return false
}

func (l *logCapture) dump() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

func testBootSpec(t testing.TB, log *logCapture) BootSpec {
	t.Helper()
	spec := BootSpec{
		Backend:   "rrset",
		Graph:     testGraph(t),
		Model:     weights.IC,
		IndexSize: 2000,
		Seed:      42,
		Workers:   1,
	}
	if log != nil {
		spec.Logf = log.logf
	}
	return spec
}

func waitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func lifecycleServer(t testing.TB, lc *Lifecycle) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Lifecycle:  lc,
		Graph:      testGraph(t),
		Model:      weights.IC,
		SchemeName: "WC",
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestLifecycleStateMachine(t *testing.T) {
	lc := newLifecycle()
	lc.startFallback(&stubOracle{})
	if lc.State() != StateBuilding {
		t.Fatalf("initial state = %v, want building", lc.State())
	}
	if _, gen, degraded := lc.CurrentOracle(); gen != 1 || !degraded {
		t.Fatalf("fallback generation = (%d, degraded=%v), want (1, true)", gen, degraded)
	}
	select {
	case <-lc.Ready():
		t.Fatal("Ready closed before any real oracle existed")
	default:
	}

	if !lc.degradeIfBuilding(errors.New("boom")) {
		t.Fatal("building -> degraded transition refused")
	}
	if lc.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded", lc.State())
	}
	if lc.degradeIfBuilding(errors.New("again")) {
		t.Fatal("degraded -> degraded should be a no-op")
	}
	if lc.LastBuildError() != "boom" {
		t.Fatalf("LastBuildError = %q, want boom", lc.LastBuildError())
	}

	real := &stubOracle{}
	if gen := lc.swapReady(real); gen != 2 {
		t.Fatalf("swap generation = %d, want 2", gen)
	}
	if lc.State() != StateReady {
		t.Fatalf("state = %v, want ready", lc.State())
	}
	if o, gen, degraded := lc.CurrentOracle(); o != Oracle(real) || gen != 2 || degraded {
		t.Fatalf("current = (%v, %d, %v), want (real, 2, false)", o, gen, degraded)
	}
	select {
	case <-lc.Ready():
	default:
		t.Fatal("Ready not closed after swap")
	}
	if lc.degradeIfBuilding(errors.New("late timer")) {
		t.Fatal("a ready lifecycle must never be demoted")
	}
}

func TestStartOracleStrictBuildAndSnapshotSave(t *testing.T) {
	log := &logCapture{}
	spec := testBootSpec(t, log)
	spec.SnapshotPath = filepath.Join(t.TempDir(), "oracle.snap")

	lc, err := StartOracle(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if lc.State() != StateReady {
		t.Fatalf("state = %v, want ready", lc.State())
	}
	if !log.contains("built in") || !log.contains("snapshot saved to") {
		t.Fatalf("missing build/save log lines:\n%s", log.dump())
	}
	if _, err := os.Stat(spec.SnapshotPath); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
}

// TestSnapshotBootServesIdenticalBodies is the determinism half of the
// persistence contract: a replica booted from the snapshot must serve
// byte-identical /v1/seeds and /v1/spread bodies to the replica that
// built the oracle and wrote it.
func TestSnapshotBootServesIdenticalBodies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oracle.snap")

	buildLog := &logCapture{}
	buildSpec := testBootSpec(t, buildLog)
	buildSpec.SnapshotPath = path
	lc1, err := StartOracle(context.Background(), buildSpec)
	if err != nil {
		t.Fatal(err)
	}

	loadLog := &logCapture{}
	loadSpec := testBootSpec(t, loadLog)
	loadSpec.SnapshotPath = path
	lc2, err := StartOracle(context.Background(), loadSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !loadLog.contains("loaded from snapshot") {
		t.Fatalf("second boot did not load the snapshot:\n%s", loadLog.dump())
	}
	if loadLog.contains("built in") {
		t.Fatalf("second boot rebuilt despite a valid snapshot:\n%s", loadLog.dump())
	}

	_, ts1 := lifecycleServer(t, lc1)
	_, ts2 := lifecycleServer(t, lc2)
	for _, req := range []struct{ route, body string }{
		{"/v1/seeds", `{"k":10}`},
		{"/v1/spread", `{"seeds":[1,2,3]}`},
		{"/v1/spread", `{"seeds":[5],"evalsims":200}`},
	} {
		resp1, body1 := postJSON(t, ts1.URL+req.route, req.body)
		resp2, body2 := postJSON(t, ts2.URL+req.route, req.body)
		if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
			t.Fatalf("%s: statuses %d/%d", req.route, resp1.StatusCode, resp2.StatusCode)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("%s %s: rebuild-boot %s != snapshot-boot %s", req.route, req.body, body1, body2)
		}
	}
}

func TestStartOracleCorruptSnapshotFallsBackToBuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oracle.snap")
	if err := os.WriteFile(path, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	log := &logCapture{}
	spec := testBootSpec(t, log)
	spec.SnapshotPath = path

	lc, err := StartOracle(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if lc.State() != StateReady {
		t.Fatalf("state = %v, want ready", lc.State())
	}
	if !log.contains("unusable") || !log.contains("falling back to a fresh build") {
		t.Fatalf("missing corrupt-snapshot log line:\n%s", log.dump())
	}
	// The rebuild must have replaced the corrupt file with a loadable one.
	if _, lerr := persist.Load(path, spec.header()); lerr != nil {
		t.Fatalf("snapshot not repaired by rebuild: %v", lerr)
	}
}

// TestDegradedServingAndRecovery drives the full degraded arc with an
// injected build failure: boot serves flagged degree answers immediately,
// /readyz reports degraded, and once the fault clears the background
// rebuild swaps the real oracle in — with the response cache proving it
// cannot replay a degraded body as a ready answer.
func TestDegradedServingAndRecovery(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	var failing atomic.Bool
	failing.Store(true)
	failpoint.Enable("serve.build", func() error {
		if failing.Load() {
			return errors.New("injected build failure")
		}
		return nil
	})
	defer failpoint.Disable("serve.build")

	log := &logCapture{}
	spec := testBootSpec(t, log)
	spec.BuildDeadline = 5 * time.Millisecond
	spec.RebuildAttempts = 50
	spec.RebuildBackoff = 5 * time.Millisecond

	lc, err := StartOracle(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := lifecycleServer(t, lc)

	waitFor(t, 5*time.Second, "degraded state", func() bool { return lc.State() == StateDegraded })

	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 || string(body) != "degraded\n" {
		t.Fatalf("/readyz = %d %q, want 200 degraded", resp.StatusCode, body)
	}
	resp, degradedBody := postJSON(t, ts.URL+"/v1/seeds", `{"k":5}`)
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/seeds status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(degradedBody), `"degraded":true`) {
		t.Fatalf("degraded answer not stamped: %s", degradedBody)
	}
	if !strings.Contains(string(degradedBody), `"backend":"degree"`) {
		t.Fatalf("degraded answer not from the degree oracle: %s", degradedBody)
	}
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	if got := gaugeValue(t, string(metricsBody), "oracle_mode"); got != "degraded" {
		t.Fatalf("oracle_mode gauge = %q, want degraded", got)
	}
	if lc.LastBuildError() == "" {
		t.Fatal("LastBuildError empty after injected failures")
	}

	failing.Store(false)
	select {
	case <-lc.Ready():
	case <-time.After(10 * time.Second):
		t.Fatalf("rebuild never completed:\n%s", log.dump())
	}

	// Same request, ready generation: the cache is keyed by generation, so
	// this MUST be a fresh, unflagged, real-backend body — not the cached
	// degraded one.
	resp, readyBody := postJSON(t, ts.URL+"/v1/seeds", `{"k":5}`)
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/seeds status after recovery = %d", resp.StatusCode)
	}
	if strings.Contains(string(readyBody), `"degraded":true`) {
		t.Fatalf("ready answer served a degraded body (cache generation leak): %s", readyBody)
	}
	if !strings.Contains(string(readyBody), `"backend":"rrset"`) {
		t.Fatalf("ready answer not from the real oracle: %s", readyBody)
	}
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 || string(body) != "ready\n" {
		t.Fatalf("/readyz after recovery = %d %q, want 200 ready", resp.StatusCode, body)
	}
	_, metricsBody = getBody(t, ts.URL+"/metrics")
	if got := gaugeValue(t, string(metricsBody), "oracle_mode"); got != "ready" {
		t.Fatalf("oracle_mode gauge after recovery = %q, want ready", got)
	}
	if got := gaugeValue(t, string(metricsBody), "oracle_generation"); got != "2" {
		t.Fatalf("oracle_generation gauge = %q, want 2", got)
	}
}

func TestDegradedOnBuildPanic(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	failpoint.Enable("serve.build", func() error { panic("injected build panic") })
	defer failpoint.Disable("serve.build")

	log := &logCapture{}
	spec := testBootSpec(t, log)
	spec.BuildDeadline = time.Hour // only failures, never the deadline, degrade here
	spec.RebuildAttempts = 2
	spec.RebuildBackoff = time.Millisecond

	lc, err := StartOracle(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "degraded state after panic", func() bool { return lc.State() == StateDegraded })
	if !strings.Contains(lc.LastBuildError(), "panicked") {
		t.Fatalf("LastBuildError = %q, want a panic report", lc.LastBuildError())
	}
	waitFor(t, 5*time.Second, "attempts exhausted", func() bool {
		return log.contains("failed after 2 attempts")
	})
	if lc.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded until restart", lc.State())
	}
}

// TestDeadlineDegradesSlowBuild stalls the build past the deadline and
// asserts the building→degraded→ready arc driven purely by time.
func TestDeadlineDegradesSlowBuild(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	release := make(chan struct{})
	failpoint.Enable("serve.build", func() error { <-release; return nil })
	defer failpoint.Disable("serve.build")

	spec := testBootSpec(t, nil)
	spec.BuildDeadline = 5 * time.Millisecond
	lc, err := StartOracle(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, gen, degraded := lc.CurrentOracle(); gen != 1 || !degraded {
		t.Fatalf("boot generation = (%d, %v), want (1, true)", gen, degraded)
	}
	_, ts := lifecycleServer(t, lc)
	resp, body := getBody(t, ts.URL+"/readyz")
	if lc.State() == StateBuilding && resp.StatusCode != 503 {
		t.Fatalf("/readyz while building = %d %q, want 503", resp.StatusCode, body)
	}

	waitFor(t, 5*time.Second, "deadline degrade", func() bool { return lc.State() == StateDegraded })
	close(release)
	select {
	case <-lc.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("stalled build never swapped in after release")
	}
	if _, gen, degraded := lc.CurrentOracle(); gen != 2 || degraded {
		t.Fatalf("post-swap generation = (%d, %v), want (2, false)", gen, degraded)
	}
}

func TestReadyzDraining(t *testing.T) {
	srv, ts := newTestServer(t, "rrset", nil)
	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 200 || string(body) != "ready\n" {
		t.Fatalf("/readyz = %d %q, want 200 ready", resp.StatusCode, body)
	}
	srv.Drain()
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != 503 || string(body) != "draining\n" {
		t.Fatalf("/readyz draining = %d %q, want 503 draining", resp.StatusCode, body)
	}
}

func TestConfigOracleLifecycleExclusive(t *testing.T) {
	g := testGraph(t)
	stub := &stubOracle{}
	if _, err := New(Config{Graph: g}); !errors.Is(err, errNoOracle) {
		t.Fatalf("no oracle: err = %v", err)
	}
	if _, err := New(Config{Graph: g, Oracle: stub, Lifecycle: NewReadyLifecycle(stub)}); !errors.Is(err, errBothOracles) {
		t.Fatalf("both oracles: err = %v", err)
	}
}

func TestDegreeOracleDeterministicAndBounded(t *testing.T) {
	g := testGraph(t)
	o := NewDegreeOracle(g)
	if o.Backend() != "degree" {
		t.Fatalf("Backend = %q", o.Backend())
	}
	ctx := context.Background()
	s1, sp1, err := o.Seeds(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	s2, sp2, err := NewDegreeOracle(g).Seeds(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) || sp1 != sp2 {
		t.Fatal("degree oracle is not deterministic across instances")
	}
	for i := 1; i < len(s1); i++ {
		if g.OutDegree(s1[i-1]) < g.OutDegree(s1[i]) {
			t.Fatalf("seeds not in descending degree order: %v", s1)
		}
	}
	// k beyond n clamps; spread never exceeds n.
	all, spAll, err := o.Seeds(ctx, int(g.N())+100)
	if err != nil {
		t.Fatal(err)
	}
	if int32(len(all)) != g.N() {
		t.Fatalf("clamped seed count = %d, want n=%d", len(all), g.N())
	}
	if spAll > float64(g.N()) {
		t.Fatalf("spread %v exceeds n=%d", spAll, g.N())
	}
}
