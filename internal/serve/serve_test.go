package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sigdata/goinfmax/internal/datasets"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// testGraph returns the small deterministic WC-weighted stand-in every
// serve test runs against.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return weights.WeightedCascade{}.Apply(datasets.MustGenerate("nethept", 64, 1)).(*graph.Graph)
}

// newTestServer builds a Server over a real oracle with test-friendly
// defaults; mutate accepts the config before construction.
func newTestServer(t testing.TB, backend string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	g := testGraph(t)
	oracle, err := BuildOracle(context.Background(), backend, g, weights.IC, 3000, 42, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Oracle:     oracle,
		Graph:      g,
		Model:      weights.IC,
		SchemeName: "WC",
		Seed:       42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// gaugeValue extracts a gauge's value field from the rendered /metrics
// text without depending on column alignment.
func gaugeValue(t testing.TB, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == name {
			return fields[1]
		}
	}
	t.Fatalf("gauge %q not found in metrics:\n%s", name, text)
	return ""
}

func getBody(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestSpreadSeedsRoundTrip(t *testing.T) {
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			_, ts := newTestServer(t, backend, nil)

			resp, body := postJSON(t, ts.URL+"/v1/seeds", `{"k":4}`)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seeds status = %d, body %s", resp.StatusCode, body)
			}
			var sr seedsResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Backend != backend || sr.K != 4 || len(sr.Seeds) != 4 || sr.Spread <= 0 {
				t.Fatalf("bad seeds response: %+v", sr)
			}

			// Point query for the selected set: same estimator, same index,
			// so the spread must match the selection's report.
			seedsJSON, err := json.Marshal(sr.Seeds)
			if err != nil {
				t.Fatal(err)
			}
			resp, body = postJSON(t, ts.URL+"/v1/spread",
				fmt.Sprintf(`{"seeds":%s}`, seedsJSON))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("spread status = %d, body %s", resp.StatusCode, body)
			}
			var pr spreadResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				t.Fatal(err)
			}
			diff := pr.Spread - sr.Spread
			if diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("spread %v disagrees with selection report %v", pr.Spread, sr.Spread)
			}
		})
	}
}

func TestSpreadCanonicalizationSharesCache(t *testing.T) {
	_, ts := newTestServer(t, "rrset", nil)
	resp1, body1 := postJSON(t, ts.URL+"/v1/spread", `{"seeds":[5,3,1,3]}`)
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", resp1.Header.Get("X-Cache"))
	}
	// Same set, different order and duplication: must hit the same entry.
	resp2, body2 := postJSON(t, ts.URL+"/v1/spread", `{"seeds":[1,5,3]}`)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs:\n%s\n%s", body1, body2)
	}
	var pr spreadResponse
	if err := json.Unmarshal(body1, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Seeds) != 3 || pr.Seeds[0] != 1 || pr.Seeds[1] != 3 || pr.Seeds[2] != 5 {
		t.Fatalf("echoed seeds not canonical: %v", pr.Seeds)
	}
}

func TestSpreadMCRefinement(t *testing.T) {
	_, ts := newTestServer(t, "rrset", nil)
	resp, body := postJSON(t, ts.URL+"/v1/spread", `{"seeds":[1,2,3],"evalsims":200}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var pr spreadResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.StdErr == nil || pr.EvalSims != 200 || pr.Spread < 3 {
		t.Fatalf("bad MC response: %s", body)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, "rrset", func(c *Config) { c.MaxK = 10; c.MaxEvalSims = 100 })
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"malformed json", "/v1/spread", `{"seeds":`, http.StatusBadRequest},
		{"unknown field", "/v1/spread", `{"seedz":[1]}`, http.StatusBadRequest},
		{"empty seeds", "/v1/spread", `{"seeds":[]}`, http.StatusBadRequest},
		{"seed out of range", "/v1/spread", `{"seeds":[999999]}`, http.StatusBadRequest},
		{"negative seed", "/v1/spread", `{"seeds":[-1]}`, http.StatusBadRequest},
		{"evalsims above cap", "/v1/spread", `{"seeds":[1],"evalsims":101}`, http.StatusBadRequest},
		{"negative budget", "/v1/spread", `{"seeds":[1],"budget_ms":-5}`, http.StatusBadRequest},
		{"k zero", "/v1/seeds", `{"k":0}`, http.StatusBadRequest},
		{"k above cap", "/v1/seeds", `{"k":11}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body not structured: %s", body)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, _ := getBody(t, ts.URL+"/v1/spread")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
	t.Run("unknown path", func(t *testing.T) {
		resp, _ := getBody(t, ts.URL+"/v1/unknown")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
	})
}

// stubOracle lets tests script oracle behavior.
type stubOracle struct {
	spread func(ctx context.Context, seeds []graph.NodeID) (float64, error)
	seeds  func(ctx context.Context, k int) ([]graph.NodeID, float64, error)
}

func (o *stubOracle) Backend() string { return "stub" }
func (o *stubOracle) Spread(ctx context.Context, seeds []graph.NodeID) (float64, error) {
	return o.spread(ctx, seeds)
}
func (o *stubOracle) Seeds(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
	return o.seeds(ctx, k)
}
func (o *stubOracle) IndexUnits() int   { return 1 }
func (o *stubOracle) IndexBytes() int64 { return 1 }

func newStubServer(t testing.TB, oracle Oracle, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Oracle:     oracle,
		Graph:      testGraph(t),
		Model:      weights.IC,
		SchemeName: "WC",
		Seed:       42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestAdmissionGateReturns429(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	oracle := &stubOracle{
		seeds: func(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
			entered <- struct{}{}
			<-block
			return []graph.NodeID{0}, 1, nil
		},
	}
	_, ts := newStubServer(t, oracle, func(c *Config) {
		c.MaxInFlight = 1
		c.CacheEntries = -1 // caching would bypass the gate measurement
	})

	first := make(chan int, 1)
	go func() {
		resp, _ := http.Post(ts.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k":1}`))
		if resp != nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			first <- resp.StatusCode
		}
	}()
	<-entered // the only slot is now held mid-oracle-call

	resp, body := postJSON(t, ts.URL+"/v1/seeds", `{"k":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(block)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", got)
	}

	_, metricsBody := getBody(t, ts.URL+"/metrics")
	if got := gaugeValue(t, string(metricsBody), "rejected_429"); got != "1" {
		t.Fatalf("rejected_429 = %s, want 1\n%s", got, metricsBody)
	}
}

func TestDeadlineCancelsOracleMidCall(t *testing.T) {
	oracle := &stubOracle{
		seeds: func(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
			// A cooperative oracle: blocks until the request deadline fires.
			<-ctx.Done()
			return nil, 0, ctx.Err()
		},
	}
	_, ts := newStubServer(t, oracle, nil)
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/seeds", `{"k":1,"budget_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to propagate", elapsed)
	}
}

func TestPanicIsolation(t *testing.T) {
	calls := 0
	oracle := &stubOracle{
		seeds: func(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
			calls++
			if calls == 1 {
				panic("oracle exploded")
			}
			return []graph.NodeID{0}, 1, nil
		},
	}
	_, ts := newStubServer(t, oracle, func(c *Config) { c.CacheEntries = -1 })

	resp, body := postJSON(t, ts.URL+"/v1/seeds", `{"k":1}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	// The server must keep serving after a handler panic.
	resp, body = postJSON(t, ts.URL+"/v1/seeds", `{"k":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request status = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	if got := gaugeValue(t, string(metricsBody), "panics_recovered"); got != "1" {
		t.Fatalf("panics_recovered = %s, want 1\n%s", got, metricsBody)
	}
	if got := gaugeValue(t, string(metricsBody), "last_panic"); got != "/v1/seeds:" {
		t.Fatalf("last_panic = %s, want route prefix\n%s", got, metricsBody)
	}
}

func TestMetricsCountersAdvance(t *testing.T) {
	_, ts := newTestServer(t, "rrset", nil)

	_, before := getBody(t, ts.URL+"/metrics")
	if strings.Contains(string(before), "/v1/spread") {
		t.Fatalf("unexpected /v1/spread row before any request:\n%s", before)
	}

	postJSON(t, ts.URL+"/v1/spread", `{"seeds":[1,2]}`)
	postJSON(t, ts.URL+"/v1/spread", `{"seeds":[1,2]}`) // cache hit
	postJSON(t, ts.URL+"/v1/spread", `{"seeds":[]}`)    // 400

	_, after := getBody(t, ts.URL+"/metrics")
	text := string(after)
	if !strings.Contains(text, "/v1/spread") {
		t.Fatalf("metrics missing /v1/spread row:\n%s", text)
	}
	var count, c2, c4 int
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "/v1/spread") {
			if _, err := fmt.Sscanf(line, "/v1/spread %d %d %d", &count, &c2, &c4); err != nil {
				t.Fatalf("unparseable row %q: %v", line, err)
			}
		}
	}
	if count != 3 || c2 != 2 || c4 != 1 {
		t.Fatalf("spread row = count %d, 2xx %d, 4xx %d; want 3, 2, 1\n%s", count, c2, c4, text)
	}
	if got := gaugeValue(t, text, "cache_hits"); got != "1" {
		t.Fatalf("cache_hits = %s, want 1\n%s", got, text)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv, ts := newTestServer(t, "rrset", nil)

	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain()")
	}
	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d %q, want 503", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/seeds", `{"k":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining seeds = %d, want 503 (body %s)", resp.StatusCode, body)
	}
}

// TestGracefulShutdownDrains exercises the full drain contract through a
// real http.Server: a request in flight when Shutdown begins completes
// with 200 while the listener stops accepting new work.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	oracle := &stubOracle{
		seeds: func(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
			entered <- struct{}{}
			<-release
			return []graph.NodeID{0}, 1, nil
		},
	}
	srv, ts := newStubServer(t, oracle, nil)

	inFlight := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k":1}`))
		if err != nil {
			inFlight <- -1
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	<-entered

	srv.Drain()
	shutdownDone := make(chan struct{})
	go func() {
		ts.Config.Shutdown(context.Background())
		close(shutdownDone)
	}()

	// Shutdown must wait for the in-flight request...
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a request was still in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if got := <-inFlight; got != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", got)
	}
	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight request drained")
	}
}

func TestGraphStats(t *testing.T) {
	_, ts := newTestServer(t, "rrset", nil)
	resp, body := getBody(t, ts.URL+"/v1/graph/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "nethept" || st.Nodes <= 0 || st.Arcs <= 0 ||
		st.Backend != "rrset" || st.IndexUnits != 3000 || st.IndexBytes <= 0 {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Graph: testGraph(t)}); err == nil {
		t.Fatal("New accepted a config without an oracle")
	}
	if _, err := New(Config{Oracle: &stubOracle{}}); err == nil {
		t.Fatal("New accepted a config without a graph")
	}
	if _, err := BuildOracle(context.Background(), "nope", testGraph(t), weights.IC, 10, 1, BuildOptions{Workers: 1}); err == nil {
		t.Fatal("BuildOracle accepted an unknown backend")
	}
}
