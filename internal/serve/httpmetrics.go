package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sigdata/goinfmax/internal/metrics"
)

// serverMetrics aggregates the serving-side instrumentation exposed at
// /metrics: per-route request/status counts and latency histograms, the
// in-flight gauge, admission rejections, recovered panics and response-
// cache hit/miss counts. All counters are either atomic or guarded by mu;
// memory is constant thanks to the fixed-bucket histograms.
type serverMetrics struct {
	mu     sync.Mutex
	routes map[string]*routeStats

	inFlight atomic.Int64
	rejected atomic.Int64
	panics   atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64

	// lastPanic records the most recent recovered panic for /metrics;
	// the full stack goes to the process log only.
	lastPanic string
}

// routeStats is one route's aggregate: total requests, per-class status
// counts and a latency histogram in milliseconds.
type routeStats struct {
	requests int64
	status2x int64
	status4x int64
	status5x int64
	latency  *metrics.Histogram
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{routes: make(map[string]*routeStats)}
}

func (m *serverMetrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{latency: metrics.NewHistogram(metrics.LatencyBuckets())}
		m.routes[route] = rs
	}
	rs.requests++
	switch {
	case status >= 500:
		rs.status5x++
	case status >= 400:
		rs.status4x++
	default:
		rs.status2x++
	}
	rs.latency.Observe(float64(d.Microseconds()) / 1000)
}

func (m *serverMetrics) enter()  { m.inFlight.Add(1) }
func (m *serverMetrics) leave()  { m.inFlight.Add(-1) }
func (m *serverMetrics) reject() { m.rejected.Add(1) }

func (m *serverMetrics) panicked(route string, value interface{}, stack []byte) {
	m.panics.Add(1)
	m.mu.Lock()
	m.lastPanic = fmt.Sprintf("%s: %v", route, value)
	m.mu.Unlock()
	_ = stack // callers log it; /metrics shows only the summary line
}

func (m *serverMetrics) cacheHit()  { m.hits.Add(1) }
func (m *serverMetrics) cacheMiss() { m.misses.Add(1) }

// lifecycleStats is the oracle-lifecycle slice of /metrics: the serving
// mode (building/degraded/ready), the oracle generation, and the last
// build failure if any.
type lifecycleStats struct {
	Mode       string
	Generation uint64
	LastErr    string
}

// render writes the plain-text /metrics payload: a requests table (the
// metrics.Table renderer, same style the benchmark CLIs print) followed by
// a server gauge table.
func (m *serverMetrics) render(w io.Writer, oracle OracleStats, lc lifecycleStats, gateCap, cacheLen, cacheCap int) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	req := metrics.NewTable("requests",
		"route", "count", "2xx", "4xx", "5xx", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
	all := &routeStats{latency: metrics.NewHistogram(metrics.LatencyBuckets())}
	for _, name := range names {
		rs := m.routes[name]
		req.AddRow(name, rs.requests, rs.status2x, rs.status4x, rs.status5x,
			rs.latency.Mean(), rs.latency.Quantile(0.50), rs.latency.Quantile(0.95),
			rs.latency.Quantile(0.99), rs.latency.Max())
		all.requests += rs.requests
		all.status2x += rs.status2x
		all.status4x += rs.status4x
		all.status5x += rs.status5x
		all.latency.Merge(rs.latency)
	}
	if len(names) > 1 {
		req.AddRow("(all)", all.requests, all.status2x, all.status4x, all.status5x,
			all.latency.Mean(), all.latency.Quantile(0.50), all.latency.Quantile(0.95),
			all.latency.Quantile(0.99), all.latency.Max())
	}
	lastPanic := m.lastPanic
	m.mu.Unlock()

	if err := req.Render(w); err != nil {
		return err
	}

	srv := metrics.NewTable("server", "gauge", "value")
	srv.AddRow("in_flight", m.inFlight.Load())
	srv.AddRow("admission_capacity", int64(gateCap))
	srv.AddRow("rejected_429", m.rejected.Load())
	srv.AddRow("panics_recovered", m.panics.Load())
	srv.AddRow("cache_hits", m.hits.Load())
	srv.AddRow("cache_misses", m.misses.Load())
	srv.AddRow("cache_entries", fmt.Sprintf("%d/%d", cacheLen, cacheCap))
	srv.AddRow("oracle_backend", oracle.Backend)
	srv.AddRow("oracle_index_units", int64(oracle.Units))
	srv.AddRow("oracle_index_bytes", oracle.Bytes)
	srv.AddRow("oracle_mode", lc.Mode)
	srv.AddRow("oracle_generation", int64(lc.Generation))
	if lc.LastErr != "" {
		srv.AddRow("oracle_last_build_error", lc.LastErr)
	}
	if lastPanic != "" {
		srv.AddRow("last_panic", lastPanic)
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	return srv.Render(w)
}
