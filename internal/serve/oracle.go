package serve

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"github.com/sigdata/goinfmax/internal/algo/rrset"
	"github.com/sigdata/goinfmax/internal/algo/snapshot"
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/metrics"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Oracle answers online influence queries over one fixed (graph, weight
// scheme) pair from a precomputed in-memory index. Implementations must be
// safe for concurrent use and must honor ctx cancellation promptly — the
// server propagates per-request deadlines through it.
type Oracle interface {
	// Backend names the index substrate ("rrset", "snapshot").
	Backend() string
	// Spread estimates σ(seeds) from the index.
	Spread(ctx context.Context, seeds []graph.NodeID) (float64, error)
	// Seeds selects k seeds greedily at query time and returns them with
	// the index's spread estimate for the selected set.
	Seeds(ctx context.Context, k int) ([]graph.NodeID, float64, error)
	// IndexUnits returns the number of precomputed units (RR sets,
	// snapshots) backing the oracle.
	IndexUnits() int
	// IndexBytes returns the approximate resident size of the index.
	IndexBytes() int64
}

// Backends lists the supported -backend values.
func Backends() []string { return []string{"rrset", "snapshot"} }

// BuildOptions tunes the parallel phases of an oracle build. The built
// index — and therefore every body the server will ever emit — is
// byte-identical for any combination of values, preserving the
// replica-determinism contract.
type BuildOptions struct {
	// Workers parallelizes the rrset backend's sampling phase (values < 1
	// mean GOMAXPROCS).
	Workers int
	// StealChunk overrides the work-stealing claim granularity in samples
	// (0 = automatic, sized from each batch).
	StealChunk int64
}

// BuildOracle constructs the named backend over g. size is the index size
// (θ RR sets or R snapshots; 0 picks a backend-specific default scaled to
// the graph), seed is the deterministic build seed, and ctx cancels a
// build in flight (startup SIGINT). The build cost is paid once; queries
// then run from memory.
func BuildOracle(ctx context.Context, backend string, g graph.G, model weights.Model, size int64, seed uint64, opt BuildOptions) (Oracle, error) {
	cctx := core.NewContext(g, model, 1, seed)
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	cctx.Workers = workers
	cctx.StealChunk = opt.StealChunk
	// Bridge context.Context cancellation into the core.Context the build
	// loops poll; AfterFunc's goroutine only sets the atomic cancel flag.
	stop := context.AfterFunc(ctx, func() { cctx.Cancel(core.ErrCancelled) })
	defer stop()
	switch strings.ToLower(backend) {
	case "rrset":
		theta := size
		if theta <= 0 {
			theta = defaultTheta(g.N())
		}
		ix, err := rrset.BuildIndex(cctx, theta)
		if err != nil {
			return nil, fmt.Errorf("serve: rrset index build: %w", err)
		}
		return &rrOracle{ix: ix}, nil
	case "snapshot":
		r := int(size)
		if r <= 0 {
			r = defaultSnapshots
		}
		pool, err := snapshot.BuildPool(cctx, r)
		if err != nil {
			return nil, fmt.Errorf("serve: snapshot pool build: %w", err)
		}
		return &snapOracle{pool: pool}, nil
	default:
		return nil, fmt.Errorf("serve: unknown oracle backend %q (want one of %v)", backend, Backends())
	}
}

// defaultTheta scales the RR-set count with the graph: 4 samples per node,
// floored at 50k (small graphs need absolute mass for stable estimates)
// and capped at 2M (build time and memory on large stand-ins).
func defaultTheta(n int32) int64 {
	theta := int64(n) * 4
	if theta < 50_000 {
		theta = 50_000
	}
	if theta > 2_000_000 {
		theta = 2_000_000
	}
	return theta
}

// defaultSnapshots is PMC's paper-optimal snapshot count (Table 2).
const defaultSnapshots = 200

// pollContext adapts a context.Context to the poll func the index
// substrates call between units of work.
func pollContext(ctx context.Context) func() error {
	return ctx.Err
}

// rrOracle serves queries from a precomputed RR-set index.
type rrOracle struct {
	ix *rrset.Index
}

func (o *rrOracle) Backend() string { return "rrset" }

func (o *rrOracle) Spread(ctx context.Context, seeds []graph.NodeID) (float64, error) {
	// A point query is one inversion scan — cheap enough that a single
	// up-front deadline check suffices.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return o.ix.SpreadOf(seeds), nil
}

func (o *rrOracle) Seeds(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
	return o.ix.SelectSeeds(k, pollContext(ctx))
}

func (o *rrOracle) IndexUnits() int { return o.ix.NumSets() }

func (o *rrOracle) IndexBytes() int64 { return o.ix.MemoryBytes() }

// snapOracle serves queries from a precomputed pool of condensed
// live-edge snapshots.
type snapOracle struct {
	pool *snapshot.Pool
}

func (o *snapOracle) Backend() string { return "snapshot" }

func (o *snapOracle) Spread(ctx context.Context, seeds []graph.NodeID) (float64, error) {
	return o.pool.SpreadOf(seeds, pollContext(ctx))
}

func (o *snapOracle) Seeds(ctx context.Context, k int) ([]graph.NodeID, float64, error) {
	return o.pool.SelectSeeds(k, pollContext(ctx))
}

func (o *snapOracle) IndexUnits() int { return o.pool.NumSnapshots() }

func (o *snapOracle) IndexBytes() int64 { return o.pool.MemoryBytes() }

// OracleStats summarizes an oracle for /v1/graph/stats and /metrics.
type OracleStats struct {
	Backend string
	Units   int
	Bytes   int64
}

// StatsOf extracts the summary.
func StatsOf(o Oracle) OracleStats {
	return OracleStats{Backend: o.Backend(), Units: o.IndexUnits(), Bytes: o.IndexBytes()}
}

// String renders e.g. "rrset: 200000 units, 12.3MB".
func (s OracleStats) String() string {
	return fmt.Sprintf("%s: %d units, %s", s.Backend, s.Units, metrics.HumanBytes(s.Bytes))
}
