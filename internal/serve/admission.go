package serve

import (
	"net/http"
	"runtime/debug"
	"time"
)

// Admission control and panic isolation
//
// The offline resilience layer (internal/core/resilience.go) supervises
// each benchmark cell; this file is its per-request counterpart. Every
// query handler runs (a) behind a bounded semaphore so overload degrades
// to fast 429s instead of an unbounded goroutine pile-up, (b) under a
// deadline derived from the request's time budget, and (c) inside a
// recover guard so one panicking request cannot take down the process —
// the same invariant gosupervise enforces for goroutines, applied to the
// net/http handler boundary.

// gate is a counting semaphore bounding concurrently admitted queries.
type gate chan struct{}

func newGate(n int) gate { return make(gate, n) }

// tryAcquire claims a slot without blocking; false means saturated.
func (g gate) tryAcquire() bool {
	select {
	case g <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g gate) release() { <-g }

// statusRecorder captures the status code and body size a handler wrote,
// for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// instrument wraps h with status/latency capture and panic isolation.
// A recovered panic yields a 500 (when the handler had not yet written)
// and bumps the panics counter; the server keeps serving.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.met.panicked(route, p, debug.Stack())
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError, "internal error")
				}
			}
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			s.met.observe(route, rec.status, time.Since(start))
		}()
		h(rec, r)
	}
}

// admit wraps h with the drain check, the admission gate and the
// per-request deadline; it is applied to the query endpoints only —
// health and metrics stay cheap and ungated so they remain observable
// under overload.
func (s *Server) admit(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrument(route, func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if !s.gate.tryAcquire() {
			s.met.reject()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server saturated: admission gate full")
			return
		}
		defer s.gate.release()
		s.met.enter()
		defer s.met.leave()
		h(w, r)
	})
}
