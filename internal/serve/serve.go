// Package serve implements imserve's online influence-query service: the
// batch platform's estimation substrates (RR-set index, snapshot pool)
// repackaged as a precomputed in-memory oracle behind JSON-over-HTTP
// endpoints.
//
// The batch CLIs pay full algorithm cost per invocation; sketch-based
// influence oracles (Cohen et al., arXiv:1408.6282) show the sampling
// phase can be hoisted to startup and amortized across every query. At
// boot the server builds one Oracle over a fixed (graph, weight scheme)
// pair and then answers:
//
//	POST /v1/spread      σ estimate for a client seed set (optionally
//	                     MC-refined with per-request deterministic RNG)
//	POST /v1/seeds       top-k selection at query time (per-request k
//	                     and time budget)
//	GET  /v1/graph/stats graph + oracle descriptors
//	GET  /healthz        liveness (503 while draining)
//	GET  /metrics        plain-text counters, latency histograms, gauges
//
// Production posture reuses the PR-1 resilience vocabulary per request:
// deadlines propagate into oracle calls as cooperative polls, a bounded
// admission gate converts overload into fast 429s, handlers are
// panic-isolated, responses are cached in an LRU keyed by canonicalized
// request, and every random draw derives from the server seed so two
// replicas started with the same seed serve byte-identical bodies.
package serve

import (
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Config assembles a Server. Zero fields take the documented defaults;
// Oracle and Graph are mandatory.
type Config struct {
	// Oracle answers the influence queries. It is wrapped in a
	// single-generation, always-ready Lifecycle; set Lifecycle instead for
	// the managed boot (snapshot load, degraded mode, background rebuild).
	// Exactly one of Oracle and Lifecycle must be set.
	Oracle Oracle
	// Lifecycle owns the serving oracle across generations (see
	// StartOracle). /readyz reports its state, responses from a degraded
	// generation are stamped degraded:true, and cache keys embed the
	// generation so answers never leak across swaps.
	Lifecycle *Lifecycle
	// Graph is the served graph (already weighted by Scheme).
	Graph graph.G
	// Model is the diffusion semantics the oracle was built under.
	Model weights.Model
	// SchemeName names the weight scheme for /v1/graph/stats.
	SchemeName string
	// Seed is the server seed: per-request RNG streams (MC-refined spread
	// estimates) derive deterministically from it and the canonical
	// request, never from the wall clock.
	Seed uint64
	// MaxInFlight bounds concurrently admitted queries (default
	// 4×GOMAXPROCS). Excess requests receive 429 immediately.
	MaxInFlight int
	// CacheEntries sizes the LRU response cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// DefaultBudget is the per-request deadline when the client sends no
	// budget_ms (default 2s).
	DefaultBudget time.Duration
	// MaxBudget caps the client-requested budget_ms (default 30s).
	MaxBudget time.Duration
	// MaxK caps per-request k (default 200).
	MaxK int
	// MaxEvalSims caps the MC refinement simulations a /v1/spread request
	// may demand (default 20000).
	MaxEvalSims int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 200
	}
	if c.MaxEvalSims <= 0 {
		c.MaxEvalSims = 20_000
	}
	return c
}

// Server is the influence-query service. Construct with New, expose with
// Handler, and call Drain before http.Server.Shutdown for a graceful
// exit: in-flight requests finish, new ones get 503, and load balancers
// see /healthz flip.
type Server struct {
	cfg      Config
	lc       *Lifecycle
	mux      *http.ServeMux
	gate     gate
	cache    *lru
	met      *serverMetrics
	draining atomic.Bool
}

// New validates cfg, applies defaults and wires the routes.
func New(cfg Config) (*Server, error) {
	lc := cfg.Lifecycle
	switch {
	case lc == nil && cfg.Oracle == nil:
		return nil, errNoOracle
	case lc != nil && cfg.Oracle != nil:
		return nil, errBothOracles
	case lc == nil:
		lc = NewReadyLifecycle(cfg.Oracle)
	}
	if cfg.Graph == nil {
		return nil, errNoGraph
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		lc:    lc,
		mux:   http.NewServeMux(),
		gate:  newGate(cfg.MaxInFlight),
		cache: newLRU(cfg.CacheEntries),
		met:   newServerMetrics(),
	}
	s.mux.HandleFunc("POST /v1/spread", s.admit("/v1/spread", s.handleSpread))
	s.mux.HandleFunc("POST /v1/seeds", s.admit("/v1/seeds", s.handleSeeds))
	s.mux.HandleFunc("GET /v1/graph/stats", s.instrument("/v1/graph/stats", s.handleGraphStats))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain flips the server into draining mode: /healthz answers 503 so load
// balancers stop routing here, and new query requests are refused with
// 503 while in-flight ones run to completion. Pair with
// http.Server.Shutdown, which waits for the in-flight set.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CacheLen returns the current response-cache entry count.
func (s *Server) CacheLen() int { return s.cache.Len() }

// Stats is a point-in-time snapshot of the admission and cache
// counters, for harnesses that assert gate invariants (bounded
// in-flight, monotone rejects) without parsing the /metrics text.
type Stats struct {
	InFlight    int64
	Rejected    int64
	Panics      int64
	CacheHits   int64
	CacheMisses int64
}

// Stats snapshots the server counters. The fields are read from
// independent atomics, so the snapshot is per-field consistent, not a
// single linearization point.
func (s *Server) Stats() Stats {
	return Stats{
		InFlight:    s.met.inFlight.Load(),
		Rejected:    s.met.rejected.Load(),
		Panics:      s.met.panics.Load(),
		CacheHits:   s.met.hits.Load(),
		CacheMisses: s.met.misses.Load(),
	}
}

// MaxInFlight reports the admission-gate capacity after defaulting.
func (s *Server) MaxInFlight() int { return s.cfg.MaxInFlight }
