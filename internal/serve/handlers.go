package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
)

var (
	errNoOracle    = errors.New("serve: one of Config.Oracle or Config.Lifecycle is required")
	errBothOracles = errors.New("serve: Config.Oracle and Config.Lifecycle are mutually exclusive")
	errNoGraph     = errors.New("serve: Config.Graph is required")
)

// maxBodyBytes bounds request bodies; the largest legitimate request is a
// seed list, and even a full million-node seed set fits in 8MB.
const maxBodyBytes = 8 << 20

// spreadRequest is the POST /v1/spread body.
type spreadRequest struct {
	// Seeds is the seed set to evaluate (required, non-empty).
	Seeds []graph.NodeID `json:"seeds"`
	// EvalSims > 0 refines the oracle estimate with that many Monte-Carlo
	// simulations of the decoupled evaluator (paper Alg. 1), seeded
	// deterministically from the server seed and the canonical request.
	EvalSims int `json:"evalsims,omitempty"`
	// BudgetMS overrides the server's default per-request deadline.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// spreadResponse is the POST /v1/spread reply. Field order and values are
// deterministic functions of (graph, scheme, server seed, request), which
// the determinism tests assert byte-for-byte.
type spreadResponse struct {
	Backend string         `json:"backend"`
	Seeds   []graph.NodeID `json:"seeds"` // canonicalized: sorted, deduplicated
	Spread  float64        `json:"spread"`
	// StdErr is the MC standard error, present only when evalsims > 0.
	StdErr *float64 `json:"stderr,omitempty"`
	// EvalSims echoes the applied simulation count when MC-refined.
	EvalSims int `json:"evalsims,omitempty"`
	// Degraded is true when this body was computed while the server was
	// serving the fallback oracle (see Lifecycle); absent from ready
	// answers, so ready bodies are byte-identical to pre-lifecycle ones.
	Degraded bool `json:"degraded,omitempty"`
}

// seedsRequest is the POST /v1/seeds body.
type seedsRequest struct {
	// K is the number of seeds to select (required, 1..MaxK).
	K int `json:"k"`
	// BudgetMS overrides the server's default per-request deadline.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// seedsResponse is the POST /v1/seeds reply.
type seedsResponse struct {
	Backend string         `json:"backend"`
	K       int            `json:"k"`
	Seeds   []graph.NodeID `json:"seeds"` // in selection order
	Spread  float64        `json:"spread"`
	// Degraded marks answers computed by the fallback oracle.
	Degraded bool `json:"degraded,omitempty"`
}

// statsResponse is the GET /v1/graph/stats reply.
type statsResponse struct {
	Dataset    string `json:"dataset"`
	Nodes      int32  `json:"nodes"`
	Arcs       int64  `json:"arcs"`
	Directed   bool   `json:"directed"`
	Model      string `json:"model"`
	Scheme     string `json:"scheme"`
	Backend    string `json:"backend"`
	IndexUnits int    `json:"index_units"`
	IndexBytes int64  `json:"index_bytes"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, err := json.Marshal(errorResponse{Error: msg})
	if err != nil {
		body = []byte(`{"error":"internal error"}`)
	}
	writeJSON(w, status, body)
}

// decodeBody parses a JSON request body with a size cap and strict field
// checking, so typos like "evalsim" fail loudly instead of silently
// running with defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return false
	}
	return true
}

// canonicalSeeds validates, sorts and deduplicates a client seed set. The
// canonical form is the cache key and the echoed response field, so two
// requests naming the same set in different orders share one cache entry
// and one answer.
func canonicalSeeds(seeds []graph.NodeID, n int32) ([]graph.NodeID, error) {
	if len(seeds) == 0 {
		return nil, errors.New("seeds must be non-empty")
	}
	out := make([]graph.NodeID, len(seeds))
	copy(out, seeds)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	var prev graph.NodeID = -1
	for _, v := range out {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("seed %d out of range [0, %d)", v, n)
		}
		if v == prev {
			continue
		}
		dedup = append(dedup, v)
		prev = v
	}
	return dedup, nil
}

// requestBudget derives the per-request deadline from the client's
// budget_ms, clamped into (0, MaxBudget].
func (s *Server) requestBudget(budgetMS int64) (time.Duration, error) {
	if budgetMS < 0 {
		return 0, errors.New("budget_ms must be >= 0")
	}
	if budgetMS == 0 {
		return s.cfg.DefaultBudget, nil
	}
	d := time.Duration(budgetMS) * time.Millisecond
	if d > s.cfg.MaxBudget {
		d = s.cfg.MaxBudget
	}
	return d, nil
}

// requestSeed derives the deterministic RNG seed for one request: FNV-1a
// over the canonical cache key, mixed with the server seed. Equal requests
// get equal streams on every replica started with the same -seed, and the
// wall clock is never consulted (the detrand contract).
func (s *Server) requestSeed(key string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	return h.Sum64() ^ s.cfg.Seed
}

// mapOracleErr translates a failed oracle call into an HTTP status:
// deadline exhaustion is the request's own budget (504), anything else is
// a server-side failure (500). Client disconnects surface as cancellation
// and get the 504 too — the connection is gone either way.
func mapOracleErr(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "request budget exhausted before the oracle finished"
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "request cancelled before the oracle finished"
	default:
		return http.StatusInternalServerError, fmt.Sprintf("oracle failure: %v", err)
	}
}

// serveCached answers from the LRU when possible; on miss it runs compute,
// stores the result and serves it. compute returns the response body or an
// (status, message) error pair.
func (s *Server) serveCached(w http.ResponseWriter, key string, compute func() ([]byte, int, string)) {
	if body, ok := s.cache.Get(key); ok {
		s.met.cacheHit()
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, body)
		return
	}
	s.met.cacheMiss()
	body, status, msg := compute()
	if body == nil {
		writeError(w, status, msg)
		return
	}
	s.cache.Put(key, body)
	w.Header().Set("X-Cache", "miss")
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSpread(w http.ResponseWriter, r *http.Request) {
	var req spreadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	seeds, err := canonicalSeeds(req.Seeds, s.cfg.Graph.N())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.EvalSims < 0 || req.EvalSims > s.cfg.MaxEvalSims {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("evalsims must be in [0, %d]", s.cfg.MaxEvalSims))
		return
	}
	budget, err := s.requestBudget(req.BudgetMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// The request key alone feeds requestSeed so MC streams stay identical
	// across replicas regardless of their generation history; the cache key
	// additionally embeds the oracle generation so a body computed by one
	// generation (say, degraded) can never be replayed as another's answer.
	cur := s.lc.current()
	reqKey := spreadCacheKey(seeds, req.EvalSims)
	s.serveCached(w, genCacheKey(cur.gen, reqKey), func() ([]byte, int, string) {
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		resp := spreadResponse{
			Backend: cur.oracle.Backend(), Seeds: seeds,
			EvalSims: req.EvalSims, Degraded: cur.degraded,
		}
		if req.EvalSims > 0 {
			// MC refinement through the decoupled evaluator (paper Alg. 1);
			// bit-identical for a given seed regardless of worker count.
			est, err := diffusion.EstimateSpreadParallelCtx(ctx, s.cfg.Graph, s.cfg.Model,
				seeds, req.EvalSims, s.requestSeed(reqKey), 0)
			if err != nil {
				status, msg := mapOracleErr(err)
				return nil, status, msg
			}
			resp.Spread = est.Mean
			se := est.StdErr
			resp.StdErr = &se
		} else {
			sp, err := cur.oracle.Spread(ctx, seeds)
			if err != nil {
				status, msg := mapOracleErr(err)
				return nil, status, msg
			}
			resp.Spread = sp
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, http.StatusInternalServerError, "encoding failure"
		}
		return body, 0, ""
	})
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	var req seedsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("k must be in [1, %d]", s.cfg.MaxK))
		return
	}
	budget, err := s.requestBudget(req.BudgetMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	cur := s.lc.current()
	reqKey := "seeds|k=" + strconv.Itoa(req.K)
	s.serveCached(w, genCacheKey(cur.gen, reqKey), func() ([]byte, int, string) {
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		seeds, spread, err := cur.oracle.Seeds(ctx, req.K)
		if err != nil {
			status, msg := mapOracleErr(err)
			return nil, status, msg
		}
		body, err := json.Marshal(seedsResponse{
			Backend: cur.oracle.Backend(), K: req.K, Seeds: seeds, Spread: spread,
			Degraded: cur.degraded,
		})
		if err != nil {
			return nil, http.StatusInternalServerError, "encoding failure"
		}
		return body, 0, ""
	})
}

func (s *Server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	g := s.cfg.Graph
	cur := s.lc.current()
	body, err := json.Marshal(statsResponse{
		Dataset:    g.Name(),
		Nodes:      g.N(),
		Arcs:       g.M(),
		Directed:   g.Directed(),
		Model:      s.cfg.Model.String(),
		Scheme:     s.cfg.SchemeName,
		Backend:    cur.oracle.Backend(),
		IndexUnits: cur.oracle.IndexUnits(),
		IndexBytes: cur.oracle.IndexBytes(),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding failure")
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz reports the oracle lifecycle state, distinct from the
// /healthz liveness probe: a degraded replica is alive AND ready (it
// answers queries, just flagged ones — pulling it from rotation would
// turn a quality loss into an availability loss), while a building
// replica is alive but not yet ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	state := s.lc.State()
	if state == StateBuilding {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = io.WriteString(w, state.String()+"\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	cur := s.lc.current()
	lcs := lifecycleStats{
		Mode:       s.lc.State().String(),
		Generation: cur.gen,
		LastErr:    s.lc.LastBuildError(),
	}
	err := s.met.render(w, StatsOf(cur.oracle), lcs, s.cfg.MaxInFlight, s.cache.Len(), s.cfg.CacheEntries)
	if err != nil {
		// Headers are gone; all we can do is log-less best effort.
		return
	}
}

// genCacheKey scopes a request cache key to one oracle generation. The
// RNG seed derivation deliberately uses the un-prefixed request key (see
// handleSpread), so this prefix affects cache identity only.
func genCacheKey(gen uint64, reqKey string) string {
	return "g" + strconv.FormatUint(gen, 10) + "|" + reqKey
}

// spreadCacheKey canonicalizes a spread request: sorted unique seeds plus
// the MC refinement level.
func spreadCacheKey(seeds []graph.NodeID, evalSims int) string {
	// Pre-size: "spread|ev=NNNN|" plus ~7 bytes per seed.
	buf := make([]byte, 0, 16+8*len(seeds))
	buf = append(buf, "spread|ev="...)
	buf = strconv.AppendInt(buf, int64(evalSims), 10)
	buf = append(buf, '|')
	for i, v := range seeds {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return string(buf)
}
