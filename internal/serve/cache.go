package serve

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded least-recently-used response cache mapping a
// canonicalized request key to the exact response body served for it.
//
// Because every cacheable response is a deterministic function of the
// (graph, scheme, server seed, canonical request) tuple, serving the
// stored bytes is indistinguishable from recomputing them — the cache can
// never change a response, only its latency. Stored values are aliased,
// not copied; callers must treat them as immutable.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU builds a cache holding at most capacity entries; capacity <= 0
// disables caching (Get always misses, Put drops).
func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached body for key, marking it most recently used.
func (c *lru) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores the body for key, evicting the least recently used entry
// beyond capacity. Re-putting an existing key refreshes its value and
// recency.
func (c *lru) Put(key string, val []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current entry count.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
