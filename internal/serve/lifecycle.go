package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/persist"
	"github.com/sigdata/goinfmax/internal/persist/failpoint"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Oracle lifecycle
//
// PR-3's server assumed an oracle existed before the first request and
// lived unchanged forever. This file makes the oracle a managed resource
// with a state machine:
//
//	building ──build ok──────────────▶ ready
//	building ──deadline/build fail──▶ degraded ──rebuild ok──▶ ready
//
// A replica in `degraded` serves the cheap degree-heuristic oracle
// (every body stamped degraded:true) while a supervised background
// goroutine keeps building the real one and atomically swaps it in.
// Every swap bumps a generation counter; response-cache keys embed the
// generation, so a body computed by one oracle can never be replayed as
// an answer from another.

// OracleState enumerates the lifecycle phases /readyz reports.
type OracleState int32

const (
	// StateBuilding: the real oracle build is still inside its deadline;
	// queries are answered by the fallback, flagged degraded.
	StateBuilding OracleState = iota
	// StateDegraded: the build missed its deadline or failed; the
	// fallback keeps serving while recovery continues in the background.
	StateDegraded
	// StateReady: the real oracle is serving.
	StateReady
)

func (s OracleState) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateDegraded:
		return "degraded"
	case StateReady:
		return "ready"
	default:
		return fmt.Sprintf("OracleState(%d)", int32(s))
	}
}

// oracleGen is one immutable (oracle, generation, quality) snapshot; the
// lifecycle swaps whole values atomically so a handler always observes a
// consistent triple.
type oracleGen struct {
	oracle   Oracle
	gen      uint64
	degraded bool
}

// Lifecycle owns the serving oracle across boot, degradation and
// background recovery. Handlers read Current (lock-free); transitions
// serialize on mu.
type Lifecycle struct {
	cur   atomic.Pointer[oracleGen]
	state atomic.Int32

	mu      sync.Mutex
	nextGen uint64
	lastErr string

	readyOnce sync.Once
	readyCh   chan struct{}
}

// NewReadyLifecycle wraps an already-built oracle: generation 1, ready.
// This is the classic boot path (and the Config.Oracle compatibility
// path).
func NewReadyLifecycle(o Oracle) *Lifecycle {
	lc := newLifecycle()
	lc.swapReady(o)
	return lc
}

func newLifecycle() *Lifecycle {
	lc := &Lifecycle{readyCh: make(chan struct{}), nextGen: 1}
	lc.state.Store(int32(StateBuilding))
	return lc
}

// NewDegradedLifecycle wraps a fallback oracle in a lifecycle pinned to
// the degraded state: every response it serves is stamped
// degraded:true until PromoteReady swaps the real oracle in. Load
// harnesses use it to profile degraded serving and the degraded→ready
// transition at a chosen instant instead of racing StartOracle's
// background build.
func NewDegradedLifecycle(fallback Oracle) *Lifecycle {
	lc := newLifecycle()
	lc.startFallback(fallback)
	lc.state.Store(int32(StateDegraded))
	return lc
}

// PromoteReady installs o as the serving oracle under a fresh
// generation and marks the lifecycle ready, returning the new
// generation. It is the same swap StartOracle's background build
// performs; exporting it lets a harness fire the transition mid-load.
func (lc *Lifecycle) PromoteReady(o Oracle) uint64 { return lc.swapReady(o) }

// startFallback installs the degraded fallback as generation 1 while the
// state remains building.
func (lc *Lifecycle) startFallback(fallback Oracle) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	gen := lc.nextGen
	lc.nextGen++
	lc.cur.Store(&oracleGen{oracle: fallback, gen: gen, degraded: true})
}

// current returns the serving (oracle, generation, degraded) triple.
func (lc *Lifecycle) current() *oracleGen { return lc.cur.Load() }

// CurrentOracle returns the serving oracle, its generation, and whether
// it is the degraded fallback.
func (lc *Lifecycle) CurrentOracle() (Oracle, uint64, bool) {
	c := lc.current()
	return c.oracle, c.gen, c.degraded
}

// State returns the lifecycle phase.
func (lc *Lifecycle) State() OracleState { return OracleState(lc.state.Load()) }

// Ready returns a channel closed when the real oracle first becomes the
// serving oracle (load, in-deadline build, or background recovery).
func (lc *Lifecycle) Ready() <-chan struct{} { return lc.readyCh }

// LastBuildError reports the most recent build failure ("" if none), for
// /metrics and logs.
func (lc *Lifecycle) LastBuildError() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.lastErr
}

// swapReady installs o as the serving oracle under a fresh generation and
// marks the lifecycle ready. Returns the new generation.
func (lc *Lifecycle) swapReady(o Oracle) uint64 {
	lc.mu.Lock()
	gen := lc.nextGen
	lc.nextGen++
	lc.cur.Store(&oracleGen{oracle: o, gen: gen})
	lc.state.Store(int32(StateReady))
	lc.mu.Unlock()
	lc.readyOnce.Do(func() { close(lc.readyCh) })
	return gen
}

// degradeIfBuilding transitions building→degraded (recording cause) and
// reports whether it did. It never demotes a ready lifecycle: if the
// build won the race against the deadline timer, the timer's call is a
// no-op.
func (lc *Lifecycle) degradeIfBuilding(cause error) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if OracleState(lc.state.Load()) != StateBuilding {
		return false
	}
	lc.state.Store(int32(StateDegraded))
	if cause != nil {
		lc.lastErr = cause.Error()
	}
	return true
}

// noteBuildError records a failed build attempt.
func (lc *Lifecycle) noteBuildError(err error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lastErr = err.Error()
}

// BootSpec describes how to obtain the serving oracle at startup.
type BootSpec struct {
	// Backend, Graph, Model, IndexSize, Seed, Workers parameterize
	// BuildOracle. IndexSize is the raw flag value (0 = auto): it is part
	// of the snapshot compatibility key, so pass it pre-defaulting.
	Backend   string
	Graph     graph.G
	Model     weights.Model
	IndexSize int64
	Seed      uint64
	Workers   int
	// StealChunk tunes the build's work-stealing claim granularity
	// (see BuildOptions.StealChunk; 0 = automatic). Not part of the
	// snapshot compatibility key: it cannot change the built index.
	StealChunk int64
	// SnapshotPath, when non-empty, is tried first on boot (cold-start
	// from a verified snapshot) and written after a successful build.
	SnapshotPath string
	// BuildDeadline > 0 enables degraded mode: if no oracle is ready
	// within it, StartOracle returns a degraded lifecycle and the build
	// continues in the background. 0 preserves the classic blocking boot
	// (build failure is fatal).
	BuildDeadline time.Duration
	// RebuildAttempts bounds background build attempts in degraded mode
	// (default 3); RebuildBackoff separates them (default 500ms).
	RebuildAttempts int
	RebuildBackoff  time.Duration
	// Logf receives one-line lifecycle events (nil discards them).
	Logf func(format string, args ...interface{})
}

func (spec BootSpec) logf(format string, args ...interface{}) {
	if spec.Logf != nil {
		spec.Logf(format, args...)
	}
}

// header derives the snapshot compatibility key for this boot.
func (spec BootSpec) header() persist.Header {
	return persist.Header{
		Backend:     strings.ToLower(spec.Backend),
		Fingerprint: persist.GraphFingerprint(spec.Graph, spec.Model.String()),
		BuildSeed:   spec.Seed,
		IndexSize:   spec.IndexSize,
		Nodes:       spec.Graph.N(),
	}
}

// StartOracle runs the crash-safe boot sequence and returns a Lifecycle
// the server can use immediately:
//
//  1. If SnapshotPath is set, try to load it. A verified snapshot makes
//     the replica ready in seconds with no sampling at all. Any
//     verification failure — missing file, torn write, checksum or
//     fingerprint mismatch, stale version — is logged and falls through
//     to a fresh build; it is never fatal.
//  2. With BuildDeadline == 0, build synchronously (the classic boot): an
//     error is returned to the caller and the process exits.
//  3. With BuildDeadline > 0, return immediately with a lifecycle that
//     serves the degree fallback while a supervised goroutine builds the
//     real oracle; whichever of {build completes, deadline fires} happens
//     first decides whether the caller ever observes the degraded state.
//
// After any successful build (not load), the snapshot is written to
// SnapshotPath with the atomic protocol; a save failure is logged and
// serving continues.
func StartOracle(ctx context.Context, spec BootSpec) (*Lifecycle, error) {
	want := spec.header()
	if spec.SnapshotPath != "" {
		start := time.Now()
		snap, err := persist.Load(spec.SnapshotPath, want)
		if err == nil {
			o := oracleFromSnapshot(snap)
			spec.logf("oracle loaded from snapshot %s (%s) in %s",
				spec.SnapshotPath, StatsOf(o), time.Since(start).Round(time.Millisecond))
			return NewReadyLifecycle(o), nil
		}
		if persist.IsMissing(err) {
			spec.logf("no oracle snapshot at %s: building from scratch", spec.SnapshotPath)
		} else {
			spec.logf("%v: falling back to a fresh build", err)
		}
	}

	if spec.BuildDeadline <= 0 {
		start := time.Now()
		o, err := buildOracleRecover(ctx, spec)
		if err != nil {
			return nil, err
		}
		spec.logf("oracle %s built in %s", StatsOf(o), time.Since(start).Round(time.Millisecond))
		lc := NewReadyLifecycle(o)
		saveOracleSnapshot(spec, want, o)
		return lc, nil
	}

	lc := newLifecycle()
	lc.startFallback(NewDegreeOracle(spec.Graph))
	timer := time.AfterFunc(spec.BuildDeadline, func() {
		if lc.degradeIfBuilding(fmt.Errorf("build exceeded the %s deadline", spec.BuildDeadline)) {
			spec.logf("oracle build still running after %s: serving degraded degree answers while it continues",
				spec.BuildDeadline)
		}
	})
	attempts := spec.RebuildAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := spec.RebuildBackoff
	if backoff <= 0 {
		backoff = 500 * time.Millisecond
	}
	go func() {
		defer func() {
			// Last-resort supervisor: buildOracleRecover converts build
			// panics to errors, so this only fires on a lifecycle bug —
			// the process must still outlive it (the gosupervise
			// invariant) and stay serving degraded.
			if p := recover(); p != nil {
				lc.noteBuildError(fmt.Errorf("oracle build supervisor panicked: %v", p))
				lc.degradeIfBuilding(fmt.Errorf("oracle build supervisor panicked: %v", p))
			}
		}()
		defer timer.Stop()
		start := time.Now()
		for attempt := 1; attempt <= attempts; attempt++ {
			o, err := buildOracleRecover(ctx, spec)
			if err == nil {
				gen := lc.swapReady(o)
				spec.logf("oracle %s ready in %s (generation %d)",
					StatsOf(o), time.Since(start).Round(time.Millisecond), gen)
				saveOracleSnapshot(spec, want, o)
				return
			}
			lc.noteBuildError(err)
			if ctx.Err() != nil {
				return // shutting down; no point degrading or retrying
			}
			if lc.degradeIfBuilding(err) {
				spec.logf("oracle build failed: %v; serving degraded degree answers while recovery continues", err)
			} else {
				spec.logf("oracle build attempt %d/%d failed: %v", attempt, attempts, err)
			}
			if attempt < attempts {
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return
				}
			}
		}
		spec.logf("oracle build failed after %d attempts; serving degraded until restart", attempts)
	}()
	return lc, nil
}

// buildOracleRecover runs BuildOracle with panic isolation: a panicking
// build (a substrate bug, an injected fault) becomes an ordinary error
// the lifecycle can degrade on, instead of killing the process.
func buildOracleRecover(ctx context.Context, spec BootSpec) (o Oracle, err error) {
	defer func() {
		if p := recover(); p != nil {
			o, err = nil, fmt.Errorf("oracle build panicked: %v", p)
		}
	}()
	if err := failpoint.Check("serve.build"); err != nil {
		return nil, err
	}
	return BuildOracle(ctx, spec.Backend, spec.Graph, spec.Model, spec.IndexSize, spec.Seed,
		BuildOptions{Workers: spec.Workers, StealChunk: spec.StealChunk})
}

// oracleFromSnapshot wraps a verified snapshot payload in its serving
// adapter.
func oracleFromSnapshot(snap *persist.Snapshot) Oracle {
	if snap.RRIndex != nil {
		return &rrOracle{ix: snap.RRIndex}
	}
	return &snapOracle{pool: snap.Pool}
}

// saveOracleSnapshot persists a freshly built oracle when the spec asks
// for it. Failure is logged and otherwise ignored: a replica that cannot
// write its snapshot still serves; it just cold-starts slower next time.
func saveOracleSnapshot(spec BootSpec, h persist.Header, o Oracle) {
	if spec.SnapshotPath == "" {
		return
	}
	snap := &persist.Snapshot{Header: h}
	switch t := o.(type) {
	case *rrOracle:
		snap.RRIndex = t.ix
	case *snapOracle:
		snap.Pool = t.pool
	default:
		return // fallback oracles are never worth persisting
	}
	start := time.Now()
	if err := persist.Save(spec.SnapshotPath, snap); err != nil {
		spec.logf("oracle snapshot save failed (serving continues without it): %v", err)
		return
	}
	spec.logf("oracle snapshot saved to %s in %s", spec.SnapshotPath, time.Since(start).Round(time.Millisecond))
}
