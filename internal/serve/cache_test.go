package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := newLRU(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "a" was just touched, so inserting "c" must evict "b".
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted despite being most recently used")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU(2)
	c.Put("a", []byte("old"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("new")) // refresh, not insert: no eviction, value replaced
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if v, _ := c.Get("a"); string(v) != "new" {
		t.Fatalf("Get(a) = %q, want new", v)
	}
	c.Put("c", []byte("3")) // "b" is now LRU
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; refresh did not move a to front")
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, cap := range []int{0, -1} {
		c := newLRU(cap)
		c.Put("a", []byte("1"))
		if _, ok := c.Get("a"); ok {
			t.Fatalf("cap %d: disabled cache stored an entry", cap)
		}
		if c.Len() != 0 {
			t.Fatalf("cap %d: Len = %d, want 0", cap, c.Len())
		}
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%64)
				if v, ok := c.Get(key); ok && len(v) == 0 {
					t.Error("empty value from cache")
					return
				}
				c.Put(key, []byte{byte(i)})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("Len = %d exceeds capacity 32", c.Len())
	}
}
