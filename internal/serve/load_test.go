package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sigdata/goinfmax/internal/loadgen"
	"github.com/sigdata/goinfmax/internal/weights"
)

// overloadWorkload is a pure /v1/spread mix with heavy MC refinement so
// each admitted request holds its admission slot long enough for the
// closed-loop workers to pile up on the gate. Nodes matches the 64-node
// testGraph.
func overloadWorkload() loadgen.Workload {
	return loadgen.Workload{Seed: 7, Nodes: 64, SpreadFrac: 1,
		SetMin: 1, SetMax: 5, KMin: 1, KMax: 5, EvalSims: 20000}
}

// TestGateBoundedUnderLoadgenOverload drives the real server through
// the loadgen closed-loop driver at 4× the gate capacity and checks the
// admission promises under genuine concurrency:
//
//   - in-flight never exceeds MaxInFlight (sampled throughout the phase),
//   - rejects are fast — in-process 429 p99 under 1ms — and accounted
//     (Stats().Rejected matches the driver's 429 count),
//   - /readyz stays responsive while the query gate is saturated.
func TestGateBoundedUnderLoadgenOverload(t *testing.T) {
	srv, _ := newTestServer(t, "rrset", func(c *Config) {
		c.MaxInFlight = 4
		c.CacheEntries = -1 // every admitted request does real oracle work
	})
	d := &loadgen.Driver{
		Target:      &loadgen.HandlerTarget{H: srv.Handler()},
		Workload:    overloadWorkload(),
		Workers:     16,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	}

	// Sample the in-flight gauge for the whole phase.
	done := make(chan struct{})
	peakCh := make(chan int64, 1)
	go func() {
		defer func() { _ = recover() }()
		var peak int64
		for {
			select {
			case <-done:
				peakCh <- peak
				return
			default:
			}
			if v := srv.Stats().InFlight; v > peak {
				peak = v
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	// Probe /readyz concurrently: the control plane must answer while
	// the query gate is saturated (it is instrumented, not admitted).
	readyzCh := make(chan string, 1)
	go func() {
		defer func() { _ = recover() }()
		for i := 0; i < 20; i++ {
			rec := httptest.NewRecorder()
			start := time.Now()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
			if rec.Code != http.StatusOK {
				readyzCh <- rec.Body.String()
				return
			}
			if time.Since(start) > 100*time.Millisecond {
				readyzCh <- "slow probe"
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		readyzCh <- ""
	}()

	ps, err := d.RunClosed(context.Background(), 400*time.Millisecond)
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if probe := <-readyzCh; probe != "" {
		t.Fatalf("/readyz misbehaved under saturation: %s", probe)
	}
	peak := <-peakCh
	if peak > 4 {
		t.Fatalf("in-flight peaked at %d, gate capacity is 4", peak)
	}
	if peak < 1 {
		t.Fatal("sampler never observed an admitted request: overload not reached")
	}
	if ps.Status429 == 0 || ps.OK == 0 {
		t.Fatalf("phase did not mix admits and rejects: %+v", ps)
	}
	if got := srv.Stats().Rejected; got != ps.Status429 {
		t.Fatalf("server counted %d rejects, driver saw %d", got, ps.Status429)
	}
	if ps.P99Reject429MS <= 0 || ps.P99Reject429MS >= 1 {
		t.Fatalf("fast-429 p99 = %.3fms, want (0, 1ms)", ps.P99Reject429MS)
	}
}

// TestPromoteReadyMidLoad profiles the degraded→ready swap under load:
// a server booted on NewDegradedLifecycle serves stamped fallback
// answers, PromoteReady fires mid-phase, and the same phase must
// contain both stamped and clean responses with no error in between.
func TestPromoteReadyMidLoad(t *testing.T) {
	g := testGraph(t)
	real, err := BuildOracle(context.Background(), "rrset", g, weights.IC, 3000, 42, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lc := NewDegradedLifecycle(NewDegreeOracle(g))
	srv, err := New(Config{Lifecycle: lc, Graph: g, Model: weights.IC,
		SchemeName: "WC", Seed: 42, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if lc.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded", lc.State())
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("/readyz while degraded: %d %q", rec.Code, rec.Body.String())
	}

	d := &loadgen.Driver{
		Target:   &loadgen.HandlerTarget{H: srv.Handler()},
		Workload: loadgen.Workload{Seed: 11, Nodes: 64}.WithDefaults(),
		Workers:  4,
	}
	timer := time.AfterFunc(100*time.Millisecond, func() { lc.PromoteReady(real) })
	defer timer.Stop()
	ps, err := d.RunClosed(context.Background(), 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ps.OK != ps.Requests {
		t.Fatalf("transition dropped requests: %+v", ps)
	}
	if ps.Degraded == 0 {
		t.Fatalf("no stamped responses before promotion: %+v", ps)
	}
	if ps.Degraded == ps.OK {
		t.Fatalf("promotion never took effect in-phase: %+v", ps)
	}
	if lc.State() != StateReady {
		t.Fatalf("state = %v after PromoteReady, want ready", lc.State())
	}
	if _, gen, degraded := lc.CurrentOracle(); degraded || gen < 2 {
		t.Fatalf("generation %d degraded=%v after promotion", gen, degraded)
	}
}
