package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/sigdata/goinfmax/internal/weights"
)

// newReplica stands up one full server stack — graph, oracle, server —
// from nothing but a seed, exactly as two imserve replicas would boot.
func newReplica(t *testing.T, backend string, seed uint64) *httptest.Server {
	return newReplicaWorkers(t, backend, seed, 1)
}

func newReplicaWorkers(t *testing.T, backend string, seed uint64, workers int) *httptest.Server {
	t.Helper()
	g := testGraph(t)
	oracle, err := BuildOracle(context.Background(), backend, g, weights.IC, 2000, seed, BuildOptions{Workers: workers, StealChunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Oracle: oracle, Graph: g, Model: weights.IC, SchemeName: "WC", Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestReplicaDeterminism asserts the serving contract from the package
// doc: two servers started with the same -seed answer the same request
// sequence with byte-identical bodies — including the MC-refined spread
// path, whose RNG derives from (server seed, canonical request) only.
func TestReplicaDeterminism(t *testing.T) {
	requests := []struct {
		path, body string
	}{
		{"/v1/seeds", `{"k":3}`},
		{"/v1/seeds", `{"k":7}`},
		{"/v1/spread", `{"seeds":[5,3,1]}`},
		{"/v1/spread", `{"seeds":[1,3,5]}`},              // cache-hit path on replica
		{"/v1/spread", `{"seeds":[2,4],"evalsims":150}`}, // per-request RNG path
		{"/v1/seeds", `{"k":3}`},                         // repeat → cached
	}
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			a := newReplica(t, backend, 42)
			b := newReplica(t, backend, 42)
			for i, req := range requests {
				respA, bodyA := postJSON(t, a.URL+req.path, req.body)
				respB, bodyB := postJSON(t, b.URL+req.path, req.body)
				if respA.StatusCode != 200 || respB.StatusCode != 200 {
					t.Fatalf("request %d %s: status %d vs %d (bodies %s | %s)",
						i, req.path, respA.StatusCode, respB.StatusCode, bodyA, bodyB)
				}
				if !bytes.Equal(bodyA, bodyB) {
					t.Fatalf("request %d %s %s: replicas disagree\nA: %s\nB: %s",
						i, req.path, req.body, bodyA, bodyB)
				}
			}
		})
	}
}

// TestReplicaDeterminismAcrossWorkers asserts the determinism contract of
// the parallel index build: a replica whose oracle was built with 8
// sampling workers serves byte-identical bodies to one built serially,
// so heterogeneous fleets (fast startup on big machines, serial on small
// ones) still agree on every answer.
func TestReplicaDeterminismAcrossWorkers(t *testing.T) {
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			serial := newReplicaWorkers(t, backend, 42, 1)
			parallel := newReplicaWorkers(t, backend, 42, 8)
			for _, req := range []struct{ path, body string }{
				{"/v1/seeds", `{"k":5}`},
				{"/v1/spread", `{"seeds":[5,3,1]}`},
				{"/v1/spread", `{"seeds":[2,4],"evalsims":150}`},
			} {
				respA, bodyA := postJSON(t, serial.URL+req.path, req.body)
				respB, bodyB := postJSON(t, parallel.URL+req.path, req.body)
				if respA.StatusCode != 200 || respB.StatusCode != 200 {
					t.Fatalf("%s: status %d vs %d (bodies %s | %s)",
						req.path, respA.StatusCode, respB.StatusCode, bodyA, bodyB)
				}
				if !bytes.Equal(bodyA, bodyB) {
					t.Fatalf("%s %s: worker counts disagree\nserial:   %s\nparallel: %s",
						req.path, req.body, bodyA, bodyB)
				}
			}
		})
	}
}

// TestSeedChangesAnswers is the negative control: a different server seed
// must actually change the sampled index (otherwise the determinism test
// above would pass vacuously on constant output).
func TestSeedChangesAnswers(t *testing.T) {
	a := newReplica(t, "rrset", 42)
	b := newReplica(t, "rrset", 43)
	var bodies [2][]byte
	for i, ts := range []*httptest.Server{a, b} {
		resp, body := postJSON(t, ts.URL+"/v1/spread", `{"seeds":[1,2,3],"evalsims":200}`)
		if resp.StatusCode != 200 {
			t.Fatalf("replica %d status %d: %s", i, resp.StatusCode, body)
		}
		bodies[i] = body
	}
	if bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("different seeds produced identical MC-refined bodies: %s", bodies[0])
	}
}

// TestCacheDoesNotChangeBodies replays a request on one server with the
// cache enabled and on another with it disabled: the body must be the
// same either way, since responses are pure functions of the request.
func TestCacheDoesNotChangeBodies(t *testing.T) {
	g := testGraph(t)
	oracle, err := BuildOracle(context.Background(), "rrset", g, weights.IC, 2000, 42, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cacheEntries int) *httptest.Server {
		srv, err := New(Config{
			Oracle: oracle, Graph: g, Model: weights.IC, SchemeName: "WC", Seed: 42,
			CacheEntries: cacheEntries,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	cached, uncached := mk(64), mk(-1)
	for _, body := range []string{`{"seeds":[9,4,4,1]}`, `{"k":5}`} {
		path := "/v1/spread"
		if body == `{"k":5}` {
			path = "/v1/seeds"
		}
		for trial := 0; trial < 2; trial++ { // second trial hits the cache
			_, got := postJSON(t, cached.URL+path, body)
			_, want := postJSON(t, uncached.URL+path, body)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s trial %d: cached body %s != uncached %s",
					fmt.Sprintf("%s %s", path, body), trial, got, want)
			}
		}
	}
}
