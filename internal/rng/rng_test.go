package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(99)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(99)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Seed did not reset stream: step %d got %d want %d", i, got, first[i])
		}
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	w := r.Uint64()
	if v == 0 && w == 0 {
		t.Fatal("zero seed produced a stuck zero state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(10)
	const buckets = 10
	const samples = 100000
	counts := make([]int, buckets)
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(samples) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const samples = 100000
	hits := 0
	for i := 0; i < samples; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / samples
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d want %d", got, sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children correlated: %d/100 equal outputs", same)
	}
}

func TestExpMean(t *testing.T) {
	r := New(31)
	const lambda = 2.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("Exp(%v) mean %v want %v", lambda, mean, 1/lambda)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(32)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(33)
	const p = 0.2
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > want*0.05 {
		t.Fatalf("Geometric(%v) mean %v want %v", p, mean, want)
	}
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d want 0", g)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
