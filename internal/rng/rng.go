// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the benchmarking platform.
//
// All stochastic components of the platform (diffusion simulations, live-edge
// sampling, synthetic graph generation, threshold draws) take an explicit
// *rng.Source so that every experiment is reproducible from a single 64-bit
// seed. The generator is a xoshiro-style mix built on splitmix64; it is not
// cryptographically secure, which is fine: we need speed and statistical
// quality, not secrecy.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s0, s1 uint64
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	r := &Source{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state derived from seed via splitmix64, which
// guarantees well-distributed state even for small or sequential seeds.
func (r *Source) Seed(seed uint64) {
	r.s0 = splitmix64(&seed)
	r.s1 = splitmix64(&seed)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances *x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits (xoroshiro128+).
func (r *Source) Uint64() uint64 {
	s0, s1 := r.s0, r.s1
	result := s0 + s1
	s1 ^= s0
	r.s0 = rotl(s0, 55) ^ s1 ^ (s1 << 14)
	r.s1 = rotl(s1, 36)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent state; the parent advances once.
func (r *Source) Split() *Source {
	seed := r.Uint64()
	return New(seed)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Source) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n called with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method, avoiding the modulo bias of naive reduction.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Bool returns true with probability p. Probabilities outside [0,1] clamp.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) as a slice of ints.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of the first n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate lambda.
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp called with lambda <= 0")
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1-u) / lambda
}

// NormFloat64 returns a standard-normally distributed float64 using the
// Marsaglia polar method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Geometric returns a geometrically distributed trial count with success
// probability p: the number of Bernoulli(p) failures before the first
// success. Used for skip-sampling in snapshot generation.
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric called with p <= 0")
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}
