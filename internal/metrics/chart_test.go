package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRenderBasic(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "k", YLabel: "spread", Width: 30, Height: 8}
	if err := c.AddSeries("a", []float64{1, 2, 3}, []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSeries("b", []float64{1, 2, 3}, []float64{30, 20, 10}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "* a", "o b", "x: k", "y: spread", "30", "10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Series a rises, series b falls: 'a' glyph must appear in the top row
	// right side... verify top row contains exactly one glyph of each.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") || !strings.Contains(top, "o") {
		t.Fatalf("top row %q should contain both max points", top)
	}
}

func TestChartLogY(t *testing.T) {
	c := &Chart{LogY: true, Width: 20, Height: 6}
	if err := c.AddSeries("s", []float64{1, 2, 3}, []float64{1, 100, 10000}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(log)") && !strings.Contains(out, "10.0K") {
		t.Fatalf("log chart output:\n%s", out)
	}
}

func TestChartLogYDropsNonPositive(t *testing.T) {
	c := &Chart{LogY: true}
	_ = c.AddSeries("s", []float64{1, 2}, []float64{-5, 0})
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Fatal("expected no-plottable-points error")
	}
}

func TestChartSeriesLengthMismatch(t *testing.T) {
	c := &Chart{}
	if err := c.AddSeries("s", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Fatal("empty chart rendered")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{Width: 10, Height: 4}
	_ = c.AddSeries("flat", []float64{5, 5}, []float64{3, 3})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err) // degenerate ranges must not divide by zero
	}
}

func TestChartFromTable(t *testing.T) {
	tbl := NewTable("Figure X", "Algorithm", "k", "Time(s)")
	tbl.AddRow("IMM", 1, 0.5)
	tbl.AddRow("IMM", 50, 1.5)
	tbl.AddRow("CELF", 1, 2.0)
	tbl.AddRow("CELF", 50, "DNF") // non-numeric rows skipped
	c, err := ChartFromTable(tbl, "k", "Time(s)", "Algorithm")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.series) != 2 {
		t.Fatalf("%d series", len(c.series))
	}
	if c.series[0].Name != "IMM" || len(c.series[0].Xs) != 2 {
		t.Fatalf("series[0] %+v", c.series[0])
	}
	if c.series[1].Name != "CELF" || len(c.series[1].Xs) != 1 {
		t.Fatalf("series[1] %+v (DNF row must be dropped)", c.series[1])
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestChartFromTableMissingColumn(t *testing.T) {
	tbl := NewTable("", "a")
	if _, err := ChartFromTable(tbl, "zz", "a"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := ChartFromTable(tbl, "a", "zz"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := ChartFromTable(tbl, "a", "a", "zz"); err == nil {
		t.Fatal("missing group column accepted")
	}
}

func TestCompactFloat(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		1500:    "1.5K",
		42:      "42",
		0.125:   "0.12",
	}
	for in, want := range cases {
		if got := compactFloat(in); got != want {
			t.Fatalf("compactFloat(%v)=%q want %q", in, got, want)
		}
	}
}
