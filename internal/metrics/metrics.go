// Package metrics provides the instrumentation layer of the benchmarking
// platform: wall-clock timing, heap-footprint sampling, operation counters,
// summary statistics and tabular/CSV emission. Paper §5 evaluates every
// algorithm along quality, running time (Fig. 7) and memory (Fig. 8); this
// package supplies the latter two measurements plus the DNF/Crashed budget
// enforcement used in Table 3.
package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"
)

// Stopwatch measures wall-clock durations.
type Stopwatch struct {
	start time.Time
}

// Start returns a running stopwatch.
func Start() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since Start.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// MemSampler tracks the peak live-heap growth over a region of code.
//
// The paper reports per-algorithm main-memory footprint; in-process we
// approximate it as the increase of live heap bytes over the algorithm run
// (after a GC at the start), sampled at Checkpoint calls plus explicitly
// accounted data-structure sizes.
type MemSampler struct {
	baseline uint64
	peak     uint64
	// Accounted bytes registered by algorithms for structures whose size is
	// known exactly (RR sets, snapshots, DAGs); max of accounted and sampled
	// is reported.
	accounted int64
	peakAcct  int64
}

// StartMem garbage-collects and records the live-heap baseline.
func StartMem() *MemSampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &MemSampler{baseline: ms.HeapAlloc}
}

// Checkpoint samples the live heap; call it at phase boundaries.
func (m *MemSampler) Checkpoint() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > m.peak {
		m.peak = ms.HeapAlloc
	}
}

// Account registers delta explicitly-tracked bytes (may be negative on
// release).
func (m *MemSampler) Account(delta int64) {
	m.accounted += delta
	if m.accounted > m.peakAcct {
		m.peakAcct = m.accounted
	}
}

// PeakBytes returns the peak footprint estimate: max(sampled growth,
// explicitly accounted peak).
func (m *MemSampler) PeakBytes() int64 {
	m.Checkpoint()
	sampled := int64(0)
	if m.peak > m.baseline {
		sampled = int64(m.peak - m.baseline)
	}
	if m.peakAcct > sampled {
		return m.peakAcct
	}
	return sampled
}

// Counter is a simple named operation counter (e.g. CELF node-lookups,
// RR-sampler arc traversals; paper Appendix C argues lookups are the
// environment-independent comparison metric for CELF vs CELF++).
type Counter struct {
	Name  string
	Value int64
}

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.Value += delta }

// Summary is a running mean / standard-deviation accumulator.
type Summary struct {
	n            int
	sum, sumSq   float64
	min, max     float64
	observations []float64 // retained for percentile queries
}

// Observe adds a sample.
func (s *Summary) Observe(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
	s.observations = append(s.observations, x)
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// SD returns the sample standard deviation (0 when n < 2).
func (s *Summary) SD() float64 {
	if s.n < 2 {
		return 0
	}
	v := (s.sumSq - s.sum*s.sum/float64(s.n)) / float64(s.n-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Summary) Max() float64 { return s.max }

// Percentile returns the p-quantile (0 ≤ p ≤ 1) by linear interpolation.
func (s *Summary) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	xs := make([]float64, len(s.observations))
	copy(xs, s.observations)
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 1 {
		return xs[len(xs)-1]
	}
	pos := p * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// String renders "mean ± sd [min,max] (n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f, %.2f] (n=%d)", s.Mean(), s.SD(), s.min, s.max, s.n)
}

// HumanBytes formats a byte count the way the paper's memory plots do (MB).
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// HumanDuration formats a duration in the paper's seconds-first style.
func HumanDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
