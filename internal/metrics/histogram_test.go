package metrics

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if h.N() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zeroed: n=%d sum=%v mean=%v min=%v max=%v",
			h.N(), h.Sum(), h.Mean(), h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on empty = %v, want 0", q)
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, x := range []float64{0.5, 2, 3, 50, 200} {
		h.Observe(x)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Sum() != 255.5 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Mean() != 51.1 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 0.5 || h.Max() != 200 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramBucketOf(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1, 0}, // bucket i covers (bounds[i-1], bounds[i]]
		{1.001, 1}, {10, 1},
		{10.001, 2}, {100, 2},
		{100.001, 3}, {1e12, 3}, // implicit +Inf catch-all
	}
	for _, tc := range cases {
		if got := h.bucketOf(tc.x); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestHistogramBucketsIteration(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(50)
	var uppers []float64
	var counts []int64
	h.Buckets(func(upper float64, count int64) {
		uppers = append(uppers, upper)
		counts = append(counts, count)
	})
	if len(uppers) != 3 || uppers[0] != 1 || uppers[1] != 10 || !math.IsInf(uppers[2], 1) {
		t.Fatalf("uppers = %v", uppers)
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 uniform samples 1..100 against decade buckets: quantiles must
	// land within one bucket width of the exact order statistic.
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		p, exact float64
	}{
		{0.10, 10}, {0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := h.Quantile(tc.p)
		if diff := math.Abs(got - tc.exact); diff > 10 {
			t.Errorf("Quantile(%v) = %v, want within a bucket of %v", tc.p, got, tc.exact)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want max 100", got)
	}
}

func TestHistogramQuantileClampedToObserved(t *testing.T) {
	// A single observation deep inside a wide bucket: every quantile must
	// return exactly that value, not a bucket-edge interpolation.
	h := NewHistogram([]float64{1000})
	h.Observe(3.7)
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(p); got != 3.7 {
			t.Fatalf("Quantile(%v) = %v, want the only observation 3.7", p, got)
		}
	}
}

func TestHistogramNoBounds(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(2)
	h.Observe(8)
	if h.N() != 2 || h.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", h.N(), h.Mean())
	}
	if q := h.Quantile(0.5); q < 2 || q > 8 {
		t.Fatalf("Quantile(0.5) = %v outside observed range", q)
	}
}

func TestHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1, 2})
}

func TestLatencyBucketsAscending(t *testing.T) {
	b := LatencyBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("LatencyBuckets not ascending at %d: %v", i, b)
		}
	}
	// The ladder must span cache hits (sub-ms) through saturated queries.
	if b[0] > 0.1 || b[len(b)-1] < 10000 {
		t.Fatalf("LatencyBuckets range too narrow: %v", b)
	}
}

// mergeAll folds hs into a fresh histogram left to right.
func mergeAll(bounds []float64, hs ...*Histogram) *Histogram {
	out := NewHistogram(bounds)
	for _, h := range hs {
		out.Merge(h)
	}
	return out
}

func TestHistogramMergeEqualsSingleStream(t *testing.T) {
	// Partitioning one observation stream across workers and merging must
	// reproduce the single-histogram aggregate exactly: same counts, same
	// moments, same quantiles.
	bounds := LatencyBuckets()
	whole := NewHistogram(bounds)
	parts := []*Histogram{NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)}
	for i := 0; i < 1000; i++ {
		x := float64(i%977)*0.37 + 0.05
		whole.Observe(x)
		parts[i%3].Observe(x)
	}
	merged := mergeAll(bounds, parts...)
	// Sum is exact up to float64 summation order; everything else exactly.
	sumDiff := math.Abs(merged.Sum()-whole.Sum()) / whole.Sum()
	if merged.N() != whole.N() || sumDiff > 1e-12 ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged moments differ: n=%d/%d sum=%v/%v min=%v/%v max=%v/%v",
			merged.N(), whole.N(), merged.Sum(), whole.Sum(),
			merged.Min(), whole.Min(), merged.Max(), whole.Max())
	}
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 0.999, 1} {
		if got, want := merged.Quantile(p), whole.Quantile(p); got != want {
			t.Fatalf("Quantile(%v) = %v after merge, want %v", p, got, want)
		}
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	bounds := []float64{1, 10, 100}
	obs := [][]float64{{0.5, 2}, {3, 50, 50}, {200}}
	build := func(xs []float64) *Histogram {
		h := NewHistogram(bounds)
		for _, x := range xs {
			h.Observe(x)
		}
		return h
	}
	// (a ⊕ b) ⊕ c  vs  a ⊕ (b ⊕ c)
	left := mergeAll(bounds, build(obs[0]), build(obs[1]))
	left.Merge(build(obs[2]))
	rightTail := mergeAll(bounds, build(obs[1]), build(obs[2]))
	right := build(obs[0])
	right.Merge(rightTail)
	if left.N() != right.N() || left.Sum() != right.Sum() ||
		left.Min() != right.Min() || left.Max() != right.Max() {
		t.Fatalf("merge not associative: n=%d/%d sum=%v/%v", left.N(), right.N(), left.Sum(), right.Sum())
	}
	for _, p := range []float64{0.25, 0.5, 0.75, 0.99} {
		if left.Quantile(p) != right.Quantile(p) {
			t.Fatalf("Quantile(%v) differs across association: %v vs %v",
				p, left.Quantile(p), right.Quantile(p))
		}
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(5)
	h.Merge(nil)
	h.Merge(NewHistogram([]float64{1, 10}))
	if h.N() != 1 || h.Min() != 5 || h.Max() != 5 {
		t.Fatalf("merge with empty/nil perturbed state: n=%d min=%v max=%v", h.N(), h.Min(), h.Max())
	}
	// Merging INTO an empty histogram must adopt the other's min/max, not
	// keep the zero-value clamp.
	empty := NewHistogram([]float64{1, 10})
	empty.Merge(h)
	if empty.Min() != 5 || empty.Max() != 5 || empty.N() != 1 {
		t.Fatalf("empty.Merge(h): n=%d min=%v max=%v, want 1/5/5", empty.N(), empty.Min(), empty.Max())
	}
}

func TestHistogramMergeRejectsDifferentBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge accepted histograms with different bounds")
		}
	}()
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 20})
	b.Observe(5)
	a.Merge(b)
}

func TestHistogramQuantileMonotone(t *testing.T) {
	// Quantile must be non-decreasing in p, including across merged
	// histograms with disjoint ranges.
	bounds := LatencyBuckets()
	a, b := NewHistogram(bounds), NewHistogram(bounds)
	for i := 0; i < 200; i++ {
		a.Observe(0.2 + float64(i)*0.01) // 0.2 .. 2.2
		b.Observe(50 + float64(i)*3)     // 50 .. 650
	}
	a.Merge(b)
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.001 {
		q := a.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: Quantile(%v) = %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(5)
	c := h.Clone()
	c.Observe(0.5)
	if h.N() != 1 || c.N() != 2 {
		t.Fatalf("clone not independent: h.n=%d c.n=%d", h.N(), c.N())
	}
	h.Merge(c) // clones must stay merge-compatible
	if h.N() != 3 {
		t.Fatalf("merge after clone: n=%d, want 3", h.N())
	}
}
