package metrics

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if h.N() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zeroed: n=%d sum=%v mean=%v min=%v max=%v",
			h.N(), h.Sum(), h.Mean(), h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on empty = %v, want 0", q)
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, x := range []float64{0.5, 2, 3, 50, 200} {
		h.Observe(x)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Sum() != 255.5 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Mean() != 51.1 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 0.5 || h.Max() != 200 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramBucketOf(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1, 0}, // bucket i covers (bounds[i-1], bounds[i]]
		{1.001, 1}, {10, 1},
		{10.001, 2}, {100, 2},
		{100.001, 3}, {1e12, 3}, // implicit +Inf catch-all
	}
	for _, tc := range cases {
		if got := h.bucketOf(tc.x); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestHistogramBucketsIteration(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(50)
	var uppers []float64
	var counts []int64
	h.Buckets(func(upper float64, count int64) {
		uppers = append(uppers, upper)
		counts = append(counts, count)
	})
	if len(uppers) != 3 || uppers[0] != 1 || uppers[1] != 10 || !math.IsInf(uppers[2], 1) {
		t.Fatalf("uppers = %v", uppers)
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 uniform samples 1..100 against decade buckets: quantiles must
	// land within one bucket width of the exact order statistic.
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		p, exact float64
	}{
		{0.10, 10}, {0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := h.Quantile(tc.p)
		if diff := math.Abs(got - tc.exact); diff > 10 {
			t.Errorf("Quantile(%v) = %v, want within a bucket of %v", tc.p, got, tc.exact)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want max 100", got)
	}
}

func TestHistogramQuantileClampedToObserved(t *testing.T) {
	// A single observation deep inside a wide bucket: every quantile must
	// return exactly that value, not a bucket-edge interpolation.
	h := NewHistogram([]float64{1000})
	h.Observe(3.7)
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(p); got != 3.7 {
			t.Fatalf("Quantile(%v) = %v, want the only observation 3.7", p, got)
		}
	}
}

func TestHistogramNoBounds(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(2)
	h.Observe(8)
	if h.N() != 2 || h.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", h.N(), h.Mean())
	}
	if q := h.Quantile(0.5); q < 2 || q > 8 {
		t.Fatalf("Quantile(0.5) = %v outside observed range", q)
	}
}

func TestHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]float64{1, 1, 2})
}

func TestLatencyBucketsAscending(t *testing.T) {
	b := LatencyBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("LatencyBuckets not ascending at %d: %v", i, b)
		}
	}
	// The ladder must span cache hits (sub-ms) through saturated queries.
	if b[0] > 0.1 || b[len(b)-1] < 10000 {
		t.Fatalf("LatencyBuckets range too narrow: %v", b)
	}
}
