package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table (for the
// terminal, matching the paper's table style) or CSV (for plotting).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the aligned text table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table (headers + rows) as CSV to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to path, creating parent directories.
func (t *Table) SaveCSV(path string) (err error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("metrics: mkdir %s: %w", dir, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return t.WriteCSV(f)
}
