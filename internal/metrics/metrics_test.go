package metrics

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestStopwatch(t *testing.T) {
	sw := Start()
	time.Sleep(5 * time.Millisecond)
	if e := sw.Elapsed(); e < 4*time.Millisecond {
		t.Fatalf("elapsed %v too small", e)
	}
}

func TestMemSamplerGrowth(t *testing.T) {
	m := StartMem()
	buf := make([]byte, 16<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	m.Checkpoint()
	peak := m.PeakBytes()
	if peak < 8<<20 {
		t.Fatalf("peak %d did not register 16MB allocation", peak)
	}
	_ = buf[0]
}

func TestMemSamplerAccounting(t *testing.T) {
	m := StartMem()
	m.Account(1000)
	m.Account(500)
	m.Account(-1500)
	if m.peakAcct != 1500 {
		t.Fatalf("peak accounted %d want 1500", m.peakAcct)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "lookups"}
	c.Add(3)
	c.Add(4)
	if c.Value != 7 {
		t.Fatalf("counter %d", c.Value)
	}
}

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Observe(x)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.SD()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("sd %v", s.SD())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if p := s.Percentile(0.5); p != 3 {
		t.Fatalf("median %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 %v", p)
	}
	if p := s.Percentile(1); p != 5 {
		t.Fatalf("p100 %v", p)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String %q", s.String())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.SD() != 0 || s.Percentile(0.5) != 0 {
		t.Fatal("empty summary must be zeros")
	}
}

// TestSummaryMatchesNaive: streaming mean/sd equals two-pass computation.
func TestSummaryMatchesNaive(t *testing.T) {
	check := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		var s Summary
		mean := 0.0
		for _, x := range xs {
			s.Observe(x)
			mean += x
		}
		mean /= float64(len(xs))
		varr := 0.0
		for _, x := range xs {
			varr += (x - mean) * (x - mean)
		}
		varr /= float64(len(xs) - 1)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.SD()-math.Sqrt(varr)) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2048:      "2.0KB",
		3 << 20:   "3.0MB",
		5 << 30:   "5.0GB",
		1536 << 0: "1.5KB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q want %q", in, got, want)
		}
	}
}

func TestHumanDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond: "500µs",
		20 * time.Millisecond:  "20.00ms",
		3 * time.Second:        "3.00s",
		90 * time.Second:       "1.5m",
		2 * time.Hour:          "2.0h",
	}
	for in, want := range cases {
		if got := HumanDuration(in); got != want {
			t.Errorf("HumanDuration(%v) = %q want %q", in, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "algo", "time", "spread")
	tbl.AddRow("IMM", 1.5, 1234.0)
	tbl.AddRow("CELF", 0.001, 8.0)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "algo", "IMM", "CELF", "1234", "0.0010"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(1, "x")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,x\n"
	if buf.String() != want {
		t.Fatalf("csv %q want %q", buf.String(), want)
	}
}

func TestTableSaveCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.csv")
	tbl := NewTable("", "h")
	tbl.AddRow("v")
	if err := tbl.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "h\nv\n" {
		t.Fatalf("file content %q", data)
	}
}
