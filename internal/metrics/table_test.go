package metrics

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "count")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 23456)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	if lines[0] != "== demo ==" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Header and separator pad to the widest cell in each column.
	if !strings.HasPrefix(lines[1], "name         count") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "-----------  -----") {
		t.Fatalf("separator = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "a            1") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow("v")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "==") {
		t.Fatalf("untitled table rendered a title line:\n%s", sb.String())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.12345, "0.1235"}, // < 1: four decimals
		{2.5, "2.50"},       // [1, 1000): two decimals
		{999.994, "999.99"},
		{1234.56, "1235"}, // >= 1000: integral
		{-2.5, "-2.50"},   // sign preserved, magnitude buckets
	}
	for _, tc := range cases {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableAddRowMixedTypes(t *testing.T) {
	tb := NewTable("t", "a", "b", "c", "d")
	tb.AddRow("s", 42, 3.14159, int64(7))
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "42" || row[2] != "3.14" || row[3] != "7" {
		t.Fatalf("row = %v", row)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow("a,with,commas", 1.5)
	tb.AddRow("b", 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("got %d records", len(records))
	}
	if records[0][0] != "name" || records[1][0] != "a,with,commas" || records[1][1] != "1.50" {
		t.Fatalf("records = %v", records)
	}
}

func TestTableSaveCSVCreatesDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "dir", "out.csv")
	tb := NewTable("t", "h")
	tb.AddRow("v")
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "h\nv\n" {
		t.Fatalf("file contents = %q", data)
	}
}
