package metrics

import "math"

// Histogram is a fixed-bucket histogram for long-running aggregation.
//
// Summary retains every observation (exact percentiles, unbounded memory)
// and fits one-shot benchmark cells; a serving process observing millions
// of request latencies needs constant memory instead. Histogram trades
// exact percentiles for O(#buckets) state: Quantile interpolates linearly
// inside the bucket containing the requested rank, clamped by the exact
// observed min/max.
//
// Not safe for concurrent use; callers guard it with their own lock.
type Histogram struct {
	bounds   []float64 // ascending upper bounds; a final +Inf bucket is implicit
	counts   []int64   // len(bounds)+1
	n        int64
	sum      float64
	min, max float64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. An empty bounds slice yields a single catch-all bucket (count,
// mean, min and max still work; Quantile degrades to min/max clamping).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// LatencyBuckets returns the default request-latency bucket bounds in
// milliseconds: a 1–2.5–5 decade ladder from 0.1ms to 10s, matching the
// range between a cache hit and a saturated seeds query.
func LatencyBuckets() []float64 {
	return []float64{
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
		1000, 2500, 5000, 10000,
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	if h.n == 0 || x < h.min {
		h.min = x
	}
	if h.n == 0 || x > h.max {
		h.max = x
	}
	h.n++
	h.sum += x
	h.counts[h.bucketOf(x)]++
}

// bucketOf returns the index of the bucket containing x by binary search:
// bucket i covers (bounds[i-1], bounds[i]], the last bucket is unbounded.
func (h *Histogram) bucketOf(x float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if x <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the p-quantile (0 ≤ p ≤ 1): the bucket
// holding the rank is located, and the value is interpolated linearly
// through it, clamped to the exact observed [min, max].
func (h *Histogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := p * float64(h.n)
	cum := int64(0)
	for i, c := range h.counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		if c == 0 {
			return clamp(lo, h.min, h.max)
		}
		frac := (rank - float64(cum)) / float64(c)
		return clamp(lo+(hi-lo)*frac, h.min, h.max)
	}
	return h.max
}

// Merge folds other into h. Both histograms must have been built over
// identical bucket bounds — per-worker histograms cloned from one
// template, the loadgen aggregation pattern — or Merge panics; there is
// no meaningful way to combine counts binned against different ladders.
// Merging is commutative and associative up to float64 summation order,
// and the merged Quantile is computed over the union of observations:
// the merged min/max clamp is exact, so per-worker tail samples survive
// aggregation instead of being lost to each worker's local clamp.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		panic("metrics: cannot merge histograms with different bucket bounds")
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			panic("metrics: cannot merge histograms with different bucket bounds")
		}
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// Clone returns an independent copy of h, sharing only the immutable
// bounds. A driver
// clones one template histogram per worker so the per-worker copies are
// guaranteed Merge-compatible.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		bounds: h.bounds, // immutable after NewHistogram
		counts: make([]int64, len(h.counts)),
		n:      h.n, sum: h.sum, min: h.min, max: h.max,
	}
	copy(c.counts, h.counts)
	return c
}

// Buckets invokes fn for each bucket in ascending order with its upper
// bound (math.Inf(1) for the catch-all) and count, for renderers.
func (h *Histogram) Buckets(fn func(upper float64, count int64)) {
	for i, c := range h.counts {
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		fn(upper, c)
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
