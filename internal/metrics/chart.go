package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ASCII charts
//
// The paper communicates every result as a log- or linear-scale line plot.
// Chart renders the same series as a terminal plot so `imexp` output can be
// read without a plotting stack: multi-series scatter/line over a labelled
// grid, optional log-y, one glyph per series.

// Series is one named line on a chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Chart is a multi-series terminal plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	series []Series
}

// seriesGlyphs assigns one of these to each added series, in order.
const seriesGlyphs = "*o+x#@%&"

// AddSeries appends a named series; x/y lengths must match.
func (c *Chart) AddSeries(name string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("metrics: series %q has %d xs vs %d ys", name, len(xs), len(ys))
	}
	c.series = append(c.series, Series{Name: name, Xs: xs, Ys: ys})
	return nil
}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.Xs {
			y := s.Ys[i]
			if c.LogY {
				if y <= 0 {
					continue // log scale drops non-positive values
				}
				y = math.Log10(y)
			}
			points++
			minX = math.Min(minX, s.Xs[i])
			maxX = math.Max(maxX, s.Xs[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if points == 0 {
		return fmt.Errorf("metrics: chart %q has no plottable points", c.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.Xs {
			y := s.Ys[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int((s.Xs[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = glyph
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop, yBot := maxY, minY
	if c.LogY {
		yTop, yBot = math.Pow(10, maxY), math.Pow(10, minY)
	}
	axisW := 10
	for r, row := range grid {
		label := strings.Repeat(" ", axisW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", axisW, compactFloat(yTop))
		case height - 1:
			label = fmt.Sprintf("%*s", axisW, compactFloat(yBot))
		case height / 2:
			mid := (maxY + minY) / 2
			if c.LogY {
				mid = math.Pow(10, mid)
			}
			label = fmt.Sprintf("%*s", axisW, compactFloat(mid))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", axisW),
		width-len(compactFloat(maxX)), compactFloat(minX), compactFloat(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s", strings.Repeat(" ", axisW), c.XLabel)
		if c.YLabel != "" {
			fmt.Fprintf(&b, "   y: %s", c.YLabel)
			if c.LogY {
				b.WriteString(" (log)")
			}
		}
		b.WriteByte('\n')
	}
	// Legend.
	for si, s := range c.series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", axisW),
			seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func compactFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// ChartFromTable builds a chart from a rendered Table: xCol supplies the
// x-axis, yCol the values, and groupCols (joined) the series names. Rows
// whose x or y fail to parse (DNF/Crashed markers) are skipped.
func ChartFromTable(t *Table, xCol, yCol string, groupCols ...string) (*Chart, error) {
	xi, err := columnIndex(t, xCol)
	if err != nil {
		return nil, err
	}
	yi, err := columnIndex(t, yCol)
	if err != nil {
		return nil, err
	}
	var gis []int
	for _, gc := range groupCols {
		gi, err := columnIndex(t, gc)
		if err != nil {
			return nil, err
		}
		gis = append(gis, gi)
	}
	type pt struct{ x, y float64 }
	groups := map[string][]pt{}
	var order []string
	for _, row := range t.Rows {
		var x, y float64
		if _, err := fmt.Sscanf(row[xi], "%g", &x); err != nil {
			continue
		}
		if _, err := fmt.Sscanf(row[yi], "%g", &y); err != nil {
			continue
		}
		parts := make([]string, len(gis))
		for i, gi := range gis {
			parts[i] = row[gi]
		}
		key := strings.Join(parts, "/")
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], pt{x, y})
	}
	c := &Chart{Title: t.Title, XLabel: xCol, YLabel: yCol}
	for _, key := range order {
		pts := groups[key]
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.x, p.y
		}
		if err := c.AddSeries(key, xs, ys); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func columnIndex(t *Table, name string) (int, error) {
	for i, h := range t.Headers {
		if h == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("metrics: table has no column %q (have %v)", name, t.Headers)
}
