package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SearchConfig parameterizes a saturation search. The search is
// open-loop by construction: a closed-loop generator's arrival rate is
// a function of server latency, so "offered QPS" is not a free variable
// there and a knee found that way understates queueing.
type SearchConfig struct {
	// SLOP99MS is the latency objective: a phase passes when its p99 (ms,
	// measured from intended start) is at or under this.
	SLOP99MS float64 `json:"slo_p99_ms"`
	// MaxFailFrac fails a phase whose non-2xx fraction exceeds it
	// (default 0.01): a server shedding half its load with a great p99 on
	// the survivors is not "within SLO".
	MaxFailFrac float64 `json:"max_fail_frac"`
	// MinQPS is the first offered rate (default 50).
	MinQPS float64 `json:"min_qps"`
	// MaxQPS stops the ramp (default 1e6): reaching it without failing a
	// phase reports the knee as unbracketed.
	MaxQPS float64 `json:"max_qps"`
	// RampFactor multiplies the offered rate between ramp phases
	// (default 2; must be > 1).
	RampFactor float64 `json:"ramp_factor"`
	// Brackets is the number of bisection refinements after the ramp
	// brackets the knee (default 3).
	Brackets int `json:"brackets"`
	// PhaseDuration is the measured length of each phase (default 2s).
	PhaseDuration time.Duration `json:"-"`
	// Warmup runs each offered rate unmeasured for this long before its
	// measured phase, so cache fill and connection establishment are not
	// billed to the latency distribution (default PhaseDuration/4).
	Warmup time.Duration `json:"-"`

	// PhaseDurationMS/WarmupMS mirror the durations into the JSON report.
	PhaseDurationMS float64 `json:"phase_duration_ms"`
	WarmupMS        float64 `json:"warmup_ms"`
}

func (c SearchConfig) withDefaults() SearchConfig {
	if c.MaxFailFrac == 0 {
		c.MaxFailFrac = 0.01
	}
	if c.MinQPS <= 0 {
		c.MinQPS = 50
	}
	if c.MaxQPS <= 0 {
		c.MaxQPS = 1e6
	}
	if c.RampFactor <= 1 {
		c.RampFactor = 2
	}
	if c.Brackets == 0 {
		c.Brackets = 3
	}
	if c.PhaseDuration <= 0 {
		c.PhaseDuration = 2 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = c.PhaseDuration / 4
	}
	c.PhaseDurationMS = float64(c.PhaseDuration.Nanoseconds()) / 1e6
	c.WarmupMS = float64(c.Warmup.Nanoseconds()) / 1e6
	return c
}

// SearchResult is one saturation search: every measured phase in run
// order, and the knee — the highest offered rate whose phase stayed
// within SLO. Knee is nil when even MinQPS failed; Bracketed is false
// when the ramp hit MaxQPS without ever failing (the knee is a lower
// bound, not a crossing).
type SearchResult struct {
	Config    SearchConfig `json:"config"`
	Phases    []PhaseStats `json:"phases"`
	Knee      *PhaseStats  `json:"knee"`
	FirstOver *PhaseStats  `json:"first_over,omitempty"`
	Bracketed bool         `json:"bracketed"`
}

// SaturationSearch locates the server's latency knee: it ramps offered
// QPS geometrically until a phase exceeds the SLO (p99 or fail
// fraction), then bisects the [last-good, first-bad] bracket Brackets
// times. Each phase runs Warmup unmeasured, then PhaseDuration
// measured.
func (d *Driver) SaturationSearch(ctx context.Context, cfg SearchConfig) (SearchResult, error) {
	cfg = cfg.withDefaults()
	if cfg.SLOP99MS <= 0 {
		return SearchResult{}, fmt.Errorf("loadgen: saturation search needs SLOP99MS > 0 (got %v)", cfg.SLOP99MS)
	}
	res := SearchResult{Config: cfg}

	pass := func(ps PhaseStats) bool {
		return ps.P99MS <= cfg.SLOP99MS && ps.FailFrac() <= cfg.MaxFailFrac
	}
	runPhase := func(label string, qps float64) (PhaseStats, error) {
		if cfg.Warmup > 0 {
			if _, err := d.RunOpen(ctx, qps, cfg.Warmup); err != nil {
				return PhaseStats{}, err
			}
		}
		ps, err := d.RunOpen(ctx, qps, cfg.PhaseDuration)
		ps.Label = label
		res.Phases = append(res.Phases, ps)
		return ps, err
	}

	// Ramp: geometric climb until a phase fails or MaxQPS is reached.
	var knee, firstOver *PhaseStats
	qps := cfg.MinQPS
	for {
		ps, err := runPhase("ramp", qps)
		if err != nil {
			return res, err
		}
		if !pass(ps) {
			p := ps
			firstOver = &p
			break
		}
		p := ps
		knee = &p
		if qps >= cfg.MaxQPS {
			break
		}
		qps *= cfg.RampFactor
		if qps > cfg.MaxQPS {
			qps = cfg.MaxQPS
		}
	}

	// Bisect the bracket. Without a failure (or without a single pass)
	// there is nothing to bisect.
	if knee != nil && firstOver != nil {
		lo, hi := knee.OfferedQPS, firstOver.OfferedQPS
		for i := 0; i < cfg.Brackets; i++ {
			mid := (lo + hi) / 2
			if mid <= lo || mid >= hi {
				break
			}
			ps, err := runPhase("bracket", mid)
			if err != nil {
				return res, err
			}
			if pass(ps) {
				p := ps
				knee = &p
				lo = mid
			} else {
				p := ps
				firstOver = &p
				hi = mid
			}
		}
	}

	res.Knee = knee
	res.FirstOver = firstOver
	res.Bracketed = knee != nil && firstOver != nil
	return res, nil
}

// Report is the top-level BENCH_load.json document: the workload
// contract (knobs + stream digest), then one leg per serving mode.
type Report struct {
	Suite   string `json:"suite"`
	Date    string `json:"date,omitempty"`
	Command string `json:"command,omitempty"`
	Target  string `json:"target"`

	Workload Workload `json:"workload"`
	// WorkloadDigest fingerprints the first DigestN requests of the
	// stream (Workload.Digest): equal digests ⇒ byte-identical streams.
	WorkloadDigest string `json:"workload_digest"`
	DigestN        uint64 `json:"digest_n"`

	Legs []Leg `json:"legs"`
}

// Leg is one serving mode's measurement: a saturation search and/or a
// fixed-rate phase (the transition leg records a fixed phase whose
// degraded_responses count profiles the degraded→ready swap mid-load).
type Leg struct {
	Mode   string        `json:"mode"` // "ready", "degraded", "transition", ...
	Search *SearchResult `json:"search,omitempty"`
	Fixed  *PhaseStats   `json:"fixed,omitempty"`
}
