package loadgen

import (
	"time"

	"github.com/sigdata/goinfmax/internal/metrics"
)

// LoadBuckets is the latency bucket ladder for load phases: the
// serving LatencyBuckets extended down to 20µs so the in-process
// fast-429 path (tens of microseconds) resolves below the 1ms SLO line
// instead of disappearing into the first bucket.
func LoadBuckets() []float64 {
	return []float64{
		0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
		1000, 2500, 5000, 10000,
	}
}

// collector accumulates one worker's observations. It is owned by a
// single goroutine during the phase — no locks — and merged after the
// workers join, which is what Histogram.Merge exists for.
type collector struct {
	lat    *metrics.Histogram // all completed requests, ms
	lat429 *metrics.Histogram // fast-reject (429) requests only, ms

	requests  int64
	ok        int64
	s429      int64
	s503      int64
	s4xx      int64
	s5xx      int64
	transport int64
	degraded  int64
	backoffNS int64 // closed-loop time spent sleeping on Retry-After
}

func newCollector(bounds []float64) *collector {
	return &collector{
		lat:    metrics.NewHistogram(bounds),
		lat429: metrics.NewHistogram(bounds),
	}
}

// observe records one completed request.
func (c *collector) observe(out Outcome, latency time.Duration) {
	ms := float64(latency.Nanoseconds()) / 1e6
	c.lat.Observe(ms)
	c.requests++
	switch {
	case out.Err != nil:
		c.transport++
	case out.Status == 429:
		c.s429++
		c.lat429.Observe(ms)
	case out.Status == 503:
		c.s503++
	case out.Status >= 500:
		c.s5xx++
	case out.Status >= 400:
		c.s4xx++
	default:
		c.ok++
		if out.Degraded {
			c.degraded++
		}
	}
}

// merge folds other into c (post-join aggregation).
func (c *collector) merge(other *collector) {
	c.lat.Merge(other.lat)
	c.lat429.Merge(other.lat429)
	c.requests += other.requests
	c.ok += other.ok
	c.s429 += other.s429
	c.s503 += other.s503
	c.s4xx += other.s4xx
	c.s5xx += other.s5xx
	c.transport += other.transport
	c.degraded += other.degraded
	c.backoffNS += other.backoffNS
}

// PhaseStats is the aggregate of one driven phase, JSON-shaped for the
// BENCH_load.json report. Latencies are milliseconds; open-loop phases
// measure from each request's intended start (coordinated-omission
// free), closed-loop phases from its actual issue time.
type PhaseStats struct {
	Label      string  `json:"label,omitempty"`
	Discipline string  `json:"discipline"`
	OfferedQPS float64 `json:"offered_qps,omitempty"` // open loop only
	Workers    int     `json:"workers"`
	DurationMS float64 `json:"duration_ms"`

	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Status429   int64   `json:"status_429"`
	Status503   int64   `json:"status_503"`
	Status4xx   int64   `json:"status_4xx"`
	Status5xx   int64   `json:"status_5xx"`
	Transport   int64   `json:"transport_errors"`
	Degraded    int64   `json:"degraded_responses"`
	AchievedQPS float64 `json:"achieved_qps"`

	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`

	// P99Reject429MS is the p99 of 429 responses alone: the fast-reject
	// promise (absent when the phase saw no 429).
	P99Reject429MS float64 `json:"p99_reject_429_ms,omitempty"`
	// BackoffMS is closed-loop worker time spent honoring Retry-After.
	BackoffMS float64 `json:"backoff_ms,omitempty"`
}

// stats renders the merged collector into PhaseStats.
func (c *collector) stats(discipline string, offeredQPS float64, workers int, elapsed time.Duration) PhaseStats {
	ps := PhaseStats{
		Discipline: discipline,
		OfferedQPS: offeredQPS,
		Workers:    workers,
		DurationMS: float64(elapsed.Nanoseconds()) / 1e6,
		Requests:   c.requests,
		OK:         c.ok,
		Status429:  c.s429,
		Status503:  c.s503,
		Status4xx:  c.s4xx,
		Status5xx:  c.s5xx,
		Transport:  c.transport,
		Degraded:   c.degraded,
		MeanMS:     c.lat.Mean(),
		P50MS:      c.lat.Quantile(0.50),
		P95MS:      c.lat.Quantile(0.95),
		P99MS:      c.lat.Quantile(0.99),
		P999MS:     c.lat.Quantile(0.999),
		MaxMS:      c.lat.Max(),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		ps.AchievedQPS = float64(c.requests) / secs
	}
	if c.s429 > 0 {
		ps.P99Reject429MS = c.lat429.Quantile(0.99)
	}
	if c.backoffNS > 0 {
		ps.BackoffMS = float64(c.backoffNS) / 1e6
	}
	return ps
}

// FailFrac is the fraction of requests that did not get a 2xx answer;
// the saturation search treats a phase above MaxFailFrac as over the
// knee even when the surviving requests' p99 looks healthy.
func (ps PhaseStats) FailFrac() float64 {
	if ps.Requests == 0 {
		return 0
	}
	return float64(ps.Requests-ps.OK) / float64(ps.Requests)
}
