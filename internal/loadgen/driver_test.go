package loadgen

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTarget simulates a server with capacity slots and a fixed service
// time: a request that cannot claim a slot is rejected 429 with the
// configured Retry-After, mirroring imserve's admission gate.
type fakeTarget struct {
	service    time.Duration
	slots      chan struct{} // nil = unlimited
	retryAfter time.Duration
	panicOnce  atomic.Bool // panic on the first request when armed
	calls      atomic.Int64
}

func (f *fakeTarget) Do(ctx context.Context, req Request) Outcome {
	f.calls.Add(1)
	if f.panicOnce.CompareAndSwap(true, false) {
		panic("injected target panic")
	}
	if f.slots != nil {
		select {
		case f.slots <- struct{}{}:
			defer func() { <-f.slots }()
		default:
			return Outcome{Status: 429, RetryAfter: f.retryAfter}
		}
	}
	if f.service > 0 {
		t := time.NewTimer(f.service)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return Outcome{Err: ctx.Err()}
		}
	}
	return Outcome{Status: 200}
}

func testDriver(t *fakeTarget) *Driver {
	return &Driver{Target: t, Workload: testWorkload(42), Workers: 8, Timeout: time.Second}
}

// TestOpenLoopExposesQueueing is the coordinated-omission check: one
// worker against a 2ms service at an offered rate demanding ~4
// outstanding requests. A closed-loop client would report ~2ms
// latencies (it only sends when free); the open-loop driver must charge
// the growing backlog to the tail because latency is measured from each
// request's intended start.
func TestOpenLoopExposesQueueing(t *testing.T) {
	target := &fakeTarget{service: 2 * time.Millisecond}
	d := testDriver(target)
	d.Workers = 1
	ps, err := d.RunOpen(context.Background(), 2000, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Requests == 0 || ps.OK != ps.Requests {
		t.Fatalf("stats: %+v", ps)
	}
	// Offered 2000 qps, capacity ~500 qps: the backlog at phase end is
	// ~100ms+. p99 must be far above the 2ms service time.
	if ps.P99MS < 20 {
		t.Fatalf("open-loop p99 %.2fms does not expose queueing (service 2ms)", ps.P99MS)
	}
	if ps.AchievedQPS > 1000 {
		t.Fatalf("achieved %.0f qps exceeds single-worker capacity", ps.AchievedQPS)
	}
	if ps.Discipline != "open" || ps.OfferedQPS != 2000 {
		t.Fatalf("phase labeling: %+v", ps)
	}
}

// TestClosedLoopMeasuresServiceTime: same target, closed discipline —
// latency is service latency, a sanity baseline for the CO contrast.
func TestClosedLoopMeasuresServiceTime(t *testing.T) {
	target := &fakeTarget{service: 2 * time.Millisecond}
	d := testDriver(target)
	d.Workers = 2
	ps, err := d.RunClosed(context.Background(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Requests == 0 || ps.OK != ps.Requests {
		t.Fatalf("stats: %+v", ps)
	}
	if ps.P99MS > 20 {
		t.Fatalf("closed-loop p99 %.2fms way above the 2ms service time", ps.P99MS)
	}
	if ps.Discipline != "closed" {
		t.Fatalf("discipline = %q", ps.Discipline)
	}
}

// TestClosedLoopHonorsRetryAfterCapped: a target that always rejects
// with Retry-After: 1s. The driver must back off (no hammering) but cap
// the server's request at MaxBackoff so one header cannot park the
// generator.
func TestClosedLoopHonorsRetryAfterCapped(t *testing.T) {
	target := &fakeTarget{slots: make(chan struct{}), retryAfter: time.Second} // capacity 0: every request 429s
	d := testDriver(target)
	d.Workers = 2
	d.MaxBackoff = 5 * time.Millisecond
	ps, err := d.RunClosed(context.Background(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status429 != ps.Requests || ps.Requests == 0 {
		t.Fatalf("expected all-429: %+v", ps)
	}
	// 2 workers × (100ms / 5ms cap) ≈ 40 requests. Without backoff this
	// in-process loop would issue hundreds of thousands; without the cap
	// (sleeping the full 1s) each worker would issue exactly 1.
	if ps.Requests < 6 {
		t.Fatalf("%d requests: backoff overshot the 5ms cap (Retry-After 1s not capped?)", ps.Requests)
	}
	if ps.Requests > 2000 {
		t.Fatalf("%d requests in 100ms: Retry-After not honored", ps.Requests)
	}
	if ps.BackoffMS <= 0 {
		t.Fatalf("BackoffMS not recorded: %+v", ps)
	}
}

// TestClosedLoopOverloadConvergesNoLeak drives sustained overload at a
// capacity-4 target and requires (a) a stable, nonzero 429 ratio across
// two consecutive phases and (b) no goroutine leak after the phases
// join.
func TestClosedLoopOverloadConvergesNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	target := &fakeTarget{service: time.Millisecond, slots: make(chan struct{}, 4)}
	d := testDriver(target)
	d.Workers = 16
	d.BaseBackoff = 200 * time.Microsecond
	d.MaxBackoff = time.Millisecond

	var ratios [2]float64
	for i := range ratios {
		ps, err := d.RunClosed(context.Background(), 150*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Requests == 0 || ps.Status429 == 0 || ps.OK == 0 {
			t.Fatalf("phase %d did not mix OK and 429 under overload: %+v", i, ps)
		}
		ratios[i] = float64(ps.Status429) / float64(ps.Requests)
	}
	// 16 workers on 4 slots: most requests reject; the ratio must be
	// substantial and reproducible across phases (loose bound — this is
	// wall-clock scheduling, not a deterministic quantity).
	for i, r := range ratios {
		if r < 0.2 || r > 0.999 {
			t.Fatalf("phase %d 429 ratio %.3f outside (0.2, 0.999)", i, r)
		}
	}
	if diff := ratios[0] - ratios[1]; diff < -0.35 || diff > 0.35 {
		t.Fatalf("429 ratio did not converge: %.3f vs %.3f", ratios[0], ratios[1])
	}

	// Leak check: every worker goroutine must have joined.
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestDriverSupervisesWorkerPanic: a panicking target must surface as a
// phase error, not kill the process.
func TestDriverSupervisesWorkerPanic(t *testing.T) {
	target := &fakeTarget{}
	target.panicOnce.Store(true)
	d := testDriver(target)
	_, err := d.RunOpen(context.Background(), 500, 50*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("worker panic not surfaced: err=%v", err)
	}
	// The stream keeps flowing on the surviving workers.
	if target.calls.Load() < 2 {
		t.Fatalf("only %d calls after panic: surviving workers stalled", target.calls.Load())
	}
}

// TestDriverCancellation: a cancelled context stops the phase promptly
// and surfaces the cancellation.
func TestDriverCancellation(t *testing.T) {
	target := &fakeTarget{service: time.Millisecond}
	d := testDriver(target)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer func() { _ = recover() }()
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := d.RunOpen(ctx, 100, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestDriverValidates(t *testing.T) {
	d := &Driver{} // no target, no workload
	if _, err := d.RunOpen(context.Background(), 100, time.Second); err == nil {
		t.Fatal("RunOpen accepted a zero driver")
	}
	d = testDriver(&fakeTarget{})
	if _, err := d.RunOpen(context.Background(), 0, time.Second); err == nil {
		t.Fatal("RunOpen accepted qps=0")
	}
	if _, err := d.RunClosed(context.Background(), 0); err == nil {
		t.Fatal("RunClosed accepted duration=0")
	}
}
