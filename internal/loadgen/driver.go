package loadgen

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sigdata/goinfmax/internal/rng"
)

// arrivalDomain separates the Poisson arrival schedule's RNG stream
// from the request-content streams rooted at the same seed.
const arrivalDomain = 0xa55e55ed10ad

// Driver runs workload phases against a target under one of the two
// disciplines. The zero value is not usable; set Target and Workload,
// everything else defaults.
type Driver struct {
	Target   Target
	Workload Workload
	// Workers bounds concurrency: the worker-pool size in closed loop,
	// the max outstanding requests in open loop (default 4×GOMAXPROCS).
	// The request stream is index-claimed, so the stream content is
	// identical for any value.
	Workers int
	// Timeout is the per-request context deadline (default 10s). A
	// timed-out request records its full elapsed latency as a transport
	// error — dropping it would be coordinated omission by another name.
	Timeout time.Duration
	// BaseBackoff seeds the closed-loop 429 backoff when the server sent
	// no Retry-After (default 2ms); it doubles per consecutive 429.
	BaseBackoff time.Duration
	// MaxBackoff caps every closed-loop backoff sleep, including a
	// server-requested Retry-After (default 250ms) — "honor the server,
	// but bounded" so one header cannot park the generator.
	MaxBackoff time.Duration
	// Buckets is the latency histogram ladder (default LoadBuckets).
	Buckets []float64
}

func (d *Driver) workers() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return 4 * runtime.GOMAXPROCS(0)
}

func (d *Driver) timeout() time.Duration {
	if d.Timeout > 0 {
		return d.Timeout
	}
	return 10 * time.Second
}

func (d *Driver) baseBackoff() time.Duration {
	if d.BaseBackoff > 0 {
		return d.BaseBackoff
	}
	return 2 * time.Millisecond
}

func (d *Driver) maxBackoff() time.Duration {
	if d.MaxBackoff > 0 {
		return d.MaxBackoff
	}
	return 250 * time.Millisecond
}

func (d *Driver) buckets() []float64 {
	if d.Buckets != nil {
		return d.Buckets
	}
	return LoadBuckets()
}

func (d *Driver) validate() error {
	if d.Target == nil {
		return errors.New("loadgen: Driver.Target is required")
	}
	return d.Workload.Validate()
}

// panicBox collects the first worker panic so the phase can surface it
// as an error instead of killing the process (the gosupervise
// contract applied to load workers).
type panicBox struct {
	mu  sync.Mutex
	err error
}

func (b *panicBox) note(p interface{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = fmt.Errorf("loadgen: worker panicked: %v", p)
	}
}

func (b *panicBox) first() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// RunOpen drives an open-loop phase: requests arrive on a Poisson
// schedule at qps for the given duration, with latency measured from
// each request's intended (scheduled) start time. When the server or
// the worker pool falls behind, requests start late and the queueing
// delay lands in the recorded tail — coordinated omission cannot hide
// it. The phase issues every scheduled request even if that overruns
// duration; AchievedQPS below the offered rate is itself a saturation
// signal.
//
// Cancellation stops the phase early and returns the partial stats
// alongside ctx's error.
func (d *Driver) RunOpen(ctx context.Context, qps float64, duration time.Duration) (PhaseStats, error) {
	if err := d.validate(); err != nil {
		return PhaseStats{}, err
	}
	if qps <= 0 || duration <= 0 {
		return PhaseStats{}, fmt.Errorf("loadgen: open loop needs qps > 0 and duration > 0 (got %v, %v)", qps, duration)
	}
	n := int64(qps * duration.Seconds())
	if n < 1 {
		n = 1
	}
	// The whole arrival schedule is fixed before the first request: a
	// Poisson process thinned from one deterministic stream, so the same
	// seed offers the same instants no matter how the run goes.
	arrivals := make([]time.Duration, n)
	ar := rng.New(d.Workload.Seed ^ arrivalDomain)
	var at float64 // seconds
	for i := range arrivals {
		at += ar.Exp(qps)
		arrivals[i] = time.Duration(at * float64(time.Second))
	}

	workers := d.workers()
	cols := make([]*collector, workers)
	var next atomic.Int64
	var box panicBox
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		col := newCollector(d.buckets())
		cols[w] = col
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					box.note(p)
				}
			}()
			d.openWorker(ctx, col, arrivals, &next, start)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := newCollector(d.buckets())
	for _, col := range cols {
		merged.merge(col)
	}
	ps := merged.stats("open", qps, workers, elapsed)
	if err := box.first(); err != nil {
		return ps, err
	}
	return ps, ctx.Err()
}

// openWorker claims schedule slots and issues them at their intended
// instants.
func (d *Driver) openWorker(ctx context.Context, col *collector, arrivals []time.Duration, next *atomic.Int64, start time.Time) {
	timeout := d.timeout()
	for {
		if ctx.Err() != nil {
			return // budget poll: stop claiming new slots on cancellation
		}
		i := next.Add(1) - 1
		if i >= int64(len(arrivals)) {
			return
		}
		intended := start.Add(arrivals[i])
		if wait := time.Until(intended); wait > 0 {
			if !sleepCtx(ctx, wait) {
				return
			}
		}
		req := d.Workload.Request(uint64(i))
		rctx, cancel := context.WithTimeout(ctx, timeout)
		out := d.Target.Do(rctx, req)
		cancel()
		col.observe(out, time.Since(intended))
	}
}

// RunClosed drives a closed-loop phase: Workers workers issue requests
// back to back for duration, honoring Retry-After on 429 with a capped
// deterministic exponential backoff. Latency is measured from the
// actual issue time (service latency, not a tail claim — see the
// package comment).
func (d *Driver) RunClosed(ctx context.Context, duration time.Duration) (PhaseStats, error) {
	if err := d.validate(); err != nil {
		return PhaseStats{}, err
	}
	if duration <= 0 {
		return PhaseStats{}, fmt.Errorf("loadgen: closed loop needs duration > 0 (got %v)", duration)
	}
	workers := d.workers()
	cols := make([]*collector, workers)
	var next atomic.Int64
	var box panicBox
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < workers; w++ {
		col := newCollector(d.buckets())
		cols[w] = col
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					box.note(p)
				}
			}()
			d.closedWorker(ctx, col, &next, deadline)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := newCollector(d.buckets())
	for _, col := range cols {
		merged.merge(col)
	}
	ps := merged.stats("closed", 0, workers, elapsed)
	if err := box.first(); err != nil {
		return ps, err
	}
	return ps, ctx.Err()
}

// closedWorker issues stream requests until the deadline, backing off
// on 429. A rejected request is not replayed — the stream moves on and
// the backoff spaces the next attempt — so the claimed index sequence
// stays contiguous for the digest contract.
func (d *Driver) closedWorker(ctx context.Context, col *collector, next *atomic.Int64, deadline time.Time) {
	timeout := d.timeout()
	base, maxBackoff := d.baseBackoff(), d.maxBackoff()
	consecutive := 0
	for {
		if ctx.Err() != nil {
			return // budget poll
		}
		if !time.Now().Before(deadline) {
			return
		}
		i := next.Add(1) - 1
		req := d.Workload.Request(uint64(i))
		issued := time.Now()
		rctx, cancel := context.WithTimeout(ctx, timeout)
		out := d.Target.Do(rctx, req)
		cancel()
		col.observe(out, time.Since(issued))

		if out.Err == nil && out.Status == 429 {
			backoff := out.RetryAfter
			if backoff <= 0 {
				backoff = base << uint(consecutive)
			}
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			if consecutive < 16 {
				consecutive++
			}
			if until := time.Until(deadline); backoff > until {
				backoff = until
			}
			if backoff > 0 {
				col.backoffNS += backoff.Nanoseconds()
				if !sleepCtx(ctx, backoff) {
					return
				}
			}
		} else {
			consecutive = 0
		}
	}
}

// sleepCtx sleeps for dur unless ctx is cancelled first; it reports
// whether the full sleep completed.
func sleepCtx(ctx context.Context, dur time.Duration) bool {
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
