package loadgen

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"github.com/sigdata/goinfmax/internal/rng"
)

// Workload is the deterministic request-stream specification. Request i
// is a pure function of (Workload, i): the generator derives an
// independent O(1)-indexed RNG stream per index — the RRSampler idiom —
// so the stream is byte-identical no matter how many workers consume it
// or in what order they claim indices.
//
// The cache-hit knob works by construction, not by measurement: with
// probability HotFrac a request is redrawn from a fixed pool of HotPool
// distinct requests, so after warmup the server's canonical-request LRU
// converges to roughly HotFrac cache hits regardless of rate.
type Workload struct {
	// Seed roots every per-index stream; same Seed ⇒ same stream.
	Seed uint64 `json:"seed"`
	// Nodes is the served graph's node count: seed IDs are drawn from
	// [0, Nodes). Required.
	Nodes int32 `json:"nodes"`
	// SpreadFrac is the fraction of /v1/spread requests; the rest are
	// /v1/seeds (default 0.7).
	SpreadFrac float64 `json:"spread_frac"`
	// SetMin..SetMax bounds the spread seed-set size (default 1..10).
	SetMin int `json:"set_min"`
	SetMax int `json:"set_max"`
	// KMin..KMax bounds the /v1/seeds k (default 1..20).
	KMin int `json:"k_min"`
	KMax int `json:"k_max"`
	// HotFrac is the probability a request is drawn from the hot pool
	// (the cache-hit knob; default 0.5). Zero disables the pool.
	HotFrac float64 `json:"hot_frac"`
	// HotPool is the number of distinct hot requests (default 64).
	HotPool int `json:"hot_pool"`
	// EvalSims, when > 0, asks spread requests for MC refinement.
	EvalSims int `json:"eval_sims,omitempty"`
	// BudgetMS, when > 0, attaches a per-request budget_ms.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// hotDomain separates the hot pool's RNG universe from the per-index
// one, so pool entry j never collides with stream index j.
const hotDomain = 0x9e3779b97f4a7c15

// WithDefaults fills unset knobs with the documented defaults.
func (w Workload) WithDefaults() Workload {
	if w.SpreadFrac == 0 {
		w.SpreadFrac = 0.7
	}
	if w.SetMin == 0 {
		w.SetMin = 1
	}
	if w.SetMax == 0 {
		w.SetMax = 10
	}
	if w.KMin == 0 {
		w.KMin = 1
	}
	if w.KMax == 0 {
		w.KMax = 20
	}
	if w.HotFrac == 0 {
		w.HotFrac = 0.5
	}
	if w.HotPool == 0 {
		w.HotPool = 64
	}
	return w
}

// Validate reports the first nonsensical knob.
func (w Workload) Validate() error {
	switch {
	case w.Nodes <= 0:
		return fmt.Errorf("loadgen: workload needs Nodes > 0 (got %d)", w.Nodes)
	case w.SpreadFrac < 0 || w.SpreadFrac > 1:
		return fmt.Errorf("loadgen: SpreadFrac %v outside [0,1]", w.SpreadFrac)
	case w.HotFrac < 0 || w.HotFrac > 1:
		return fmt.Errorf("loadgen: HotFrac %v outside [0,1]", w.HotFrac)
	case w.SetMin < 1 || w.SetMax < w.SetMin:
		return fmt.Errorf("loadgen: seed-set size range [%d,%d] invalid", w.SetMin, w.SetMax)
	case w.KMin < 1 || w.KMax < w.KMin:
		return fmt.Errorf("loadgen: k range [%d,%d] invalid", w.KMin, w.KMax)
	case w.HotFrac > 0 && w.HotPool < 1:
		return fmt.Errorf("loadgen: HotFrac %v needs HotPool >= 1 (got %d)", w.HotFrac, w.HotPool)
	case w.EvalSims < 0:
		return fmt.Errorf("loadgen: EvalSims %d negative", w.EvalSims)
	case w.BudgetMS < 0:
		return fmt.Errorf("loadgen: BudgetMS %d negative", w.BudgetMS)
	}
	return nil
}

// Request generates the i-th request of the stream.
func (w Workload) Request(i uint64) Request {
	r := rng.New(w.Seed + i*hotDomain)
	if w.HotFrac > 0 && r.Float64() < w.HotFrac {
		j := uint64(r.Intn(w.HotPool))
		return w.generate(rng.New((w.Seed ^ hotDomain) + j*hotDomain))
	}
	return w.generate(r)
}

// generate builds one request from an RNG stream. Bodies are appended
// byte-by-byte in fixed field order; nothing here may consult a map or
// the clock.
func (w Workload) generate(r *rng.Source) Request {
	if r.Float64() < w.SpreadFrac {
		size := w.SetMin + r.Intn(w.SetMax-w.SetMin+1)
		seeds := make([]int32, 0, size)
		for len(seeds) < size {
			v := r.Int31n(w.Nodes)
			dup := false
			for _, s := range seeds {
				if s == v {
					dup = true
					break
				}
			}
			if !dup {
				seeds = append(seeds, v)
			}
			if int(w.Nodes) <= len(seeds) {
				break // degenerate graph smaller than the requested set
			}
		}
		body := make([]byte, 0, 24+8*len(seeds))
		body = append(body, `{"seeds":[`...)
		for i, s := range seeds {
			if i > 0 {
				body = append(body, ',')
			}
			body = strconv.AppendInt(body, int64(s), 10)
		}
		body = append(body, ']')
		if w.EvalSims > 0 {
			body = append(body, `,"evalsims":`...)
			body = strconv.AppendInt(body, int64(w.EvalSims), 10)
		}
		body = w.appendBudget(body)
		body = append(body, '}')
		return Request{Path: "/v1/spread", Body: body}
	}
	k := w.KMin + r.Intn(w.KMax-w.KMin+1)
	body := make([]byte, 0, 32)
	body = append(body, `{"k":`...)
	body = strconv.AppendInt(body, int64(k), 10)
	body = w.appendBudget(body)
	body = append(body, '}')
	return Request{Path: "/v1/seeds", Body: body}
}

func (w Workload) appendBudget(body []byte) []byte {
	if w.BudgetMS > 0 {
		body = append(body, `,"budget_ms":`...)
		body = strconv.AppendInt(body, w.BudgetMS, 10)
	}
	return body
}

// Digest fingerprints the first n requests of the stream: FNV-1a over
// each request's path and body in index order. Two configurations with
// equal digests issue byte-identical streams; the imload report records
// it so reproducibility is checkable across runs and worker counts.
func (w Workload) Digest(n uint64) uint64 {
	h := fnv.New64a()
	for i := uint64(0); i < n; i++ {
		req := w.Request(i)
		_, _ = h.Write([]byte(req.Path))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write(req.Body)
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
