// Package loadgen is the serving layer's measurement instrument: a
// deterministic, coordinated-omission-free load generator for imserve.
//
// The source paper's core lesson is that performance claims only hold
// up under controlled, apples-to-apples measurement; its refutation
// (arXiv:1705.05144) shows how easily protocol choices skew
// conclusions. This package applies that rigor to the serving layer,
// where the classic protocol mistake is *coordinated omission*: a
// closed-loop client that waits for each response before sending the
// next request slows its own arrival rate exactly when the server
// stalls, so the latency samples it records systematically exclude the
// queueing delay real users would have seen. loadgen offers both
// disciplines, honestly labeled:
//
//   - Open loop (RunOpen): requests arrive on a Poisson schedule fixed
//     before the run starts, and every latency is measured from the
//     request's *intended* start time — if the server (or a saturated
//     worker pool) falls behind, the backlog shows up in the recorded
//     tail instead of silently stretching the schedule.
//   - Closed loop (RunClosed): N workers issue requests back to back,
//     honoring Retry-After on 429 with capped exponential backoff.
//     This measures server-paced service latency and is the right
//     discipline for convergence questions (does sustained overload
//     settle into a stable reject ratio?), not for tail claims.
//
// Determinism contract: the request stream is a pure function of the
// Workload — request i is generated from an O(1)-indexed RNG stream
// derived from (seed, i), never from which worker issues it, so the
// same seed reproduces a byte-identical stream at any concurrency
// (Workload.Digest pins it). Latencies are wall-clock measurements and
// are reported as data; nothing measured ever feeds back into request
// generation.
//
// The saturation search (Driver.SaturationSearch) ramps offered QPS
// until the p99 exceeds a stated SLO, then bisects the bracket to find
// the knee: the highest offered rate the server sustains within SLO.
// BENCH_load.json is this report, one leg per oracle mode.
package loadgen

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"
)

// Request is one generated query: an endpoint path and a JSON body.
// Bodies are built byte-by-byte (no map marshaling), so equal workload
// indices yield equal bytes — the digest contract depends on it.
type Request struct {
	Path string
	Body []byte
}

// Outcome is the result of issuing one Request.
type Outcome struct {
	// Status is the HTTP status code, or 0 when the transport failed.
	Status int
	// RetryAfter is the parsed Retry-After header on a 429 (0 if absent).
	RetryAfter time.Duration
	// Degraded reports whether the response body was stamped
	// degraded:true (the lifecycle fallback oracle answered).
	Degraded bool
	// Err is the transport error, nil for any HTTP response.
	Err error
}

// Target issues requests against a server. Implementations must be safe
// for concurrent use by many driver workers.
type Target interface {
	Do(ctx context.Context, req Request) Outcome
}

// degradedStamp is the body marker the serve layer puts on fallback
// answers; sniffing bytes avoids a JSON decode per response.
var degradedStamp = []byte(`"degraded":true`)

// HTTPTarget drives an external server over real sockets.
type HTTPTarget struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Client is the HTTP client; NewHTTPTarget installs one tuned for
	// high connection reuse.
	Client *http.Client
}

// NewHTTPTarget returns a target for the server rooted at base, with a
// transport sized so connection churn does not pollute the latency
// measurement at high worker counts.
func NewHTTPTarget(base string) *HTTPTarget {
	tr := &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     30 * time.Second,
	}
	return &HTTPTarget{Base: base, Client: &http.Client{Transport: tr}}
}

// Do implements Target.
func (t *HTTPTarget) Do(ctx context.Context, req Request) Outcome {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+req.Path, bytes.NewReader(req.Body))
	if err != nil {
		return Outcome{Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return Outcome{Err: err}
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close() // read-only handle; the read result already decided the outcome
	if err != nil {
		return Outcome{Status: resp.StatusCode, Err: err}
	}
	return outcomeOf(resp.StatusCode, resp.Header.Get("Retry-After"), body)
}

// HandlerTarget drives an http.Handler in-process, bypassing sockets:
// the CI-deterministic mode, and the only honest way to measure the
// sub-millisecond fast-429 path without kernel noise.
type HandlerTarget struct {
	H http.Handler
}

// Do implements Target.
func (t *HandlerTarget) Do(ctx context.Context, req Request) Outcome {
	hreq := httptest.NewRequest(http.MethodPost, req.Path, bytes.NewReader(req.Body)).WithContext(ctx)
	hreq.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	t.H.ServeHTTP(rec, hreq)
	return outcomeOf(rec.Code, rec.Header().Get("Retry-After"), rec.Body.Bytes())
}

// outcomeOf classifies one HTTP response.
func outcomeOf(status int, retryAfter string, body []byte) Outcome {
	out := Outcome{Status: status}
	if status == http.StatusTooManyRequests && retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	if bytes.Contains(body, degradedStamp) {
		out.Degraded = true
	}
	return out
}
