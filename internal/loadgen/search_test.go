package loadgen

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSaturationSearchBracketsKnee runs the search against a simulated
// server whose capacity is the driver's own 8 workers over a 2ms
// service time, ≈4000 qps: below the knee the open-loop p99 sits at
// the service time, above it the backlog blows through the 10ms SLO
// within one phase because latency is charged from each request's
// intended start. The search must bracket the knee between those
// regimes. (No admission gate here on purpose — an instant-reject
// target turns single stray 429s in short phases into fail-frac
// flakes; the latency knee is the deterministic signal.)
func TestSaturationSearchBracketsKnee(t *testing.T) {
	target := &fakeTarget{service: 2 * time.Millisecond}
	d := testDriver(target)
	res, err := d.SaturationSearch(context.Background(), SearchConfig{
		SLOP99MS:      10,
		MinQPS:        250,
		MaxQPS:        64000,
		RampFactor:    2,
		Brackets:      2,
		PhaseDuration: 150 * time.Millisecond,
		Warmup:        30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bracketed || res.Knee == nil || res.FirstOver == nil {
		t.Fatalf("search did not bracket: %+v", res)
	}
	if res.Knee.P99MS > 10 {
		t.Fatalf("knee phase p99 %.2fms violates the 10ms SLO", res.Knee.P99MS)
	}
	if res.FirstOver.P99MS <= 10 && res.FirstOver.FailFrac() <= res.Config.MaxFailFrac {
		t.Fatalf("first-over phase passes the SLO: %+v", res.FirstOver)
	}
	if res.Knee.OfferedQPS >= res.FirstOver.OfferedQPS {
		t.Fatalf("bracket inverted: knee %.0f >= first-over %.0f",
			res.Knee.OfferedQPS, res.FirstOver.OfferedQPS)
	}
	// The capacity is ~4000 qps; with wall-clock noise the knee must
	// still land between the floor and the hard ceiling.
	if res.Knee.OfferedQPS < 250 || res.Knee.OfferedQPS > 32000 {
		t.Fatalf("knee %.0f qps implausible for a ~4000 qps target", res.Knee.OfferedQPS)
	}
	if len(res.Phases) < 3 {
		t.Fatalf("only %d phases measured", len(res.Phases))
	}
}

// TestSaturationSearchUnbracketed: a server that never violates the SLO
// reports the MaxQPS phase as an unbracketed knee (lower bound), not a
// failure.
func TestSaturationSearchUnbracketed(t *testing.T) {
	target := &fakeTarget{} // instant 200s, unlimited capacity
	d := testDriver(target)
	res, err := d.SaturationSearch(context.Background(), SearchConfig{
		SLOP99MS:      1000,
		MinQPS:        100,
		MaxQPS:        400,
		RampFactor:    2,
		PhaseDuration: 40 * time.Millisecond,
		Warmup:        10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bracketed || res.Knee == nil || res.FirstOver != nil {
		t.Fatalf("expected unbracketed pass-through: %+v", res)
	}
	if res.Knee.OfferedQPS != 400 {
		t.Fatalf("unbracketed knee at %.0f, want MaxQPS 400", res.Knee.OfferedQPS)
	}
}

// TestSaturationSearchImmediateOverload: when even MinQPS fails, the
// knee is nil and FirstOver records the failing floor.
func TestSaturationSearchImmediateOverload(t *testing.T) {
	target := &fakeTarget{service: 50 * time.Millisecond}
	d := testDriver(target)
	d.Workers = 1
	res, err := d.SaturationSearch(context.Background(), SearchConfig{
		SLOP99MS:      1, // unmeetable: service alone is 50ms
		MinQPS:        200,
		MaxQPS:        400,
		PhaseDuration: 60 * time.Millisecond,
		Warmup:        time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Knee != nil || res.FirstOver == nil || res.Bracketed {
		t.Fatalf("expected immediate overload shape: %+v", res)
	}
}

func TestSearchConfigValidation(t *testing.T) {
	d := testDriver(&fakeTarget{})
	if _, err := d.SaturationSearch(context.Background(), SearchConfig{}); err == nil {
		t.Fatal("search accepted SLOP99MS=0")
	}
}

// TestReportJSONShape pins the report field names the smoke script and
// CI grep for: knee, p99_ms, workload_digest, legs/mode.
func TestReportJSONShape(t *testing.T) {
	w := testWorkload(42)
	knee := PhaseStats{Discipline: "open", OfferedQPS: 100, P99MS: 3.5}
	rep := Report{
		Suite:          "test",
		Target:         "in-process",
		Workload:       w,
		WorkloadDigest: "0123456789abcdef",
		DigestN:        1000,
		Legs:           []Leg{{Mode: "ready", Search: &SearchResult{Knee: &knee, Bracketed: true}}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"knee"`, `"p99_ms"`, `"workload_digest"`, `"mode":"ready"`, `"bracketed":true`} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("report JSON missing %s: %s", field, data)
		}
	}
}
