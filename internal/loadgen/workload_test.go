package loadgen

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

func testWorkload(seed uint64) Workload {
	return Workload{Seed: seed, Nodes: 1000}.WithDefaults()
}

// TestWorkloadStreamPure: Request(i) must be a pure function of
// (workload, i) — equal on repeated calls, and equal no matter how many
// concurrent consumers claim the indices. This is the acceptance
// criterion "same -seed reproduces a byte-identical request stream at
// any worker count".
func TestWorkloadStreamPure(t *testing.T) {
	w := testWorkload(42)
	const n = 2000
	sequential := make([]Request, n)
	for i := range sequential {
		sequential[i] = w.Request(uint64(i))
	}
	for _, workers := range []int{1, 3, 8} {
		got := make([]Request, n)
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { _ = recover() }()
				for {
					i := next.Add(1) - 1
					if i >= n {
						return
					}
					got[i] = w.Request(uint64(i))
				}
			}()
		}
		wg.Wait()
		for i := range got {
			if got[i].Path != sequential[i].Path || !bytes.Equal(got[i].Body, sequential[i].Body) {
				t.Fatalf("workers=%d: request %d differs: %s %s vs %s %s",
					workers, i, got[i].Path, got[i].Body, sequential[i].Path, sequential[i].Body)
			}
		}
	}
}

func TestWorkloadDigest(t *testing.T) {
	a, b := testWorkload(42), testWorkload(42)
	if a.Digest(500) != b.Digest(500) {
		t.Fatal("same seed produced different digests")
	}
	c := testWorkload(43)
	if a.Digest(500) == c.Digest(500) {
		t.Fatal("different seeds produced the same digest")
	}
	if a.Digest(500) == a.Digest(501) {
		t.Fatal("digest ignored the request count")
	}
}

// TestWorkloadShape decodes every generated body and checks the knobs
// actually steer the mix: endpoint fractions, value ranges, and hot-pool
// repeats (the cache-hit mechanism).
func TestWorkloadShape(t *testing.T) {
	w := Workload{Seed: 7, Nodes: 100, SpreadFrac: 0.7, SetMin: 2, SetMax: 5,
		KMin: 3, KMax: 9, HotFrac: 0.5, HotPool: 8}
	const n = 4000
	spread := 0
	distinct := make(map[string]int)
	for i := 0; i < n; i++ {
		req := w.Request(uint64(i))
		distinct[req.Path+string(req.Body)]++
		var decoded map[string]interface{}
		if err := json.Unmarshal(req.Body, &decoded); err != nil {
			t.Fatalf("request %d body is not JSON: %s (%v)", i, req.Body, err)
		}
		switch req.Path {
		case "/v1/spread":
			spread++
			seeds := decoded["seeds"].([]interface{})
			if len(seeds) < 2 || len(seeds) > 5 {
				t.Fatalf("seed-set size %d outside [2,5]", len(seeds))
			}
			for _, s := range seeds {
				if v := s.(float64); v < 0 || v >= 100 {
					t.Fatalf("seed %v outside [0,100)", v)
				}
			}
		case "/v1/seeds":
			k := decoded["k"].(float64)
			if k < 3 || k > 9 {
				t.Fatalf("k %v outside [3,9]", k)
			}
		default:
			t.Fatalf("unexpected path %s", req.Path)
		}
	}
	if frac := float64(spread) / n; frac < 0.6 || frac > 0.8 {
		t.Fatalf("spread fraction %.3f far from 0.7", frac)
	}
	// With a hot pool of 8 at 50%, roughly half the stream is repeats of
	// at most 8 bodies, so the distinct count must be way below n.
	if len(distinct) > n*3/4 {
		t.Fatalf("distinct requests %d of %d: hot pool not repeating", len(distinct), n)
	}
	hot := 0
	for _, count := range distinct {
		if count > 10 {
			hot += count
		}
	}
	if frac := float64(hot) / n; frac < 0.3 || frac > 0.7 {
		t.Fatalf("hot-pool mass %.3f far from HotFrac 0.5", frac)
	}
}

func TestWorkloadKnobsInBody(t *testing.T) {
	w := Workload{Seed: 1, Nodes: 50, SpreadFrac: 1, SetMin: 1, SetMax: 3,
		KMin: 1, KMax: 1, HotFrac: 0, HotPool: 1, EvalSims: 100, BudgetMS: 250}
	req := w.Request(0)
	if req.Path != "/v1/spread" {
		t.Fatalf("SpreadFrac=1 produced %s", req.Path)
	}
	if !bytes.Contains(req.Body, []byte(`"evalsims":100`)) || !bytes.Contains(req.Body, []byte(`"budget_ms":250`)) {
		t.Fatalf("knobs missing from body: %s", req.Body)
	}
}

func TestWorkloadValidate(t *testing.T) {
	valid := testWorkload(1)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	for name, w := range map[string]Workload{
		"no nodes":      {Seed: 1},
		"bad frac":      {Seed: 1, Nodes: 10, SpreadFrac: 1.5, SetMin: 1, SetMax: 2, KMin: 1, KMax: 2, HotFrac: 0.5, HotPool: 4},
		"bad set range": {Seed: 1, Nodes: 10, SpreadFrac: 0.5, SetMin: 5, SetMax: 2, KMin: 1, KMax: 2, HotFrac: 0.5, HotPool: 4},
		"bad k range":   {Seed: 1, Nodes: 10, SpreadFrac: 0.5, SetMin: 1, SetMax: 2, KMin: 0, KMax: 2, HotFrac: 0.5, HotPool: 4},
		"hot no pool":   {Seed: 1, Nodes: 10, SpreadFrac: 0.5, SetMin: 1, SetMax: 2, KMin: 1, KMax: 2, HotFrac: 0.5, HotPool: 0},
	} {
		if err := w.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, w)
		}
	}
}
