package simulation

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// UBLF is Liu et al.'s Upper-Bound-based Lazy Forward algorithm (CIKM
// 2014) — reference [21] of the benchmark paper's survey. It accelerates
// the MC-greedy family from the opposite direction to CELF: instead of
// re-using stale simulation results, it derives an ANALYTIC upper bound on
// every node's spread from the linear system
//
//	UB = 1 + W·UB    ⇔    UB(v) = Σ_{t≥0} (Wᵗ·1)(v),
//
// solved by truncated power iteration (the series converges whenever W's
// spectral radius is below 1, which IC edge probabilities give in
// practice). The greedy loop then works like CELF but seeds its heap with
// the bounds, so most nodes are never simulated at all: a node is only
// evaluated when its bound tops the heap, and the bound's validity
// guarantees no better node is skipped.
//
// UBLF's published speedup over CELF is largest in the FIRST iteration
// (bounds eliminate the full n-node simulation pass); subsequent
// iterations degenerate towards CELF since marginal-gain bounds loosen.
// That behaviour emerges here: the heap starts bound-initialized, and
// after each selection surviving entries keep mg-style lazy semantics.
type UBLF struct {
	// Iterations truncates the power series (default 30; the tail's
	// contribution is bounded by ‖W‖ᵏ and negligible for IC weights).
	Iterations int
}

// Name implements core.Algorithm.
func (UBLF) Name() string { return "UBLF" }

// Supports implements core.Algorithm: the bound is derived for IC.
func (UBLF) Supports(m weights.Model) bool { return m == weights.IC }

// Category implements core.Categorizer.
func (UBLF) Category() core.Category { return core.CatSimulation }

// Param implements core.Algorithm: #MC simulations, like its family.
func (UBLF) Param(weights.Model) core.Param {
	return core.Param{Name: "#MC Simulations", Spectrum: simsSpectrum, Default: DefaultSims}
}

// Select implements core.Algorithm.
func (u UBLF) Select(ctx *core.Context) ([]graph.NodeID, error) {
	iters := u.Iterations
	if iters <= 0 {
		iters = 30
	}
	r := int(ctx.Param(DefaultSims))
	e := newEstimator(ctx, r)
	g := ctx.G
	n := g.N()

	// UB = Σ Wᵗ·1 via power iteration: acc holds Wᵗ·1, ub the partial sum.
	ub := make([]float64, n)
	acc := make([]float64, n)
	next := make([]float64, n)
	for i := range ub {
		ub[i] = 1
		acc[i] = 1
	}
	ctx.Account(int64(n) * 24)
	for t := 0; t < iters; t++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		maxTerm := 0.0
		for v := graph.NodeID(0); v < n; v++ {
			s := 0.0
			to, w := g.OutNeighbors(v)
			for i, x := range to {
				s += w[i] * acc[x]
			}
			next[v] = s
			ub[v] += s
			if s > maxTerm {
				maxTerm = s
			}
		}
		acc, next = next, acc
		if maxTerm < 1e-9 {
			break // series converged
		}
	}

	// Lazy greedy over the bounds: round == -1 marks "never simulated".
	h := make(gainHeap, 0, n)
	for v := graph.NodeID(0); v < n; v++ {
		h = append(h, gainItem{node: v, gain: ub[v], round: -1})
	}
	heap.Init(&h)
	ctx.Account(int64(n) * 24)

	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if int(top.round) == len(seeds) {
			seeds = append(seeds, top.node)
			e.commit(top.node)
			heap.Pop(&h)
			continue
		}
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		top.gain = e.marginal(top.node)
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, nil
}
