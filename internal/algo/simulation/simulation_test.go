package simulation

import (
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// star builds hub→spokes with weight p: node 0 points at 1..spokes.
func star(spokes int32, p float64) *graph.Graph {
	b := graph.NewBuilder(spokes+1, true)
	for v := graph.NodeID(1); v <= spokes; v++ {
		_ = b.AddEdge(0, v, p)
	}
	return b.Build()
}

// twoStars builds two disjoint hubs: 0→{2..6}, 1→{7..9}.
func twoStars() *graph.Graph {
	b := graph.NewBuilder(10, true)
	for v := graph.NodeID(2); v <= 6; v++ {
		_ = b.AddEdge(0, v, 1)
	}
	for v := graph.NodeID(7); v <= 9; v++ {
		_ = b.AddEdge(1, v, 1)
	}
	return b.Build()
}

// randomWC builds a random simple directed WC-weighted graph.
func randomWC(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return weights.WeightedCascade{}.Apply(b.BuildSimple()).(*graph.Graph)
}

func selectSeeds(t *testing.T, alg core.Algorithm, g *graph.Graph, m weights.Model, k int, param float64) []graph.NodeID {
	t.Helper()
	ctx := core.NewContext(g, m, k, 7)
	ctx.ParamValue = param
	seeds, err := alg.Select(ctx)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	if len(seeds) != k {
		t.Fatalf("%s returned %d seeds want %d", alg.Name(), len(seeds), k)
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= g.N() || seen[s] {
			t.Fatalf("%s: bad seed set %v", alg.Name(), seeds)
		}
		seen[s] = true
	}
	return seeds
}

func TestAllPickHubFirst(t *testing.T) {
	g := star(8, 1.0)
	for _, alg := range []core.Algorithm{Greedy{}, CELF{}, CELFpp{}} {
		seeds := selectSeeds(t, alg, g, weights.IC, 1, 100)
		if seeds[0] != 0 {
			t.Fatalf("%s picked %v, hub is 0", alg.Name(), seeds)
		}
	}
}

func TestAllPickBothHubs(t *testing.T) {
	g := twoStars()
	for _, alg := range []core.Algorithm{Greedy{}, CELF{}, CELFpp{}} {
		seeds := selectSeeds(t, alg, g, weights.IC, 2, 100)
		if !((seeds[0] == 0 && seeds[1] == 1) || (seeds[0] == 1 && seeds[1] == 0)) {
			t.Fatalf("%s picked %v, want hubs {0,1}", alg.Name(), seeds)
		}
		// The larger hub must come first (greedy order).
		if seeds[0] != 0 {
			t.Fatalf("%s picked smaller hub first: %v", alg.Name(), seeds)
		}
	}
}

func TestLTSupport(t *testing.T) {
	b := graph.NewBuilder(4, true)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	for _, alg := range []core.Algorithm{Greedy{}, CELF{}, CELFpp{}} {
		if !alg.Supports(weights.LT) {
			t.Fatalf("%s must support LT", alg.Name())
		}
		seeds := selectSeeds(t, alg, g, weights.LT, 1, 50)
		if seeds[0] != 0 {
			t.Fatalf("%s under LT picked %v want chain head 0", alg.Name(), seeds)
		}
	}
}

// TestCELFMatchesGreedy: with identical simulation effort, CELF's lazy
// pruning must not change quality materially vs exhaustive GREEDY.
func TestCELFMatchesGreedyQuality(t *testing.T) {
	g := randomWC(5, 40, 200)
	const k, sims = 4, 300
	evalSpread := func(seeds []graph.NodeID) float64 {
		return diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 4000, 9, 0).Mean
	}
	greedy := evalSpread(selectSeeds(t, Greedy{}, g, weights.IC, k, sims))
	celf := evalSpread(selectSeeds(t, CELF{}, g, weights.IC, k, sims))
	celfpp := evalSpread(selectSeeds(t, CELFpp{}, g, weights.IC, k, sims))
	if celf < 0.9*greedy {
		t.Fatalf("CELF spread %v << GREEDY %v", celf, greedy)
	}
	if celfpp < 0.9*greedy {
		t.Fatalf("CELF++ spread %v << GREEDY %v", celfpp, greedy)
	}
}

// TestCELFFewerLookupsThanGreedy: the entire point of lazy evaluation.
func TestCELFFewerLookupsThanGreedy(t *testing.T) {
	g := randomWC(11, 50, 250)
	const k, sims = 5, 100
	run := func(alg core.Algorithm) int64 {
		ctx := core.NewContext(g, weights.IC, k, 3)
		ctx.ParamValue = sims
		if _, err := alg.Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Lookups
	}
	gl := run(Greedy{})
	cl := run(CELF{})
	if cl >= gl {
		t.Fatalf("CELF lookups %d not below GREEDY %d", cl, gl)
	}
}

// TestCELFppLookupsComparable reproduces the shape of paper M1/Fig. 13:
// CELF++ does not use dramatically fewer lookups than CELF (within 2×),
// because its speculative mg2 estimations are themselves lookups.
func TestCELFppLookupsComparable(t *testing.T) {
	g := randomWC(13, 50, 250)
	const k, sims = 5, 100
	run := func(alg core.Algorithm) int64 {
		ctx := core.NewContext(g, weights.IC, k, 3)
		ctx.ParamValue = sims
		if _, err := alg.Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Lookups
	}
	cl := run(CELF{})
	cpl := run(CELFpp{})
	if cpl > 3*cl || cl > 3*cpl {
		t.Fatalf("lookups wildly divergent: CELF %d vs CELF++ %d", cl, cpl)
	}
}

func TestBudgetEnforcement(t *testing.T) {
	g := randomWC(17, 200, 1000)
	for _, alg := range []core.Algorithm{Greedy{}, CELF{}, CELFpp{}} {
		res := core.Run(alg, g, core.RunConfig{
			K: 50, Model: weights.IC, Seed: 1,
			ParamValue: 10000,
			TimeBudget: 30 * 1000 * 1000, // 30ms
			EvalSims:   0,
		})
		if res.Status != core.DNF {
			t.Fatalf("%s: status %v want DNF under 30ms budget", alg.Name(), res.Status)
		}
	}
}

func TestParamMetadata(t *testing.T) {
	for _, alg := range []core.Algorithm{Greedy{}, CELF{}, CELFpp{}} {
		p := alg.Param(weights.IC)
		if p.Name != "#MC Simulations" {
			t.Fatalf("%s param %q", alg.Name(), p.Name)
		}
		if len(p.Spectrum) == 0 || p.Default <= 0 {
			t.Fatalf("%s param %+v", alg.Name(), p)
		}
		// Spectrum must be non-increasing in accuracy (here: values).
		for i := 1; i < len(p.Spectrum); i++ {
			if p.Spectrum[i] > p.Spectrum[i-1] {
				t.Fatalf("%s spectrum not sorted: %v", alg.Name(), p.Spectrum)
			}
		}
	}
	// CELF++ LT default is 10000 per paper Table 2.
	if d := (CELFpp{}).Param(weights.LT).Default; d != 10000 {
		t.Fatalf("CELF++ LT default %v", d)
	}
	if d := (CELFpp{}).Param(weights.IC).Default; d != 7500 {
		t.Fatalf("CELF++ IC default %v", d)
	}
}

func TestCategories(t *testing.T) {
	for _, alg := range []core.Algorithm{Greedy{}, CELF{}, CELFpp{}} {
		c, ok := alg.(core.Categorizer)
		if !ok || c.Category() != core.CatSimulation {
			t.Fatalf("%s category", alg.Name())
		}
	}
}
