package simulation

import (
	"math"
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

func TestUBLFPicksHub(t *testing.T) {
	g := star(8, 0.5)
	seeds := selectSeeds(t, UBLF{}, g, weights.IC, 1, 100)
	if seeds[0] != 0 {
		t.Fatalf("picked %v want hub", seeds)
	}
}

func TestUBLFICOnly(t *testing.T) {
	if (UBLF{}).Supports(weights.LT) {
		t.Fatal("UBLF's bound is IC-specific")
	}
	if p := (UBLF{}).Param(weights.IC); p.Name != "#MC Simulations" {
		t.Fatalf("param %+v", p)
	}
	c, ok := interface{}(UBLF{}).(core.Categorizer)
	if !ok || c.Category() != core.CatSimulation {
		t.Fatal("category")
	}
}

// TestUBLFBoundIsUpperBound: the analytic series must upper-bound the MC
// spread of every node (the property the lazy greedy's correctness needs).
// On the 2-arc chain with p=0.5, UB(0) = 1 + 0.5 + 0.25 = σ(0) exactly
// (chains have one path per pair); on cyclic graphs UB over-counts paths
// and exceeds σ.
func TestUBLFBoundExactOnChain(t *testing.T) {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()
	ctx := core.NewContext(g, weights.IC, 3, 1)
	ctx.ParamValue = 2000
	seeds, err := (UBLF{}).Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("first seed %v want 0 (largest bound)", seeds)
	}
}

func TestUBLFBoundDominatesSpread(t *testing.T) {
	g := randomWC(41, 40, 200)
	// Recompute the bound the way Select does.
	n := g.N()
	ub := make([]float64, n)
	acc := make([]float64, n)
	next := make([]float64, n)
	for i := range ub {
		ub[i], acc[i] = 1, 1
	}
	for t2 := 0; t2 < 40; t2++ {
		for v := graph.NodeID(0); v < n; v++ {
			s := 0.0
			to, w := g.OutNeighbors(v)
			for i, x := range to {
				s += w[i] * acc[x]
			}
			next[v] = s
			ub[v] += s
		}
		acc, next = next, acc
	}
	sim := diffusion.NewSimulator(g, weights.IC)
	for _, v := range []graph.NodeID{0, 7, 19, 33} {
		est := sim.EstimateSpread([]graph.NodeID{v}, 4000, uint64(v))
		if est.Mean > ub[v]+4*est.StdErr+1e-6 {
			t.Fatalf("node %d: σ=%v exceeds bound %v", v, est.Mean, ub[v])
		}
	}
}

// TestUBLFQualityMatchesCELF at equal simulation budgets.
func TestUBLFQualityMatchesCELF(t *testing.T) {
	g := randomWC(43, 50, 280)
	const k, sims = 4, 200
	celf := selectSeeds(t, CELF{}, g, weights.IC, k, sims)
	ublf := selectSeeds(t, UBLF{}, g, weights.IC, k, sims)
	sc := diffusion.EstimateSpreadParallel(g, weights.IC, celf, 6000, 3, 0).Mean
	su := diffusion.EstimateSpreadParallel(g, weights.IC, ublf, 6000, 3, 0).Mean
	if su < 0.9*sc {
		t.Fatalf("UBLF spread %v < 90%% of CELF %v", su, sc)
	}
}

// TestUBLFFewerLookupsThanCELF: the published claim — the bound replaces
// the full first-iteration simulation pass, so UBLF simulates far fewer
// nodes.
func TestUBLFFewerLookupsThanCELF(t *testing.T) {
	g := randomWC(47, 80, 450)
	const k, sims = 5, 100
	run := func(alg core.Algorithm) int64 {
		ctx := core.NewContext(g, weights.IC, k, 9)
		ctx.ParamValue = sims
		if _, err := alg.Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Lookups
	}
	celf, ublf := run(CELF{}), run(UBLF{})
	// CELF must simulate every node once up front (n = 80 minimum); UBLF
	// replaces that pass with the analytic bound. How much of the saving
	// survives depends on bound tightness — on dense WC graphs the
	// path-sum over-counts cycles and the bound loosens (the published
	// behaviour: UBLF's edge is largest in sparse/low-weight regimes) —
	// but it must never be MORE work than CELF.
	if ublf >= celf {
		t.Fatalf("UBLF lookups %d not below CELF %d", ublf, celf)
	}
	_ = math.Inf // keep math import for future tolerance tweaks
}
