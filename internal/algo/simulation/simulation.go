// Package simulation implements the Monte-Carlo spread-simulation family of
// IM techniques (paper §4.1 and Fig. 3): the original GREEDY hill-climbing
// of Kempe et al. (paper Alg. 2), CELF's lazy-forward evaluation and
// CELF++'s look-ahead pruning.
//
// All three estimate node influence with explicit MC simulations of the
// diffusion process; their external parameter is the number of simulations
// r per estimate (paper Table 2). The package counts "node lookups" — the
// number of spread estimations per iteration — which paper Appendix C uses
// as the environment-independent efficiency metric.
package simulation

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// DefaultSims is the paper-standard number of MC simulations (§2.2).
const DefaultSims = 10000

// simsSpectrum is the external-parameter spectrum swept by the Table 2
// experiment, most accurate first (Alg. 3 requires non-increasing accuracy).
var simsSpectrum = []float64{20000, 10000, 7500, 5000, 2500, 1000, 500, 100, 50, 25, 10}

// estimator wraps a Simulator with the bookkeeping shared by the greedy
// family: a cached σ(S) baseline and the lookup counter.
type estimator struct {
	ctx  *core.Context
	sim  *diffusion.Simulator
	r    int
	base float64 // cached σ(S) for the current seed set
	set  []graph.NodeID
}

func newEstimator(ctx *core.Context, r int) *estimator {
	return &estimator{
		ctx: ctx,
		sim: diffusion.NewSimulator(ctx.G, ctx.Model),
		r:   r,
	}
}

// sigma estimates σ(seeds) with r simulations, charging one node lookup.
func (e *estimator) sigma(seeds []graph.NodeID) float64 {
	e.ctx.Lookups++
	est := e.sim.EstimateSpread(seeds, e.r, e.ctx.RNG.Uint64())
	return est.Mean
}

// marginal estimates σ(S ∪ {v}) − σ(S) against the cached baseline.
func (e *estimator) marginal(v graph.NodeID) float64 {
	e.set = append(e.set, v)
	gain := e.sigma(e.set) - e.base
	e.set = e.set[:len(e.set)-1]
	return gain
}

// marginalPair estimates, in ONE set of r simulations (CELF++'s shared-run
// trick, Goyal et al. §3), both σ(S∪{v}) and σ(S∪{v}∪{curBest}): each run
// extends the same live-edge realization with curBest. Charged as a single
// node lookup, matching how the paper's Appendix C counts them.
func (e *estimator) marginalPair(v, curBest graph.NodeID) (sigmaSv, sigmaSvB float64) {
	e.ctx.Lookups++
	e.set = append(e.set, v)
	second := []graph.NodeID{curBest}
	base := rng.New(e.ctx.RNG.Uint64())
	var sum1, sum2 float64
	for i := 0; i < e.r; i++ {
		sp1, sp12 := e.sim.RunTwoPhase(e.set, second, base.Split())
		sum1 += float64(sp1)
		sum2 += float64(sp12)
	}
	e.set = e.set[:len(e.set)-1]
	return sum1 / float64(e.r), sum2 / float64(e.r)
}

// commit adds v to the seed set and refreshes the σ(S) baseline.
func (e *estimator) commit(v graph.NodeID) {
	e.set = append(e.set, v)
	e.base = e.sigma(e.set)
}

// Greedy is Kempe et al.'s hill-climbing algorithm (paper Alg. 2): every
// iteration re-estimates the marginal gain of every node. It carries the
// (1−1/e−ε) guarantee but is non-scalable; the paper excludes it from the
// main study because CELF/CELF++ dominate it, and we keep it as the
// correctness reference for tests.
type Greedy struct{}

// Name implements core.Algorithm.
func (Greedy) Name() string { return "GREEDY" }

// Supports implements core.Algorithm; GREEDY is model-agnostic.
func (Greedy) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (Greedy) Category() core.Category { return core.CatSimulation }

// Param implements core.Algorithm.
func (Greedy) Param(weights.Model) core.Param {
	return core.Param{Name: "#MC Simulations", Spectrum: simsSpectrum, Default: DefaultSims}
}

// Select implements core.Algorithm.
func (Greedy) Select(ctx *core.Context) ([]graph.NodeID, error) {
	r := int(ctx.Param(DefaultSims))
	e := newEstimator(ctx, r)
	n := ctx.G.N()
	selected := make(map[graph.NodeID]bool, ctx.K)
	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K {
		bestV, bestGain := graph.NodeID(-1), -1.0
		for v := graph.NodeID(0); v < n; v++ {
			if selected[v] {
				continue
			}
			if err := ctx.CheckNow(); err != nil {
				return nil, err
			}
			if g := e.marginal(v); g > bestGain {
				bestGain, bestV = g, v
			}
		}
		selected[bestV] = true
		seeds = append(seeds, bestV)
		e.commit(bestV)
	}
	return seeds, nil
}

// CELF is Leskovec et al.'s lazy-forward greedy (paper §4.1): marginal
// gains can only shrink as S grows (submodularity), so a stale top-of-heap
// gain that still dominates after re-evaluation is selected without
// touching other nodes.
type CELF struct{}

// Name implements core.Algorithm.
func (CELF) Name() string { return "CELF" }

// Supports implements core.Algorithm.
func (CELF) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (CELF) Category() core.Category { return core.CatSimulation }

// Param implements core.Algorithm.
func (CELF) Param(weights.Model) core.Param {
	return core.Param{Name: "#MC Simulations", Spectrum: simsSpectrum, Default: DefaultSims}
}

// Select implements core.Algorithm.
func (CELF) Select(ctx *core.Context) ([]graph.NodeID, error) {
	r := int(ctx.Param(DefaultSims))
	e := newEstimator(ctx, r)
	n := ctx.G.N()

	h := make(gainHeap, 0, n)
	for v := graph.NodeID(0); v < n; v++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		h = append(h, gainItem{node: v, gain: e.sigma([]graph.NodeID{v}), round: 0})
	}
	heap.Init(&h)
	ctx.Account(int64(n) * 24) // heap entries

	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if int(top.round) == len(seeds) {
			seeds = append(seeds, top.node)
			e.commit(top.node)
			heap.Pop(&h)
			continue
		}
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		top.gain = e.marginal(top.node)
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, nil
}

// CELFpp is Goyal et al.'s CELF++ (paper §4.1): alongside the marginal gain
// mg1 w.r.t. S it speculatively tracks mg2, the gain w.r.t. S ∪ {cur_best}.
// If cur_best is indeed picked next, the node's gain update is free. The
// paper's M1 finding — the speculation rarely pays for its extra
// simulations — emerges from this faithful implementation.
type CELFpp struct{}

// Name implements core.Algorithm.
func (CELFpp) Name() string { return "CELF++" }

// Supports implements core.Algorithm.
func (CELFpp) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (CELFpp) Category() core.Category { return core.CatSimulation }

// Param implements core.Algorithm.
func (CELFpp) Param(m weights.Model) core.Param {
	def := 7500.0 // paper Table 2: 7500 under IC/WC, 10000 under LT
	if m == weights.LT {
		def = 10000
	}
	return core.Param{Name: "#MC Simulations", Spectrum: simsSpectrum, Default: def}
}

// Select implements core.Algorithm.
func (CELFpp) Select(ctx *core.Context) ([]graph.NodeID, error) {
	def := 7500.0
	if ctx.Model == weights.LT {
		def = 10000
	}
	r := int(ctx.Param(def))
	e := newEstimator(ctx, r)
	n := ctx.G.N()

	h := make(ppHeap, 0, n)
	curBest := graph.NodeID(-1)
	curBestGain := -1.0
	for v := graph.NodeID(0); v < n; v++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		var it ppItem
		if curBest >= 0 {
			// mg1 = σ({v}) and mg2 = σ({v, cur_best}) − σ({cur_best}) from
			// ONE shared set of simulations (the trick that keeps CELF++'s
			// per-lookup cost near CELF's — paper M1).
			s1, s12 := e.marginalPair(v, curBest)
			it = ppItem{node: v, mg1: s1, mg2: s12 - curBestGain, prevBest: curBest}
		} else {
			mg1 := e.sigma([]graph.NodeID{v})
			it = ppItem{node: v, mg1: mg1, mg2: mg1, prevBest: -1}
		}
		if it.mg1 > curBestGain {
			curBestGain, curBest = it.mg1, v
		}
		h = append(h, it)
	}
	heap.Init(&h)
	ctx.Account(int64(n) * 40)

	seeds := make([]graph.NodeID, 0, ctx.K)
	lastSeed := graph.NodeID(-1)
	var sigmaSCur float64 // σ(S ∪ {cur_best}) cache
	var sigmaSCurFor graph.NodeID = -1

	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if int(top.flag) == len(seeds) {
			seeds = append(seeds, top.node)
			lastSeed = top.node
			e.commit(top.node)
			heap.Pop(&h)
			curBest, curBestGain = -1, -1
			sigmaSCurFor = -1
			continue
		}
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		if top.prevBest == lastSeed && int(top.flag) == len(seeds)-1 {
			// Speculation hit: mg2 was computed w.r.t. S ∪ {lastSeed} = S,
			// so the fresh marginal is available with NO simulations.
			top.mg1 = top.mg2
		} else if curBest >= 0 {
			// σ(S∪{cur_best}) is shared by every mg2 this iteration;
			// refresh it once per cur_best change.
			if sigmaSCurFor != curBest {
				e.set = append(e.set, curBest)
				sigmaSCur = e.sigma(e.set)
				e.set = e.set[:len(e.set)-1]
				sigmaSCurFor = curBest
			}
			s1, s12 := e.marginalPair(top.node, curBest)
			top.mg1 = s1 - e.base
			top.mg2 = s12 - sigmaSCur
			top.prevBest = curBest
		} else {
			top.mg1 = e.marginal(top.node)
			top.mg2 = top.mg1
			top.prevBest = -1
		}
		top.flag = int32(len(seeds))
		if top.mg1 > curBestGain {
			curBestGain, curBest = top.mg1, top.node
		}
		heap.Fix(&h, 0)
	}
	return seeds, nil
}

type gainItem struct {
	node  graph.NodeID
	gain  float64
	round int32
}

type gainHeap []gainItem

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type ppItem struct {
	node     graph.NodeID
	mg1, mg2 float64
	prevBest graph.NodeID
	flag     int32
}

type ppHeap []ppItem

func (h ppHeap) Len() int            { return len(h) }
func (h ppHeap) Less(i, j int) bool  { return h[i].mg1 > h[j].mg1 }
func (h ppHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ppHeap) Push(x interface{}) { *h = append(*h, x.(ppItem)) }
func (h *ppHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
