// Package rrset implements the reverse-reachable-set sampling family of IM
// techniques (paper §4.2 and Fig. 3): RIS (Borgs et al.), TIM+ (Tang et
// al. 2014) and IMM (Tang et al. 2015).
//
// All three sample RR sets — the nodes that can reach a uniformly random
// root in a random live-edge instantiation — and select seeds by greedy
// maximum coverage; a node covering many RR sets has proportionally large
// expected spread (E[n · coverage] = σ). Their external parameter is the
// approximation slack ε (paper Table 2); smaller ε means more samples.
//
// The implementations deliberately reproduce two behaviours the paper
// dissects:
//
//   - the memory blow-up under IC with constant weights (RR sets grow with
//     edge probability; paper Fig. 1a and M6), surfaced through
//     Context.Account so budgeted runs "crash" exactly like the originals;
//   - the EXTRAPOLATED spread estimate n·F(S) the reference codes print
//     instead of an MC estimate (paper M4 and Appendix A), surfaced via
//     Context.EstimatedSpread.
package rrset

import (
	"math"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/weights"
)

// epsSpectrum is the ε spectrum of the Table 2 sweep, most accurate first.
var epsSpectrum = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// collection accumulates RR sets with budget-aware accounting in one of two
// modes, selected by Context.ArenaBytes:
//
//   - Materialized (ArenaBytes == 0, the paper's measurement): all sets live
//     in one flat SetStore arena; Context.Account is charged its true
//     (capacity-based) footprint, so the paper's M6 memory-blow-up
//     reproduction stays faithful — budgeted runs still crash at the same
//     scale they did with per-set slices.
//   - Streaming (ArenaBytes > 0): sets are sampled through a bounded arena
//     (diffusion.SampleStream) and folded batch-by-batch into an incremental
//     coverage builder that spills raw sets to disk; resident memory is the
//     arena bound plus O(n) builder state plus — only while a greedy cover
//     runs — one inversion.
//
// Both modes draw exactly one ctx.RNG value per extend and derive per-sample
// streams from it by global index, so seeds and extrapolated spreads are
// byte-identical across modes, worker counts and graph backends.
type collection struct {
	ctx     *core.Context
	sampler *diffusion.RRSampler
	store   *graphalgo.SetStore        // materialized mode (nil when streaming)
	builder *graphalgo.CoverageBuilder // streaming mode (nil when materialized)
	count   int64                      // streaming mode: sets folded so far
}

func newCollection(ctx *core.Context) *collection {
	c := &collection{
		ctx:     ctx,
		sampler: diffusion.NewRRSampler(ctx.G, ctx.Model),
	}
	c.sampler.StealChunk = ctx.StealChunk
	if ctx.ArenaBytes > 0 {
		c.builder = graphalgo.NewCoverageBuilder(ctx.G.N(), ctx.SpillDir)
		ctx.Account(c.builder.MemoryBytes())
	} else {
		c.store = graphalgo.NewSetStore()
	}
	return c
}

// streaming reports whether the collection runs in bounded-arena mode.
func (c *collection) streaming() bool { return c.builder != nil }

// close releases streaming-mode resources (spill file, accounted builder
// state). Algorithms defer it; materialized mode is a no-op — the store's
// charge stays visible until the run ends, as before.
func (c *collection) close() {
	if c.builder != nil {
		c.ctx.Account(-c.builder.MemoryBytes())
		// Best-effort: a leaked temp file is the worst case, and the OS
		// temp dir reaps those.
		_ = c.builder.Close()
		c.builder = nil
	}
}

// size returns the number of sets currently held.
func (c *collection) size() int64 {
	if c.streaming() {
		return c.count
	}
	return int64(c.store.Len())
}

// extend samples RR sets until the collection holds target sets, fanning
// the sampling out over ctx.SampleWorkers() deterministic streams. The
// resulting set sequence is byte-identical for any worker count and either
// mode: each extend call consumes exactly one draw of ctx.RNG for the
// batch's base seed, and the samplers derive per-sample streams from it by
// global index.
func (c *collection) extend(target int64) error {
	need := target - c.size()
	if need <= 0 {
		return nil
	}
	baseSeed := c.ctx.RNG.Uint64()
	if c.streaming() {
		before := c.builder.MemoryBytes()
		added, err := c.sampler.SampleStream(need, baseSeed, c.streamConfig(),
			func(batch *graphalgo.SetStore) error {
				if err := c.builder.Add(batch); err != nil {
					return err
				}
				c.count += int64(batch.Len())
				return nil
			}, c.ctx.Check, c.ctx.Account)
		c.ctx.Account(c.builder.MemoryBytes() - before)
		c.ctx.Lookups += added
		return err
	}
	added, err := c.sampler.SampleBatch(c.store, need, baseSeed,
		c.ctx.SampleWorkers(), c.ctx.Check, c.ctx.Account)
	c.ctx.Lookups += added // one lookup = one RR set sampled
	return err
}

func (c *collection) streamConfig() diffusion.StreamConfig {
	return diffusion.StreamConfig{
		ArenaBytes: c.ctx.ArenaBytes,
		Workers:    c.ctx.SampleWorkers(),
	}
}

// reset discards all sets (between IMM's sampling and selection phases the
// original keeps them; TIM+'s KPT phase discards — both modeled). The
// accounting credit is the exact arena footprint, returning the charge to
// zero for an otherwise-idle context.
func (c *collection) reset() error {
	if c.streaming() {
		if err := c.builder.Reset(); err != nil {
			return err
		}
		c.count = 0
		return nil
	}
	c.ctx.Account(-c.store.Bytes())
	c.store.Reset()
	c.ctx.Account(c.store.Bytes())
	return nil
}

// problem builds the coverage problem over the current sets. Both paths
// produce field-for-field identical problems (the builder replays its spill
// through the same counting-sort passes NewCoverageProblem runs in memory).
func (c *collection) problem() (*graphalgo.CoverageProblem, error) {
	if c.streaming() {
		return c.builder.Build()
	}
	return graphalgo.NewCoverageProblem(c.ctx.G.N(), c.store), nil
}

// cover runs greedy max-cover for k seeds and returns them with the covered
// fraction F(S). GreedyMaxCover allocates its Seeds slice fresh on every
// call (it shares no memory with the problem), so the result is returned
// without a defensive copy. In streaming mode the transient inversion is
// accounted for the duration of the greedy.
func (c *collection) cover(k int) ([]graph.NodeID, float64, error) {
	cp, err := c.problem()
	if err != nil {
		return nil, 0, err
	}
	if c.streaming() {
		b := cp.MemoryBytes()
		c.ctx.Account(b)
		defer c.ctx.Account(-b)
	}
	res := cp.GreedyMaxCover(k)
	return res.Seeds, res.Fraction, nil
}

// coveredBy returns how many of the collection's sets contain at least one
// of the given seeds (SSA's stare statistic). The materialized path scans
// the raw sets; the streaming path counts distinct memberships on the
// inversion — the two figures are identical by construction.
func (c *collection) coveredBy(inSeed map[graph.NodeID]struct{}) (int64, error) {
	if c.streaming() {
		cp, err := c.builder.Build()
		if err != nil {
			return 0, err
		}
		seeds := make([]graph.NodeID, 0, len(inSeed))
		for s := range inSeed {
			seeds = append(seeds, s)
		}
		return cp.CoverageOf(seeds), nil
	}
	covered := int64(0)
	for i := 0; i < c.store.Len(); i++ {
		for _, v := range c.store.Set(i) {
			if _, ok := inSeed[v]; ok {
				covered++
				break
			}
		}
	}
	return covered, nil
}

// ephemeral samples count transient RR sets — sampled, visited, discarded —
// and calls visit once per set in global sample order. The materialized
// path reuses the caller's unaccounted scratch store (TIM+'s KPT batches,
// which the original likewise never charged); the streaming path visits
// bounded-arena batches in place, so even the KPT estimation phase runs in
// bounded memory. Consumes exactly one ctx.RNG draw either way.
func (c *collection) ephemeral(count int64, scratch *graphalgo.SetStore, visit func(set []graph.NodeID)) error {
	baseSeed := c.ctx.RNG.Uint64()
	if c.streaming() {
		added, err := c.sampler.SampleStream(count, baseSeed, c.streamConfig(),
			func(batch *graphalgo.SetStore) error {
				for j := 0; j < batch.Len(); j++ {
					visit(batch.Set(j))
				}
				return nil
			}, c.ctx.Check, nil)
		c.ctx.Lookups += added
		return err
	}
	scratch.Reset()
	added, err := c.sampler.SampleBatch(scratch, count, baseSeed,
		c.ctx.SampleWorkers(), c.ctx.Check, nil)
	c.ctx.Lookups += added
	if err != nil {
		return err
	}
	for j := 0; j < scratch.Len(); j++ {
		visit(scratch.Set(j))
	}
	return nil
}

// logNChooseK computes ln C(n, k) via lgamma.
func logNChooseK(n, k float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	a, _ := math.Lgamma(n + 1)
	b, _ := math.Lgamma(k + 1)
	c, _ := math.Lgamma(n - k + 1)
	return a - b - c
}

// RIS is the original Borgs et al. reverse-influence-sampling baseline. Its
// external parameter here is interpreted as ε and mapped onto a fixed
// sample budget θ = c·(m+n)·log n·ε⁻² capped for practicality; the paper
// excludes RIS from the main study because TIM+ and IMM dominate it, and we
// keep it as the family baseline.
type RIS struct{}

// Name implements core.Algorithm.
func (RIS) Name() string { return "RIS" }

// Supports implements core.Algorithm.
func (RIS) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (RIS) Category() core.Category { return core.CatRRSet }

// Param implements core.Algorithm.
func (RIS) Param(weights.Model) core.Param {
	return core.Param{Name: "epsilon", Spectrum: epsSpectrum, Default: 0.2}
}

// Select implements core.Algorithm.
func (RIS) Select(ctx *core.Context) ([]graph.NodeID, error) {
	eps := ctx.Param(0.2)
	n := float64(ctx.G.N())
	// Simplified threshold from Borgs et al.'s analysis, scaled to stay
	// laptop-practical; the k-dependence enters via log C(n,k).
	theta := int64((n*math.Log(n) + logNChooseK(n, float64(ctx.K))) / (eps * eps))
	if theta < int64(ctx.K) {
		theta = int64(ctx.K)
	}
	if max := int64(2_000_000); theta > max {
		theta = max
	}
	c := newCollection(ctx)
	defer c.close()
	if err := c.extend(theta); err != nil {
		return nil, err
	}
	seeds, frac, err := c.cover(ctx.K)
	if err != nil {
		return nil, err
	}
	ctx.EstimatedSpread = frac * n
	return seeds, nil
}

// TIMPlus is TIM+ (Tang, Xiao, Shi — SIGMOD 2014): two-phase parameter
// estimation (KPT estimation + refinement) followed by node selection on
// θ = λ/KPT⁺ RR sets.
type TIMPlus struct{}

// Name implements core.Algorithm.
func (TIMPlus) Name() string { return "TIM+" }

// Supports implements core.Algorithm.
func (TIMPlus) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (TIMPlus) Category() core.Category { return core.CatRRSet }

// Param implements core.Algorithm.
func (TIMPlus) Param(m weights.Model) core.Param {
	// Paper Table 2 optima: IC 0.05, WC 0.15, LT 0.35. The scheme-level
	// distinction (constant vs WC weights) is not visible here, so the
	// default is the mid value; Table 2 is reproduced by the sweep.
	def := 0.15
	if m == weights.LT {
		def = 0.35
	}
	return core.Param{Name: "epsilon", Spectrum: epsSpectrum, Default: def}
}

// Select implements core.Algorithm.
func (t TIMPlus) Select(ctx *core.Context) ([]graph.NodeID, error) {
	eps := ctx.Param(0.15)
	n := float64(ctx.G.N())
	m := float64(ctx.G.M())
	k := float64(ctx.K)
	const l = 1.0 // confidence parameter: 1 − n^−l success probability

	c := newCollection(ctx)
	defer c.close()

	// Phase 1: KPT estimation (TIM Alg. 2). KPT ≈ the expected spread of a
	// uniformly random size-k seed set; measured through the width
	// statistic κ(R) = 1 − (1 − w(R)/m)^k of sampled RR sets. KPT sets are
	// transient — sampled, measured, discarded — so they go through the
	// collection's ephemeral path (an unaccounted scratch store, or the
	// bounded arena in streaming mode; the original likewise never charged
	// them).
	kpt := 1.0
	logn := math.Log2(n)
	scratch := graphalgo.NewSetStore()
	for i := 1.0; i < logn; i++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		ci := int64((6*l*math.Log(n) + 6*math.Log(logn)) * math.Exp2(i))
		if ci < 1 {
			ci = 1
		}
		sum := 0.0
		err := c.ephemeral(ci, scratch, func(set []graph.NodeID) {
			width := 0.0
			for _, v := range set {
				width += float64(ctx.G.InDegree(v))
			}
			sum += 1 - math.Pow(1-width/m, k)
		})
		if err != nil {
			return nil, err
		}
		if sum/float64(ci) > 1/math.Exp2(i) {
			kpt = n * sum / (2 * float64(ci))
			break
		}
	}

	// Phase 2: KPT refinement (TIM+ Alg. 3): run an intermediate greedy on
	// θ′ RR sets, then estimate the intermediate seed set's spread to tighten
	// the lower bound.
	epsPrime := 5 * math.Cbrt(l*eps*eps/(l+k/math.Log(n)*math.Log(2)))
	if epsPrime > 1 {
		epsPrime = 1
	}
	lambdaPrime := (2 + epsPrime) * l * n * math.Log(n) / (epsPrime * epsPrime)
	thetaPrime := int64(lambdaPrime / kpt)
	if thetaPrime < int64(ctx.K) {
		thetaPrime = int64(ctx.K)
	}
	if err := c.extend(thetaPrime); err != nil {
		return nil, err
	}
	_, frac, err := c.cover(ctx.K)
	if err != nil {
		return nil, err
	}
	kptPlus := frac * n / (1 + epsPrime)
	if kptPlus < kpt {
		kptPlus = kpt
	}
	if err := c.reset(); err != nil {
		return nil, err
	}

	// Phase 3: node selection on θ = λ/KPT⁺ RR sets.
	lambda := (8 + 2*eps) * n * (l*math.Log(n) + logNChooseK(n, k) + math.Log(2)) / (eps * eps)
	theta := int64(lambda / kptPlus)
	if theta < int64(ctx.K) {
		theta = int64(ctx.K)
	}
	if err := c.extend(theta); err != nil {
		return nil, err
	}
	seeds, fracFinal, err := c.cover(ctx.K)
	if err != nil {
		return nil, err
	}
	// The reference implementation reports the EXTRAPOLATED spread n·F(S)
	// (paper M4 / Appendix A), not an MC estimate.
	ctx.EstimatedSpread = fracFinal * n
	return seeds, nil
}

// IMM is the martingale-based sampler (Tang, Shi, Xiao — SIGMOD 2015):
// phase 1 derives a lower bound LB on OPT by exponential search with
// reusable RR sets; phase 2 tops the collection up to θ(LB) and selects.
type IMM struct{}

// Name implements core.Algorithm.
func (IMM) Name() string { return "IMM" }

// Supports implements core.Algorithm.
func (IMM) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (IMM) Category() core.Category { return core.CatRRSet }

// Param implements core.Algorithm.
func (IMM) Param(m weights.Model) core.Param {
	// Paper Table 2 optima: IC 0.05, WC 0.1, LT 0.1.
	def := 0.1
	return core.Param{Name: "epsilon", Spectrum: epsSpectrum, Default: def}
}

// Select implements core.Algorithm.
func (IMM) Select(ctx *core.Context) ([]graph.NodeID, error) {
	eps := ctx.Param(0.1)
	n := float64(ctx.G.N())
	k := float64(ctx.K)
	const l0 = 1.0
	// IMM adjusts l so the union bound over phases still yields 1 − n^−l0.
	l := l0 * (1 + math.Log(2)/math.Log(n))

	epsPrime := math.Sqrt2 * eps
	logBinom := logNChooseK(n, k)
	lambdaPrime := (2 + 2.0/3.0*epsPrime) * (logBinom + l*math.Log(n) + math.Log(math.Log2(n))) * n / (epsPrime * epsPrime)

	alpha := math.Sqrt(l*math.Log(n) + math.Log(2))
	beta := math.Sqrt((1 - 1/math.E) * (logBinom + l*math.Log(n) + math.Log(2)))
	lambdaStar := 2 * n * math.Pow((1-1/math.E)*alpha+beta, 2) / (eps * eps)

	c := newCollection(ctx)
	defer c.close()
	lb := 1.0
	for i := 1.0; i < math.Log2(n); i++ {
		// One phase is a coarse unit of work: poll the deadline
		// unconditionally in addition to extend's amortized checks.
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		x := n / math.Exp2(i)
		thetaI := int64(lambdaPrime / x)
		if thetaI < 1 {
			thetaI = 1
		}
		if err := c.extend(thetaI); err != nil {
			return nil, err
		}
		_, frac, err := c.cover(int(k))
		if err != nil {
			return nil, err
		}
		if n*frac >= (1+epsPrime)*x {
			lb = n * frac / (1 + epsPrime)
			break
		}
	}
	theta := int64(lambdaStar / lb)
	if theta < int64(ctx.K) {
		theta = int64(ctx.K)
	}
	// IMM reuses the phase-1 RR sets (its martingale analysis allows it).
	if err := c.extend(theta); err != nil {
		return nil, err
	}
	seeds, frac, err := c.cover(ctx.K)
	if err != nil {
		return nil, err
	}
	// Extrapolated spread, as in the reference code (paper M4).
	ctx.EstimatedSpread = frac * n
	return seeds, nil
}
