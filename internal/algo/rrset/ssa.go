package rrset

import (
	"math"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// SSA is the Stop-and-Stare algorithm of Nguyen, Thai and Dinh (SIGMOD
// 2016) — reference [23] of the benchmark paper, which could not include
// it ("published too recently") and promised to evolve the study with it.
// This implementation is that evolution.
//
// SSA tightens TIM+/IMM's sampling with an estimate-and-verify loop:
//
//	repeat with an exponentially growing RR collection R ("stop"):
//	    S ← greedy max-cover on R, Î ← n·F_R(S)
//	    verify Î on an INDEPENDENT collection R' ("stare"):
//	        I' ← n·F_{R'}(S), with enough covered samples for an
//	        (ε₂, δ)-accurate estimate
//	    if Î ≤ (1+ε₁)·I' — the optimization estimate is not inflated —
//	        return S
//
// The stare step kills exactly the failure mode the benchmark paper's M4
// dissects: seeds over-fitted to a too-small sample have inflated coverage
// on R but not on the independent R'. Constants follow the paper's
// structure with the simplified ε-split ε₁ = ε₂ = ε/2; the full δ-union
// bookkeeping is simplified to a fixed per-round confidence (documented
// deviation — we target behavioural reproduction, not the proof).
type SSA struct{}

// Name implements core.Algorithm.
func (SSA) Name() string { return "SSA" }

// Supports implements core.Algorithm.
func (SSA) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (SSA) Category() core.Category { return core.CatRRSet }

// Param implements core.Algorithm.
func (SSA) Param(weights.Model) core.Param {
	return core.Param{Name: "epsilon", Spectrum: epsSpectrum, Default: 0.1}
}

// Select implements core.Algorithm.
func (SSA) Select(ctx *core.Context) ([]graph.NodeID, error) {
	eps := ctx.Param(0.1)
	n := float64(ctx.G.N())
	const delta = 1.0 / 100 // per-round failure budget (simplified)
	eps1 := eps / 2
	eps2 := eps / 2

	// Λ: minimum covered-sample count for an (ε₂, δ) multiplicative
	// Monte-Carlo estimate (Dagum et al. stopping rule, as used by SSA).
	lambda := (1 + eps2) * (2 + 2*eps2/3) * math.Log(2/delta) / (eps2 * eps2)

	opt := newCollection(ctx) // optimization collection R
	defer opt.close()
	ver := newCollection(ctx) // verification collection R'
	defer ver.close()
	batch := int64(500 + ctx.K) // initial |R|
	maxRounds := 24             // 2^24 batches: far beyond any real need

	var seeds []graph.NodeID
	for round := 0; round < maxRounds; round++ {
		// One generate-then-verify round is a coarse unit of work: poll
		// the deadline unconditionally on top of extend's amortized checks.
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		if err := opt.extend(batch); err != nil {
			return nil, err
		}
		var fOpt float64
		var err error
		seeds, fOpt, err = opt.cover(ctx.K)
		if err != nil {
			return nil, err
		}
		estOpt := n * fOpt

		// Stare: grow R' until the seeds cover ≥ λ of its samples (or R'
		// reaches |R|, whichever first — coverage that low fails the check
		// anyway).
		inSeed := make(map[graph.NodeID]struct{}, len(seeds))
		for _, s := range seeds {
			inSeed[s] = struct{}{}
		}
		if err := ver.extend(opt.size()); err != nil {
			return nil, err
		}
		covered, err := ver.coveredBy(inSeed)
		if err != nil {
			return nil, err
		}
		for covered < int64(lambda) && ver.size() < 8*opt.size() {
			if err := ver.extend(ver.size() * 2); err != nil {
				return nil, err
			}
			if covered, err = ver.coveredBy(inSeed); err != nil {
				return nil, err
			}
		}
		estVer := n * float64(covered) / float64(ver.size())

		if covered >= int64(lambda) && estOpt <= (1+eps1)*estVer {
			// Verified: the optimization estimate is not inflated.
			ctx.EstimatedSpread = estVer
			return seeds, nil
		}
		batch = opt.size() * 2
	}
	// Statistical stop never fired within the cap (vanishingly unlikely on
	// real inputs); return the best seeds found with the verified estimate.
	ctx.EstimatedSpread = -1
	return seeds, nil
}
