package rrset

import (
	"fmt"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
)

// Index is a precomputed RR-set influence oracle in the spirit of Cohen et
// al.'s sketch-based oracles (arXiv:1408.6282): θ reverse-reachable sets
// are sampled once, inverted into per-node membership lists, and then
// arbitrary online queries are answered from the inversion without touching
// the graph again.
//
//   - SpreadOf(S) returns the extrapolated estimate n·F(S), where F(S) is
//     the fraction of RR sets hit by S — the same unbiased estimator the
//     RR-set selection algorithms report (paper M4 / Appendix A), with
//     relative error O(1/sqrt(θ·F)).
//   - SelectSeeds(k) runs lazy greedy max-cover over the stored sets, i.e.
//     the node-selection phase of TIM+/IMM decoupled from their sampling
//     phase, so per-query k costs only the greedy, never the sampling.
//
// The index is immutable after construction and safe for concurrent
// queries: SpreadOf reads shared state only, and SelectSeeds clones the
// coverage marks per call.
//
// Under a streaming build (Context.ArenaBytes > 0) the raw sets are never
// materialized: only the inversion is kept, store is nil and the index is
// not persistable (Persistable reports which). Every query answer is still
// byte-identical to a materialized build at the same seed.
type Index struct {
	n       int32
	store   *graphalgo.SetStore // nil for streaming builds
	cp      *graphalgo.CoverageProblem
	numSets int
	bytes   int64
}

// BuildIndex samples theta RR sets under ctx (graph, model, RNG, budget)
// and inverts them into a query index. The sampling fans out over
// ctx.SampleWorkers() deterministic streams — the store, and therefore
// every answer the index ever serves, is byte-identical for any worker
// count — so imserve startup parallelizes without weakening the replica
// determinism contract. Construction honors ctx's cooperative
// budget/cancellation checks and accounts index memory through
// ctx.Account, so a budgeted build DNFs/Crashes exactly like the offline
// algorithms would.
func BuildIndex(ctx *core.Context, theta int64) (*Index, error) {
	if theta < 1 {
		theta = 1
	}
	c := newCollection(ctx)
	defer c.close()
	if err := c.extend(theta); err != nil {
		return nil, err
	}
	cp, err := c.problem()
	if err != nil {
		return nil, err
	}
	ix := &Index{n: ctx.G.N(), cp: cp, numSets: cp.NumSets()}
	if c.streaming() {
		// Only the inversion survives; the spill is released by close.
		ix.bytes = cp.MemoryBytes()
		ctx.Account(ix.bytes)
	} else {
		ix.store = c.store
		ix.bytes = c.store.Bytes()
	}
	return ix, nil
}

// NewIndexFromStore rehydrates an index from a previously sampled RR-set
// store (the persistence path): the inversion is rebuilt from the arena —
// two counting-sort passes, far cheaper than resampling — so a snapshot
// only ever persists the sampled sets, never derived state. The store is
// adopted, not copied; the caller must not mutate it afterwards.
func NewIndexFromStore(n int32, store *graphalgo.SetStore) (*Index, error) {
	if n < 1 {
		return nil, fmt.Errorf("rrset: index node count %d out of range", n)
	}
	// The inversion indexes per-node membership lists: every stored
	// element must be a valid node or the counting sort would write out of
	// bounds.
	data, _ := store.Raw()
	for _, v := range data {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("rrset: stored RR-set element %d out of range [0, %d)", v, n)
		}
	}
	return &Index{
		n:       n,
		store:   store,
		cp:      graphalgo.NewCoverageProblem(n, store),
		numSets: store.Len(),
		bytes:   store.Bytes(),
	}, nil
}

// Store exposes the sampled RR-set arena for serialization. The returned
// store aliases the index's memory and must be treated as read-only. It is
// nil for a streaming build, which keeps only the inversion; check
// Persistable before serializing.
func (ix *Index) Store() *graphalgo.SetStore { return ix.store }

// Persistable reports whether the index retains the raw sets a snapshot
// needs. Streaming builds trade persistability for bounded build memory.
func (ix *Index) Persistable() bool { return ix.store != nil }

// N returns the node count of the indexed graph.
func (ix *Index) N() int32 { return ix.n }

// NumSets returns θ, the number of sampled RR sets.
func (ix *Index) NumSets() int { return ix.numSets }

// MemoryBytes returns the approximate resident size of the stored sets
// (the inversion roughly doubles it; callers wanting the full footprint
// should double this figure).
func (ix *Index) MemoryBytes() int64 { return ix.bytes }

// SpreadOf returns the index's spread estimate n·F(seeds). It does not
// mutate the index and is safe for concurrent use.
func (ix *Index) SpreadOf(seeds []graph.NodeID) float64 {
	if ix.numSets == 0 {
		return 0
	}
	covered := ix.cp.CoverageOf(seeds)
	return float64(ix.n) * float64(covered) / float64(ix.numSets)
}

// SelectSeeds greedily selects k seeds by max-cover over the stored sets
// and returns them with the extrapolated spread estimate n·F(S). poll
// (when non-nil) is invoked periodically; a non-nil return aborts the
// selection with that error, which is how per-request deadlines reach the
// greedy. Each call works on a private clone of the coverage marks, so
// concurrent selections do not interfere.
func (ix *Index) SelectSeeds(k int, poll func() error) ([]graph.NodeID, float64, error) {
	if k < 1 {
		k = 1
	}
	res, err := ix.cp.Clone().GreedyMaxCoverPoll(k, poll)
	if err != nil {
		return nil, 0, err
	}
	seeds := make([]graph.NodeID, len(res.Seeds))
	copy(seeds, res.Seeds)
	// Same expression as SpreadOf so a follow-up point query for the
	// selected set returns bit-identical spread.
	spread := float64(ix.n) * float64(res.NumCovered) / float64(ix.numSets)
	return seeds, spread, nil
}
