package rrset

import (
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// TestCollectionAccountingExact: the charge for a collection equals the
// arena's true footprint, and reset credits it back to exactly zero.
func TestCollectionAccountingExact(t *testing.T) {
	g := randomWC(41, 120, 800)
	for _, workers := range []int{1, 4} {
		ctx := core.NewContext(g, weights.IC, 3, 5)
		ctx.Workers = workers
		c := newCollection(ctx)
		entry := c.store.Bytes() // the untracked footprint of an empty store
		if err := c.extend(400); err != nil {
			t.Fatal(err)
		}
		if got, want := ctx.MemUsed(), c.store.Bytes()-entry; got != want {
			t.Fatalf("workers=%d: accounted %d want exact arena growth %d", workers, got, want)
		}
		if err := c.extend(900); err != nil { // second extend: delta-charged
			t.Fatal(err)
		}
		if got, want := ctx.MemUsed(), c.store.Bytes()-entry; got != want {
			t.Fatalf("workers=%d after re-extend: accounted %d want %d", workers, got, want)
		}
		c.reset()
		if got := ctx.MemUsed(); got != 0 {
			t.Fatalf("workers=%d: accounting did not return to zero after reset: %d", workers, got)
		}
		// A reset collection must remain usable (TIM+ reuses it for phase 3).
		if err := c.extend(50); err != nil {
			t.Fatal(err)
		}
		if c.size() != 50 || ctx.MemUsed() <= 0 {
			t.Fatalf("workers=%d: post-reset extend size=%d accounted=%d", workers, c.size(), ctx.MemUsed())
		}
	}
}

// TestExtendDeterministicAcrossWorkers: the collection's store — including
// multi-phase extends that reuse one base RNG — is byte-identical for any
// worker count.
func TestExtendDeterministicAcrossWorkers(t *testing.T) {
	g := randomWC(43, 150, 1000)
	build := func(workers int) *collection {
		ctx := core.NewContext(g, weights.IC, 3, 77)
		ctx.Workers = workers
		c := newCollection(ctx)
		for _, target := range []int64{100, 350, 1200} {
			if err := c.extend(target); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	serial := build(1)
	for _, workers := range []int{2, 8} {
		if !build(workers).store.Equal(serial.store) {
			t.Fatalf("workers=%d: store differs from serial", workers)
		}
	}
}

// TestEndToEndSeedsSerialVsParallel: the full algorithms — sampling, greedy
// max-cover, extrapolation — must produce identical seed sets and identical
// extrapolated spreads for workers ∈ {1, 2, 8} at a fixed seed.
func TestEndToEndSeedsSerialVsParallel(t *testing.T) {
	g := randomWC(47, 120, 700)
	for _, alg := range []core.Algorithm{IMM{}, TIMPlus{}, SSA{}, RIS{}} {
		run := func(workers int) ([]graph.NodeID, float64) {
			ctx := core.NewContext(g, weights.IC, 5, 123)
			ctx.ParamValue = 0.3
			ctx.Workers = workers
			seeds, err := alg.Select(ctx)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", alg.Name(), workers, err)
			}
			return seeds, ctx.EstimatedSpread
		}
		serialSeeds, serialEst := run(1)
		for _, workers := range []int{2, 8} {
			seeds, est := run(workers)
			if len(seeds) != len(serialSeeds) {
				t.Fatalf("%s workers=%d: %d seeds vs %d serial", alg.Name(), workers, len(seeds), len(serialSeeds))
			}
			for i := range seeds {
				if seeds[i] != serialSeeds[i] {
					t.Fatalf("%s workers=%d: seeds %v differ from serial %v", alg.Name(), workers, seeds, serialSeeds)
				}
			}
			if est != serialEst {
				t.Fatalf("%s workers=%d: extrapolated spread %v differs from serial %v", alg.Name(), workers, est, serialEst)
			}
		}
	}
}

// TestBuildIndexDeterministicAcrossWorkers: the serve oracle substrate
// inherits the same contract — same seed, any worker count, identical
// index answers.
func TestBuildIndexDeterministicAcrossWorkers(t *testing.T) {
	g := randomWC(53, 100, 600)
	build := func(workers int) *Index {
		ctx := core.NewContext(g, weights.IC, 1, 9)
		ctx.Workers = workers
		ix, err := BuildIndex(ctx, 1500)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	serial := build(1)
	probe := []graph.NodeID{1, 5, 9, 42}
	for _, workers := range []int{2, 8} {
		ix := build(workers)
		if !ix.store.Equal(serial.store) {
			t.Fatalf("workers=%d: index store differs from serial", workers)
		}
		if a, b := ix.SpreadOf(probe), serial.SpreadOf(probe); a != b {
			t.Fatalf("workers=%d: SpreadOf %v vs %v", workers, a, b)
		}
	}
}

// TestCrashedOnMemoryBudgetParallel: the M6 reproduction must hold with
// parallel sampling too — a budgeted build crashes mid-batch because the
// supervising goroutine charges interim arena growth while workers run.
func TestCrashedOnMemoryBudgetParallel(t *testing.T) {
	g := weights.ICConstant{P: 0.4}.Apply(randomWC(15, 300, 3000)).(*graph.Graph)
	res := core.Run(IMM{}, g, core.RunConfig{
		K: 10, Model: weights.IC, Seed: 1, ParamValue: 0.1,
		MemBudgetBytes: 32 * 1024, Workers: 4,
	})
	if res.Status != core.Crashed {
		t.Fatalf("status %v want Crashed", res.Status)
	}
}
