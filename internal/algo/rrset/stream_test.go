package rrset

import (
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

// streamTestGraph builds one WC-weighted test graph and an observationally
// identical compact-backend copy loaded through the binary format.
func streamTestGraph(t *testing.T) (csr graph.G, compact graph.G) {
	t.Helper()
	r := rng.New(17)
	n := int32(120)
	b := graph.NewBuilder(n, true)
	b.SetName("stream-test")
	for i := 0; i < 900; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	base := b.BuildSimple()
	path := filepath.Join(t.TempDir(), "g.gimb")
	if err := graph.WriteBinary(base, path, graph.BinaryWriterOptions{}); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	c, err := graph.OpenBinary(path, graph.OpenBinaryOptions{})
	if err != nil {
		t.Fatalf("OpenBinary: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	wc := weights.WeightedCascade{}
	return wc.Apply(base), wc.Apply(c)
}

type cellResult struct {
	seeds  []graph.NodeID
	spread float64
	err    error
}

func runCell(t *testing.T, alg core.Algorithm, g graph.G, workers int, arenaBytes int64, spillDir string) cellResult {
	t.Helper()
	ctx := core.NewContext(g, weights.IC, 5, 42)
	ctx.Workers = workers
	ctx.ParamValue = 0.6 // coarse ε keeps θ small; identity is what's under test
	ctx.ArenaBytes = arenaBytes
	ctx.SpillDir = spillDir
	seeds, err := alg.Select(ctx)
	return cellResult{seeds: seeds, spread: ctx.EstimatedSpread, err: err}
}

// TestStreamingMatchesMaterialized is the tentpole invariant: for every
// RR-set algorithm, seed sets and extrapolated spreads are byte-identical
// across (a) materialized vs bounded-arena streaming mode, (b) CSR vs
// compact graph backend, and (c) worker counts 1 and 8. The arena bound is
// tiny to force many rotations and spill-replay coverage builds.
func TestStreamingMatchesMaterialized(t *testing.T) {
	csr, compact := streamTestGraph(t)
	for _, alg := range []core.Algorithm{RIS{}, TIMPlus{}, IMM{}, SSA{}} {
		t.Run(alg.Name(), func(t *testing.T) {
			ref := runCell(t, alg, csr, 1, 0, "")
			if ref.err != nil {
				t.Fatalf("reference run: %v", ref.err)
			}
			if len(ref.seeds) != 5 {
				t.Fatalf("reference run returned %d seeds", len(ref.seeds))
			}
			for _, tc := range []struct {
				name    string
				g       graph.G
				workers int
				arena   int64
			}{
				{"materialized-8workers", csr, 8, 0},
				{"materialized-compact", compact, 1, 0},
				{"streaming-serial", csr, 1, 1 << 10},
				{"streaming-8workers", csr, 8, 1 << 10},
				{"streaming-compact-8workers", compact, 8, 1 << 10},
			} {
				got := runCell(t, alg, tc.g, tc.workers, tc.arena, t.TempDir())
				if got.err != nil {
					t.Fatalf("%s: %v", tc.name, got.err)
				}
				if !reflect.DeepEqual(ref.seeds, got.seeds) {
					t.Errorf("%s: seeds %v, want %v", tc.name, got.seeds, ref.seeds)
				}
				if ref.spread != got.spread {
					t.Errorf("%s: spread %v, want %v (must be bit-identical)", tc.name, got.spread, ref.spread)
				}
			}
		})
	}
}

// TestStreamingIndexMatchesMaterialized extends the invariant to the oracle
// build: a streamed index answers every query identically to a materialized
// one, while reporting itself non-persistable.
func TestStreamingIndexMatchesMaterialized(t *testing.T) {
	csr, compact := streamTestGraph(t)
	mkCtx := func(g graph.G, arena int64, dir string) *core.Context {
		ctx := core.NewContext(g, weights.IC, 5, 7)
		ctx.Workers = 4
		ctx.ArenaBytes = arena
		ctx.SpillDir = dir
		return ctx
	}
	ref, err := BuildIndex(mkCtx(csr, 0, ""), 400)
	if err != nil {
		t.Fatalf("materialized build: %v", err)
	}
	if !ref.Persistable() {
		t.Fatal("materialized index must be persistable")
	}
	streamed, err := BuildIndex(mkCtx(compact, 1<<10, t.TempDir()), 400)
	if err != nil {
		t.Fatalf("streamed build: %v", err)
	}
	if streamed.Persistable() || streamed.Store() != nil {
		t.Fatal("streamed index must not be persistable")
	}
	if ref.NumSets() != streamed.NumSets() {
		t.Fatalf("NumSets %d vs %d", ref.NumSets(), streamed.NumSets())
	}
	refSeeds, refSpread, err := ref.SelectSeeds(5, nil)
	if err != nil {
		t.Fatalf("SelectSeeds: %v", err)
	}
	gotSeeds, gotSpread, err := streamed.SelectSeeds(5, nil)
	if err != nil {
		t.Fatalf("streamed SelectSeeds: %v", err)
	}
	if !reflect.DeepEqual(refSeeds, gotSeeds) || refSpread != gotSpread {
		t.Fatalf("streamed oracle diverges: %v/%v vs %v/%v", gotSeeds, gotSpread, refSeeds, refSpread)
	}
	if got, want := streamed.SpreadOf(refSeeds), ref.SpreadOf(refSeeds); got != want {
		t.Fatalf("SpreadOf %v vs %v", got, want)
	}
}
