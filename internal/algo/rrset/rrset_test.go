package rrset

import (
	"math"
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func star(spokes int32, p float64) *graph.Graph {
	b := graph.NewBuilder(spokes+1, true)
	for v := graph.NodeID(1); v <= spokes; v++ {
		_ = b.AddEdge(0, v, p)
	}
	return b.Build()
}

func randomWC(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return weights.WeightedCascade{}.Apply(b.BuildSimple()).(*graph.Graph)
}

func randomLT(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return weights.LTUniform{}.Apply(b.BuildSimple()).(*graph.Graph)
}

func selectSeeds(t *testing.T, alg core.Algorithm, g *graph.Graph, m weights.Model, k int, eps float64) ([]graph.NodeID, *core.Context) {
	t.Helper()
	ctx := core.NewContext(g, m, k, 11)
	ctx.ParamValue = eps
	seeds, err := alg.Select(ctx)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	if len(seeds) != k {
		t.Fatalf("%s: %d seeds want %d", alg.Name(), len(seeds), k)
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= g.N() || seen[s] {
			t.Fatalf("%s: invalid seeds %v", alg.Name(), seeds)
		}
		seen[s] = true
	}
	return seeds, ctx
}

func algos() []core.Algorithm {
	return []core.Algorithm{RIS{}, TIMPlus{}, IMM{}}
}

func TestPickHubFirstIC(t *testing.T) {
	g := star(10, 1.0)
	for _, alg := range algos() {
		seeds, _ := selectSeeds(t, alg, g, weights.IC, 1, 0.3)
		if seeds[0] != 0 {
			t.Fatalf("%s picked %v want hub 0", alg.Name(), seeds)
		}
	}
}

func TestPickHubFirstLT(t *testing.T) {
	g := weights.LTUniform{}.Apply(star(10, 1.0)).(*graph.Graph)
	for _, alg := range algos() {
		seeds, _ := selectSeeds(t, alg, g, weights.LT, 1, 0.3)
		if seeds[0] != 0 {
			t.Fatalf("%s under LT picked %v want hub 0", alg.Name(), seeds)
		}
	}
}

// TestQualityAgainstReference: TIM+/IMM spreads must be close to a long
// CELF-equivalent exhaustive baseline on a random WC graph.
func TestQualityAgainstReference(t *testing.T) {
	g := randomWC(3, 60, 350)
	const k = 5
	// Exhaustive greedy reference via common random numbers.
	ref := exhaustiveGreedy(g, weights.IC, k, 800)
	refSpread := diffusion.EstimateSpreadParallel(g, weights.IC, ref, 6000, 5, 0).Mean
	for _, alg := range algos() {
		seeds, _ := selectSeeds(t, alg, g, weights.IC, k, 0.2)
		sp := diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 6000, 5, 0).Mean
		if sp < 0.9*refSpread {
			t.Fatalf("%s spread %v < 90%% of greedy reference %v", alg.Name(), sp, refSpread)
		}
	}
}

// exhaustiveGreedy is a slow reference implementation used only in tests.
func exhaustiveGreedy(g *graph.Graph, m weights.Model, k, sims int) []graph.NodeID {
	sim := diffusion.NewSimulator(g, m)
	var seeds []graph.NodeID
	chosen := make(map[graph.NodeID]bool)
	for len(seeds) < k {
		best, bestSp := graph.NodeID(-1), -1.0
		for v := graph.NodeID(0); v < g.N(); v++ {
			if chosen[v] {
				continue
			}
			sp := sim.EstimateSpread(append(seeds, v), sims, uint64(v)+99).Mean
			if sp > bestSp {
				bestSp, best = sp, v
			}
		}
		seeds = append(seeds, best)
		chosen[best] = true
	}
	return seeds
}

// TestExtrapolatedSpreadReported: TIM+/IMM must expose their extrapolated
// estimate (paper M4 / Appendix A) and it should roughly track the MC value
// but differ from it (it is computed from coverage, not simulation).
func TestExtrapolatedSpreadReported(t *testing.T) {
	g := randomWC(7, 80, 400)
	for _, alg := range algos() {
		seeds, ctx := selectSeeds(t, alg, g, weights.IC, 4, 0.3)
		if ctx.EstimatedSpread < 0 {
			t.Fatalf("%s did not report extrapolated spread", alg.Name())
		}
		mc := diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 5000, 3, 0).Mean
		if ctx.EstimatedSpread < 0.3*mc || ctx.EstimatedSpread > 4*mc {
			t.Fatalf("%s extrapolated %v wildly off MC %v", alg.Name(), ctx.EstimatedSpread, mc)
		}
	}
}

// TestExtrapolationInflatesWithEps reproduces paper M4: the extrapolated
// spread at loose ε is at least the extrapolated spread at tight ε (the
// over-estimation grows with sampling error). Averaged over seeds to damp
// noise.
func TestExtrapolationInflatesWithEps(t *testing.T) {
	g := randomWC(9, 100, 600)
	avgExtrap := func(eps float64) float64 {
		tot := 0.0
		for s := uint64(0); s < 5; s++ {
			ctx := core.NewContext(g, weights.IC, 4, 100+s)
			ctx.ParamValue = eps
			if _, err := (IMM{}).Select(ctx); err != nil {
				t.Fatal(err)
			}
			tot += ctx.EstimatedSpread
		}
		return tot / 5
	}
	tight, loose := avgExtrap(0.1), avgExtrap(0.9)
	if loose < tight*0.98 {
		t.Fatalf("extrapolated spread shrank with ε: tight %v loose %v", tight, loose)
	}
}

// TestMemoryAccountingGrowsWithEdgeWeight: the mechanism behind Fig. 1a/M6.
// IC(0.3) RR collections must account more bytes than WC on the same graph.
func TestMemoryAccountingGrowsWithEdgeWeight(t *testing.T) {
	base := randomWC(13, 120, 900)
	hi := weights.ICConstant{P: 0.3}.Apply(base).(*graph.Graph)
	mem := func(g *graph.Graph) int64 {
		ctx := core.NewContext(g, weights.IC, 3, 21)
		ctx.ParamValue = 0.5
		if _, err := (IMM{}).Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.MemUsed()
	}
	if wc, ic := mem(base), mem(hi); ic <= wc {
		t.Fatalf("IC(0.3) accounted %d ≤ WC %d", ic, wc)
	}
}

// TestCrashedOnMemoryBudget: with a tiny memory cap, IMM under high-weight
// IC must return Crashed — the paper's Table 3 outcome.
func TestCrashedOnMemoryBudget(t *testing.T) {
	g := weights.ICConstant{P: 0.4}.Apply(randomWC(15, 300, 3000)).(*graph.Graph)
	res := core.Run(IMM{}, g, core.RunConfig{
		K: 10, Model: weights.IC, Seed: 1, ParamValue: 0.1,
		MemBudgetBytes: 32 * 1024,
	})
	if res.Status != core.Crashed {
		t.Fatalf("status %v want Crashed", res.Status)
	}
}

// TestEpsilonControlsSamples: smaller ε must sample more RR sets (lookups).
func TestEpsilonControlsSamples(t *testing.T) {
	g := randomWC(17, 100, 500)
	count := func(alg core.Algorithm, eps float64) int64 {
		ctx := core.NewContext(g, weights.IC, 3, 31)
		ctx.ParamValue = eps
		if _, err := alg.Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Lookups
	}
	for _, alg := range []core.Algorithm{TIMPlus{}, IMM{}} {
		tight := count(alg, 0.1)
		loose := count(alg, 0.8)
		if tight <= loose {
			t.Fatalf("%s: ε=0.1 sampled %d ≤ ε=0.8 %d", alg.Name(), tight, loose)
		}
	}
}

func TestLTRRSetsSmallerThanIC(t *testing.T) {
	// Under LT, RR sets are reverse walks; their total size should be far
	// below IC(0.3) RR sets on the same dense structure.
	base := randomWC(19, 100, 800)
	ic := weights.ICConstant{P: 0.3}.Apply(base).(*graph.Graph)
	lt := weights.LTUniform{}.Apply(base).(*graph.Graph)
	memIC := func() int64 {
		ctx := core.NewContext(ic, weights.IC, 3, 7)
		ctx.ParamValue = 0.5
		_, err := (IMM{}).Select(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ctx.MemUsed() / maxI64(ctx.Lookups, 1)
	}()
	memLT := func() int64 {
		ctx := core.NewContext(lt, weights.LT, 3, 7)
		ctx.ParamValue = 0.5
		_, err := (IMM{}).Select(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ctx.MemUsed() / maxI64(ctx.Lookups, 1)
	}()
	if memLT >= memIC {
		t.Fatalf("per-RR bytes LT %d ≥ IC %d", memLT, memIC)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestParamMetadata(t *testing.T) {
	if p := (TIMPlus{}).Param(weights.LT); p.Default != 0.35 {
		t.Fatalf("TIM+ LT default %v want 0.35 (paper Table 2)", p.Default)
	}
	if p := (TIMPlus{}).Param(weights.IC); p.Default != 0.15 {
		t.Fatalf("TIM+ IC default %v", p.Default)
	}
	if p := (IMM{}).Param(weights.IC); p.Default != 0.1 || p.Name != "epsilon" {
		t.Fatalf("IMM param %+v", p)
	}
	for _, alg := range algos() {
		c, ok := alg.(core.Categorizer)
		if !ok || c.Category() != core.CatRRSet {
			t.Fatalf("%s category", alg.Name())
		}
		if !alg.Supports(weights.IC) || !alg.Supports(weights.LT) {
			t.Fatalf("%s must support IC and LT", alg.Name())
		}
	}
}

func TestLogNChooseK(t *testing.T) {
	// ln C(10,3) = ln 120.
	if got := logNChooseK(10, 3); math.Abs(got-math.Log(120)) > 1e-9 {
		t.Fatalf("logC(10,3)=%v want %v", got, math.Log(120))
	}
	if got := logNChooseK(5, 0); got != 0 {
		t.Fatalf("logC(5,0)=%v", got)
	}
	if got := logNChooseK(5, 9); got != 0 {
		t.Fatalf("out-of-range k should return 0, got %v", got)
	}
}

func TestDeterministic(t *testing.T) {
	g := randomWC(23, 80, 400)
	for _, alg := range algos() {
		a, _ := selectSeeds(t, alg, g, weights.IC, 4, 0.3)
		b, _ := selectSeeds(t, alg, g, weights.IC, 4, 0.3)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s nondeterministic: %v vs %v", alg.Name(), a, b)
			}
		}
	}
}

func TestSSAPicksHub(t *testing.T) {
	g := star(10, 1.0)
	seeds, ctx := selectSeeds(t, SSA{}, g, weights.IC, 1, 0.3)
	if seeds[0] != 0 {
		t.Fatalf("SSA picked %v want hub 0", seeds)
	}
	if ctx.EstimatedSpread < 0 {
		t.Fatal("SSA did not report a verified estimate")
	}
}

func TestSSAQualityMatchesIMM(t *testing.T) {
	g := randomWC(61, 80, 450)
	const k = 5
	immSeeds, _ := selectSeeds(t, IMM{}, g, weights.IC, k, 0.2)
	ssaSeeds, _ := selectSeeds(t, SSA{}, g, weights.IC, k, 0.2)
	imm := diffusion.EstimateSpreadParallel(g, weights.IC, immSeeds, 6000, 7, 0).Mean
	ssa := diffusion.EstimateSpreadParallel(g, weights.IC, ssaSeeds, 6000, 7, 0).Mean
	if ssa < 0.9*imm {
		t.Fatalf("SSA spread %v < 90%% of IMM %v", ssa, imm)
	}
}

// TestSSAFewerSamplesThanIMM: the stop-and-stare claim — at equal ε, SSA's
// sample count (lookups) should be well below IMM's worst-case-bound count.
func TestSSAFewerSamplesThanIMM(t *testing.T) {
	g := randomWC(67, 120, 700)
	count := func(alg core.Algorithm) int64 {
		ctx := core.NewContext(g, weights.IC, 5, 11)
		ctx.ParamValue = 0.2
		if _, err := alg.Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Lookups
	}
	imm, ssa := count(IMM{}), count(SSA{})
	if ssa >= imm {
		t.Fatalf("SSA sampled %d RR sets, IMM %d — stop-and-stare saved nothing", ssa, imm)
	}
}

// TestSSAVerifiedEstimateNotInflated: unlike raw TIM+/IMM extrapolation
// (M4), SSA's reported estimate comes from an independent collection and
// must track the MC spread closely even at loose ε.
func TestSSAVerifiedEstimateNotInflated(t *testing.T) {
	g := randomWC(71, 100, 600)
	var estSum, mcSum float64
	for s := uint64(0); s < 5; s++ {
		ctx := core.NewContext(g, weights.IC, 4, 50+s)
		ctx.ParamValue = 0.8
		seeds, err := (SSA{}).Select(ctx)
		if err != nil {
			t.Fatal(err)
		}
		estSum += ctx.EstimatedSpread
		mcSum += diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 4000, s, 0).Mean
	}
	if estSum > mcSum*1.15 {
		t.Fatalf("verified estimate mean %v inflated vs MC %v", estSum/5, mcSum/5)
	}
}
