package rrset

import (
	"errors"
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/datasets"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

func testIndex(t *testing.T, theta int64) *Index {
	t.Helper()
	g := weights.WeightedCascade{}.Apply(datasets.MustGenerate("nethept", 64, 1)).(*graph.Graph)
	ctx := core.NewContext(g, weights.IC, 1, 7)
	ix, err := BuildIndex(ctx, theta)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexBuild(t *testing.T) {
	ix := testIndex(t, 5000)
	if ix.NumSets() != 5000 {
		t.Fatalf("NumSets = %d, want 5000", ix.NumSets())
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes = %d, want > 0", ix.MemoryBytes())
	}
	if ix.N() <= 0 {
		t.Fatalf("N = %d", ix.N())
	}
}

func TestIndexSpreadMonotoneAndBounded(t *testing.T) {
	ix := testIndex(t, 5000)
	if got := ix.SpreadOf(nil); got != 0 {
		t.Fatalf("SpreadOf(nil) = %v, want 0", got)
	}
	prev := 0.0
	seeds := []graph.NodeID{}
	for v := graph.NodeID(0); v < 10; v++ {
		seeds = append(seeds, v)
		sp := ix.SpreadOf(seeds)
		if sp < prev {
			t.Fatalf("spread not monotone: %v after %v", sp, prev)
		}
		if sp > float64(ix.N()) {
			t.Fatalf("spread %v exceeds n=%d", sp, ix.N())
		}
		prev = sp
	}
}

func TestIndexSelectSeedsMatchesSpreadOf(t *testing.T) {
	ix := testIndex(t, 5000)
	seeds, sp, err := ix.SelectSeeds(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 {
		t.Fatalf("got %d seeds, want 5", len(seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= ix.N() {
			t.Fatalf("seed %d out of range", s)
		}
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	// The greedy's extrapolated spread must equal the point query for the
	// same set: both are n·F(S) over the same stored sets.
	if got := ix.SpreadOf(seeds); got != sp {
		t.Fatalf("SpreadOf(seeds) = %v, SelectSeeds spread = %v", got, sp)
	}
	// Greedy seeds should beat an arbitrary set of the same size.
	if arb := ix.SpreadOf([]graph.NodeID{0, 1, 2, 3, 4}); sp < arb {
		t.Fatalf("greedy spread %v below arbitrary-set spread %v", sp, arb)
	}
}

func TestIndexSelectSeedsDeterministic(t *testing.T) {
	ix := testIndex(t, 2000)
	a, spA, err := ix.SelectSeeds(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, spB, err := ix.SelectSeeds(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spA != spB {
		t.Fatalf("spread differs across identical queries: %v vs %v", spA, spB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestIndexSelectSeedsPollAborts(t *testing.T) {
	ix := testIndex(t, 2000)
	boom := errors.New("deadline")
	_, _, err := ix.SelectSeeds(5, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestIndexBuildHonorsBudget(t *testing.T) {
	g := weights.WeightedCascade{}.Apply(datasets.MustGenerate("nethept", 64, 1)).(*graph.Graph)
	ctx := core.NewContext(g, weights.IC, 1, 7)
	ctx.Cancel(core.ErrCancelled)
	if _, err := BuildIndex(ctx, 1_000_000); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
}
