package snapshot

import (
	"errors"
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/datasets"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

func testPool(t *testing.T, r int) (*Pool, *graph.Graph) {
	t.Helper()
	g := weights.WeightedCascade{}.Apply(datasets.MustGenerate("nethept", 64, 1)).(*graph.Graph)
	ctx := core.NewContext(g, weights.IC, 1, 7)
	p, err := BuildPool(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	return p, g
}

func TestPoolBuild(t *testing.T) {
	p, g := testPool(t, 50)
	if p.NumSnapshots() != 50 {
		t.Fatalf("NumSnapshots = %d, want 50", p.NumSnapshots())
	}
	if p.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes should be positive")
	}
	if p.N() != g.N() {
		t.Fatalf("N = %d, want %d", p.N(), g.N())
	}
}

func TestPoolSpreadMonotoneAndBounded(t *testing.T) {
	p, g := testPool(t, 50)
	prev := 0.0
	seeds := []graph.NodeID{}
	for v := graph.NodeID(0); v < 10; v++ {
		seeds = append(seeds, v)
		sp, err := p.SpreadOf(seeds, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sp < prev || sp > float64(g.N()) {
			t.Fatalf("spread %v out of [%v, %d]", sp, prev, g.N())
		}
		// A seed always reaches itself, so σ ≥ |S|.
		if sp < float64(len(seeds)) {
			t.Fatalf("spread %v below seed count %d", sp, len(seeds))
		}
		prev = sp
	}
}

func TestPoolSelectSeedsMatchesSpreadOf(t *testing.T) {
	p, _ := testPool(t, 50)
	seeds, sp, err := p.SelectSeeds(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 {
		t.Fatalf("got %d seeds, want 5", len(seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= p.N() || seen[s] {
			t.Fatalf("bad or duplicate seed %d", s)
		}
		seen[s] = true
	}
	// The greedy accumulates exactly the covered mass SpreadOf re-derives.
	got, err := p.SpreadOf(seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - sp; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("SpreadOf(seeds) = %v, SelectSeeds spread = %v", got, sp)
	}
}

func TestPoolSelectSeedsPollAborts(t *testing.T) {
	p, _ := testPool(t, 20)
	boom := errors.New("deadline")
	if _, _, err := p.SelectSeeds(5, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestPoolAgreesWithMC sanity-checks the pool estimator against the
// decoupled Monte-Carlo evaluator on the top greedy seed set: both are
// unbiased estimators of σ, so with enough repetitions they agree loosely.
func TestPoolAgreesWithMC(t *testing.T) {
	p, g := testPool(t, 200)
	seeds, sp, err := p.SelectSeeds(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc := diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 2000, 11, 0)
	if sp < mc.Mean*0.7 || sp > mc.Mean*1.3 {
		t.Fatalf("pool estimate %v vs MC %v: disagreement beyond 30%%", sp, mc.Mean)
	}
}

func TestPoolBuildHonorsBudget(t *testing.T) {
	g := weights.WeightedCascade{}.Apply(datasets.MustGenerate("nethept", 64, 1)).(*graph.Graph)
	ctx := core.NewContext(g, weights.IC, 1, 7)
	ctx.Cancel(core.ErrCancelled)
	if _, err := BuildPool(ctx, 1000); !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
}
