package snapshot

import (
	"container/heap"
	"fmt"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
)

// Pool is a precomputed snapshot influence oracle: R live-edge
// instantiations are sampled once, condensed into their SCC DAGs (the PMC
// representation — raw snapshots are discarded), and online queries are
// answered by DAG reachability.
//
//   - SpreadOf(S) averages |reach(S)| over the stored DAGs, the unbiased
//     snapshot estimator of σ(S) (paper §4.3).
//   - SelectSeeds(k) runs PMC's lazy greedy — descendant-mass upper bounds
//     as optimistic priors, exact DAG BFS on demand — against per-call
//     covered marks.
//
// The pool is immutable after construction; every query allocates its own
// scratch (marks, queues, covered arrays), so concurrent queries are safe.
type Pool struct {
	n       int32
	entries []poolEntry
	maxComp int32
	bytes   int64
}

// poolEntry is one condensed snapshot: the SCC DAG plus the per-component
// descendant-mass upper bound. Unlike the offline `condensed` type it
// carries no covered marks — those are per-query state.
type poolEntry struct {
	dag   *graphalgo.Condensation
	bound []float64
}

// BuildPool samples r live-edge snapshots under ctx (graph, model, RNG,
// budget) and condenses each into its SCC DAG. Construction honors ctx's
// cooperative budget/cancellation checks and accounts DAG memory through
// ctx.Account. Both IC and LT are supported: live-edge instantiations
// exist for either semantics (under LT each node keeps at most one
// in-arc, so the DAGs are forests of paths).
func BuildPool(ctx *core.Context, r int) (*Pool, error) {
	if r < 1 {
		r = 1
	}
	p := &Pool{n: ctx.G.N(), entries: make([]poolEntry, 0, r)}
	for i := 0; i < r; i++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		sn := diffusion.SampleSnapshot(ctx.G, ctx.Model, ctx.RNG)
		comp, ncomp := graphalgo.SCC(snapView{sn})
		dag := graphalgo.Condense(snapView{sn}, comp, ncomp)
		bytes := int64(len(dag.Comp))*4 + int64(len(dag.To))*4 + int64(len(dag.Off))*8 +
			int64(ncomp)*12
		ctx.Account(bytes)
		p.bytes += bytes
		p.entries = append(p.entries, poolEntry{dag: dag, bound: descendantBound(dag)})
		if ncomp > p.maxComp {
			p.maxComp = ncomp
		}
	}
	return p, nil
}

// NewPoolFromDAGs rehydrates a pool from previously condensed snapshot
// DAGs (the persistence path): only the condensations are persisted — the
// descendant-mass bounds are recomputed on load (linear time) so derived
// state can never go stale relative to its DAG. Every DAG is validated
// structurally before adoption, so a corrupted snapshot cannot build a
// pool whose BFS traversals would index out of bounds.
func NewPoolFromDAGs(n int32, dags []*graphalgo.Condensation) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("snapshot: pool node count %d out of range", n)
	}
	p := &Pool{n: n, entries: make([]poolEntry, 0, len(dags))}
	for i, dag := range dags {
		if err := validateDAG(n, dag); err != nil {
			return nil, fmt.Errorf("snapshot: DAG %d: %w", i, err)
		}
		bytes := int64(len(dag.Comp))*4 + int64(len(dag.To))*4 + int64(len(dag.Off))*8 +
			int64(dag.NComp)*12
		p.bytes += bytes
		p.entries = append(p.entries, poolEntry{dag: dag, bound: descendantBound(dag)})
		if dag.NComp > p.maxComp {
			p.maxComp = dag.NComp
		}
	}
	return p, nil
}

// validateDAG checks the structural invariants every traversal assumes:
// array lengths agree with NComp and n, the CSR offsets are monotone, and
// every component reference is in range.
func validateDAG(n int32, dag *graphalgo.Condensation) error {
	if dag.NComp < 1 || dag.NComp > n {
		return fmt.Errorf("component count %d out of range [1, %d]", dag.NComp, n)
	}
	if int32(len(dag.Comp)) != n {
		return fmt.Errorf("component labelling covers %d nodes, want %d", len(dag.Comp), n)
	}
	for v, c := range dag.Comp {
		if c < 0 || c >= dag.NComp {
			return fmt.Errorf("node %d labelled with component %d of %d", v, c, dag.NComp)
		}
	}
	if int32(len(dag.Size)) != dag.NComp {
		return fmt.Errorf("size array covers %d components, want %d", len(dag.Size), dag.NComp)
	}
	if int32(len(dag.Off)) != dag.NComp+1 || dag.Off[0] != 0 {
		return fmt.Errorf("offset array malformed (len %d, want %d starting at 0)", len(dag.Off), dag.NComp+1)
	}
	for i := 1; i < len(dag.Off); i++ {
		if dag.Off[i] < dag.Off[i-1] {
			return fmt.Errorf("offsets decrease at component %d", i)
		}
	}
	if dag.Off[dag.NComp] != int64(len(dag.To)) {
		return fmt.Errorf("final offset %d does not match arc array length %d", dag.Off[dag.NComp], len(dag.To))
	}
	for i, c := range dag.To {
		if c < 0 || c >= dag.NComp {
			return fmt.Errorf("arc %d targets component %d of %d", i, c, dag.NComp)
		}
	}
	return nil
}

// DAGs exposes the condensed snapshots for serialization. The returned
// slice and its condensations alias the pool's memory and must be
// treated as read-only.
func (p *Pool) DAGs() []*graphalgo.Condensation {
	dags := make([]*graphalgo.Condensation, len(p.entries))
	for i := range p.entries {
		dags[i] = p.entries[i].dag
	}
	return dags
}

// N returns the node count of the indexed graph.
func (p *Pool) N() int32 { return p.n }

// NumSnapshots returns R, the number of condensed snapshots.
func (p *Pool) NumSnapshots() int { return len(p.entries) }

// MemoryBytes returns the approximate resident size of the condensed DAGs.
func (p *Pool) MemoryBytes() int64 { return p.bytes }

// SpreadOf estimates σ(seeds) as the average mass reachable from the seed
// components over the stored DAGs. poll (when non-nil) is invoked once per
// snapshot; a non-nil return aborts with that error.
func (p *Pool) SpreadOf(seeds []graph.NodeID, poll func() error) (float64, error) {
	if len(p.entries) == 0 {
		return 0, nil
	}
	mark := make([]uint32, p.maxComp)
	var epoch uint32
	queue := make([]int32, 0, 256)
	total := int64(0)
	for _, e := range p.entries {
		if poll != nil {
			if err := poll(); err != nil {
				return 0, err
			}
		}
		epoch++
		queue = queue[:0]
		for _, v := range seeds {
			c := e.dag.Comp[v]
			if mark[c] != epoch {
				mark[c] = epoch
				queue = append(queue, c)
			}
		}
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			total += int64(e.dag.Size[x])
			for _, y := range e.dag.OutNeighbors(x) {
				if mark[y] != epoch {
					mark[y] = epoch
					queue = append(queue, y)
				}
			}
		}
	}
	return float64(total) / float64(len(p.entries)), nil
}

// SelectSeeds greedily selects k seeds with PMC's pruned lazy greedy and
// returns them with the pool's spread estimate of the selected set. poll
// (when non-nil) is invoked once per exact evaluation; a non-nil return
// aborts with that error. Covered marks are per-call, so concurrent
// selections do not interfere.
func (p *Pool) SelectSeeds(k int, poll func() error) ([]graph.NodeID, float64, error) {
	if k < 1 {
		k = 1
	}
	r := len(p.entries)
	if r == 0 {
		return nil, 0, nil
	}
	covered := make([][]bool, r)
	for i, e := range p.entries {
		covered[i] = make([]bool, e.dag.NComp)
	}
	mark := make([]uint32, p.maxComp)
	var epoch uint32
	queue := make([]int32, 0, 256)

	exactGain := func(v graph.NodeID) float64 {
		total := int64(0)
		for i, e := range p.entries {
			c := e.dag.Comp[v]
			if covered[i][c] {
				continue
			}
			epoch++
			queue = queue[:0]
			queue = append(queue, c)
			mark[c] = epoch
			for head := 0; head < len(queue); head++ {
				x := queue[head]
				if !covered[i][x] {
					total += int64(e.dag.Size[x])
				}
				for _, y := range e.dag.OutNeighbors(x) {
					if mark[y] != epoch {
						mark[y] = epoch
						queue = append(queue, y)
					}
				}
			}
		}
		return float64(total) / float64(r)
	}

	commit := func(v graph.NodeID) {
		for i, e := range p.entries {
			c := e.dag.Comp[v]
			if covered[i][c] {
				continue
			}
			epoch++
			queue = queue[:0]
			queue = append(queue, c)
			mark[c] = epoch
			for head := 0; head < len(queue); head++ {
				x := queue[head]
				covered[i][x] = true
				for _, y := range e.dag.OutNeighbors(x) {
					if mark[y] != epoch && !covered[i][y] {
						mark[y] = epoch
						queue = append(queue, y)
					}
				}
			}
		}
	}

	h := make(lazyHeap, 0, p.n)
	for v := graph.NodeID(0); v < p.n; v++ {
		ub := 0.0
		for _, e := range p.entries {
			ub += e.bound[e.dag.Comp[v]]
		}
		h = append(h, lazyItem{node: v, gain: ub / float64(r), round: -1})
	}
	heap.Init(&h)

	seeds := make([]graph.NodeID, 0, k)
	spread := 0.0
	for len(seeds) < k && len(h) > 0 {
		top := &h[0]
		if int(top.round) == len(seeds) {
			seeds = append(seeds, top.node)
			spread += top.gain
			commit(top.node)
			heap.Pop(&h)
			continue
		}
		if poll != nil {
			if err := poll(); err != nil {
				return nil, 0, err
			}
		}
		top.gain = exactGain(top.node)
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, spread, nil
}
