package snapshot

import (
	"container/heap"
	"math"
	"sort"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/weights"
)

// SKIM is a sketch-based influence maximizer in the spirit of Cohen,
// Delling, Pajor and Werneck (CIKM 2014): influence is estimated with
// bottom-k reachability sketches over ℓ live-edge instances instead of
// exact per-instance BFS.
//
// Construction follows Cohen's classic combined-reachability-sketch
// algorithm: every (instance, node) pair receives a uniform random rank;
// pairs are processed in increasing rank order, and each pair's rank is
// pushed — by reverse BFS in its instance — into the sketch of every node
// that reaches it, pruning at nodes whose sketch is already full. A node's
// influence is then estimated from its k-th smallest rank with the classic
// bottom-k cardinality estimator (k−1)/x_k.
//
// Seed selection runs lazy greedy with the sketch estimate (inflated by
// the estimator's relative error bound) as the optimistic prior and exact
// residual coverage — forward BFS over instances with covered marks — as
// the evaluation, so the returned seeds have StaticGreedy quality while
// most heap entries are never exactly evaluated.
//
// The benchmark paper excludes SKIM because "TIM+ has been shown to
// possess better quality while being similar in running times" (§4); the
// `exclusions` experiment validates that claim against this implementation.
type SKIM struct {
	// SketchK is the bottom-k sketch size (default 64).
	SketchK int
}

// Name implements core.Algorithm.
func (SKIM) Name() string { return "SKIM" }

// Supports implements core.Algorithm: live-edge instances exist for both
// IC and LT, and so do reachability sketches.
func (SKIM) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (SKIM) Category() core.Category { return core.CatSnapshot }

// Param implements core.Algorithm: the number of instances ℓ.
func (SKIM) Param(weights.Model) core.Param {
	return core.Param{Name: "#Instances", Spectrum: []float64{128, 64, 32, 16, 8}, Default: 64}
}

// Select implements core.Algorithm.
func (s SKIM) Select(ctx *core.Context) ([]graph.NodeID, error) {
	ell := int(ctx.Param(64))
	sketchK := s.SketchK
	if sketchK <= 0 {
		sketchK = 64
	}
	g := ctx.G
	n := g.N()

	// Live-edge instances, kept for exact residual evaluation.
	snaps := make([]*diffusion.Snapshot, 0, ell)
	// Reverse adjacency per instance for sketch construction.
	revs := make([]*diffusion.Snapshot, 0, ell)
	for i := 0; i < ell; i++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		sn := diffusion.SampleSnapshot(g, ctx.Model, ctx.RNG)
		ctx.Account(sn.MemoryBytes())
		snaps = append(snaps, sn)
		rev := reverseSnapshot(sn, n)
		ctx.Account(rev.MemoryBytes())
		revs = append(revs, rev)
	}

	// Rank permutation over all (instance, node) pairs.
	total := ell * int(n)
	perm := ctx.RNG.Perm(total)
	ctx.Account(int64(total) * 8)

	// sketches[v] holds up to sketchK smallest ranks (normalized to (0,1])
	// of pairs reachable FROM v; maintained as a max-heap on rank so the
	// largest retained rank is O(1) accessible.
	sketches := make([][]float64, n)
	ctx.Account(int64(n) * int64(sketchK) * 8)
	pushRank := func(v graph.NodeID, rank float64) bool {
		sk := sketches[v]
		if len(sk) < sketchK {
			sketches[v] = heapPushRank(sk, rank)
			return true
		}
		if rank >= sk[0] {
			return false // sketch full with smaller ranks: prune
		}
		sk[0] = rank
		siftDownRank(sk)
		return true
	}

	mark := make([]uint32, n)
	var epoch uint32
	var queue []graph.NodeID
	for rankIdx, pairIdx := range perm {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		rank := float64(rankIdx+1) / float64(total)
		inst := pairIdx / int(n)
		node := graph.NodeID(pairIdx % int(n))
		// Reverse BFS in instance `inst` from `node`, inserting rank into
		// every node that reaches it; prune where insertion fails.
		epoch++
		queue = queue[:0]
		if pushRank(node, rank) {
			queue = append(queue, node)
			mark[node] = epoch
		}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range revs[inst].OutNeighbors(u) {
				if mark[w] == epoch {
					continue
				}
				mark[w] = epoch
				if pushRank(w, rank) {
					queue = append(queue, w)
				}
			}
		}
	}

	// Bottom-k estimate of |reachable pairs| / ℓ, inflated by the
	// estimator's ~(1+2/√k) relative error so it upper-bounds the truth
	// with high probability — required by the lazy-greedy prior.
	slack := 1 + 2/math.Sqrt(float64(sketchK))
	estimate := func(v graph.NodeID) float64 {
		sk := sketches[v]
		if len(sk) < sketchK {
			return float64(len(sk)) / float64(ell) // exact: sketch not full
		}
		return slack * (float64(sketchK) - 1) / sk[0] / float64(ell)
	}

	// Exact residual machinery (shared shape with StaticGreedy).
	covered := make([]bool, int64(ell)*int64(n))
	ctx.Account(int64(len(covered)))
	var bfsQueue []int32
	exactGain := func(v graph.NodeID) (float64, error) {
		ctx.Lookups++
		tot := int64(0)
		for i, sn := range snaps {
			if err := ctx.Check(); err != nil {
				return 0, err
			}
			base := int64(i) * int64(n)
			epoch++
			var cnt int32
			cnt, bfsQueue = graphalgo.BFSReach(snapView{sn}, v, func(x int32) bool {
				return covered[base+int64(x)]
			}, mark, epoch, bfsQueue)
			tot += int64(cnt)
		}
		return float64(tot) / float64(ell), nil
	}
	commit := func(v graph.NodeID) error {
		for i, sn := range snaps {
			if err := ctx.Check(); err != nil {
				return err
			}
			base := int64(i) * int64(n)
			if covered[base+int64(v)] {
				continue
			}
			epoch++
			_, bfsQueue = graphalgo.BFSReach(snapView{sn}, v, nil, mark, epoch, bfsQueue)
			for _, x := range bfsQueue {
				covered[base+int64(x)] = true
			}
		}
		return nil
	}

	h := make(lazyHeap, 0, n)
	for v := graph.NodeID(0); v < n; v++ {
		h = append(h, lazyItem{node: v, gain: estimate(v), round: -1})
	}
	heap.Init(&h)
	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if int(top.round) == len(seeds) {
			seeds = append(seeds, top.node)
			if err := commit(top.node); err != nil {
				return nil, err
			}
			heap.Pop(&h)
			continue
		}
		gv, err := exactGain(top.node)
		if err != nil {
			return nil, err
		}
		top.gain = gv
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, nil
}

// reverseSnapshot builds the transpose adjacency of a live-edge instance.
func reverseSnapshot(sn *diffusion.Snapshot, n graph.NodeID) *diffusion.Snapshot {
	deg := make([]int64, n)
	for u := graph.NodeID(0); u < n; u++ {
		for _, v := range sn.OutNeighbors(u) {
			deg[v]++
		}
	}
	off := make([]int64, n+1)
	for v := graph.NodeID(0); v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	to := make([]graph.NodeID, off[n])
	cur := make([]int64, n)
	copy(cur, off[:n])
	for u := graph.NodeID(0); u < n; u++ {
		for _, v := range sn.OutNeighbors(u) {
			to[cur[v]] = u
			cur[v]++
		}
	}
	return &diffusion.Snapshot{Off: off, To: to}
}

// heapPushRank appends rank and restores the max-heap property.
func heapPushRank(sk []float64, rank float64) []float64 {
	sk = append(sk, rank)
	i := len(sk) - 1
	for i > 0 {
		p := (i - 1) / 2
		if sk[p] >= sk[i] {
			break
		}
		sk[p], sk[i] = sk[i], sk[p]
		i = p
	}
	return sk
}

// siftDownRank restores the max-heap property after replacing the root.
func siftDownRank(sk []float64) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(sk) && sk[l] > sk[big] {
			big = l
		}
		if r < len(sk) && sk[r] > sk[big] {
			big = r
		}
		if big == i {
			return
		}
		sk[i], sk[big] = sk[big], sk[i]
		i = big
	}
}

// sortRanks is a test hook: the sketch's sorted content.
func sortRanks(sk []float64) []float64 {
	out := make([]float64, len(sk))
	copy(out, sk)
	sort.Float64s(out)
	return out
}
