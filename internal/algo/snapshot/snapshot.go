// Package snapshot implements the snapshot family of IM techniques (paper
// §4.3 and Fig. 3): StaticGreedy (Cheng et al., CIKM 2013) and PMC (Ohsaka
// et al., AAAI 2014).
//
// Both materialize R live-edge instantiations ("snapshots") of the graph up
// front with the coin-flip technique and estimate a node's influence as its
// average reachability over the snapshots. They differ in how reachability
// queries are answered: StaticGreedy BFSes the raw snapshots (accurate but
// memory-hungry and slow — the paper shows it crashing on large data),
// while PMC condenses every snapshot into its SCC DAG and prunes
// re-evaluations with reachability upper bounds, which is why it is the
// paper's fastest quality technique under generic IC.
//
// Per paper Table 5 both support IC only.
package snapshot

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/weights"
)

// snapshotSpectrum sweeps R for the Table 2 experiment, most accurate first.
var snapshotSpectrum = []float64{300, 250, 200, 150, 100, 75, 50, 25, 10}

// StaticGreedy selects seeds by CELF-style lazy greedy over R stored
// snapshots. Its external parameter is R (paper Table 2 optimum: 250).
type StaticGreedy struct{}

// Name implements core.Algorithm.
func (StaticGreedy) Name() string { return "StaticGreedy" }

// Supports implements core.Algorithm: IC only (paper Table 5).
func (StaticGreedy) Supports(m weights.Model) bool { return m == weights.IC }

// Category implements core.Categorizer.
func (StaticGreedy) Category() core.Category { return core.CatSnapshot }

// Param implements core.Algorithm.
func (StaticGreedy) Param(weights.Model) core.Param {
	return core.Param{Name: "#Snapshots", Spectrum: snapshotSpectrum, Default: 250}
}

// Select implements core.Algorithm.
func (StaticGreedy) Select(ctx *core.Context) ([]graph.NodeID, error) {
	r := int(ctx.Param(250))
	n := ctx.G.N()

	snaps := make([]*diffusion.Snapshot, 0, r)
	for i := 0; i < r; i++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		sn := diffusion.SampleSnapshot(ctx.G, ctx.Model, ctx.RNG)
		ctx.Account(sn.MemoryBytes())
		snaps = append(snaps, sn)
	}

	// covered[i*stride+v] marks node v of snapshot i as already influenced
	// by the selected seeds.
	covered := make([]bool, int64(r)*int64(n))
	ctx.Account(int64(len(covered)))
	mark := make([]uint32, n)
	var epoch uint32
	var queue []int32

	// gain(v) = Σ_i |newly reachable from v in snapshot i| / R.
	gain := func(v graph.NodeID) (float64, error) {
		ctx.Lookups++
		total := int64(0)
		for i, sn := range snaps {
			if err := ctx.CheckNow(); err != nil {
				return 0, err
			}
			base := int64(i) * int64(n)
			epoch++
			var cnt int32
			cnt, queue = graphalgo.BFSReach(snapView{sn}, v, func(x int32) bool {
				return covered[base+int64(x)]
			}, mark, epoch, queue)
			total += int64(cnt)
		}
		return float64(total) / float64(r), nil
	}

	// commit marks everything v reaches as covered in every snapshot.
	commit := func(v graph.NodeID) error {
		for i, sn := range snaps {
			if err := ctx.Check(); err != nil {
				return err
			}
			base := int64(i) * int64(n)
			if covered[base+int64(v)] {
				continue
			}
			epoch++
			_, queue = graphalgo.BFSReach(snapView{sn}, v, nil, mark, epoch, queue)
			for _, x := range queue {
				covered[base+int64(x)] = true
			}
		}
		return nil
	}

	h := make(lazyHeap, 0, n)
	for v := graph.NodeID(0); v < n; v++ {
		g, err := gain(v)
		if err != nil {
			return nil, err
		}
		h = append(h, lazyItem{node: v, gain: g})
	}
	heap.Init(&h)

	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if int(top.round) == len(seeds) {
			seeds = append(seeds, top.node)
			if err := commit(top.node); err != nil {
				return nil, err
			}
			heap.Pop(&h)
			continue
		}
		g, err := gain(top.node)
		if err != nil {
			return nil, err
		}
		top.gain = g
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, nil
}

// snapView adapts a Snapshot to graphalgo.Forward. BFSReach uses int32 ids
// directly, matching graph.NodeID.
type snapView struct{ sn *diffusion.Snapshot }

func (s snapView) N() int32 { return int32(len(s.sn.Off) - 1) }
func (s snapView) VisitOut(u int32, fn func(v int32)) {
	for _, v := range s.sn.OutNeighbors(u) {
		fn(v)
	}
}

// PMC is the pruned Monte-Carlo method: every snapshot is condensed into
// its SCC DAG, influence queries run on the (much smaller) DAG, and the
// lazy-greedy heap is seeded with cheap descendant-mass upper bounds
// instead of exact BFS values — the pruning that makes PMC fast.
type PMC struct{}

// Name implements core.Algorithm.
func (PMC) Name() string { return "PMC" }

// Supports implements core.Algorithm: IC only (paper Table 5).
func (PMC) Supports(m weights.Model) bool { return m == weights.IC }

// Category implements core.Categorizer.
func (PMC) Category() core.Category { return core.CatSnapshot }

// Param implements core.Algorithm.
func (PMC) Param(weights.Model) core.Param {
	// Paper Table 2 optimum: 200 under IC, 250 under WC.
	return core.Param{Name: "#Snapshots", Spectrum: snapshotSpectrum, Default: 200}
}

// condensed is one snapshot's SCC condensation plus per-component covered
// marks and the DP upper bound on reachable mass.
type condensed struct {
	dag     *graphalgo.Condensation
	covered []bool
	bound   []float64 // descendant-mass upper bound per component
}

// Select implements core.Algorithm.
func (PMC) Select(ctx *core.Context) ([]graph.NodeID, error) {
	r := int(ctx.Param(200))
	n := ctx.G.N()

	snapshots := make([]*condensed, 0, r)
	maxComp := int32(0)
	for i := 0; i < r; i++ {
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		sn := diffusion.SampleSnapshot(ctx.G, ctx.Model, ctx.RNG)
		comp, ncomp := graphalgo.SCC(snapView{sn})
		dag := graphalgo.Condense(snapView{sn}, comp, ncomp)
		// The raw snapshot is discarded after condensation: this is PMC's
		// memory advantage over StaticGreedy.
		cs := &condensed{
			dag:     dag,
			covered: make([]bool, ncomp),
			bound:   descendantBound(dag),
		}
		ctx.Account(int64(len(dag.Comp))*4 + int64(len(dag.To))*4 + int64(len(dag.Off))*8 +
			int64(ncomp)*(1+8+4))
		snapshots = append(snapshots, cs)
		if ncomp > maxComp {
			maxComp = ncomp
		}
	}

	mark := make([]uint32, maxComp)
	var epoch uint32
	var queue []int32

	// exactGain BFSes each snapshot DAG from v's component, summing sizes
	// of uncovered components reached.
	exactGain := func(v graph.NodeID) (float64, error) {
		ctx.Lookups++
		total := int64(0)
		for _, cs := range snapshots {
			if err := ctx.Check(); err != nil {
				return 0, err
			}
			c := cs.dag.Comp[v]
			if cs.covered[c] {
				continue
			}
			epoch++
			queue = queue[:0]
			queue = append(queue, c)
			mark[c] = epoch
			for head := 0; head < len(queue); head++ {
				x := queue[head]
				if !cs.covered[x] {
					total += int64(cs.dag.Size[x])
				}
				for _, y := range cs.dag.OutNeighbors(x) {
					if mark[y] != epoch {
						mark[y] = epoch
						queue = append(queue, y)
					}
				}
			}
		}
		return float64(total) / float64(r), nil
	}

	commit := func(v graph.NodeID) error {
		for _, cs := range snapshots {
			if err := ctx.Check(); err != nil {
				return err
			}
			c := cs.dag.Comp[v]
			if cs.covered[c] {
				continue
			}
			epoch++
			queue = queue[:0]
			queue = append(queue, c)
			mark[c] = epoch
			for head := 0; head < len(queue); head++ {
				x := queue[head]
				cs.covered[x] = true
				for _, y := range cs.dag.OutNeighbors(x) {
					if mark[y] != epoch && !cs.covered[y] {
						mark[y] = epoch
						queue = append(queue, y)
					}
				}
			}
		}
		return nil
	}

	// Heap seeded with the cheap DP upper bound: valid for lazy greedy
	// because bound(v) ≥ exact reachability ≥ marginal gain. round = -1
	// flags "never exactly evaluated".
	h := make(lazyHeap, 0, n)
	for v := graph.NodeID(0); v < n; v++ {
		ub := 0.0
		for _, cs := range snapshots {
			ub += cs.bound[cs.dag.Comp[v]]
		}
		h = append(h, lazyItem{node: v, gain: ub / float64(r), round: -1})
	}
	heap.Init(&h)

	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if int(top.round) == len(seeds) {
			seeds = append(seeds, top.node)
			if err := commit(top.node); err != nil {
				return nil, err
			}
			heap.Pop(&h)
			continue
		}
		g, err := exactGain(top.node)
		if err != nil {
			return nil, err
		}
		top.gain = g
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, nil
}

// descendantBound computes, per component, the total member count of the
// component and all its descendants IGNORING sharing — an upper bound on
// true reachable mass, computable in linear time by a reverse-topological
// sweep (Tarjan ids are already reverse-topological).
func descendantBound(dag *graphalgo.Condensation) []float64 {
	bound := make([]float64, dag.NComp)
	// Tarjan: arcs go from higher comp id to lower, so process ids in
	// increasing order to have children done before parents.
	for c := int32(0); c < dag.NComp; c++ {
		b := float64(dag.Size[c])
		for _, d := range dag.OutNeighbors(c) {
			b += bound[d]
		}
		bound[c] = b
	}
	return bound
}

type lazyItem struct {
	node  graph.NodeID
	gain  float64
	round int32
}

type lazyHeap []lazyItem

func (h lazyHeap) Len() int            { return len(h) }
func (h lazyHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h lazyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyItem)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
