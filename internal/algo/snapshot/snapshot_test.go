package snapshot

import (
	"testing"
	"time"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func star(spokes int32, p float64) *graph.Graph {
	b := graph.NewBuilder(spokes+1, true)
	for v := graph.NodeID(1); v <= spokes; v++ {
		_ = b.AddEdge(0, v, p)
	}
	return b.Build()
}

func randomWC(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return weights.WeightedCascade{}.Apply(b.BuildSimple()).(*graph.Graph)
}

func selectSeeds(t *testing.T, alg core.Algorithm, g *graph.Graph, k int, snaps float64) []graph.NodeID {
	t.Helper()
	ctx := core.NewContext(g, weights.IC, k, 13)
	ctx.ParamValue = snaps
	seeds, err := alg.Select(ctx)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	if len(seeds) != k {
		t.Fatalf("%s: %d seeds want %d", alg.Name(), len(seeds), k)
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= g.N() || seen[s] {
			t.Fatalf("%s: bad seeds %v", alg.Name(), seeds)
		}
		seen[s] = true
	}
	return seeds
}

func TestPickHubFirst(t *testing.T) {
	g := star(10, 1.0)
	for _, alg := range []core.Algorithm{StaticGreedy{}, PMC{}} {
		seeds := selectSeeds(t, alg, g, 1, 50)
		if seeds[0] != 0 {
			t.Fatalf("%s picked %v want hub 0", alg.Name(), seeds)
		}
	}
}

func TestICOnly(t *testing.T) {
	for _, alg := range []core.Algorithm{StaticGreedy{}, PMC{}} {
		if alg.Supports(weights.LT) {
			t.Fatalf("%s must not support LT (paper Table 5)", alg.Name())
		}
		if !alg.Supports(weights.IC) {
			t.Fatalf("%s must support IC", alg.Name())
		}
	}
}

// TestPMCMatchesStaticGreedy: both estimate the same quantity (snapshot
// reachability), so with the same number of snapshots their seed quality
// must be comparable.
func TestPMCMatchesStaticGreedy(t *testing.T) {
	g := randomWC(5, 60, 350)
	const k = 5
	sgSeeds := selectSeeds(t, StaticGreedy{}, g, k, 100)
	pmcSeeds := selectSeeds(t, PMC{}, g, k, 100)
	sg := diffusion.EstimateSpreadParallel(g, weights.IC, sgSeeds, 6000, 7, 0).Mean
	pmc := diffusion.EstimateSpreadParallel(g, weights.IC, pmcSeeds, 6000, 7, 0).Mean
	if pmc < 0.9*sg || sg < 0.9*pmc {
		t.Fatalf("quality diverged: SG %v vs PMC %v", sg, pmc)
	}
}

// TestQualityAgainstGreedyReference on a denser IC graph.
func TestQualityAgainstGreedyReference(t *testing.T) {
	base := randomWC(9, 50, 250)
	g := weights.ICConstant{P: 0.15}.Apply(base).(*graph.Graph)
	const k = 4
	sim := diffusion.NewSimulator(g, weights.IC)
	var ref []graph.NodeID
	chosen := map[graph.NodeID]bool{}
	for len(ref) < k {
		best, bestSp := graph.NodeID(-1), -1.0
		for v := graph.NodeID(0); v < g.N(); v++ {
			if chosen[v] {
				continue
			}
			sp := sim.EstimateSpread(append(ref, v), 600, uint64(v)).Mean
			if sp > bestSp {
				bestSp, best = sp, v
			}
		}
		ref = append(ref, best)
		chosen[best] = true
	}
	refSpread := diffusion.EstimateSpreadParallel(g, weights.IC, ref, 6000, 3, 0).Mean
	for _, alg := range []core.Algorithm{StaticGreedy{}, PMC{}} {
		seeds := selectSeeds(t, alg, g, k, 150)
		sp := diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 6000, 3, 0).Mean
		if sp < 0.9*refSpread {
			t.Fatalf("%s spread %v < 90%% of reference %v", alg.Name(), sp, refSpread)
		}
	}
}

// TestPMCFasterThanSG: the paper's core finding for this family — PMC's
// SCC condensation and pruned evaluation outrun StaticGreedy's raw-BFS
// evaluation on a graph with substantial cyclic structure.
func TestPMCFasterThanSG(t *testing.T) {
	base := randomWC(11, 400, 4000)
	g := weights.ICConstant{P: 0.15}.Apply(base).(*graph.Graph)
	run := func(alg core.Algorithm) time.Duration {
		start := time.Now()
		selectSeeds(t, alg, g, 10, 100)
		return time.Since(start)
	}
	sg := run(StaticGreedy{})
	pmc := run(PMC{})
	if pmc > sg {
		t.Logf("warning: PMC %v slower than SG %v on this instance", pmc, sg)
	}
	// Hard requirement kept loose to avoid timing flakes: PMC must not be
	// dramatically slower.
	if pmc > 3*sg {
		t.Fatalf("PMC %v vs SG %v: pruning ineffective", pmc, sg)
	}
}

// TestSGAccountsMoreMemoryThanPMC: SG stores raw snapshots, PMC stores
// condensations — PMC must account fewer bytes (paper Fig. 8 ordering).
func TestSGAccountsMoreMemoryThanPMC(t *testing.T) {
	base := randomWC(13, 200, 2000)
	g := weights.ICConstant{P: 0.2}.Apply(base).(*graph.Graph)
	mem := func(alg core.Algorithm) int64 {
		ctx := core.NewContext(g, weights.IC, 3, 5)
		ctx.ParamValue = 80
		if _, err := alg.Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.MemUsed()
	}
	sg, pmc := mem(StaticGreedy{}), mem(PMC{})
	if pmc >= sg {
		t.Fatalf("PMC accounted %d ≥ SG %d", pmc, sg)
	}
}

func TestBudgetDNF(t *testing.T) {
	base := randomWC(17, 500, 5000)
	g := weights.ICConstant{P: 0.2}.Apply(base).(*graph.Graph)
	res := core.Run(StaticGreedy{}, g, core.RunConfig{
		K: 50, Model: weights.IC, Seed: 1, ParamValue: 250,
		TimeBudget: 10 * time.Millisecond,
	})
	if res.Status != core.DNF {
		t.Fatalf("status %v want DNF", res.Status)
	}
}

func TestParamMetadata(t *testing.T) {
	if p := (PMC{}).Param(weights.IC); p.Name != "#Snapshots" || p.Default != 200 {
		t.Fatalf("PMC param %+v", p)
	}
	if p := (StaticGreedy{}).Param(weights.IC); p.Default != 250 {
		t.Fatalf("SG param %+v", p)
	}
	for _, alg := range []core.Algorithm{StaticGreedy{}, PMC{}} {
		c, ok := alg.(core.Categorizer)
		if !ok || c.Category() != core.CatSnapshot {
			t.Fatalf("%s category", alg.Name())
		}
	}
}

func TestDescendantBoundIsUpperBound(t *testing.T) {
	// Diamond DAG: 0→{1,2}→3. Exact reach of 0 is 4; the sharing-ignorant
	// bound is 1+ (1+1) + (1+1) = 5 ≥ 4.
	g := randomWC(21, 30, 120)
	sn := diffusion.SampleSnapshot(weights.ICConstant{P: 0.5}.Apply(g).(*graph.Graph), weights.IC, rng.New(3))
	comp, ncomp := sccOf(sn)
	dag := condenseOf(sn, comp, ncomp)
	bound := descendantBound(dag)
	// Verify per component: bound ≥ exact reachable mass.
	for c := int32(0); c < dag.NComp; c++ {
		exact := int64(0)
		seen := map[int32]bool{}
		stack := []int32{c}
		seen[c] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			exact += int64(dag.Size[x])
			for _, y := range dag.OutNeighbors(x) {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		if bound[c] < float64(exact) {
			t.Fatalf("comp %d: bound %v < exact %d", c, bound[c], exact)
		}
	}
}

// helpers reusing the package-internal snapshot adapters.
func sccOf(sn *diffusion.Snapshot) ([]int32, int32) {
	return graphalgo.SCC(snapView{sn})
}

func condenseOf(sn *diffusion.Snapshot, comp []int32, ncomp int32) *graphalgo.Condensation {
	return graphalgo.Condense(snapView{sn}, comp, ncomp)
}
