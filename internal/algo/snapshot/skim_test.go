package snapshot

import (
	"math"
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func TestSKIMPicksHub(t *testing.T) {
	g := star(10, 1.0)
	ctx := core.NewContext(g, weights.IC, 1, 3)
	seeds, err := (SKIM{}).Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("picked %v want hub 0", seeds)
	}
}

func TestSKIMSupportsBothModels(t *testing.T) {
	a := SKIM{}
	if !a.Supports(weights.IC) || !a.Supports(weights.LT) {
		t.Fatal("SKIM supports both live-edge models")
	}
	if p := a.Param(weights.IC); p.Name != "#Instances" || p.Default != 64 {
		t.Fatalf("param %+v", p)
	}
}

// TestSKIMQualityMatchesStaticGreedy: the sketch prior must not hurt final
// quality — the exact-evaluation lazy greedy should land within 10% of
// StaticGreedy on the same instances budget.
func TestSKIMQualityMatchesStaticGreedy(t *testing.T) {
	g := randomWC(43, 60, 350)
	const k = 5
	sgSeeds := selectSeeds(t, StaticGreedy{}, g, k, 64)
	ctx := core.NewContext(g, weights.IC, k, 13)
	ctx.ParamValue = 64
	skimSeeds, err := (SKIM{}).Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sg := diffusion.EstimateSpreadParallel(g, weights.IC, sgSeeds, 6000, 7, 0).Mean
	sk := diffusion.EstimateSpreadParallel(g, weights.IC, skimSeeds, 6000, 7, 0).Mean
	if sk < 0.9*sg {
		t.Fatalf("SKIM spread %v < 90%% of StaticGreedy %v", sk, sg)
	}
}

func TestSKIMLT(t *testing.T) {
	g := weights.LTUniform{}.Apply(star(8, 1)).(*graph.Graph)
	ctx := core.NewContext(g, weights.LT, 2, 5)
	ctx.ParamValue = 16
	seeds, err := (SKIM{}).Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 || seeds[0] != 0 {
		t.Fatalf("LT seeds %v", seeds)
	}
}

func TestReverseSnapshot(t *testing.T) {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	_ = b.AddEdge(1, 2, 1)
	g := b.Build()
	sn := diffusion.SampleSnapshot(g, weights.IC, rng.New(1)) // p=1: all live
	rev := reverseSnapshot(sn, 3)
	// rev must contain arcs 1→0, 2→0, 2→1.
	if got := rev.OutNeighbors(2); len(got) != 2 {
		t.Fatalf("rev out(2) = %v", got)
	}
	if got := rev.OutNeighbors(0); len(got) != 0 {
		t.Fatalf("rev out(0) = %v", got)
	}
}

// TestSketchHeapOps: bottom-k rank maintenance keeps the k smallest.
func TestSketchHeapOps(t *testing.T) {
	var sk []float64
	for _, r := range []float64{0.9, 0.5, 0.7, 0.3, 0.8} {
		sk = heapPushRank(sk, r)
	}
	// Max-heap root is the largest retained.
	if sk[0] != 0.9 {
		t.Fatalf("heap root %v", sk[0])
	}
	sk[0] = 0.1
	siftDownRank(sk)
	if sk[0] != 0.8 {
		t.Fatalf("after replace, root %v want 0.8", sk[0])
	}
	sorted := sortRanks(sk)
	want := []float64{0.1, 0.3, 0.5, 0.7, 0.8}
	for i := range want {
		if math.Abs(sorted[i]-want[i]) > 1e-12 {
			t.Fatalf("sorted %v", sorted)
		}
	}
}

// TestSKIMEstimateUnbiasedDirection: on a p=1 star, the hub reaches all
// (instance, node) pairs; its sketch estimate must be close to n.
func TestSKIMSketchEstimateAccuracy(t *testing.T) {
	// Exercised indirectly: hub selection on certain graphs, plus the
	// quality test above. Here: determinism of the whole pipeline.
	g := randomWC(47, 40, 200)
	ctx1 := core.NewContext(g, weights.IC, 4, 9)
	ctx1.ParamValue = 32
	a, err := (SKIM{}).Select(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := core.NewContext(g, weights.IC, 4, 9)
	ctx2.ParamValue = 32
	b, err := (SKIM{}).Select(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SKIM nondeterministic")
		}
	}
}
