// Package register wires every implemented IM technique into a core
// registry. Importing it (even blank) populates core.Default, which the
// public facade, the commands and the experiment harness all share.
package register

import (
	"github.com/sigdata/goinfmax/internal/algo/proxy"
	"github.com/sigdata/goinfmax/internal/algo/rank"
	"github.com/sigdata/goinfmax/internal/algo/rrset"
	"github.com/sigdata/goinfmax/internal/algo/score"
	"github.com/sigdata/goinfmax/internal/algo/simulation"
	"github.com/sigdata/goinfmax/internal/algo/snapshot"
	"github.com/sigdata/goinfmax/internal/core"
)

// Into registers every technique in r.
func Into(r *core.Registry) {
	r.Register("GREEDY", func() core.Algorithm { return simulation.Greedy{} })
	r.Register("CELF", func() core.Algorithm { return simulation.CELF{} })
	r.Register("CELF++", func() core.Algorithm { return simulation.CELFpp{} })
	r.Register("UBLF", func() core.Algorithm { return simulation.UBLF{} })
	r.Register("RIS", func() core.Algorithm { return rrset.RIS{} })
	r.Register("TIM+", func() core.Algorithm { return rrset.TIMPlus{} })
	r.Register("IMM", func() core.Algorithm { return rrset.IMM{} })
	r.Register("SSA", func() core.Algorithm { return rrset.SSA{} })
	r.Register("StaticGreedy", func() core.Algorithm { return snapshot.StaticGreedy{} })
	r.Register("PMC", func() core.Algorithm { return snapshot.PMC{} })
	r.Register("DegreeDiscount", func() core.Algorithm { return score.DegreeDiscount{} })
	r.Register("PMIA", func() core.Algorithm { return score.PMIA{} })
	r.Register("SKIM", func() core.Algorithm { return snapshot.SKIM{} })
	r.Register("IRIE", func() core.Algorithm { return score.IRIE{} })
	r.Register("EaSyIM", func() core.Algorithm { return score.EaSyIM{} })
	r.Register("LDAG", func() core.Algorithm { return score.LDAG{} })
	r.Register("SIMPATH", func() core.Algorithm { return score.SIMPATH{} })
	r.Register("IMRank1", func() core.Algorithm { return rank.IMRank{L: 1} })
	r.Register("IMRank2", func() core.Algorithm { return rank.IMRank{L: 2} })
	r.Register("HighDegree", func() core.Algorithm { return proxy.HighDegree{} })
	r.Register("PageRank", func() core.Algorithm { return proxy.PageRank{} })
	r.Register("Random", func() core.Algorithm { return proxy.Random{} })
}

func init() {
	Into(core.Default())
}
