package proxy

import (
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func selectSeeds(t *testing.T, alg core.Algorithm, g *graph.Graph, k int) []graph.NodeID {
	t.Helper()
	ctx := core.NewContext(g, weights.IC, k, 29)
	seeds, err := alg.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != k {
		t.Fatalf("%s: %d seeds want %d", alg.Name(), len(seeds), k)
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= g.N() || seen[s] {
			t.Fatalf("%s: bad seeds %v", alg.Name(), seeds)
		}
		seen[s] = true
	}
	return seeds
}

func TestHighDegreeOrder(t *testing.T) {
	b := graph.NewBuilder(6, true)
	// Degrees: 0→3 arcs, 1→2 arcs, 2→1 arc.
	for v := graph.NodeID(3); v < 6; v++ {
		_ = b.AddEdge(0, v, 1)
	}
	_ = b.AddEdge(1, 3, 1)
	_ = b.AddEdge(1, 4, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	seeds := selectSeeds(t, HighDegree{}, g, 3)
	if seeds[0] != 0 || seeds[1] != 1 || seeds[2] != 2 {
		t.Fatalf("seeds %v want [0 1 2]", seeds)
	}
}

func TestHighDegreeTiesDeterministic(t *testing.T) {
	b := graph.NewBuilder(4, true)
	_ = b.AddEdge(2, 0, 1)
	_ = b.AddEdge(3, 1, 1)
	g := b.Build()
	a := selectSeeds(t, HighDegree{}, g, 2)
	bseeds := selectSeeds(t, HighDegree{}, g, 2)
	if a[0] != bseeds[0] || a[1] != bseeds[1] {
		t.Fatal("tie-break nondeterministic")
	}
	if a[0] != 2 || a[1] != 3 {
		t.Fatalf("ties must break by id: %v", a)
	}
}

func TestPageRankFindsAuthority(t *testing.T) {
	// 0 influences a chain that feeds many nodes; node 0 should rank top
	// on the reversed-graph PageRank.
	b := graph.NewBuilder(8, true)
	for v := graph.NodeID(1); v < 8; v++ {
		_ = b.AddEdge(0, v, 0.5)
	}
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()
	seeds := selectSeeds(t, PageRank{}, g, 1)
	if seeds[0] != 0 {
		t.Fatalf("PageRank picked %v want source hub 0", seeds)
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	r := rng.New(1)
	b := graph.NewBuilder(50, true)
	for i := 0; i < 100; i++ {
		u, v := graph.NodeID(r.Int31n(50)), graph.NodeID(r.Int31n(50))
		if u != v {
			_ = b.AddEdge(u, v, 0.1)
		}
	}
	g := b.Build()
	a := selectSeeds(t, Random{}, g, 5)
	bseeds := selectSeeds(t, Random{}, g, 5)
	for i := range a {
		if a[i] != bseeds[i] {
			t.Fatal("Random with same context seed must repeat")
		}
	}
}

func TestAllSupportBothModels(t *testing.T) {
	for _, a := range []core.Algorithm{HighDegree{}, PageRank{}, Random{}} {
		if !a.Supports(weights.IC) || !a.Supports(weights.LT) {
			t.Fatalf("%s support", a.Name())
		}
		if a.Param(weights.IC).HasParam() {
			t.Fatalf("%s should expose no parameter", a.Name())
		}
		c, ok := a.(core.Categorizer)
		if !ok || c.Category() != core.CatProxy {
			t.Fatalf("%s category", a.Name())
		}
	}
}
