// Package proxy provides the trivial proxy baselines every IM study
// measures against: highest out-degree, PageRank and uniform-random seed
// selection. They bound the quality axis from below and, per the field's
// folklore the paper scrutinizes, occasionally get surprisingly close on
// heavy-tailed graphs.
package proxy

import (
	"sort"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// HighDegree selects the k nodes with the largest out-degree.
type HighDegree struct{}

// Name implements core.Algorithm.
func (HighDegree) Name() string { return "HighDegree" }

// Supports implements core.Algorithm.
func (HighDegree) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (HighDegree) Category() core.Category { return core.CatProxy }

// Param implements core.Algorithm: none.
func (HighDegree) Param(weights.Model) core.Param { return core.Param{} }

// Select implements core.Algorithm.
func (HighDegree) Select(ctx *core.Context) ([]graph.NodeID, error) {
	g := ctx.G
	n := g.N()
	order := make([]graph.NodeID, n)
	for v := graph.NodeID(0); v < n; v++ {
		order[v] = v
	}
	if err := ctx.CheckNow(); err != nil {
		return nil, err
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.OutDegree(order[i]), g.OutDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	seeds := make([]graph.NodeID, ctx.K)
	copy(seeds, order[:ctx.K])
	ctx.Lookups = int64(n)
	return seeds, nil
}

// PageRank selects the k nodes with the largest weighted PageRank on the
// REVERSED graph (influence flows along arcs, so being pointed at by
// influenceable nodes matters; standard IM practice).
type PageRank struct {
	// Damping is the restart parameter (default 0.85).
	Damping float64
	// Iterations bounds the power iteration (default 50).
	Iterations int
}

// Name implements core.Algorithm.
func (PageRank) Name() string { return "PageRank" }

// Supports implements core.Algorithm.
func (PageRank) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (PageRank) Category() core.Category { return core.CatProxy }

// Param implements core.Algorithm: none.
func (PageRank) Param(weights.Model) core.Param { return core.Param{} }

// Select implements core.Algorithm.
func (p PageRank) Select(ctx *core.Context) ([]graph.NodeID, error) {
	d := p.Damping
	if d <= 0 || d >= 1 {
		d = 0.85
	}
	iters := p.Iterations
	if iters <= 0 {
		iters = 50
	}
	g := ctx.G
	n := g.N()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		ctx.Lookups++
		base := (1 - d) / float64(n)
		for i := range next {
			next[i] = base
		}
		for v := graph.NodeID(0); v < n; v++ {
			// Mass flows against arc direction: v distributes to the nodes
			// that influence it, normalized by total incoming weight.
			from, w := g.InNeighbors(v)
			totalW := 0.0
			for _, x := range w {
				totalW += x
			}
			if totalW == 0 {
				continue
			}
			share := d * rank[v] / totalW
			for i, u := range from {
				next[u] += share * w[i]
			}
		}
		rank, next = next, rank
	}
	order := make([]graph.NodeID, n)
	for v := graph.NodeID(0); v < n; v++ {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return rank[order[i]] > rank[order[j]] })
	seeds := make([]graph.NodeID, ctx.K)
	copy(seeds, order[:ctx.K])
	return seeds, nil
}

// Random selects k uniformly random distinct nodes; the floor baseline.
type Random struct{}

// Name implements core.Algorithm.
func (Random) Name() string { return "Random" }

// Supports implements core.Algorithm.
func (Random) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (Random) Category() core.Category { return core.CatProxy }

// Param implements core.Algorithm: none.
func (Random) Param(weights.Model) core.Param { return core.Param{} }

// Select implements core.Algorithm.
func (Random) Select(ctx *core.Context) ([]graph.NodeID, error) {
	if err := ctx.CheckNow(); err != nil {
		return nil, err
	}
	n := int(ctx.G.N())
	perm := ctx.RNG.Perm(n)
	seeds := make([]graph.NodeID, ctx.K)
	for i := 0; i < ctx.K; i++ {
		seeds[i] = graph.NodeID(perm[i])
	}
	return seeds, nil
}
