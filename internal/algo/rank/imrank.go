// Package rank implements the rank-refinement family (paper §4.5 and
// Fig. 3), represented by IMRank (Cheng et al., SIGIR 2014).
//
// IMRank starts from an initial node ranking produced by a cheap heuristic
// and iteratively reorders nodes by their ranking-based marginal influence,
// estimated with the Last-to-First Allocation (LFA) strategy: walking the
// ranking from last to first, each node allocates its expected influence
// mass to higher-ranked in-neighbors that would activate it first. The
// parameter l bounds the allocation depth (l=1 direct neighbors, l=2
// two-hop), matching the paper's "IMRank, l=1 / l=2" variants.
//
// The paper's M7 dissects IMRank's convergence criterion: the original
// implementation stops when the top-k SET is stable, which (together with
// an initialization bug, paper Appendix B) exits too early and makes
// spread DECREASE with k (Fig. 10f). The corrected criterion — suggested
// by the authors — always runs 10 scoring rounds; both are implemented,
// selected by ConvergenceMode, and the scoring-round count is the external
// parameter (paper Table 2, optimum 10).
package rank

import (
	"sort"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// ConvergenceMode selects between the corrected and the original
// (defective) stopping criterion.
type ConvergenceMode int

const (
	// FixedRounds always runs the configured number of scoring rounds —
	// the corrected criterion of paper §5.1.1.
	FixedRounds ConvergenceMode = iota
	// TopKSetStable reproduces the ORIGINAL defective criterion: stop as
	// soon as the top-k seed set is unchanged across consecutive rounds
	// (paper M7 / Fig. 10f "Incorrect"). With the original's rank
	// initialization the first comparison frequently succeeds spuriously,
	// terminating in round 1 for large k.
	TopKSetStable
)

// roundsSpectrum sweeps the scoring-round budget, most accurate first.
var roundsSpectrum = []float64{10, 8, 6, 5, 4, 3, 2, 1}

// IMRank implements core.Algorithm.
type IMRank struct {
	// L is the LFA allocation depth (1 or 2; paper benchmarks both).
	L int
	// Mode selects the convergence criterion (default FixedRounds).
	Mode ConvergenceMode
}

// Name implements core.Algorithm.
func (a IMRank) Name() string {
	if a.L == 2 {
		return "IMRank2"
	}
	return "IMRank1"
}

// Supports implements core.Algorithm: IC only (paper Table 5 lists IMRank
// under IC, where its WC instantiation is the IC-with-WC-weights case).
func (IMRank) Supports(m weights.Model) bool { return m == weights.IC }

// Category implements core.Categorizer.
func (IMRank) Category() core.Category { return core.CatRank }

// Param implements core.Algorithm.
func (IMRank) Param(weights.Model) core.Param {
	return core.Param{Name: "#Scoring Rounds", Spectrum: roundsSpectrum, Default: 10}
}

// Select implements core.Algorithm.
func (a IMRank) Select(ctx *core.Context) ([]graph.NodeID, error) {
	l := a.L
	if l <= 0 {
		l = 1
	}
	rounds := int(ctx.Param(10))
	g := ctx.G
	n := g.N()

	// Initial ranking: out-degree descending (the degree-discount flavor of
	// the original's initialization). In TopKSetStable mode the ranking is
	// deliberately left at its raw node-id order — reproducing the
	// "incorrect initialization of node ranks" bug of paper Appendix B that
	// both degrades the starting point and makes the top-k-set comparison
	// exit in the first scoring round for large k.
	order := make([]graph.NodeID, n)
	for v := graph.NodeID(0); v < n; v++ {
		order[v] = v
	}
	if a.Mode != TopKSetStable {
		sort.Slice(order, func(i, j int) bool {
			return g.OutDegree(order[i]) > g.OutDegree(order[j])
		})
	}
	pos := make([]int32, n)
	mass := make([]float64, n)
	ctx.Account(int64(n) * 20)

	var prevTopK []graph.NodeID
	if a.Mode == TopKSetStable {
		// Reproduce the original implementation's initialization bug (paper
		// Appendix B): the pre-refinement ranking participates in the
		// convergence comparison, so a first LFA round that leaves the
		// top-k SET unchanged — common for large k, where the tail ranking
		// barely moves — terminates the refinement immediately.
		prevTopK = append(prevTopK, order[:minInt(ctx.K, int(n))]...)
	}
	for round := 0; round < rounds; round++ {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		ctx.Lookups++
		for i, v := range order {
			pos[v] = int32(i)
		}
		a.lfa(ctx, order, pos, mass, l)
		// Reorder by estimated marginal influence (stable keeps the
		// previous ranking as tiebreak, matching the original).
		sort.SliceStable(order, func(i, j int) bool {
			return mass[order[i]] > mass[order[j]]
		})

		if a.Mode == TopKSetStable {
			top := append([]graph.NodeID(nil), order[:minInt(ctx.K, int(n))]...)
			if sameSet(prevTopK, top) {
				break
			}
			prevTopK = top
		}
	}
	seeds := make([]graph.NodeID, ctx.K)
	copy(seeds, order[:ctx.K])
	return seeds, nil
}

// lfa computes ranking-based marginal influence by Last-to-First
// Allocation: every node starts with mass 1 (itself); walking from the
// last-ranked node to the first, node v hands W(u,v)·mass(v) of its mass
// to each strictly higher-ranked in-neighbor u, keeping the residual
// (1−W(u,v)) share. Depth l=2 additionally lets the received mass flow one
// more hop up the ranking through u's own higher-ranked in-neighbors.
func (a IMRank) lfa(ctx *core.Context, order []graph.NodeID, pos []int32, mass []float64, l int) {
	g := ctx.G
	for i := range mass {
		mass[i] = 1
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		from, w := g.InNeighbors(v)
		for j, u := range from {
			if pos[u] >= pos[v] {
				continue // only higher-ranked nodes would activate v first
			}
			give := w[j] * mass[v]
			mass[u] += give
			mass[v] -= give
			if l >= 2 {
				// Second-hop allocation: u forwards a share of the received
				// mass to ITS best higher-ranked in-neighbor.
				from2, w2 := g.InNeighbors(u)
				var bestU2 graph.NodeID = -1
				bestW := 0.0
				for j2, u2 := range from2 {
					if pos[u2] < pos[u] && w2[j2] > bestW {
						bestW, bestU2 = w2[j2], u2
					}
				}
				if bestU2 >= 0 {
					fwd := bestW * give
					mass[bestU2] += fwd
					mass[u] -= fwd
				}
			}
		}
	}
}

func sameSet(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[graph.NodeID]struct{}, len(a))
	for _, x := range a {
		m[x] = struct{}{}
	}
	for _, x := range b {
		if _, ok := m[x]; !ok {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
