package rank

import (
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func randomWC(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return weights.WeightedCascade{}.Apply(b.BuildSimple()).(*graph.Graph)
}

func selectSeeds(t *testing.T, alg core.Algorithm, g *graph.Graph, k int, rounds float64) []graph.NodeID {
	t.Helper()
	ctx := core.NewContext(g, weights.IC, k, 23)
	ctx.ParamValue = rounds
	seeds, err := alg.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != k {
		t.Fatalf("%d seeds want %d", len(seeds), k)
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= g.N() || seen[s] {
			t.Fatalf("bad seeds %v", seeds)
		}
		seen[s] = true
	}
	return seeds
}

func TestNames(t *testing.T) {
	if (IMRank{L: 1}).Name() != "IMRank1" || (IMRank{L: 2}).Name() != "IMRank2" {
		t.Fatal("names")
	}
	if (IMRank{}).Name() != "IMRank1" {
		t.Fatal("default L name")
	}
}

func TestICOnly(t *testing.T) {
	a := IMRank{L: 1}
	if a.Supports(weights.LT) || !a.Supports(weights.IC) {
		t.Fatal("IMRank is IC-only per paper Table 5")
	}
}

func TestPicksHub(t *testing.T) {
	b := graph.NewBuilder(10, true)
	for v := graph.NodeID(1); v < 10; v++ {
		_ = b.AddEdge(0, v, 0.5)
	}
	g := b.Build()
	for _, l := range []int{1, 2} {
		seeds := selectSeeds(t, IMRank{L: l}, g, 1, 10)
		if seeds[0] != 0 {
			t.Fatalf("l=%d picked %v want hub 0", l, seeds)
		}
	}
}

func TestSeparatesHubs(t *testing.T) {
	// Two stars: refinement must surface both hubs for k=2.
	b := graph.NewBuilder(14, true)
	for v := graph.NodeID(2); v < 8; v++ {
		_ = b.AddEdge(0, v, 0.5)
	}
	for v := graph.NodeID(8); v < 14; v++ {
		_ = b.AddEdge(1, v, 0.5)
	}
	g := b.Build()
	seeds := selectSeeds(t, IMRank{L: 1}, g, 2, 10)
	ok := (seeds[0] == 0 && seeds[1] == 1) || (seeds[0] == 1 && seeds[1] == 0)
	if !ok {
		t.Fatalf("seeds %v want hubs {0,1}", seeds)
	}
}

// TestQualityReasonable: IMRank must land within 75% of greedy quality
// under WC (the model where the paper says it performs well).
func TestQualityReasonable(t *testing.T) {
	g := randomWC(3, 60, 350)
	const k = 5
	sim := diffusion.NewSimulator(g, weights.IC)
	var ref []graph.NodeID
	chosen := map[graph.NodeID]bool{}
	for len(ref) < k {
		best, bestSp := graph.NodeID(-1), -1.0
		for v := graph.NodeID(0); v < g.N(); v++ {
			if chosen[v] {
				continue
			}
			sp := sim.EstimateSpread(append(ref, v), 400, uint64(v)).Mean
			if sp > bestSp {
				bestSp, best = sp, v
			}
		}
		ref = append(ref, best)
		chosen[best] = true
	}
	refSpread := diffusion.EstimateSpreadParallel(g, weights.IC, ref, 6000, 5, 0).Mean
	for _, l := range []int{1, 2} {
		seeds := selectSeeds(t, IMRank{L: l}, g, k, 10)
		sp := diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 6000, 5, 0).Mean
		if sp < 0.75*refSpread {
			t.Fatalf("IMRank l=%d spread %v < 75%% of greedy %v", l, sp, refSpread)
		}
	}
}

// TestBrokenConvergenceExitsEarly reproduces paper M7: with the original
// TopKSetStable criterion and large k, refinement stops after ~1 round, so
// it performs no more scoring rounds than the corrected criterion.
func TestBrokenConvergenceExitsEarly(t *testing.T) {
	g := randomWC(7, 120, 700)
	k := 100 // large k: tail ranking barely moves in round 1
	lookups := func(mode ConvergenceMode) int64 {
		ctx := core.NewContext(g, weights.IC, k, 3)
		ctx.ParamValue = 10
		if _, err := (IMRank{L: 1, Mode: mode}).Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Lookups // one lookup per scoring round
	}
	fixed := lookups(FixedRounds)
	broken := lookups(TopKSetStable)
	if fixed != 10 {
		t.Fatalf("corrected criterion ran %d rounds want 10", fixed)
	}
	if broken >= fixed {
		t.Fatalf("broken criterion ran %d rounds, expected early exit (< %d)", broken, fixed)
	}
}

func TestRoundsParameter(t *testing.T) {
	g := randomWC(11, 50, 250)
	ctx := core.NewContext(g, weights.IC, 5, 3)
	ctx.ParamValue = 3
	if _, err := (IMRank{L: 1}).Select(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Lookups != 3 {
		t.Fatalf("rounds run %d want 3", ctx.Lookups)
	}
}

func TestParamMetadata(t *testing.T) {
	p := (IMRank{}).Param(weights.IC)
	if p.Name != "#Scoring Rounds" || p.Default != 10 {
		t.Fatalf("param %+v", p)
	}
	c, ok := interface{}(IMRank{}).(core.Categorizer)
	if !ok || c.Category() != core.CatRank {
		t.Fatal("category")
	}
}

// TestLFAMassConservation: allocation moves mass but conserves the total
// (each transfer is zero-sum), so Σ mass = n after any LFA pass.
func TestLFAMassConservation(t *testing.T) {
	g := randomWC(13, 40, 200)
	n := g.N()
	order := make([]graph.NodeID, n)
	for v := graph.NodeID(0); v < n; v++ {
		order[v] = v
	}
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	mass := make([]float64, n)
	ctx := core.NewContext(g, weights.IC, 1, 1)
	(IMRank{L: 1}).lfa(ctx, order, pos, mass, 1)
	total := 0.0
	for _, m := range mass {
		total += m
	}
	if total < float64(n)-1e-6 || total > float64(n)+1e-6 {
		t.Fatalf("mass not conserved: %v want %v", total, n)
	}
	// l=2 must also conserve.
	(IMRank{L: 2}).lfa(ctx, order, pos, mass, 2)
	total = 0
	for _, m := range mass {
		total += m
	}
	if total < float64(n)-1e-6 || total > float64(n)+1e-6 {
		t.Fatalf("l=2 mass not conserved: %v", total)
	}
}
