package score

import (
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// EaSyIM is Galhotra, Arora and Roy's global score-estimation method
// (SIGMOD 2016): a node's influence is scored by the total probability
// mass of length-≤ℓ paths starting at it, computed by ℓ rounds of the
// message-passing recurrence
//
//	s_t(v) = Σ_{u ∈ Out(v)} W(v,u) · (1 + s_{t−1}(u))
//
// over the whole graph at once (O(ℓ·m) per seed). After a seed is picked
// its score mass is removed and the recurrence re-run, discounting paths
// through previous seeds. EaSyIM stores exactly one number per node, which
// is why the paper finds it the most memory-frugal technique (Fig. 8,
// §5.4) at competitive quality but long running times on large data
// (Table 3 DNFs).
//
// External parameter: the iteration count ℓ (the paper's Table 2 sweeps
// EaSyIM's accuracy knob on a log grid and lands at small values; Fig. 1b
// runs it at iter = 100).
type EaSyIM struct{}

// easyimSpectrum sweeps ℓ, most accurate first.
var easyimSpectrum = []float64{1000, 500, 100, 50, 25, 10, 5, 3, 2, 1}

// Name implements core.Algorithm.
func (EaSyIM) Name() string { return "EaSyIM" }

// Supports implements core.Algorithm: EaSyIM works under IC and LT
// (paper Table 5).
func (EaSyIM) Supports(weights.Model) bool { return true }

// Category implements core.Categorizer.
func (EaSyIM) Category() core.Category { return core.CatScore }

// Param implements core.Algorithm.
func (EaSyIM) Param(m weights.Model) core.Param {
	def := 50.0 // paper Table 2: 50 under IC/WC, 25 under LT
	if m == weights.LT {
		def = 25
	}
	return core.Param{Name: "#Iterations", Spectrum: easyimSpectrum, Default: def}
}

// Select implements core.Algorithm.
func (EaSyIM) Select(ctx *core.Context) ([]graph.NodeID, error) {
	ell := int(ctx.Param(50))
	g := ctx.G
	n := g.N()

	// The entire algorithm state: one score per node (plus the ping-pong
	// buffer) — EaSyIM's defining memory property.
	score := make([]float64, n)
	next := make([]float64, n)
	isSeed := make([]bool, n)
	ctx.Account(int64(n) * 17)

	recompute := func() error {
		for i := range score {
			score[i] = 0
		}
		for t := 0; t < ell; t++ {
			if err := ctx.CheckNow(); err != nil {
				return err
			}
			changed := false
			for v := graph.NodeID(0); v < n; v++ {
				if isSeed[v] {
					next[v] = 0
					continue
				}
				s := 0.0
				to, w := g.OutNeighbors(v)
				for i, u := range to {
					if isSeed[u] {
						continue // paths may not pass through selected seeds
					}
					s += w[i] * (1 + score[u])
				}
				next[v] = s
				if s != score[v] {
					changed = true
				}
			}
			score, next = next, score
			if !changed {
				break // fixed point reached before ℓ rounds
			}
		}
		return nil
	}

	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K {
		if err := recompute(); err != nil {
			return nil, err
		}
		ctx.Lookups++ // one global scoring pass per seed
		best := graph.NodeID(-1)
		bestScore := -1.0
		for v := graph.NodeID(0); v < n; v++ {
			if !isSeed[v] && score[v] > bestScore {
				bestScore, best = score[v], v
			}
		}
		isSeed[best] = true
		seeds = append(seeds, best)
	}
	return seeds, nil
}
