package score

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// SIMPATH is Goyal, Lu and Lakshmanan's simple-path enumeration heuristic
// for the Linear Threshold model (ICDM 2011). Under LT the spread of a
// seed set S decomposes over simple paths:
//
//	σ(S) = Σ_{u ∈ S} σ^{V−S+u}(u),   σ^W(u) = Σ_{simple paths p from u in W} Π w(p)
//
// SIMPATH-SPREAD enumerates the paths by backtracking DFS, pruning
// branches whose weight product falls below η (authors' default 1e-3), and
// embeds the enumeration in a CELF lazy-greedy with a look-ahead window of
// size ℓ (default 4). The original evaluation also uses a vertex-cover
// optimization for the first iteration; like the original it only changes
// constants, not the enumeration-driven asymptotics that the paper's M5
// exposes (SIMPATH collapses under LT-uniform weights where path mass
// decays slowly).
//
// SIMPATH exposes no external parameter (paper §5.1.1) and supports LT
// only (paper Table 5).
type SIMPATH struct {
	// Eta is the pruning threshold (authors' default 1e-3).
	Eta float64
	// LookAhead is the CELF look-ahead window ℓ (authors' default 4).
	LookAhead int
}

// Name implements core.Algorithm.
func (SIMPATH) Name() string { return "SIMPATH" }

// Supports implements core.Algorithm: LT only (paper Table 5).
func (SIMPATH) Supports(m weights.Model) bool { return m == weights.LT }

// Category implements core.Categorizer.
func (SIMPATH) Category() core.Category { return core.CatScore }

// Param implements core.Algorithm: none.
func (SIMPATH) Param(weights.Model) core.Param { return core.Param{} }

// pathEnumerator performs the pruned simple-path enumerations.
type pathEnumerator struct {
	ctx     *core.Context
	g       graph.G
	eta     float64
	onPath  []bool
	blocked []bool // nodes excluded from the walk (selected seeds)
}

func newPathEnumerator(ctx *core.Context, eta float64) *pathEnumerator {
	n := ctx.G.N()
	return &pathEnumerator{
		ctx:     ctx,
		g:       ctx.G,
		eta:     eta,
		onPath:  make([]bool, n),
		blocked: make([]bool, n),
	}
}

// spreadFrom returns σ^{V−blocked}(u): 1 (u itself) plus the pruned
// simple-path weight mass from u avoiding blocked nodes. extraBlocked, if
// ≥ 0, is temporarily excluded too.
func (pe *pathEnumerator) spreadFrom(u graph.NodeID, extraBlocked graph.NodeID) (float64, error) {
	if pe.blocked[u] {
		return 0, nil
	}
	if extraBlocked >= 0 {
		pe.blocked[extraBlocked] = true
		defer func() { pe.blocked[extraBlocked] = false }()
	}
	total := 0.0
	pe.onPath[u] = true
	err := pe.dfs(u, 1.0, &total)
	pe.onPath[u] = false
	return 1 + total, err
}

// dfs extends the current simple path ending at u with weight product w,
// accumulating each extension's product into total.
func (pe *pathEnumerator) dfs(u graph.NodeID, w float64, total *float64) error {
	if err := pe.ctx.Check(); err != nil {
		return err
	}
	to, ws := pe.g.OutNeighbors(u)
	for i, v := range to {
		if pe.onPath[v] || pe.blocked[v] {
			continue
		}
		nw := w * ws[i]
		if nw < pe.eta {
			continue
		}
		*total += nw
		pe.onPath[v] = true
		if err := pe.dfs(v, nw, total); err != nil {
			pe.onPath[v] = false
			return err
		}
		pe.onPath[v] = false
	}
	return nil
}

// spreadOfSet computes σ(S) = Σ_{u∈S} σ^{V−S+u}(u): each seed's enumeration
// runs with the OTHER seeds blocked.
func (pe *pathEnumerator) spreadOfSet(seeds []graph.NodeID) (float64, error) {
	saved := make([]bool, len(seeds))
	for i, s := range seeds {
		saved[i] = pe.blocked[s]
		pe.blocked[s] = true
	}
	defer func() {
		for i, s := range seeds {
			pe.blocked[s] = saved[i]
		}
	}()
	total := 0.0
	for _, s := range seeds {
		pe.blocked[s] = false
		sp, err := pe.spreadFrom(s, -1)
		pe.blocked[s] = true
		if err != nil {
			return 0, err
		}
		total += sp
	}
	return total, nil
}

// Select implements core.Algorithm.
func (sp SIMPATH) Select(ctx *core.Context) ([]graph.NodeID, error) {
	eta := sp.Eta
	if eta <= 0 {
		eta = 1e-3
	}
	look := sp.LookAhead
	if look <= 0 {
		look = 4
	}
	g := ctx.G
	n := g.N()
	pe := newPathEnumerator(ctx, eta)
	ctx.Account(int64(n) * 2)

	// First iteration: σ({u}) for every node. The vertex-cover optimization
	// derives non-cover spreads from cover enumerations via
	// σ(u) = 1 + Σ_v W(u,v)·σ^{V−u}(v); we apply it for nodes all of whose
	// out-neighbors are in the cover.
	inCover := vertexCover(g)
	sigma := make([]float64, n)
	for u := graph.NodeID(0); u < n; u++ {
		if !inCover[u] {
			continue
		}
		ctx.Lookups++
		s, err := pe.spreadFrom(u, -1)
		if err != nil {
			return nil, err
		}
		sigma[u] = s
	}
	for u := graph.NodeID(0); u < n; u++ {
		if inCover[u] {
			continue
		}
		ctx.Lookups++
		// σ(u) = 1 + Σ_{v∈Out(u)} W(u,v) · σ^{V−u}(v); each σ^{V−u}(v) needs
		// an enumeration from v with u blocked.
		total := 1.0
		to, w := g.OutNeighbors(u)
		for i, v := range to {
			sv, err := pe.spreadFrom(v, u)
			if err != nil {
				return nil, err
			}
			total += w[i] * sv
		}
		sigma[u] = total
	}

	h := make(lazyScoreHeap, 0, n)
	for u := graph.NodeID(0); u < n; u++ {
		h = append(h, lazyScoreItem{node: u, gain: sigma[u]})
	}
	heap.Init(&h)

	var seeds []graph.NodeID
	var sigmaS float64 // σ(S) under the current seed set
	for len(seeds) < ctx.K && len(h) > 0 {
		// One heap round is a coarse unit of work: poll the deadline
		// unconditionally on top of the enumerator's amortized checks.
		if err := ctx.CheckNow(); err != nil {
			return nil, err
		}
		top := &h[0]
		if int(top.round) == len(seeds) {
			seeds = append(seeds, top.node)
			s, err := pe.spreadOfSet(seeds)
			if err != nil {
				return nil, err
			}
			sigmaS = s
			heap.Pop(&h)
			continue
		}
		// Look-ahead: re-evaluate the top ℓ candidates in one batch, as the
		// original does, before re-consulting the heap.
		batch := look
		if batch > len(h) {
			batch = len(h)
		}
		for b := 0; b < batch; b++ {
			it := &h[b]
			if int(it.round) == len(seeds) {
				continue
			}
			ctx.Lookups++
			cand := make([]graph.NodeID, len(seeds)+1)
			copy(cand, seeds)
			cand[len(seeds)] = it.node
			withV, err := pe.spreadOfSet(cand)
			if err != nil {
				return nil, err
			}
			it.gain = withV - sigmaS
			it.round = int32(len(seeds))
		}
		// Restore heap order after in-place updates.
		heap.Init(&h)
	}
	return seeds, nil
}

// vertexCover computes a simple maximal-matching 2-approximate vertex
// cover of the (symmetrized) graph, as SIMPATH's first-iteration
// optimization prescribes.
func vertexCover(g graph.G) []bool {
	n := g.N()
	cover := make([]bool, n)
	matched := make([]bool, n)
	for u := graph.NodeID(0); u < n; u++ {
		if matched[u] {
			continue
		}
		to, _ := g.OutNeighbors(u)
		for _, v := range to {
			if v != u && !matched[v] {
				matched[u], matched[v] = true, true
				cover[u], cover[v] = true, true
				break
			}
		}
	}
	return cover
}
