package score

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/weights"
)

// PMIA is Chen, Wang and Wang's maximum-influence-arborescence heuristic
// for IC (KDD 2010). For each node v it builds the Maximum Influence
// In-Arborescence MIIA(v, θ): every node whose maximum-probability path to
// v has weight ≥ θ, connected by the best paths only, so the structure is
// a tree rooted at v. On a tree, IC activation probabilities factorize
// exactly:
//
//	ap(u) = 1                                     if u ∈ S
//	ap(u) = 1 − Π_{w ∈ children(u)} (1 − ap(w)·pp(w,u))   otherwise
//
// and the marginal effect of u on the root is the linear coefficient
//
//	α(v,v) = 1
//	α(v,u) = α(v,w)·pp(u,w)·Π_{siblings u'} (1 − ap(u')·pp(u',w)),  w = parent(u).
//
// The benchmark paper excludes PMIA from the main study because "IRIE
// outperforms [degree discount and PMIA] significantly in terms of running
// time while achieving comparable spread values" (§4); we implement it to
// validate exactly that exclusion claim (the `exclusions` experiment).
type PMIA struct {
	// Theta is the path-probability threshold (authors' default 1/320).
	Theta float64
}

// Name implements core.Algorithm.
func (PMIA) Name() string { return "PMIA" }

// Supports implements core.Algorithm: IC only.
func (PMIA) Supports(m weights.Model) bool { return m == weights.IC }

// Category implements core.Categorizer.
func (PMIA) Category() core.Category { return core.CatScore }

// Param implements core.Algorithm: none (θ is internal, like LDAG's).
func (PMIA) Param(weights.Model) core.Param { return core.Param{} }

// miiaTree is MIIA(v): a tree over local indices with nodes[0] == v.
type miiaTree struct {
	root     graph.NodeID
	nodes    []graph.NodeID
	index    map[graph.NodeID]int32
	parent   []int32   // local parent (towards root); parent[0] == 0
	pp       []float64 // pp[i] = arc probability nodes[i] -> parent
	children [][]int32
	// order: leaves-to-root processing order (reverse BFS from root).
	order []int32
	ap    []float64 // activation probabilities under the current seed set
	alpha []float64 // linear coefficients under the current seed set
}

// Select implements core.Algorithm.
func (p PMIA) Select(ctx *core.Context) ([]graph.NodeID, error) {
	theta := p.Theta
	if theta <= 0 {
		theta = 1.0 / 320
	}
	g := ctx.G
	n := g.N()

	dij := graphalgo.NewMaxProbDijkstra(g)
	trees := make([]*miiaTree, n)
	memberOf := make([][]int32, n)
	for v := graph.NodeID(0); v < n; v++ {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		t := &miiaTree{root: v, index: make(map[graph.NodeID]int32)}
		type hop struct {
			u, next graph.NodeID
			p       float64
		}
		var hops []hop
		dij.RunWithNextHop(v, theta, func(u graph.NodeID, prob float64, next graph.NodeID) {
			t.index[u] = int32(len(t.nodes))
			t.nodes = append(t.nodes, u)
			hops = append(hops, hop{u: u, next: next, p: prob})
		})
		t.parent = make([]int32, len(t.nodes))
		t.pp = make([]float64, len(t.nodes))
		t.children = make([][]int32, len(t.nodes))
		for _, h := range hops {
			li := t.index[h.u]
			if h.u == v {
				t.parent[li] = li
				continue
			}
			pi := t.index[h.next]
			t.parent[li] = pi
			if w, ok := g.Weight(h.u, h.next); ok {
				t.pp[li] = w
			}
			t.children[pi] = append(t.children[pi], li)
		}
		// Leaves-to-root order: reverse of BFS from the root.
		bfs := make([]int32, 0, len(t.nodes))
		bfs = append(bfs, 0)
		for head := 0; head < len(bfs); head++ {
			bfs = append(bfs, t.children[bfs[head]]...)
		}
		t.order = make([]int32, len(bfs))
		for i, x := range bfs {
			t.order[len(bfs)-1-i] = x
		}
		t.ap = make([]float64, len(t.nodes))
		t.alpha = make([]float64, len(t.nodes))
		trees[v] = t
		for _, u := range t.nodes {
			memberOf[u] = append(memberOf[u], v)
		}
		ctx.Account(int64(len(t.nodes))*48 + 64)
	}

	isSeed := make([]bool, n)
	incInf := make([]float64, n)

	// refresh recomputes ap and alpha for tree t under the current seeds
	// and returns the per-member contribution delta applied to incInf.
	refresh := func(t *miiaTree, apply float64) {
		// ap: leaves to root.
		for _, li := range t.order {
			u := t.nodes[li]
			if isSeed[u] {
				t.ap[li] = 1
				continue
			}
			prod := 1.0
			for _, c := range t.children[li] {
				prod *= 1 - t.ap[c]*t.pp[c]
			}
			if len(t.children[li]) == 0 {
				t.ap[li] = 0
			} else {
				t.ap[li] = 1 - prod
			}
		}
		// alpha: root to leaves (forward BFS order = reverse of t.order).
		for i := len(t.order) - 1; i >= 0; i-- {
			li := t.order[i]
			if li == 0 {
				// An already-seeded root yields no marginal gain through
				// this tree at all.
				if isSeed[t.root] {
					t.alpha[0] = 0
				} else {
					t.alpha[0] = 1
				}
				continue
			}
			pi := t.parent[li]
			if isSeed[t.nodes[pi]] {
				// A seeded ancestor blocks influence flowing through it.
				t.alpha[li] = 0
				continue
			}
			a := t.alpha[pi] * t.pp[li]
			for _, sib := range t.children[pi] {
				if sib == li {
					continue
				}
				a *= 1 - t.ap[sib]*t.pp[sib]
			}
			t.alpha[li] = a
		}
		// Contribution of u to σ via this tree: α(v,u)·(1 − ap(u)).
		for li, u := range t.nodes {
			if isSeed[u] {
				continue
			}
			incInf[u] += apply * t.alpha[li] * (1 - t.ap[li])
		}
	}

	for v := graph.NodeID(0); v < n; v++ {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		refresh(trees[v], +1)
	}

	// Greedy selection with exact incremental updates: removing a tree's
	// old contributions, flipping the seed, re-adding the fresh ones.
	h := make(lazyScoreHeap, 0, n)
	for u := graph.NodeID(0); u < n; u++ {
		h = append(h, lazyScoreItem{node: u, gain: incInf[u]})
	}
	heap.Init(&h)
	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if isSeed[top.node] {
			heap.Pop(&h)
			continue
		}
		if int(top.round) == len(seeds) {
			s := top.node
			heap.Pop(&h)
			ctx.Lookups++
			// Retract contributions of every affected tree, then flip.
			for _, v := range memberOf[s] {
				if err := ctx.Check(); err != nil {
					return nil, err
				}
				refresh(trees[v], -1)
			}
			isSeed[s] = true
			seeds = append(seeds, s)
			for _, v := range memberOf[s] {
				if err := ctx.Check(); err != nil {
					return nil, err
				}
				refresh(trees[v], +1)
			}
			continue
		}
		top.gain = incInf[top.node]
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, nil
}
