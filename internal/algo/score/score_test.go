package score

import (
	"testing"
	"time"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/rng"
	"github.com/sigdata/goinfmax/internal/weights"
)

func star(spokes int32, p float64) *graph.Graph {
	b := graph.NewBuilder(spokes+1, true)
	for v := graph.NodeID(1); v <= spokes; v++ {
		_ = b.AddEdge(0, v, p)
	}
	return b.Build()
}

func randomGraph(seed uint64, n int32, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(r.Int31n(n)), graph.NodeID(r.Int31n(n))
		if u != v {
			_ = b.AddEdge(u, v, 1)
		}
	}
	return b.BuildSimple()
}

func randomWC(seed uint64, n int32, m int) *graph.Graph {
	return weights.WeightedCascade{}.Apply(randomGraph(seed, n, m)).(*graph.Graph)
}

func randomLT(seed uint64, n int32, m int) *graph.Graph {
	return weights.LTUniform{}.Apply(randomGraph(seed, n, m)).(*graph.Graph)
}

func selectSeeds(t *testing.T, alg core.Algorithm, g *graph.Graph, m weights.Model, k int, param float64) []graph.NodeID {
	t.Helper()
	ctx := core.NewContext(g, m, k, 19)
	ctx.ParamValue = param
	seeds, err := alg.Select(ctx)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	if len(seeds) != k {
		t.Fatalf("%s: %d seeds want %d", alg.Name(), len(seeds), k)
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if s < 0 || s >= g.N() || seen[s] {
			t.Fatalf("%s: bad seeds %v", alg.Name(), seeds)
		}
		seen[s] = true
	}
	return seeds
}

func TestSupportsMatrix(t *testing.T) {
	// Paper Table 5.
	icOnly := []core.Algorithm{DegreeDiscount{}, IRIE{}}
	ltOnly := []core.Algorithm{LDAG{}, SIMPATH{}}
	both := []core.Algorithm{EaSyIM{}}
	for _, a := range icOnly {
		if !a.Supports(weights.IC) || a.Supports(weights.LT) {
			t.Fatalf("%s support wrong", a.Name())
		}
	}
	for _, a := range ltOnly {
		if a.Supports(weights.IC) || !a.Supports(weights.LT) {
			t.Fatalf("%s support wrong", a.Name())
		}
	}
	for _, a := range both {
		if !a.Supports(weights.IC) || !a.Supports(weights.LT) {
			t.Fatalf("%s support wrong", a.Name())
		}
	}
}

func TestICFamilyPicksHub(t *testing.T) {
	g := star(10, 0.5)
	for _, alg := range []core.Algorithm{DegreeDiscount{}, IRIE{}, EaSyIM{}} {
		seeds := selectSeeds(t, alg, g, weights.IC, 1, 0)
		if seeds[0] != 0 {
			t.Fatalf("%s picked %v want hub 0", alg.Name(), seeds)
		}
	}
}

func TestLTFamilyPicksHub(t *testing.T) {
	g := weights.LTUniform{}.Apply(star(10, 1)).(*graph.Graph)
	for _, alg := range []core.Algorithm{LDAG{}, SIMPATH{}, EaSyIM{}} {
		seeds := selectSeeds(t, alg, g, weights.LT, 1, 0)
		if seeds[0] != 0 {
			t.Fatalf("%s picked %v want hub 0", alg.Name(), seeds)
		}
	}
}

// TestQualityICFamily: score heuristics must reach ≥80% of an exhaustive
// greedy reference under WC (they trade guarantees for speed, but should
// stay competitive — paper Fig. 6).
func TestQualityICFamily(t *testing.T) {
	g := randomWC(3, 60, 350)
	const k = 5
	ref := exhaustiveGreedy(g, weights.IC, k, 500)
	refSpread := diffusion.EstimateSpreadParallel(g, weights.IC, ref, 6000, 5, 0).Mean
	for _, alg := range []core.Algorithm{DegreeDiscount{}, IRIE{}, EaSyIM{}} {
		seeds := selectSeeds(t, alg, g, weights.IC, k, 0)
		sp := diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 6000, 5, 0).Mean
		if sp < 0.8*refSpread {
			t.Fatalf("%s spread %v < 80%% of greedy %v", alg.Name(), sp, refSpread)
		}
	}
}

// TestQualityLTFamily under LT-uniform.
func TestQualityLTFamily(t *testing.T) {
	g := randomLT(7, 50, 300)
	const k = 4
	ref := exhaustiveGreedy(g, weights.LT, k, 500)
	refSpread := diffusion.EstimateSpreadParallel(g, weights.LT, ref, 6000, 5, 0).Mean
	for _, alg := range []core.Algorithm{LDAG{}, SIMPATH{}, EaSyIM{}} {
		seeds := selectSeeds(t, alg, g, weights.LT, k, 0)
		sp := diffusion.EstimateSpreadParallel(g, weights.LT, seeds, 6000, 5, 0).Mean
		if sp < 0.8*refSpread {
			t.Fatalf("%s spread %v < 80%% of greedy %v", alg.Name(), sp, refSpread)
		}
	}
}

func exhaustiveGreedy(g *graph.Graph, m weights.Model, k, sims int) []graph.NodeID {
	sim := diffusion.NewSimulator(g, m)
	var seeds []graph.NodeID
	chosen := map[graph.NodeID]bool{}
	for len(seeds) < k {
		best, bestSp := graph.NodeID(-1), -1.0
		for v := graph.NodeID(0); v < g.N(); v++ {
			if chosen[v] {
				continue
			}
			sp := sim.EstimateSpread(append(seeds, v), sims, uint64(v)+7).Mean
			if sp > bestSp {
				bestSp, best = sp, v
			}
		}
		seeds = append(seeds, best)
		chosen[best] = true
	}
	return seeds
}

// TestEaSyIMMemoryFrugal: EaSyIM's accounted memory must be O(n), far
// below a per-node-structure method like LDAG on the same graph (paper
// Fig. 8 / §5.4).
func TestEaSyIMMemoryFrugal(t *testing.T) {
	g := randomLT(11, 300, 2500)
	mem := func(alg core.Algorithm) int64 {
		ctx := core.NewContext(g, weights.LT, 3, 3)
		if _, err := alg.Select(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.MemUsed()
	}
	easy, ldag := mem(EaSyIM{}), mem(LDAG{})
	if easy >= ldag {
		t.Fatalf("EaSyIM accounted %d ≥ LDAG %d", easy, ldag)
	}
}

// TestLDAGFasterThanSIMPATHUniform reproduces paper M5's direction under
// LT-uniform: LDAG completes faster than SIMPATH on a dense-enough graph.
func TestLDAGFasterThanSIMPATHUniform(t *testing.T) {
	g := randomLT(13, 150, 1800)
	const k = 10
	run := func(alg core.Algorithm) time.Duration {
		start := time.Now()
		selectSeeds(t, alg, g, weights.LT, k, 0)
		return time.Since(start)
	}
	ldag := run(LDAG{})
	simpath := run(SIMPATH{})
	if simpath < ldag {
		t.Logf("note: SIMPATH %v beat LDAG %v on this instance (small-scale noise)", simpath, ldag)
	}
	if ldag > 10*simpath {
		t.Fatalf("LDAG %v ≫ SIMPATH %v: contradicts M5 direction badly", ldag, simpath)
	}
}

// TestEaSyIMIterationsParameter: more iterations must not reduce the score
// fidelity — ℓ=1 ranks by 1-hop mass only and should differ from ℓ=8 on a
// two-level tree.
func TestEaSyIMIterationsParameter(t *testing.T) {
	// Node 0 → 1; 1 → 2..9 (one mid node fanning out). With ℓ=1, node 1
	// (8 out-arcs × w) beats node 0 (1 arc); with deep ℓ, node 0's path mass
	// 0.9·(1+8·0.9) > node 1's 8·0.9 when w=0.9.
	b := graph.NewBuilder(10, true)
	_ = b.AddEdge(0, 1, 0.9)
	for v := graph.NodeID(2); v < 10; v++ {
		_ = b.AddEdge(1, v, 0.9)
	}
	g := b.Build()
	shallow := selectSeeds(t, EaSyIM{}, g, weights.IC, 1, 1)
	deep := selectSeeds(t, EaSyIM{}, g, weights.IC, 1, 8)
	if shallow[0] != 1 {
		t.Fatalf("ℓ=1 picked %v want 1 (local mass)", shallow)
	}
	if deep[0] != 0 {
		t.Fatalf("ℓ=8 picked %v want 0 (global mass)", deep)
	}
}

// TestSIMPATHSpreadExact: on a tiny DAG the pruned enumeration with a
// negligible η equals exact LT spread.
func TestSIMPATHSpreadExact(t *testing.T) {
	// 0→1 (0.5), 0→2 (0.5), 1→2 (0.5): σ({0}) = 1 + 0.5 + (0.5 + 0.25) = 2.25.
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(0, 2, 0.5)
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()
	ctx := core.NewContext(g, weights.LT, 1, 1)
	pe := newPathEnumerator(ctx, 1e-9)
	got, err := pe.spreadFrom(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.25 {
		t.Fatalf("σ(0) = %v want 2.25", got)
	}
	mc := diffusion.NewSimulator(g, weights.LT).EstimateSpread([]graph.NodeID{0}, 40000, 3)
	if diff := got - mc.Mean; diff > 4*mc.StdErr+0.02 || diff < -4*mc.StdErr-0.02 {
		t.Fatalf("enumeration %v vs MC %v", got, mc.Mean)
	}
}

// TestSIMPATHEtaPrunes: a larger η must not increase the computed spread.
func TestSIMPATHEtaPrunes(t *testing.T) {
	g := randomLT(17, 40, 250)
	ctx := core.NewContext(g, weights.LT, 1, 1)
	tight := newPathEnumerator(ctx, 1e-6)
	loose := newPathEnumerator(ctx, 1e-1)
	for v := graph.NodeID(0); v < 10; v++ {
		st, err := tight.spreadFrom(v, -1)
		if err != nil {
			t.Fatal(err)
		}
		sl, err := loose.spreadFrom(v, -1)
		if err != nil {
			t.Fatal(err)
		}
		if sl > st+1e-9 {
			t.Fatalf("node %d: loose η spread %v > tight %v", v, sl, st)
		}
	}
}

// TestLDAGThetaControlsDAGSize: a looser θ shrinks local DAGs and the
// computed influence must be a lower bound of the tight-θ influence.
func TestLDAGThetaControlsDAGSize(t *testing.T) {
	g := randomLT(19, 60, 400)
	seedsTight := selectSeeds(t, LDAG{Theta: 1.0 / 1024}, g, weights.LT, 3, 0)
	seedsLoose := selectSeeds(t, LDAG{Theta: 0.5}, g, weights.LT, 3, 0)
	spTight := diffusion.EstimateSpreadParallel(g, weights.LT, seedsTight, 5000, 3, 0).Mean
	spLoose := diffusion.EstimateSpreadParallel(g, weights.LT, seedsLoose, 5000, 3, 0).Mean
	if spLoose > spTight*1.15 {
		t.Fatalf("loose θ quality %v ≫ tight %v — DAG truncation backwards?", spLoose, spTight)
	}
}

func TestDegreeDiscountAvoidsAdjacentSeeds(t *testing.T) {
	// Clique of 3 high-degree nodes {0,1,2} (mutually connected, plus
	// spokes) and an independent hub 3. After picking one clique node,
	// discounting should prefer the independent hub over clique peers.
	b := graph.NewBuilder(20, true)
	for _, u := range []graph.NodeID{0, 1, 2} {
		for _, v := range []graph.NodeID{0, 1, 2} {
			if u != v {
				_ = b.AddEdge(u, v, 0.1)
			}
		}
	}
	for v := graph.NodeID(4); v < 10; v++ {
		_ = b.AddEdge(0, v, 0.1)
		_ = b.AddEdge(1, v, 0.1)
		_ = b.AddEdge(2, v, 0.1)
	}
	for v := graph.NodeID(10); v < 17; v++ {
		_ = b.AddEdge(3, v, 0.1)
	}
	g := b.Build()
	seeds := selectSeeds(t, DegreeDiscount{P: 0.1}, g, weights.IC, 2, 0)
	hasHub := seeds[0] == 3 || seeds[1] == 3
	if !hasHub {
		t.Fatalf("degree discount never picked independent hub: %v", seeds)
	}
}

func TestIRIEDiscountsCoveredRegions(t *testing.T) {
	// Two identical stars; IRIE must pick both hubs, not one hub twice the
	// neighborhood.
	b := graph.NewBuilder(12, true)
	for v := graph.NodeID(2); v < 7; v++ {
		_ = b.AddEdge(0, v, 0.5)
	}
	for v := graph.NodeID(7); v < 12; v++ {
		_ = b.AddEdge(1, v, 0.5)
	}
	g := b.Build()
	seeds := selectSeeds(t, IRIE{}, g, weights.IC, 2, 0)
	if !((seeds[0] == 0 && seeds[1] == 1) || (seeds[0] == 1 && seeds[1] == 0)) {
		t.Fatalf("IRIE picked %v want hubs {0,1}", seeds)
	}
}

func TestParamMetadata(t *testing.T) {
	// No external parameters (paper §5.1.1).
	for _, a := range []core.Algorithm{LDAG{}, SIMPATH{}, IRIE{}, DegreeDiscount{}} {
		if a.Param(weights.LT).HasParam() || a.Param(weights.IC).HasParam() {
			t.Fatalf("%s must expose no external parameter", a.Name())
		}
	}
	p := (EaSyIM{}).Param(weights.IC)
	if !p.HasParam() || p.Default != 50 {
		t.Fatalf("EaSyIM IC param %+v", p)
	}
	if d := (EaSyIM{}).Param(weights.LT).Default; d != 25 {
		t.Fatalf("EaSyIM LT default %v", d)
	}
	for _, a := range []core.Algorithm{LDAG{}, SIMPATH{}, IRIE{}, DegreeDiscount{}, EaSyIM{}} {
		c, ok := a.(core.Categorizer)
		if !ok || c.Category() != core.CatScore {
			t.Fatalf("%s category", a.Name())
		}
	}
}

func TestVertexCoverCoversAllArcs(t *testing.T) {
	g := randomGraph(23, 40, 200)
	cover := vertexCover(g)
	for _, e := range g.Edges() {
		if !cover[e.From] && !cover[e.To] {
			t.Fatalf("arc (%d,%d) uncovered", e.From, e.To)
		}
	}
}

func TestMeanArcWeight(t *testing.T) {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 0.2)
	_ = b.AddEdge(1, 2, 0.4)
	g := b.Build()
	if w := meanArcWeight(g); w < 0.3-1e-12 || w > 0.3+1e-12 {
		t.Fatalf("mean %v", w)
	}
	empty := graph.NewBuilder(2, true).Build()
	if w := meanArcWeight(empty); w != 0.01 {
		t.Fatalf("empty default %v", w)
	}
}

func TestBudgetDNFScoreFamily(t *testing.T) {
	g := randomLT(29, 400, 4000)
	res := core.Run(SIMPATH{}, g, core.RunConfig{
		K: 30, Model: weights.LT, Seed: 1, TimeBudget: 10 * time.Millisecond,
	})
	if res.Status != core.DNF {
		t.Fatalf("SIMPATH status %v want DNF", res.Status)
	}
}
