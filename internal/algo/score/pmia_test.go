package score

import (
	"math"
	"testing"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/diffusion"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

func TestPMIAPicksHub(t *testing.T) {
	g := star(10, 0.3)
	seeds := selectSeeds(t, PMIA{}, g, weights.IC, 1, 0)
	if seeds[0] != 0 {
		t.Fatalf("picked %v want hub 0", seeds)
	}
}

func TestPMIAICOnly(t *testing.T) {
	a := PMIA{}
	if a.Supports(weights.LT) || !a.Supports(weights.IC) {
		t.Fatal("PMIA is IC-only")
	}
	if a.Param(weights.IC).HasParam() {
		t.Fatal("PMIA exposes no external parameter")
	}
}

// TestPMIAExactOnTree: on a directed in-tree the MIIA equals the whole
// graph and PMIA's first-seed score is the exact σ. Chain 0→1→2 with
// p=0.5: σ({0}) = 1 + 0.5 + 0.25 = 1.75, σ({1}) = 1.5, σ({2}) = 1.
// PMIA must pick node 0 first and node 2's marginal last.
func TestPMIAExactOnChain(t *testing.T) {
	b := graph.NewBuilder(3, true)
	_ = b.AddEdge(0, 1, 0.5)
	_ = b.AddEdge(1, 2, 0.5)
	g := b.Build()
	seeds := selectSeeds(t, PMIA{}, g, weights.IC, 3, 0)
	if seeds[0] != 0 {
		t.Fatalf("first seed %v want 0", seeds)
	}
	// After 0, marginal of 1 is σ-boost of forcing 1 active: 1 was active
	// w.p. 0.5; forcing it adds (1−0.5)(1+0.5) = 0.75 vs 2's (1−0.25)·1 =
	// 0.75 — tie; either order acceptable.
}

// TestPMIAQuality: within 85% of exhaustive greedy on a WC graph.
func TestPMIAQuality(t *testing.T) {
	g := randomWC(31, 60, 350)
	const k = 5
	ref := exhaustiveGreedy(g, weights.IC, k, 500)
	refSpread := diffusion.EstimateSpreadParallel(g, weights.IC, ref, 6000, 5, 0).Mean
	seeds := selectSeeds(t, PMIA{}, g, weights.IC, k, 0)
	sp := diffusion.EstimateSpreadParallel(g, weights.IC, seeds, 6000, 5, 0).Mean
	if sp < 0.85*refSpread {
		t.Fatalf("PMIA spread %v < 85%% of greedy %v", sp, refSpread)
	}
}

// TestPMIATreeApMatchesSimulation: the tree DP activation probability of
// the root equals MC simulation on a pure in-tree (where PMIA is exact).
func TestPMIATreeApMatchesSimulation(t *testing.T) {
	// In-tree towards node 0: 1→0, 2→0, 3→1, 4→1.
	b := graph.NewBuilder(5, true)
	_ = b.AddEdge(1, 0, 0.6)
	_ = b.AddEdge(2, 0, 0.4)
	_ = b.AddEdge(3, 1, 0.7)
	_ = b.AddEdge(4, 1, 0.2)
	g := b.Build()
	// Seeds {3, 2}: P(1) = ap(3)·0.7 = 0.7; P(0) = 1 − (1−0.7·0.6)(1−0.4).
	want0 := 1 - (1-0.7*0.6)*(1-0.4)
	mc := diffusion.NewSimulator(g, weights.IC).EstimateSpread([]graph.NodeID{3, 2}, 60000, 3)
	// Expected spread = 2 seeds + P(1) + P(0).
	want := 2 + 0.7 + want0
	if math.Abs(mc.Mean-want) > 4*mc.StdErr+0.01 {
		t.Fatalf("MC %v vs closed form %v — test graph broken", mc.Mean, want)
	}
	// PMIA with k=2 must select {3,...}? Influence σ({3}) = 1+0.7+0.7·0.6 =
	// 2.12 — the largest single-node spread; confirm it goes first.
	seeds := selectSeeds(t, PMIA{}, g, weights.IC, 1, 0)
	if seeds[0] != 3 {
		t.Fatalf("first PMIA seed %v want 3", seeds)
	}
}

func TestPMIAAvoidsSaturatedRegions(t *testing.T) {
	// Two stars again; PMIA must take both hubs.
	b := graph.NewBuilder(12, true)
	for v := graph.NodeID(2); v < 7; v++ {
		_ = b.AddEdge(0, v, 0.5)
	}
	for v := graph.NodeID(7); v < 12; v++ {
		_ = b.AddEdge(1, v, 0.5)
	}
	g := b.Build()
	seeds := selectSeeds(t, PMIA{}, g, weights.IC, 2, 0)
	if !((seeds[0] == 0 && seeds[1] == 1) || (seeds[0] == 1 && seeds[1] == 0)) {
		t.Fatalf("PMIA picked %v want hubs {0,1}", seeds)
	}
}

func TestPMIADeterministic(t *testing.T) {
	g := randomWC(37, 50, 300)
	a := selectSeeds(t, PMIA{}, g, weights.IC, 5, 0)
	b := selectSeeds(t, PMIA{}, g, weights.IC, 5, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PMIA nondeterministic")
		}
	}
}

func TestPMIABudget(t *testing.T) {
	g := randomWC(41, 400, 4000)
	res := core.Run(PMIA{}, g, core.RunConfig{
		K: 50, Model: weights.IC, Seed: 1, TimeBudget: 1, // 1ns: immediate
	})
	if res.Status != core.DNF {
		t.Fatalf("status %v want DNF", res.Status)
	}
}
