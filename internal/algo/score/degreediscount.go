// Package score implements the score-estimation family of IM heuristics
// (paper §4.4 and Fig. 3): DegreeDiscount, IRIE and EaSyIM (global
// estimation), and LDAG and SIMPATH (local estimation). They trade the
// (1−1/e) quality guarantee for efficiency by estimating influence from
// simple-path weight mass instead of simulation.
package score

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// DegreeDiscount is Chen et al.'s degree-discount heuristic (KDD 2009) for
// IC with constant probability p: when a neighbor of v becomes a seed, v's
// effective degree is discounted by dd(v) = d_v − 2t_v − (d_v − t_v)·t_v·p,
// where t_v counts seed neighbors. The paper excludes it from the main
// study (IRIE dominates it, §4); we keep it as the family baseline and as
// IMRank's initial ranking.
type DegreeDiscount struct {
	// P is the constant IC probability used in the discount term; 0 means
	// infer the mean arc weight from the graph.
	P float64
}

// Name implements core.Algorithm.
func (DegreeDiscount) Name() string { return "DegreeDiscount" }

// Supports implements core.Algorithm: derived for IC only.
func (DegreeDiscount) Supports(m weights.Model) bool { return m == weights.IC }

// Category implements core.Categorizer.
func (DegreeDiscount) Category() core.Category { return core.CatScore }

// Param implements core.Algorithm: no external parameter.
func (DegreeDiscount) Param(weights.Model) core.Param { return core.Param{} }

// Select implements core.Algorithm.
func (d DegreeDiscount) Select(ctx *core.Context) ([]graph.NodeID, error) {
	g := ctx.G
	n := g.N()
	p := d.P
	if p <= 0 {
		p = meanArcWeight(g)
	}
	// Max-heap on discounted degree with lazy updates.
	h := make(ddHeap, 0, n)
	t := make([]int32, n) // seed-neighbor counts
	stale := make([]bool, n)
	isSeed := make([]bool, n)
	for v := graph.NodeID(0); v < n; v++ {
		h = append(h, ddItem{node: v, score: float64(g.OutDegree(v))})
	}
	heap.Init(&h)
	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		top := h[0]
		if isSeed[top.node] {
			heap.Pop(&h)
			continue
		}
		if stale[top.node] {
			dv := float64(g.OutDegree(top.node))
			tv := float64(t[top.node])
			h[0].score = dv - 2*tv - (dv-tv)*tv*p
			stale[top.node] = false
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		isSeed[top.node] = true
		seeds = append(seeds, top.node)
		ctx.Lookups++
		to, _ := g.OutNeighbors(top.node)
		for _, v := range to {
			if !isSeed[v] {
				t[v]++
				stale[v] = true
			}
		}
	}
	return seeds, nil
}

func meanArcWeight(g graph.G) float64 {
	var sum float64
	var cnt int64
	n := g.N()
	for u := graph.NodeID(0); u < n; u++ {
		_, w := g.OutNeighbors(u)
		for _, x := range w {
			sum += x
		}
		cnt += int64(len(w))
	}
	if cnt == 0 {
		return 0.01
	}
	return sum / float64(cnt)
}

type ddItem struct {
	node  graph.NodeID
	score float64
}

type ddHeap []ddItem

func (h ddHeap) Len() int            { return len(h) }
func (h ddHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h ddHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ddHeap) Push(x interface{}) { *h = append(*h, x.(ddItem)) }
func (h *ddHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
