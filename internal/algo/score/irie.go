package score

import (
	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// IRIE is Jung, Heo and Chen's Influence-Rank/Influence-Estimation method
// (ICDM 2012) for IC: a global linear system
//
//	r(u) = 1 + α · Σ_{v ∈ Out(u)} W(u,v) · r(v)
//
// is solved by a few power iterations ("influence rank", IR), and after
// each seed selection an activation-probability estimate AP_S(u) discounts
// nodes likely already covered ("influence estimation", IE):
//
//	r(u) = (1 − AP_S(u)) · (1 + α · Σ W(u,v) · r(v))
//
// The paper classifies IRIE as a global score-estimation heuristic that
// dominates DegreeDiscount and PMIA (§4.4), is memory-light (Fig. 8) but
// quality-weak under generic IC (Fig. 6, M6).
type IRIE struct {
	// Alpha is the damping factor (authors' default 0.7).
	Alpha float64
	// Iterations bounds the power iteration (authors' default 20).
	Iterations int
	// APDepth bounds the activation-probability propagation (default 2).
	APDepth int
}

// Name implements core.Algorithm.
func (IRIE) Name() string { return "IRIE" }

// Supports implements core.Algorithm: IC only (paper Table 5).
func (IRIE) Supports(m weights.Model) bool { return m == weights.IC }

// Category implements core.Categorizer.
func (IRIE) Category() core.Category { return core.CatScore }

// Param implements core.Algorithm: IRIE exposes no external parameter
// (paper §5.1.1: "LDAG, IRIE and SIMPATH do not have any external
// parameters").
func (IRIE) Param(weights.Model) core.Param { return core.Param{} }

// Select implements core.Algorithm.
func (a IRIE) Select(ctx *core.Context) ([]graph.NodeID, error) {
	alpha := a.Alpha
	if alpha <= 0 {
		alpha = 0.7
	}
	iters := a.Iterations
	if iters <= 0 {
		iters = 20
	}
	apDepth := a.APDepth
	if apDepth <= 0 {
		apDepth = 2
	}

	g := ctx.G
	n := g.N()
	rank := make([]float64, n)
	next := make([]float64, n)
	ap := make([]float64, n) // AP_S(u): prob. u is already activated by S
	isSeed := make([]bool, n)
	ctx.Account(int64(n) * (8 + 8 + 8 + 1))

	powerIterate := func() error {
		for i := range rank {
			rank[i] = 1
		}
		for it := 0; it < iters; it++ {
			if err := ctx.CheckNow(); err != nil {
				return err
			}
			for u := graph.NodeID(0); u < n; u++ {
				s := 0.0
				to, w := g.OutNeighbors(u)
				for i, v := range to {
					s += w[i] * rank[v]
				}
				next[u] = (1 - ap[u]) * (1 + alpha*s)
				if isSeed[u] {
					next[u] = 0
				}
			}
			rank, next = next, rank
		}
		return nil
	}

	// propagateAP folds seed s into ap via bounded-depth BFS with path
	// probability products: AP'(v) = 1 − (1 − AP(v))·(1 − pp(s→v)).
	propagateAP := func(s graph.NodeID) {
		type entry struct {
			node graph.NodeID
			prob float64
			dep  int
		}
		frontier := []entry{{node: s, prob: 1, dep: 0}}
		ap[s] = 1
		for len(frontier) > 0 {
			e := frontier[0]
			frontier = frontier[1:]
			if e.dep >= apDepth {
				continue
			}
			to, w := g.OutNeighbors(e.node)
			for i, v := range to {
				pp := e.prob * w[i]
				if pp < 1e-4 || isSeed[v] {
					continue
				}
				ap[v] = 1 - (1-ap[v])*(1-pp)
				if ap[v] > 1 {
					ap[v] = 1
				}
				frontier = append(frontier, entry{node: v, prob: pp, dep: e.dep + 1})
			}
		}
	}

	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K {
		if err := powerIterate(); err != nil {
			return nil, err
		}
		ctx.Lookups++ // one global rank computation per seed
		best := graph.NodeID(-1)
		bestScore := -1.0
		for v := graph.NodeID(0); v < n; v++ {
			if !isSeed[v] && rank[v] > bestScore {
				bestScore, best = rank[v], v
			}
		}
		isSeed[best] = true
		seeds = append(seeds, best)
		propagateAP(best)
	}
	return seeds, nil
}
