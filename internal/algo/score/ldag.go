package score

import (
	"container/heap"

	"github.com/sigdata/goinfmax/internal/core"
	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/graphalgo"
	"github.com/sigdata/goinfmax/internal/weights"
)

// LDAG is Chen, Yuan and Zhang's local-DAG heuristic for the Linear
// Threshold model (ICDM 2010). Influence under LT is #P-hard on general
// graphs but computable in linear time on DAGs (activation probabilities
// are linear); LDAG therefore approximates each node v's influence
// neighborhood with a local DAG — the nodes whose maximum-probability path
// to v has weight ≥ θ — and estimates σ exactly within each DAG.
//
// Internal parameter θ defaults to the authors' 1/320. LDAG exposes no
// external parameter (paper §5.1.1). Per paper Table 5 it supports LT only.
type LDAG struct {
	// Theta is the path-probability threshold for DAG membership
	// (authors' default 1/320).
	Theta float64
}

// Name implements core.Algorithm.
func (LDAG) Name() string { return "LDAG" }

// Supports implements core.Algorithm: LT only (paper Table 5).
func (LDAG) Supports(m weights.Model) bool { return m == weights.LT }

// Category implements core.Categorizer.
func (LDAG) Category() core.Category { return core.CatScore }

// Param implements core.Algorithm: none.
func (LDAG) Param(weights.Model) core.Param { return core.Param{} }

// localDAG is the influence neighborhood of one target node v: member
// nodes with local indices, the in-DAG arcs among them, and the current
// seed flags for incremental activation-probability queries.
type localDAG struct {
	target graph.NodeID
	nodes  []graph.NodeID // members; nodes[0] == target
	index  map[graph.NodeID]int32
	// arcs[i] lists (local) out-neighbors of member i *within the DAG*,
	// following original graph arcs u→w (so "towards" the target).
	arcs    [][]localArc
	topo    []int32 // local ids in topological order (ancestors first)
	hasSeed bool
}

type localArc struct {
	to int32
	w  float64
}

// Select implements core.Algorithm.
func (l LDAG) Select(ctx *core.Context) ([]graph.NodeID, error) {
	theta := l.Theta
	if theta <= 0 {
		theta = 1.0 / 320
	}
	g := ctx.G
	n := g.N()

	// Build one local DAG per node (InfluenceEstimate, paper §4.4 "local").
	dij := graphalgo.NewMaxProbDijkstra(g)
	dags := make([]*localDAG, n)
	// memberOf[u] lists the DAGs containing u.
	memberOf := make([][]int32, n)
	for v := graph.NodeID(0); v < n; v++ {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		d := &localDAG{target: v, index: make(map[graph.NodeID]int32)}
		dij.Run(v, theta, func(u graph.NodeID, p float64) {
			d.index[u] = int32(len(d.nodes))
			d.nodes = append(d.nodes, u)
		})
		d.arcs = make([][]localArc, len(d.nodes))
		for li, u := range d.nodes {
			to, w := g.OutNeighbors(u)
			for i, x := range to {
				if lx, ok := d.index[x]; ok && lx < int32(li) {
					// Keep the arc only if it respects the DAG order induced
					// by decreasing path probability to v: Dijkstra settles
					// in non-increasing p (local index 0 is the target), so
					// arcs must point from higher to lower local index —
					// towards the target.
					d.arcs[li] = append(d.arcs[li], localArc{to: lx, w: w[i]})
				}
			}
		}
		d.topo = topoOrderLocal(d)
		dags[v] = d
		for _, u := range d.nodes {
			memberOf[u] = append(memberOf[u], v)
		}
		ctx.Account(int64(len(d.nodes))*32 + 48)
	}

	// apGain computes, within DAG d, the activation probability of the
	// target given seed set (flags) plus optionally extra node x, by the
	// linear topological DP: p(node) = 1 for seeds, else Σ w·p(in-neighbor).
	prob := make([]float64, 0, 64)
	apOf := func(d *localDAG, isSeed []bool, extra graph.NodeID) float64 {
		if len(d.nodes) == 0 {
			return 0
		}
		if cap(prob) < len(d.nodes) {
			prob = make([]float64, len(d.nodes))
		}
		prob = prob[:len(d.nodes)]
		for i := range prob {
			prob[i] = 0
		}
		// Process ancestors first; arcs point from ancestor (lower prob-to-
		// target) to descendant. Accumulate into arc targets.
		for _, li := range d.topo {
			u := d.nodes[li]
			if isSeed[u] || u == extra {
				prob[li] = 1
			} else if prob[li] > 1 {
				prob[li] = 1
			}
			p := prob[li]
			if p == 0 {
				continue
			}
			for _, a := range d.arcs[li] {
				prob[a.to] += p * a.w
			}
		}
		t := d.index[d.target]
		ap := prob[t]
		if isSeed[d.target] || d.target == extra {
			ap = 1
		}
		if ap > 1 {
			ap = 1
		}
		return ap
	}

	isSeed := make([]bool, n)
	// baseAP[v] caches the target activation probability of DAG v under
	// the current seed set.
	baseAP := make([]float64, n)

	// gain(u) = Σ over DAGs containing u of [ap(S∪{u}) − ap(S)].
	gain := func(u graph.NodeID) (float64, error) {
		ctx.Lookups++
		total := 0.0
		for _, v := range memberOf[u] {
			if err := ctx.Check(); err != nil {
				return 0, err
			}
			d := dags[v]
			total += apOf(d, isSeed, u) - baseAP[v]
		}
		return total, nil
	}

	// Initial gains in Σ|DAG| total time: with no seeds, the gain of u in
	// DAG v is the linear coefficient α_v(u) = Σ path products u→v, computed
	// for ALL members at once by one reverse-topological DP per DAG.
	initGain := make([]float64, n)
	alpha := make([]float64, 0, 64)
	for v := graph.NodeID(0); v < n; v++ {
		if err := ctx.Check(); err != nil {
			return nil, err
		}
		d := dags[v]
		if len(d.nodes) == 0 {
			continue
		}
		if cap(alpha) < len(d.nodes) {
			alpha = make([]float64, len(d.nodes))
		}
		alpha = alpha[:len(d.nodes)]
		for i := range alpha {
			alpha[i] = 0
		}
		alpha[d.index[d.target]] = 1
		// Descendants (closer to target) first: reverse topological order.
		for i := len(d.topo) - 1; i >= 0; i-- {
			li := d.topo[i]
			s := alpha[li]
			if li == d.index[d.target] {
				s = 1
			} else {
				s = 0
				for _, a := range d.arcs[li] {
					s += a.w * alpha[a.to]
				}
				alpha[li] = s
			}
			initGain[d.nodes[li]] += s
		}
	}
	h := make(lazyScoreHeap, 0, n)
	for u := graph.NodeID(0); u < n; u++ {
		h = append(h, lazyScoreItem{node: u, gain: initGain[u]})
	}
	heap.Init(&h)

	seeds := make([]graph.NodeID, 0, ctx.K)
	for len(seeds) < ctx.K && len(h) > 0 {
		top := &h[0]
		if int(top.round) == len(seeds) {
			isSeed[top.node] = true
			seeds = append(seeds, top.node)
			// UpdateDataStructures: refresh cached AP of affected DAGs.
			for _, v := range memberOf[top.node] {
				baseAP[v] = apOf(dags[v], isSeed, -1)
			}
			heap.Pop(&h)
			continue
		}
		gv, err := gain(top.node)
		if err != nil {
			return nil, err
		}
		top.gain = gv
		top.round = int32(len(seeds))
		heap.Fix(&h, 0)
	}
	return seeds, nil
}

// topoOrderLocal orders local ids so every arc goes from earlier to later.
// Kahn's algorithm on the local arc lists; nodes in cycles (possible when
// equal path probabilities break the DAG property) are appended last with
// their arcs effectively one-directional, keeping the DP well-defined.
func topoOrderLocal(d *localDAG) []int32 {
	n := int32(len(d.nodes))
	indeg := make([]int32, n)
	for _, as := range d.arcs {
		for _, a := range as {
			indeg[a.to]++
		}
	}
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for i := int32(0); i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		order = append(order, x)
		for _, a := range d.arcs[x] {
			indeg[a.to]--
			if indeg[a.to] == 0 {
				queue = append(queue, a.to)
			}
		}
	}
	if int32(len(order)) < n {
		seen := make([]bool, n)
		for _, x := range order {
			seen[x] = true
		}
		for i := int32(0); i < n; i++ {
			if !seen[i] {
				order = append(order, i)
			}
		}
	}
	return order
}

type lazyScoreItem struct {
	node  graph.NodeID
	gain  float64
	round int32
}

type lazyScoreHeap []lazyScoreItem

func (h lazyScoreHeap) Len() int            { return len(h) }
func (h lazyScoreHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h lazyScoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyScoreHeap) Push(x interface{}) { *h = append(*h, x.(lazyScoreItem)) }
func (h *lazyScoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
