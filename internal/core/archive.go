package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/sigdata/goinfmax/internal/graph"
	"github.com/sigdata/goinfmax/internal/weights"
)

// Result archival
//
// Benchmark campaigns are expensive; the archive makes a run's raw results
// durable and comparable across code versions. The JSON schema is flat and
// stable: one record per cell with times in nanoseconds.

// archivedResult is the stable JSON shape of a Result.
type archivedResult struct {
	Algorithm       string         `json:"algorithm"`
	Dataset         string         `json:"dataset"`
	Model           string         `json:"model"`
	K               int            `json:"k"`
	Param           float64        `json:"param,omitempty"`
	Status          string         `json:"status"`
	HardKilled      bool           `json:"hard_killed,omitempty"`
	Error           string         `json:"error,omitempty"`
	Seeds           []graph.NodeID `json:"seeds,omitempty"`
	SpreadMean      float64        `json:"spread_mean"`
	SpreadSD        float64        `json:"spread_sd"`
	SpreadRuns      int            `json:"spread_runs"`
	EstimatedSpread float64        `json:"estimated_spread"`
	SelectionNanos  int64          `json:"selection_ns"`
	EvalNanos       int64          `json:"eval_ns"`
	PeakMemBytes    int64          `json:"peak_mem_bytes"`
	Lookups         int64          `json:"lookups"`
}

func toArchived(r Result) archivedResult {
	a := archivedResult{
		Algorithm:       r.Algorithm,
		Dataset:         r.Dataset,
		Model:           r.Model.String(),
		K:               r.K,
		Param:           r.Param,
		Status:          r.Status.String(),
		HardKilled:      r.HardKilled,
		Seeds:           r.Seeds,
		SpreadMean:      r.Spread.Mean,
		SpreadSD:        r.Spread.SD,
		SpreadRuns:      r.Spread.Runs,
		EstimatedSpread: r.EstimatedSpread,
		SelectionNanos:  int64(r.SelectionTime),
		EvalNanos:       int64(r.EvalTime),
		PeakMemBytes:    r.PeakMemBytes,
		Lookups:         r.Lookups,
	}
	if r.Err != nil {
		a.Error = r.Err.Error()
	}
	return a
}

func fromArchived(a archivedResult) (Result, error) {
	r := Result{
		Algorithm:       a.Algorithm,
		Dataset:         a.Dataset,
		K:               a.K,
		Param:           a.Param,
		HardKilled:      a.HardKilled,
		Seeds:           a.Seeds,
		EstimatedSpread: a.EstimatedSpread,
		SelectionTime:   time.Duration(a.SelectionNanos),
		EvalTime:        time.Duration(a.EvalNanos),
		PeakMemBytes:    a.PeakMemBytes,
		Lookups:         a.Lookups,
	}
	r.Spread.Mean = a.SpreadMean
	r.Spread.SD = a.SpreadSD
	r.Spread.Runs = a.SpreadRuns
	switch a.Model {
	case "IC":
		r.Model = weights.IC
	case "LT":
		r.Model = weights.LT
	default:
		return Result{}, fmt.Errorf("core: unknown archived model %q", a.Model)
	}
	found := false
	for _, s := range []Status{OK, DNF, Crashed, Unsupported, Failed, Panicked, Cancelled} {
		if s.String() == a.Status {
			r.Status = s
			found = true
			break
		}
	}
	if !found {
		return Result{}, fmt.Errorf("core: unknown archived status %q", a.Status)
	}
	if a.Error != "" {
		r.Err = fmt.Errorf("%s", a.Error)
	}
	return r, nil
}

// WriteArchive streams results as indented JSON to w.
func WriteArchive(w io.Writer, results []Result) error {
	out := make([]archivedResult, len(results))
	for i, r := range results {
		out[i] = toArchived(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadArchive parses an archive written by WriteArchive.
func ReadArchive(r io.Reader) ([]Result, error) {
	var raw []archivedResult
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decoding archive: %w", err)
	}
	out := make([]Result, len(raw))
	for i, a := range raw {
		res, err := fromArchived(a)
		if err != nil {
			return nil, fmt.Errorf("core: record %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// SaveArchive writes results to path, creating parent directories.
func SaveArchive(path string, results []Result) (err error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("core: mkdir %s: %w", dir, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteArchive(f, results)
}

// LoadArchive reads an archive file written by SaveArchive.
func LoadArchive(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }() // read-only handle: close error is immaterial
	return ReadArchive(f)
}

// Checkpoint journal
//
// Long grid campaigns (paper Figs. 6–8: hours even at laptop scale) must
// survive interruption. The journal is an append-only JSONL file — one
// archivedResult per line, fsynced after every completed cell — so a
// SIGINT, crash or power loss costs at most the cell in flight. A resumed
// run loads the journal, indexes it by CellKey and skips every cell
// already recorded.

// CellKey identifies a benchmark cell for journal resume: the coordinates
// that determine what was run, excluding everything measured.
func (r Result) CellKey() string {
	return fmt.Sprintf("%s|%s|%s|k=%d|p=%g", r.Algorithm, r.Dataset, r.Model, r.K, r.Param)
}

// Journal is an append-only JSONL record of completed benchmark cells.
// Append is safe for concurrent use.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// OpenJournal opens (creating parents and the file as needed) a journal
// for appending. An existing journal is extended, never truncated, so the
// same path can serve as both -resume source and -journal sink.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: mkdir %s: %w", dir, err)
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open journal %s: %w", path, err)
	}
	return &Journal{f: f, enc: json.NewEncoder(f)}, nil
}

// Append durably records one completed cell: encode, write, fsync.
func (j *Journal) Append(r Result) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(toArchived(r)); err != nil {
		return fmt.Errorf("core: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("core: journal sync: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// LoadJournal reads a JSONL journal written by Journal.Append. A missing
// file is an empty journal (so first runs and resumed runs share one code
// path), and a truncated final line — the signature of a crash mid-write —
// is tolerated and dropped; corruption anywhere else is an error.
func LoadJournal(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("core: open journal %s: %w", path, err)
	}
	defer func() { _ = f.Close() }() // read-only handle: close error is immaterial

	var out []Result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if pendingErr != nil {
			// A malformed line FOLLOWED by more data is corruption, not a
			// truncated tail.
			return nil, pendingErr
		}
		var a archivedResult
		if err := json.Unmarshal([]byte(text), &a); err != nil {
			pendingErr = fmt.Errorf("core: journal %s line %d: %w", path, line, err)
			continue
		}
		res, err := fromArchived(a)
		if err != nil {
			return nil, fmt.Errorf("core: journal %s line %d: %w", path, line, err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading journal %s: %w", path, err)
	}
	return out, nil
}

// JournalIndex maps CellKey → Result for resume lookups. Later records win
// (a cell re-run in a later session supersedes the earlier outcome), and
// Cancelled cells are excluded: they are incomplete by definition and must
// be re-executed.
func JournalIndex(results []Result) map[string]Result {
	idx := make(map[string]Result, len(results))
	for _, r := range results {
		if r.Status == Cancelled {
			continue
		}
		idx[r.CellKey()] = r
	}
	return idx
}
